file(REMOVE_RECURSE
  "CMakeFiles/asynchrony_test.dir/asynchrony_test.cpp.o"
  "CMakeFiles/asynchrony_test.dir/asynchrony_test.cpp.o.d"
  "asynchrony_test"
  "asynchrony_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asynchrony_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
