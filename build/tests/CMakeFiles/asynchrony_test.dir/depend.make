# Empty dependencies file for asynchrony_test.
# This may be replaced when dependencies are built.
