# Empty compiler generated dependencies file for narwhal_props_test.
# This may be replaced when dependencies are built.
