file(REMOVE_RECURSE
  "CMakeFiles/narwhal_props_test.dir/narwhal_props_test.cpp.o"
  "CMakeFiles/narwhal_props_test.dir/narwhal_props_test.cpp.o.d"
  "narwhal_props_test"
  "narwhal_props_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narwhal_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
