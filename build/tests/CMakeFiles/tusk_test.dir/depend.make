# Empty dependencies file for tusk_test.
# This may be replaced when dependencies are built.
