file(REMOVE_RECURSE
  "CMakeFiles/tusk_test.dir/tusk_test.cpp.o"
  "CMakeFiles/tusk_test.dir/tusk_test.cpp.o.d"
  "tusk_test"
  "tusk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tusk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
