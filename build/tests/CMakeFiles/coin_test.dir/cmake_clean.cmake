file(REMOVE_RECURSE
  "CMakeFiles/coin_test.dir/coin_test.cpp.o"
  "CMakeFiles/coin_test.dir/coin_test.cpp.o.d"
  "coin_test"
  "coin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
