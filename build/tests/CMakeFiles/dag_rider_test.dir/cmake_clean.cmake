file(REMOVE_RECURSE
  "CMakeFiles/dag_rider_test.dir/dag_rider_test.cpp.o"
  "CMakeFiles/dag_rider_test.dir/dag_rider_test.cpp.o.d"
  "dag_rider_test"
  "dag_rider_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_rider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
