# Empty dependencies file for dag_rider_test.
# This may be replaced when dependencies are built.
