file(REMOVE_RECURSE
  "CMakeFiles/narwhal_core_test.dir/narwhal_core_test.cpp.o"
  "CMakeFiles/narwhal_core_test.dir/narwhal_core_test.cpp.o.d"
  "narwhal_core_test"
  "narwhal_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narwhal_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
