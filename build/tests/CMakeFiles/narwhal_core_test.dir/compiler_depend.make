# Empty compiler generated dependencies file for narwhal_core_test.
# This may be replaced when dependencies are built.
