# Empty compiler generated dependencies file for hotstuff_props_test.
# This may be replaced when dependencies are built.
