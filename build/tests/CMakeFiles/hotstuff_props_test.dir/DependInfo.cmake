
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hotstuff_props_test.cpp" "tests/CMakeFiles/hotstuff_props_test.dir/hotstuff_props_test.cpp.o" "gcc" "tests/CMakeFiles/hotstuff_props_test.dir/hotstuff_props_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/nt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/tusk/CMakeFiles/nt_tusk.dir/DependInfo.cmake"
  "/root/repo/build/src/hotstuff/CMakeFiles/nt_hotstuff.dir/DependInfo.cmake"
  "/root/repo/build/src/narwhal/CMakeFiles/nt_narwhal.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/nt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/nt_store.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
