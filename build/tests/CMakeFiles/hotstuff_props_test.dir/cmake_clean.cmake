file(REMOVE_RECURSE
  "CMakeFiles/hotstuff_props_test.dir/hotstuff_props_test.cpp.o"
  "CMakeFiles/hotstuff_props_test.dir/hotstuff_props_test.cpp.o.d"
  "hotstuff_props_test"
  "hotstuff_props_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotstuff_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
