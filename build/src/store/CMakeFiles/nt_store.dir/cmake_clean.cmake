file(REMOVE_RECURSE
  "CMakeFiles/nt_store.dir/store.cpp.o"
  "CMakeFiles/nt_store.dir/store.cpp.o.d"
  "libnt_store.a"
  "libnt_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
