# Empty dependencies file for nt_store.
# This may be replaced when dependencies are built.
