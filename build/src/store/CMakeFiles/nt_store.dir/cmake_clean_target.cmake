file(REMOVE_RECURSE
  "libnt_store.a"
)
