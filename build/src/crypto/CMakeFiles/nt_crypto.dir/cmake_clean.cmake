file(REMOVE_RECURSE
  "CMakeFiles/nt_crypto.dir/coin.cpp.o"
  "CMakeFiles/nt_crypto.dir/coin.cpp.o.d"
  "CMakeFiles/nt_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/nt_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/nt_crypto.dir/hash.cpp.o"
  "CMakeFiles/nt_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/nt_crypto.dir/merkle.cpp.o"
  "CMakeFiles/nt_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/nt_crypto.dir/signer.cpp.o"
  "CMakeFiles/nt_crypto.dir/signer.cpp.o.d"
  "libnt_crypto.a"
  "libnt_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
