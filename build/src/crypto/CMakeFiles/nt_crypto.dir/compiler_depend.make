# Empty compiler generated dependencies file for nt_crypto.
# This may be replaced when dependencies are built.
