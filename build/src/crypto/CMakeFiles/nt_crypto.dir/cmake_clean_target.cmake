file(REMOVE_RECURSE
  "libnt_crypto.a"
)
