file(REMOVE_RECURSE
  "CMakeFiles/nt_tusk.dir/dag_rider.cpp.o"
  "CMakeFiles/nt_tusk.dir/dag_rider.cpp.o.d"
  "CMakeFiles/nt_tusk.dir/tusk.cpp.o"
  "CMakeFiles/nt_tusk.dir/tusk.cpp.o.d"
  "libnt_tusk.a"
  "libnt_tusk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_tusk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
