file(REMOVE_RECURSE
  "libnt_tusk.a"
)
