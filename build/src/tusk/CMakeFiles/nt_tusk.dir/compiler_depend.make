# Empty compiler generated dependencies file for nt_tusk.
# This may be replaced when dependencies are built.
