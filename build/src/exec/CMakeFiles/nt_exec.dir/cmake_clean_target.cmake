file(REMOVE_RECURSE
  "libnt_exec.a"
)
