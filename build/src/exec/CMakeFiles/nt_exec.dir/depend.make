# Empty dependencies file for nt_exec.
# This may be replaced when dependencies are built.
