file(REMOVE_RECURSE
  "CMakeFiles/nt_exec.dir/executor.cpp.o"
  "CMakeFiles/nt_exec.dir/executor.cpp.o.d"
  "CMakeFiles/nt_exec.dir/state_machine.cpp.o"
  "CMakeFiles/nt_exec.dir/state_machine.cpp.o.d"
  "libnt_exec.a"
  "libnt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
