file(REMOVE_RECURSE
  "libnt_sim.a"
)
