# Empty compiler generated dependencies file for nt_sim.
# This may be replaced when dependencies are built.
