file(REMOVE_RECURSE
  "CMakeFiles/nt_sim.dir/scheduler.cpp.o"
  "CMakeFiles/nt_sim.dir/scheduler.cpp.o.d"
  "libnt_sim.a"
  "libnt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
