file(REMOVE_RECURSE
  "libnt_net.a"
)
