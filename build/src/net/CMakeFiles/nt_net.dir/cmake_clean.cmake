file(REMOVE_RECURSE
  "CMakeFiles/nt_net.dir/faults.cpp.o"
  "CMakeFiles/nt_net.dir/faults.cpp.o.d"
  "CMakeFiles/nt_net.dir/latency.cpp.o"
  "CMakeFiles/nt_net.dir/latency.cpp.o.d"
  "CMakeFiles/nt_net.dir/network.cpp.o"
  "CMakeFiles/nt_net.dir/network.cpp.o.d"
  "libnt_net.a"
  "libnt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
