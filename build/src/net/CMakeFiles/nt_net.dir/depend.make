# Empty dependencies file for nt_net.
# This may be replaced when dependencies are built.
