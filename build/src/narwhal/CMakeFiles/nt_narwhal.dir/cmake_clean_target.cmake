file(REMOVE_RECURSE
  "libnt_narwhal.a"
)
