# Empty dependencies file for nt_narwhal.
# This may be replaced when dependencies are built.
