file(REMOVE_RECURSE
  "CMakeFiles/nt_narwhal.dir/archive.cpp.o"
  "CMakeFiles/nt_narwhal.dir/archive.cpp.o.d"
  "CMakeFiles/nt_narwhal.dir/dag.cpp.o"
  "CMakeFiles/nt_narwhal.dir/dag.cpp.o.d"
  "CMakeFiles/nt_narwhal.dir/light_client.cpp.o"
  "CMakeFiles/nt_narwhal.dir/light_client.cpp.o.d"
  "CMakeFiles/nt_narwhal.dir/mempool.cpp.o"
  "CMakeFiles/nt_narwhal.dir/mempool.cpp.o.d"
  "CMakeFiles/nt_narwhal.dir/primary.cpp.o"
  "CMakeFiles/nt_narwhal.dir/primary.cpp.o.d"
  "CMakeFiles/nt_narwhal.dir/worker.cpp.o"
  "CMakeFiles/nt_narwhal.dir/worker.cpp.o.d"
  "libnt_narwhal.a"
  "libnt_narwhal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_narwhal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
