
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/narwhal/archive.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/archive.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/archive.cpp.o.d"
  "/root/repo/src/narwhal/dag.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/dag.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/dag.cpp.o.d"
  "/root/repo/src/narwhal/light_client.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/light_client.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/light_client.cpp.o.d"
  "/root/repo/src/narwhal/mempool.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/mempool.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/mempool.cpp.o.d"
  "/root/repo/src/narwhal/primary.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/primary.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/primary.cpp.o.d"
  "/root/repo/src/narwhal/worker.cpp" "src/narwhal/CMakeFiles/nt_narwhal.dir/worker.cpp.o" "gcc" "src/narwhal/CMakeFiles/nt_narwhal.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/nt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/nt_store.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
