file(REMOVE_RECURSE
  "libnt_runtime.a"
)
