# Empty compiler generated dependencies file for nt_runtime.
# This may be replaced when dependencies are built.
