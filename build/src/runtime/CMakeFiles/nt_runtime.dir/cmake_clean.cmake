file(REMOVE_RECURSE
  "CMakeFiles/nt_runtime.dir/client.cpp.o"
  "CMakeFiles/nt_runtime.dir/client.cpp.o.d"
  "CMakeFiles/nt_runtime.dir/cluster.cpp.o"
  "CMakeFiles/nt_runtime.dir/cluster.cpp.o.d"
  "CMakeFiles/nt_runtime.dir/experiment.cpp.o"
  "CMakeFiles/nt_runtime.dir/experiment.cpp.o.d"
  "CMakeFiles/nt_runtime.dir/metrics.cpp.o"
  "CMakeFiles/nt_runtime.dir/metrics.cpp.o.d"
  "libnt_runtime.a"
  "libnt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
