file(REMOVE_RECURSE
  "libnt_common.a"
)
