file(REMOVE_RECURSE
  "CMakeFiles/nt_common.dir/bytes.cpp.o"
  "CMakeFiles/nt_common.dir/bytes.cpp.o.d"
  "CMakeFiles/nt_common.dir/logging.cpp.o"
  "CMakeFiles/nt_common.dir/logging.cpp.o.d"
  "libnt_common.a"
  "libnt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
