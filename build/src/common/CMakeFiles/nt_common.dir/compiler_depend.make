# Empty compiler generated dependencies file for nt_common.
# This may be replaced when dependencies are built.
