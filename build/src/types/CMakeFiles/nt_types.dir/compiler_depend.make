# Empty compiler generated dependencies file for nt_types.
# This may be replaced when dependencies are built.
