file(REMOVE_RECURSE
  "CMakeFiles/nt_types.dir/types.cpp.o"
  "CMakeFiles/nt_types.dir/types.cpp.o.d"
  "libnt_types.a"
  "libnt_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
