
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/types.cpp" "src/types/CMakeFiles/nt_types.dir/types.cpp.o" "gcc" "src/types/CMakeFiles/nt_types.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nt_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
