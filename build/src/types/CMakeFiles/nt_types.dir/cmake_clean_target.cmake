file(REMOVE_RECURSE
  "libnt_types.a"
)
