# Empty compiler generated dependencies file for nt_hotstuff.
# This may be replaced when dependencies are built.
