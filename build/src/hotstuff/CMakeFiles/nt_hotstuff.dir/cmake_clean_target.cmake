file(REMOVE_RECURSE
  "libnt_hotstuff.a"
)
