file(REMOVE_RECURSE
  "CMakeFiles/nt_hotstuff.dir/hotstuff.cpp.o"
  "CMakeFiles/nt_hotstuff.dir/hotstuff.cpp.o.d"
  "CMakeFiles/nt_hotstuff.dir/payload.cpp.o"
  "CMakeFiles/nt_hotstuff.dir/payload.cpp.o.d"
  "CMakeFiles/nt_hotstuff.dir/types.cpp.o"
  "CMakeFiles/nt_hotstuff.dir/types.cpp.o.d"
  "libnt_hotstuff.a"
  "libnt_hotstuff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nt_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
