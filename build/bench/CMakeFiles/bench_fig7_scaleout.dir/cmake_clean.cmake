file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_scaleout.dir/bench_fig7_scaleout.cpp.o"
  "CMakeFiles/bench_fig7_scaleout.dir/bench_fig7_scaleout.cpp.o.d"
  "bench_fig7_scaleout"
  "bench_fig7_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
