# Empty dependencies file for bench_table1_theory.
# This may be replaced when dependencies are built.
