file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_theory.dir/bench_table1_theory.cpp.o"
  "CMakeFiles/bench_table1_theory.dir/bench_table1_theory.cpp.o.d"
  "bench_table1_theory"
  "bench_table1_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
