file(REMOVE_RECURSE
  "CMakeFiles/bench_accumulator.dir/bench_accumulator.cpp.o"
  "CMakeFiles/bench_accumulator.dir/bench_accumulator.cpp.o.d"
  "bench_accumulator"
  "bench_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
