file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_common_case.dir/bench_fig6_common_case.cpp.o"
  "CMakeFiles/bench_fig6_common_case.dir/bench_fig6_common_case.cpp.o.d"
  "bench_fig6_common_case"
  "bench_fig6_common_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_common_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
