file(REMOVE_RECURSE
  "CMakeFiles/ntbench.dir/ntbench.cpp.o"
  "CMakeFiles/ntbench.dir/ntbench.cpp.o.d"
  "ntbench"
  "ntbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
