# Empty dependencies file for ntbench.
# This may be replaced when dependencies are built.
