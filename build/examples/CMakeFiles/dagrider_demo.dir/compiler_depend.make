# Empty compiler generated dependencies file for dagrider_demo.
# This may be replaced when dependencies are built.
