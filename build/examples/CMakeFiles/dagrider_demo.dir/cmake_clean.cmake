file(REMOVE_RECURSE
  "CMakeFiles/dagrider_demo.dir/dagrider_demo.cpp.o"
  "CMakeFiles/dagrider_demo.dir/dagrider_demo.cpp.o.d"
  "dagrider_demo"
  "dagrider_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagrider_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
