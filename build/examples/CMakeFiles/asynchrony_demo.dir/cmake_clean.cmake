file(REMOVE_RECURSE
  "CMakeFiles/asynchrony_demo.dir/asynchrony_demo.cpp.o"
  "CMakeFiles/asynchrony_demo.dir/asynchrony_demo.cpp.o.d"
  "asynchrony_demo"
  "asynchrony_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asynchrony_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
