# Empty dependencies file for asynchrony_demo.
# This may be replaced when dependencies are built.
