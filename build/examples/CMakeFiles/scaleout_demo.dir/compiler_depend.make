# Empty compiler generated dependencies file for scaleout_demo.
# This may be replaced when dependencies are built.
