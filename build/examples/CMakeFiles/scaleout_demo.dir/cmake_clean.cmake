file(REMOVE_RECURSE
  "CMakeFiles/scaleout_demo.dir/scaleout_demo.cpp.o"
  "CMakeFiles/scaleout_demo.dir/scaleout_demo.cpp.o.d"
  "scaleout_demo"
  "scaleout_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaleout_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
