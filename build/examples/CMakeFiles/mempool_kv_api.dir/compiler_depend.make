# Empty compiler generated dependencies file for mempool_kv_api.
# This may be replaced when dependencies are built.
