file(REMOVE_RECURSE
  "CMakeFiles/mempool_kv_api.dir/mempool_kv_api.cpp.o"
  "CMakeFiles/mempool_kv_api.dir/mempool_kv_api.cpp.o.d"
  "mempool_kv_api"
  "mempool_kv_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mempool_kv_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
