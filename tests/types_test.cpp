// Protocol data types: canonical encoding round trips, digest stability,
// certificate/vote validation, and wire-size accounting.
#include "src/types/types.h"

#include <gtest/gtest.h>

#include <memory>

namespace nt {
namespace {

struct TypesFixture : ::testing::Test {
  static constexpr uint32_t kN = 4;

  TypesFixture() {
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < kN; ++v) {
      signers.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(99, v)));
      infos.push_back(ValidatorInfo{signers.back()->public_key(), 0});
    }
    committee = Committee(std::move(infos));
  }

  Batch MakeBatch() const {
    Batch b;
    b.author = 1;
    b.worker = 2;
    b.seq = 3;
    b.num_txs = 10;
    b.payload_bytes = 5120;
    b.samples = {{7, Millis(100)}, {9, Millis(200)}};
    b.txs = {{1, 2, 3}, {4, 5}};
    return b;
  }

  // Builds a certificate for (digest, round, author) signed by the first
  // 2f+1 validators.
  Certificate Certify(const Digest& digest, Round round, ValidatorId author) const {
    Certificate cert;
    cert.header_digest = digest;
    cert.round = round;
    cert.author = author;
    Bytes preimage = Certificate::VotePreimage(digest, round, author);
    for (uint32_t v = 0; v < committee.quorum_threshold(); ++v) {
      cert.votes.emplace_back(v, signers[v]->Sign(preimage));
    }
    return cert;
  }

  std::vector<std::unique_ptr<Signer>> signers;
  Committee committee;
};

TEST_F(TypesFixture, CommitteeThresholds) {
  EXPECT_EQ(committee.size(), 4u);
  EXPECT_EQ(committee.f(), 1u);
  EXPECT_EQ(committee.quorum_threshold(), 3u);
  EXPECT_EQ(committee.validity_threshold(), 2u);
  EXPECT_EQ(committee.IndexOf(signers[2]->public_key()), 2u);
  PublicKey unknown{};
  EXPECT_FALSE(committee.IndexOf(unknown).has_value());
  // Thresholds for other sizes: n=10 -> f=3; n=50 -> f=16.
  EXPECT_EQ(Committee(std::vector<ValidatorInfo>(10)).f(), 3u);
  EXPECT_EQ(Committee(std::vector<ValidatorInfo>(50)).f(), 16u);
}

TEST_F(TypesFixture, BatchEncodeDecodeRoundTrip) {
  Batch b = MakeBatch();
  Writer w;
  b.Encode(w);
  Reader r(w.bytes());
  auto decoded = Batch::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded->ComputeDigest(), b.ComputeDigest());
  EXPECT_EQ(decoded->num_txs, b.num_txs);
  EXPECT_EQ(decoded->samples.size(), 2u);
  EXPECT_EQ(decoded->samples[1].tx_id, 9u);
  EXPECT_EQ(decoded->txs, b.txs);
}

TEST_F(TypesFixture, BatchDigestSensitiveToContent) {
  Batch a = MakeBatch();
  Batch b = MakeBatch();
  b.seq += 1;
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
  Batch c = MakeBatch();
  c.txs[0][0] ^= 1;
  EXPECT_NE(a.ComputeDigest(), c.ComputeDigest());
}

TEST_F(TypesFixture, BatchDecodeRejectsTruncation) {
  Batch b = MakeBatch();
  Writer w;
  b.Encode(w);
  Bytes bytes = w.Take();
  bytes.resize(bytes.size() - 3);
  Reader r(bytes);
  EXPECT_FALSE(Batch::Decode(r).has_value());
}

TEST_F(TypesFixture, CertificateVerifies) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  EXPECT_TRUE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateRejectsInsufficientVotes) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  cert.votes.pop_back();  // 2 < 2f+1 = 3.
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateRejectsDuplicateVoter) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  cert.votes[2] = cert.votes[0];  // Same voter twice.
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateRejectsForgedSignature) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  cert.votes[1].second[0] ^= 1;
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateRejectsUnknownVoter) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  cert.votes[1].first = 77;  // Not in the committee.
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateBindsRoundAndAuthor) {
  Digest d = Sha256::Hash("header");
  Certificate cert = Certify(d, 5, 1);
  cert.round = 6;  // Signatures were over round 5.
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
  cert.round = 5;
  cert.author = 2;
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, CertificateEncodeDecodeRoundTrip) {
  Certificate cert = Certify(Sha256::Hash("x"), 9, 3);
  Writer w;
  cert.Encode(w);
  EXPECT_EQ(w.size(), cert.WireSize());  // Wire accounting matches encoding.
  Reader r(w.bytes());
  auto decoded = Certificate::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(decoded->Verify(committee, *signers[0]));
  EXPECT_EQ(decoded->header_digest, cert.header_digest);
}

TEST_F(TypesFixture, VoteVerifies) {
  Digest d = Sha256::Hash("h");
  Vote vote;
  vote.header_digest = d;
  vote.round = 4;
  vote.author = 2;
  vote.voter = 1;
  vote.sig = signers[1]->Sign(Certificate::VotePreimage(d, 4, 2));
  EXPECT_TRUE(vote.Verify(committee, *signers[0]));
  vote.voter = 0;  // Wrong voter for this signature.
  EXPECT_FALSE(vote.Verify(committee, *signers[0]));
}

TEST_F(TypesFixture, HeaderDigestIgnoresParentVoteSets) {
  // Two headers identical except for which 2f+1 voters assembled a parent
  // certificate must be the same block.
  Digest parent_digest = Sha256::Hash("parent");
  Certificate parent_a = Certify(parent_digest, 1, 0);
  Certificate parent_b = parent_a;
  parent_b.votes.erase(parent_b.votes.begin());
  parent_b.votes.emplace_back(3,
                              signers[3]->Sign(Certificate::VotePreimage(parent_digest, 1, 0)));

  BlockHeader h1;
  h1.author = 2;
  h1.round = 2;
  h1.parents = {parent_a};
  BlockHeader h2 = h1;
  h2.parents = {parent_b};
  EXPECT_EQ(h1.ComputeDigest(), h2.ComputeDigest());
}

TEST_F(TypesFixture, HeaderEncodeDecodeRoundTrip) {
  BlockHeader h;
  h.author = 1;
  h.round = 3;
  BatchRef ref;
  ref.digest = Sha256::Hash("batch");
  ref.worker = 1;
  ref.num_txs = 100;
  ref.payload_bytes = 51200;
  h.batches = {ref};
  h.parents = {Certify(Sha256::Hash("p1"), 2, 0), Certify(Sha256::Hash("p2"), 2, 1),
               Certify(Sha256::Hash("p3"), 2, 2)};
  h.author_sig = signers[1]->Sign(h.ComputeDigest());

  Writer w;
  h.Encode(w);
  EXPECT_EQ(w.size(), h.WireSize());
  Reader r(w.bytes());
  auto decoded = BlockHeader::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(decoded->ComputeDigest(), h.ComputeDigest());
  EXPECT_EQ(decoded->TotalTxs(), 100u);
  EXPECT_EQ(decoded->TotalPayloadBytes(), 51200u);
  EXPECT_EQ(decoded->parents.size(), 3u);
}

TEST_F(TypesFixture, VoteWireSizeMatchesEncoding) {
  Vote vote;
  vote.sig = signers[0]->Sign(Bytes{1});
  Writer w;
  vote.Encode(w);
  EXPECT_EQ(w.size(), vote.WireSize());
}

}  // namespace
}  // namespace nt
