// The ntlint lexer is the foundation every rule stands on: a literal that is
// mis-tokenized turns into phantom identifiers (false positives) or swallows
// real code (false negatives). These cases pin the C++ literal forms the real
// tree uses — raw strings with and without encoding prefixes and delimiters,
// digit separators, and preprocessor-style line-spliced comments.
#include "src/lint/lexer.h"

#include <string>

#include "gtest/gtest.h"

namespace nt {
namespace lint {
namespace {

// First token of the given kind, or nullptr.
const Token* FirstOf(const LexedFile& lex, TokKind kind) {
  for (const Token& t : lex.tokens) {
    if (t.kind == kind) {
      return &t;
    }
  }
  return nullptr;
}

int CountIdent(const LexedFile& lex, const std::string& text) {
  int n = 0;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == text) {
      ++n;
    }
  }
  return n;
}

TEST(Lexer, RawStringSwallowsQuotesAndCode) {
  LexedFile lex = Lex("auto s = R\"(rand() \"quoted\" getenv)\"; after();\n");
  // Everything inside the raw string is literal text, not tokens.
  EXPECT_EQ(CountIdent(lex, "rand"), 0);
  EXPECT_EQ(CountIdent(lex, "getenv"), 0);
  EXPECT_EQ(CountIdent(lex, "after"), 1);
  const Token* str = FirstOf(lex, TokKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "R\"(rand() \"quoted\" getenv)\"");
}

TEST(Lexer, RawStringCustomDelimiterStopsOnlyAtItsCloser) {
  // A plain )" inside the body must not close a delimited raw string.
  LexedFile lex = Lex("auto s = R\"x(body )\" still body)x\"; tail();\n");
  EXPECT_EQ(CountIdent(lex, "body"), 0);
  EXPECT_EQ(CountIdent(lex, "tail"), 1);
}

TEST(Lexer, PrefixedRawStringsAreSingleLiterals) {
  LexedFile lex = Lex(
      "auto a = u8R\"(rand())\";\n"
      "auto b = uR\"(rand())\";\n"
      "auto c = UR\"(rand())\";\n"
      "auto d = LR\"(rand())\";\n");
  // The encoding prefix must not be split off as an identifier that leaves
  // the raw string unrecognized (which would leak `rand` tokens).
  EXPECT_EQ(CountIdent(lex, "rand"), 0);
  EXPECT_EQ(CountIdent(lex, "u8R"), 0);
  EXPECT_EQ(CountIdent(lex, "uR"), 0);
  int strings = 0;
  for (const Token& t : lex.tokens) {
    strings += t.kind == TokKind::kString ? 1 : 0;
  }
  EXPECT_EQ(strings, 4);
}

TEST(Lexer, MultiLineRawStringKeepsLineNumbersForLaterTokens) {
  LexedFile lex = Lex("auto s = R\"(one\ntwo\nthree)\";\nint marker = 0;\n");
  bool found = false;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "marker") {
      EXPECT_EQ(t.line, 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lexer, DigitSeparatorsStayOneNumberToken) {
  LexedFile lex = Lex("uint64_t n = 1'000'000; uint32_t h = 0xFF'00;\n");
  int numbers = 0;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kNumber) {
      ++numbers;
    }
    // The separator must not open a char literal that eats the rest.
    EXPECT_NE(t.kind, TokKind::kChar);
  }
  EXPECT_EQ(numbers, 2);
  const Token* num = FirstOf(lex, TokKind::kNumber);
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(num->text, "1'000'000");
}

TEST(Lexer, CharLiteralStillLexesAfterNumbers) {
  LexedFile lex = Lex("w.PutU8('V'); int x = 3;\n");
  const Token* ch = FirstOf(lex, TokKind::kChar);
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->text, "'V'");
}

TEST(Lexer, LineSplicedCommentMergesContinuationLines) {
  // A backslash-newline splices the comment onto the next line, exactly like
  // the preprocessor: the identifiers on the continuation are comment text,
  // not code.
  LexedFile lex = Lex("// first part \\\nsecond part\nint live = 0;\n");
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_NE(lex.comments[0].text.find("second part"), std::string::npos);
  EXPECT_EQ(CountIdent(lex, "second"), 0);
  EXPECT_EQ(CountIdent(lex, "live"), 1);
  for (const Token& t : lex.tokens) {
    if (t.kind == TokKind::kIdent && t.text == "live") {
      EXPECT_EQ(t.line, 3);
    }
  }
}

TEST(Lexer, CrlfSplicedCommentAlsoMerges) {
  LexedFile lex = Lex("// head \\\r\ntail\r\nint live = 0;\r\n");
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_NE(lex.comments[0].text.find("tail"), std::string::npos);
  EXPECT_EQ(CountIdent(lex, "tail"), 0);
}

TEST(Lexer, UnsplicedCommentStopsAtNewline) {
  LexedFile lex = Lex("// just a comment\nint live = 0;\n");
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_EQ(lex.comments[0].text, " just a comment");  // Text after the //.
  EXPECT_EQ(CountIdent(lex, "live"), 1);
}

}  // namespace
}  // namespace lint
}  // namespace nt
