// Execution engine: transaction codec, state-machine semantics and
// determinism, executor ordering (including deferred batch data), and
// end-to-end replicated execution over a live Tusk cluster with state-digest
// agreement across replicas.
#include "src/exec/executor.h"
#include "src/exec/state_machine.h"

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"

namespace nt {
namespace {

TEST(ExecTxTest, EncodeDecodeRoundTrip) {
  ExecTx tx = ExecTx::Transfer("alice", "bob", 42);
  auto decoded = ExecTx::Decode(tx.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->op, ExecTx::Op::kTransfer);
  EXPECT_EQ(decoded->key, "alice");
  EXPECT_EQ(decoded->key2, "bob");
  EXPECT_EQ(decoded->amount, 42u);
}

TEST(ExecTxTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(ExecTx::Decode({1, 2, 3}).has_value());
  EXPECT_FALSE(ExecTx::Decode({}).has_value());
  Bytes wire = ExecTx::Put("k", {1}).Encode();
  wire.push_back(0);  // Trailing junk.
  EXPECT_FALSE(ExecTx::Decode(wire).has_value());
  Bytes bad_op = ExecTx::Put("k", {1}).Encode();
  bad_op[11] = 99;  // Operation byte out of range.
  EXPECT_FALSE(ExecTx::Decode(bad_op).has_value());
}

TEST(StateMachineTest, KvSemantics) {
  KvStateMachine sm;
  EXPECT_EQ(sm.Apply(ExecTx::Put("color", {0xff}).Encode()), ExecStatus::kApplied);
  EXPECT_EQ(*sm.Get("color"), (Bytes{0xff}));
  EXPECT_EQ(sm.Apply(ExecTx::Put("color", {0x00}).Encode()), ExecStatus::kApplied);
  EXPECT_EQ(*sm.Get("color"), (Bytes{0x00}));
  EXPECT_EQ(sm.Apply(ExecTx::Delete("color").Encode()), ExecStatus::kApplied);
  EXPECT_FALSE(sm.Get("color").has_value());
}

TEST(StateMachineTest, LedgerSemantics) {
  KvStateMachine sm;
  sm.Apply(ExecTx::Mint("alice", 100).Encode());
  EXPECT_EQ(sm.BalanceOf("alice"), 100u);
  EXPECT_EQ(sm.Apply(ExecTx::Transfer("alice", "bob", 30).Encode()), ExecStatus::kApplied);
  EXPECT_EQ(sm.BalanceOf("alice"), 70u);
  EXPECT_EQ(sm.BalanceOf("bob"), 30u);
  // Overdraft rejected, balances untouched.
  EXPECT_EQ(sm.Apply(ExecTx::Transfer("alice", "bob", 1000).Encode()),
            ExecStatus::kRejectedInsufficient);
  EXPECT_EQ(sm.BalanceOf("alice"), 70u);
  EXPECT_EQ(sm.BalanceOf("bob"), 30u);
  // Transfers from unknown accounts rejected.
  EXPECT_EQ(sm.Apply(ExecTx::Transfer("carol", "bob", 1).Encode()),
            ExecStatus::kRejectedInsufficient);
  EXPECT_EQ(sm.rejected(), 2u);
}

TEST(StateMachineTest, MalformedTransactionsAffectDigestDeterministically) {
  KvStateMachine a, b;
  Bytes junk = {9, 9, 9};
  EXPECT_EQ(a.Apply(junk), ExecStatus::kRejectedMalformed);
  EXPECT_EQ(b.Apply(junk), ExecStatus::kRejectedMalformed);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(StateMachineTest, DigestReflectsSequence) {
  KvStateMachine a, b;
  Bytes tx1 = ExecTx::Mint("x", 1).Encode();
  Bytes tx2 = ExecTx::Mint("y", 2).Encode();
  a.Apply(tx1);
  a.Apply(tx2);
  b.Apply(tx2);
  b.Apply(tx1);
  // Different order -> different chained digest (it certifies the sequence)
  // even though the final snapshot is the same.
  EXPECT_NE(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.ComputeSnapshotDigest(), b.ComputeSnapshotDigest());
}

TEST(StateMachineTest, ReplicasAgreeOnIdenticalSequences) {
  KvStateMachine a, b;
  for (int i = 0; i < 100; ++i) {
    Bytes tx = (i % 3 == 0) ? ExecTx::Mint("acct" + std::to_string(i % 7), i).Encode()
               : (i % 3 == 1)
                   ? ExecTx::Put("key" + std::to_string(i % 5), {static_cast<uint8_t>(i)}).Encode()
                   : ExecTx::Transfer("acct0", "acct1", 1).Encode();
    a.Apply(tx);
    b.Apply(tx);
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(a.ComputeSnapshotDigest(), b.ComputeSnapshotDigest());
  EXPECT_EQ(a.applied(), b.applied());
}

// ----------------------------------------------------------------- Executor

TEST(ExecutorTest, ExecutesHeadersInOrder) {
  KvStateMachine sm;
  std::map<Digest, std::shared_ptr<const Batch>> store;
  Executor executor(&sm, [&store](const BatchRef& ref) {
    auto it = store.find(ref.digest);
    return it == store.end() ? nullptr : it->second;
  });

  auto make_batch = [&store](std::vector<Bytes> txs) {
    auto batch = std::make_shared<Batch>();
    batch->txs = std::move(txs);
    batch->num_txs = batch->txs.size();
    Digest d = batch->ComputeDigest();
    store[d] = batch;
    BatchRef ref;
    ref.digest = d;
    ref.num_txs = batch->num_txs;
    return ref;
  };

  auto header1 = std::make_shared<BlockHeader>();
  header1->round = 1;
  header1->batches.push_back(make_batch({ExecTx::Mint("a", 10).Encode()}));
  auto header2 = std::make_shared<BlockHeader>();
  header2->round = 2;
  header2->batches.push_back(make_batch({ExecTx::Transfer("a", "b", 4).Encode()}));

  executor.OnCommittedHeader(header1);
  executor.OnCommittedHeader(header2);
  EXPECT_EQ(executor.executed_headers(), 2u);
  EXPECT_EQ(sm.BalanceOf("a"), 6u);
  EXPECT_EQ(sm.BalanceOf("b"), 4u);
}

TEST(ExecutorTest, DefersOnMissingBatchThenPreservesOrder) {
  KvStateMachine sm;
  std::map<Digest, std::shared_ptr<const Batch>> store;
  Executor executor(&sm, [&store](const BatchRef& ref) {
    auto it = store.find(ref.digest);
    return it == store.end() ? nullptr : it->second;
  });

  // Header 1 references a batch whose content arrives late; header 2's data
  // is ready. Execution must wait and then run 1 before 2.
  auto batch1 = std::make_shared<Batch>();
  batch1->txs = {ExecTx::Mint("a", 5).Encode()};
  Digest d1 = batch1->ComputeDigest();
  auto batch2 = std::make_shared<Batch>();
  batch2->txs = {ExecTx::Transfer("a", "b", 5).Encode()};
  Digest d2 = batch2->ComputeDigest();
  store[d2] = batch2;

  auto header1 = std::make_shared<BlockHeader>();
  header1->round = 1;
  BatchRef ref1;
  ref1.digest = d1;
  header1->batches.push_back(ref1);
  auto header2 = std::make_shared<BlockHeader>();
  header2->round = 2;
  BatchRef ref2;
  ref2.digest = d2;
  header2->batches.push_back(ref2);

  executor.OnCommittedHeader(header1);
  executor.OnCommittedHeader(header2);
  EXPECT_EQ(executor.executed_headers(), 0u);  // Blocked on batch1's data.
  EXPECT_EQ(executor.pending_headers(), 2u);

  store[d1] = batch1;
  executor.RetryPending();
  EXPECT_EQ(executor.executed_headers(), 2u);
  // The transfer succeeded only because the mint executed first.
  EXPECT_EQ(sm.BalanceOf("b"), 5u);
  EXPECT_EQ(sm.rejected(), 0u);
}

TEST(ExecutorTest, PendingQueueDrainsInCommitOrderAcrossRetries) {
  KvStateMachine sm;
  std::map<Digest, std::shared_ptr<const Batch>> store;
  Executor executor(&sm, [&store](const BatchRef& ref) {
    auto it = store.find(ref.digest);
    return it == store.end() ? nullptr : it->second;
  });

  // Three headers whose batch data arrives in reverse order. Each
  // RetryPending drains exactly the prefix of the commit order whose data is
  // available — never a later header ahead of an earlier one.
  std::vector<std::shared_ptr<Batch>> batches;
  std::vector<std::shared_ptr<BlockHeader>> headers;
  for (int i = 0; i < 3; ++i) {
    auto batch = std::make_shared<Batch>();
    batch->txs = {ExecTx::Mint("acct", 10).Encode()};
    batch->txs.push_back(ExecTx::Put("k" + std::to_string(i), {uint8_t(i)}).Encode());
    batch->num_txs = batch->txs.size();
    batches.push_back(batch);
    auto header = std::make_shared<BlockHeader>();
    header->round = static_cast<Round>(i + 1);
    BatchRef ref;
    ref.digest = batch->ComputeDigest();
    header->batches.push_back(ref);
    headers.push_back(header);
    executor.OnCommittedHeader(header);
  }
  EXPECT_EQ(executor.executed_headers(), 0u);
  EXPECT_EQ(executor.pending_headers(), 3u);

  store[batches[2]->ComputeDigest()] = batches[2];
  executor.RetryPending();
  EXPECT_EQ(executor.executed_headers(), 0u);  // Head of the queue still blocked.
  EXPECT_EQ(executor.pending_headers(), 3u);

  store[batches[0]->ComputeDigest()] = batches[0];
  executor.RetryPending();
  EXPECT_EQ(executor.executed_headers(), 1u);  // Drains exactly the ready prefix.
  EXPECT_EQ(executor.pending_headers(), 2u);

  store[batches[1]->ComputeDigest()] = batches[1];
  executor.RetryPending();
  EXPECT_EQ(executor.executed_headers(), 3u);
  EXPECT_EQ(executor.pending_headers(), 0u);
  EXPECT_EQ(sm.BalanceOf("acct"), 30u);
}

TEST(ExecutorTest, AppliedAndRejectedCountersAreSplit) {
  KvStateMachine sm;
  std::map<Digest, std::shared_ptr<const Batch>> store;
  Executor executor(&sm, [&store](const BatchRef& ref) {
    auto it = store.find(ref.digest);
    return it == store.end() ? nullptr : it->second;
  });

  auto batch = std::make_shared<Batch>();
  batch->txs = {ExecTx::Mint("a", 5).Encode(),           // Applied.
                ExecTx::Transfer("a", "b", 3).Encode(),  // Applied.
                ExecTx::Transfer("ghost", "b", 1).Encode(),  // Rejected: unfunded.
                Bytes{9, 9, 9}};                             // Rejected: malformed.
  batch->num_txs = batch->txs.size();
  store[batch->ComputeDigest()] = batch;
  auto header = std::make_shared<BlockHeader>();
  header->round = 1;
  BatchRef ref;
  ref.digest = batch->ComputeDigest();
  header->batches.push_back(ref);
  executor.OnCommittedHeader(header);

  // The old lumped executed-txs counter is gone; both components surface.
  EXPECT_EQ(executor.applied_txs(), 2u);
  EXPECT_EQ(executor.rejected_txs(), 2u);
}

// ------------------------------------------------- end-to-end replication

TEST(ExecClusterTest, ReplicatedExecutionAgreesAcrossValidators) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 99;
  Cluster cluster(config);

  std::vector<KvStateMachine> machines(4);
  std::vector<std::unique_ptr<Executor>> executors;
  for (ValidatorId v = 0; v < 4; ++v) {
    Worker* worker = cluster.worker(v, 0);
    executors.push_back(std::make_unique<Executor>(
        &machines[v],
        [worker](const BatchRef& ref) { return worker->GetBatch(ref.digest); }));
    Executor* executor = executors.back().get();
    cluster.tusk(v)->add_on_commit([executor](const Tusk::Committed& committed) {
      executor->OnCommittedHeader(committed.header);
      executor->RetryPending();
    });
  }
  cluster.Start();

  // Clients at different validators: mints then cross-account transfers.
  cluster.worker(0, 0)->SubmitBlock({ExecTx::Mint("alice", 1000).Encode()});
  cluster.worker(1, 0)->SubmitBlock({ExecTx::Mint("bob", 500).Encode()});
  cluster.scheduler().RunUntil(Seconds(4));
  for (int i = 0; i < 10; ++i) {
    cluster.worker(i % 4, 0)->SubmitBlock(
        {ExecTx::Transfer(i % 2 == 0 ? "alice" : "bob", i % 2 == 0 ? "bob" : "alice", 10)
             .Encode()});
    cluster.scheduler().RunUntil(Seconds(5 + i));
  }
  cluster.scheduler().RunUntil(Seconds(25));

  // Every replica executed everything, with identical chained digests.
  ASSERT_GT(machines[0].applied(), 10u);
  for (ValidatorId v = 1; v < 4; ++v) {
    EXPECT_EQ(machines[v].state_digest(), machines[0].state_digest()) << "replica " << v;
    EXPECT_EQ(machines[v].applied(), machines[0].applied());
  }
  // Conservation: total supply is what was minted.
  EXPECT_EQ(machines[0].BalanceOf("alice") + machines[0].BalanceOf("bob"), 1500u);
}

}  // namespace
}  // namespace nt
