# Asserts that `ntlint --jobs N` is observably identical to a sequential
# lint: same stdout byte-for-byte (findings in file order, same suppression
# report and summary line) and same exit code. The forked pass-1 workers
# serialize FileFacts back to the parent, which re-merges them in sorted file
# order — this test is the contract that that round-trip loses nothing.
# Run via ctest as a script test with -DNTLINT=<binary> -DLINT_ROOT=<src dir>.
execute_process(COMMAND ${NTLINT} ${LINT_ROOT}
                OUTPUT_VARIABLE seq_out RESULT_VARIABLE seq_rc)
execute_process(COMMAND ${NTLINT} --jobs 4 ${LINT_ROOT}
                OUTPUT_VARIABLE par_out RESULT_VARIABLE par_rc)
if(NOT seq_rc EQUAL par_rc)
  message(FATAL_ERROR "exit codes differ: sequential=${seq_rc} parallel=${par_rc}")
endif()
if(NOT seq_out STREQUAL par_out)
  message(FATAL_ERROR "parallel output differs from sequential:\n"
                      "--- sequential ---\n${seq_out}\n--- parallel ---\n${par_out}")
endif()
