// The certificate DAG: storage, conflict detection, garbage collection,
// path queries, and deterministic causal-history linearization.
#include "src/narwhal/dag.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

// Test-local DAG builder: fabricates headers/certificates without
// cryptography (the Dag never verifies — the Primary does).
class DagBuilder {
 public:
  struct Node {
    Digest digest{};
    std::shared_ptr<BlockHeader> header;
  };

  // Adds a block for (round, author) referencing the given parents.
  Node Add(Dag& dag, Round round, ValidatorId author, const std::vector<Node>& parents,
           bool with_header = true) {
    auto header = std::make_shared<BlockHeader>();
    header->author = author;
    header->round = round;
    for (const Node& p : parents) {
      Certificate parent_cert;
      parent_cert.header_digest = p.digest;
      parent_cert.round = p.header->round;
      parent_cert.author = p.header->author;
      header->parents.push_back(parent_cert);
    }
    Node node;
    node.header = header;
    node.digest = header->ComputeDigest();

    Certificate cert;
    cert.header_digest = node.digest;
    cert.round = round;
    cert.author = author;
    EXPECT_TRUE(dag.AddCertificate(cert));
    if (with_header) {
      dag.AddHeader(header, node.digest);
    }
    return node;
  }
};

TEST(DagTest, StoresAndLooksUpCertificates) {
  Dag dag;
  DagBuilder b;
  auto n = b.Add(dag, 3, 2, {});
  EXPECT_NE(dag.GetCert(3, 2), nullptr);
  EXPECT_EQ(dag.GetCert(3, 1), nullptr);
  EXPECT_EQ(dag.GetCert(2, 2), nullptr);
  EXPECT_NE(dag.GetCertByDigest(n.digest), nullptr);
  EXPECT_TRUE(dag.HasHeader(n.digest));
  EXPECT_EQ(dag.CertCountAt(3), 1u);
  EXPECT_EQ(dag.HighestRound(), 3u);
}

TEST(DagTest, DuplicateIsIdempotentConflictRejected) {
  Dag dag;
  DagBuilder b;
  auto n = b.Add(dag, 1, 0, {});
  Certificate dup;
  dup.header_digest = n.digest;
  dup.round = 1;
  dup.author = 0;
  EXPECT_TRUE(dag.AddCertificate(dup));  // Idempotent.
  EXPECT_EQ(dag.TotalCertificates(), 1u);

  Certificate conflict;
  conflict.header_digest = Sha256::Hash("other");
  conflict.round = 1;
  conflict.author = 0;
  EXPECT_FALSE(dag.AddCertificate(conflict));  // Equivocation.
  EXPECT_EQ(dag.GetCert(1, 0)->header_digest, n.digest);
}

TEST(DagTest, HasPathFollowsParentEdges) {
  Dag dag;
  DagBuilder b;
  auto r1a = b.Add(dag, 1, 0, {});
  auto r1b = b.Add(dag, 1, 1, {});
  auto r2 = b.Add(dag, 2, 0, {r1a});
  auto r3 = b.Add(dag, 3, 0, {r2});
  EXPECT_TRUE(dag.HasPath(r3.digest, r1a.digest));
  EXPECT_TRUE(dag.HasPath(r3.digest, r2.digest));
  EXPECT_TRUE(dag.HasPath(r3.digest, r3.digest));  // Reflexive.
  EXPECT_FALSE(dag.HasPath(r3.digest, r1b.digest));
  EXPECT_FALSE(dag.HasPath(r1a.digest, r3.digest));  // Wrong direction.
}

TEST(DagTest, CausalHistoryOrderedByRoundThenAuthor) {
  Dag dag;
  DagBuilder b;
  auto a0 = b.Add(dag, 0, 0, {});
  auto a1 = b.Add(dag, 0, 1, {});
  auto a2 = b.Add(dag, 0, 2, {});
  auto m1 = b.Add(dag, 1, 2, {a2, a1, a0});
  auto m2 = b.Add(dag, 1, 1, {a0, a1});
  auto top = b.Add(dag, 2, 0, {m1, m2});

  Dag::History history = dag.CollectCausalHistory(top.digest, {});
  ASSERT_TRUE(history.missing.empty());
  ASSERT_EQ(history.ordered.size(), 6u);
  EXPECT_EQ(history.ordered[0], a0.digest);
  EXPECT_EQ(history.ordered[1], a1.digest);
  EXPECT_EQ(history.ordered[2], a2.digest);
  EXPECT_EQ(history.ordered[3], m2.digest);  // Round 1: author 1 < author 2.
  EXPECT_EQ(history.ordered[4], m1.digest);
  EXPECT_EQ(history.ordered[5], top.digest);  // Anchor last.
}

TEST(DagTest, CausalHistoryExcludesCommitted) {
  Dag dag;
  DagBuilder b;
  auto a = b.Add(dag, 0, 0, {});
  auto m = b.Add(dag, 1, 0, {a});
  auto top = b.Add(dag, 2, 0, {m});

  std::set<Digest> committed = {a.digest, m.digest};
  Dag::History history = dag.CollectCausalHistory(top.digest, committed);
  ASSERT_EQ(history.ordered.size(), 1u);
  EXPECT_EQ(history.ordered[0], top.digest);

  // A fully-committed anchor yields nothing.
  committed.insert(top.digest);
  EXPECT_TRUE(dag.CollectCausalHistory(top.digest, committed).ordered.empty());
}

TEST(DagTest, CausalHistoryReportsMissingHeaders) {
  Dag dag;
  DagBuilder b;
  auto a = b.Add(dag, 0, 0, {}, /*with_header=*/false);
  auto top = b.Add(dag, 1, 0, {a});
  Dag::History history = dag.CollectCausalHistory(top.digest, {});
  ASSERT_EQ(history.missing.size(), 1u);
  EXPECT_EQ(history.missing[0], a.digest);
  EXPECT_TRUE(history.ordered.empty());  // Nothing ordered while incomplete.
}

TEST(DagTest, GarbageCollectionDropsOldRounds) {
  Dag dag;
  DagBuilder b;
  std::vector<DagBuilder::Node> prev;
  DagBuilder::Node cursor;
  for (Round r = 0; r < 10; ++r) {
    cursor = b.Add(dag, r, 0, prev);
    prev = {cursor};
  }
  EXPECT_EQ(dag.TotalCertificates(), 10u);
  std::vector<Dag::Collected> collected = dag.GarbageCollect(5);
  EXPECT_EQ(collected.size(), 5u);  // Rounds 0..4.
  for (const Dag::Collected& record : collected) {
    EXPECT_NE(record.header, nullptr);  // Evicted records carry their data.
    EXPECT_EQ(record.cert.header_digest, record.digest);
  }
  EXPECT_EQ(dag.gc_round(), 5u);
  EXPECT_EQ(dag.TotalCertificates(), 5u);
  EXPECT_EQ(dag.GetCert(4, 0), nullptr);
  EXPECT_NE(dag.GetCert(5, 0), nullptr);

  // History collection stops at the horizon instead of reporting missing.
  Dag::History history = dag.CollectCausalHistory(cursor.digest, {});
  EXPECT_TRUE(history.missing.empty());
  EXPECT_EQ(history.ordered.size(), 5u);

  // Certificates below the horizon are ignored on arrival.
  Certificate stale;
  stale.header_digest = Sha256::Hash("stale");
  stale.round = 2;
  stale.author = 3;
  EXPECT_TRUE(dag.AddCertificate(stale));
  EXPECT_EQ(dag.GetCert(2, 3), nullptr);

  // GC never moves backwards.
  EXPECT_TRUE(dag.GarbageCollect(3).empty());
  EXPECT_EQ(dag.gc_round(), 5u);
}

TEST(DagTest, BoundedMemoryUnderContinuousGc) {
  // Simulates the paper's §3.3 claim: with a moving horizon, the DAG holds
  // O(gc_depth * n) state regardless of run length.
  Dag dag;
  DagBuilder b;
  const Round kDepth = 5;
  std::vector<DagBuilder::Node> prev;
  for (Round r = 0; r < 200; ++r) {
    std::vector<DagBuilder::Node> current;
    for (ValidatorId v = 0; v < 4; ++v) {
      current.push_back(b.Add(dag, r, v, prev));
    }
    prev = current;
    if (r > kDepth) {
      dag.GarbageCollect(r - kDepth);
    }
  }
  EXPECT_LE(dag.TotalCertificates(), (kDepth + 1) * 4u);
  EXPECT_LE(dag.TotalHeaders(), (kDepth + 1) * 4u);
}

}  // namespace
}  // namespace nt
