#include "src/common/codec.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  Writer w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  w.PutBool(true);
  w.PutBool(false);

  Reader r(w.bytes());
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_EQ(r.GetU16(), 0x1234);
  EXPECT_EQ(r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.GetI64(), -42);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, LittleEndianLayout) {
  Writer w;
  w.PutU32(0x01020304);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(CodecTest, VarBytesRoundTrip) {
  Writer w;
  Bytes payload = {9, 8, 7, 6};
  w.PutVar(payload);
  w.PutVar(Bytes{});
  w.PutString("hello");

  Reader r(w.bytes());
  EXPECT_EQ(r.GetVar(), payload);
  EXPECT_TRUE(r.GetVar().empty());
  EXPECT_EQ(r.GetString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, RawAndArray) {
  std::array<uint8_t, 4> arr = {1, 2, 3, 4};
  Writer w;
  w.PutRaw(arr);
  Reader r(w.bytes());
  auto back = r.GetArray<4>();
  EXPECT_EQ(back, arr);
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, UnderflowIsStickyAndSafe) {
  Writer w;
  w.PutU16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.GetU32(), 0u);  // Underflow: zero.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU64(), 0u);  // Still zero, still failed.
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.AtEnd());
}

TEST(CodecTest, VarUnderflowReturnsEmpty) {
  Writer w;
  w.PutU32(1000);  // Length prefix far beyond available bytes.
  w.PutU8(1);
  Reader r(w.bytes());
  EXPECT_TRUE(r.GetVar().empty());
  EXPECT_FALSE(r.ok());
}

TEST(CodecTest, AtEndRequiresFullConsumption) {
  Writer w;
  w.PutU32(1);
  w.PutU32(2);
  Reader r(w.bytes());
  r.GetU32();
  EXPECT_FALSE(r.AtEnd());
  r.GetU32();
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, ReserveConstructor) {
  Writer w(1024);
  w.PutU64(5);
  EXPECT_EQ(w.size(), 8u);
  Bytes taken = w.Take();
  EXPECT_EQ(taken.size(), 8u);
}

}  // namespace
}  // namespace nt
