#include "src/common/stats.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

TEST(StatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
}

TEST(StatsTest, MeanAndStdDev) {
  SampleStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample stddev of this classic dataset is sqrt(32/7).
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(StatsTest, SingleSample) {
  SampleStats s;
  s.Add(3.5);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 3.5);
}

TEST(StatsTest, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.01, 1e-9);
}

TEST(StatsTest, PercentileUnsortedInput) {
  SampleStats s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.Percentile(50), 3.0);
}

TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  // Linear interpolation (NumPy default), documented as such: the median of
  // {1, 2} is 1.5, not a nearest-rank 1 or 2.
  SampleStats s;
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1.5);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 1.25);
}

TEST(StatsTest, MemoizedSortInvalidatedOnAdd) {
  // The sorted view is cached across Percentile calls and must be rebuilt
  // after Add — an Add between queries may not return stale answers.
  SampleStats s;
  s.Add(10.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);  // Served from the memo.
  s.Add(5.0);                                 // Invalidates.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 20.0);
  s.Add(30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 30.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 15.0);
}

TEST(StatsTest, IncrementalMinMax) {
  SampleStats s;
  s.Add(-2.5);
  EXPECT_DOUBLE_EQ(s.Min(), -2.5);
  EXPECT_DOUBLE_EQ(s.Max(), -2.5);
  s.Add(7.0);
  s.Add(-9.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Min(), -9.0);
  EXPECT_DOUBLE_EQ(s.Max(), 7.0);
}

}  // namespace
}  // namespace nt
