// Client-side behaviours from §8.4: rate control, latency sampling,
// re-submission with failover past a crashed entry validator, and the
// worker's Mir-BFT-style duplicate suppression.
#include "src/runtime/client.h"

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"

namespace nt {
namespace {

ClusterConfig TuskConfig(uint64_t seed) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = seed;
  return config;
}

TEST(LoadGeneratorTest, SubmitsAtConfiguredRate) {
  Cluster cluster(TuskConfig(1));
  LoadGenerator::Options options;
  options.rate_tps = 1000;
  options.stop_at = Seconds(10);
  LoadGenerator client(&cluster, 0, 0, options);
  client.Start();
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));
  // 10 seconds at 1000 tx/s, +- tick quantization.
  EXPECT_NEAR(static_cast<double>(client.submitted_txs()), 10000.0, 100.0);
}

TEST(LoadGeneratorTest, FractionalRatesAccumulate) {
  Cluster cluster(TuskConfig(2));
  LoadGenerator::Options options;
  options.rate_tps = 7;  // Far less than one tx per 10ms tick.
  options.stop_at = Seconds(10);
  LoadGenerator client(&cluster, 0, 0, options);
  client.Start();
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));
  EXPECT_NEAR(static_cast<double>(client.submitted_txs()), 70.0, 3.0);
}

TEST(LoadGeneratorTest, StopsAtDeadline) {
  Cluster cluster(TuskConfig(3));
  LoadGenerator::Options options;
  options.rate_tps = 1000;
  options.stop_at = Seconds(2);
  LoadGenerator client(&cluster, 0, 0, options);
  client.Start();
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));
  EXPECT_LT(client.submitted_txs(), 2100u);
}

TEST(LoadGeneratorTest, NoResubmissionWhenHealthy) {
  Cluster cluster(TuskConfig(4));
  cluster.metrics().set_observer(0);
  cluster.metrics().SetWindow(0, Seconds(15));
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(10);
  options.resubmit_timeout = Seconds(6);  // Far above healthy commit latency.
  LoadGenerator client(&cluster, 0, 0, options);
  client.Start();
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(15));
  EXPECT_EQ(client.resubmitted_txs(), 0u);
}

TEST(LoadGeneratorTest, ResubmitsWithFailoverPastCrashedValidator) {
  // The client's entry validator crashes right away; with re-submission and
  // failover, its tracked transactions still commit via other validators
  // (paper §8.4: clients re-submit if not sequenced in time).
  Cluster cluster(TuskConfig(5));
  cluster.CrashValidator(1, 0);
  cluster.metrics().set_observer(0);
  cluster.metrics().SetWindow(0, Seconds(40));
  LoadGenerator::Options options;
  options.rate_tps = 200;
  options.sample_rate = 10;
  options.stop_at = Seconds(10);
  options.resubmit_timeout = Seconds(5);
  options.failover = true;
  LoadGenerator client(&cluster, /*validator=*/1, 0, options);  // Crashed entry.
  client.Start();
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(40));

  EXPECT_GT(client.resubmitted_txs(), 10u);
  // The re-submitted samples eventually committed (latency recorded).
  EXPECT_GT(cluster.metrics().latency_seconds().count(), 20u);
  // And their latency reflects the failover delay.
  EXPECT_GT(cluster.metrics().latency_seconds().Mean(), 4.0);
}

TEST(DedupTest, WorkerDropsDuplicatePayloads) {
  Cluster cluster(TuskConfig(6));
  cluster.Start();
  Worker* worker = cluster.worker(0, 0);
  Bytes tx = {1, 2, 3, 4};
  worker->SubmitTransaction(tx, std::nullopt);
  worker->SubmitTransaction(tx, std::nullopt);  // Duplicate: dropped.
  worker->SubmitTransaction(Bytes{5, 6}, std::nullopt);
  EXPECT_EQ(worker->duplicate_txs_dropped(), 1u);
  cluster.scheduler().RunUntil(Seconds(1));
  // Only two distinct transactions entered the batch stream.
  EXPECT_EQ(worker->batches_sealed(), 1u);
}

TEST(DedupTest, WindowEviction) {
  ClusterConfig config = TuskConfig(7);
  config.narwhal.dedup_window = 2;
  Cluster cluster(config);
  cluster.Start();
  Worker* worker = cluster.worker(0, 0);
  worker->SubmitTransaction(Bytes{1}, std::nullopt);
  worker->SubmitTransaction(Bytes{2}, std::nullopt);
  worker->SubmitTransaction(Bytes{3}, std::nullopt);  // Evicts {1}.
  worker->SubmitTransaction(Bytes{1}, std::nullopt);  // No longer remembered.
  EXPECT_EQ(worker->duplicate_txs_dropped(), 0u);
  worker->SubmitTransaction(Bytes{1}, std::nullopt);  // Now remembered again.
  EXPECT_EQ(worker->duplicate_txs_dropped(), 1u);
}

TEST(DedupTest, CanBeDisabled) {
  ClusterConfig config = TuskConfig(8);
  config.narwhal.dedup_window = 0;
  Cluster cluster(config);
  cluster.Start();
  Worker* worker = cluster.worker(0, 0);
  worker->SubmitTransaction(Bytes{9}, std::nullopt);
  worker->SubmitTransaction(Bytes{9}, std::nullopt);
  EXPECT_EQ(worker->duplicate_txs_dropped(), 0u);
}

}  // namespace
}  // namespace nt
