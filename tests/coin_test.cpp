#include "src/crypto/coin.h"

#include <gtest/gtest.h>

#include <map>

namespace nt {
namespace {

TEST(CommonCoinTest, DeterministicAcrossInstances) {
  CommonCoin a(42);
  CommonCoin b(42);
  for (uint64_t wave = 0; wave < 100; ++wave) {
    EXPECT_EQ(a.LeaderOf(wave, 10), b.LeaderOf(wave, 10));
  }
}

TEST(CommonCoinTest, DifferentSeedsDiffer) {
  CommonCoin a(1);
  CommonCoin b(2);
  int differing = 0;
  for (uint64_t wave = 0; wave < 100; ++wave) {
    if (a.LeaderOf(wave, 50) != b.LeaderOf(wave, 50)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50);
}

TEST(CommonCoinTest, InRangeAndRoughlyUniform) {
  CommonCoin coin(7);
  const uint32_t n = 4;
  std::map<uint32_t, int> counts;
  const int waves = 4000;
  for (uint64_t wave = 0; wave < waves; ++wave) {
    uint32_t leader = coin.LeaderOf(wave, n);
    ASSERT_LT(leader, n);
    counts[leader]++;
  }
  // Each of 4 validators should be elected ~1000 times; allow wide slack.
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_GT(counts[i], 800) << "validator " << i;
    EXPECT_LT(counts[i], 1200) << "validator " << i;
  }
}

TEST(ShareCoinTest, SharesAreDistinctPerValidator) {
  ShareCoin coin(11, 7);
  EXPECT_NE(coin.Share(0, 5), coin.Share(1, 5));
  EXPECT_NE(coin.Share(0, 5), coin.Share(0, 6));
}

TEST(ShareCoinTest, SubsetIndependentCombination) {
  const uint32_t n = 10;  // f = 3, threshold = 4.
  ShareCoin coin(99, n);
  for (uint64_t wave = 0; wave < 20; ++wave) {
    // Combine three different qualifying subsets; all must agree.
    std::vector<Digest> s1, s2, s3;
    for (uint32_t i = 0; i < 4; ++i) {
      s1.push_back(coin.Share(i, wave));
      s2.push_back(coin.Share(i + 3, wave));
      s3.push_back(coin.Share(2 * i, wave));
    }
    uint32_t v1 = ShareCoin::Combine(s1, n);
    uint32_t v2 = ShareCoin::Combine(s2, n);
    uint32_t v3 = ShareCoin::Combine(s3, n);
    EXPECT_EQ(v1, v2);
    EXPECT_EQ(v2, v3);
    EXPECT_LT(v1, n);
  }
}

TEST(ShareCoinTest, MatchesOwnLeaderOf) {
  const uint32_t n = 4;
  ShareCoin coin(5, n);
  for (uint64_t wave = 0; wave < 10; ++wave) {
    std::vector<Digest> shares;
    for (uint32_t i = 1; i <= 2; ++i) {  // f+1 = 2 for n = 4.
      shares.push_back(coin.Share(i, wave));
    }
    EXPECT_EQ(ShareCoin::Combine(shares, n), coin.LeaderOf(wave, n));
  }
}

}  // namespace
}  // namespace nt
