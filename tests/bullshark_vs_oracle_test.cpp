// Differential test of the live Bullshark commit rule against the pure
// reference replay (src/check/oracle.h), mirroring tusk_vs_oracle_test: 200
// seeded random DAGs — varying committee size, per-round participation,
// parent choice, and GC depth — are fed certificate-by-certificate into a
// live Bullshark instance and once, wholesale, into ReplayBullshark. The two
// interpretations of the 2-round commit rule must produce identical
// committed sequences. A reputation-enabled band exercises the Shoal anchor
// schedule the same way, and two cross-protocol tests drive Tusk and
// Bullshark over the *same* DAG: each must stay prefix-consistent with its
// own oracle, and on a fault-free DAG Bullshark's per-header commit lag
// (feed round at delivery minus header round) must beat Tusk's — the
// latency claim the 2-round rule exists for.
#include "src/check/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>

#include "src/bullshark/bullshark.h"
#include "src/crypto/coin.h"
#include "src/narwhal/primary.h"
#include "src/tusk/tusk.h"

namespace nt {
namespace {

struct NullNode : NetNode {
  void OnMessage(uint32_t, const MessagePtr&) override {}
};

// A DAG built once from a seed and replayed identically into any number of
// harnesses (Tusk and Bullshark must see byte-identical structure, but they
// GC the primary's DAG at different paces, so they cannot share one).
struct DagPlan {
  struct Block {
    Round round = 0;
    ValidatorId author = 0;
    std::vector<size_t> parents;  // Indices into `blocks`.
  };
  uint32_t n = 4;
  Round gc_depth = 1000;
  std::vector<Block> blocks;
};

// Grows a random plan with the same degrees of freedom as the Tusk oracle
// test: every round keeps a quorum-or-more of authors and every header
// references a random quorum-or-more subset of the previous round.
DagPlan RandomPlan(uint64_t seed) {
  std::mt19937_64 rng(seed);
  DagPlan plan;
  plan.n = (rng() % 2 == 0) ? 4 : 7;
  plan.gc_depth = (rng() % 2 == 0) ? 1000 : 20;
  uint32_t quorum = 2 * ((plan.n - 1) / 3) + 1;

  uint32_t rounds = 10 + static_cast<uint32_t>(rng() % 16);
  std::vector<size_t> prev;
  for (Round r = 1; r <= rounds; ++r) {
    std::vector<ValidatorId> authors(plan.n);
    for (uint32_t v = 0; v < plan.n; ++v) {
      authors[v] = v;
    }
    for (uint32_t i = plan.n - 1; i > 0; --i) {
      std::swap(authors[i], authors[rng() % (i + 1)]);
    }
    uint32_t count = quorum + static_cast<uint32_t>(rng() % (plan.n - quorum + 1));
    std::vector<size_t> next;
    for (uint32_t i = 0; i < count; ++i) {
      DagPlan::Block block;
      block.round = r;
      block.author = authors[i];
      if (r > 1) {
        std::vector<size_t> parents = prev;
        for (uint32_t j = static_cast<uint32_t>(parents.size()) - 1; j > 0; --j) {
          std::swap(parents[j], parents[rng() % (j + 1)]);
        }
        uint32_t keep = quorum + static_cast<uint32_t>(rng() % (parents.size() - quorum + 1));
        parents.resize(keep);
        block.parents = std::move(parents);
      }
      next.push_back(plan.blocks.size());
      plan.blocks.push_back(std::move(block));
    }
    prev = std::move(next);
  }
  return plan;
}

// A fault-free full DAG: every author every round, every block referencing
// all of the previous round — the best case both commit rules advertise.
DagPlan FullPlan(uint32_t n, Round rounds) {
  DagPlan plan;
  plan.n = n;
  std::vector<size_t> prev;
  for (Round r = 1; r <= rounds; ++r) {
    std::vector<size_t> next;
    for (uint32_t v = 0; v < n; ++v) {
      DagPlan::Block block;
      block.round = r;
      block.author = v;
      block.parents = prev;
      next.push_back(plan.blocks.size());
      plan.blocks.push_back(std::move(block));
    }
    prev = std::move(next);
  }
  return plan;
}

// One validator's live consensus over an externally built DAG, mirroring
// every certificate and header into a union DAG for the oracle. The
// consensus instance is attached by the subclass ctor.
class HarnessBase {
 public:
  HarnessBase(uint32_t n, Round gc_depth) : latency_(Millis(1)), gc_depth_(gc_depth) {
    network_ = std::make_unique<Network>(&scheduler_, &latency_, &faults_, NetworkConfig{}, 1);
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < n; ++v) {
      signers_.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(11, v)));
      infos.push_back(ValidatorInfo{signers_.back()->public_key(), 0});
    }
    committee_ = Committee(std::move(infos));
    uint32_t sink_id = network_->AddNode(&sink_, 0, network_->NewMachine());
    topology_.primary_of.assign(n, sink_id);
    topology_.worker_of.assign(n, {sink_id});
    primary_ = std::make_unique<Primary>(0, committee_, NarwhalConfig{}, network_.get(),
                                         &topology_, signers_[0].get());
  }
  virtual ~HarnessBase() = default;

  // Feeds the whole plan. `on_round` (optional) fires after each completed
  // round with the feed round just finished.
  void Feed(const DagPlan& plan, const std::function<void(Round)>& on_round = nullptr) {
    std::vector<Certificate> certs(plan.blocks.size());
    Round current = plan.blocks.empty() ? 0 : plan.blocks.front().round;
    for (size_t i = 0; i < plan.blocks.size(); ++i) {
      const DagPlan::Block& b = plan.blocks[i];
      if (b.round != current) {
        if (on_round != nullptr) {
          on_round(current);
        }
        current = b.round;
      }
      auto header = std::make_shared<BlockHeader>();
      header->author = b.author;
      header->round = b.round;
      for (size_t p : b.parents) {
        header->parents.push_back(certs[p]);
      }
      Digest digest = header->ComputeDigest();
      Certificate& cert = certs[i];
      cert.header_digest = digest;
      cert.round = b.round;
      cert.author = b.author;
      Bytes preimage = Certificate::VotePreimage(digest, b.round, b.author);
      for (uint32_t v = 0; v < committee_.quorum_threshold(); ++v) {
        cert.votes.emplace_back(v, signers_[v]->Sign(preimage));
      }
      Dag& dag = primary_->mutable_dag();
      ASSERT_TRUE(dag.AddCertificate(cert));
      dag.AddHeader(header, digest);
      union_dag_.AddCertificate(cert);
      union_dag_.AddHeader(header, digest);
      feed_round_ = b.round;
      OnCert(cert);
    }
    if (on_round != nullptr && current != 0) {
      on_round(current);
    }
  }

  const std::vector<Digest>& live() const { return live_; }
  const std::vector<Round>& lags() const { return lags_; }
  const Committee& committee() const { return committee_; }
  const Dag& union_dag() const { return union_dag_; }
  Round gc_depth() const { return gc_depth_; }

 protected:
  virtual void OnCert(const Certificate& cert) = 0;

  // Called by the subclass's commit hook.
  void Deliver(const Digest& digest, const BlockHeader& header) {
    live_.push_back(digest);
    lags_.push_back(feed_round_ - header.round);
  }

  Scheduler scheduler_;
  FixedLatencyModel latency_;
  FaultController faults_;
  std::unique_ptr<Network> network_;
  NullNode sink_;
  Topology topology_;
  std::vector<std::unique_ptr<Signer>> signers_;
  Committee committee_;
  Round gc_depth_;
  std::unique_ptr<Primary> primary_;
  Dag union_dag_;
  std::vector<Digest> live_;
  std::vector<Round> lags_;
  Round feed_round_ = 0;
};

class BullsharkHarness : public HarnessBase {
 public:
  BullsharkHarness(uint32_t n, Round gc_depth, BullsharkConfig config = {})
      : HarnessBase(n, gc_depth), config_(config) {
    bullshark_ = std::make_unique<Bullshark>(primary_.get(), committee_, gc_depth, config);
    bullshark_->add_on_commit([this](const Bullshark::Committed& c) {
      EXPECT_EQ(c.decision_round, Bullshark::WaveSupportRound(c.wave));
      Deliver(c.digest, *c.header);
    });
  }

  std::vector<Digest> Replay() const {
    BullsharkReplay replay = ReplayBullshark(union_dag_, committee_, gc_depth_, config_);
    EXPECT_TRUE(replay.complete);
    return replay.ordered;
  }

 protected:
  void OnCert(const Certificate& cert) override { bullshark_->OnCertificate(cert); }

 private:
  BullsharkConfig config_;
  std::unique_ptr<Bullshark> bullshark_;
};

class TuskHarness : public HarnessBase {
 public:
  TuskHarness(uint32_t n, Round gc_depth, uint64_t coin_seed)
      : HarnessBase(n, gc_depth), coin_(coin_seed) {
    tusk_ = std::make_unique<Tusk>(primary_.get(), committee_, &coin_, gc_depth);
    tusk_->add_on_commit(
        [this](const Tusk::Committed& c) { Deliver(c.digest, *c.header); });
  }

  std::vector<Digest> Replay() const {
    return ReplayTusk(union_dag_, committee_, coin_, gc_depth_).ordered;
  }

 protected:
  void OnCert(const Certificate& cert) override { tusk_->OnCertificate(cert); }

 private:
  CommonCoin coin_;
  std::unique_ptr<Tusk> tusk_;
};

void ExpectLiveMatchesReplay(const HarnessBase& h, const std::vector<Digest>& replay,
                             uint64_t seed, const char* what) {
  ASSERT_EQ(h.live().size(), replay.size()) << what << " seed " << seed;
  for (size_t i = 0; i < replay.size(); ++i) {
    ASSERT_EQ(h.live()[i], replay[i])
        << what << " seed " << seed << " diverges at commit #" << i;
  }
}

TEST(BullsharkVsOracle, TwoHundredRandomDags) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    DagPlan plan = RandomPlan(seed);
    BullsharkHarness h(plan.n, plan.gc_depth);
    h.Feed(plan);
    ExpectLiveMatchesReplay(h, h.Replay(), seed, "bullshark");
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// The Shoal reputation schedule must replay identically too: live and oracle
// fold the same settled-outcome sequence, so enabling the flag on both sides
// cannot introduce divergence even when it reroutes anchors.
TEST(BullsharkVsOracle, ReputationScheduleMatchesOracle) {
  BullsharkConfig config;
  config.reputation = true;
  config.reputation_window = 4;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    DagPlan plan = RandomPlan(seed);
    BullsharkHarness h(plan.n, plan.gc_depth, config);
    h.Feed(plan);
    ExpectLiveMatchesReplay(h, h.Replay(), seed, "bullshark+reputation");
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Tusk and Bullshark interpret the *same* DAG: each live sequence must stay
// a prefix of its own oracle's final order at every point of the feed (the
// live sequences are append-only, so checking the final sequences equal
// covers every intermediate prefix).
TEST(BullsharkVsOracle, CrossProtocolPrefixConsistencyOnSharedDag) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    DagPlan plan = RandomPlan(seed);
    BullsharkHarness bullshark(plan.n, plan.gc_depth);
    TuskHarness tusk(plan.n, plan.gc_depth, /*coin_seed=*/seed);
    size_t bullshark_prev = 0;
    size_t tusk_prev = 0;
    bullshark.Feed(plan, [&](Round) {
      EXPECT_GE(bullshark.live().size(), bullshark_prev) << "seed " << seed;
      bullshark_prev = bullshark.live().size();
    });
    tusk.Feed(plan, [&](Round) {
      EXPECT_GE(tusk.live().size(), tusk_prev) << "seed " << seed;
      tusk_prev = tusk.live().size();
    });
    ExpectLiveMatchesReplay(bullshark, bullshark.Replay(), seed, "bullshark");
    ExpectLiveMatchesReplay(tusk, tusk.Replay(), seed, "tusk");
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

Round MedianLag(std::vector<Round> lags) {
  EXPECT_FALSE(lags.empty());
  std::sort(lags.begin(), lags.end());
  return lags.empty() ? 0 : lags[lags.size() / 2];
}

// The point of the 2-round rule: on a fault-free full DAG Bullshark decides
// wave w at round 2w (anchors every 2 rounds) while Tusk waits for the coin
// at round 2w+1 (anchors every 2 rounds but committing only ~2/3 of waves on
// expectation) — so the median rounds-until-commit per header must be
// strictly lower for Bullshark.
TEST(BullsharkVsOracle, LowerCommitLagThanTuskOnFaultFreeDag) {
  DagPlan plan = FullPlan(/*n=*/4, /*rounds=*/40);
  BullsharkHarness bullshark(plan.n, plan.gc_depth);
  TuskHarness tusk(plan.n, plan.gc_depth, /*coin_seed=*/7);
  bullshark.Feed(plan);
  tusk.Feed(plan);
  ExpectLiveMatchesReplay(bullshark, bullshark.Replay(), 0, "bullshark");
  ExpectLiveMatchesReplay(tusk, tusk.Replay(), 0, "tusk");

  // Both committed a healthy share of the 160 headers...
  EXPECT_GE(bullshark.live().size(), 100u);
  EXPECT_GE(tusk.live().size(), 100u);
  // ...but Bullshark needed strictly fewer DAG rounds to get each one out.
  EXPECT_LT(MedianLag(bullshark.lags()), MedianLag(tusk.lags()));
}

}  // namespace
}  // namespace nt
