// DAG-Rider over Narwhal (paper §8.2): 4-round waves, 2f+1 path-votes.
// Verifies commit behaviour, order agreement, and the latency gap to Tusk
// (the ablation the 3-round piggybacked wave buys).
#include "src/tusk/dag_rider.h"

#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"
#include "src/tusk/tusk.h"

namespace nt {
namespace {

TEST(DagRiderTest, WaveArithmetic) {
  EXPECT_EQ(DagRider::WaveFirstRound(1), 1u);
  EXPECT_EQ(DagRider::WaveLastRound(1), 4u);
  EXPECT_EQ(DagRider::WaveFirstRound(2), 5u);  // No piggybacking.
  EXPECT_EQ(DagRider::WaveLastRound(2), 8u);
}

TEST(DagRiderTest, CommitsAndAgreesAcrossValidators) {
  ClusterConfig config;
  config.system = SystemKind::kDagRider;
  config.num_validators = 4;
  config.seed = 11;
  Cluster cluster(config);
  std::vector<std::vector<Digest>> sequences(4);
  for (ValidatorId v = 0; v < 4; ++v) {
    cluster.dag_rider(v)->add_on_commit(
        [&sequences, v](const DagRider::Committed& c) { sequences[v].push_back(c.digest); });
  }
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(15);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  for (ValidatorId v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(15));

  ASSERT_GT(sequences[0].size(), 10u);
  for (ValidatorId a = 0; a < 4; ++a) {
    for (ValidatorId b = a + 1; b < 4; ++b) {
      size_t common = std::min(sequences[a].size(), sequences[b].size());
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(sequences[a][i], sequences[b][i]);
      }
    }
  }
  EXPECT_GT(cluster.dag_rider(0)->last_committed_wave(), 1u);
}

TEST(DagRiderTest, TuskCommitsFasterPerRound) {
  // Ablation (paper §5): Tusk's 3-round piggybacked waves yield leaders
  // every 2 rounds; DAG-Rider's 4-round waves every 4. Over the same wall
  // clock, Tusk must anchor strictly more commits per DAG round.
  auto run = [](SystemKind system) {
    ClusterConfig config;
    config.system = system;
    config.num_validators = 4;
    config.seed = 13;
    Cluster cluster(config);
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(15));
    Round top = cluster.primary(0)->dag().HighestRound();
    uint64_t anchors = system == SystemKind::kTusk
                           ? cluster.tusk(0)->last_committed_wave()
                           : cluster.dag_rider(0)->last_committed_wave();
    return std::make_pair(top, anchors);
  };
  auto [tusk_rounds, tusk_waves] = run(SystemKind::kTusk);
  auto [rider_rounds, rider_waves] = run(SystemKind::kDagRider);
  ASSERT_GT(tusk_waves, 0u);
  ASSERT_GT(rider_waves, 0u);
  // Anchors per round: Tusk ~1/2, DAG-Rider ~1/4.
  double tusk_rate = static_cast<double>(tusk_waves) / tusk_rounds;
  double rider_rate = static_cast<double>(rider_waves) / rider_rounds;
  EXPECT_GT(tusk_rate, rider_rate * 1.5);
}

}  // namespace
}  // namespace nt
