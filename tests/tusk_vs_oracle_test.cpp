// Differential test of the live Tusk commit rule against the pure reference
// replay (src/check/oracle.h): 200 seeded random DAGs — varying committee
// size, per-round participation, parent choice, and GC depth — are fed
// certificate-by-certificate into a live Tusk instance and once, wholesale,
// into ReplayTusk. The two interpretations of the paper's §5 commit rule
// must produce identical committed sequences; any divergence means either
// the live deferral/GC machinery or the oracle mis-implements the rule.
#include "src/check/oracle.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "src/crypto/coin.h"
#include "src/narwhal/primary.h"
#include "src/tusk/tusk.h"

namespace nt {
namespace {

struct NullNode : NetNode {
  void OnMessage(uint32_t, const MessagePtr&) override {}
};

// Drives one validator's live Tusk over an externally built DAG while
// mirroring every certificate and header into a union DAG for the oracle.
class OracleHarness {
 public:
  OracleHarness(uint32_t n, uint64_t coin_seed, Round gc_depth)
      : n_(n), latency_(Millis(1)), coin_(coin_seed), gc_depth_(gc_depth) {
    network_ = std::make_unique<Network>(&scheduler_, &latency_, &faults_, NetworkConfig{}, 1);
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < n; ++v) {
      signers_.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(11, v)));
      infos.push_back(ValidatorInfo{signers_.back()->public_key(), 0});
    }
    committee_ = Committee(std::move(infos));
    uint32_t sink_id = network_->AddNode(&sink_, 0, network_->NewMachine());
    topology_.primary_of.assign(n, sink_id);
    topology_.worker_of.assign(n, {sink_id});
    primary_ = std::make_unique<Primary>(0, committee_, NarwhalConfig{}, network_.get(),
                                         &topology_, signers_[0].get());
    tusk_ = std::make_unique<Tusk>(primary_.get(), committee_, &coin_, gc_depth);
    tusk_->add_on_commit([this](const Tusk::Committed& c) { live_.push_back(c.digest); });
  }

  struct Node {
    Digest digest{};
    Certificate cert;
  };

  Node Add(Round round, ValidatorId author, const std::vector<Node>& parents) {
    auto header = std::make_shared<BlockHeader>();
    header->author = author;
    header->round = round;
    for (const Node& p : parents) {
      header->parents.push_back(p.cert);
    }
    Node node;
    node.digest = header->ComputeDigest();
    node.cert.header_digest = node.digest;
    node.cert.round = round;
    node.cert.author = author;
    Bytes preimage = Certificate::VotePreimage(node.digest, round, author);
    for (uint32_t v = 0; v < committee_.quorum_threshold(); ++v) {
      node.cert.votes.emplace_back(v, signers_[v]->Sign(preimage));
    }
    Dag& dag = primary_->mutable_dag();
    EXPECT_TRUE(dag.AddCertificate(node.cert));
    dag.AddHeader(header, node.digest);
    union_dag_.AddCertificate(node.cert);
    union_dag_.AddHeader(header, node.digest);
    tusk_->OnCertificate(node.cert);
    return node;
  }

  std::vector<Digest> Replay() const {
    return ReplayTusk(union_dag_, committee_, coin_, gc_depth_).ordered;
  }

  const std::vector<Digest>& live() const { return live_; }
  uint32_t n() const { return n_; }
  uint32_t quorum() const { return committee_.quorum_threshold(); }

 private:
  uint32_t n_;
  Scheduler scheduler_;
  FixedLatencyModel latency_;
  FaultController faults_;
  std::unique_ptr<Network> network_;
  NullNode sink_;
  Topology topology_;
  std::vector<std::unique_ptr<Signer>> signers_;
  Committee committee_;
  CommonCoin coin_;
  Round gc_depth_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<Tusk> tusk_;
  Dag union_dag_;
  std::vector<Digest> live_;
};

// Grows a random DAG: every round keeps a quorum of authors (drawn at
// random) and every header references a random quorum-or-more subset of the
// previous round's certificates — exactly the degrees of freedom the
// protocol permits, and the ones the commit rule's f+1-support check and
// leader-path ordering are sensitive to.
void RunRandomDag(uint64_t seed) {
  std::mt19937_64 rng(seed);
  uint32_t n = (rng() % 2 == 0) ? 4 : 7;
  Round gc_depth = (rng() % 2 == 0) ? 1000 : 20;
  OracleHarness h(n, /*coin_seed=*/seed, gc_depth);

  uint32_t rounds = 10 + static_cast<uint32_t>(rng() % 16);
  std::vector<OracleHarness::Node> prev;
  for (Round r = 1; r <= rounds; ++r) {
    std::vector<ValidatorId> authors(n);
    for (uint32_t v = 0; v < n; ++v) {
      authors[v] = v;
    }
    for (uint32_t i = n - 1; i > 0; --i) {
      std::swap(authors[i], authors[rng() % (i + 1)]);
    }
    uint32_t count = h.quorum() + static_cast<uint32_t>(rng() % (n - h.quorum() + 1));
    std::vector<OracleHarness::Node> next;
    for (uint32_t i = 0; i < count; ++i) {
      std::vector<OracleHarness::Node> parents;
      if (r > 1) {
        parents = prev;
        for (uint32_t j = static_cast<uint32_t>(parents.size()) - 1; j > 0; --j) {
          std::swap(parents[j], parents[rng() % (j + 1)]);
        }
        uint32_t keep =
            h.quorum() + static_cast<uint32_t>(rng() % (parents.size() - h.quorum() + 1));
        parents.resize(keep);
      }
      next.push_back(h.Add(r, authors[i], parents));
    }
    prev = std::move(next);
  }

  std::vector<Digest> replay = h.Replay();
  ASSERT_EQ(h.live().size(), replay.size()) << "seed " << seed;
  for (size_t i = 0; i < replay.size(); ++i) {
    ASSERT_EQ(h.live()[i], replay[i]) << "seed " << seed << " diverges at commit #" << i;
  }
}

TEST(TuskVsOracle, TwoHundredRandomDags) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    RunRandomDag(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace nt
