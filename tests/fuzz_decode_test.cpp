// Parser robustness: every Decode entry point is exercised with (a) random
// garbage, (b) truncations of valid encodings, and (c) single-byte
// corruptions. Decoders are the protocol's attack surface — they must never
// crash, loop, or read out of bounds, only return nullopt or a value.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/state_machine.h"
#include "src/narwhal/light_client.h"
#include "src/types/types.h"

namespace nt {
namespace {

Bytes RandomBytes(Rng& rng, size_t max_len) {
  Bytes out(rng.NextBelow(max_len + 1));
  for (auto& b : out) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return out;
}

template <typename T>
void DecodeGarbage(const Bytes& bytes) {
  Reader r(bytes);
  auto result = T::Decode(r);
  (void)result;  // Any outcome is fine; not crashing is the property.
}

TEST(FuzzDecodeTest, RandomGarbageNeverCrashes) {
  Rng rng(0xf22);
  for (int i = 0; i < 2000; ++i) {
    Bytes garbage = RandomBytes(rng, 512);
    DecodeGarbage<Batch>(garbage);
    DecodeGarbage<BatchRef>(garbage);
    DecodeGarbage<Certificate>(garbage);
    DecodeGarbage<BlockHeader>(garbage);
    DecodeGarbage<Vote>(garbage);
    {
      Reader r(garbage);
      (void)InclusionProof::Decode(r);
    }
    (void)ExecTx::Decode(garbage);
  }
}

// A realistic valid header encoding to mutate.
Bytes ValidHeaderEncoding() {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  BlockHeader header;
  header.author = 1;
  header.round = 7;
  BatchRef ref;
  ref.digest = Sha256::Hash("batch");
  ref.num_txs = 10;
  ref.payload_bytes = 5120;
  header.batches.push_back(ref);
  Certificate parent;
  parent.header_digest = Sha256::Hash("parent");
  parent.round = 6;
  parent.author = 0;
  Bytes preimage = Certificate::VotePreimage(parent.header_digest, 6, 0);
  for (uint32_t v = 0; v < 3; ++v) {
    parent.votes.emplace_back(v, signer->Sign(preimage));
  }
  header.parents.assign(3, parent);
  header.parents[1].author = 1;
  header.parents[2].author = 2;
  header.author_sig = signer->Sign(header.ComputeDigest());
  Writer w;
  header.Encode(w);
  return w.Take();
}

TEST(FuzzDecodeTest, EveryTruncationHandled) {
  Bytes valid = ValidHeaderEncoding();
  for (size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + len);
    Reader r(truncated);
    auto decoded = BlockHeader::Decode(r);
    // Truncation can never yield a header that consumed the full input.
    if (decoded.has_value()) {
      EXPECT_FALSE(r.AtEnd() && len == valid.size());
    }
  }
  // The untruncated form round-trips.
  Reader r(valid);
  ASSERT_TRUE(BlockHeader::Decode(r).has_value());
  EXPECT_TRUE(r.AtEnd());
}

TEST(FuzzDecodeTest, BitFlipsEitherParseOrReject) {
  Bytes valid = ValidHeaderEncoding();
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    Reader r(mutated);
    auto decoded = BlockHeader::Decode(r);
    if (decoded.has_value()) {
      // A parsed-but-corrupted header must fail digest/signature checks
      // downstream — verify the digest actually moved or content survived.
      (void)decoded->ComputeDigest();
    }
  }
}

TEST(FuzzDecodeTest, HostileLengthPrefixesBounded) {
  // A length prefix claiming 4GB of samples must not allocate unboundedly:
  // the reader runs out of bytes and the loop exits on !ok().
  Writer w;
  w.PutU32(0);              // author
  w.PutU32(0);              // worker
  w.PutU64(0);              // seq
  w.PutU64(0);              // num_txs
  w.PutU64(0);              // payload_bytes
  w.PutU32(0xffffffffu);    // hostile sample count
  Bytes bytes = w.Take();
  Reader r(bytes);
  auto batch = Batch::Decode(r);
  EXPECT_FALSE(batch.has_value());
}

TEST(FuzzDecodeTest, ExecTxGarbageAffectsNothing) {
  Rng rng(7);
  KvStateMachine sm;
  for (int i = 0; i < 500; ++i) {
    sm.Apply(RandomBytes(rng, 64));
  }
  EXPECT_EQ(sm.applied(), 0u);  // Nothing random decodes as a valid tx...
  EXPECT_EQ(sm.keys(), 0u);     // ...and state is untouched.
  EXPECT_EQ(sm.rejected(), 500u);
}

}  // namespace
}  // namespace nt
