// Signer abstraction: both schemes must agree on the contract (sign/verify
// round trip, cross-key rejection, tamper rejection, deterministic keys).
#include "src/crypto/signer.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

class SignerContractTest : public ::testing::TestWithParam<SignerKind> {};

TEST_P(SignerContractTest, SignVerifyRoundTrip) {
  auto signer = MakeSigner(GetParam(), DeriveSeed(1, 0));
  Bytes msg = {1, 2, 3};
  Signature sig = signer->Sign(msg);
  EXPECT_TRUE(signer->Verify(signer->public_key(), msg, sig));
}

TEST_P(SignerContractTest, CrossValidatorVerify) {
  auto alice = MakeSigner(GetParam(), DeriveSeed(1, 0));
  auto bob = MakeSigner(GetParam(), DeriveSeed(1, 1));
  Bytes msg = {42};
  Signature sig = alice->Sign(msg);
  // Bob can verify Alice's signature against Alice's key...
  EXPECT_TRUE(bob->Verify(alice->public_key(), msg, sig));
  // ...but it does not verify under Bob's key.
  EXPECT_FALSE(bob->Verify(bob->public_key(), msg, sig));
}

TEST_P(SignerContractTest, TamperRejected) {
  auto signer = MakeSigner(GetParam(), DeriveSeed(2, 7));
  Bytes msg = {5, 5, 5};
  Signature sig = signer->Sign(msg);
  Signature bad = sig;
  bad[0] ^= 1;
  EXPECT_FALSE(signer->Verify(signer->public_key(), msg, bad));
  Bytes other = {5, 5, 6};
  EXPECT_FALSE(signer->Verify(signer->public_key(), other, sig));
}

TEST_P(SignerContractTest, DeterministicKeyDerivation) {
  auto a = MakeSigner(GetParam(), DeriveSeed(3, 4));
  auto b = MakeSigner(GetParam(), DeriveSeed(3, 4));
  EXPECT_EQ(a->public_key(), b->public_key());
  auto c = MakeSigner(GetParam(), DeriveSeed(3, 5));
  EXPECT_NE(a->public_key(), c->public_key());
  auto d = MakeSigner(GetParam(), DeriveSeed(4, 4));
  EXPECT_NE(a->public_key(), d->public_key());
}

TEST_P(SignerContractTest, DigestSigningOverload) {
  auto signer = MakeSigner(GetParam(), DeriveSeed(6, 0));
  Digest d = Sha256::Hash("payload");
  Signature sig = signer->Sign(d);
  EXPECT_TRUE(signer->Verify(signer->public_key(), d, sig));
  Digest other = Sha256::Hash("payload2");
  EXPECT_FALSE(signer->Verify(signer->public_key(), other, sig));
}

TEST_P(SignerContractTest, BatchVerifierMatchesIndividualVerify) {
  // The batch kernel (true multi-scalar batching for Ed25519, a loop for
  // FastSigner) must agree bit-for-bit with per-item Verify.
  auto verifier = MakeSigner(GetParam(), DeriveSeed(11, 0));
  std::vector<std::unique_ptr<Signer>> signers;
  for (uint64_t i = 0; i < 8; ++i) {
    signers.push_back(MakeSigner(GetParam(), DeriveSeed(11, i)));
  }

  std::vector<PublicKey> pks;
  std::vector<Bytes> msgs;
  std::vector<Signature> sigs;
  BatchVerifier batch(*verifier);
  for (size_t i = 0; i < 24; ++i) {
    const Signer& s = *signers[i % signers.size()];
    Bytes msg(i + 1, static_cast<uint8_t>(i));
    Signature sig = s.Sign(msg);
    if (i % 5 == 2) {
      sig[i % 64] ^= 0x40;  // Corrupt some.
    }
    if (i % 7 == 3) {
      msg.push_back(0);  // Sign/verify mismatch on others.
    }
    pks.push_back(s.public_key());
    msgs.push_back(msg);
    sigs.push_back(sig);
    batch.Queue(s.public_key(), msg, sig);
  }
  EXPECT_EQ(batch.pending(), 24u);

  std::vector<bool> ok = batch.Flush();
  ASSERT_EQ(ok.size(), 24u);
  EXPECT_EQ(batch.pending(), 0u);  // Flush clears the queue.
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], verifier->Verify(pks[i], msgs[i], sigs[i])) << "item " << i;
  }

  // An empty flush is an empty verdict, and FlushAllValid on it holds.
  EXPECT_TRUE(batch.Flush().empty());
  EXPECT_TRUE(batch.FlushAllValid());
}

TEST_P(SignerContractTest, FlushAllValidRequiresEveryItem) {
  auto signer = MakeSigner(GetParam(), DeriveSeed(12, 0));
  Bytes msg = {1, 2, 3};
  Signature good = signer->Sign(msg);

  BatchVerifier batch(*signer);
  batch.Queue(signer->public_key(), msg, good);
  batch.Queue(signer->public_key(), msg, good);
  EXPECT_TRUE(batch.FlushAllValid());

  Signature bad = good;
  bad[10] ^= 1;
  batch.Queue(signer->public_key(), msg, good);
  batch.Queue(signer->public_key(), msg, bad);
  EXPECT_FALSE(batch.FlushAllValid());
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SignerContractTest,
                         ::testing::Values(SignerKind::kEd25519, SignerKind::kFast),
                         [](const ::testing::TestParamInfo<SignerKind>& param_info) {
                           return param_info.param == SignerKind::kEd25519 ? "Ed25519" : "Fast";
                         });

TEST(FastSignerTest, UnknownKeyFailsVerification) {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(9, 0));
  PublicKey unknown{};
  unknown[0] = 0xff;
  Bytes msg = {1};
  EXPECT_FALSE(signer->Verify(unknown, msg, signer->Sign(msg)));
}

TEST(FastSignerTest, WireSizesMatchEd25519) {
  auto fast = MakeSigner(SignerKind::kFast, DeriveSeed(1, 1));
  auto ed = MakeSigner(SignerKind::kEd25519, DeriveSeed(1, 1));
  EXPECT_EQ(fast->public_key().size(), ed->public_key().size());
  Bytes msg = {3};
  EXPECT_EQ(fast->Sign(msg).size(), ed->Sign(msg).size());
}

}  // namespace
}  // namespace nt
