// Known-answer and property tests for SHA-256 / SHA-512, including the
// runtime-derived FIPS 180-4 constants (pinned by the NIST vectors).
#include "src/crypto/hash.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/bytes.h"

namespace nt {
namespace {

TEST(Sha256Test, NistVectorEmpty) {
  EXPECT_EQ(DigestHex(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, NistVectorAbc) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, NistVectorTwoBlocks) {
  EXPECT_EQ(DigestHex(Sha256::Hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(DigestHex(h.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg;
  for (int i = 0; i < 300; ++i) {
    msg.push_back(static_cast<char>(i % 251));
  }
  // Split the message at every boundary; digest must not depend on chunking.
  Digest expected = Sha256::Hash(msg);
  for (size_t split = 0; split <= msg.size(); split += 17) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finalize(), expected) << "split at " << split;
  }
}

TEST(Sha256Test, LengthBoundaryPadding) {
  // 55, 56, 63, 64, 65 bytes straddle the padding boundary.
  for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 127u, 128u}) {
    std::string msg(len, 'x');
    Digest once = Sha256::Hash(msg);
    Sha256 h;
    for (char c : msg) {
      h.Update(std::string(1, c));
    }
    EXPECT_EQ(h.Finalize(), once) << "len " << len;
  }
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::Hash("abc"), Sha256::Hash("abd"));
  EXPECT_NE(Sha256::Hash("abc"), Sha256::Hash(std::string_view("abc\0", 4)));
}

TEST(Sha512Test, NistVectorEmpty) {
  auto out = Sha512::Hash(nullptr, 0);
  EXPECT_EQ(ToHex(out.data(), out.size()),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512Test, NistVectorAbc) {
  const char* msg = "abc";
  auto out = Sha512::Hash(reinterpret_cast<const uint8_t*>(msg), 3);
  EXPECT_EQ(ToHex(out.data(), out.size()),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512Test, NistVectorTwoBlocks) {
  const char* msg =
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
  auto out = Sha512::Hash(reinterpret_cast<const uint8_t*>(msg), 112);
  EXPECT_EQ(ToHex(out.data(), out.size()),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, StreamingMatchesOneShot) {
  Bytes msg(777);
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<uint8_t>(i * 7);
  }
  auto expected = Sha512::Hash(msg);
  Sha512 h;
  h.Update(msg.data(), 100);
  h.Update(msg.data() + 100, 28);
  h.Update(msg.data() + 128, msg.size() - 128);
  EXPECT_EQ(h.Finalize(), expected);
}

TEST(DigestTest, HexHelpers) {
  Digest d = Sha256::Hash("abc");
  EXPECT_EQ(DigestHex(d).size(), 64u);
  EXPECT_EQ(DigestShort(d), DigestHex(d).substr(0, 8));
}

}  // namespace
}  // namespace nt
