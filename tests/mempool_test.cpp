// The §2.1 mempool abstraction: write / valid / read / read_causal and the
// properties the paper states for them, exercised on live clusters.
#include "src/narwhal/mempool.h"

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"

namespace nt {
namespace {

ClusterConfig TuskConfig(uint64_t seed) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = seed;
  return config;
}

std::vector<Bytes> MakeBlock(int tag, size_t txs = 5) {
  std::vector<Bytes> block;
  for (size_t i = 0; i < txs; ++i) {
    block.push_back(Bytes{static_cast<uint8_t>(tag), static_cast<uint8_t>(i), 7});
  }
  return block;
}

TEST(MempoolTest, WriteBecomesCertified) {
  Cluster cluster(TuskConfig(1));
  cluster.Start();
  Mempool pool = cluster.MempoolOf(0);

  Digest d = pool.Write(MakeBlock(1));
  EXPECT_FALSE(pool.IsWriteCertified(d));  // Not yet: needs a round trip.
  cluster.scheduler().RunUntil(Seconds(5));
  EXPECT_TRUE(pool.IsWriteCertified(d));

  auto cert = pool.CertificateFor(d);
  ASSERT_TRUE(cert.has_value());
  // valid(d, c(d)) holds for the real certificate...
  auto verifier = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  EXPECT_TRUE(Mempool::Valid(cluster.committee(), *verifier, *cert));
  // ...and fails for a tampered one.
  Certificate forged = *cert;
  forged.votes[0].second[0] ^= 1;
  EXPECT_FALSE(Mempool::Valid(cluster.committee(), *verifier, forged));
}

TEST(MempoolTest, ReadReturnsWrittenBlock) {
  Cluster cluster(TuskConfig(2));
  cluster.Start();
  Mempool pool = cluster.MempoolOf(0);
  std::vector<Bytes> block = MakeBlock(9, 3);
  Digest d = pool.Write(block);
  cluster.scheduler().RunUntil(Seconds(5));

  // Integrity at the writer...
  auto batch = pool.Read(d);
  ASSERT_NE(batch, nullptr);
  EXPECT_EQ(batch->txs, block);

  // ...and Block-Availability: every other validator can read it too, and
  // reads agree (the dissemination layer replicated it).
  for (ValidatorId v = 1; v < 4; ++v) {
    auto replica = cluster.MempoolOf(v).Read(d);
    ASSERT_NE(replica, nullptr) << "validator " << v;
    EXPECT_EQ(replica->txs, block);
    EXPECT_EQ(replica->ComputeDigest(), d);
  }
}

TEST(MempoolTest, ReadUnknownDigestIsNull) {
  Cluster cluster(TuskConfig(3));
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(1));
  Digest bogus = Sha256::Hash("never written");
  EXPECT_EQ(cluster.MempoolOf(0).Read(bogus), nullptr);
  EXPECT_FALSE(cluster.MempoolOf(0).IsWriteCertified(bogus));
}

TEST(MempoolTest, ReadCausalContainment) {
  // Containment (§2.1): for b' in read_causal(b), read_causal(b') is a
  // subset of read_causal(b).
  Cluster cluster(TuskConfig(4));
  cluster.Start();
  Mempool pool = cluster.MempoolOf(0);
  pool.Write(MakeBlock(1));
  cluster.scheduler().RunUntil(Seconds(3));
  pool.Write(MakeBlock(2));
  cluster.scheduler().RunUntil(Seconds(8));

  const Dag& dag = cluster.primary(0)->dag();
  // Pick the newest header with a complete local history as b.
  Digest anchor{};
  Round best = 0;
  for (const auto& [digest, header] : dag.headers()) {
    if (header->round >= best && pool.ReadCausal(digest).size() > 3) {
      best = header->round;
      anchor = digest;
    }
  }
  std::vector<Digest> outer = pool.ReadCausal(anchor);
  ASSERT_GT(outer.size(), 3u);
  std::set<Digest> outer_set(outer.begin(), outer.end());
  for (const Digest& inner_anchor : outer) {
    for (const Digest& d : pool.ReadCausal(inner_anchor)) {
      EXPECT_TRUE(outer_set.count(d) != 0) << "containment violated";
    }
  }
}

TEST(MempoolTest, TwoThirdsCausality) {
  // 2/3-Causality (§2.1): read_causal of a fresh write returns at least 2/3
  // of the blocks successfully written before it. The property is relative
  // to the garbage-collection horizon, so keep all rounds for this test.
  ClusterConfig config = TuskConfig(5);
  config.narwhal.gc_depth = 100000;
  Cluster cluster(config);
  cluster.Start();
  Mempool pool = cluster.MempoolOf(0);

  std::vector<Digest> written;
  for (int i = 0; i < 10; ++i) {
    written.push_back(pool.Write(MakeBlock(i)));
    cluster.scheduler().RunUntil(Seconds(2 + 2 * i));
    ASSERT_TRUE(pool.IsWriteCertified(written.back())) << "write " << i;
  }
  Digest last = pool.Write(MakeBlock(99));
  cluster.scheduler().RunUntil(Seconds(30));
  ASSERT_TRUE(pool.IsWriteCertified(last));

  // Find the header containing the last batch and take its causal history.
  auto cert = pool.CertificateFor(last);
  ASSERT_TRUE(cert.has_value());
  std::vector<Digest> history = pool.ReadCausal(cert->header_digest);
  ASSERT_FALSE(history.empty());

  // Count previously-written batches covered by that history.
  const Dag& dag = cluster.primary(0)->dag();
  std::set<Digest> covered_batches;
  for (const Digest& header_digest : history) {
    auto header = dag.GetHeader(header_digest);
    ASSERT_NE(header, nullptr);
    for (const BatchRef& ref : header->batches) {
      covered_batches.insert(ref.digest);
    }
  }
  size_t covered = 0;
  for (const Digest& d : written) {
    if (covered_batches.count(d) != 0) {
      ++covered;
    }
  }
  EXPECT_GE(covered * 3, written.size() * 2) << "2/3-causality violated";
}

}  // namespace
}  // namespace nt
