// Determinism audit for the simulator: the same seeded experiment, run twice
// in the same process, must produce bit-identical results — event-stream
// hash, commit counts, throughput/latency metrics, and the Chrome trace JSON
// written by the tracer. Any divergence means hidden nondeterminism (map
// iteration order leaking into scheduling, uninitialized reads, wall-clock
// use) and would break `ntcheck --replay` repro files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/check/checker.h"
#include "src/check/schedule.h"
#include "src/runtime/experiment.h"

namespace nt {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(DeterminismTest, SameScheduleSameEventHash) {
  for (uint64_t seed : {1ull, 17ull, 42ull}) {
    FaultSchedule schedule = GenerateSchedule(seed);
    CheckResult a = RunSchedule(schedule);
    CheckResult b = RunSchedule(schedule);
    EXPECT_NE(a.event_hash, 0u) << "seed " << seed;
    EXPECT_EQ(a.event_hash, b.event_hash) << "seed " << seed;
    EXPECT_EQ(a.events_fired, b.events_fired) << "seed " << seed;
    EXPECT_EQ(a.commits, b.commits) << "seed " << seed;
    EXPECT_EQ(a.violations.size(), b.violations.size()) << "seed " << seed;
  }
}

TEST(DeterminismTest, BullsharkSameScheduleSameEventHash) {
  // The seed draw never picks Bullshark (frozen two-way choice), so pin it:
  // its commit path — anchor schedule, chain walk, WAL writes — must be as
  // replay-stable as Tusk's.
  for (uint64_t seed : {1ull, 17ull, 42ull}) {
    FaultSchedule schedule = GenerateSchedule(seed, SystemKind::kBullshark);
    CheckResult a = RunSchedule(schedule);
    CheckResult b = RunSchedule(schedule);
    EXPECT_NE(a.event_hash, 0u) << "seed " << seed;
    EXPECT_EQ(a.event_hash, b.event_hash) << "seed " << seed;
    EXPECT_EQ(a.events_fired, b.events_fired) << "seed " << seed;
    EXPECT_EQ(a.commits, b.commits) << "seed " << seed;
    EXPECT_GT(a.commits, 0u) << "seed " << seed;
    EXPECT_EQ(a.violations.size(), b.violations.size()) << "seed " << seed;
  }
}

TEST(DeterminismTest, SelfCheckPasses) {
  // The built-in double-run self check (used by `ntcheck --replay`) must not
  // flag a determinism violation on a healthy schedule.
  CheckResult result = RunScheduleWithDeterminismCheck(GenerateSchedule(3));
  for (const Violation& v : result.violations) {
    EXPECT_NE(v.invariant, "determinism") << v.detail;
  }
}

TEST(DeterminismTest, DifferentSeedsDifferentTimelines) {
  CheckResult a = RunSchedule(GenerateSchedule(1));
  CheckResult b = RunSchedule(GenerateSchedule(2));
  EXPECT_NE(a.event_hash, b.event_hash);
}

TEST(DeterminismTest, ExperimentMetricsAndTraceJsonIdentical) {
  std::string dir = ::testing::TempDir();
  auto run = [&dir](const std::string& tag) {
    ExperimentParams params;
    params.system = SystemKind::kTusk;
    params.nodes = 4;
    params.rate_tps = 2000;
    params.duration = Seconds(6);
    params.warmup = Seconds(1);
    params.seed = 9;
    params.trace = true;
    params.trace_path = dir + "/determinism_" + tag + ".json";
    ExperimentResult result = RunExperiment(params);
    EXPECT_TRUE(result.trace_written);
    return std::make_pair(result, ReadFile(params.trace_path));
  };

  auto [r1, trace1] = run("a");
  auto [r2, trace2] = run("b");

  EXPECT_GT(r1.committed_txs, 0u);
  EXPECT_EQ(r1.committed_txs, r2.committed_txs);
  EXPECT_EQ(r1.sampled_txs, r2.sampled_txs);
  EXPECT_DOUBLE_EQ(r1.tps, r2.tps);
  EXPECT_DOUBLE_EQ(r1.avg_latency_s, r2.avg_latency_s);
  EXPECT_DOUBLE_EQ(r1.p50_latency_s, r2.p50_latency_s);
  EXPECT_DOUBLE_EQ(r1.p99_latency_s, r2.p99_latency_s);

  ASSERT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, trace2) << "trace JSON differs between identical seeded runs";

  std::remove((dir + "/determinism_a.json").c_str());
  std::remove((dir + "/determinism_b.json").c_str());
}

}  // namespace
}  // namespace nt
