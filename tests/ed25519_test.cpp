// Ed25519 validation: RFC 8032 known-answer vectors, group-structure checks
// ([L]B = identity, distributivity of scalar multiplication), and negative
// tests (tampered signatures, wrong keys, malleability rejection).
#include "src/crypto/ed25519.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/common/bytes.h"

namespace nt {
namespace {

Ed25519Seed SeedFromHex(const char* hex) {
  auto bytes = FromHex(hex);
  Ed25519Seed seed{};
  std::memcpy(seed.data(), bytes->data(), 32);
  return seed;
}

// RFC 8032 §7.1, TEST 1 (empty message).
TEST(Ed25519Test, Rfc8032Vector1) {
  Ed25519Seed seed =
      SeedFromHex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  Ed25519PublicKey pk = Ed25519Public(seed);
  EXPECT_EQ(ToHex(pk.data(), pk.size()),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");

  Ed25519Signature sig = Ed25519Sign(seed, nullptr, 0);
  EXPECT_EQ(ToHex(sig.data(), sig.size()),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(Ed25519Verify(pk, nullptr, 0, sig));
}

// RFC 8032 §7.1, TEST 2 (one-byte message 0x72).
TEST(Ed25519Test, Rfc8032Vector2) {
  Ed25519Seed seed =
      SeedFromHex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  Ed25519PublicKey pk = Ed25519Public(seed);
  EXPECT_EQ(ToHex(pk.data(), pk.size()),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");

  uint8_t msg = 0x72;
  Ed25519Signature sig = Ed25519Sign(seed, &msg, 1);
  EXPECT_EQ(ToHex(sig.data(), sig.size()),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(pk, &msg, 1, sig));
}

TEST(Ed25519Test, GroupOrderTimesBaseIsIdentity) {
  // [L]B must be the neutral element, whose compressed encoding is y = 1
  // with sign 0: 0x01 followed by 31 zero bytes.
  auto enc = Ed25519ScalarMultBase(Ed25519GroupOrder());
  EXPECT_EQ(enc[0], 0x01);
  for (size_t i = 1; i < enc.size(); ++i) {
    EXPECT_EQ(enc[i], 0x00) << "byte " << i;
  }
}

TEST(Ed25519Test, ScalarMultDistributes) {
  // [a]B computed bit-serially must equal [a1]B + [a2]B re-encoded, checked
  // indirectly: [2]B == [1]B doubled == encodings agree via [1+1].
  std::array<uint8_t, 32> one{};
  one[0] = 1;
  std::array<uint8_t, 32> two{};
  two[0] = 2;
  std::array<uint8_t, 32> three{};
  three[0] = 3;
  auto b1 = Ed25519ScalarMultBase(one);
  auto b2 = Ed25519ScalarMultBase(two);
  auto b3 = Ed25519ScalarMultBase(three);
  EXPECT_NE(b1, b2);
  EXPECT_NE(b2, b3);
  // All must be on the curve.
  EXPECT_TRUE(Ed25519PointOnCurve(b1));
  EXPECT_TRUE(Ed25519PointOnCurve(b2));
  EXPECT_TRUE(Ed25519PointOnCurve(b3));
}

TEST(Ed25519Test, SignVerifyRoundTrip) {
  Ed25519Seed seed{};
  for (int i = 0; i < 32; ++i) {
    seed[i] = static_cast<uint8_t>(i * 11 + 3);
  }
  Ed25519PublicKey pk = Ed25519Public(seed);
  EXPECT_TRUE(Ed25519PointOnCurve(pk));

  for (size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 1000u}) {
    Bytes msg(len);
    for (size_t i = 0; i < len; ++i) {
      msg[i] = static_cast<uint8_t>(i ^ len);
    }
    Ed25519Signature sig = Ed25519Sign(seed, msg);
    EXPECT_TRUE(Ed25519Verify(pk, msg, sig)) << "len " << len;
  }
}

TEST(Ed25519Test, TamperedSignatureRejected) {
  Ed25519Seed seed{};
  seed[0] = 42;
  Ed25519PublicKey pk = Ed25519Public(seed);
  Bytes msg = {1, 2, 3, 4, 5};
  Ed25519Signature sig = Ed25519Sign(seed, msg);

  for (size_t i = 0; i < sig.size(); i += 7) {
    Ed25519Signature bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(Ed25519Verify(pk, msg, bad)) << "flip byte " << i;
  }
}

TEST(Ed25519Test, TamperedMessageRejected) {
  Ed25519Seed seed{};
  seed[5] = 9;
  Ed25519PublicKey pk = Ed25519Public(seed);
  Bytes msg = {10, 20, 30};
  Ed25519Signature sig = Ed25519Sign(seed, msg);
  Bytes other = {10, 20, 31};
  EXPECT_FALSE(Ed25519Verify(pk, other, sig));
  Bytes longer = {10, 20, 30, 0};
  EXPECT_FALSE(Ed25519Verify(pk, longer, sig));
}

TEST(Ed25519Test, WrongKeyRejected) {
  Ed25519Seed seed_a{};
  seed_a[0] = 1;
  Ed25519Seed seed_b{};
  seed_b[0] = 2;
  Bytes msg = {7, 7, 7};
  Ed25519Signature sig = Ed25519Sign(seed_a, msg);
  EXPECT_FALSE(Ed25519Verify(Ed25519Public(seed_b), msg, sig));
}

TEST(Ed25519Test, MalleabilityRejected) {
  // S' = S + L is a classically malleable signature; strict verification
  // must reject it. Adding L may overflow 32 bytes, in which case the forged
  // encoding is invalid anyway; construct only when it fits.
  Ed25519Seed seed{};
  seed[3] = 77;
  Ed25519PublicKey pk = Ed25519Public(seed);
  Bytes msg = {9, 9};
  Ed25519Signature sig = Ed25519Sign(seed, msg);

  auto order = Ed25519GroupOrder();
  Ed25519Signature forged = sig;
  uint32_t carry = 0;
  for (int i = 0; i < 32; ++i) {
    uint32_t sum = static_cast<uint32_t>(forged[32 + i]) + order[i] + carry;
    forged[32 + i] = static_cast<uint8_t>(sum);
    carry = sum >> 8;
  }
  if (carry == 0) {
    EXPECT_FALSE(Ed25519Verify(pk, msg, forged));
  }
  // Either way the canonical signature still verifies.
  EXPECT_TRUE(Ed25519Verify(pk, msg, sig));
}

TEST(Ed25519Test, DeterministicSignatures) {
  Ed25519Seed seed{};
  seed[8] = 123;
  Bytes msg = {1, 1, 2, 3, 5, 8};
  EXPECT_EQ(Ed25519Sign(seed, msg), Ed25519Sign(seed, msg));
}

TEST(Ed25519Test, OffCurvePointRejected) {
  // A y-coordinate for which x^2 has no root: probe a few candidates until
  // one fails to decode, then ensure verification under it fails cleanly.
  std::array<uint8_t, 32> candidate{};
  candidate[0] = 2;  // y = 2 happens to be off-curve for ed25519 or not; scan.
  bool found_invalid = false;
  for (uint8_t v = 2; v < 40 && !found_invalid; ++v) {
    candidate[0] = v;
    if (!Ed25519PointOnCurve(candidate)) {
      found_invalid = true;
      Ed25519Seed seed{};
      Bytes msg = {1};
      Ed25519Signature sig = Ed25519Sign(seed, msg);
      Ed25519PublicKey bad_pk;
      std::memcpy(bad_pk.data(), candidate.data(), 32);
      EXPECT_FALSE(Ed25519Verify(bad_pk, msg, sig));
    }
  }
  EXPECT_TRUE(found_invalid) << "no off-curve y in probe range (unexpected)";
}

TEST(Ed25519Test, NonCanonicalYRejected) {
  // y = p (encodes as 0xed, 0xff... 0x7f) is >= p and must be rejected.
  std::array<uint8_t, 32> enc{};
  enc[0] = 0xed;
  for (int i = 1; i < 31; ++i) {
    enc[i] = 0xff;
  }
  enc[31] = 0x7f;
  EXPECT_FALSE(Ed25519PointOnCurve(enc));
}

// ---------------------------------------------------------------------------
// Batch verification.
// ---------------------------------------------------------------------------

struct BatchFixture {
  std::vector<Ed25519Seed> seeds;
  std::vector<Ed25519PublicKey> pks;
  std::vector<Bytes> msgs;  // Stable storage: items point into these.
  std::vector<Ed25519BatchItem> items;

  // `n` distinct signers, message i = i bytes of a simple pattern.
  explicit BatchFixture(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      Ed25519Seed seed{};
      for (int j = 0; j < 32; ++j) {
        seed[j] = static_cast<uint8_t>(i * 31 + j * 7 + 1);
      }
      seeds.push_back(seed);
      pks.push_back(Ed25519Public(seed));
      Bytes msg(i % 57);
      for (size_t j = 0; j < msg.size(); ++j) {
        msg[j] = static_cast<uint8_t>(i + j);
      }
      msgs.push_back(std::move(msg));
    }
    for (size_t i = 0; i < n; ++i) {
      Ed25519BatchItem item;
      item.pk = pks[i];
      item.msg = msgs[i].data();
      item.len = msgs[i].size();
      item.sig = Ed25519Sign(seeds[i], msgs[i]);
      items.push_back(item);
    }
  }
};

TEST(Ed25519BatchTest, EmptyBatch) {
  std::vector<Ed25519BatchItem> empty;
  EXPECT_TRUE(Ed25519BatchVerify(empty).empty());
}

TEST(Ed25519BatchTest, BatchOfOne) {
  BatchFixture f(1);
  auto ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_TRUE(ok[0]);

  f.items[0].sig[0] ^= 1;
  ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(ok.size(), 1u);
  EXPECT_FALSE(ok[0]);
}

TEST(Ed25519BatchTest, AllValid) {
  BatchFixture f(32);
  auto ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(ok.size(), 32u);
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "item " << i;
  }
}

TEST(Ed25519BatchTest, OneBadAmongSixtyFourIsIdentified) {
  // Bisection must pin the single corrupted signature without condemning any
  // of its 63 valid neighbours.
  for (size_t culprit : {0u, 17u, 63u}) {
    BatchFixture f(64);
    f.items[culprit].sig[40] ^= 0x80;
    auto ok = Ed25519BatchVerify(f.items);
    ASSERT_EQ(ok.size(), 64u);
    for (size_t i = 0; i < ok.size(); ++i) {
      EXPECT_EQ(ok[i], i != culprit) << "culprit " << culprit << " item " << i;
    }
  }
}

TEST(Ed25519BatchTest, HighSRejectedWithoutPoisoningBatch) {
  // Item 3 carries S' = S + L (malleable, must be rejected by strict
  // verification); the rest of the batch must still verify. The forged S is
  // pre-rejected before the batch equation, so it cannot force a bisection
  // cascade either.
  BatchFixture f(8);
  auto order = Ed25519GroupOrder();
  uint32_t carry = 0;
  for (int i = 0; i < 32; ++i) {
    uint32_t sum = static_cast<uint32_t>(f.items[3].sig[32 + i]) + order[i] + carry;
    f.items[3].sig[32 + i] = static_cast<uint8_t>(sum);
    carry = sum >> 8;
  }
  if (carry != 0) {
    GTEST_SKIP() << "S + L overflowed 32 bytes for this seed";
  }
  auto ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(ok.size(), 8u);
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], i != 3) << "item " << i;
  }
}

TEST(Ed25519BatchTest, UndecodablePointsRejectedWithoutPoisoningBatch) {
  BatchFixture f(8);
  // Item 1: public key that is not a curve point (y >= p).
  f.items[1].pk.fill(0xff);
  f.items[1].pk[31] = 0x7f;
  // Item 5: R replaced by the same non-point.
  for (int i = 0; i < 32; ++i) {
    f.items[5].sig[i] = (i == 31) ? 0x7f : 0xff;
  }
  auto ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(ok.size(), 8u);
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], i != 1 && i != 5) << "item " << i;
  }
}

TEST(Ed25519BatchTest, RandomizedAgreementWithSingleVerify) {
  // Batch and single verification must agree bit-for-bit on a mixed bag of
  // valid, corrupted, and cross-wired signatures. (The micro-benchmark runs
  // the same check over 10k items; this keeps the unit test fast.)
  BatchFixture f(96);
  uint64_t rng = 0x9e3779b97f4a7c15ull;  // Deterministic xorshift.
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (auto& item : f.items) {
    switch (next() % 4) {
      case 0:  // Leave valid.
        break;
      case 1:  // Flip a signature byte.
        item.sig[next() % 64] ^= static_cast<uint8_t>(1 + next() % 255);
        break;
      case 2:  // Wrong public key.
        item.pk = f.pks[next() % f.pks.size()];
        break;
      case 3:  // Truncate the message view.
        if (item.len > 0) {
          item.len -= 1;
        }
        break;
    }
  }
  auto batch_ok = Ed25519BatchVerify(f.items);
  ASSERT_EQ(batch_ok.size(), f.items.size());
  for (size_t i = 0; i < f.items.size(); ++i) {
    bool single = Ed25519Verify(f.items[i].pk, f.items[i].msg, f.items[i].len, f.items[i].sig);
    EXPECT_EQ(batch_ok[i], single) << "item " << i;
  }
}

// ---------------------------------------------------------------------------
// Small-order (torsion) inputs: cofactored single and batch verification
// must reach the same verdict no matter how the flush is composed.
// ---------------------------------------------------------------------------

// The canonical encoding of a point of order 8 on edwards25519 (the standard
// small-order point list; also reachable as a 2-torsion-free generator of
// the cofactor subgroup).
std::array<uint8_t, 32> Order8Point() {
  auto bytes = FromHex("26e8958fc2b227b045c3f489f2ef98f0d5dfac05d3c63339b13802886d53fc05");
  std::array<uint8_t, 32> enc{};
  std::memcpy(enc.data(), bytes->data(), 32);
  return enc;
}

// Builds the classic small-order "signature": pk = T (order 8), R = T,
// S = 0. Its residual [S]B - R - [k]A = -(1 + k mod 8)T is pure torsion, so
// cofactored verification accepts it for *every* message, while a
// cofactorless check would accept it only when k mod 8 happens to cancel —
// exactly the flush-composition-dependent behaviour that must not exist.
Ed25519BatchItem SmallOrderItem(const Bytes& msg) {
  Ed25519BatchItem item;
  item.pk = Order8Point();
  std::memcpy(item.sig.data(), item.pk.data(), 32);  // R = T, S = 0.
  item.msg = msg.data();
  item.len = msg.size();
  return item;
}

TEST(Ed25519TorsionTest, SmallOrderPointDecodes) {
  EXPECT_TRUE(Ed25519PointOnCurve(Order8Point()));
}

TEST(Ed25519TorsionTest, SingleAndBatchAgreeAcrossFlushCompositions) {
  // The same torsion-residual item is presented through every delivery
  // shape the protocol can produce: standalone single verify, a batch of
  // one, a clean batch with honest companions, and a batch that bisects
  // because another item is corrupt. All verdicts must be equal — otherwise
  // honest validators receiving the item via different routes would reach
  // different validity verdicts for the same bytes.
  Bytes msg = {0x42, 0x13, 0x37};
  Ed25519BatchItem torsion = SmallOrderItem(msg);

  const bool single = Ed25519Verify(torsion.pk, torsion.msg, torsion.len, torsion.sig);
  EXPECT_TRUE(single);  // Cofactored semantics: torsion residuals clear.

  // Batch of one.
  std::vector<Ed25519BatchItem> alone = {torsion};
  EXPECT_EQ(Ed25519BatchVerify(alone)[0], single);

  // Mixed with honest signatures (these must stay valid too).
  BatchFixture clean(9);
  std::vector<Ed25519BatchItem> mixed = clean.items;
  mixed.push_back(torsion);
  auto ok = Ed25519BatchVerify(mixed);
  for (size_t i = 0; i < clean.items.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "honest item " << i;
  }
  EXPECT_EQ(ok.back(), single);

  // With a corrupted honest item forcing bisection down to leaves.
  BatchFixture dirty(9);
  dirty.items[4].sig[50] ^= 0x20;
  std::vector<Ed25519BatchItem> bisected = dirty.items;
  bisected.push_back(torsion);
  ok = Ed25519BatchVerify(bisected);
  for (size_t i = 0; i < dirty.items.size(); ++i) {
    EXPECT_EQ(ok[i], i != 4) << "item " << i;
  }
  EXPECT_EQ(ok.back(), single);
}

TEST(Ed25519TorsionTest, NonTorsionResidualStillRejectsEverywhere) {
  // S = 1 moves the residual off the torsion subgroup ([8]B != identity), so
  // both paths must reject, in every composition.
  Bytes msg = {0x99};
  Ed25519BatchItem bad = SmallOrderItem(msg);
  bad.sig[32] = 1;  // S = 1.

  EXPECT_FALSE(Ed25519Verify(bad.pk, bad.msg, bad.len, bad.sig));
  std::vector<Ed25519BatchItem> alone = {bad};
  EXPECT_FALSE(Ed25519BatchVerify(alone)[0]);

  BatchFixture clean(7);
  std::vector<Ed25519BatchItem> mixed = clean.items;
  mixed.push_back(bad);
  auto ok = Ed25519BatchVerify(mixed);
  for (size_t i = 0; i < clean.items.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "honest item " << i;
  }
  EXPECT_FALSE(ok.back());
}

}  // namespace
}  // namespace nt
