// End-to-end validation of the lifecycle-tracing subsystem: a traced Tusk
// run must export Chrome trace-event JSON that (a) parses, (b) has properly
// nested spans on every (pid, tid) track, and (c) carries a telescoping
// latency breakdown whose stages sum to the end-to-end latency and whose
// e2e distribution matches the Metrics-side measurement it shadows.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/trace.h"
#include "src/runtime/client.h"
#include "src/runtime/experiment.h"

namespace nt {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser — just enough to validate the
// exporter's output without pulling a JSON library into the build.
// ---------------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool Has(const std::string& key) const { return kind == kObject && obj.count(key) > 0; }
  const Json& At(const std::string& key) const { return obj.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the full document; ok() reports whether everything consumed.
  Json Parse() {
    Json v = Value();
    SkipWs();
    if (pos_ != text_.size()) {
      ok_ = false;
    }
    return v;
  }
  bool ok() const { return ok_; }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    ok_ = false;
    return false;
  }
  Json Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      ok_ = false;
      return Json();
    }
    char c = text_[pos_];
    if (c == '{') {
      return Object();
    }
    if (c == '[') {
      return Array();
    }
    if (c == '"') {
      Json v;
      v.kind = Json::kString;
      v.str = String();
      return v;
    }
    if (c == 't' || c == 'f') {
      return Literal(c == 't' ? "true" : "false", c == 't');
    }
    if (c == 'n') {
      return Literal("null", false);
    }
    return Number();
  }
  Json Literal(const std::string& word, bool value) {
    Json v;
    if (text_.compare(pos_, word.size(), word) != 0) {
      ok_ = false;
      return v;
    }
    pos_ += word.size();
    if (word == "null") {
      v.kind = Json::kNull;
    } else {
      v.kind = Json::kBool;
      v.b = value;
    }
    return v;
  }
  Json Number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    Json v;
    if (pos_ == start) {
      ok_ = false;
      return v;
    }
    v.kind = Json::kNumber;
    v.num = std::stod(text_.substr(start, pos_ - start));
    return v;
  }
  std::string String() {
    std::string out;
    ++pos_;  // Opening quote.
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;  // Keep escaped char verbatim; enough for validation.
      }
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) {
      ok_ = false;
      return out;
    }
    ++pos_;  // Closing quote.
    return out;
  }
  Json Object() {
    Json v;
    v.kind = Json::kObject;
    Consume('{');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (ok_) {
      SkipWs();
      std::string key = String();
      Consume(':');
      v.obj[key] = Value();
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume('}');
      break;
    }
    return v;
  }
  Json Array() {
    Json v;
    v.kind = Json::kArray;
    Consume('[');
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (ok_) {
      v.arr.push_back(Value());
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      Consume(']');
      break;
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return "";
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

struct Span {
  double ts = 0;
  double dur = 0;
  std::string name;
  double End() const { return ts + dur; }
};

TEST(TraceTest, TracedTuskRunExportsValidChromeTrace) {
  const std::string path = "trace_test_out.json";
  ExperimentParams params;
  params.system = SystemKind::kTusk;
  params.nodes = 4;
  params.workers = 1;
  params.rate_tps = 2000;
  params.duration = Seconds(12);
  params.warmup = Seconds(3);
  params.seed = 21;
  params.trace = true;
  params.trace_path = path;

  ExperimentResult result = RunExperiment(params);
  ASSERT_TRUE(result.traced);
  ASSERT_TRUE(result.trace_written);
  ASSERT_GT(result.sampled_txs, 100u);

  const LatencyBreakdown& bd = result.breakdown;
  ASSERT_GT(bd.completed_txs, 0u);
  // The tracer shadows Metrics: same commit stamps, same window filter, so
  // both sides measure the identical sample population.
  EXPECT_EQ(bd.completed_txs, result.sampled_txs);

  // Telescoping invariant: every stage measures from the previous recorded
  // stage, so per transaction batch + cert + commit + exec == e2e exactly —
  // and therefore so do the means.
  double stage_sum =
      bd.batch_s.Mean() + bd.cert_s.Mean() + bd.commit_s.Mean() + bd.exec_s.Mean();
  EXPECT_NEAR(stage_sum, bd.e2e_s.Mean(), 1e-6 * std::max(1.0, bd.e2e_s.Mean()));

  // Acceptance criterion: the breakdown's e2e distribution tracks the
  // Metrics-side latency within 5% at the median.
  ASSERT_GT(result.p50_latency_s, 0.0);
  EXPECT_NEAR(bd.e2e_s.Percentile(50), result.p50_latency_s, 0.05 * result.p50_latency_s);

  // Dissemination dominates consensus-free stages: every stage non-negative,
  // and batch + commit carry real time.
  EXPECT_GE(bd.batch_s.Min(), 0.0);
  EXPECT_GE(bd.cert_s.Min(), 0.0);
  EXPECT_GE(bd.commit_s.Min(), 0.0);
  EXPECT_GT(bd.batch_s.Mean(), 0.0);
  EXPECT_GT(bd.commit_s.Mean(), 0.0);

  // --- the exported file is valid Chrome trace JSON ------------------------
  std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty());
  JsonParser parser(text);
  Json doc = parser.Parse();
  ASSERT_TRUE(parser.ok()) << "trace JSON failed to parse";
  ASSERT_EQ(doc.kind, Json::kObject);
  ASSERT_TRUE(doc.Has("traceEvents"));
  const Json& events = doc.At("traceEvents");
  ASSERT_EQ(events.kind, Json::kArray);
  ASSERT_FALSE(events.arr.empty());

  size_t complete_events = 0, counter_events = 0, metadata_events = 0, instant_events = 0;
  std::map<std::pair<double, double>, std::vector<Span>> tracks;  // (pid, tid) -> spans.
  // Async begin/end pairs keyed by (pid, id): +1 per "b", -1 per "e"; the
  // depth may never go negative and must end balanced at zero.
  std::map<std::pair<double, std::string>, std::vector<std::pair<double, int>>> async_pairs;
  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::kObject);
    ASSERT_TRUE(e.Has("ph"));
    const std::string& ph = e.At("ph").str;
    if (ph == "M") {
      ++metadata_events;
      continue;
    }
    ASSERT_TRUE(e.Has("pid"));
    ASSERT_TRUE(e.Has("ts"));
    if (ph == "C") {
      ++counter_events;
      ASSERT_TRUE(e.Has("args"));
    } else if (ph == "i") {
      ++instant_events;
    } else if (ph == "b" || ph == "e") {
      ASSERT_TRUE(e.Has("cat"));
      ASSERT_TRUE(e.Has("id"));
      ASSERT_TRUE(e.Has("name"));
      async_pairs[{e.At("pid").num, e.At("id").str}].push_back(
          {e.At("ts").num, ph == "b" ? 1 : -1});
    } else if (ph == "X") {
      ++complete_events;
      ASSERT_TRUE(e.Has("tid"));
      ASSERT_TRUE(e.Has("dur"));
      ASSERT_TRUE(e.Has("name"));
      Span s;
      s.ts = e.At("ts").num;
      s.dur = e.At("dur").num;
      s.name = e.At("name").str;
      EXPECT_GE(s.ts, 0.0);
      EXPECT_GE(s.dur, 1.0) << "durations are clamped to >= 1 us";
      tracks[{e.At("pid").num, e.At("tid").num}].push_back(s);
    } else {
      FAIL() << "unexpected event phase: " << ph;
    }
  }
  EXPECT_GT(complete_events, 0u) << "no lifecycle spans exported";
  EXPECT_GT(counter_events, 0u) << "no gauge samples exported";
  EXPECT_GT(metadata_events, 0u) << "no process-name metadata exported";
  EXPECT_FALSE(async_pairs.empty()) << "no pipelined header async spans exported";

  // Every async id's begin/end pairs balance when replayed in time order.
  for (auto& [key, marks] : async_pairs) {
    std::stable_sort(marks.begin(), marks.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    int depth = 0;
    for (const auto& [ts, delta] : marks) {
      depth += delta;
      ASSERT_GE(depth, 0) << "async end before begin for header id " << key.second;
    }
    ASSERT_EQ(depth, 0) << "unbalanced async begin/end for header id " << key.second;
  }

  // Spans on one track must nest: after sorting by (start asc, length desc),
  // each span is either disjoint from or fully contained in the enclosing
  // one. Partial overlap would render as garbage in the trace viewer.
  for (auto& [track, spans] : tracks) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.ts != b.ts) {
        return a.ts < b.ts;
      }
      return a.dur > b.dur;
    });
    std::vector<Span> stack;
    for (const Span& s : spans) {
      while (!stack.empty() && stack.back().End() <= s.ts) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        ASSERT_LE(s.End(), stack.back().End())
            << "span '" << s.name << "' partially overlaps '" << stack.back().name
            << "' on track pid=" << track.first << " tid=" << track.second;
      }
      stack.push_back(s);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceTest, GaugesAndCountersAccumulate) {
  // Drive a small traced cluster directly (RunExperiment destroys its
  // cluster, so tracer accessors need a manual run).
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 22;
  config.trace = true;
  Cluster cluster(config);
  cluster.metrics().set_observer(0);
  cluster.metrics().SetWindow(Seconds(1), Seconds(8));
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(8);
  for (ValidatorId v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.StartGaugeSampling(Seconds(8));
  cluster.scheduler().RunUntil(Seconds(8));

  Tracer* tracer = cluster.tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->traced_txs(), 0u);

  // The cluster registers scheduler/cache gauges plus per-validator
  // NIC and DAG gauges; all must have been sampled on the 100 ms timer.
  for (const char* name : {"scheduler/pending_events", "cert_cache/hit_rate", "v0/dag_round",
                           "v0/egress_utilization", "v0/egress_backlog_us", "v0/dag_certs"}) {
    const SampleStats* stats = tracer->gauge_stats(name);
    ASSERT_NE(stats, nullptr) << "gauge not registered: " << name;
    EXPECT_GT(stats->count(), 10u) << "gauge under-sampled: " << name;
  }
  // The DAG advances, so its round gauge must end above where it started.
  EXPECT_GT(tracer->gauge_stats("v0/dag_round")->Max(), 1.0);

  // A clean, synchronous run needs no retransmission at all.
  EXPECT_EQ(tracer->max_retry_rounds("batch_retry"), 0u);
  EXPECT_EQ(tracer->max_retry_rounds("header_retry"), 0u);
  EXPECT_EQ(tracer->max_retry_rounds("cert_reshare"), 0u);

  // ComputeBreakdown over the full window telescopes here too.
  LatencyBreakdown bd = tracer->ComputeBreakdown(Seconds(1), Seconds(8));
  ASSERT_GT(bd.completed_txs, 0u);
  double stage_sum =
      bd.batch_s.Mean() + bd.cert_s.Mean() + bd.commit_s.Mean() + bd.exec_s.Mean();
  EXPECT_NEAR(stage_sum, bd.e2e_s.Mean(), 1e-6 * std::max(1.0, bd.e2e_s.Mean()));
}

}  // namespace
}  // namespace nt
