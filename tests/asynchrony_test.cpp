// Asynchrony-window behaviour (paper §3.2 and Table 1's "unstable network"
// row): the Narwhal DAG keeps certifying through asynchrony, Tusk keeps
// committing, and an eventually-synchronous protocol over Narwhal recovers
// its entire backlog with the first commit after the network heals.
#include <gtest/gtest.h>

#include "src/common/trace.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

struct AsyncRun {
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  Round round_at_async_start = 0;
  Round round_at_async_end = 0;
  uint64_t txs_at_async_end = 0;
};

AsyncRun RunWithWindow(SystemKind system, uint64_t seed) {
  const TimePoint kAsyncStart = Seconds(6);
  const TimePoint kAsyncEnd = Seconds(16);
  const TimePoint kRunEnd = Seconds(28);
  AsyncRun run;
  ClusterConfig config;
  config.system = system;
  config.num_validators = 4;
  config.seed = seed;
  run.cluster = std::make_unique<Cluster>(config);
  run.cluster->faults().AddAsynchronyWindow(kAsyncStart, kAsyncEnd, 25.0);
  run.cluster->metrics().set_observer(0);
  run.cluster->metrics().SetWindow(Seconds(2), kRunEnd);
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = kRunEnd;
  for (ValidatorId v = 0; v < 4; ++v) {
    run.clients.push_back(std::make_unique<LoadGenerator>(run.cluster.get(), v, 0, options));
    run.clients.back()->Start();
  }
  run.cluster->Start();
  run.cluster->scheduler().RunUntil(kAsyncStart);
  run.round_at_async_start = run.cluster->primary(0)->dag().HighestRound();
  run.cluster->scheduler().RunUntil(kAsyncEnd);
  run.round_at_async_end = run.cluster->primary(0)->dag().HighestRound();
  run.txs_at_async_end = run.cluster->metrics().committed_txs();
  run.cluster->scheduler().RunUntil(kRunEnd);
  return run;
}

TEST(AsynchronyTest, DagAdvancesThroughAsynchrony) {
  AsyncRun run = RunWithWindow(SystemKind::kTusk, 1);
  // The mempool needs no timing assumption: rounds continue during the
  // window — slower, since a round still takes ~3 one-way hops, now
  // inflated 25x (~5s each) — and accelerate again after healing.
  EXPECT_GT(run.round_at_async_end, run.round_at_async_start);
  Round final_round = run.cluster->primary(0)->dag().HighestRound();
  EXPECT_GT(final_round, run.round_at_async_end + 10);
}

TEST(AsynchronyTest, TuskCommitsDuringAsynchrony) {
  AsyncRun run = RunWithWindow(SystemKind::kTusk, 2);
  // Commits during the window itself (wait-freedom).
  EXPECT_GT(run.txs_at_async_end, 1000u);
  // And the full run recovers nearly all input.
  double input = 2000.0 * 26.0;
  EXPECT_GT(run.cluster->metrics().committed_txs(), static_cast<uint64_t>(input * 0.8));
}

TEST(AsynchronyTest, NarwhalHsRecoversBacklogAfterHealing) {
  AsyncRun run = RunWithWindow(SystemKind::kNarwhalHs, 3);
  uint64_t during = run.txs_at_async_end;
  uint64_t total = run.cluster->metrics().committed_txs();
  // Largely stalled during the window...
  // ...but the first commits after healing cover the whole backlog
  // (2/3-Causality): the total approaches the input.
  double input = 2000.0 * 26.0;
  EXPECT_GT(total, static_cast<uint64_t>(input * 0.8));
  EXPECT_GT(total - during, (total * 2) / 5)
      << "expected a large post-healing catch-up burst";
}

TEST(AsynchronyTest, CertifiedRetransmissionsBackOffExponentially) {
  // Regression for the certified-path retransmission storm: once a header is
  // certified, RetryBroadcast switches to re-sharing the certificate, but it
  // used to re-read the retry count from a proposals_ entry that had already
  // been erased — every reshare rescheduled itself at the *base* delay,
  // flooding one certificate per second per stuck proposal for as long as the
  // round stalled. With the attempt carried through the rescheduled lambda the
  // reshare cadence is geometric (1, 3, 7, 15, 31 s...), so a ~20 s asynchrony
  // stall sees at most ~5 reshare rounds per header instead of ~20.
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 5;
  config.trace = true;
  Cluster cluster(config);
  cluster.faults().AddAsynchronyWindow(Seconds(2), Seconds(22), 30.0);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(30);
  for (ValidatorId v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(30));
  const Tracer* tracer = cluster.tracer();
  ASSERT_NE(tracer, nullptr);
  // The 30x window makes rounds take several seconds, so retries do fire on
  // both paths (the header may certify between retries — then the certified
  // branch takes over).
  EXPECT_GT(tracer->counter("header_retry/rounds") + tracer->counter("cert_reshare/rounds"), 0u)
      << "a 20 s asynchrony stall must trigger some retransmission";
  // Geometric bound: fire times 1,3,7,15,31 s past the proposal mean at most
  // 5 rounds fit in the stall, on either path (the attempt counter is shared).
  EXPECT_LE(tracer->max_retry_rounds("cert_reshare"), 6u)
      << "certificate reshares grew linearly (storm) instead of backing off";
  EXPECT_LE(tracer->max_retry_rounds("header_retry"), 6u)
      << "header retries grew linearly instead of backing off";
}

TEST(AsynchronyTest, AgreementHoldsAcrossTheWindow) {
  std::vector<std::vector<Digest>> sequences(4);
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 4;
  Cluster cluster(config);
  cluster.faults().AddAsynchronyWindow(Seconds(4), Seconds(12), 30.0);
  for (ValidatorId v = 0; v < 4; ++v) {
    cluster.tusk(v)->add_on_commit(
        [&sequences, v](const Tusk::Committed& c) { sequences[v].push_back(c.digest); });
  }
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  LoadGenerator::Options options;
  options.rate_tps = 300;
  options.stop_at = Seconds(25);
  for (ValidatorId v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(25));
  ASSERT_GT(sequences[0].size(), 10u);
  for (ValidatorId a = 0; a < 4; ++a) {
    for (ValidatorId b = a + 1; b < 4; ++b) {
      size_t common = std::min(sequences[a].size(), sequences[b].size());
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(sequences[a][i], sequences[b][i]);
      }
    }
  }
}

}  // namespace
}  // namespace nt
