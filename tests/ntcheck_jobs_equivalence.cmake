# Asserts that `ntcheck --jobs N` is observably identical to a sequential
# sweep: same stdout byte-for-byte (per-seed verdicts in seed order, same
# summary line) and same exit code. Run via ctest as a script test with
# -DNTCHECK=<path to the ntcheck binary>.
execute_process(COMMAND ${NTCHECK} --seeds 10 --start 300
                OUTPUT_VARIABLE seq_out RESULT_VARIABLE seq_rc)
execute_process(COMMAND ${NTCHECK} --seeds 10 --start 300 --jobs 4
                OUTPUT_VARIABLE par_out RESULT_VARIABLE par_rc)
if(NOT seq_rc EQUAL par_rc)
  message(FATAL_ERROR "exit codes differ: sequential=${seq_rc} parallel=${par_rc}")
endif()
if(NOT seq_out STREQUAL par_out)
  message(FATAL_ERROR "parallel output differs from sequential:\n"
                      "--- sequential ---\n${seq_out}\n--- parallel ---\n${par_out}")
endif()
