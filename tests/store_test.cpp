// Storage substrate: MemStore semantics, WAL persistence, recovery from
// clean shutdown, torn tails, and corruption.
#include "src/store/store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

namespace nt {
namespace {

Digest Key(int i) {
  Digest d{};
  d[0] = static_cast<uint8_t>(i);
  d[1] = static_cast<uint8_t>(i >> 8);
  return d;
}

class WalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_store_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST(MemStoreTest, PutGetEraseContains) {
  MemStore store;
  EXPECT_FALSE(store.Contains(Key(1)));
  EXPECT_FALSE(store.Get(Key(1)).has_value());
  store.Put(Key(1), {1, 2, 3});
  EXPECT_TRUE(store.Contains(Key(1)));
  EXPECT_EQ(*store.Get(Key(1)), (Bytes{1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  store.Put(Key(1), {9});  // Overwrite.
  EXPECT_EQ(*store.Get(Key(1)), (Bytes{9}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase(Key(1)));
  EXPECT_FALSE(store.Erase(Key(1)));
  EXPECT_EQ(store.size(), 0u);
}

TEST(MemStoreTest, EmptyValueIsStored) {
  MemStore store;
  store.Put(Key(5), {});
  EXPECT_TRUE(store.Contains(Key(5)));
  EXPECT_TRUE(store.Get(Key(5))->empty());
}

TEST_F(WalStoreTest, PersistsAcrossReopen) {
  {
    auto store = WalStore::Open(path_);
    ASSERT_NE(store, nullptr);
    store->Put(Key(1), {1, 1, 1});
    store->Put(Key(2), {2, 2});
    store->Erase(Key(1));
    store->Sync();
  }
  auto reopened = WalStore::Open(path_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->recovered_records(), 3u);
  EXPECT_FALSE(reopened->Contains(Key(1)));
  EXPECT_EQ(*reopened->Get(Key(2)), (Bytes{2, 2}));
  EXPECT_EQ(reopened->size(), 1u);
}

TEST_F(WalStoreTest, OverwriteKeepsLatestValue) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(7), {1});
    store->Put(Key(7), {2});
    store->Put(Key(7), {3});
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(*reopened->Get(Key(7)), (Bytes{3}));
}

TEST_F(WalStoreTest, TornTailIsIgnored) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(1), Bytes(100, 0xaa));
    store->Put(Key(2), Bytes(100, 0xbb));
  }
  // Truncate mid-way through the second record.
  long size;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    size = std::ftell(f);
    std::fclose(f);
  }
  ASSERT_EQ(truncate(path_.c_str(), size - 30), 0);

  auto reopened = WalStore::Open(path_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->recovered_records(), 1u);
  EXPECT_TRUE(reopened->Contains(Key(1)));
  EXPECT_FALSE(reopened->Contains(Key(2)));
  // And the store remains writable after recovery.
  reopened->Put(Key(3), {3});
  EXPECT_TRUE(reopened->Contains(Key(3)));
}

TEST_F(WalStoreTest, CorruptRecordStopsReplay) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(1), Bytes(50, 0x11));
    store->Put(Key(2), Bytes(50, 0x22));
  }
  // Flip a byte inside the second record's value.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    std::fseek(f, -20, SEEK_END);
    uint8_t byte = 0;
    ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
    std::fseek(f, -20, SEEK_END);
    byte ^= 0xff;
    std::fwrite(&byte, 1, 1, f);
    std::fclose(f);
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(reopened->recovered_records(), 1u);
  EXPECT_TRUE(reopened->Contains(Key(1)));
  EXPECT_FALSE(reopened->Contains(Key(2)));
}

// Regression for the torn-tail repair: replaying past garbage and then
// appending produces records that are unreachable on the *next* recovery
// (replay stops at the garbage), silently losing acknowledged writes. The
// torture sweep truncates the log at every tail byte offset and corrupts
// every tail byte in turn; each time, reopen must surface exactly the
// last-good prefix, accept new appends, and keep them across a second
// reopen.
TEST_F(WalStoreTest, TortureEveryTailOffset) {
  // Two synced records; their byte extents are the torture region.
  long full_size = 0;
  long first_end = 0;
  {
    auto store = WalStore::Open(path_);
    ASSERT_NE(store, nullptr);
    store->Put(Key(1), Bytes(13, 0xaa));
    store->Sync();
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    first_end = std::ftell(f);
    std::fclose(f);
    store->Put(Key(2), Bytes(29, 0xbb));
    store->Sync();
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    full_size = std::ftell(f);
    std::fclose(f);
  }
  Bytes pristine(static_cast<size_t>(full_size));
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_EQ(std::fread(pristine.data(), 1, pristine.size(), f), pristine.size());
    std::fclose(f);
  }
  auto restore = [&] {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    std::fwrite(pristine.data(), 1, pristine.size(), f);
    std::fclose(f);
  };
  auto expect_prefix = [&](long cut, const char* what) {
    // Anything short of the full second record must recover exactly the
    // first; cutting into the first as well must recover nothing.
    size_t want = cut >= full_size ? 2u : (cut >= first_end ? 1u : 0u);
    auto reopened = WalStore::Open(path_);
    ASSERT_NE(reopened, nullptr) << what << " at offset " << cut;
    EXPECT_EQ(reopened->recovered_records(), want) << what << " at offset " << cut;
    EXPECT_EQ(reopened->Contains(Key(1)), want >= 1) << what << " at offset " << cut;
    EXPECT_EQ(reopened->Contains(Key(2)), want >= 2) << what << " at offset " << cut;
    // Appending after repair must survive a second crash-reopen — this is
    // the bug the torn-tail truncation exists to prevent.
    reopened->Put(Key(3), {3});
    reopened->Sync();
    reopened.reset();
    auto again = WalStore::Open(path_);
    ASSERT_NE(again, nullptr) << what << " at offset " << cut;
    EXPECT_EQ(again->recovered_records(), want + 1) << what << " at offset " << cut;
    EXPECT_TRUE(again->Contains(Key(3))) << what << " at offset " << cut;
    EXPECT_EQ(again->truncated_bytes(), 0u) << what << " at offset " << cut;
  };

  // Torn tail: truncate at every offset inside the log.
  for (long cut = 0; cut < full_size; ++cut) {
    restore();
    ASSERT_EQ(truncate(path_.c_str(), cut), 0);
    {
      auto reopened = WalStore::Open(path_);
      ASSERT_NE(reopened, nullptr);
      // The repair only rewinds to a record boundary; any mid-record cut
      // reports the dangling bytes as truncated.
      long boundary = cut >= first_end ? first_end : 0;
      EXPECT_EQ(reopened->truncated_bytes(), static_cast<size_t>(cut - boundary));
    }
    expect_prefix(cut, "truncate");
  }

  // Corruption: flip every byte of the second record in turn (the first
  // record stays intact, so recovery must stop exactly at its boundary).
  for (long at = first_end; at < full_size; ++at) {
    restore();
    {
      std::FILE* f = std::fopen(path_.c_str(), "rb+");
      std::fseek(f, at, SEEK_SET);
      uint8_t byte = 0;
      ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
      std::fseek(f, at, SEEK_SET);
      byte ^= 0xff;
      std::fwrite(&byte, 1, 1, f);
      std::fclose(f);
    }
    expect_prefix(first_end, "corrupt");
  }
}

// Regression for the fsync fix: Sync() must reach the file descriptor (not
// just the stdio buffer), and each call is counted so policy code (e.g.
// sync-on-seal in the worker) is observable in tests.
TEST_F(WalStoreTest, SyncIsCountedAndDataIsOnDiskBeforeClose) {
  auto store = WalStore::Open(path_);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->sync_count(), 0u);
  store->Put(Key(4), Bytes(64, 0x44));
  store->Sync();
  EXPECT_EQ(store->sync_count(), 1u);
  // Without closing the writing store, a reader must already see the full
  // record — fflush+fsync pushed it past the stdio buffer.
  auto reader = WalStore::Open(path_);
  ASSERT_NE(reader, nullptr);
  EXPECT_EQ(reader->recovered_records(), 1u);
  EXPECT_EQ(*reader->Get(Key(4)), Bytes(64, 0x44));
}

TEST_F(WalStoreTest, LargeValuesRoundTrip) {
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(9), big);
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(*reopened->Get(Key(9)), big);
}

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xcbf43926.
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(msg), 9), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace nt
