// Storage substrate: MemStore semantics, WAL persistence, recovery from
// clean shutdown, torn tails, and corruption.
#include "src/store/store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

namespace nt {
namespace {

Digest Key(int i) {
  Digest d{};
  d[0] = static_cast<uint8_t>(i);
  d[1] = static_cast<uint8_t>(i >> 8);
  return d;
}

class WalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "wal_store_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST(MemStoreTest, PutGetEraseContains) {
  MemStore store;
  EXPECT_FALSE(store.Contains(Key(1)));
  EXPECT_FALSE(store.Get(Key(1)).has_value());
  store.Put(Key(1), {1, 2, 3});
  EXPECT_TRUE(store.Contains(Key(1)));
  EXPECT_EQ(*store.Get(Key(1)), (Bytes{1, 2, 3}));
  EXPECT_EQ(store.size(), 1u);
  store.Put(Key(1), {9});  // Overwrite.
  EXPECT_EQ(*store.Get(Key(1)), (Bytes{9}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase(Key(1)));
  EXPECT_FALSE(store.Erase(Key(1)));
  EXPECT_EQ(store.size(), 0u);
}

TEST(MemStoreTest, EmptyValueIsStored) {
  MemStore store;
  store.Put(Key(5), {});
  EXPECT_TRUE(store.Contains(Key(5)));
  EXPECT_TRUE(store.Get(Key(5))->empty());
}

TEST_F(WalStoreTest, PersistsAcrossReopen) {
  {
    auto store = WalStore::Open(path_);
    ASSERT_NE(store, nullptr);
    store->Put(Key(1), {1, 1, 1});
    store->Put(Key(2), {2, 2});
    store->Erase(Key(1));
    store->Sync();
  }
  auto reopened = WalStore::Open(path_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->recovered_records(), 3u);
  EXPECT_FALSE(reopened->Contains(Key(1)));
  EXPECT_EQ(*reopened->Get(Key(2)), (Bytes{2, 2}));
  EXPECT_EQ(reopened->size(), 1u);
}

TEST_F(WalStoreTest, OverwriteKeepsLatestValue) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(7), {1});
    store->Put(Key(7), {2});
    store->Put(Key(7), {3});
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(*reopened->Get(Key(7)), (Bytes{3}));
}

TEST_F(WalStoreTest, TornTailIsIgnored) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(1), Bytes(100, 0xaa));
    store->Put(Key(2), Bytes(100, 0xbb));
  }
  // Truncate mid-way through the second record.
  long size;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    size = std::ftell(f);
    std::fclose(f);
  }
  ASSERT_EQ(truncate(path_.c_str(), size - 30), 0);

  auto reopened = WalStore::Open(path_);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->recovered_records(), 1u);
  EXPECT_TRUE(reopened->Contains(Key(1)));
  EXPECT_FALSE(reopened->Contains(Key(2)));
  // And the store remains writable after recovery.
  reopened->Put(Key(3), {3});
  EXPECT_TRUE(reopened->Contains(Key(3)));
}

TEST_F(WalStoreTest, CorruptRecordStopsReplay) {
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(1), Bytes(50, 0x11));
    store->Put(Key(2), Bytes(50, 0x22));
  }
  // Flip a byte inside the second record's value.
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    std::fseek(f, -20, SEEK_END);
    uint8_t byte = 0;
    ASSERT_EQ(std::fread(&byte, 1, 1, f), 1u);
    std::fseek(f, -20, SEEK_END);
    byte ^= 0xff;
    std::fwrite(&byte, 1, 1, f);
    std::fclose(f);
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(reopened->recovered_records(), 1u);
  EXPECT_TRUE(reopened->Contains(Key(1)));
  EXPECT_FALSE(reopened->Contains(Key(2)));
}

TEST_F(WalStoreTest, LargeValuesRoundTrip) {
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  {
    auto store = WalStore::Open(path_);
    store->Put(Key(9), big);
  }
  auto reopened = WalStore::Open(path_);
  EXPECT_EQ(*reopened->Get(Key(9)), big);
}

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC-32 check value: crc32("123456789") = 0xcbf43926.
  const char* msg = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(msg), 9), 0xcbf43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

}  // namespace
}  // namespace nt
