// ntlint fixture corpus: every rule R1–R5 is proven to fire on positive
// snippets and stay silent on negatives, the allow-annotation machinery is
// exercised end to end, and the real tree is linted so the suite fails the
// moment a violation (or a stale suppression) lands in src/.
#include "src/lint/lint.h"

#include <algorithm>
#include <string>

#include "gtest/gtest.h"

namespace nt {
namespace lint {
namespace {

int CountRule(const FileReport& r, const char* rule, bool include_suppressed = true) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule && (include_suppressed || !f.suppressed)) {
      ++n;
    }
  }
  return n;
}

int Unsuppressed(const FileReport& r) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (!f.suppressed) {
      ++n;
    }
  }
  return n;
}

// ------------------------------------------------------------------ R1 nondet

TEST(NondetRule, FlagsBannedIncludeAndClockChain) {
  FileReport r = LintSource("src/narwhal/worker.cpp", R"(
#include <chrono>
void Tick() {
  auto t = std::chrono::steady_clock::now();
}
)");
  EXPECT_GE(CountRule(r, kRuleNondet), 2);  // The include and the chain.
}

TEST(NondetRule, FlagsLibcEntropyAndEnvironment) {
  FileReport r = LintSource("src/tusk/tusk.cpp", R"(
int Jitter() { return rand() % 7; }
const char* Home() { return getenv("HOME"); }
long Now() { return time(nullptr); }
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 3);
}

TEST(NondetRule, FlagsMutexDeclarationOncePerLock) {
  FileReport r = LintSource("src/types/cache.h", R"(
class C {
  std::mutex mu_;
  void F() { std::lock_guard<std::mutex> lock(mu_); }
  void G() { std::lock_guard<std::mutex> lock(mu_); }
};
)");
  // One finding at the declaration; the lock_guard type mentions are not
  // declarations (next token is not an identifier) and stay silent.
  EXPECT_EQ(CountRule(r, kRuleNondet), 1);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(NondetRule, SimulatorAndBenchAreExempt) {
  const char* body = R"(
#include <chrono>
uint64_t WallNow() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
int Entropy() { return rand(); }
)";
  EXPECT_EQ(CountRule(LintSource("src/sim/wallclock.cpp", body), kRuleNondet), 0);
  EXPECT_EQ(CountRule(LintSource("bench/driver.cpp", body), kRuleNondet), 0);
}

TEST(NondetRule, TimeWithRealArgumentIsNotTheWallClockPattern) {
  FileReport r = LintSource("src/exec/state.cpp", R"(
void Stamp(Tx* tx, uint64_t logical) { tx->time(logical); }
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 0);
}

TEST(NondetRule, FlagsRawFileIoIncludingGlobalQualified) {
  FileReport r = LintSource("src/narwhal/primary.cpp", R"(
#include <unistd.h>
void Flush(FILE* f) { fsync(fileno(f)); }
void Repair(const char* p) { ::truncate(p, 0); }
)");
  // The include, fsync, fileno, and the ::-qualified truncate all fire.
  EXPECT_EQ(CountRule(r, kRuleNondet), 4);
}

TEST(NondetRule, AllowedFileIoInWalLayerIsSuppressed) {
  FileReport r = LintSource("src/store/store.cpp", R"(
void Sync(FILE* f) {
  // ntlint:allow(nondet): WAL durability barrier
  ::fsync(::fileno(f));
}
)");
  EXPECT_EQ(CountRule(r, kRuleNondet, /*include_suppressed=*/false), 0);
  EXPECT_EQ(r.unused_allows.size(), 0u);
}

TEST(NondetRule, MemberNamedTruncateIsNotFileIo) {
  FileReport r = LintSource("src/exec/state.cpp", R"(
void Trim(Log& log) { log.truncate(7); }
size_t truncate_count = 0;
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 0);
}

// ---------------------------------------------------------- R2 unordered-iter

TEST(UnorderedIterRule, FlagsRangeForThatSerializes) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::unordered_map<uint32_t, Digest> pending_;
void Emit(Writer& w) {
  for (const auto& [id, d] : pending_) {
    w.PutU32(id);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, FlagsIteratorLoopThatSends) {
  FileReport r = LintSource("src/net/router.cpp", R"(
std::unordered_set<uint32_t> peers_;
void Flood(const Msg& m) {
  for (auto it = peers_.begin(); it != peers_.end(); ++it) {
    SendTo(*it, m);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, MemberDeclaredInCompanionHeaderIsSeen) {
  const std::string header = R"(
class Pool {
  std::unordered_map<uint64_t, Entry> entries_;
};
)";
  FileReport r = LintSourceWithCompanion("src/narwhal/pool.cpp", R"(
void Pool::Dump(Sha256& h) {
  for (const auto& [k, e] : entries_) {
    h.Update(k);
  }
}
)",
                                         &header);
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, PureReadBodyIsSilent) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::unordered_map<uint32_t, uint64_t> weights_;
uint64_t Max() {
  uint64_t best = 0;
  for (const auto& [id, w] : weights_) {
    best = std::max(best, w);
  }
  return best;
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 0);
}

TEST(UnorderedIterRule, OrderedContainerIsSilent) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::map<uint32_t, Digest> pending_;
void Emit(Writer& w) {
  for (const auto& [id, d] : pending_) {
    w.PutU32(id);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 0);
}

// ------------------------------------------------------------ R3 quorum-arith

TEST(QuorumArithRule, FlagsLiteralThresholds) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
bool Quorate(uint32_t votes, uint32_t f) { return votes >= 2 * f + 1; }
bool OneHonest(uint32_t votes, const Committee& c) { return votes >= c.f() + 1; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 2);
}

TEST(QuorumArithRule, FlagsDivisionByThree) {
  FileReport r = LintSource("src/hotstuff/pacemaker.cpp", R"(
uint32_t Faulty(uint32_t n) { return (n - 1) / 3; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 1);
}

TEST(QuorumArithRule, CommitteeHelpersAreSilent) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
bool Quorate(uint32_t votes, const Committee& c) {
  return votes >= c.quorum_threshold() && votes >= Committee::ValidityThresholdFor(c.size());
}
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 0);
}

TEST(QuorumArithRule, BullsharkSupportVoteCountingIsInScope) {
  // The Bullshark commit rule counts support votes against f+1; hand-rolled
  // threshold arithmetic in src/bullshark/ must fire like everywhere else.
  FileReport r = LintSource("src/bullshark/bullshark.cpp", R"(
bool Supported(uint32_t votes, const Committee& c) { return votes >= c.f() + 1; }
uint32_t Faulty(uint32_t n) { return (n - 1) / 3; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 2);
}

TEST(QuorumArithRule, BullsharkRoutedSupportThresholdIsSilent) {
  FileReport r = LintSource("src/bullshark/bullshark.cpp", R"(
bool Supported(uint32_t votes, const Committee& c) {
  return votes >= c.validity_threshold() && votes >= Committee::ValidityThresholdFor(c.size());
}
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 0);
}

TEST(QuorumArithRule, OutOfScopePathsAndTheBlessedHomeAreSilent) {
  const char* body = "uint32_t q = 2 * f + 1; uint32_t m = n / 3;\n";
  EXPECT_EQ(CountRule(LintSource("src/net/latency.cpp", body), kRuleQuorumArith), 0);
  EXPECT_EQ(CountRule(LintSource("src/types/committee.h", body), kRuleQuorumArith), 0);
}

// ---------------------------------------------------------- R4 codec-mismatch

TEST(CodecMismatchRule, FlagsFieldCountDrift) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Pair {
  uint32_t a = 0;
  uint64_t b = 0;
  void Encode(Writer& w) const {
    w.PutU32(a);
    w.PutU64(b);
  }
  static Pair Decode(Reader& r) {
    Pair p;
    p.a = r.GetU32();
    return p;
  }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

TEST(CodecMismatchRule, FlagsFieldKindDrift) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Rec {
  void Encode(Writer& w) const { w.PutU32(x); w.PutU64(y); }
  static Rec Decode(Reader& r) {
    Rec out;
    out.x = r.GetU64();
    out.y = r.GetU32();
    return out;
  }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

TEST(CodecMismatchRule, MatchingPairAndOneSidedCodecAreSilent) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Ok {
  void Encode(Writer& w) const {
    w.PutU32(a);
    w.PutString(name);
    inner.Encode(w);
  }
  static Ok Decode(Reader& r) {
    Ok o;
    o.a = r.GetU32();
    o.name = r.GetString();
    o.inner = Inner::Decode(r);
    return o;
  }
};
struct Preimage {
  void Encode(Writer& w) const { w.PutU64(seq); }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 0);
}

TEST(CodecMismatchRule, OutOfClassDefinitionsPairByQualifiedName) {
  FileReport r = LintSource("src/types/wire.cpp", R"(
void Vote::Encode(Writer& w) const {
  w.PutU64(round);
  w.PutU32(voter);
}
Vote Vote::Decode(Reader& r) {
  Vote v;
  v.round = r.GetU64();
  return v;
}
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

// ------------------------------------------------------------- R5 pointer-key

TEST(PointerKeyRule, FlagsPointerKeyedContainers) {
  FileReport r = LintSource("src/narwhal/dag.h", R"(
std::map<Node*, uint64_t> depth_;
std::unordered_set<const Block*> seen_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 2);
}

TEST(PointerKeyRule, PointerValuesAreFine) {
  FileReport r = LintSource("src/narwhal/dag.h", R"(
std::map<uint32_t, Node*> by_id_;
std::unordered_map<Digest, const Block*, DigestHash> blocks_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 0);
}

// ------------------------------------------------- engine fast-path patterns
// The scheduler/network fast path replaced hashed containers with flat slot
// pools and dense vectors. These shapes must stay silent — the rules target
// unordered iteration and pointer keys, not pooling — while the shape the
// pool replaced (liveness keyed on an object address) must keep firing.

TEST(EngineFastPath, FlatSlotPoolIterationThatSerializesIsSilent) {
  // A vector has deterministic iteration order, so a serializing loop over a
  // slot pool (or the network's dense machine table) is fine where the same
  // loop over an unordered_map would fire R2.
  FileReport r = LintSource("src/net/network.cpp", R"(
std::vector<MachineState> machines_;
std::vector<uint32_t> free_slots_;
void Network::DumpStats(Writer& w) {
  for (const MachineState& m : machines_) {
    w.PutU64(m.bytes_sent);
  }
}
)");
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(EngineFastPath, InlineCallbackSlotWithOpsTableIsSilent) {
  // The scheduler's zero-alloc callback slot: placement new into an inline
  // buffer, type-erased through a static ops table. `const Ops*` is a
  // pointer member (not a pointer key) and must not trip R5.
  FileReport r = LintSource("src/net/timer_queue.h", R"(
struct Ops {
  void (*invoke)(void* body);
  void (*destroy)(void* body);
};
struct Slot {
  uint64_t cur_key = 0;
  const Ops* ops = nullptr;
  alignas(std::max_align_t) unsigned char buf[64];
};
template <typename F>
uint64_t Arm(F&& fn) {
  Slot& slot = SlotAt(AllocSlot());
  ::new (static_cast<void*>(slot.buf)) F(std::forward<F>(fn));
  slot.ops = &FnOps<F>::kFull;
  return slot.cur_key;
}
)");
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(EngineFastPath, PointerKeyedLivenessSetStillFires) {
  // Keying timer liveness on the callback's address is exactly what the
  // generation-tagged slot pool replaced; R5 keeps it from sneaking back.
  FileReport r = LintSource("src/net/timer_queue.h", R"(
std::unordered_set<Callback*> live_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 1);
}

// --------------------------------------------------------- allow annotations

TEST(AllowAnnotation, SuppressesOnLineAboveAndCapturesReason) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith): fixture exception
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_EQ(r.findings[0].allow_reason, "fixture exception");
  EXPECT_EQ(Unsuppressed(r), 0);
  EXPECT_TRUE(r.unused_allows.empty());
}

TEST(AllowAnnotation, SuppressesTrailingSameLineComment) {
  FileReport r = LintSource("src/tusk/commit.cpp",
                            "uint32_t q = 2 * f + 1;  // ntlint:allow(quorum-arith): inline\n");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_TRUE(r.findings[0].suppressed);
}

TEST(AllowAnnotation, MultiRuleListSuppressesEachNamedRule) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith,nondet): mixed-violation line
uint32_t q = 2 * f + 1 + rand();
)");
  EXPECT_GE(static_cast<int>(r.findings.size()), 2);
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(AllowAnnotation, WrongRuleDoesNotSuppressAndIsReportedStale) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(nondet): names the wrong rule
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_EQ(static_cast<int>(r.unused_allows.size()), 1);
}

TEST(AllowAnnotation, UnknownRuleNameIsIgnoredEntirely) {
  // Doc text that merely quotes the syntax must not register as a live (or
  // stale) suppression.
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// The syntax is ntlint:allow(<rule>): <reason>.
// ntlint:allow(bogus-rule): not a real rule
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_TRUE(r.unused_allows.empty());
}

TEST(AllowAnnotation, DistantAnnotationDoesNotLeak) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith): too far away
uint32_t unrelated = 0;
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_EQ(static_cast<int>(r.unused_allows.size()), 1);
}

// ------------------------------------------------------------- the real tree

#ifdef NT_SOURCE_DIR

TEST(RealTree, SrcIsCleanOfUnsuppressedFindings) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src"});
  EXPECT_EQ(s.unsuppressed(), 0) << FormatSummary(s, /*verbose=*/true);
  // Stale annotations are not fatal for the CLI, but the tree must not
  // accumulate them either.
  for (const FileReport& f : s.files) {
    EXPECT_TRUE(f.unused_allows.empty()) << f.path << " has stale allow annotations";
  }
}

// The seeded mutations (src/common/seeded_bugs.h) deliberately implement the
// "2f instead of 2f+1" bug class R3 exists to catch. Self-check: the linter
// does see those sites, and they are suppressed by explicit annotations —
// not invisible to the rule.
TEST(RealTree, SeededQuorumBugsAreExplicitlyAnnotated) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src"});
  int seeded_sites = 0;
  for (const FileReport& f : s.files) {
    const bool seeded_file = f.path.find("src/types/types.cpp") != std::string::npos ||
                             f.path.find("src/narwhal/primary.cpp") != std::string::npos;
    for (const Finding& fnd : f.findings) {
      if (seeded_file && fnd.rule == kRuleQuorumArith) {
        EXPECT_TRUE(fnd.suppressed) << f.path << ":" << fnd.line;
        EXPECT_FALSE(fnd.allow_reason.empty()) << f.path << ":" << fnd.line;
        ++seeded_sites;
      }
    }
  }
  EXPECT_EQ(seeded_sites, 2);  // CertStructureOk and CertVoteThreshold.
}

// The DST harness (src/check/) computes fault budgets from committee sizes;
// after routing through Committee::MaxFaultyFor it must lint clean with no
// suppressions at all.
TEST(RealTree, CheckHarnessNeedsNoSuppressions) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src/check",
                         std::string(NT_SOURCE_DIR) + "/src/common/seeded_bugs.cpp"});
  EXPECT_EQ(s.total, 0) << FormatSummary(s, /*verbose=*/true);
}

#endif  // NT_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace nt
