// ntlint fixture corpus: every rule R1–R9 is proven to fire on positive
// snippets and stay silent on negatives, the allow-annotation machinery is
// exercised end to end, and the real tree is linted so the suite fails the
// moment a violation (or a stale suppression) lands in src/.
//
// R1–R5 and R8 are per-file (LintSource); R6/R7/R9 need the whole-repo
// semantic model, so their fixtures are multi-unit repos fed through
// LintRepoUnits. The positive shapes reproduce the bug classes this repo
// has actually shipped: the PR 6 double-vote guard (R6), crash–restart
// amnesia (R7), and the PR 2 RetryBroadcast stale-attempt storm (R8).
#include "src/lint/lint.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/lint/model.h"

namespace nt {
namespace lint {
namespace {

int CountRule(const FileReport& r, const char* rule, bool include_suppressed = true) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (f.rule == rule && (include_suppressed || !f.suppressed)) {
      ++n;
    }
  }
  return n;
}

int Unsuppressed(const FileReport& r) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (!f.suppressed) {
      ++n;
    }
  }
  return n;
}

// ------------------------------------------------------------------ R1 nondet

TEST(NondetRule, FlagsBannedIncludeAndClockChain) {
  FileReport r = LintSource("src/narwhal/worker.cpp", R"(
#include <chrono>
void Tick() {
  auto t = std::chrono::steady_clock::now();
}
)");
  EXPECT_GE(CountRule(r, kRuleNondet), 2);  // The include and the chain.
}

TEST(NondetRule, FlagsLibcEntropyAndEnvironment) {
  FileReport r = LintSource("src/tusk/tusk.cpp", R"(
int Jitter() { return rand() % 7; }
const char* Home() { return getenv("HOME"); }
long Now() { return time(nullptr); }
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 3);
}

TEST(NondetRule, FlagsMutexDeclarationOncePerLock) {
  FileReport r = LintSource("src/types/cache.h", R"(
class C {
  std::mutex mu_;
  void F() { std::lock_guard<std::mutex> lock(mu_); }
  void G() { std::lock_guard<std::mutex> lock(mu_); }
};
)");
  // One finding at the declaration; the lock_guard type mentions are not
  // declarations (next token is not an identifier) and stay silent.
  EXPECT_EQ(CountRule(r, kRuleNondet), 1);
  EXPECT_EQ(r.findings[0].line, 3);
}

TEST(NondetRule, SimulatorAndBenchAreExempt) {
  const char* body = R"(
#include <chrono>
uint64_t WallNow() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
int Entropy() { return rand(); }
)";
  EXPECT_EQ(CountRule(LintSource("src/sim/wallclock.cpp", body), kRuleNondet), 0);
  EXPECT_EQ(CountRule(LintSource("bench/driver.cpp", body), kRuleNondet), 0);
}

TEST(NondetRule, TimeWithRealArgumentIsNotTheWallClockPattern) {
  FileReport r = LintSource("src/exec/state.cpp", R"(
void Stamp(Tx* tx, uint64_t logical) { tx->time(logical); }
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 0);
}

TEST(NondetRule, FlagsRawFileIoIncludingGlobalQualified) {
  FileReport r = LintSource("src/narwhal/primary.cpp", R"(
#include <unistd.h>
void Flush(FILE* f) { fsync(fileno(f)); }
void Repair(const char* p) { ::truncate(p, 0); }
)");
  // The include, fsync, fileno, and the ::-qualified truncate all fire.
  EXPECT_EQ(CountRule(r, kRuleNondet), 4);
}

TEST(NondetRule, AllowedFileIoInWalLayerIsSuppressed) {
  FileReport r = LintSource("src/store/store.cpp", R"(
void Sync(FILE* f) {
  // ntlint:allow(nondet): WAL durability barrier
  ::fsync(::fileno(f));
}
)");
  EXPECT_EQ(CountRule(r, kRuleNondet, /*include_suppressed=*/false), 0);
  EXPECT_EQ(r.unused_allows.size(), 0u);
}

TEST(NondetRule, MemberNamedTruncateIsNotFileIo) {
  FileReport r = LintSource("src/exec/state.cpp", R"(
void Trim(Log& log) { log.truncate(7); }
size_t truncate_count = 0;
)");
  EXPECT_EQ(CountRule(r, kRuleNondet), 0);
}

TEST(NondetRule, EntropyBasedLaneRoutingFiresAndPureHashRoutingIsSilent) {
  // Sharded-execution routing must be a pure function of the key bytes:
  // load-balancing lanes with process entropy diverges across validators.
  FileReport bad = LintSource("src/shard/router.cpp", R"(
uint32_t PickLane(uint32_t lanes) { return rand() % lanes; }
)");
  EXPECT_EQ(CountRule(bad, kRuleNondet), 1);
  FileReport good = LintSource("src/shard/router.cpp", R"(
uint32_t PickLane(std::string_view key, uint32_t lanes) {
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return static_cast<uint32_t>(h % lanes);
}
)");
  EXPECT_EQ(CountRule(good, kRuleNondet), 0);
}

// ---------------------------------------------------------- R2 unordered-iter

TEST(UnorderedIterRule, FlagsRangeForThatSerializes) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::unordered_map<uint32_t, Digest> pending_;
void Emit(Writer& w) {
  for (const auto& [id, d] : pending_) {
    w.PutU32(id);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, FlagsIteratorLoopThatSends) {
  FileReport r = LintSource("src/net/router.cpp", R"(
std::unordered_set<uint32_t> peers_;
void Flood(const Msg& m) {
  for (auto it = peers_.begin(); it != peers_.end(); ++it) {
    SendTo(*it, m);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, MemberDeclaredInCompanionHeaderIsSeen) {
  const std::string header = R"(
class Pool {
  std::unordered_map<uint64_t, Entry> entries_;
};
)";
  FileReport r = LintSourceWithCompanion("src/narwhal/pool.cpp", R"(
void Pool::Dump(Sha256& h) {
  for (const auto& [k, e] : entries_) {
    h.Update(k);
  }
}
)",
                                         &header);
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, PureReadBodyIsSilent) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::unordered_map<uint32_t, uint64_t> weights_;
uint64_t Max() {
  uint64_t best = 0;
  for (const auto& [id, w] : weights_) {
    best = std::max(best, w);
  }
  return best;
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 0);
}

TEST(UnorderedIterRule, FlagsPerLaneUnorderedBalancesThatFeedADigest) {
  // The sharded-execution shape: per-lane balance books. Backing a lane with
  // an unordered_map and folding it into the lane digest serializes in hash
  // order — replicas would compute different lane digests from equal state.
  // (The real src/exec lane uses std::map for exactly this reason.)
  FileReport r = LintSource("src/shard/lanes.cpp", R"(
std::vector<std::unordered_map<std::string, uint64_t>> lanes_;
void FoldLane(uint32_t lane, Sha256& h) {
  for (const auto& [account, balance] : lanes_[lane]) {
    h.Update(account);
    h.Update(balance);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, OrderedLaneSweepOverUnorderedPendingSetFires) {
  // Sweeping lanes by index is fine; draining each lane's unordered pending
  // set into the cross-shard apply order is the bug (boundary sequencing
  // must be identical on every validator).
  FileReport r = LintSource("src/shard/lanes.cpp", R"(
std::vector<std::unordered_set<uint64_t>> deferred_;
void ApplyBoundary(Writer& w) {
  for (size_t lane = 0; lane < deferred_.size(); ++lane) {
    for (auto it = deferred_[lane].begin(); it != deferred_[lane].end(); ++it) {
      w.PutU64(*it);
    }
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 1);
}

TEST(UnorderedIterRule, PerLaneOrderedBooksAreSilent) {
  // The honest shape: ordered per-lane books, outer sweep by lane index.
  FileReport r = LintSource("src/shard/lanes.cpp", R"(
std::vector<std::map<std::string, uint64_t>> lanes_;
void FoldAll(Sha256& h) {
  for (const auto& lane : lanes_) {
    for (const auto& [account, balance] : lane) {
      h.Update(account);
    }
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 0);
}

TEST(UnorderedIterRule, OrderedContainerIsSilent) {
  FileReport r = LintSource("src/narwhal/dag.cpp", R"(
std::map<uint32_t, Digest> pending_;
void Emit(Writer& w) {
  for (const auto& [id, d] : pending_) {
    w.PutU32(id);
  }
}
)");
  EXPECT_EQ(CountRule(r, kRuleUnorderedIter), 0);
}

// ------------------------------------------------------------ R3 quorum-arith

TEST(QuorumArithRule, FlagsLiteralThresholds) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
bool Quorate(uint32_t votes, uint32_t f) { return votes >= 2 * f + 1; }
bool OneHonest(uint32_t votes, const Committee& c) { return votes >= c.f() + 1; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 2);
}

TEST(QuorumArithRule, FlagsDivisionByThree) {
  FileReport r = LintSource("src/hotstuff/pacemaker.cpp", R"(
uint32_t Faulty(uint32_t n) { return (n - 1) / 3; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 1);
}

TEST(QuorumArithRule, CommitteeHelpersAreSilent) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
bool Quorate(uint32_t votes, const Committee& c) {
  return votes >= c.quorum_threshold() && votes >= Committee::ValidityThresholdFor(c.size());
}
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 0);
}

TEST(QuorumArithRule, BullsharkSupportVoteCountingIsInScope) {
  // The Bullshark commit rule counts support votes against f+1; hand-rolled
  // threshold arithmetic in src/bullshark/ must fire like everywhere else.
  FileReport r = LintSource("src/bullshark/bullshark.cpp", R"(
bool Supported(uint32_t votes, const Committee& c) { return votes >= c.f() + 1; }
uint32_t Faulty(uint32_t n) { return (n - 1) / 3; }
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 2);
}

TEST(QuorumArithRule, BullsharkRoutedSupportThresholdIsSilent) {
  FileReport r = LintSource("src/bullshark/bullshark.cpp", R"(
bool Supported(uint32_t votes, const Committee& c) {
  return votes >= c.validity_threshold() && votes >= Committee::ValidityThresholdFor(c.size());
}
)");
  EXPECT_EQ(CountRule(r, kRuleQuorumArith), 0);
}

TEST(QuorumArithRule, OutOfScopePathsAndTheBlessedHomeAreSilent) {
  const char* body = "uint32_t q = 2 * f + 1; uint32_t m = n / 3;\n";
  EXPECT_EQ(CountRule(LintSource("src/net/latency.cpp", body), kRuleQuorumArith), 0);
  EXPECT_EQ(CountRule(LintSource("src/types/committee.h", body), kRuleQuorumArith), 0);
}

// ---------------------------------------------------------- R4 codec-mismatch

TEST(CodecMismatchRule, FlagsFieldCountDrift) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Pair {
  uint32_t a = 0;
  uint64_t b = 0;
  void Encode(Writer& w) const {
    w.PutU32(a);
    w.PutU64(b);
  }
  static Pair Decode(Reader& r) {
    Pair p;
    p.a = r.GetU32();
    return p;
  }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

TEST(CodecMismatchRule, FlagsFieldKindDrift) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Rec {
  void Encode(Writer& w) const { w.PutU32(x); w.PutU64(y); }
  static Rec Decode(Reader& r) {
    Rec out;
    out.x = r.GetU64();
    out.y = r.GetU32();
    return out;
  }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

TEST(CodecMismatchRule, MatchingPairAndOneSidedCodecAreSilent) {
  FileReport r = LintSource("src/types/wire.h", R"(
struct Ok {
  void Encode(Writer& w) const {
    w.PutU32(a);
    w.PutString(name);
    inner.Encode(w);
  }
  static Ok Decode(Reader& r) {
    Ok o;
    o.a = r.GetU32();
    o.name = r.GetString();
    o.inner = Inner::Decode(r);
    return o;
  }
};
struct Preimage {
  void Encode(Writer& w) const { w.PutU64(seq); }
};
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 0);
}

TEST(CodecMismatchRule, OutOfClassDefinitionsPairByQualifiedName) {
  FileReport r = LintSource("src/types/wire.cpp", R"(
void Vote::Encode(Writer& w) const {
  w.PutU64(round);
  w.PutU32(voter);
}
Vote Vote::Decode(Reader& r) {
  Vote v;
  v.round = r.GetU64();
  return v;
}
)");
  EXPECT_EQ(CountRule(r, kRuleCodecMismatch), 1);
}

// ------------------------------------------------------------- R5 pointer-key

TEST(PointerKeyRule, FlagsPointerKeyedContainers) {
  FileReport r = LintSource("src/narwhal/dag.h", R"(
std::map<Node*, uint64_t> depth_;
std::unordered_set<const Block*> seen_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 2);
}

TEST(PointerKeyRule, PointerValuesAreFine) {
  FileReport r = LintSource("src/narwhal/dag.h", R"(
std::map<uint32_t, Node*> by_id_;
std::unordered_map<Digest, const Block*, DigestHash> blocks_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 0);
}

// ------------------------------------------------- engine fast-path patterns
// The scheduler/network fast path replaced hashed containers with flat slot
// pools and dense vectors. These shapes must stay silent — the rules target
// unordered iteration and pointer keys, not pooling — while the shape the
// pool replaced (liveness keyed on an object address) must keep firing.

TEST(EngineFastPath, FlatSlotPoolIterationThatSerializesIsSilent) {
  // A vector has deterministic iteration order, so a serializing loop over a
  // slot pool (or the network's dense machine table) is fine where the same
  // loop over an unordered_map would fire R2.
  FileReport r = LintSource("src/net/network.cpp", R"(
std::vector<MachineState> machines_;
std::vector<uint32_t> free_slots_;
void Network::DumpStats(Writer& w) {
  for (const MachineState& m : machines_) {
    w.PutU64(m.bytes_sent);
  }
}
)");
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(EngineFastPath, InlineCallbackSlotWithOpsTableIsSilent) {
  // The scheduler's zero-alloc callback slot: placement new into an inline
  // buffer, type-erased through a static ops table. `const Ops*` is a
  // pointer member (not a pointer key) and must not trip R5.
  FileReport r = LintSource("src/net/timer_queue.h", R"(
struct Ops {
  void (*invoke)(void* body);
  void (*destroy)(void* body);
};
struct Slot {
  uint64_t cur_key = 0;
  const Ops* ops = nullptr;
  alignas(std::max_align_t) unsigned char buf[64];
};
template <typename F>
uint64_t Arm(F&& fn) {
  Slot& slot = SlotAt(AllocSlot());
  ::new (static_cast<void*>(slot.buf)) F(std::forward<F>(fn));
  slot.ops = &FnOps<F>::kFull;
  return slot.cur_key;
}
)");
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(EngineFastPath, PointerKeyedLivenessSetStillFires) {
  // Keying timer liveness on the callback's address is exactly what the
  // generation-tagged slot pool replaced; R5 keeps it from sneaking back.
  FileReport r = LintSource("src/net/timer_queue.h", R"(
std::unordered_set<Callback*> live_;
)");
  EXPECT_EQ(CountRule(r, kRulePointerKey), 1);
}

// Counts findings for one rule across a whole-repo Summary.
int CountRuleIn(const Summary& s, const char* rule, bool include_suppressed = true) {
  int n = 0;
  for (const FileReport& f : s.files) {
    for (const Finding& fnd : f.findings) {
      if (fnd.rule == rule && (include_suppressed || !fnd.suppressed)) {
        ++n;
      }
    }
  }
  return n;
}

const Finding* FirstRuleIn(const Summary& s, const char* rule) {
  for (const FileReport& f : s.files) {
    for (const Finding& fnd : f.findings) {
      if (fnd.rule == rule) {
        return &fnd;
      }
    }
  }
  return nullptr;
}

// -------------------------------------------------------- R6 wal-before-send

TEST(WalBeforeSendRule, CrossFilePersistHelperWithoutSyncFires) {
  // The PR 6 bug shape: the vote ledger append lives in another file and
  // forgets the Sync barrier, so the signature leaves before the WAL is
  // durable. A per-file rule cannot see this; the model inlines the helper.
  Summary s = LintRepoUnits(
      {{"src/hotstuff/node.cpp", R"(
void Node::CastVote(const Digest& d) {
  PersistVote();
  Signature sig = signer_->Sign(d);
  network_->Send(net_id_, peer_, MakeVote(d, sig));
}
)"},
       {"src/hotstuff/persist.cpp", R"(
void Node::PersistVote() {
  store_->Put(VoteKey(), EncodeLedger(last_voted_));
}
)"}},
      nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 1);
  const Finding* f = FirstRuleIn(s, kRuleWalBeforeSend);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->path.find("node.cpp"), std::string::npos);
  EXPECT_EQ(f->line, 5);  // The Send, not the helper.
}

TEST(WalBeforeSendRule, SignThenBroadcastWithNoBarrierFires) {
  Summary s = LintRepoUnits({{"src/narwhal/node.cpp", R"(
void Node::OnTimeout(uint64_t view) {
  Signature sig = signer_->Sign(Preimage(view));
  Broadcast(MakeTimeout(view, sig));
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 1);
}

TEST(WalBeforeSendRule, PersistHelperWithSyncIsSilent) {
  Summary s = LintRepoUnits(
      {{"src/hotstuff/node.cpp", R"(
void Node::CastVote(const Digest& d) {
  PersistVote();
  Signature sig = signer_->Sign(d);
  network_->Send(net_id_, peer_, MakeVote(d, sig));
}
)"},
       {"src/hotstuff/persist.cpp", R"(
void Node::PersistVote() {
  store_->Put(VoteKey(), EncodeLedger(last_voted_));
  store_->Sync();
}
)"}},
      nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 0);
}

TEST(WalBeforeSendRule, DispatchBranchSendDoesNotInheritHandlerSignature) {
  // OnMessage-style dispatchers: the reply Send and the signing handler live
  // in mutually exclusive branches. Inlined effects must not smear them into
  // one false sign-then-send sequence.
  Summary s = LintRepoUnits({{"src/hotstuff/node.cpp", R"(
void Node::OnMessage(uint32_t from, const MessagePtr& m) {
  if (auto t = std::dynamic_pointer_cast<const MsgTimeout>(m)) {
    HandleTimeout(*t);
    return;
  }
  network_->Send(net_id_, from, MakeReply());
}
void Node::HandleTimeout(const MsgTimeout& t) {
  Signature sig = signer_->Sign(p_);
  Absorb(sig);
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 0);
}

TEST(WalBeforeSendRule, DeepCallerOfCleanFunctionDoesNotReFlag) {
  // A two-deep caller chain must not re-report a callee whose own path is
  // correct: the depth cutoff would otherwise drop the callee's persist
  // helper and flag its send line from every wrapper.
  Summary s = LintRepoUnits({{"src/hotstuff/node.cpp", R"(
void Node::EnterRound() { SchedulePropose(); }
void Node::SchedulePropose() { Propose(); }
void Node::Propose() {
  store_->Sync();
  Signature sig = signer_->Sign(d_);
  Broadcast(MakeProposal(sig));
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 0);
}

TEST(WalBeforeSendRule, OutsideProtocolDirsIsSilent) {
  Summary s = LintRepoUnits({{"src/exec/node.cpp", R"(
void Node::Emit(const Digest& d) {
  Signature sig = signer_->Sign(d);
  Broadcast(Make(sig));
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 0);
}

TEST(WalBeforeSendRule, AllowAnnotationSuppresses) {
  Summary s = LintRepoUnits({{"src/narwhal/node.cpp", R"(
void Node::OnTimeout(uint64_t view) {
  Signature sig = signer_->Sign(Preimage(view));
  // ntlint:allow(wal-before-send): deterministic re-sign of the same preimage
  Broadcast(MakeTimeout(view, sig));
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend), 1);
  EXPECT_EQ(CountRuleIn(s, kRuleWalBeforeSend, /*include_suppressed=*/false), 0);
  EXPECT_EQ(s.unsuppressed(), 0);
}

// --------------------------------------------------------- R7 recover-parity

TEST(RecoverParityRule, CrossFileOpDriftFires) {
  // Crash–restart amnesia: Persist writes view + digest, Recover reads only
  // the view — the digest silently never comes back after a restart.
  Summary s = LintRepoUnits(
      {{"src/hotstuff/persist.cpp", R"(
void Node::PersistVote() {
  Writer w;
  w.PutU8('W');
  w.PutU64(last_voted_view_);
  w.PutRaw(last_voted_digest_);
  store_->Put(VoteKey(), w.Take());
  store_->Sync();
}
)"},
       {"src/hotstuff/recover.cpp", R"(
void Node::Recover(const Bytes& value) {
  Reader r(value.data() + 1, value.size() - 1);
  switch (value[0]) {
    case 'W': {
      last_voted_view_ = r.GetU64();
      break;
    }
  }
}
)"}},
      nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 1);
  const Finding* f = FirstRuleIn(s, kRuleRecoverParity);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->path.find("recover.cpp"), std::string::npos);
}

TEST(RecoverParityRule, PersistedTagWithNoRecoverArmFires) {
  Summary s = LintRepoUnits({{"src/narwhal/persist.cpp", R"(
void Node::PersistHeader(const Header& h) {
  Writer w;
  w.PutU8('H');
  w.PutU64(h.round);
  store_->Put(HeaderKey(h), w.Take());
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 1);
  const Finding* f = FirstRuleIn(s, kRuleRecoverParity);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->path.find("persist.cpp"), std::string::npos);
}

TEST(RecoverParityRule, FieldKindDriftFires) {
  Summary s = LintRepoUnits({{"src/tusk/wal.cpp", R"(
void Node::PersistRound() {
  Writer w;
  w.PutU8('R');
  w.PutU32(round_);
  store_->Put(RoundKey(), w.Take());
}
void Node::Recover(const Bytes& value) {
  Reader r(value.data() + 1, value.size() - 1);
  switch (value[0]) {
    case 'R':
      round_ = r.GetU64();
      break;
  }
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 1);
}

TEST(RecoverParityRule, DeadRecoverArmFires) {
  Summary s = LintRepoUnits({{"src/tusk/wal.cpp", R"(
void Node::PersistRound() {
  Writer w;
  w.PutU8('R');
  w.PutU64(round_);
  store_->Put(RoundKey(), w.Take());
}
void Node::Recover(const Bytes& value) {
  Reader r(value.data() + 1, value.size() - 1);
  switch (value[0]) {
    case 'R':
      round_ = r.GetU64();
      break;
    case 'Z':
      legacy_ = r.GetU64();
      break;
  }
}
)"}},
                            nullptr);
  // 'R' matches; 'Z' recovers a record nothing ever persists.
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 1);
}

TEST(RecoverParityRule, MatchingPairIsSilent) {
  Summary s = LintRepoUnits(
      {{"src/hotstuff/persist.cpp", R"(
void Node::PersistVote() {
  Writer w;
  w.PutU8('W');
  w.PutU64(last_voted_view_);
  w.PutRaw(last_voted_digest_);
  store_->Put(VoteKey(), w.Take());
  store_->Sync();
}
)"},
       {"src/hotstuff/recover.cpp", R"(
void Node::Recover(const Bytes& value) {
  Reader r(value.data() + 1, value.size() - 1);
  switch (value[0]) {
    case 'W': {
      last_voted_view_ = r.GetU64();
      last_voted_digest_ = r.GetArray<32>();
      break;
    }
  }
}
)"}},
      nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 0);
}

TEST(RecoverParityRule, GuardFormRecoverMatches) {
  Summary s = LintRepoUnits({{"src/narwhal/wal.cpp", R"(
void Node::PersistBatch(const Batch& b) {
  Writer w;
  w.PutU8('B');
  w.PutU64(b.seq);
  store_->Put(BatchKey(b), w.Take());
}
void Node::Recover(const Bytes& value) {
  if (value.empty()) {
    return;
  }
  if (value[0] == 'B') {
    Reader r(value.data() + 1, value.size() - 1);
    seq_ = r.GetU64();
  }
}
)"}},
                            nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRecoverParity), 0);
}

// -------------------------------------------------------- R8 deferred-capture

TEST(DeferredCaptureRule, NamedReferenceCaptureFires) {
  FileReport r = LintSource("src/check/driver.cpp", R"(
void Run(Scheduler& scheduler, Acc& acc) {
  scheduler.ScheduleAt(Millis(10), [&acc] { acc.Add(1); });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 1);
  EXPECT_NE(r.findings[0].message.find("'acc'"), std::string::npos);
}

TEST(DeferredCaptureRule, DefaultReferenceCaptureFires) {
  FileReport r = LintSource("src/narwhal/worker.cpp", R"(
void Worker::Arm() {
  network_->scheduler()->ScheduleAfter(delay_, [&] { Tick(); });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 1);
}

TEST(DeferredCaptureRule, StaleLiteralSelfRescheduleFires) {
  // The PR 2 RetryBroadcast storm: the retry re-arms itself with attempt 0
  // instead of the captured counter, so the backoff never grows.
  FileReport r = LintSource("src/narwhal/primary.cpp", R"(
void Primary::RetryBroadcast(Digest d, int attempt) {
  network_->scheduler()->ScheduleAfter(Backoff(attempt), [this, alive = alive_, d] {
    if (*alive) {
      RetryBroadcast(d, 0);
    }
  });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 1);
}

TEST(DeferredCaptureRule, ValueCapturedRetryIsSilent) {
  // The worker's RetryBatch shape: everything crosses the deferral by value.
  FileReport r = LintSource("src/narwhal/worker.cpp", R"(
void Worker::RetryBatch(const Digest& digest) {
  network_->scheduler()->ScheduleAfter(delay_, [this, alive = alive_, digest] {
    if (*alive) {
      RetryBatch(digest);
    }
  });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 0);
}

TEST(DeferredCaptureRule, IncrementedAttemptIsSilent) {
  FileReport r = LintSource("src/narwhal/worker.cpp", R"(
void Worker::RetryFetch(Digest d, int attempt) {
  network_->scheduler()->ScheduleAfter(Backoff(attempt), [this, alive = alive_, d, attempt] {
    if (*alive) {
      RetryFetch(d, attempt + 1);
    }
  });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 0);
}

TEST(DeferredCaptureRule, MemberStateRescheduleIsSilent) {
  // The HotStuff RequestBlock shape: rotation state lives in members reached
  // through the captured `this` — members are the source of truth, there is
  // no stale copy to flag.
  FileReport r = LintSource("src/hotstuff/hotstuff.cpp", R"(
void HotStuff::RequestBlock(const Digest& digest, uint32_t peer) {
  network_->scheduler()->ScheduleAfter(delay_, [this, alive = alive_, digest] {
    if (*alive) {
      RequestBlock(digest, peers_[(id_ + 1 + fetch_rotation_++) % committee_.size()]);
    }
  });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 0);
}

TEST(DeferredCaptureRule, AllowAnnotationSuppresses) {
  FileReport r = LintSource("src/check/driver.cpp", R"(
void Run(Scheduler& scheduler, Acc& acc) {
  // ntlint:allow(deferred-capture): acc outlives the drained scheduler
  scheduler.ScheduleAt(Millis(10), [&acc] { acc.Add(1); });
}
)");
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture), 1);
  EXPECT_EQ(CountRule(r, kRuleDeferredCapture, /*include_suppressed=*/false), 0);
}

// ----------------------------------------------------- R9 registry-exhaustive

// A fully wired three-unit fixture repo; the positive tests below each break
// one leg of it.
std::vector<SourceUnit> WiredRegistry() {
  return {
      {"src/hotstuff/messages.h", R"(
enum class MessageTypeId : uint8_t {
  kPing = 1,
  kPong = 2,
  kCount,
};
struct MsgPing : Message {
  BatchInfo info;
  MessageTypeId TypeId() const override { return MessageTypeId::kPing; }
};
struct MsgPong : Message {
  MessageTypeId TypeId() const override { return MessageTypeId::kPong; }
};
)"},
      {"src/hotstuff/node.cpp", R"(
void Node::OnMessage(const MessagePtr& m) {
  if (auto p = std::dynamic_pointer_cast<const MsgPing>(m)) {
    HandlePing(*p);
    return;
  }
  if (auto p = std::dynamic_pointer_cast<const MsgPong>(m)) {
    HandlePong(*p);
    return;
  }
}
)"},
      {"src/types/info.cpp", R"(
void BatchInfo::Encode(Writer& w) const {
  w.PutU64(seq);
}
BatchInfo BatchInfo::Decode(Reader& r) {
  BatchInfo b;
  b.seq = r.GetU64();
  return b;
}
)"}};
}

TEST(RegistryExhaustiveRule, FullyWiredRegistryIsSilent) {
  Summary s = LintRepoUnits(WiredRegistry(), nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRegistryExhaustive), 0);
}

TEST(RegistryExhaustiveRule, EnumeratorWithoutRegistrationFires) {
  std::vector<SourceUnit> units = WiredRegistry();
  units[0].content = R"(
enum class MessageTypeId : uint8_t {
  kPing = 1,
  kPong = 2,
  kOrphan = 3,
  kCount,
};
struct MsgPing : Message {
  BatchInfo info;
  MessageTypeId TypeId() const override { return MessageTypeId::kPing; }
};
struct MsgPong : Message {
  MessageTypeId TypeId() const override { return MessageTypeId::kPong; }
};
)";
  Summary s = LintRepoUnits(units, nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRegistryExhaustive), 1);
  const Finding* f = FirstRuleIn(s, kRuleRegistryExhaustive);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("kOrphan"), std::string::npos);
}

TEST(RegistryExhaustiveRule, RegisteredStructNeverDispatchedFires) {
  std::vector<SourceUnit> units = WiredRegistry();
  units[1].content = R"(
void Node::OnMessage(const MessagePtr& m) {
  if (auto p = std::dynamic_pointer_cast<const MsgPing>(m)) {
    HandlePing(*p);
    return;
  }
}
)";
  Summary s = LintRepoUnits(units, nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRegistryExhaustive), 1);
  const Finding* f = FirstRuleIn(s, kRuleRegistryExhaustive);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("MsgPong"), std::string::npos);
}

TEST(RegistryExhaustiveRule, OneSidedPayloadCodecFires) {
  std::vector<SourceUnit> units = WiredRegistry();
  units[2].content = R"(
void BatchInfo::Encode(Writer& w) const {
  w.PutU64(seq);
}
)";
  Summary s = LintRepoUnits(units, nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRegistryExhaustive), 1);
  const Finding* f = FirstRuleIn(s, kRuleRegistryExhaustive);
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("BatchInfo"), std::string::npos);
}

TEST(RegistryExhaustiveRule, CorpusLegFiresOnlyWithCorpus) {
  // Without a corpus the leg is skipped (subset lints must not false-alarm);
  // with one, a two-sided payload codec must appear in it.
  const std::string without = "DecodeGarbage<Other>(garbage);\n";
  const std::string with = "DecodeGarbage<Other>(garbage);\nDecodeGarbage<BatchInfo>(garbage);\n";
  EXPECT_EQ(CountRuleIn(LintRepoUnits(WiredRegistry(), nullptr), kRuleRegistryExhaustive), 0);
  EXPECT_EQ(CountRuleIn(LintRepoUnits(WiredRegistry(), &without), kRuleRegistryExhaustive), 1);
  EXPECT_EQ(CountRuleIn(LintRepoUnits(WiredRegistry(), &with), kRuleRegistryExhaustive), 0);
}

TEST(RegistryExhaustiveRule, SubsetWithoutDispatchSiteStaysSilent) {
  // Linting only the header (no handler casts anywhere in the lint set) must
  // not claim every message is undispatched — the guard requires all three
  // registry legs to be present before the rule speaks.
  std::vector<SourceUnit> units = {WiredRegistry()[0]};
  Summary s = LintRepoUnits(units, nullptr);
  EXPECT_EQ(CountRuleIn(s, kRuleRegistryExhaustive), 0);
}

// ----------------------------------------- facts round-trip (--jobs pipeline)

TEST(FactsRoundTrip, SerializeParseSerializeIsIdentity) {
  const std::string content = R"(
void Node::OnTimeout(uint64_t view) {
  Signature sig = signer_->Sign(Preimage(view));
  // ntlint:allow(wal-before-send): reason with	tab and \ backslash
  Broadcast(MakeTimeout(view, sig));
}
void Node::PersistRound() {
  Writer w;
  w.PutU8('R');
  w.PutU64(round_);
  store_->Put(RoundKey(), w.Take());
}
uint32_t q = 2 * f + 1;
)";
  FileFacts f = ExtractFacts("src/narwhal/node.cpp", content, nullptr);
  const std::string text = SerializeFacts(f);
  std::vector<FileFacts> parsed;
  ASSERT_TRUE(ParseFacts(text, &parsed));
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(SerializeFacts(parsed[0]), text);
  EXPECT_EQ(parsed[0].path, f.path);
  EXPECT_EQ(parsed[0].functions.size(), f.functions.size());
  EXPECT_EQ(parsed[0].persists.size(), f.persists.size());
  EXPECT_EQ(parsed[0].allows.size(), f.allows.size());
}

TEST(FactsRoundTrip, MalformedInputIsRejected) {
  std::vector<FileFacts> parsed;
  EXPECT_FALSE(ParseFacts("X\tgarbage\n", &parsed));
  EXPECT_FALSE(ParseFacts("F\ttoo\tfew\n", &parsed));
}

// ------------------------------------------------------------- SARIF + baseline

TEST(SarifOutput, DeclaresRulesAndMarksSuppressions) {
  Summary s = LintRepoUnits({{"src/narwhal/node.cpp", R"(
void Node::OnTimeout(uint64_t view) {
  Signature sig = signer_->Sign(Preimage(view));
  Broadcast(MakeTimeout(view, sig));
}
// ntlint:allow(quorum-arith): fixture exception
uint32_t q = 2 * f + 1;
)"}},
                            nullptr);
  const std::string sarif = FormatSarif(s);
  EXPECT_NE(sarif.find("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
            std::string::npos);
  for (const std::string& rule : AllRuleNames()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + rule + "\""), std::string::npos) << rule;
  }
  // The live finding is an error; the suppressed one is a note with an
  // inSource suppression carrying the annotation's reason.
  EXPECT_NE(sarif.find("\"ruleId\": \"wal-before-send\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"note\""), std::string::npos);
  EXPECT_NE(sarif.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(sarif.find("fixture exception"), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/narwhal/node.cpp\""), std::string::npos);
}

TEST(Baseline, RoundTripGrandfathersExistingFindings) {
  const SourceUnit unit{"src/narwhal/node.cpp", R"(
void Node::OnTimeout(uint64_t view) {
  Signature sig = signer_->Sign(Preimage(view));
  Broadcast(MakeTimeout(view, sig));
}
)"};
  Summary s = LintRepoUnits({unit}, nullptr);
  ASSERT_EQ(s.actionable(), 1);
  const std::string baseline = WriteBaseline(s);

  Summary again = LintRepoUnits({unit}, nullptr);
  MarkBaseline(&again, ParseBaseline(baseline));
  EXPECT_EQ(again.actionable(), 0);
  EXPECT_EQ(again.baselined, 1);
  // Baselined-but-present findings stay visible in the verbose report.
  EXPECT_NE(FormatSummary(again, /*verbose=*/true).find("(baselined)"), std::string::npos);
}

TEST(Baseline, EntryIsConsumedAtMostOnce) {
  // Two sends off one signature: identical rule, path and message (the
  // message embeds the signature line), differing only in line number.
  const SourceUnit unit{"src/narwhal/node.cpp", R"(
void Node::Flood(const Digest& d) {
  Signature sig = signer_->Sign(d);
  network_->Send(net_id_, a_, Make(sig));
  network_->Send(net_id_, b_, Make(sig));
}
)"};
  Summary s = LintRepoUnits({unit}, nullptr);
  ASSERT_EQ(s.actionable(), 2);
  // A baseline holding only one of the two identical-message findings must
  // leave the other actionable. Skip WriteBaseline's '#' header lines and
  // keep the first entry.
  std::string baseline;
  std::istringstream lines(WriteBaseline(s));
  for (std::string line; std::getline(lines, line);) {
    if (!line.empty() && line[0] != '#') {
      baseline = line + "\n";
      break;
    }
  }
  ASSERT_FALSE(baseline.empty());
  Summary again = LintRepoUnits({unit}, nullptr);
  MarkBaseline(&again, ParseBaseline(baseline));
  EXPECT_EQ(again.baselined, 1);
  EXPECT_EQ(again.actionable(), 1);
}

TEST(StaleAllows, CountedPerRuleInSummary) {
  Summary s = LintRepoUnits({{"src/narwhal/node.cpp", R"(
// ntlint:allow(wal-before-send): nothing here signs
uint32_t benign = 0;
)"}},
                            nullptr);
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.stale_allows(), 1);
  EXPECT_EQ(s.stale_by_rule.at(kRuleWalBeforeSend), 1);
  const std::string text = FormatSummary(s, /*verbose=*/false);
  EXPECT_NE(text.find("stale by rule"), std::string::npos);
  EXPECT_NE(text.find("wal-before-send=1"), std::string::npos);
}

// --------------------------------------------------------- allow annotations

TEST(AllowAnnotation, SuppressesOnLineAboveAndCapturesReason) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith): fixture exception
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_TRUE(r.findings[0].suppressed);
  EXPECT_EQ(r.findings[0].allow_reason, "fixture exception");
  EXPECT_EQ(Unsuppressed(r), 0);
  EXPECT_TRUE(r.unused_allows.empty());
}

TEST(AllowAnnotation, SuppressesTrailingSameLineComment) {
  FileReport r = LintSource("src/tusk/commit.cpp",
                            "uint32_t q = 2 * f + 1;  // ntlint:allow(quorum-arith): inline\n");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_TRUE(r.findings[0].suppressed);
}

TEST(AllowAnnotation, MultiRuleListSuppressesEachNamedRule) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith,nondet): mixed-violation line
uint32_t q = 2 * f + 1 + rand();
)");
  EXPECT_GE(static_cast<int>(r.findings.size()), 2);
  EXPECT_EQ(Unsuppressed(r), 0);
}

TEST(AllowAnnotation, WrongRuleDoesNotSuppressAndIsReportedStale) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(nondet): names the wrong rule
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_EQ(static_cast<int>(r.unused_allows.size()), 1);
}

TEST(AllowAnnotation, UnknownRuleNameIsIgnoredEntirely) {
  // Doc text that merely quotes the syntax must not register as a live (or
  // stale) suppression.
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// The syntax is ntlint:allow(<rule>): <reason>.
// ntlint:allow(bogus-rule): not a real rule
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_TRUE(r.unused_allows.empty());
}

TEST(AllowAnnotation, DistantAnnotationDoesNotLeak) {
  FileReport r = LintSource("src/tusk/commit.cpp", R"(
// ntlint:allow(quorum-arith): too far away
uint32_t unrelated = 0;
uint32_t q = 2 * f + 1;
)");
  ASSERT_EQ(static_cast<int>(r.findings.size()), 1);
  EXPECT_FALSE(r.findings[0].suppressed);
  EXPECT_EQ(static_cast<int>(r.unused_allows.size()), 1);
}

// ------------------------------------------------------------- the real tree

#ifdef NT_SOURCE_DIR

TEST(RealTree, SrcIsCleanOfUnsuppressedFindings) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src"});
  EXPECT_EQ(s.unsuppressed(), 0) << FormatSummary(s, /*verbose=*/true);
  // Stale annotations are not fatal for the CLI, but the tree must not
  // accumulate them either.
  for (const FileReport& f : s.files) {
    EXPECT_TRUE(f.unused_allows.empty()) << f.path << " has stale allow annotations";
  }
}

// The seeded mutations (src/common/seeded_bugs.h) deliberately implement the
// "2f instead of 2f+1" bug class R3 exists to catch. Self-check: the linter
// does see those sites, and they are suppressed by explicit annotations —
// not invisible to the rule.
TEST(RealTree, SeededQuorumBugsAreExplicitlyAnnotated) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src"});
  int seeded_sites = 0;
  for (const FileReport& f : s.files) {
    const bool seeded_file = f.path.find("src/types/types.cpp") != std::string::npos ||
                             f.path.find("src/narwhal/primary.cpp") != std::string::npos;
    for (const Finding& fnd : f.findings) {
      if (seeded_file && fnd.rule == kRuleQuorumArith) {
        EXPECT_TRUE(fnd.suppressed) << f.path << ":" << fnd.line;
        EXPECT_FALSE(fnd.allow_reason.empty()) << f.path << ":" << fnd.line;
        ++seeded_sites;
      }
    }
  }
  EXPECT_EQ(seeded_sites, 2);  // CertStructureOk and CertVoteThreshold.
}

// The DST harness (src/check/) computes fault budgets from committee sizes;
// after routing through Committee::MaxFaultyFor it lints clean except for the
// three workload-injection lambdas, whose by-reference captures are safe (the
// same stack frame drains the scheduler) and carry explicit annotations.
TEST(RealTree, CheckHarnessSuppressionsAreExactlyTheWorkloadLambdas) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src/check",
                         std::string(NT_SOURCE_DIR) + "/src/common/seeded_bugs.cpp"});
  EXPECT_EQ(s.unsuppressed(), 0) << FormatSummary(s, /*verbose=*/true);
  int deferred = 0;
  for (const FileReport& f : s.files) {
    for (const Finding& fnd : f.findings) {
      EXPECT_EQ(fnd.rule, kRuleDeferredCapture) << f.path << ":" << fnd.line;
      EXPECT_TRUE(fnd.suppressed) << f.path << ":" << fnd.line;
      EXPECT_FALSE(fnd.allow_reason.empty()) << f.path << ":" << fnd.line;
      ++deferred;
    }
  }
  EXPECT_EQ(deferred, 3);
}

// Self-check mirroring the seeded-quorum test: R6 does see the two timeout
// signature paths in HotStuff (sign→send with no barrier), and both carry
// explicit annotations explaining why re-signing the same view preimage
// after a restart cannot equivocate.
TEST(RealTree, TimeoutSignaturePathsAreExplicitlyAnnotated) {
  Summary s = LintPaths({std::string(NT_SOURCE_DIR) + "/src"});
  int timeout_sites = 0;
  for (const FileReport& f : s.files) {
    for (const Finding& fnd : f.findings) {
      if (fnd.rule == kRuleWalBeforeSend) {
        EXPECT_NE(f.path.find("src/hotstuff/hotstuff.cpp"), std::string::npos)
            << f.path << ":" << fnd.line;
        EXPECT_TRUE(fnd.suppressed) << f.path << ":" << fnd.line;
        EXPECT_FALSE(fnd.allow_reason.empty()) << f.path << ":" << fnd.line;
        ++timeout_sites;
      }
    }
  }
  EXPECT_EQ(timeout_sites, 2);  // OnTimeout broadcast + pairwise timeout echo.
}

#endif  // NT_SOURCE_DIR

}  // namespace
}  // namespace lint
}  // namespace nt
