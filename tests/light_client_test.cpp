// Light-client inclusion proofs (§8.4): a committee-keys-only verifier
// accepts genuine proofs built from a live cluster and rejects every
// tampered link in the chain of custody.
#include "src/narwhal/light_client.h"

#include <gtest/gtest.h>

#include "src/runtime/cluster.h"

namespace nt {
namespace {

struct LightClientFixture : ::testing::Test {
  LightClientFixture() {
    ClusterConfig config;
    config.system = SystemKind::kTusk;
    config.num_validators = 4;
    config.seed = 66;
    cluster = std::make_unique<Cluster>(config);
    cluster->Start();
    tx = Bytes{0xde, 0xad, 0xbe, 0xef};
    cluster->worker(1, 0)->SubmitBlock({tx, {0x01}, {0x02}});
    cluster->scheduler().RunUntil(Seconds(5));
    verifier = MakeSigner(SignerKind::kFast, Sha256::Hash("light-client-throwaway"));
  }

  std::optional<InclusionProof> Build(ValidatorId v) {
    return BuildInclusionProof(*cluster->primary(v), *cluster->worker(v, 0), tx);
  }

  std::unique_ptr<Cluster> cluster;
  Bytes tx;
  std::unique_ptr<Signer> verifier;
};

TEST_F(LightClientFixture, GenuineProofVerifies) {
  auto proof = Build(1);
  ASSERT_TRUE(proof.has_value());
  LightClient client(cluster->committee(), verifier.get());
  auto proven = client.VerifyInclusion(*proof);
  ASSERT_TRUE(proven.has_value());
  EXPECT_EQ(*proven, tx);
  EXPECT_EQ(client.verified(), 1u);
}

TEST_F(LightClientFixture, ProofBuildableFromAnyValidator) {
  // Dissemination replicated the batch: every validator can serve a proof,
  // and an unrelated transaction yields none.
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_TRUE(Build(v).has_value()) << "validator " << v;
  }
  EXPECT_FALSE(
      BuildInclusionProof(*cluster->primary(0), *cluster->worker(0, 0), Bytes{0x99}).has_value());
}

TEST_F(LightClientFixture, ProofSurvivesSerialization) {
  auto proof = Build(1);
  ASSERT_TRUE(proof.has_value());
  Writer w;
  proof->Encode(w);
  EXPECT_EQ(w.size(), proof->WireSize());
  Reader r(w.bytes());
  auto decoded = InclusionProof::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(r.AtEnd());
  LightClient client(cluster->committee(), verifier.get());
  EXPECT_TRUE(client.VerifyInclusion(*decoded).has_value());
}

TEST_F(LightClientFixture, EveryTamperedLinkRejected) {
  auto proof = Build(1);
  ASSERT_TRUE(proof.has_value());
  LightClient client(cluster->committee(), verifier.get());

  {  // Forged certificate signature.
    InclusionProof bad = *proof;
    bad.certificate.votes[0].second[0] ^= 1;
    EXPECT_FALSE(client.VerifyInclusion(bad).has_value());
  }
  {  // Certificate/header round mismatch.
    InclusionProof bad = *proof;
    bad.certificate.round ^= 1;
    EXPECT_FALSE(client.VerifyInclusion(bad).has_value());
  }
  {  // Substituted header (content no longer hashes to the certified digest).
    InclusionProof bad = *proof;
    auto header = std::make_shared<BlockHeader>(*proof->header);
    header->round += 1;
    bad.header = header;
    EXPECT_FALSE(client.VerifyInclusion(bad).has_value());
  }
  {  // Substituted batch (not referenced by the header).
    InclusionProof bad = *proof;
    auto batch = std::make_shared<Batch>(*proof->batch);
    batch->txs[bad.tx_index][0] ^= 1;
    bad.batch = batch;
    EXPECT_FALSE(client.VerifyInclusion(bad).has_value());
  }
  {  // Out-of-range transaction index.
    InclusionProof bad = *proof;
    bad.tx_index = 1000;
    EXPECT_FALSE(client.VerifyInclusion(bad).has_value());
  }
  EXPECT_EQ(client.rejected(), 5u);
  // The untampered proof still verifies.
  EXPECT_TRUE(client.VerifyInclusion(*proof).has_value());
}

}  // namespace
}  // namespace nt
