// End-to-end cluster tests: all four systems commit transactions on the
// simulated WAN; crash faults and partitions are survived by the
// Narwhal-based systems.
#include <gtest/gtest.h>

#include "src/runtime/experiment.h"

namespace nt {
namespace {

ExperimentParams BaseParams(SystemKind system) {
  ExperimentParams params;
  params.system = system;
  params.nodes = 4;
  params.workers = 1;
  params.rate_tps = 2000;
  params.duration = Seconds(12);
  params.warmup = Seconds(4);
  params.seed = 7;
  return params;
}

TEST(IntegrationTest, TuskCommitsTransactions) {
  ExperimentResult result = RunExperiment(BaseParams(SystemKind::kTusk));
  EXPECT_GT(result.committed_txs, 1000u);
  EXPECT_GT(result.tps, 500.0);
  EXPECT_GT(result.sampled_txs, 10u);
  EXPECT_GT(result.avg_latency_s, 0.0);
  EXPECT_LT(result.avg_latency_s, 10.0);
}

TEST(IntegrationTest, NarwhalHsCommitsTransactions) {
  ExperimentResult result = RunExperiment(BaseParams(SystemKind::kNarwhalHs));
  EXPECT_GT(result.committed_txs, 1000u);
  EXPECT_GT(result.tps, 500.0);
  EXPECT_LT(result.avg_latency_s, 10.0);
}

TEST(IntegrationTest, BatchedHsCommitsTransactions) {
  ExperimentResult result = RunExperiment(BaseParams(SystemKind::kBatchedHs));
  EXPECT_GT(result.committed_txs, 1000u);
  EXPECT_LT(result.avg_latency_s, 10.0);
}

TEST(IntegrationTest, BaselineHsCommitsTransactions) {
  ExperimentParams params = BaseParams(SystemKind::kBaselineHs);
  params.rate_tps = 1000;
  ExperimentResult result = RunExperiment(params);
  EXPECT_GT(result.committed_txs, 500u);
  EXPECT_LT(result.avg_latency_s, 10.0);
}

TEST(IntegrationTest, DagRiderCommitsTransactions) {
  ExperimentResult result = RunExperiment(BaseParams(SystemKind::kDagRider));
  EXPECT_GT(result.committed_txs, 1000u);
}

TEST(IntegrationTest, TuskSurvivesOneCrash) {
  ExperimentParams params = BaseParams(SystemKind::kTusk);
  params.nodes = 4;
  params.faults = 1;
  ExperimentResult result = RunExperiment(params);
  EXPECT_GT(result.committed_txs, 500u);
}

TEST(IntegrationTest, NarwhalHsSurvivesOneCrash) {
  ExperimentParams params = BaseParams(SystemKind::kNarwhalHs);
  params.faults = 1;
  ExperimentResult result = RunExperiment(params);
  EXPECT_GT(result.committed_txs, 500u);
}

TEST(IntegrationTest, DeterministicForSameSeed) {
  ExperimentResult a = RunExperiment(BaseParams(SystemKind::kTusk));
  ExperimentResult b = RunExperiment(BaseParams(SystemKind::kTusk));
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
}

}  // namespace
}  // namespace nt
