// Focused behaviors of the Narwhal primary/worker machinery on live
// clusters: round pacing, batch quorum acknowledgment, header validity
// gating on batch availability, re-injection after GC, and scale-out wiring.
#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

ClusterConfig BaseConfig(uint64_t seed, uint32_t n = 4) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = n;
  config.seed = seed;
  return config;
}

TEST(NarwhalCoreTest, DagAdvancesWithoutLoad) {
  // The threshold clock keeps ticking on empty headers (max_header_delay).
  Cluster cluster(BaseConfig(1));
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_GT(cluster.primary(v)->round(), 10u) << "validator " << v;
    EXPECT_GT(cluster.primary(v)->certs_formed(), 10u);
  }
}

TEST(NarwhalCoreTest, RoundRateLimitedByHeaderDelay) {
  // Rounds advance no faster than the WAN RTT allows and no slower than
  // max_header_delay + RTT; 10 seconds of idle run lands in between.
  ClusterConfig config = BaseConfig(2);
  config.narwhal.max_header_delay = Millis(500);
  Cluster cluster(config);
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));
  Round r = cluster.primary(0)->round();
  EXPECT_GE(r, 8u);    // At least ~1 round per (500ms + RTT).
  EXPECT_LE(r, 25u);   // But paced by the delay, not free-running.
}

TEST(NarwhalCoreTest, WorkerSealsBySizeAndTimer) {
  ClusterConfig config = BaseConfig(3);
  config.narwhal.batch_size_bytes = 10 * 1024;
  config.narwhal.max_batch_delay = Millis(50);
  Cluster cluster(config);
  cluster.Start();

  // Size-triggered seal: 30KB submitted at once -> >= 2 batches quickly.
  Worker* worker = cluster.worker(0, 0);
  for (int i = 0; i < 30; ++i) {
    worker->SubmitTransaction(1024, std::nullopt);
  }
  cluster.scheduler().RunUntil(Millis(10));
  EXPECT_GE(worker->batches_sealed(), 3u);

  // Timer-triggered seal: a lone small transaction still ships.
  uint64_t before = worker->batches_sealed();
  worker->SubmitTransaction(100, std::nullopt);
  cluster.scheduler().RunUntil(Millis(10) + Millis(49));
  EXPECT_EQ(worker->batches_sealed(), before);  // Not yet.
  cluster.scheduler().RunUntil(Millis(10) + Millis(70));
  EXPECT_EQ(worker->batches_sealed(), before + 1);
}

TEST(NarwhalCoreTest, BatchesReachQuorumAndPrimary) {
  Cluster cluster(BaseConfig(4));
  cluster.Start();
  Worker* worker = cluster.worker(0, 0);
  worker->SubmitBlock({{1, 2, 3}});
  cluster.scheduler().RunUntil(Seconds(2));
  EXPECT_EQ(worker->batches_acked(), 1u);  // 2f+1 storage acks collected.
  // The batch digest made it into some certified header.
  EXPECT_TRUE(cluster.MempoolOf(0).IsWriteCertified(
      cluster.MempoolOf(0).Write({{9}})) == false);  // Fresh write: not yet.
}

TEST(NarwhalCoreTest, AllValidatorsStoreDisseminatedBatches) {
  Cluster cluster(BaseConfig(5));
  cluster.Start();
  Digest d = cluster.worker(2, 0)->SubmitBlock({{42}});
  cluster.scheduler().RunUntil(Seconds(2));
  for (ValidatorId v = 0; v < 4; ++v) {
    EXPECT_NE(cluster.worker(v, 0)->GetBatch(d), nullptr) << "validator " << v;
  }
}

TEST(NarwhalCoreTest, ReinjectionAfterGcForUncommittedBatches) {
  // A validator isolated long enough for its headers to fall behind the GC
  // horizon re-injects their batches (paper §3.3 censorship argument).
  ClusterConfig config = BaseConfig(6);
  config.narwhal.gc_depth = 5;
  Cluster cluster(config);
  cluster.Start();
  // Submit to validator 3 then cut it off before its header certifies.
  cluster.scheduler().RunUntil(Millis(100));
  cluster.worker(3, 0)->SubmitBlock({{7, 7, 7}});
  cluster.IsolateValidator(3, Millis(150), Seconds(20));
  cluster.scheduler().RunUntil(Seconds(40));

  // The isolated validator eventually rejoined; its batch was either
  // committed late or re-injected for a later round.
  Primary* p3 = cluster.primary(3);
  EXPECT_GT(p3->round(), 10u);  // It caught back up.
  // GC advanced cluster-wide.
  EXPECT_GT(cluster.primary(0)->dag().gc_round(), 0u);
}

TEST(NarwhalCoreTest, ScaleOutTopologyWiring) {
  ClusterConfig config = BaseConfig(7);
  config.workers_per_validator = 3;
  config.collocate = false;
  Cluster cluster(config);
  cluster.Start();
  // Distinct machines per worker when not collocated.
  const Topology& topo = cluster.topology();
  std::set<uint32_t> machines;
  for (uint32_t id : topo.worker_of[0]) {
    machines.insert(cluster.network().machine_of(id));
  }
  machines.insert(cluster.network().machine_of(topo.primary_of[0]));
  EXPECT_EQ(machines.size(), 4u);  // Primary + 3 workers.

  // Batches from different workers are all certified into headers.
  for (WorkerId w = 0; w < 3; ++w) {
    cluster.worker(1, w)->SubmitBlock({{static_cast<uint8_t>(w)}});
  }
  cluster.scheduler().RunUntil(Seconds(3));
  uint64_t included = 0;
  for (const auto& [digest, header] : cluster.primary(1)->dag().headers()) {
    if (header->author == 1) {
      included += header->batches.size();
    }
  }
  EXPECT_GE(included, 3u);
}

TEST(NarwhalCoreTest, CollocatedWorkersShareMachine) {
  ClusterConfig config = BaseConfig(8);
  config.workers_per_validator = 2;
  config.collocate = true;
  Cluster cluster(config);
  const Topology& topo = cluster.topology();
  EXPECT_EQ(cluster.network().machine_of(topo.worker_of[0][0]),
            cluster.network().machine_of(topo.primary_of[0]));
  EXPECT_EQ(cluster.network().machine_of(topo.worker_of[0][1]),
            cluster.network().machine_of(topo.primary_of[0]));
}

TEST(NarwhalCoreTest, PrimariesOnlyVoteOncePerAuthorRound) {
  // Drive a normal run and confirm no equivocating certificates ever form:
  // one certificate per (round, author) across the whole DAG.
  Cluster cluster(BaseConfig(9));
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(8));
  const Dag& dag = cluster.primary(0)->dag();
  for (Round r = dag.gc_round(); r <= dag.HighestRound(); ++r) {
    EXPECT_LE(dag.CertsAt(r).size(), 4u);
  }
  EXPECT_GT(cluster.primary(0)->votes_cast(), 10u);
}

TEST(NarwhalCoreTest, CrashedValidatorExcludedButDagProceeds) {
  Cluster cluster(BaseConfig(10));
  cluster.CrashValidator(3, Seconds(2));
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(12));
  const Dag& dag = cluster.primary(0)->dag();
  Round top = dag.HighestRound();
  EXPECT_GT(top, 15u);  // 3 validators = exactly 2f+1: rounds keep advancing.
  // Validator 3 contributes no certificates after its crash round.
  bool late_cert_from_crashed = false;
  for (Round r = top - 5; r <= top; ++r) {
    if (dag.CertsAt(r).count(3) != 0) {
      late_cert_from_crashed = true;
    }
  }
  EXPECT_FALSE(late_cert_from_crashed);
}

}  // namespace
}  // namespace nt
