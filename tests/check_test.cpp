// Tests for the DST harness itself: schedule generation determinism, the
// text repro format round-trip, and the mutation gate — each seeded protocol
// weakening (src/common/seeded_bugs.h) must be caught by the invariant
// checker within the 64-seed CI budget, and the shrinker must reduce the
// failure to a small repro (≤ 4 validators, ≤ 2 faults).
#include <gtest/gtest.h>

#include <optional>

#include "src/check/checker.h"
#include "src/check/schedule.h"
#include "src/check/shrinker.h"

namespace nt {
namespace {

TEST(ScheduleTest, GeneratorIsDeterministic) {
  for (uint64_t seed : {1ull, 2ull, 33ull, 100ull}) {
    EXPECT_EQ(GenerateSchedule(seed).Encode(), GenerateSchedule(seed).Encode());
  }
  EXPECT_NE(GenerateSchedule(1).Encode(), GenerateSchedule(2).Encode());
}

TEST(ScheduleTest, SystemOverridePinsTheSystem) {
  EXPECT_EQ(GenerateSchedule(5, SystemKind::kTusk).system, SystemKind::kTusk);
  EXPECT_EQ(GenerateSchedule(5, SystemKind::kNarwhalHs).system, SystemKind::kNarwhalHs);
  EXPECT_EQ(GenerateSchedule(5, SystemKind::kBullshark).system, SystemKind::kBullshark);
}

TEST(ScheduleTest, EncodeDecodeRoundTrip) {
  for (uint64_t seed = 1; seed <= 24; ++seed) {
    FaultSchedule s = GenerateSchedule(seed);
    if (seed % 2 == 0) {
      s.bug_accept_2f_certs = true;
    }
    if (seed % 3 == 0) {
      s.bug_skip_tusk_support = true;
    }
    if (seed % 5 == 0) {
      s.system = SystemKind::kBullshark;
      s.bug_skip_bullshark_support = true;
    }
    std::optional<FaultSchedule> decoded = FaultSchedule::Decode(s.Encode());
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    EXPECT_EQ(decoded->Encode(), s.Encode()) << "seed " << seed;
  }
}

TEST(ScheduleTest, DecodeRejectsMalformedInput) {
  EXPECT_FALSE(FaultSchedule::Decode("not a schedule").has_value());
  EXPECT_FALSE(FaultSchedule::Decode("seed=1\nunknown_key=3\n").has_value());
  EXPECT_FALSE(FaultSchedule::Decode("seed=1\nvalidators=zero\n").has_value());
  // A restart must come back strictly after it went down.
  EXPECT_FALSE(
      FaultSchedule::Decode("seed=1\nvalidators=4\nduration_us=1000000\nrestart=1@500-500\n")
          .has_value());
  EXPECT_FALSE(
      FaultSchedule::Decode("seed=1\nvalidators=4\nduration_us=1000000\nrestart=1@500\n")
          .has_value());
}

TEST(ScheduleTest, RestartFaultsRoundTripAndShapeTheRun) {
  FaultSchedule s;
  s.validators = 4;
  s.crashes.push_back({0, Seconds(1), 0});           // Permanent.
  s.crashes.push_back({1, Seconds(2), Seconds(5)});  // Restarts.
  s.duration = s.Gst() + s.PostGstWindow();

  EXPECT_FALSE(s.crashes[0].recovers());
  EXPECT_TRUE(s.crashes[1].recovers());
  // A permanent crash is outside liveness; a clean restart is not.
  EXPECT_FALSE(s.IsCorrect(0));
  EXPECT_TRUE(s.IsCorrect(1));
  // GST waits for the restarted validator's resync, not the permanent crash.
  EXPECT_GE(s.Gst(), Seconds(5));

  std::string text = s.Encode();
  EXPECT_NE(text.find("crash=0@"), std::string::npos);
  EXPECT_NE(text.find("restart=1@"), std::string::npos);
  std::optional<FaultSchedule> decoded = FaultSchedule::Decode(text);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->Encode(), text);
  ASSERT_EQ(decoded->crashes.size(), 2u);
  EXPECT_EQ(decoded->crashes[1].recover_at, Seconds(5));
}

TEST(ScheduleTest, ShardsAndCrossShardBugRoundTrip) {
  FaultSchedule s = GenerateSchedule(3);
  // The default single lane stays off the wire: historical repros (and their
  // hashes) predate the knob and must re-parse unchanged.
  EXPECT_EQ(s.shards, 1u);
  EXPECT_EQ(s.Encode().find("shards="), std::string::npos);

  s.shards = 4;
  s.bug_skip_cross_shard_lock = true;
  std::string text = s.Encode();
  EXPECT_NE(text.find("shards=4"), std::string::npos);
  EXPECT_NE(text.find("bug=skip_cross_shard_lock"), std::string::npos);
  std::optional<FaultSchedule> decoded = FaultSchedule::Decode(text);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shards, 4u);
  EXPECT_TRUE(decoded->bug_skip_cross_shard_lock);
  EXPECT_EQ(decoded->Encode(), text);

  // A schedule with no execution lanes at all is malformed, not "lanes off".
  EXPECT_FALSE(
      FaultSchedule::Decode("seed=1\nvalidators=4\nduration_us=1000000\nshards=0\n").has_value());
}

TEST(ScheduleTest, GeneratorNeverDrawsShards) {
  // Lane coverage comes from pinned bands (`ntcheck --shards 4`), never the
  // seed draw: adding the knob must not perturb the frozen rng stream behind
  // every checked-in repro and golden event hash.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    EXPECT_EQ(GenerateSchedule(seed).shards, 1u) << "seed " << seed;
  }
}

TEST(ScheduleTest, GeneratorEmitsRestartsWithinTheDownWindowBounds) {
  size_t restarts = 0;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    FaultSchedule s = GenerateSchedule(seed);
    for (const FaultSchedule::Crash& c : s.crashes) {
      if (!c.recovers()) {
        continue;
      }
      ++restarts;
      EXPECT_GE(c.recover_at - c.at, Seconds(1)) << "seed " << seed;
      EXPECT_LE(c.recover_at - c.at, Seconds(8)) << "seed " << seed;
      EXPECT_GE(s.duration, c.recover_at) << "seed " << seed;
    }
  }
  // ~Half of all crashes across the corpus restart; the corpus must contain
  // a healthy number or the restart path is effectively unfuzzed.
  EXPECT_GE(restarts, 10u);
}

TEST(ScheduleTest, GeneratedFaultsRespectTheByzantineBudget) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    FaultSchedule s = GenerateSchedule(seed);
    uint32_t f = (s.validators - 1) / 3;
    EXPECT_LE(s.crashes.size() + s.equivocators.size(), f) << "seed " << seed;
    EXPECT_GE(s.duration, s.Gst()) << "seed " << seed;
  }
}

// Finds the first seed in [1, 64] whose schedule (with `mutate` applied)
// fails the checker, alternating the system by seed parity so both stacks
// get half the budget (as `ntcheck --system both` does).
std::optional<FaultSchedule> FirstFailing(void (*mutate)(FaultSchedule&)) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    SystemKind system = (seed % 2 == 0) ? SystemKind::kTusk : SystemKind::kNarwhalHs;
    FaultSchedule s = GenerateSchedule(seed, system);
    mutate(s);
    if (!RunSchedule(s).ok()) {
      return s;
    }
  }
  return std::nullopt;
}

TEST(MutationGateTest, AcceptTwoFCertsIsCaughtAndShrinks) {
  std::optional<FaultSchedule> failing =
      FirstFailing([](FaultSchedule& s) { s.bug_accept_2f_certs = true; });
  ASSERT_TRUE(failing.has_value())
      << "weakened cert quorum (2f signatures) survived 64 fuzz seeds";

  ShrinkResult shrunk = Shrink(*failing);
  EXPECT_FALSE(shrunk.verdict.ok());
  EXPECT_LE(shrunk.schedule.validators, 4u);
  EXPECT_LE(shrunk.schedule.FaultCount(), 2u);
  // The weakening breaks quorum intersection; the checker must pin it on
  // certificate uniqueness (§4.3), not merely downstream symptoms.
  bool cert_uniqueness = false;
  for (const Violation& v : shrunk.verdict.violations) {
    cert_uniqueness |= v.invariant == "cert-uniqueness";
  }
  EXPECT_TRUE(cert_uniqueness) << shrunk.verdict.Summary();
}

TEST(MutationGateTest, SkipTuskSupportIsCaughtAndShrinks) {
  std::optional<FaultSchedule> failing =
      FirstFailing([](FaultSchedule& s) { s.bug_skip_tusk_support = true; });
  ASSERT_TRUE(failing.has_value())
      << "skipped f+1 support check survived 64 fuzz seeds";

  ShrinkResult shrunk = Shrink(*failing);
  EXPECT_FALSE(shrunk.verdict.ok());
  EXPECT_LE(shrunk.schedule.validators, 4u);
  EXPECT_LE(shrunk.schedule.FaultCount(), 2u);
  // Committing an unsupported leader diverges from the §5 reference replay.
  bool oracle = false;
  for (const Violation& v : shrunk.verdict.violations) {
    oracle |= v.invariant == "oracle-agreement";
  }
  EXPECT_TRUE(oracle) << shrunk.verdict.Summary();
}

TEST(MutationGateTest, SkipBullsharkSupportVotesIsCaughtAndShrinks) {
  // The seed draw never picks Bullshark, so this gate pins the system on
  // every seed (as `ntcheck --bug skip_bullshark_support_votes` does)
  // instead of alternating by parity.
  std::optional<FaultSchedule> failing;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    FaultSchedule s = GenerateSchedule(seed, SystemKind::kBullshark);
    s.bug_skip_bullshark_support = true;
    if (!RunSchedule(s).ok()) {
      failing = s;
      break;
    }
  }
  ASSERT_TRUE(failing.has_value())
      << "weakened bullshark support quorum (f votes) survived 64 fuzz seeds";

  ShrinkResult shrunk = Shrink(*failing);
  EXPECT_FALSE(shrunk.verdict.ok());
  EXPECT_LE(shrunk.schedule.validators, 4u);
  EXPECT_LE(shrunk.schedule.FaultCount(), 2u);
  // Committing on f support votes breaks quorum intersection: the live rule
  // orders anchors the honest f+1 reference replay skips, so the checker
  // must pin the divergence on oracle agreement (or the resulting fork).
  bool ordering = false;
  for (const Violation& v : shrunk.verdict.violations) {
    ordering |= v.invariant == "oracle-agreement" || v.invariant == "prefix-consistency";
  }
  EXPECT_TRUE(ordering) << shrunk.verdict.Summary();
}

TEST(MutationGateTest, SkipCrossShardLockIsCaughtAndShrinks) {
  // The seed draw never enables execution lanes, so this gate pins shards=4
  // on every seed (as `ntcheck --bug skip_cross_shard_lock` does), still
  // alternating the system by parity.
  std::optional<FaultSchedule> failing;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    SystemKind system = (seed % 2 == 0) ? SystemKind::kTusk : SystemKind::kNarwhalHs;
    FaultSchedule s = GenerateSchedule(seed, system);
    s.shards = 4;
    s.bug_skip_cross_shard_lock = true;
    if (!RunSchedule(s).ok()) {
      failing = s;
      break;
    }
  }
  ASSERT_TRUE(failing.has_value()) << "skipped cross-shard lock survived 64 fuzz seeds";

  ShrinkResult shrunk = Shrink(*failing);
  EXPECT_FALSE(shrunk.verdict.ok());
  EXPECT_LE(shrunk.schedule.validators, 4u);
  EXPECT_LE(shrunk.schedule.FaultCount(), 2u);
  // The shrinker may drop lanes to 2 (the smallest count that can cross) but
  // never to 1, where the bug has no cross-shard path left to fire on.
  EXPECT_GE(shrunk.schedule.shards, 2u);
  // Every validator computes the same wrong answer, so agreement can't see
  // it: the catch must come from the conservation check or the honest
  // ReplayShards oracle.
  bool shard_invariant = false;
  for (const Violation& v : shrunk.verdict.violations) {
    shard_invariant |= v.invariant == "shard-conservation" || v.invariant == "shard-oracle";
  }
  EXPECT_TRUE(shard_invariant) << shrunk.verdict.Summary();
}

}  // namespace
}  // namespace nt
