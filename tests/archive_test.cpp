// Cold-storage archive (§3.3 offload): garbage-collected rounds leave the
// primary's working set but stay retrievable — in memory or through a
// WAL-backed store — for execution engines, light clients, and audits.
#include "src/narwhal/archive.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

Dag::Collected MakeRecord(uint8_t tag, bool with_header = true) {
  Dag::Collected record;
  auto header = std::make_shared<BlockHeader>();
  header->author = tag;
  header->round = tag;
  record.digest = header->ComputeDigest();
  if (with_header) {
    record.header = header;
  }
  record.cert.header_digest = record.digest;
  record.cert.round = tag;
  record.cert.author = tag;
  return record;
}

TEST(ArchiveTest, StoresAndServesRecords) {
  Archive archive;
  Dag::Collected record = MakeRecord(1);
  archive.Put(record);
  EXPECT_TRUE(archive.Contains(record.digest));
  EXPECT_EQ(archive.GetHeader(record.digest), record.header);
  ASSERT_NE(archive.GetCertificate(record.digest), nullptr);
  EXPECT_EQ(archive.GetCertificate(record.digest)->round, 1u);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.headers_archived(), 1u);

  Digest unknown = Sha256::Hash("unknown");
  EXPECT_FALSE(archive.Contains(unknown));
  EXPECT_EQ(archive.GetHeader(unknown), nullptr);
  EXPECT_EQ(archive.GetCertificate(unknown), nullptr);
}

TEST(ArchiveTest, UpgradesCertOnlyRecords) {
  Archive archive;
  Dag::Collected no_header = MakeRecord(2, /*with_header=*/false);
  archive.Put(no_header);
  EXPECT_EQ(archive.GetHeader(no_header.digest), nullptr);
  EXPECT_EQ(archive.headers_archived(), 0u);

  Dag::Collected with_header = MakeRecord(2);
  archive.Put(with_header);
  EXPECT_NE(archive.GetHeader(with_header.digest), nullptr);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.headers_archived(), 1u);
}

TEST(ArchiveTest, PutIsIdempotent) {
  Archive archive;
  Dag::Collected record = MakeRecord(3);
  archive.Put(record);
  archive.Put(record);
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_EQ(archive.headers_archived(), 1u);
}

TEST(ArchiveTest, PersistsThroughColdStore) {
  std::string path = ::testing::TempDir() + "archive_test.wal";
  std::remove(path.c_str());
  Digest digest;
  {
    Archive archive(WalStore::Open(path));
    Dag::Collected record = MakeRecord(4);
    digest = record.digest;
    archive.Put(record);
  }
  // The WAL retains the encoded record after the archive is gone.
  auto store = WalStore::Open(path);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->recovered_records(), 1u);
  auto bytes = store->Get(digest);
  ASSERT_TRUE(bytes.has_value());
  Reader r(*bytes);
  auto cert = Certificate::Decode(r);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->header_digest, digest);
  EXPECT_TRUE(r.GetBool());  // Header present flag.
  auto header = BlockHeader::Decode(r);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->ComputeDigest(), digest);
  std::remove(path.c_str());
}

// End-to-end: with an aggressive GC horizon, a live Tusk cluster keeps its
// DAG small while the archive accumulates the full evicted history.
TEST(ArchiveClusterTest, GcEvictsIntoArchive) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 88;
  config.narwhal.gc_depth = 5;
  Cluster cluster(config);
  Archive archive;
  cluster.primary(0)->set_archive(&archive);

  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(20);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  for (ValidatorId v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(20));

  const Dag& dag = cluster.primary(0)->dag();
  ASSERT_GT(dag.gc_round(), 10u);
  // The working set is bounded by the horizon...
  EXPECT_LT(dag.TotalCertificates(), (5u + 10u) * 4u);
  // ...and the archive holds roughly everything below it.
  EXPECT_GT(archive.size(), (dag.gc_round() - 1) * 3u);
  EXPECT_GT(archive.headers_archived(), archive.size() / 2);

  // Archived blocks remain readable even though the DAG dropped them.
  EXPECT_GT(archive.headers_archived(), 20u);
}

// Durability end-to-end: a cluster run with persistent worker stores leaves
// every disseminated batch recoverable from the on-disk WAL afterwards.
TEST(PersistenceClusterTest, WorkerBatchesSurviveOnDisk) {
  std::string dir = ::testing::TempDir() + "nt_persist_test";
  std::filesystem::create_directories(dir);
  Digest batch_digest{};
  {
    ClusterConfig config;
    config.system = SystemKind::kTusk;
    config.num_validators = 4;
    config.seed = 44;
    config.persist_dir = dir;
    Cluster cluster(config);
    cluster.Start();
    batch_digest = cluster.worker(1, 0)->SubmitBlock({{0xaa, 0xbb}});
    cluster.scheduler().RunUntil(Seconds(3));
    // Every validator's worker persisted the batch before acknowledging.
    for (ValidatorId v = 0; v < 4; ++v) {
      EXPECT_TRUE(cluster.worker(v, 0)->store().Contains(batch_digest)) << "validator " << v;
    }
  }
  // "Restart": reopen validator 2's WAL and recover the batch content.
  auto store = WalStore::Open(dir + "/worker_2_0.wal");
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->recovered_records(), 0u);
  auto bytes = store->Get(batch_digest);
  ASSERT_TRUE(bytes.has_value());
  Reader r(*bytes);
  auto batch = Batch::Decode(r);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->ComputeDigest(), batch_digest);
  EXPECT_EQ(batch->txs[0], (Bytes{0xaa, 0xbb}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nt
