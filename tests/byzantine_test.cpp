// Byzantine-behaviour tests: a malicious validator that equivocates
// (proposes two different headers for the same round to different peers)
// and replays headers. The quorum-intersection design must ensure at most
// one certificate of availability per (round, author) ever forms, honest
// validators vote at most once per (author, round), and the DAG + Tusk keep
// running (the paper's §3.1 "Intuitions behind security argument").
#include <gtest/gtest.h>

#include "src/check/checker.h"
#include "src/check/schedule.h"
#include "src/crypto/coin.h"
#include "src/narwhal/primary.h"
#include "src/runtime/cluster.h"
#include "src/tusk/tusk.h"

namespace nt {
namespace {

constexpr uint32_t kN = 4;        // f = 1.
constexpr ValidatorId kByz = 3;   // The malicious validator.

// A hand-driven malicious primary: speaks the real wire protocol through
// the real messages, but signs whatever it wants.
class EquivocatingPrimary : public NetNode {
 public:
  EquivocatingPrimary(const Committee& committee, Network* network, Topology* topology,
                      Signer* signer)
      : committee_(committee), network_(network), topology_(topology), signer_(signer) {}

  void set_net_id(uint32_t id) { net_id_ = id; }

  void OnStart() override {}

  void OnMessage(uint32_t from, const MessagePtr& msg) override {
    (void)from;
    if (auto cert = std::dynamic_pointer_cast<const MsgCertificate>(msg)) {
      certs_[cert->cert.round][cert->cert.author] = cert->cert;
      MaybeAct();
      return;
    }
    if (auto vote = std::dynamic_pointer_cast<const MsgVote>(msg)) {
      votes_[vote->vote.header_digest][vote->vote.voter] = vote->vote.sig;
      MaybeFormCerts();
      return;
    }
  }

  uint64_t certs_formed() const { return certs_formed_; }
  bool equivocated() const { return equivocated_; }

 private:
  std::shared_ptr<BlockHeader> MakeHeader(Round round, std::vector<Certificate> parents) {
    auto header = std::make_shared<BlockHeader>();
    header->author = kByz;
    header->round = round;
    header->parents = std::move(parents);
    header->author_sig = signer_->Sign(header->ComputeDigest());
    return header;
  }

  void SendHeaderTo(const std::shared_ptr<BlockHeader>& header, ValidatorId target) {
    network_->Send(net_id_, topology_->primary_of[target],
                   std::make_shared<MsgHeader>(header, header->ComputeDigest()));
  }

  void MaybeAct() {
    // Step 1: once 2f+1 round-0 certificates are known, join round 1
    // honestly (one header to everyone) so we earn a certificate.
    if (!proposed_r1_ && certs_[0].size() >= committee_.quorum_threshold()) {
      proposed_r1_ = true;
      std::vector<Certificate> parents;
      for (const auto& [author, cert] : certs_[0]) {
        parents.push_back(cert);
      }
      auto header = MakeHeader(1, parents);
      own_digests_.insert(header->ComputeDigest());
      own_round_[header->ComputeDigest()] = 1;
      for (ValidatorId v = 0; v < kN; ++v) {
        if (v != kByz) {
          SendHeaderTo(header, v);
        }
      }
    }
    // Step 2: once round-1 certificates exist (including ours), EQUIVOCATE
    // in round 2: two different headers, split between peers.
    if (!equivocated_ && certs_[1].size() >= kN) {
      equivocated_ = true;
      std::vector<Certificate> all;
      for (const auto& [author, cert] : certs_[1]) {
        all.push_back(cert);
      }
      // Two distinct quorums of parents -> two distinct header digests.
      std::vector<Certificate> first(all.begin(), all.begin() + 3);
      std::vector<Certificate> second(all.begin() + 1, all.begin() + 4);
      auto header_x = MakeHeader(2, first);
      auto header_y = MakeHeader(2, second);
      own_digests_.insert(header_x->ComputeDigest());
      own_digests_.insert(header_y->ComputeDigest());
      own_round_[header_x->ComputeDigest()] = 2;
      own_round_[header_y->ComputeDigest()] = 2;
      SendHeaderTo(header_x, 0);
      SendHeaderTo(header_x, 1);
      SendHeaderTo(header_y, 1);  // Validator 1 sees both.
      SendHeaderTo(header_y, 2);
    }
  }

  void MaybeFormCerts() {
    for (const Digest& digest : own_digests_) {
      if (certified_.count(digest) != 0) {
        continue;
      }
      auto& votes = votes_[digest];
      Round round = own_round_[digest];
      // Add our own signature.
      votes[kByz] = signer_->Sign(Certificate::VotePreimage(digest, round, kByz));
      if (votes.size() < committee_.quorum_threshold()) {
        continue;
      }
      Certificate cert;
      cert.header_digest = digest;
      cert.round = round;
      cert.author = kByz;
      for (const auto& [voter, sig] : votes) {
        if (cert.votes.size() >= committee_.quorum_threshold()) {
          break;
        }
        cert.votes.emplace_back(voter, sig);
      }
      certified_.insert(digest);
      ++certs_formed_;
      certs_[round][kByz] = cert;  // Track our own certificate too.
      for (ValidatorId v = 0; v < kN; ++v) {
        if (v != kByz) {
          network_->Send(net_id_, topology_->primary_of[v], std::make_shared<MsgCertificate>(cert));
        }
      }
      MaybeAct();
    }
  }

  const Committee& committee_;
  Network* network_;
  Topology* topology_;
  Signer* signer_;
  uint32_t net_id_ = 0;

  std::map<Round, std::map<ValidatorId, Certificate>> certs_;
  std::map<Digest, std::map<ValidatorId, Signature>> votes_;
  std::set<Digest> own_digests_;
  std::map<Digest, Round> own_round_;
  std::set<Digest> certified_;
  bool proposed_r1_ = false;
  bool equivocated_ = false;
  uint64_t certs_formed_ = 0;
};

struct ByzFixture {
  Scheduler scheduler;
  WanLatencyModel latency;
  FaultController faults;
  std::unique_ptr<Network> network;
  Committee committee;
  Topology topology;
  CommonCoin coin{11};
  std::vector<std::unique_ptr<Signer>> signers;
  std::vector<std::unique_ptr<Primary>> honest;
  std::vector<std::unique_ptr<Tusk>> tusks;
  std::unique_ptr<EquivocatingPrimary> byz;
  std::vector<std::vector<Digest>> commit_sequences{kN - 1};

  ByzFixture() {
    network = std::make_unique<Network>(&scheduler, &latency, &faults, NetworkConfig{}, 13);
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < kN; ++v) {
      signers.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(77, v)));
      infos.push_back(ValidatorInfo{signers.back()->public_key(), v % kWanRegionCount});
    }
    committee = Committee(std::move(infos));
    topology.primary_of.resize(kN);
    topology.worker_of.assign(kN, std::vector<uint32_t>(1));

    NarwhalConfig config;
    for (ValidatorId v = 0; v < kN - 1; ++v) {
      honest.push_back(std::make_unique<Primary>(v, committee, config, network.get(), &topology,
                                                 signers[v].get()));
      uint32_t id = network->AddNode(honest.back().get(), v % kWanRegionCount,
                                     network->NewMachine());
      honest.back()->set_net_id(id);
      topology.primary_of[v] = id;
      topology.worker_of[v][0] = id;  // No workers: empty headers only.
    }
    byz = std::make_unique<EquivocatingPrimary>(committee, network.get(), &topology,
                                                signers[kByz].get());
    uint32_t byz_id = network->AddNode(byz.get(), 0, network->NewMachine());
    byz->set_net_id(byz_id);
    topology.primary_of[kByz] = byz_id;
    topology.worker_of[kByz][0] = byz_id;

    for (ValidatorId v = 0; v < kN - 1; ++v) {
      tusks.push_back(std::make_unique<Tusk>(honest[v].get(), committee, &coin, 1000));
      tusks.back()->add_on_commit([this, v](const Tusk::Committed& committed) {
        commit_sequences[v].push_back(committed.digest);
      });
    }
  }

  void Run(TimeDelta duration) {
    network->Start();
    scheduler.RunUntil(duration);
  }
};

TEST(ByzantineTest, EquivocationCannotDoubleCertify) {
  ByzFixture fixture;
  fixture.Run(Seconds(20));

  ASSERT_TRUE(fixture.byz->equivocated());
  // The attacker formed at most one certificate for round 2: three honest
  // validators vote once each for (author 3, round 2), so only one of the
  // two equivocating headers can reach 2f+1 = 3 signatures.
  uint32_t round2_certs = 0;
  std::set<Digest> round2_digests;
  for (ValidatorId v = 0; v < kN - 1; ++v) {
    const Certificate* cert = fixture.honest[v]->dag().GetCert(2, kByz);
    if (cert != nullptr) {
      round2_digests.insert(cert->header_digest);
      round2_certs = std::max<uint32_t>(round2_certs, 1);
    }
  }
  EXPECT_LE(round2_digests.size(), 1u) << "conflicting certificates certified!";
}

TEST(ByzantineTest, HonestValidatorsVoteOncePerAuthorRound) {
  ByzFixture fixture;
  fixture.Run(Seconds(20));
  // Validator 1 received both equivocating headers; it voted for at most
  // one header of (author 3, round 2) — its votes_cast is bounded by one
  // per (author, round) pair it saw.
  ASSERT_TRUE(fixture.byz->equivocated());
  // Rounds advance far; the byz authored at most rounds {1, 2}: votes for
  // author 3 from validator 1 <= 2. We can't observe per-author votes
  // directly, but the absence of double certificates (above) plus continued
  // liveness (below) is the observable contract.
  EXPECT_GE(fixture.honest[1]->votes_cast(), 10u);
}

TEST(ByzantineTest, DagAndTuskStayLiveAndConsistent) {
  ByzFixture fixture;
  fixture.Run(Seconds(30));

  // Liveness: the three honest validators are exactly 2f+1; the DAG keeps
  // advancing and Tusk keeps committing despite the attacker.
  for (ValidatorId v = 0; v < kN - 1; ++v) {
    EXPECT_GT(fixture.honest[v]->round(), 20u) << "validator " << v;
    EXPECT_GT(fixture.tusks[v]->committed_headers(), 10u) << "validator " << v;
  }
  // Safety: identical commit prefixes.
  for (ValidatorId a = 0; a < kN - 1; ++a) {
    for (ValidatorId b = a + 1; b < kN - 1; ++b) {
      size_t common =
          std::min(fixture.commit_sequences[a].size(), fixture.commit_sequences[b].size());
      ASSERT_GT(common, 0u);
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(fixture.commit_sequences[a][i], fixture.commit_sequences[b][i]);
      }
    }
  }
}

TEST(ByzantineHotStuffTest, ForgedHighQcInTimeoutRejected) {
  // A Byzantine validator sends a timeout message carrying a forged high QC
  // for a far-future view; honest validators must not fast-forward.
  ClusterConfig config;
  config.system = SystemKind::kBatchedHs;
  config.num_validators = 4;
  config.seed = 31;
  Cluster cluster(config);
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(2));
  View view_before = cluster.hotstuff(0)->current_view();

  // Craft the forgery with validator 3's real timeout signature but a QC
  // whose votes are garbage.
  auto byz_signer = MakeSigner(SignerKind::kFast, DeriveSeed(config.seed, 3));
  QuorumCert forged;
  forged.block_digest = Sha256::Hash("phantom block");
  forged.view = view_before + 1000;
  for (uint32_t v = 0; v < 3; ++v) {
    forged.votes.emplace_back(v, Signature{});
  }
  View timeout_view = view_before;
  auto msg = std::make_shared<MsgHsTimeout>(
      timeout_view, 3, byz_signer->Sign(TimeoutCert::VotePreimage(timeout_view)), forged);
  // Deliver straight into validator 0's consensus handler.
  cluster.hotstuff(0)->OnMessage(0, msg);
  cluster.scheduler().RunUntil(Seconds(4));

  EXPECT_LT(cluster.hotstuff(0)->current_view(), view_before + 100)
      << "forged QC fast-forwarded the view";
  // The cluster keeps operating normally.
  cluster.scheduler().RunUntil(Seconds(10));
  EXPECT_GT(cluster.hotstuff(0)->committed_blocks(), 2u);
}

TEST(ByzantineTest, ForgedCertificateRejected) {
  ByzFixture fixture;
  fixture.Run(Seconds(5));
  // Inject a certificate with forged signatures directly at an honest
  // validator: it must not enter the DAG.
  Certificate forged;
  forged.header_digest = Sha256::Hash("forged");
  forged.round = fixture.honest[0]->round();
  forged.author = kByz;
  for (uint32_t v = 0; v < 3; ++v) {
    Signature sig{};
    sig[0] = static_cast<uint8_t>(v + 1);
    forged.votes.emplace_back(v, sig);
  }
  fixture.network->Send(fixture.topology.primary_of[kByz], fixture.topology.primary_of[0],
                        std::make_shared<MsgCertificate>(forged));
  fixture.scheduler.RunUntil(fixture.scheduler.now() + Seconds(2));
  EXPECT_EQ(fixture.honest[0]->dag().GetCertByDigest(forged.header_digest), nullptr);
}

// A schedule that marks one validator as an equivocator through the DST
// fault-injection hook (FaultController::IsEquivocator → Primary splits the
// committee between two conflicting same-round headers).
FaultSchedule EquivocatorSchedule() {
  FaultSchedule s;
  s.seed = 7;
  s.system = SystemKind::kNarwhalHs;
  s.validators = kN;
  s.duration = Seconds(30);
  s.tx_interval = Micros(273495);
  s.loss_rate = 0.01221;
  s.equivocators.push_back({/*validator=*/1, /*at=*/Micros(1537060)});
  return s;
}

// With the honest 2f+1 vote quorum, the two halves of an equivocator's
// split broadcast cannot both certify (quorum intersection, §4.3): the run
// must stay clean on every invariant, equivocator notwithstanding.
TEST(ByzantineTest, EquivocationHookHarmlessUnderHonestQuorum) {
  CheckResult result = RunSchedule(EquivocatorSchedule());
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_GT(result.commits, 0u);
}

// Weakening the certificate quorum to 2f signatures (the seeded
// accept_2f_certs mutation) removes the intersection argument: the same
// schedule must now produce two distinct certificates for one
// (round, author) — and the cert-uniqueness invariant must say so.
TEST(ByzantineTest, EquivocationCertifiesDoublyUnderWeakenedQuorum) {
  FaultSchedule s = EquivocatorSchedule();
  s.bug_accept_2f_certs = true;
  CheckResult result = RunSchedule(s);
  bool cert_uniqueness = false;
  for (const Violation& v : result.violations) {
    cert_uniqueness |= v.invariant == "cert-uniqueness";
  }
  EXPECT_TRUE(cert_uniqueness)
      << "expected a cert-uniqueness violation, got: " << result.Summary();
}

}  // namespace
}  // namespace nt
