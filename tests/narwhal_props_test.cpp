// Parameterized property suites for the Narwhal mempool (paper §2.1) and
// Tusk safety, swept over seeds, committee sizes, and fault patterns.
#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

struct PropParams {
  uint32_t nodes;
  uint32_t faults;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<PropParams>& info) {
  return "n" + std::to_string(info.param.nodes) + "_f" + std::to_string(info.param.faults) +
         "_s" + std::to_string(info.param.seed);
}

class NarwhalPropertyTest : public ::testing::TestWithParam<PropParams> {
 protected:
  struct Run {
    std::unique_ptr<Cluster> cluster;
    // Commit sequences per validator (header digests, in commit order).
    std::vector<std::vector<Digest>> sequences;
    std::vector<std::unique_ptr<LoadGenerator>> clients;
  };

  Run RunTusk(TimeDelta duration = Seconds(15)) {
    const PropParams& p = GetParam();
    Run run;
    ClusterConfig config;
    config.system = SystemKind::kTusk;
    config.num_validators = p.nodes;
    config.seed = p.seed;
    run.cluster = std::make_unique<Cluster>(config);
    run.sequences.resize(p.nodes);
    for (uint32_t v = 0; v < p.nodes; ++v) {
      run.cluster->tusk(v)->add_on_commit([&run, v](const Tusk::Committed& c) {
        run.sequences[v].push_back(c.digest);
      });
    }
    for (uint32_t i = 0; i < p.faults; ++i) {
      run.cluster->CrashValidator(p.nodes - 1 - i, 0);
    }
    LoadGenerator::Options options;
    options.rate_tps = 2000.0 / p.nodes;
    options.stop_at = duration;
    for (uint32_t v = 0; v < p.nodes; ++v) {
      run.clients.push_back(std::make_unique<LoadGenerator>(run.cluster.get(), v, 0, options));
      run.clients.back()->Start();
    }
    run.cluster->Start();
    run.cluster->scheduler().RunUntil(duration);
    return run;
  }
};

// Tusk safety: all honest validators commit the same total order of headers
// (prefix consistency), under every swept fault pattern and schedule.
TEST_P(NarwhalPropertyTest, TotalOrderAgreement) {
  Run run = RunTusk();
  const uint32_t alive = GetParam().nodes - GetParam().faults;
  ASSERT_GT(run.sequences[0].size(), 10u);
  for (uint32_t a = 0; a < alive; ++a) {
    for (uint32_t b = a + 1; b < alive; ++b) {
      size_t common = std::min(run.sequences[a].size(), run.sequences[b].size());
      ASSERT_GT(common, 0u);
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(run.sequences[a][i], run.sequences[b][i])
            << "validators " << a << "/" << b << " diverge at " << i;
      }
    }
  }
}

// Integrity (§2.1): every committed digest resolves to the same header
// contents at every honest validator that stores it.
TEST_P(NarwhalPropertyTest, Integrity) {
  Run run = RunTusk();
  const uint32_t alive = GetParam().nodes - GetParam().faults;
  int checked = 0;
  for (const Digest& digest : run.sequences[0]) {
    std::optional<Digest> content_digest;
    for (uint32_t v = 0; v < alive; ++v) {
      auto header = run.cluster->primary(v)->dag().GetHeader(digest);
      if (header == nullptr) {
        continue;  // GC'd or not yet synced at v.
      }
      Digest d = header->ComputeDigest();
      EXPECT_EQ(d, digest);
      if (content_digest.has_value()) {
        EXPECT_EQ(*content_digest, d);
      }
      content_digest = d;
      ++checked;
    }
  }
  EXPECT_GT(checked, 10);
}

// Block-Availability (§2.1): every batch referenced by a committed header is
// retrievable from the workers of at least f+1 honest validators.
TEST_P(NarwhalPropertyTest, BlockAvailability) {
  Run run = RunTusk();
  const PropParams& p = GetParam();
  const uint32_t alive = p.nodes - p.faults;
  const Committee& committee = run.cluster->committee();
  int batches_checked = 0;
  for (const Digest& digest : run.sequences[0]) {
    auto header = run.cluster->primary(0)->dag().GetHeader(digest);
    if (header == nullptr) {
      continue;
    }
    for (const BatchRef& ref : header->batches) {
      uint32_t holders = 0;
      for (uint32_t v = 0; v < alive; ++v) {
        if (run.cluster->worker(v, 0)->GetBatch(ref.digest) != nullptr) {
          ++holders;
        }
      }
      EXPECT_GE(holders, committee.validity_threshold()) << "batch under-replicated";
      ++batches_checked;
    }
  }
  EXPECT_GT(batches_checked, 5);
}

// Containment (§2.1): commit order respects causality — every parent of a
// committed header at or above the GC horizon is committed before it.
TEST_P(NarwhalPropertyTest, Containment) {
  Run run = RunTusk();
  std::map<Digest, size_t> position;
  for (size_t i = 0; i < run.sequences[0].size(); ++i) {
    position[run.sequences[0][i]] = i;
  }
  const Dag& dag = run.cluster->primary(0)->dag();
  int edges_checked = 0;
  for (const auto& [digest, pos] : position) {
    auto header = dag.GetHeader(digest);
    if (header == nullptr) {
      continue;
    }
    for (const Certificate& parent : header->parents) {
      auto it = position.find(parent.header_digest);
      if (it == position.end()) {
        continue;  // Below the GC horizon at commit time.
      }
      EXPECT_LT(it->second, pos) << "child committed before parent";
      ++edges_checked;
    }
  }
  EXPECT_GT(edges_checked, 20);
}

// 1/2-Chain Quality (§2.1): with all-honest committees every author's share
// is bounded; structurally, each committed round contributes >= 2f+1 distinct
// authors, so no author exceeds ~1/(2f+1) of blocks plus slack.
TEST_P(NarwhalPropertyTest, ChainQuality) {
  Run run = RunTusk();
  const PropParams& p = GetParam();
  std::map<ValidatorId, size_t> per_author;
  const Dag& dag = run.cluster->primary(0)->dag();
  size_t counted = 0;
  for (const Digest& digest : run.sequences[0]) {
    const Certificate* cert = dag.GetCertByDigest(digest);
    if (cert != nullptr) {
      per_author[cert->author]++;
      ++counted;
    }
  }
  if (counted < 20) {
    GTEST_SKIP() << "not enough surviving certificates after GC";
  }
  const uint32_t alive = p.nodes - p.faults;
  for (const auto& [author, count] : per_author) {
    // No author dominates: their share stays near 1/alive.
    EXPECT_LT(static_cast<double>(count) / counted, 2.0 / alive + 0.1)
        << "author " << author << " over-represented";
  }
}

// Validity structure: every committed header above round 0 references at
// least 2f+1 parents from the previous round with distinct authors.
TEST_P(NarwhalPropertyTest, CommittedHeadersAreWellFormed) {
  Run run = RunTusk();
  const Committee& committee = run.cluster->committee();
  const Dag& dag = run.cluster->primary(0)->dag();
  int checked = 0;
  for (const Digest& digest : run.sequences[0]) {
    auto header = dag.GetHeader(digest);
    if (header == nullptr || header->round == 0) {
      continue;
    }
    std::set<ValidatorId> authors;
    for (const Certificate& parent : header->parents) {
      EXPECT_EQ(parent.round + 1, header->round);
      authors.insert(parent.author);
    }
    EXPECT_GE(authors.size(), committee.quorum_threshold());
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

// Garbage collection bounds memory (§3.3): the DAG never holds more than
// gc_depth + slack rounds of certificates.
TEST_P(NarwhalPropertyTest, GarbageCollectionBoundsState) {
  const PropParams& p = GetParam();
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = p.nodes;
  config.seed = p.seed;
  config.narwhal.gc_depth = 10;
  Cluster cluster(config);
  for (uint32_t i = 0; i < p.faults; ++i) {
    cluster.CrashValidator(p.nodes - 1 - i, 0);
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(30));

  const Dag& dag = cluster.primary(0)->dag();
  Round span = dag.HighestRound() - dag.gc_round();
  EXPECT_GT(dag.gc_round(), 0u) << "GC never advanced";
  EXPECT_LT(span, 10u + 30u) << "DAG span exceeds gc_depth + slack";
  EXPECT_LT(dag.TotalCertificates(), (span + 2) * p.nodes);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NarwhalPropertyTest,
                         ::testing::Values(PropParams{4, 0, 1}, PropParams{4, 0, 2},
                                           PropParams{4, 1, 3}, PropParams{7, 0, 1},
                                           PropParams{7, 2, 2}, PropParams{10, 0, 1},
                                           PropParams{10, 3, 7}),
                         ParamName);

}  // namespace
}  // namespace nt
