#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace nt {
namespace {

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  sched.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  sched.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Millis(30));
}

TEST(SchedulerTest, FifoForEqualTimes) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  }
  sched.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  TimePoint fired_at = -1;
  sched.ScheduleAt(Millis(10), [&] {
    sched.ScheduleAfter(Millis(5), [&] { fired_at = sched.now(); });
  });
  sched.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(15));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto id = sched.ScheduleAt(Millis(10), [&] { fired = true; });
  sched.Cancel(id);
  sched.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelAfterFireIsSafe) {
  Scheduler sched;
  auto id = sched.ScheduleAt(Millis(1), [] {});
  sched.RunUntilIdle();
  sched.Cancel(id);  // No effect; must not crash or corrupt.
  bool fired = false;
  sched.ScheduleAt(Millis(2), [&] { fired = true; });
  sched.RunUntilIdle();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, RunUntilStopsAtBoundary) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(Millis(10), [&] { ++count; });
  sched.ScheduleAt(Millis(20), [&] { ++count; });
  sched.ScheduleAt(Millis(30), [&] { ++count; });
  sched.RunUntil(Millis(20));
  EXPECT_EQ(count, 2);  // Events at <= 20ms.
  EXPECT_EQ(sched.now(), Millis(20));
  sched.RunUntil(Millis(40));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sched.now(), Millis(40));
}

TEST(SchedulerTest, PastTimesClampToNow) {
  Scheduler sched;
  sched.RunUntil(Millis(100));
  TimePoint fired_at = -1;
  sched.ScheduleAt(Millis(50), [&] { fired_at = sched.now(); });
  sched.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(100));  // Never travels back in time.
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sched.ScheduleAfter(Millis(1), recurse);
    }
  };
  sched.ScheduleAfter(Millis(1), recurse);
  sched.RunUntilIdle();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), Millis(5));
}

TEST(SchedulerTest, PendingEventsCount) {
  Scheduler sched;
  auto a = sched.ScheduleAt(Millis(1), [] {});
  sched.ScheduleAt(Millis(2), [] {});
  EXPECT_EQ(sched.pending_events(), 2u);
  sched.Cancel(a);  // Cancelled events are no longer pending.
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.RunUntilIdle();
  EXPECT_EQ(sched.pending_events(), 0u);
}

TEST(SchedulerTest, CancelIsIdempotentAndCountsOnce) {
  Scheduler sched;
  bool fired = false;
  auto a = sched.ScheduleAt(Millis(1), [&] { fired = true; });
  sched.ScheduleAt(Millis(2), [] {});
  sched.Cancel(a);
  sched.Cancel(a);  // Second cancel of the same id is a no-op.
  sched.Cancel(Scheduler::kInvalidTimer);
  sched.Cancel(12345);  // Never-issued id.
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.RunUntilIdle();
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelledEventDoesNotBlockRunUntilBoundary) {
  // A cancelled event ahead of the boundary must not cause RunUntil to run
  // events *beyond* the boundary when skipping it.
  Scheduler sched;
  int count = 0;
  auto early = sched.ScheduleAt(Millis(5), [&] { ++count; });
  sched.ScheduleAt(Millis(50), [&] { ++count; });
  sched.Cancel(early);
  sched.RunUntil(Millis(10));
  EXPECT_EQ(count, 0);  // The 50ms event stays queued.
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.RunUntilIdle();
  EXPECT_EQ(count, 1);
}

TEST(SchedulerTest, HeavyCancellationDoesNotAccumulateState) {
  // Regression: cancelling already-fired ids used to leave a tombstone per
  // call forever, and cancelled-but-queued events inflated pending_events().
  // Churn through many schedule/fire/cancel cycles and check the counts stay
  // exact throughout.
  Scheduler sched;
  int fired = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<Scheduler::TimerId> ids;
    for (int i = 0; i < 10; ++i) {
      ids.push_back(sched.ScheduleAfter(Millis(1 + i), [&] { ++fired; }));
    }
    // Cancel half while queued, then fire the rest.
    for (int i = 0; i < 5; ++i) {
      sched.Cancel(ids[i]);
    }
    EXPECT_EQ(sched.pending_events(), 5u);
    sched.RunUntilIdle();
    EXPECT_EQ(sched.pending_events(), 0u);
    // Cancel everything again after firing: all no-ops.
    for (auto id : ids) {
      sched.Cancel(id);
    }
    EXPECT_EQ(sched.pending_events(), 0u);
  }
  EXPECT_EQ(fired, 200 * 5);
}

TEST(SchedulerTest, CompactionPreservesOrderUnderMassCancel) {
  // Cancel most of a large heap (tripping in-place compaction) and verify
  // the survivors still run in time order.
  Scheduler sched;
  std::vector<int> order;
  std::vector<Scheduler::TimerId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(sched.ScheduleAt(Millis(500 - i), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 500; ++i) {
    if (i % 100 != 0) {
      sched.Cancel(ids[i]);
    }
  }
  EXPECT_EQ(sched.pending_events(), 5u);
  sched.RunUntilIdle();
  // Survivors i = 0, 100, ..., 400 were scheduled at Millis(500 - i):
  // later i fires earlier.
  EXPECT_EQ(order, (std::vector<int>{400, 300, 200, 100, 0}));
  EXPECT_EQ(sched.pending_events(), 0u);
}

}  // namespace
}  // namespace nt
