// Message-loss robustness: the paper assumes eventually-reliable links with
// a finite but unknown number of lost messages (§2.1). Narwhal's quorum
// re-transmission (§4.1) and pull synchronizers must mask random loss; these
// tests inject i.i.d. drop rates and require continued liveness + safety.
#include <gtest/gtest.h>

#include "src/common/trace.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

struct LossRun {
  std::unique_ptr<Cluster> cluster;
  std::vector<std::vector<Digest>> sequences;
  std::vector<std::unique_ptr<LoadGenerator>> clients;
};

LossRun RunTuskWithLoss(double loss_rate, uint64_t seed, TimeDelta duration) {
  LossRun run;
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = seed;
  config.trace = true;  // Retransmission-bound assertions use trace counters.
  run.cluster = std::make_unique<Cluster>(config);
  run.cluster->faults().SetLossRate(loss_rate);
  run.sequences.resize(4);
  for (ValidatorId v = 0; v < 4; ++v) {
    run.cluster->tusk(v)->add_on_commit(
        [&run, v](const Tusk::Committed& c) { run.sequences[v].push_back(c.digest); });
  }
  run.cluster->metrics().set_observer(0);
  run.cluster->metrics().SetWindow(Seconds(3), duration);
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = duration;
  for (ValidatorId v = 0; v < 4; ++v) {
    run.clients.push_back(std::make_unique<LoadGenerator>(run.cluster.get(), v, 0, options));
    run.clients.back()->Start();
  }
  run.cluster->Start();
  run.cluster->scheduler().RunUntil(duration);
  return run;
}

TEST(LossTest, TuskToleratesModerateLoss) {
  LossRun run = RunTuskWithLoss(0.05, 11, Seconds(25));
  // Liveness: the DAG and commits keep flowing (retransmission covers loss).
  EXPECT_GT(run.cluster->primary(0)->dag().HighestRound(), 15u);
  EXPECT_GT(run.cluster->metrics().committed_txs(), 10000u);
  // Safety: full agreement.
  for (ValidatorId a = 0; a < 4; ++a) {
    for (ValidatorId b = a + 1; b < 4; ++b) {
      size_t common = std::min(run.sequences[a].size(), run.sequences[b].size());
      ASSERT_GT(common, 0u);
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(run.sequences[a][i], run.sequences[b][i]);
      }
    }
  }
}

TEST(LossTest, TuskSurvivesHeavyLoss) {
  LossRun run = RunTuskWithLoss(0.25, 13, Seconds(40));
  // A quarter of all messages vanish; progress slows but never stops.
  EXPECT_GT(run.cluster->primary(0)->dag().HighestRound(), 8u);
  EXPECT_GT(run.sequences[0].size(), 5u);
}

TEST(LossTest, LossCostsRetransmissions) {
  // The same workload with and without loss: loss forces strictly more
  // messages per committed transaction (the §4.1 re-transmission cost).
  LossRun clean = RunTuskWithLoss(0.0, 17, Seconds(15));
  LossRun lossy = RunTuskWithLoss(0.10, 17, Seconds(15));
  double clean_ratio = static_cast<double>(clean.cluster->network().messages_sent()) /
                       std::max<uint64_t>(1, clean.cluster->metrics().committed_txs());
  double lossy_ratio = static_cast<double>(lossy.cluster->network().messages_sent()) /
                       std::max<uint64_t>(1, lossy.cluster->metrics().committed_txs());
  EXPECT_GT(lossy_ratio, clean_ratio);
}

TEST(LossTest, BatchRetransmissionsBackOffGeometrically) {
  // Worker batch re-transmission must be geometric in the time a batch stays
  // unacked, not linear: with batch_retry_delay = 500 ms and the attempt cap
  // at 6 doublings, the k-th retry round fires at ~0.5 * (2^k - 1) s, so even
  // a batch stuck for the whole 40 s run sees at most 7 rounds. A linear
  // (fixed-delay) retry would fire ~80 times.
  LossRun run = RunTuskWithLoss(0.25, 13, Seconds(40));
  const Tracer* tracer = run.cluster->tracer();
  ASSERT_NE(tracer, nullptr);
  EXPECT_GT(tracer->counter("batch_retry/rounds"), 0u)
      << "25% loss must force some batch retransmission";
  EXPECT_LE(tracer->max_retry_rounds("batch_retry"), 7u)
      << "batch retries grew linearly instead of backing off";
}

TEST(LossTest, BatchedHsDegradesUnderLoss) {
  // Best-effort dissemination has no retransmission: under loss, proposals
  // reference batches some validators never received, forcing synchronous
  // fetches before votes — the §6 fragility in its mildest form.
  auto run_batched = [](double loss) {
    ClusterConfig config;
    config.system = SystemKind::kBatchedHs;
    config.num_validators = 4;
    config.seed = 19;
    Cluster cluster(config);
    cluster.faults().SetLossRate(loss);
    cluster.metrics().set_observer(0);
    cluster.metrics().SetWindow(Seconds(3), Seconds(20));
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    LoadGenerator::Options options;
    options.rate_tps = 500;
    options.stop_at = Seconds(20);
    for (ValidatorId v = 0; v < 4; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(20));
    return cluster.metrics().latency_seconds().Mean();
  };
  double clean_latency = run_batched(0.0);
  double lossy_latency = run_batched(0.10);
  EXPECT_GT(lossy_latency, clean_latency * 1.3) << "loss should visibly hurt batched-HS";
}

}  // namespace
}  // namespace nt
