// Tusk consensus unit tests: wave arithmetic, the commit rule, the exact
// Figure 5 scenario (leader lacking f+1 support skipped, then ordered by a
// later committed leader through a DAG path), deferral on incomplete
// histories, and order agreement across differently-scheduled replicas.
#include "src/tusk/tusk.h"

#include <gtest/gtest.h>

#include <memory>

namespace nt {
namespace {

// Coin with a scripted leader per wave (tests pick the DAG shape freely).
class ScriptedCoin : public ThresholdCoin {
 public:
  explicit ScriptedCoin(std::vector<uint32_t> leaders) : leaders_(std::move(leaders)) {}
  uint32_t LeaderOf(uint64_t wave, uint32_t committee_size) const override {
    if (wave - 1 < leaders_.size()) {
      return leaders_[wave - 1] % committee_size;
    }
    return static_cast<uint32_t>(wave % committee_size);
  }

 private:
  std::vector<uint32_t> leaders_;  // leaders_[w-1] = leader of wave w.
};

struct NullNode : NetNode {
  void OnMessage(uint32_t, const MessagePtr&) override {}
};

// Drives a single validator's Tusk instance over a hand-built DAG.
class TuskHarness {
 public:
  static constexpr uint32_t kN = 4;  // f = 1.

  explicit TuskHarness(std::vector<uint32_t> wave_leaders, Round gc_depth = 1000)
      : latency_(Millis(1)), coin_(std::move(wave_leaders)) {
    network_ = std::make_unique<Network>(&scheduler_, &latency_, &faults_, NetworkConfig{}, 1);
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < kN; ++v) {
      signers_.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(5, v)));
      infos.push_back(ValidatorInfo{signers_.back()->public_key(), 0});
    }
    committee_ = Committee(std::move(infos));
    // A sink node so synchronizer sends have a destination.
    uint32_t sink_id = network_->AddNode(&sink_, 0, network_->NewMachine());
    topology_.primary_of.assign(kN, sink_id);
    topology_.worker_of.assign(kN, {sink_id});

    primary_ = std::make_unique<Primary>(0, committee_, NarwhalConfig{}, network_.get(),
                                         &topology_, signers_[0].get());
    tusk_ = std::make_unique<Tusk>(primary_.get(), committee_, &coin_, gc_depth);
    tusk_->add_on_commit([this](const Tusk::Committed& c) { commits_.push_back(c); });
  }

  struct Node {
    Digest digest{};
    std::shared_ptr<BlockHeader> header;
    Certificate cert;
  };

  // Creates a certified block and injects it into the local DAG, notifying
  // Tusk as the primary would.
  Node Add(Round round, ValidatorId author, const std::vector<Node>& parents,
           bool with_header = true) {
    auto header = std::make_shared<BlockHeader>();
    header->author = author;
    header->round = round;
    for (const Node& p : parents) {
      header->parents.push_back(p.cert);
    }
    Node node;
    node.header = header;
    node.digest = header->ComputeDigest();
    node.cert.header_digest = node.digest;
    node.cert.round = round;
    node.cert.author = author;
    Bytes preimage = Certificate::VotePreimage(node.digest, round, author);
    for (uint32_t v = 0; v < committee_.quorum_threshold(); ++v) {
      node.cert.votes.emplace_back(v, signers_[v]->Sign(preimage));
    }
    Dag& dag = primary_->mutable_dag();
    EXPECT_TRUE(dag.AddCertificate(node.cert));
    if (with_header) {
      dag.AddHeader(header, node.digest);
    }
    tusk_->OnCertificate(node.cert);
    return node;
  }

  void AddHeaderLate(const Node& node) {
    primary_->mutable_dag().AddHeader(node.header, node.digest);
    tusk_->OnHeaderStored(node.digest);
  }

  // Builds a full round where every validator references all blocks of
  // `parents`.
  std::vector<Node> FullRound(Round round, const std::vector<Node>& parents) {
    std::vector<Node> nodes;
    for (ValidatorId v = 0; v < kN; ++v) {
      nodes.push_back(Add(round, v, parents));
    }
    return nodes;
  }

  bool Committed(const Node& node) const {
    for (const auto& c : commits_) {
      if (c.digest == node.digest) {
        return true;
      }
    }
    return false;
  }

  int CommitIndex(const Node& node) const {
    for (size_t i = 0; i < commits_.size(); ++i) {
      if (commits_[i].digest == node.digest) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  Scheduler scheduler_;
  FixedLatencyModel latency_;
  FaultController faults_;
  std::unique_ptr<Network> network_;
  NullNode sink_;
  Topology topology_;
  Committee committee_;
  std::vector<std::unique_ptr<Signer>> signers_;
  ScriptedCoin coin_;
  std::unique_ptr<Primary> primary_;
  std::unique_ptr<Tusk> tusk_;
  std::vector<Tusk::Committed> commits_;
};

TEST(TuskTest, WaveRoundArithmetic) {
  // Waves of 3 rounds with third/first piggybacking: wave w = (2w-1, 2w, 2w+1).
  EXPECT_EQ(Tusk::WaveFirstRound(1), 1u);
  EXPECT_EQ(Tusk::WaveSecondRound(1), 2u);
  EXPECT_EQ(Tusk::WaveThirdRound(1), 3u);
  EXPECT_EQ(Tusk::WaveFirstRound(2), 3u);  // Piggybacked on wave 1's third.
  EXPECT_EQ(Tusk::WaveThirdRound(2), 5u);
}

TEST(TuskTest, CommitsLeaderWithSupport) {
  TuskHarness h({0});
  auto genesis = h.FullRound(0, {});
  auto r1 = h.FullRound(1, genesis);  // Leader = validator 0's round-1 block.
  auto r2 = h.FullRound(2, r1);       // All 4 reference the leader: 4 >= f+1.
  EXPECT_TRUE(h.commits_.empty());    // Wave incomplete: coin not yet revealed.
  auto r3 = h.FullRound(3, r2);
  EXPECT_TRUE(h.Committed(r1[0]));
  EXPECT_EQ(h.tusk_->last_committed_wave(), 1u);
  // The leader's causal history (genesis + round 1 blocks it references)
  // is committed with it, leader last among them.
  EXPECT_TRUE(h.Committed(genesis[0]));
  EXPECT_LT(h.CommitIndex(genesis[0]), h.CommitIndex(r1[0]));
}

TEST(TuskTest, SkipsLeaderWithoutSupport) {
  TuskHarness h({3, 2});
  auto genesis = h.FullRound(0, {});
  auto r1 = h.FullRound(1, genesis);
  // Round 2 blocks reference only validators 0-2's blocks: leader (3) gets
  // 0 < f+1 votes.
  std::vector<TuskHarness::Node> r1_no_leader = {r1[0], r1[1], r1[2]};
  std::vector<TuskHarness::Node> r2;
  for (ValidatorId v = 0; v < 4; ++v) {
    r2.push_back(h.Add(2, v, r1_no_leader));
  }
  auto r3 = h.FullRound(3, r2);
  EXPECT_FALSE(h.Committed(r1[3]));
  EXPECT_EQ(h.tusk_->last_committed_wave(), 0u);
  EXPECT_EQ(h.tusk_->skipped_leaders(), 1u);
}

// The paper's Figure 5: L1 (wave 1) has fewer than f+1 second-round votes
// and is skipped when round 3 is interpreted. L2 (wave 2) gets f+1 votes in
// round 4 and commits when round 5 completes. Since a path L2 -> L1 exists,
// L1 is ordered before L2.
TEST(TuskTest, Figure5ScenarioOrdersSkippedLeaderThroughPath) {
  TuskHarness h({/*wave1*/ 3, /*wave2*/ 0});
  auto genesis = h.FullRound(0, {});
  auto r1 = h.FullRound(1, genesis);
  const auto& l1 = r1[3];

  // Round 2: only validator 1's block references L1 (1 < f+1 = 2).
  std::vector<TuskHarness::Node> r2;
  r2.push_back(h.Add(2, 0, {r1[0], r1[1], r1[2]}));
  r2.push_back(h.Add(2, 1, {r1[0], r1[1], r1[2], l1}));  // The only L1 vote.
  r2.push_back(h.Add(2, 2, {r1[0], r1[1], r1[2]}));
  r2.push_back(h.Add(2, 3, {r1[0], r1[1], r1[2]}));

  // Round 3 completes wave 1: L1 must be skipped, nothing committed.
  // L2 = validator 0's round-3 block. Crucially its parents include
  // validator 1's round-2 block, which references L1 — the L2 -> L1 path.
  auto r3 = h.FullRound(3, r2);
  const auto& l2 = r3[0];
  EXPECT_TRUE(h.commits_.empty());
  EXPECT_EQ(h.tusk_->skipped_leaders(), 1u);

  // Round 4: f+1 = 2 blocks vote for L2.
  std::vector<TuskHarness::Node> r4;
  r4.push_back(h.Add(4, 0, {r3[0], r3[1], r3[2]}));
  r4.push_back(h.Add(4, 1, {r3[0], r3[1], r3[3]}));
  r4.push_back(h.Add(4, 2, {r3[1], r3[2], r3[3]}));
  r4.push_back(h.Add(4, 3, {r3[1], r3[2], r3[3]}));

  // Round 5 completes wave 2: L2 commits, and L1 is ordered before it.
  h.FullRound(5, r4);
  EXPECT_TRUE(h.Committed(l2));
  EXPECT_TRUE(h.Committed(l1));
  EXPECT_LT(h.CommitIndex(l1), h.CommitIndex(l2));
  EXPECT_EQ(h.tusk_->last_committed_wave(), 2u);
  // Every commit callback is ordered: the anchor's history precedes it.
  for (size_t i = 1; i < h.commits_.size(); ++i) {
    EXPECT_LE(h.commits_[i - 1].wave, h.commits_[i].wave);
  }
}

TEST(TuskTest, DefersCommitOnMissingHeaderThenRecovers) {
  TuskHarness h({0});
  // Validator 2's genesis header is withheld (certificate only); it is in
  // the causal history of every round-1 block, so the wave-1 commit must
  // wait for it.
  std::vector<TuskHarness::Node> genesis;
  for (ValidatorId v = 0; v < 4; ++v) {
    genesis.push_back(h.Add(0, v, {}, /*with_header=*/v != 2));
  }
  auto r1 = h.FullRound(1, genesis);
  auto r2 = h.FullRound(2, r1);
  h.FullRound(3, r2);
  EXPECT_TRUE(h.commits_.empty());
  h.AddHeaderLate(genesis[2]);
  EXPECT_TRUE(h.Committed(r1[0]));
  EXPECT_TRUE(h.Committed(genesis[2]));
  // The withheld header is ordered within the history, before the leader.
  EXPECT_LT(h.CommitIndex(genesis[2]), h.CommitIndex(r1[0]));
}

TEST(TuskTest, AbsentLeaderCertificateSkipsWave) {
  TuskHarness h({3, 0});
  auto genesis = h.FullRound(0, {});
  // Validator 3 (wave-1 leader) produces no round-1 block at all.
  std::vector<TuskHarness::Node> r1;
  for (ValidatorId v = 0; v < 3; ++v) {
    r1.push_back(h.Add(1, v, genesis));
  }
  auto r2 = h.FullRound(2, r1);
  auto r3 = h.FullRound(3, r2);
  EXPECT_EQ(h.tusk_->last_committed_wave(), 0u);
  // Wave 2 commits normally.
  auto r4 = h.FullRound(4, r3);
  h.FullRound(5, r4);
  EXPECT_EQ(h.tusk_->last_committed_wave(), 2u);
  EXPECT_TRUE(h.Committed(r3[0]));
}

TEST(TuskTest, GcAdvancesWithCommits) {
  const Round kGcDepth = 2;
  TuskHarness h({0, 0, 0, 0, 0, 0, 0, 0}, kGcDepth);
  std::vector<TuskHarness::Node> prev = h.FullRound(0, {});
  for (Round r = 1; r <= 9; ++r) {
    prev = h.FullRound(r, prev);
  }
  // Waves 1..4 committed (leader rounds 1,3,5,7): GC horizon follows.
  EXPECT_GE(h.tusk_->last_committed_wave(), 3u);
  EXPECT_GT(h.primary_->dag().gc_round(), 0u);
  EXPECT_LE(h.primary_->dag().gc_round(), 7u);
}

// Order agreement: two replicas receive the same DAG under different
// interleavings (one sees whole rounds, the other per-author streams) and
// must emit identical commit sequences.
TEST(TuskTest, OrderAgreementAcrossDeliverySchedules) {
  auto run = [](bool author_major) {
    TuskHarness h({1, 2, 3, 0, 1});
    std::vector<std::vector<TuskHarness::Node>> rounds;
    std::vector<TuskHarness::Node> prev;
    if (author_major) {
      // Same DAG, but authors within each round added in reverse order.
      for (Round r = 0; r <= 11; ++r) {
        std::vector<TuskHarness::Node> nodes(4);
        for (int v = 3; v >= 0; --v) {
          nodes[v] = h.Add(r, static_cast<ValidatorId>(v), prev);
        }
        prev = nodes;
      }
    } else {
      for (Round r = 0; r <= 11; ++r) {
        prev = h.FullRound(r, prev);
      }
    }
    std::vector<Digest> sequence;
    for (const auto& c : h.commits_) {
      sequence.push_back(c.digest);
    }
    return sequence;
  };
  auto seq_a = run(false);
  auto seq_b = run(true);
  EXPECT_FALSE(seq_a.empty());
  EXPECT_EQ(seq_a, seq_b);
}

}  // namespace
}  // namespace nt
