#include "src/common/bytes.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = ToHex(data);
  EXPECT_EQ(hex, "0001abff7f");
  auto back = FromHex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(ToHex(Bytes{}), "");
  auto back = FromHex("");
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(BytesTest, HexUppercaseAccepted) {
  auto v = FromHex("AbCdEf");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (Bytes{0xab, 0xcd, 0xef}));
}

TEST(BytesTest, HexRejectsOddLength) { EXPECT_FALSE(FromHex("abc").has_value()); }

TEST(BytesTest, HexRejectsNonHexChars) {
  EXPECT_FALSE(FromHex("zz").has_value());
  EXPECT_FALSE(FromHex("a ").has_value());
  EXPECT_FALSE(FromHex("0x").has_value());
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3, 4};
  Bytes b = {1, 2, 3, 4};
  Bytes c = {1, 2, 3, 5};
  EXPECT_TRUE(ConstantTimeEqual(a.data(), b.data(), a.size()));
  EXPECT_FALSE(ConstantTimeEqual(a.data(), c.data(), a.size()));
  EXPECT_TRUE(ConstantTimeEqual(a.data(), c.data(), 3));  // Prefix equal.
  EXPECT_TRUE(ConstantTimeEqual(a.data(), b.data(), 0));  // Empty: equal.
}

}  // namespace
}  // namespace nt
