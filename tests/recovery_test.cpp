// Crash–restart recovery (the paper's §6 claim that a Narwhal validator
// rejoins from its write-ahead state): a restarted validator is rebuilt from
// its durable stores, re-derives its round and vote ledger, pulls the DAG
// suffix it missed, and rejoins consensus — without equivocating on any
// round it signed before the crash and without re-delivering any commit.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/hotstuff/payload.h"
#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

constexpr ValidatorId kVictim = 1;
constexpr TimePoint kCrashAt = Seconds(2);
constexpr TimePoint kRecoverAt = Seconds(5);
constexpr TimePoint kRunEnd = Seconds(15);

struct RecoveryRun {
  std::unique_ptr<Cluster> cluster;
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  // Per-validator committed digest sequence (checker-side state; survives
  // the victim's rebuild because the harness owns it).
  std::vector<std::vector<Digest>> commits;
  std::vector<TimePoint> last_commit;
  // (round, author) -> distinct header digests stored anywhere.
  std::map<std::pair<Round, ValidatorId>, std::set<Digest>> authored;
  uint64_t rebuilt_calls = 0;
};

RecoveryRun RunWithRestart(SystemKind system, uint64_t seed) {
  RecoveryRun run;
  ClusterConfig config;
  config.system = system;
  config.num_validators = 4;
  config.seed = seed;
  run.cluster = std::make_unique<Cluster>(config);
  Cluster& cluster = *run.cluster;
  run.commits.resize(4);
  run.last_commit.resize(4, -1);

  // Hook wiring is re-callable: a rebuilt validator's objects are new, so
  // the cluster re-invokes this through set_on_validator_rebuilt.
  auto wire = [&run, &cluster](ValidatorId v) {
    cluster.primary(v)->add_on_header_stored([&run, &cluster, v](const Digest& digest) {
      if (auto header = cluster.primary(v)->dag().GetHeader(digest)) {
        run.authored[{header->round, header->author}].insert(digest);
      }
    });
    auto on_commit = [&run, &cluster, v](const Digest& digest) {
      run.commits[v].push_back(digest);
      run.last_commit[v] = cluster.scheduler().now();
    };
    if (cluster.tusk(v) != nullptr) {
      cluster.tusk(v)->add_on_commit(
          [on_commit](const Tusk::Committed& c) { on_commit(c.digest); });
    } else if (cluster.bullshark(v) != nullptr) {
      cluster.bullshark(v)->add_on_commit(
          [on_commit](const Bullshark::Committed& c) { on_commit(c.digest); });
    } else if (auto* np = dynamic_cast<NarwhalProvider*>(cluster.provider(v))) {
      np->add_on_header_commit(
          [on_commit](const Digest& d, const std::shared_ptr<const BlockHeader>&) {
            on_commit(d);
          });
    }
  };
  for (ValidatorId v = 0; v < 4; ++v) {
    wire(v);
  }
  cluster.set_on_validator_rebuilt([&run, wire](ValidatorId v) {
    ++run.rebuilt_calls;
    wire(v);
  });

  cluster.RestartValidator(kVictim, kCrashAt, kRecoverAt);

  LoadGenerator::Options options;
  options.rate_tps = 400;
  options.stop_at = kRunEnd;
  for (ValidatorId v = 0; v < 4; ++v) {
    run.clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    run.clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(kRunEnd);
  return run;
}

void ExpectCleanRejoin(const RecoveryRun& run) {
  const Cluster& cluster = *run.cluster;
  // The rebuild happened, exactly once, and replayed real state.
  EXPECT_EQ(run.rebuilt_calls, 1u);
  ASSERT_EQ(cluster.recovery_stats().size(), 1u);
  const Cluster::RecoveryStats& stats = cluster.recovery_stats()[0];
  EXPECT_EQ(stats.validator, kVictim);
  EXPECT_EQ(stats.recovered_at, kRecoverAt);
  EXPECT_GT(stats.records_replayed, 0u);
  EXPECT_GT(stats.resume_round, 0u);

  // The victim rejoined: it commits again well after recovery.
  EXPECT_GT(run.last_commit[kVictim], kRecoverAt + Seconds(2));

  // Exactly-once delivery across the crash: no digest committed twice.
  std::set<Digest> seen;
  for (const Digest& d : run.commits[kVictim]) {
    EXPECT_TRUE(seen.insert(d).second) << "victim re-delivered a commit after restart";
  }

  // Post-recovery commits extend the pre-crash prefix: the victim's full
  // sequence is a prefix of (or extends) every peer's sequence.
  for (ValidatorId v = 0; v < 4; ++v) {
    size_t common = std::min(run.commits[kVictim].size(), run.commits[v].size());
    for (size_t i = 0; i < common; ++i) {
      ASSERT_EQ(run.commits[kVictim][i], run.commits[v][i])
          << "victim diverges from validator " << v << " at commit #" << i;
    }
  }

  // No equivocation through amnesia: at most one header digest per round
  // authored by the restarted validator, across every peer's view.
  for (const auto& [key, digests] : run.authored) {
    if (key.second == kVictim) {
      EXPECT_LE(digests.size(), 1u)
          << "victim authored " << digests.size() << " headers for round " << key.first;
    }
  }
}

TEST(RecoveryTest, TuskValidatorRestartsAndRejoins) {
  RecoveryRun run = RunWithRestart(SystemKind::kTusk, 7);
  ExpectCleanRejoin(run);
  // Sanity: the healthy committee committed substantially.
  EXPECT_GT(run.commits[0].size(), 20u);
}

TEST(RecoveryTest, BullsharkValidatorRestartsAndRejoins) {
  // The victim goes down mid-anchor-chain; recovery must restore the
  // committed-wave cursor from the 'S' meta record so resumed delivery
  // extends — never re-plays or skips — the pre-crash anchor chain.
  RecoveryRun run = RunWithRestart(SystemKind::kBullshark, 7);
  ExpectCleanRejoin(run);
  EXPECT_GT(run.commits[0].size(), 20u);
}

TEST(RecoveryTest, NarwhalHsValidatorRestartsAndRejoins) {
  RecoveryRun run = RunWithRestart(SystemKind::kNarwhalHs, 8);
  ExpectCleanRejoin(run);
  EXPECT_GT(run.commits[0].size(), 10u);
}

TEST(RecoveryTest, RestartIsDeterministic) {
  RecoveryRun a = RunWithRestart(SystemKind::kTusk, 11);
  RecoveryRun b = RunWithRestart(SystemKind::kTusk, 11);
  EXPECT_EQ(a.cluster->scheduler().event_hash(), b.cluster->scheduler().event_hash());
  EXPECT_EQ(a.commits[kVictim], b.commits[kVictim]);
}

TEST(RecoveryTest, UnsupportedSystemDegradesToPermanentCrash) {
  RecoveryRun run = RunWithRestart(SystemKind::kDagRider, 9);
  // DagRider has no rebuild path: the restart degrades to a permanent crash
  // (logged), the validator never comes back, and nothing is rebuilt.
  EXPECT_EQ(run.rebuilt_calls, 0u);
  EXPECT_TRUE(run.cluster->recovery_stats().empty());
  EXPECT_TRUE(run.cluster->IsValidatorCrashed(kVictim));
  // The remaining 3-of-4 committee stays live (the harness only hooks
  // Tusk/NarwhalHs commits, so assert on DAG progress instead).
  EXPECT_GT(run.cluster->primary(0)->round(), 20u);
}

}  // namespace
}  // namespace nt
