// The simulated network fabric: latency, bandwidth queues, per-machine
// processing, FIFO streams, and fault injection.
#include "src/net/network.h"

#include <gtest/gtest.h>

#include <vector>

namespace nt {
namespace {

struct TestMsg : Message {
  size_t size;
  int tag;
  explicit TestMsg(size_t s, int t = 0) : size(s), tag(t) {}
  size_t WireSize() const override { return size; }
  MessageTypeId TypeId() const override { return MessageTypeId::kTest; }
};

struct Recorder : NetNode {
  struct Delivery {
    uint32_t from;
    int tag;
    TimePoint at;
  };
  std::vector<Delivery> deliveries;
  Scheduler* sched = nullptr;

  void OnMessage(uint32_t from, const MessagePtr& msg) override {
    auto test = std::dynamic_pointer_cast<const TestMsg>(msg);
    deliveries.push_back({from, test != nullptr ? test->tag : -1, sched->now()});
  }
};

struct NetFixture {
  Scheduler sched;
  FixedLatencyModel latency{Millis(10)};
  FaultController faults;
  NetworkConfig config;
  std::unique_ptr<Network> net;
  Recorder a, b;
  uint32_t a_id = 0, b_id = 0;

  explicit NetFixture(NetworkConfig cfg = {}) : config(cfg) {
    config.per_message_overhead = 0;
    net = std::make_unique<Network>(&sched, &latency, &faults, config, 1);
    a.sched = &sched;
    b.sched = &sched;
    a_id = net->AddNode(&a, 0, net->NewMachine());
    b_id = net->AddNode(&b, 0, net->NewMachine());
  }
};

TEST(NetworkTest, DeliversWithPropagationDelay) {
  NetFixture f;
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(100));
  f.sched.RunUntilIdle();
  ASSERT_EQ(f.b.deliveries.size(), 1u);
  // 100B at 10Gbps is well under a microsecond of transmit time each way.
  EXPECT_GE(f.b.deliveries[0].at, Millis(10));
  EXPECT_LT(f.b.deliveries[0].at, Millis(11));
  EXPECT_EQ(f.b.deliveries[0].from, f.a_id);
}

TEST(NetworkTest, BandwidthSerializesLargeSends) {
  NetworkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1 MB/s so transmission time dominates.
  cfg.processing_Bps = 0;   // Disable the processing stage for this test.
  NetFixture f(cfg);
  // Two 1MB messages: the second's transmission starts after the first's.
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(1000 * 1000, 1));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(1000 * 1000, 2));
  f.sched.RunUntilIdle();
  ASSERT_EQ(f.b.deliveries.size(), 2u);
  // First: ~1s egress + 10ms prop + ~1s ingress = ~2.01s.
  EXPECT_NEAR(ToSeconds(f.b.deliveries[0].at), 2.01, 0.05);
  // Second queues behind the first on both NICs: ~1s later.
  EXPECT_NEAR(ToSeconds(f.b.deliveries[1].at), 3.01, 0.05);
  EXPECT_EQ(f.b.deliveries[0].tag, 1);
  EXPECT_EQ(f.b.deliveries[1].tag, 2);
}

TEST(NetworkTest, ProcessingStageThrottlesBulkPayloads) {
  NetworkConfig cfg;
  cfg.processing_Bps = 1e6;  // 1 MB/s data path.
  cfg.processing_min_bytes = 4096;
  NetFixture f(cfg);
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(500 * 1000, 1));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(100, 2));  // Metadata: skips queue.
  f.sched.RunUntilIdle();
  ASSERT_EQ(f.b.deliveries.size(), 2u);
  // Bulk message: 10ms prop + 0.5s processing.
  EXPECT_EQ(f.b.deliveries[0].tag, 1);
  EXPECT_NEAR(ToSeconds(f.b.deliveries[0].at), 0.51, 0.05);
  // The small message skips the processing queue but the per-machine-pair
  // stream is FIFO, so it lands right after the bulk message.
  EXPECT_EQ(f.b.deliveries[1].tag, 2);
  EXPECT_NEAR(ToSeconds(f.b.deliveries[1].at), 0.51, 0.05);
}

TEST(NetworkTest, LocalDeliveryBetweenCollocatedNodes) {
  Scheduler sched;
  FixedLatencyModel latency{Millis(50)};
  NetworkConfig cfg;
  Network net(&sched, &latency, nullptr, cfg, 1);
  Recorder a, b;
  a.sched = &sched;
  b.sched = &sched;
  uint32_t machine = net.NewMachine();
  uint32_t a_id = net.AddNode(&a, 0, machine);
  uint32_t b_id = net.AddNode(&b, 0, machine);
  net.Send(a_id, b_id, std::make_shared<TestMsg>(1000 * 1000));
  sched.RunUntilIdle();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_LE(b.deliveries[0].at, Millis(1));  // IPC, not the WAN.
}

TEST(NetworkTest, CrashedSourceSendsNothing) {
  NetFixture f;
  f.faults.CrashAt(f.a_id, 0);
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));
  f.sched.RunUntilIdle();
  EXPECT_TRUE(f.b.deliveries.empty());
  EXPECT_EQ(f.net->messages_dropped(), 1u);
}

TEST(NetworkTest, CrashedDestinationDropsAtDelivery) {
  NetFixture f;
  f.faults.CrashAt(f.b_id, Millis(5));  // Crashes while the message is in flight.
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));
  f.sched.RunUntilIdle();
  EXPECT_TRUE(f.b.deliveries.empty());
}

TEST(NetworkTest, CrashTimeIsRespected) {
  NetFixture f;
  f.faults.CrashAt(f.a_id, Millis(100));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));  // Before crash: delivered.
  f.sched.RunUntil(Millis(200));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));  // After crash: dropped.
  f.sched.RunUntilIdle();
  EXPECT_EQ(f.b.deliveries.size(), 1u);
}

TEST(NetworkTest, PartitionDefersDelivery) {
  NetFixture f;
  f.faults.Isolate(f.b_id, 0, Seconds(5));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));
  f.sched.RunUntilIdle();
  ASSERT_EQ(f.b.deliveries.size(), 1u);
  // Deferred to the heal time plus a fresh propagation delay.
  EXPECT_GE(f.b.deliveries[0].at, Seconds(5));
  EXPECT_LT(f.b.deliveries[0].at, Seconds(5) + Millis(20));
}

TEST(NetworkTest, AsynchronyWindowInflatesLatency) {
  NetFixture f;
  f.faults.AddAsynchronyWindow(0, Seconds(10), 100.0);
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));
  f.sched.RunUntilIdle();
  ASSERT_EQ(f.b.deliveries.size(), 1u);
  EXPECT_NEAR(ToSeconds(f.b.deliveries[0].at), 1.0, 0.05);  // 10ms x100.
}

TEST(NetworkTest, RandomLossDropsSomeMessages) {
  NetFixture f;
  f.faults.SetLossRate(0.5);
  for (int i = 0; i < 200; ++i) {
    f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(10));
  }
  f.sched.RunUntilIdle();
  EXPECT_GT(f.b.deliveries.size(), 50u);
  EXPECT_LT(f.b.deliveries.size(), 150u);
}

TEST(NetworkTest, StatisticsAreCounted) {
  NetFixture f;
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(100));
  f.sched.RunUntilIdle();
  EXPECT_EQ(f.net->messages_sent(), 1u);
  EXPECT_EQ(f.net->messages_delivered(), 1u);
  EXPECT_EQ(f.net->bytes_sent(), 100u);
}

TEST(NetworkTest, PerTypeStatisticsAccumulate) {
  NetFixture f;
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(100));
  f.net->Send(f.a_id, f.b_id, std::make_shared<TestMsg>(50));
  f.sched.RunUntilIdle();
  const auto& stats = f.net->type_stats();
  auto it = stats.find("Test");
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.messages, 2u);
  EXPECT_EQ(it->second.bytes, 150u);
}

TEST(WanLatencyTest, MatrixIsSymmetricAndSamplesJitter) {
  WanLatencyModel wan;
  Rng rng(42);
  for (uint32_t i = 0; i < kWanRegionCount; ++i) {
    for (uint32_t j = 0; j < kWanRegionCount; ++j) {
      EXPECT_EQ(wan.Mean(i, j), wan.Mean(j, i));
    }
  }
  // Samples cluster near the mean for a long link.
  TimeDelta mean = wan.Mean(kUsEast1, kApSoutheast2);
  for (int i = 0; i < 100; ++i) {
    TimeDelta sample = wan.Sample(kUsEast1, kApSoutheast2, rng);
    EXPECT_GT(sample, mean * 9 / 10);
    EXPECT_LT(sample, mean * 2);
  }
}

TEST(FaultControllerTest, EarliestReachableHandlesOverlaps) {
  FaultController faults;
  faults.Isolate(1, Millis(10), Millis(50));
  faults.Isolate(2, Millis(40), Millis(90));
  // At t=20: node 1 isolated until 50; then node 2 until 90.
  EXPECT_EQ(faults.EarliestReachable(1, 2, Millis(20)), Millis(90));
  EXPECT_EQ(faults.EarliestReachable(1, 2, Millis(95)), Millis(95));
  EXPECT_EQ(faults.EarliestReachable(3, 4, Millis(20)), Millis(20));
}

}  // namespace
}  // namespace nt
