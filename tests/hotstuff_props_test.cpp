// Parameterized adversity sweep for the HotStuff family: combinations of
// crash faults, message loss, and asynchrony windows across seeds and
// mempool modes. The invariant under every combination is safety (identical
// commit prefixes); liveness is asserted wherever quorum and eventual
// synchrony hold.
#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

struct AdversityParams {
  SystemKind system;
  uint32_t nodes;
  uint32_t faults;
  double loss;
  bool async_window;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<AdversityParams>& info) {
  const AdversityParams& p = info.param;
  std::string system = p.system == SystemKind::kBatchedHs ? "batched" : "narwhalhs";
  return system + "_n" + std::to_string(p.nodes) + "_f" + std::to_string(p.faults) + "_l" +
         std::to_string(static_cast<int>(p.loss * 100)) + (p.async_window ? "_async" : "") +
         "_s" + std::to_string(p.seed);
}

class HotStuffAdversityTest : public ::testing::TestWithParam<AdversityParams> {};

TEST_P(HotStuffAdversityTest, SafetyAlwaysLivenessWhenPossible) {
  const AdversityParams& p = GetParam();
  const TimePoint kEnd = Seconds(40);

  ClusterConfig config;
  config.system = p.system;
  config.num_validators = p.nodes;
  config.seed = p.seed;
  Cluster cluster(config);
  for (uint32_t i = 0; i < p.faults; ++i) {
    cluster.CrashValidator(p.nodes - 1 - i, Seconds(2 + 3 * i));  // Staggered crashes.
  }
  cluster.faults().SetLossRate(p.loss);
  if (p.async_window) {
    cluster.faults().AddAsynchronyWindow(Seconds(8), Seconds(16), 20.0);
  }

  std::vector<std::vector<Digest>> sequences(p.nodes);
  for (ValidatorId v = 0; v < p.nodes; ++v) {
    cluster.hotstuff(v)->set_on_commit([&sequences, v](const HsBlock& block, View) {
      sequences[v].push_back(block.ComputeDigest());
    });
  }
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  LoadGenerator::Options options;
  options.rate_tps = 2000.0 / p.nodes;
  options.stop_at = kEnd;
  for (ValidatorId v = 0; v < p.nodes; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(kEnd);

  // Safety: prefix agreement between every pair of alive validators.
  const uint32_t alive = p.nodes - p.faults;
  for (uint32_t a = 0; a < alive; ++a) {
    for (uint32_t b = a + 1; b < alive; ++b) {
      size_t common = std::min(sequences[a].size(), sequences[b].size());
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(sequences[a][i], sequences[b][i])
            << "validators " << a << "/" << b << " diverge at " << i;
      }
    }
  }
  // Liveness: quorum survives every swept configuration (faults <= f), so
  // commits must keep happening after the adversity ends.
  ASSERT_GT(sequences[0].size(), 5u);
  EXPECT_GT(cluster.hotstuff(0)->current_view(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HotStuffAdversityTest,
    ::testing::Values(
        AdversityParams{SystemKind::kBatchedHs, 4, 0, 0.05, false, 1},
        AdversityParams{SystemKind::kBatchedHs, 4, 1, 0.0, false, 2},
        AdversityParams{SystemKind::kBatchedHs, 4, 1, 0.05, false, 3},
        AdversityParams{SystemKind::kBatchedHs, 7, 2, 0.02, true, 4},
        AdversityParams{SystemKind::kNarwhalHs, 4, 0, 0.05, false, 5},
        AdversityParams{SystemKind::kNarwhalHs, 4, 1, 0.05, false, 6},
        AdversityParams{SystemKind::kNarwhalHs, 7, 2, 0.02, true, 7},
        AdversityParams{SystemKind::kNarwhalHs, 10, 3, 0.05, true, 8}),
    ParamName);

}  // namespace
}  // namespace nt
