// Payload providers (the three mempool modes) in isolation: pool drain
// semantics, batched sealing/proposing/committing, re-proposal after failed
// views, fetch-before-vote, and Narwhal certificate selection.
#include "src/hotstuff/payload.h"

#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

TEST(SharedTxPoolTest, DrainRespectsAvailabilityAndBudget) {
  SharedTxPool pool;
  pool.Submit({10, 1000, {}, Millis(5)});
  pool.Submit({20, 2000, {{1, 0}}, Millis(5)});
  pool.Submit({30, 3000, {}, Millis(50)});  // Not yet gossiped.

  HsPayload payload;
  pool.Drain(Millis(10), /*max_bytes=*/10000, payload);
  EXPECT_EQ(payload.num_txs, 30u);  // First two chunks only (third unavailable).
  EXPECT_EQ(payload.payload_bytes, 3000u);
  EXPECT_EQ(payload.samples.size(), 1u);
  EXPECT_EQ(pool.pending_bytes(), 3000u);

  // Budget cap: a chunk that does not fit stays.
  HsPayload payload2;
  pool.Drain(Millis(100), /*max_bytes=*/2999, payload2);
  EXPECT_EQ(payload2.num_txs, 0u);
  pool.Drain(Millis(100), /*max_bytes=*/3000, payload2);
  EXPECT_EQ(payload2.num_txs, 30u);
  EXPECT_EQ(pool.pending_bytes(), 0u);
}

struct ProviderFixture : ::testing::Test {
  ProviderFixture() {
    network = std::make_unique<Network>(&scheduler, &latency, &faults, NetworkConfig{}, 1);
    std::vector<ValidatorInfo> infos(4);
    committee = Committee(infos);
  }

  Scheduler scheduler;
  FixedLatencyModel latency{Millis(10)};
  FaultController faults;
  std::unique_ptr<Network> network;
  Committee committee;
  BatchDirectory directory;
};

struct SinkNode : NetNode {
  std::vector<MessagePtr> received;
  void OnMessage(uint32_t, const MessagePtr& msg) override { received.push_back(msg); }
};

TEST_F(ProviderFixture, BatchedProviderSealsAndProposes) {
  BatchedProvider provider(0, committee, /*batch_size=*/1000, Millis(100), /*max_digests=*/2,
                           &directory);
  SinkNode peer;
  uint32_t self = network->AddNode(&peer, 0, network->NewMachine());
  uint32_t other = network->AddNode(&peer, 0, network->NewMachine());
  provider.BindNetwork(network.get(), self, {other});

  provider.Submit(5, 1200, {});  // Over batch size: seals immediately.
  scheduler.RunUntilIdle();
  EXPECT_EQ(provider.available_batches(), 1u);
  EXPECT_EQ(peer.received.size(), 1u);  // Best-effort broadcast, one shot.

  // Seal two more; proposals carry at most max_digests, oldest first, and do
  // NOT consume them (timed-out views must be re-proposable).
  provider.Submit(5, 1200, {});
  scheduler.RunUntilIdle();
  provider.Submit(5, 1200, {});
  scheduler.RunUntilIdle();
  HsPayload p1 = provider.GetPayload(1);
  EXPECT_EQ(p1.batch_digests.size(), 2u);
  HsPayload p2 = provider.GetPayload(2);
  EXPECT_EQ(p2.batch_digests, p1.batch_digests);  // Still uncommitted.

  // Committing the first proposal removes its digests from future proposals
  // and reports the transactions exactly once.
  uint64_t delivered = 0;
  provider.set_commit_sink([&](ValidatorId, uint64_t num, uint64_t, const auto&) {
    delivered += num;
  });
  provider.OnCommit(p1, 0);
  EXPECT_EQ(delivered, 10u);
  provider.OnCommit(p1, 0);  // Duplicate commit reference: no double count.
  EXPECT_EQ(delivered, 10u);
  HsPayload p3 = provider.GetPayload(3);
  ASSERT_EQ(p3.batch_digests.size(), 1u);
  EXPECT_EQ(p3.batch_digests[0], provider.GetPayload(3).batch_digests[0]);
}

TEST_F(ProviderFixture, BatchedProviderFetchesMissingBeforeReady) {
  BatchedProvider provider(0, committee, 1000, Millis(100), 32, &directory);
  SinkNode proposer;
  uint32_t self = network->AddNode(&proposer, 0, network->NewMachine());
  uint32_t proposer_id = network->AddNode(&proposer, 0, network->NewMachine());
  provider.BindNetwork(network.get(), self, {proposer_id});

  // A proposal references an unknown digest: not ready, fetch issued.
  auto batch = std::make_shared<Batch>();
  batch->num_txs = 3;
  Digest missing = batch->ComputeDigest();
  HsPayload payload;
  payload.kind = HsPayload::Kind::kBatchDigests;
  payload.batch_digests.push_back(missing);

  bool ready = false;
  EXPECT_FALSE(provider.CheckPayload(payload, proposer_id, [&] { ready = true; }));
  scheduler.RunUntilIdle();
  ASSERT_FALSE(proposer.received.empty());  // MsgBatchRequest went out.

  // The batch arrives: the deferred vote releases.
  provider.OnMessage(proposer_id, std::make_shared<MsgBatch>(batch, missing));
  EXPECT_TRUE(ready);
  // And now the payload checks out immediately.
  EXPECT_TRUE(provider.CheckPayload(payload, proposer_id, [] {}));
}

TEST(NarwhalProviderClusterTest, ProposesNewestUncommittedCertificate) {
  ClusterConfig config;
  config.system = SystemKind::kNarwhalHs;
  config.num_validators = 4;
  config.seed = 5;
  Cluster cluster(config);
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(6));

  // Certificates the HotStuff leader proposed always exist in the DAG and
  // commits follow the DAG's growth.
  EXPECT_GT(cluster.hotstuff(0)->committed_blocks(), 3u);
  EXPECT_GT(cluster.primary(0)->dag().HighestRound(), 8u);
}

TEST(MetricsTest, WindowAndOwnershipFiltering) {
  Scheduler scheduler;
  Metrics metrics(&scheduler);
  metrics.set_observer(0);
  metrics.SetWindow(Millis(100), Millis(200));

  std::vector<TxSample> samples = {{1, Millis(100)}};
  scheduler.RunUntil(Millis(50));
  metrics.OnCommit(0, 0, 10, 100, {});  // Before window: ignored.
  EXPECT_EQ(metrics.committed_txs(), 0u);

  scheduler.RunUntil(Millis(150));
  metrics.OnCommit(0, 1, 10, 100, samples);  // Observer counts tput...
  EXPECT_EQ(metrics.committed_txs(), 10u);
  EXPECT_EQ(metrics.latency_seconds().count(), 0u);  // ...but not owner-1 latency.
  metrics.OnCommit(1, 1, 10, 100, samples);  // Non-observer: latency only.
  EXPECT_EQ(metrics.committed_txs(), 10u);
  EXPECT_EQ(metrics.latency_seconds().count(), 1u);
  EXPECT_NEAR(metrics.latency_seconds().Mean(), 0.05, 1e-9);

  scheduler.RunUntil(Millis(250));
  metrics.OnCommit(0, 0, 10, 100, {});  // After window: ignored.
  EXPECT_EQ(metrics.committed_txs(), 10u);

  // Commit feedback works regardless of window.
  EXPECT_TRUE(metrics.IsSampleCommitted(1));
  EXPECT_FALSE(metrics.IsSampleCommitted(2));
}

}  // namespace
}  // namespace nt
