// Verified-certificate cache: LRU/GC unit behaviour, and integration with
// Certificate::Verify / VerifyAll — the same certificate arriving via two
// routes must cost one signature-set verification plus one cache probe.
#include "src/types/cert_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/runtime/metrics.h"
#include "src/types/types.h"

namespace nt {
namespace {

Digest Key(int i) { return Sha256::Hash("key" + std::to_string(i)); }

TEST(VerifiedCertCacheTest, LookupMissThenHit) {
  VerifiedCertCache cache(4);
  EXPECT_FALSE(cache.Lookup(Key(1)));
  cache.Insert(Key(1), 10);
  EXPECT_TRUE(cache.Lookup(Key(1)));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifiedCertCacheTest, LruEvictsOldestWhenFull) {
  VerifiedCertCache cache(3);
  cache.Insert(Key(1), 1);
  cache.Insert(Key(2), 1);
  cache.Insert(Key(3), 1);
  // Touch 1 so 2 becomes least-recently-used.
  EXPECT_TRUE(cache.Lookup(Key(1)));
  cache.Insert(Key(4), 1);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().lru_evictions, 1u);
  EXPECT_TRUE(cache.Lookup(Key(1)));
  EXPECT_FALSE(cache.Lookup(Key(2)));  // Evicted.
  EXPECT_TRUE(cache.Lookup(Key(3)));
  EXPECT_TRUE(cache.Lookup(Key(4)));
}

TEST(VerifiedCertCacheTest, DuplicateInsertDoesNotGrow) {
  VerifiedCertCache cache(4);
  cache.Insert(Key(1), 5);
  cache.Insert(Key(1), 5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(VerifiedCertCacheTest, GcEvictsBelowHorizonAndRejectsLateInserts) {
  VerifiedCertCache cache(16);
  cache.Insert(Key(1), 3);
  cache.Insert(Key(2), 7);
  cache.Insert(Key(3), 12);
  cache.OnGcRound(8);
  EXPECT_EQ(cache.stats().gc_evictions, 2u);
  EXPECT_FALSE(cache.Lookup(Key(1)));
  EXPECT_FALSE(cache.Lookup(Key(2)));
  EXPECT_TRUE(cache.Lookup(Key(3)));
  // Entries below the horizon can no longer be presented; don't admit them.
  cache.Insert(Key(4), 5);
  EXPECT_FALSE(cache.Lookup(Key(4)));
  // The horizon is monotone: a stale smaller value must not re-open it.
  cache.OnGcRound(2);
  cache.Insert(Key(5), 5);
  EXPECT_FALSE(cache.Lookup(Key(5)));
}

TEST(VerifiedCertCacheTest, ClearResetsEverything) {
  VerifiedCertCache cache(4);
  cache.Insert(Key(1), 3);
  cache.OnGcRound(2);
  cache.Lookup(Key(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Insert(Key(2), 1);  // Horizon reset: round 1 admissible again.
  EXPECT_TRUE(cache.Lookup(Key(2)));
}

// ---------------------------------------------------------------------------
// Integration with Certificate verification.
// ---------------------------------------------------------------------------

struct CertCacheIntegrationTest : ::testing::Test {
  static constexpr uint32_t kN = 4;

  CertCacheIntegrationTest() {
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < kN; ++v) {
      signers.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(137, v)));
      infos.push_back(ValidatorInfo{signers.back()->public_key(), 0});
    }
    committee = Committee(std::move(infos));
    VerifiedCertCache::Narwhal().Clear();
  }

  Certificate Certify(const Digest& digest, Round round, ValidatorId author) const {
    Certificate cert;
    cert.header_digest = digest;
    cert.round = round;
    cert.author = author;
    Bytes preimage = Certificate::VotePreimage(digest, round, author);
    for (uint32_t v = 0; v < committee.quorum_threshold(); ++v) {
      cert.votes.emplace_back(v, signers[v]->Sign(preimage));
    }
    return cert;
  }

  std::vector<std::unique_ptr<Signer>> signers;
  Committee committee;
};

TEST_F(CertCacheIntegrationTest, SecondVerifyIsACacheHit) {
  Certificate cert = Certify(Sha256::Hash("block"), 5, 1);
  EXPECT_TRUE(cert.Verify(committee, *signers[0]));
  auto s1 = VerifiedCertCache::Narwhal().stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.insertions, 1u);
  EXPECT_EQ(s1.hits, 0u);

  EXPECT_TRUE(cert.Verify(committee, *signers[0]));
  auto s2 = VerifiedCertCache::Narwhal().stats();
  EXPECT_EQ(s2.misses, 1u);  // No second signature verification pass.
  EXPECT_EQ(s2.insertions, 1u);
  EXPECT_EQ(s2.hits, 1u);
}

TEST_F(CertCacheIntegrationTest, TwoRoutesVerifyExactlyOnce) {
  // Route 1: direct Verify (certificate broadcast). Route 2: the same
  // certificate inside a parent set validated through VerifyAll (header
  // processing). The vote signatures must be checked exactly once.
  Certificate cert = Certify(Sha256::Hash("parent"), 3, 2);
  EXPECT_TRUE(cert.Verify(committee, *signers[0]));

  std::vector<Certificate> parents;
  parents.push_back(cert);
  parents.push_back(Certify(Sha256::Hash("other-parent"), 3, 0));
  EXPECT_TRUE(Certificate::VerifyAll(parents, committee, *signers[0]));

  auto s = VerifiedCertCache::Narwhal().stats();
  EXPECT_EQ(s.hits, 1u);        // `cert` via route 2.
  EXPECT_EQ(s.misses, 2u);      // `cert` route 1 + the other parent.
  EXPECT_EQ(s.insertions, 2u);  // Each distinct certificate verified once.
}

TEST_F(CertCacheIntegrationTest, ForgedCertificateIsNeverCached) {
  Certificate cert = Certify(Sha256::Hash("forged"), 4, 1);
  cert.votes[1].second[0] ^= 1;
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
  EXPECT_FALSE(cert.Verify(committee, *signers[0]));
  auto s = VerifiedCertCache::Narwhal().stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);  // Re-checked every time.
  EXPECT_EQ(s.insertions, 0u);
}

TEST_F(CertCacheIntegrationTest, VoteSetVariantIsADistinctEntry) {
  // Two certificates over the same header with different (equally valid)
  // vote sets must not share a cache entry.
  Digest d = Sha256::Hash("same-header");
  Certificate a = Certify(d, 6, 1);
  Certificate b = a;
  Bytes preimage = Certificate::VotePreimage(d, 6, 1);
  b.votes.erase(b.votes.begin());
  b.votes.emplace_back(3, signers[3]->Sign(preimage));
  EXPECT_TRUE(a.Verify(committee, *signers[0]));
  EXPECT_TRUE(b.Verify(committee, *signers[0]));
  auto s = VerifiedCertCache::Narwhal().stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.insertions, 2u);
}

TEST_F(CertCacheIntegrationTest, MetricsSurfaceCacheDeltas) {
  // Metrics snapshots the process-wide counters at construction and reports
  // per-run deltas.
  Certificate warmup = Certify(Sha256::Hash("pre-existing"), 1, 0);
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));

  Scheduler scheduler;
  Metrics metrics(&scheduler);
  EXPECT_EQ(metrics.cert_cache_hits(), 0u);
  EXPECT_EQ(metrics.cert_cache_misses(), 0u);

  Certificate cert = Certify(Sha256::Hash("during-run"), 2, 1);
  EXPECT_TRUE(cert.Verify(committee, *signers[0]));
  EXPECT_TRUE(cert.Verify(committee, *signers[0]));
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));
  EXPECT_EQ(metrics.cert_cache_misses(), 1u);
  EXPECT_EQ(metrics.cert_cache_hits(), 2u);
  EXPECT_DOUBLE_EQ(metrics.CertCacheHitRate(), 2.0 / 3.0);
}

TEST_F(CertCacheIntegrationTest, PerValidatorCachesVerifyIndependently) {
  // Two simulated validators each pass their own cache: the second validator
  // must NOT get a hit from the first one's verification — in a real
  // deployment each node does its own crypto work. (Before per-node caches,
  // validators 2..N of a single-process run rode the first one's singleton
  // entries and skipped ~(N-1)/N of the verification workload.)
  VerifiedCertCache cache_a;
  VerifiedCertCache cache_b;
  Certificate cert = Certify(Sha256::Hash("shared-cert"), 5, 1);

  EXPECT_TRUE(cert.Verify(committee, *signers[0], &cache_a));
  EXPECT_TRUE(cert.Verify(committee, *signers[1], &cache_b));
  EXPECT_EQ(cache_a.stats().misses, 1u);
  EXPECT_EQ(cache_a.stats().insertions, 1u);
  EXPECT_EQ(cache_b.stats().misses, 1u);  // Verified again, not shared.
  EXPECT_EQ(cache_b.stats().insertions, 1u);
  // The default singleton saw none of this traffic.
  EXPECT_EQ(VerifiedCertCache::Narwhal().stats().misses, 0u);
  EXPECT_EQ(VerifiedCertCache::Narwhal().stats().insertions, 0u);

  // Re-delivery to the same validator is still a local hit, and VerifyAll
  // honours the override too.
  EXPECT_TRUE(cert.Verify(committee, *signers[0], &cache_a));
  EXPECT_EQ(cache_a.stats().hits, 1u);
  EXPECT_TRUE(Certificate::VerifyAll({cert}, committee, *signers[1], &cache_b));
  EXPECT_EQ(cache_b.stats().hits, 1u);
}

TEST_F(CertCacheIntegrationTest, MetricsAggregateRegisteredCaches) {
  Scheduler scheduler;
  Metrics metrics(&scheduler);
  VerifiedCertCache cache_a;
  VerifiedCertCache cache_b;
  // Activity before registration is excluded from the run's deltas.
  Certificate pre = Certify(Sha256::Hash("pre-registration"), 1, 0);
  EXPECT_TRUE(pre.Verify(committee, *signers[0], &cache_a));
  metrics.RegisterCertCache(&cache_a);
  metrics.RegisterCertCache(&cache_b);
  EXPECT_EQ(metrics.cert_cache_hits(), 0u);
  EXPECT_EQ(metrics.cert_cache_misses(), 0u);

  Certificate cert = Certify(Sha256::Hash("registered-run"), 2, 1);
  EXPECT_TRUE(cert.Verify(committee, *signers[0], &cache_a));
  EXPECT_TRUE(cert.Verify(committee, *signers[0], &cache_a));
  EXPECT_TRUE(cert.Verify(committee, *signers[1], &cache_b));
  EXPECT_EQ(metrics.cert_cache_misses(), 2u);  // One per validator cache.
  EXPECT_EQ(metrics.cert_cache_hits(), 1u);
}

TEST_F(CertCacheIntegrationTest, MetricsClampWhenCountersMoveBackwards) {
  // Clear()/ResetStats() move a cache's counters below the metrics baseline;
  // the deltas must clamp to zero, not wrap to ~2^64.
  Certificate warmup = Certify(Sha256::Hash("will-be-cleared"), 1, 0);
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));  // Baseline: 1 hit, 1 miss.

  Scheduler scheduler;
  Metrics metrics(&scheduler);
  VerifiedCertCache cache_a;
  Certificate cert = Certify(Sha256::Hash("clamped"), 2, 1);
  EXPECT_TRUE(cert.Verify(committee, *signers[0], &cache_a));
  metrics.RegisterCertCache(&cache_a);

  VerifiedCertCache::Narwhal().Clear();  // Singleton counters fall below baseline.
  cache_a.ResetStats();                  // Registered cache falls below its baseline.
  EXPECT_EQ(metrics.cert_cache_hits(), 0u);
  EXPECT_EQ(metrics.cert_cache_misses(), 0u);
  EXPECT_DOUBLE_EQ(metrics.CertCacheHitRate(), 0.0);

  // Counters that climb back past the baseline resume counting.
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));   // Miss (cache cleared).
  EXPECT_TRUE(warmup.Verify(committee, *signers[0]));   // Hit.
  EXPECT_EQ(metrics.cert_cache_misses(), 0u);  // 1 < baseline 1 clamps... still 0.
  EXPECT_EQ(metrics.cert_cache_hits(), 0u);
  EXPECT_TRUE(Certify(Sha256::Hash("fresh"), 3, 2).Verify(committee, *signers[0]));
  EXPECT_EQ(metrics.cert_cache_misses(), 1u);  // 2 misses vs baseline 1.
}

}  // namespace
}  // namespace nt
