// HotStuff consensus: QC/TC validation, safety (identical committed
// sequences across validators under crashes and leader failures), liveness
// through timeout certificates, and view pipelining.
#include "src/hotstuff/hotstuff.h"

#include <gtest/gtest.h>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

namespace nt {
namespace {

// --------------------------------------------------------- unit-level checks

struct QcFixture : ::testing::Test {
  QcFixture() {
    std::vector<ValidatorInfo> infos;
    for (uint32_t v = 0; v < 4; ++v) {
      signers.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(31, v)));
      infos.push_back(ValidatorInfo{signers.back()->public_key(), 0});
    }
    committee = Committee(std::move(infos));
  }

  std::vector<std::unique_ptr<Signer>> signers;
  Committee committee;
};

TEST_F(QcFixture, QuorumCertVerifies) {
  QuorumCert qc;
  qc.block_digest = Sha256::Hash("block");
  qc.view = 7;
  Bytes preimage = QuorumCert::VotePreimage(qc.block_digest, qc.view);
  for (uint32_t v = 0; v < 3; ++v) {
    qc.votes.emplace_back(v, signers[v]->Sign(preimage));
  }
  EXPECT_TRUE(qc.Verify(committee, *signers[0]));

  QuorumCert wrong_view = qc;
  wrong_view.view = 8;
  EXPECT_FALSE(wrong_view.Verify(committee, *signers[0]));

  QuorumCert short_qc = qc;
  short_qc.votes.pop_back();
  EXPECT_FALSE(short_qc.Verify(committee, *signers[0]));

  QuorumCert dup = qc;
  dup.votes[2] = dup.votes[0];
  EXPECT_FALSE(dup.Verify(committee, *signers[0]));
}

TEST_F(QcFixture, GenesisQcIsExempt) {
  QuorumCert genesis;
  EXPECT_TRUE(genesis.IsGenesis());
  EXPECT_TRUE(genesis.Verify(committee, *signers[0]));
}

TEST_F(QcFixture, TimeoutCertVerifies) {
  TimeoutCert tc;
  tc.view = 3;
  Bytes preimage = TimeoutCert::VotePreimage(3);
  for (uint32_t v = 1; v < 4; ++v) {
    tc.votes.emplace_back(v, signers[v]->Sign(preimage));
  }
  EXPECT_TRUE(tc.Verify(committee, *signers[0]));
  tc.view = 4;
  EXPECT_FALSE(tc.Verify(committee, *signers[0]));
}

TEST_F(QcFixture, BlockDigestCoversPayloadAndChain) {
  HsBlock a;
  a.author = 1;
  a.view = 5;
  a.payload.kind = HsPayload::Kind::kTransactions;
  a.payload.num_txs = 10;
  HsBlock b = a;
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
  b.payload.num_txs = 11;
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
  HsBlock c = a;
  c.parent = Sha256::Hash("other-parent");
  EXPECT_NE(a.ComputeDigest(), c.ComputeDigest());
}

// ------------------------------------------------------ cluster-level checks

// Records each validator's commit sequence for agreement checks.
struct CommitLog {
  std::vector<std::vector<Digest>> per_validator;

  void Attach(Cluster& cluster, uint32_t n) {
    per_validator.resize(n);
    for (uint32_t v = 0; v < n; ++v) {
      cluster.hotstuff(v)->set_on_commit([this, v](const HsBlock& block, View) {
        per_validator[v].push_back(block.ComputeDigest());
      });
    }
  }

  // Every pair of sequences must be prefix-consistent (safety).
  void ExpectAgreement() const {
    for (size_t a = 0; a < per_validator.size(); ++a) {
      for (size_t b = a + 1; b < per_validator.size(); ++b) {
        size_t common = std::min(per_validator[a].size(), per_validator[b].size());
        for (size_t i = 0; i < common; ++i) {
          ASSERT_EQ(per_validator[a][i], per_validator[b][i])
              << "validators " << a << " and " << b << " disagree at index " << i;
        }
      }
    }
  }
};

ClusterConfig HsClusterConfig(uint32_t n, uint64_t seed) {
  ClusterConfig config;
  config.system = SystemKind::kBatchedHs;
  config.num_validators = n;
  config.seed = seed;
  return config;
}

TEST(HotStuffClusterTest, AllValidatorsCommitSameSequence) {
  Cluster cluster(HsClusterConfig(4, 3));
  CommitLog log;
  log.Attach(cluster, 4);
  LoadGenerator::Options options;
  options.rate_tps = 500;
  options.stop_at = Seconds(10);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  for (uint32_t v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));

  EXPECT_GT(log.per_validator[0].size(), 5u);
  log.ExpectAgreement();
}

TEST(HotStuffClusterTest, SafetyUnderCrashFaults) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Cluster cluster(HsClusterConfig(7, seed));  // f = 2.
    CommitLog log;
    log.Attach(cluster, 7);
    cluster.CrashValidator(6, 0);
    cluster.CrashValidator(5, Seconds(4));  // Crash mid-run.
    LoadGenerator::Options options;
    options.rate_tps = 300;
    options.stop_at = Seconds(20);
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    for (uint32_t v = 0; v < 7; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(20));

    // Liveness despite two crashes: the live validators keep committing.
    EXPECT_GT(log.per_validator[0].size(), 3u) << "seed " << seed;
    log.ExpectAgreement();
  }
}

TEST(HotStuffClusterTest, ViewsAdvancePastCrashedLeaders) {
  Cluster cluster(HsClusterConfig(4, 9));
  cluster.CrashValidator(3, 0);
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(15));
  // Views containing the crashed leader (every 4th) are skipped via TCs.
  EXPECT_GT(cluster.hotstuff(0)->current_view(), 10u);
  EXPECT_GT(cluster.hotstuff(0)->timeouts_fired(), 0u);
  EXPECT_GT(cluster.hotstuff(0)->committed_blocks(), 3u);
}

TEST(HotStuffClusterTest, RecoversAfterPartition) {
  Cluster cluster(HsClusterConfig(4, 5));
  CommitLog log;
  log.Attach(cluster, 4);
  // Validator 1 is unreachable for 5 seconds mid-run, then heals.
  cluster.IsolateValidator(1, Seconds(3), Seconds(8));
  LoadGenerator::Options options;
  options.rate_tps = 400;
  options.stop_at = Seconds(20);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  for (uint32_t v = 0; v < 4; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(20));

  log.ExpectAgreement();
  // The partitioned validator catches up to the rest after healing.
  EXPECT_GT(log.per_validator[1].size(), log.per_validator[0].size() / 2);
}

TEST(HotStuffClusterTest, NoProgressWithoutQuorum) {
  // 4 validators, 2 crashed: only 2 < 2f+1 = 3 remain; no commits ever.
  Cluster cluster(HsClusterConfig(4, 2));
  cluster.CrashValidator(3, 0);
  cluster.CrashValidator(2, 0);
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(15));
  EXPECT_EQ(cluster.hotstuff(0)->committed_blocks(), 0u);
}

}  // namespace
}  // namespace nt
