// Merkle accumulator: structure, proofs (all indices, all sizes including
// non-powers of two with node promotion), tamper rejection, and determinism.
#include "src/crypto/merkle.h"

#include <gtest/gtest.h>

namespace nt {
namespace {

std::vector<Digest> MakeLeaves(size_t n) {
  std::vector<Digest> leaves;
  for (size_t i = 0; i < n; ++i) {
    Digest d{};
    d[0] = static_cast<uint8_t>(i);
    d[1] = static_cast<uint8_t>(i >> 8);
    leaves.push_back(Sha256::Hash(d.data(), d.size()));
  }
  return leaves;
}

TEST(MerkleTest, EmptyTreeHasZeroRoot) {
  MerkleTree tree({});
  EXPECT_EQ(tree.root(), Digest{});
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(MerkleTest, SingleLeaf) {
  auto leaves = MakeLeaves(1);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::HashLeaf(leaves[0]));
  auto proof = tree.Prove(0);
  EXPECT_TRUE(proof.empty());
  EXPECT_TRUE(MerkleTree::Verify(tree.root(), leaves[0], proof));
}

TEST(MerkleTest, TwoLeaves) {
  auto leaves = MakeLeaves(2);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), MerkleTree::HashNode(MerkleTree::HashLeaf(leaves[0]),
                                              MerkleTree::HashLeaf(leaves[1])));
}

TEST(MerkleTest, AllProofsVerifyAllSizes) {
  // Powers of two and awkward odd sizes exercising node promotion.
  for (size_t n : {2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u, 100u}) {
    auto leaves = MakeLeaves(n);
    MerkleTree tree(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = tree.Prove(i);
      EXPECT_TRUE(MerkleTree::Verify(tree.root(), leaves[i], proof))
          << "n=" << n << " index=" << i;
    }
  }
}

TEST(MerkleTest, WrongLeafRejected) {
  auto leaves = MakeLeaves(10);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(3);
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), leaves[4], proof));
  Digest zero{};
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), zero, proof));
}

TEST(MerkleTest, TamperedProofRejected) {
  auto leaves = MakeLeaves(16);
  MerkleTree tree(leaves);
  auto proof = tree.Prove(5);
  ASSERT_FALSE(proof.empty());
  auto bad = proof;
  bad[0].sibling[0] ^= 1;
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), leaves[5], bad));
  bad = proof;
  bad[1].sibling_on_left = !bad[1].sibling_on_left;
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), leaves[5], bad));
}

TEST(MerkleTest, ProofForWrongIndexRejected) {
  auto leaves = MakeLeaves(8);
  MerkleTree tree(leaves);
  EXPECT_FALSE(MerkleTree::Verify(tree.root(), leaves[2], tree.Prove(6)));
}

TEST(MerkleTest, RootSensitiveToEveryLeaf) {
  auto leaves = MakeLeaves(9);
  MerkleTree base(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i][0] ^= 1;
    EXPECT_NE(MerkleTree(mutated).root(), base.root()) << "leaf " << i;
  }
  // Order matters.
  auto swapped = leaves;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(MerkleTree(swapped).root(), base.root());
}

TEST(MerkleTest, DomainSeparationPreventsLeafNodeConfusion) {
  // A leaf equal to HashNode(x, y) must not collide with the inner node.
  auto leaves = MakeLeaves(2);
  Digest inner = MerkleTree::HashNode(MerkleTree::HashLeaf(leaves[0]),
                                      MerkleTree::HashLeaf(leaves[1]));
  MerkleTree tree_of_inner({inner});
  MerkleTree tree(leaves);
  EXPECT_NE(tree_of_inner.root(), tree.root());
}

TEST(MerkleTest, ProofSizeIsLogarithmic) {
  auto leaves = MakeLeaves(1024);
  MerkleTree tree(leaves);
  EXPECT_EQ(tree.Prove(0).size(), 10u);
  EXPECT_EQ(tree.Prove(1023).size(), 10u);
}

}  // namespace
}  // namespace nt
