// Sharded execution lanes (src/shard/): deterministic key routing, the
// two-phase cross-shard apply at commit boundaries (lock at the source lane,
// credit at the destination), conservation of balance across lanes, the
// pending-queue path, agreement with the pure ReplayShards oracle (including
// divergence under the seeded lost-lock bug), the accounts/transfer workload,
// and end-to-end lane-digest agreement across a live Tusk cluster.
#include "src/shard/sharded_executor.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/check/oracle.h"
#include "src/common/codec.h"
#include "src/common/seeded_bugs.h"
#include "src/runtime/cluster.h"
#include "src/shard/router.h"
#include "src/shard/workload.h"

namespace nt {
namespace {

// ------------------------------------------------------------------ routing

TEST(ShardRouterTest, RoutingIsPureAndSpreadsKeys) {
  ShardRouter router(4);
  std::vector<uint32_t> hits(4, 0);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "account-" + std::to_string(i);
    ShardId s = router.Of(key);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, ShardRouter::Route(key, 4));  // Pure: same key, same lane.
    ++hits[s];
  }
  // FNV-1a over distinct keys should not starve any lane (exact counts are
  // pinned by determinism; this guards the spread).
  for (uint32_t h : hits) {
    EXPECT_GT(h, 150u);
  }
  // Degenerate lane counts: everything routes to lane 0.
  EXPECT_EQ(ShardRouter::Route("anything", 1), 0u);
  EXPECT_EQ(ShardRouter(0).num_shards(), 1u);
}

TEST(ShardRouterTest, MineAccountLandsOnTheTargetLane) {
  for (uint32_t lanes : {2u, 4u, 8u}) {
    for (ShardId target = 0; target < lanes; ++target) {
      std::string name = ShardRouter::MineAccount("acct", target, lanes);
      EXPECT_EQ(ShardRouter::Route(name, lanes), target) << name;
    }
  }
  // Deterministic: the same (prefix, shard, lanes) always mines the same name.
  EXPECT_EQ(ShardRouter::MineAccount("p", 1, 4), ShardRouter::MineAccount("p", 1, 4));
}

// ------------------------------------------------- two-phase state machine

TEST(TwoPhaseApplyTest, LockDebitChecksFundsAndCreditIsUnconditional) {
  KvStateMachine lane_a, lane_b;
  lane_a.Apply(ExecTx::Mint("alice", 100).Encode());
  EXPECT_EQ(lane_a.minted(), 100u);

  ExecTx tx = ExecTx::Transfer("alice", "bob", 30);
  Bytes wire = tx.Encode();
  EXPECT_EQ(lane_a.LockDebit(wire, tx), ExecStatus::kApplied);
  lane_b.ApplyCredit(wire, tx);
  EXPECT_EQ(lane_a.BalanceOf("alice"), 70u);
  EXPECT_EQ(lane_b.BalanceOf("bob"), 30u);
  // Conservation across the pair of lanes.
  EXPECT_EQ(lane_a.total_balance() + lane_b.total_balance(), 100u);

  // Overdraft: the lock rejects, no debit happens, and no credit must follow.
  ExecTx big = ExecTx::Transfer("alice", "bob", 1000);
  EXPECT_EQ(lane_a.LockDebit(big.Encode(), big), ExecStatus::kRejectedInsufficient);
  EXPECT_EQ(lane_a.BalanceOf("alice"), 70u);
  EXPECT_EQ(lane_a.rejected(), 1u);
}

TEST(TwoPhaseApplyTest, PhaseBytesKeepSplitAppliesOffTheWholeTxDigestChain) {
  // A lock/credit pair must not be digest-confusable with a whole-tx apply of
  // the same wire bytes (different phases, different chains).
  ExecTx tx = ExecTx::Transfer("a", "b", 1);
  Bytes wire = tx.Encode();
  KvStateMachine whole, split;
  whole.Apply(ExecTx::Mint("a", 10).Encode());
  split.Apply(ExecTx::Mint("a", 10).Encode());
  whole.Apply(wire);
  split.LockDebit(wire, tx);
  EXPECT_NE(whole.state_digest(), split.state_digest());
}

// ------------------------------------------------------- sharded executor

struct TestNet {
  std::map<Digest, std::shared_ptr<const Batch>> store;

  BatchRef Add(std::vector<Bytes> txs) {
    auto batch = std::make_shared<Batch>();
    batch->txs = std::move(txs);
    batch->num_txs = batch->txs.size();
    Digest d = batch->ComputeDigest();
    store[d] = batch;
    BatchRef ref;
    ref.digest = d;
    ref.num_txs = batch->num_txs;
    return ref;
  }

  Executor::BatchSource Source() {
    return [this](const BatchRef& ref) {
      auto it = store.find(ref.digest);
      return it == store.end() ? nullptr : it->second;
    };
  }

  static std::shared_ptr<const BlockHeader> Header(Round round, std::vector<BatchRef> refs) {
    auto header = std::make_shared<BlockHeader>();
    header->round = round;
    header->batches = std::move(refs);
    return header;
  }
};

// Accounts pre-mined onto specific lanes so tests control the routing.
std::string LaneAccount(const std::string& prefix, ShardId lane, uint32_t lanes) {
  return ShardRouter::MineAccount(prefix, lane, lanes);
}

TEST(ShardedExecutorTest, SingleLaneMatchesThePlainExecutorDigestChain) {
  TestNet net;
  std::vector<Bytes> txs = {ExecTx::Mint("alice", 50).Encode(),
                            ExecTx::Transfer("alice", "bob", 20).Encode(),
                            ExecTx::Put("color", {0xab}).Encode()};
  auto header = TestNet::Header(1, {net.Add(txs)});

  KvStateMachine plain;
  Executor executor(&plain, net.Source());
  executor.OnCommittedHeader(header);

  ShardedExecutor sharded(1, net.Source());
  sharded.OnCommittedHeader(header);

  // One lane degenerates to exactly the historical single-executor semantics:
  // byte-identical digest chains (no phase bytes on the whole-tx path).
  EXPECT_EQ(sharded.LaneDigests()[0], plain.state_digest());
  EXPECT_EQ(sharded.applied_txs(), executor.applied_txs());
  EXPECT_EQ(sharded.cross_shard_txs(), 0u);
}

TEST(ShardedExecutorTest, CrossShardTransferSequencesAtTheCommitBoundary) {
  const uint32_t kLanes = 4;
  std::string src = LaneAccount("src", 0, kLanes);
  std::string dst = LaneAccount("dst", 2, kLanes);

  TestNet net;
  ShardedExecutor executor(kLanes, net.Source());
  executor.OnCommittedHeader(TestNet::Header(1, {net.Add({ExecTx::Mint(src, 100).Encode()})}));
  executor.OnCommittedHeader(
      TestNet::Header(2, {net.Add({ExecTx::Transfer(src, dst, 40).Encode()})}));

  EXPECT_EQ(executor.lane(0).BalanceOf(src), 60u);
  EXPECT_EQ(executor.lane(2).BalanceOf(dst), 40u);
  EXPECT_EQ(executor.cross_shard_txs(), 1u);
  EXPECT_EQ(executor.applied_txs(), 2u);
  EXPECT_EQ(executor.rejected_txs(), 0u);
  // Conservation: lanes hold exactly the minted supply.
  EXPECT_EQ(executor.total_balance(), executor.minted_total());
}

TEST(ShardedExecutorTest, CrossShardLockCannotSpendLaterSiblingCredits) {
  const uint32_t kLanes = 2;
  std::string a = LaneAccount("a", 0, kLanes);
  std::string b = LaneAccount("b", 1, kLanes);
  std::string c = LaneAccount("c", 0, kLanes);

  TestNet net;
  ShardedExecutor executor(kLanes, net.Source());
  executor.OnCommittedHeader(TestNet::Header(1, {net.Add({ExecTx::Mint(a, 10).Encode()})}));
  // One boundary, encounter order: b→c locks before a→b's credit funds b, so
  // it must reject; a→b then applies. Deterministic sequencing is the point —
  // every validator resolves the race identically.
  executor.OnCommittedHeader(
      TestNet::Header(2, {net.Add({ExecTx::Transfer(b, c, 5).Encode(),
                                   ExecTx::Transfer(a, b, 10).Encode()})}));

  EXPECT_EQ(executor.lane(1).BalanceOf(b), 10u);
  EXPECT_EQ(executor.lane(0).BalanceOf(c), 0u);
  EXPECT_EQ(executor.rejected_txs(), 1u);
  EXPECT_EQ(executor.cross_shard_txs(), 2u);
  EXPECT_EQ(executor.total_balance(), executor.minted_total());
}

TEST(ShardedExecutorTest, DefersOnMissingBatchThenDrainsInCommitOrder) {
  const uint32_t kLanes = 2;
  std::string a = LaneAccount("a", 0, kLanes);
  std::string b = LaneAccount("b", 1, kLanes);

  TestNet net;
  ShardedExecutor executor(kLanes, net.Source());

  // Header 1's batch is withheld; header 2 (which spends header 1's mint
  // cross-shard) is ready. Nothing may run until the data arrives, then both
  // run in commit order.
  auto batch1 = std::make_shared<Batch>();
  batch1->txs = {ExecTx::Mint(a, 7).Encode()};
  batch1->num_txs = 1;
  BatchRef ref1;
  ref1.digest = batch1->ComputeDigest();
  ref1.num_txs = 1;
  BatchRef ref2 = net.Add({ExecTx::Transfer(a, b, 7).Encode()});

  executor.OnCommittedHeader(TestNet::Header(1, {ref1}));
  executor.OnCommittedHeader(TestNet::Header(2, {ref2}));
  EXPECT_EQ(executor.executed_headers(), 0u);
  EXPECT_EQ(executor.pending_headers(), 2u);

  net.store[ref1.digest] = batch1;
  executor.RetryPending();
  EXPECT_EQ(executor.executed_headers(), 2u);
  EXPECT_EQ(executor.pending_headers(), 0u);
  // The cross-shard transfer succeeded only because the mint ran first.
  EXPECT_EQ(executor.lane(1).BalanceOf(b), 7u);
  EXPECT_EQ(executor.rejected_txs(), 0u);
}

TEST(ShardedExecutorTest, SkipCrossShardLockInflatesTheSupply) {
  const uint32_t kLanes = 2;
  std::string a = LaneAccount("a", 0, kLanes);
  std::string b = LaneAccount("b", 1, kLanes);

  TestNet net;
  ShardedExecutor executor(kLanes, net.Source());
  {
    seeded_bugs::Scoped bug(&seeded_bugs::skip_cross_shard_lock, true);
    // `a` was never funded: an honest lock rejects this transfer. With the
    // lock skipped the credit lands anyway — tokens out of thin air.
    executor.OnCommittedHeader(
        TestNet::Header(1, {net.Add({ExecTx::Transfer(a, b, 9).Encode()})}));
  }
  EXPECT_EQ(executor.lane(1).BalanceOf(b), 9u);
  EXPECT_EQ(executor.minted_total(), 0u);
  EXPECT_GT(executor.total_balance(), executor.minted_total());
}

// ----------------------------------------------------------- shard oracle

TEST(ReplayShardsTest, AgreesWithTheLiveExecutor) {
  const uint32_t kLanes = 4;
  TestNet net;
  ShardedExecutor live(kLanes, net.Source());
  std::vector<std::vector<Digest>> live_lanes;
  live.set_on_executed([&live_lanes](const Digest&, const std::vector<Digest>& lanes) {
    live_lanes.push_back(lanes);
  });

  std::vector<std::shared_ptr<const BlockHeader>> headers;
  std::vector<Bytes> mints;
  for (ShardId s = 0; s < kLanes; ++s) {
    mints.push_back(ExecTx::Mint(LaneAccount("acct", s, kLanes), 100).Encode());
  }
  headers.push_back(TestNet::Header(1, {net.Add(mints)}));
  for (Round r = 2; r <= 6; ++r) {
    ShardId from = static_cast<ShardId>(r % kLanes);
    ShardId to = static_cast<ShardId>((r + 1) % kLanes);
    headers.push_back(TestNet::Header(
        r, {net.Add({ExecTx::Transfer(LaneAccount("acct", from, kLanes),
                                      LaneAccount("acct", to, kLanes), 3)
                         .Encode()})}));
  }
  for (const auto& header : headers) {
    live.OnCommittedHeader(header);
  }

  ShardReplay replay = ReplayShards(headers, kLanes, net.Source());
  ASSERT_TRUE(replay.complete);
  ASSERT_EQ(replay.lanes_after.size(), live_lanes.size());
  EXPECT_EQ(replay.lanes_after, live_lanes);
  EXPECT_EQ(replay.minted, live.minted_total());
  EXPECT_EQ(replay.total_balance, live.total_balance());
  EXPECT_EQ(replay.minted, replay.total_balance);
}

TEST(ReplayShardsTest, DivergesFromABuggyLiveExecutor) {
  const uint32_t kLanes = 2;
  TestNet net;
  std::vector<std::shared_ptr<const BlockHeader>> headers = {
      TestNet::Header(1, {net.Add({ExecTx::Transfer(LaneAccount("a", 0, kLanes),
                                                    LaneAccount("b", 1, kLanes), 5)
                                       .Encode()})})};

  ShardedExecutor live(kLanes, net.Source());
  std::vector<std::vector<Digest>> live_lanes;
  live.set_on_executed([&live_lanes](const Digest&, const std::vector<Digest>& lanes) {
    live_lanes.push_back(lanes);
  });
  {
    seeded_bugs::Scoped bug(&seeded_bugs::skip_cross_shard_lock, true);
    live.OnCommittedHeader(headers[0]);
  }

  // The oracle never consults the seeded bug: its honest replay rejects the
  // unfunded transfer and the destination lane's digest chain diverges.
  ShardReplay replay = ReplayShards(headers, kLanes, net.Source());
  ASSERT_TRUE(replay.complete);
  ASSERT_EQ(replay.lanes_after.size(), 1u);
  EXPECT_NE(replay.lanes_after[0], live_lanes[0]);
  EXPECT_EQ(replay.total_balance, 0u);
  EXPECT_GT(live.total_balance(), 0u);
}

TEST(ReplayShardsTest, ReportsIncompleteWhenABatchIsUnresolvable) {
  TestNet net;
  BatchRef ghost;
  ghost.digest = Digest{{1, 2, 3}};
  std::vector<std::shared_ptr<const BlockHeader>> headers = {TestNet::Header(1, {ghost})};
  ShardReplay replay = ReplayShards(headers, 2, net.Source());
  EXPECT_FALSE(replay.complete);
  EXPECT_TRUE(replay.lanes_after.empty());
}

// ------------------------------------------------------- transfer workload

TEST(TransferWorkloadTest, CrossRatioIsExactAtTheExtremes) {
  TransferWorkloadConfig config;
  config.num_shards = 4;
  config.accounts_per_shard = 8;

  config.cross_ratio = 0.0;
  TransferWorkload same(config);
  config.cross_ratio = 1.0;
  TransferWorkload cross(config);

  Rng rng(7);
  for (uint64_t i = 0; i < 200; ++i) {
    auto tx = ExecTx::Decode(same.NextTransfer(rng, i));
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(ShardRouter::Route(tx->key, 4), ShardRouter::Route(tx->key2, 4));
    auto xtx = ExecTx::Decode(cross.NextTransfer(rng, i));
    ASSERT_TRUE(xtx.has_value());
    EXPECT_NE(ShardRouter::Route(xtx->key, 4), ShardRouter::Route(xtx->key2, 4));
  }
}

TEST(TransferWorkloadTest, NonceKeepsHotPairsDistinctThroughDedup) {
  TransferWorkloadConfig config;
  config.num_shards = 1;
  config.accounts_per_shard = 2;  // Tiny population: pairs repeat constantly.
  config.hot_ratio = 1.0;         // Every draw debits the hottest account.
  TransferWorkload workload(config);

  Rng rng(3);
  std::set<Bytes> wires;
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(wires.insert(workload.NextTransfer(rng, i)).second) << "duplicate at " << i;
  }
}

TEST(TransferWorkloadTest, MintsFundEveryAccountOnItsLane) {
  TransferWorkloadConfig config;
  config.num_shards = 4;
  config.accounts_per_shard = 8;
  config.initial_balance = 1234;
  TransferWorkload workload(config);

  std::vector<Bytes> mints = workload.InitialMints();
  ASSERT_EQ(mints.size(), 32u);
  std::vector<uint32_t> per_lane(4, 0);
  for (const Bytes& wire : mints) {
    auto tx = ExecTx::Decode(wire);
    ASSERT_TRUE(tx.has_value());
    EXPECT_EQ(tx->op, ExecTx::Op::kMint);
    EXPECT_EQ(tx->amount, 1234u);
    ++per_lane[ShardRouter::Route(tx->key, 4)];
  }
  for (uint32_t count : per_lane) {
    EXPECT_EQ(count, 8u);  // Mined accounts land exactly where asked.
  }
}

// --------------------------------------------------- end-to-end (cluster)

TEST(ShardClusterTest, LaneDigestsAgreeAcrossValidators) {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 17;
  config.exec_lanes = 2;
  Cluster cluster(config);
  cluster.Start();

  const uint32_t kLanes = 2;
  std::string a = LaneAccount("alice", 0, kLanes);
  std::string b = LaneAccount("bob", 1, kLanes);
  cluster.worker(0, 0)->SubmitBlock(
      {ExecTx::Mint(a, 1000).Encode(), ExecTx::Mint(b, 500).Encode()});
  cluster.scheduler().RunUntil(Seconds(4));
  for (int i = 0; i < 10; ++i) {
    // Alternate single-shard and cross-shard traffic from rotating entry
    // points; nonces keep repeated pairs distinct through worker dedup.
    ExecTx tx = (i % 2 == 0) ? ExecTx::Transfer(a, b, 10) : ExecTx::Transfer(b, a, 5);
    Writer w;
    w.PutU64(static_cast<uint64_t>(i));
    tx.value = w.Take();
    cluster.SubmitTxPayload(i % 4, 0, tx.Encode(), std::nullopt);
    cluster.scheduler().RunUntil(Seconds(5 + i));
  }
  cluster.StartExecutorPump(Seconds(30));
  cluster.scheduler().RunUntil(Seconds(30));

  ShardedExecutor* observer = cluster.sharded_executor(0);
  ASSERT_NE(observer, nullptr);
  ASSERT_GT(observer->applied_txs(), 10u);
  for (ValidatorId v = 1; v < 4; ++v) {
    ShardedExecutor* executor = cluster.sharded_executor(v);
    EXPECT_EQ(executor->LaneDigests(), observer->LaneDigests()) << "validator " << v;
    EXPECT_EQ(executor->applied_txs(), observer->applied_txs()) << "validator " << v;
    EXPECT_EQ(executor->cross_shard_txs(), observer->cross_shard_txs()) << "validator " << v;
  }
  // All ten transfers crossed or stayed within lanes as routed; supply holds.
  EXPECT_GT(observer->cross_shard_txs(), 0u);
  EXPECT_EQ(observer->total_balance(), observer->minted_total());
  EXPECT_EQ(observer->minted_total(), 1500u);
  // The metrics observer saw the applied/rejected split (satellite: the
  // executed-txs counter is gone; both components are surfaced).
  EXPECT_EQ(cluster.metrics().exec_applied(), observer->applied_txs());
  EXPECT_EQ(cluster.metrics().exec_rejected(), observer->rejected_txs());
}

}  // namespace
}  // namespace nt
