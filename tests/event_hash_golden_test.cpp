// Golden event-hash regression: the exact (time, seq) firing order of the
// discrete-event engine, pinned in-tree for fixed seeds.
//
// Scheduler::event_hash() folds every fired event's (time, seq) pair in
// firing order, so these constants freeze the engine's observable behaviour
// bit-for-bit. Two layers:
//
//   - a pure scheduler workload (ties, cancels, mass-cancel compaction,
//     RunUntil boundaries) that depends on nothing but src/sim — it fails
//     iff the engine itself reorders or renumbers events;
//   - mid-size full-stack DST schedules — they fail on engine reordering
//     AND on any protocol-behaviour change, in which case the constants
//     must be consciously re-pinned in the same PR that changed behaviour.
//
// If this test breaks and you did NOT intend to change event ordering or
// protocol logic, you introduced nondeterminism or an accidental reorder.
#include <gtest/gtest.h>

#include <vector>

#include "src/check/checker.h"
#include "src/check/schedule.h"
#include "src/common/rng.h"
#include "src/sim/scheduler.h"

namespace nt {
namespace {

// Deterministic scheduler-only churn: a seeded mix of schedules (with time
// ties), cancels of queued/fired/bogus ids, reentrant re-scheduling, and a
// mass-cancel wave that trips heap compaction.
uint64_t SchedulerChurnHash(uint64_t seed, uint64_t* fired_out) {
  Scheduler sched;
  Rng rng(seed);
  std::vector<Scheduler::TimerId> ids;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 100; ++i) {
      TimePoint t = sched.now() + static_cast<TimePoint>(rng.NextBelow(50));
      if (rng.NextBool(0.3)) {
        // Reentrant: this event schedules another when it fires.
        ids.push_back(sched.ScheduleAt(t, [&sched, &rng] {
          sched.ScheduleAfter(static_cast<TimeDelta>(1 + rng.NextBelow(7)), [] {});
        }));
      } else {
        ids.push_back(sched.ScheduleAt(t, [] {}));
      }
    }
    // Cancel a seeded subset: some queued, some already fired, some bogus.
    for (int i = 0; i < 60; ++i) {
      sched.Cancel(ids[rng.NextBelow(ids.size())]);
    }
    sched.Cancel(9999999 + round);
    sched.RunUntil(sched.now() + static_cast<TimePoint>(25 + rng.NextBelow(25)));
  }
  // Mass cancel to force compaction, then drain.
  for (size_t i = 0; i < ids.size(); i += 2) {
    sched.Cancel(ids[i]);
  }
  sched.RunUntilIdle();
  *fired_out = sched.events_fired();
  return sched.event_hash();
}

TEST(EventHashGolden, SchedulerChurn) {
  struct Golden {
    uint64_t seed;
    uint64_t hash;
    uint64_t fired;
  };
  // Pinned from the pre-fast-path engine (PR base); the fast-path refactor
  // must reproduce these bit-for-bit.
  const Golden kGolden[] = {
      {1, 0xf94eedfbea6f791cull, 4824},
      {2, 0xd5d42f00909dac96ull, 4875},
      {3, 0xc3c46911a3f6967dull, 4828},
  };
  for (const Golden& g : kGolden) {
    uint64_t fired = 0;
    uint64_t hash = SchedulerChurnHash(g.seed, &fired);
    EXPECT_EQ(hash, g.hash) << "seed " << g.seed << " hash 0x" << std::hex << hash;
    EXPECT_EQ(fired, g.fired) << "seed " << g.seed;
  }
}

TEST(EventHashGolden, FullStackSchedules) {
  struct Golden {
    uint64_t seed;
    uint64_t hash;
    uint64_t fired;
    uint64_t commits;
  };
  // Mid-size DST schedules (crashes/partitions/asynchrony included); values
  // pinned from the pre-fast-path engine at the PR base commit.
  const Golden kGolden[] = {
      {11, 0x4bd8b782bd02b6a0ull, 11867, 215},
      {29, 0x08c56da43d040bc2ull, 4274, 73},
  };
  for (const Golden& g : kGolden) {
    CheckResult result = RunSchedule(GenerateSchedule(g.seed));
    EXPECT_TRUE(result.ok()) << "seed " << g.seed;
    EXPECT_EQ(result.event_hash, g.hash)
        << "seed " << g.seed << " hash 0x" << std::hex << result.event_hash;
    EXPECT_EQ(result.events_fired, g.fired) << "seed " << g.seed << " fired " << result.events_fired;
    EXPECT_EQ(result.commits, g.commits) << "seed " << g.seed << " commits " << result.commits;
  }
}

}  // namespace
}  // namespace nt
