// Micro-benchmarks for the crypto substrate (google-benchmark): SHA-2,
// Ed25519 (single and batched), the FastSigner used in protocol simulations,
// and the coin. These are the §6 "implementation" costs — the data-path rates
// that inform the simulator's processing model.
//
// After the google-benchmark suite, main() runs a dedicated single-vs-batch
// report (speedup per batch size, a 10k-signature batch/single agreement
// check, and the verified-certificate cache hit rate) and writes it to
// BENCH_micro_crypto.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/crypto/coin.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/hash.h"
#include "src/crypto/signer.h"
#include "src/types/cert_cache.h"
#include "src/types/types.h"

namespace nt {
namespace {

// `n` valid (pk, msg, sig) triples from distinct signers; messages owned by
// the fixture so items can point into them.
struct BatchFixture {
  std::vector<Ed25519PublicKey> pks;
  std::vector<Bytes> msgs;
  std::vector<Ed25519BatchItem> items;

  explicit BatchFixture(size_t n, uint8_t salt = 0) {
    std::vector<Ed25519Seed> seeds;
    for (size_t i = 0; i < n; ++i) {
      Ed25519Seed seed{};
      for (int j = 0; j < 32; ++j) {
        seed[j] = static_cast<uint8_t>(i * 13 + j * 5 + salt + 1);
      }
      seeds.push_back(seed);
      pks.push_back(Ed25519Public(seed));
      Bytes msg(64);
      for (size_t j = 0; j < msg.size(); ++j) {
        msg[j] = static_cast<uint8_t>(i + j + salt);
      }
      msgs.push_back(std::move(msg));
    }
    for (size_t i = 0; i < n; ++i) {
      Ed25519BatchItem item;
      item.pk = pks[i];
      item.msg = msgs[i].data();
      item.len = msgs[i].size();
      item.sig = Ed25519Sign(seeds[i], msgs[i]);
      items.push_back(item);
    }
  }
};

void BM_Sha256(benchmark::State& state) {
  Bytes data(state.range(0), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024)->Arg(512 * 1024);

void BM_Sha512(benchmark::State& state) {
  Bytes data(state.range(0), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(64 * 1024);

void BM_Ed25519Sign(benchmark::State& state) {
  Ed25519Seed seed{};
  seed[0] = 1;
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(seed, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Ed25519Seed seed{};
  seed[0] = 2;
  Ed25519PublicKey pk = Ed25519Public(seed);
  Bytes msg(64, 7);
  Ed25519Signature sig = Ed25519Sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(pk, msg, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Ed25519Verify);

void BM_Ed25519BatchVerify(benchmark::State& state) {
  BatchFixture fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519BatchVerify(fixture.items));
  }
  // items/s is directly comparable with BM_Ed25519Verify.
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Ed25519BatchVerify)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_FastSignerSign(benchmark::State& state) {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->Sign(msg));
  }
}
BENCHMARK(BM_FastSignerSign);

void BM_FastSignerVerify(benchmark::State& state) {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  Bytes msg(64, 7);
  Signature sig = signer->Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->Verify(signer->public_key(), msg, sig));
  }
}
BENCHMARK(BM_FastSignerVerify);

void BM_CommonCoin(benchmark::State& state) {
  CommonCoin coin(7);
  uint64_t wave = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.LeaderOf(++wave, 50));
  }
}
BENCHMARK(BM_CommonCoin);

// ---------------------------------------------------------------------------
// Single-vs-batch report (written to BENCH_micro_crypto.json).
// ---------------------------------------------------------------------------

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Wall-clock speedup of one batched verification over the same signatures
// verified individually, averaged over `reps` repetitions.
double MeasureBatchSpeedup(const BatchFixture& fixture, int reps, double* single_per_s,
                           double* batch_per_s) {
  const size_t n = fixture.items.size();
  // Warm both paths once (fills the decoded-key cache, faults in tables) so
  // neither timed side pays one-time costs.
  for (const Ed25519BatchItem& item : fixture.items) {
    benchmark::DoNotOptimize(Ed25519Verify(item.pk, item.msg, item.len, item.sig));
  }
  benchmark::DoNotOptimize(Ed25519BatchVerify(fixture.items));

  // Best of three trials per side: the box is shared, so a scheduler blip in
  // any one window would otherwise dominate a millisecond-scale measurement.
  double single_s = 1e30;
  double batch_s = 1e30;
  for (int trial = 0; trial < 3; ++trial) {
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      for (const Ed25519BatchItem& item : fixture.items) {
        benchmark::DoNotOptimize(Ed25519Verify(item.pk, item.msg, item.len, item.sig));
      }
    }
    single_s = std::min(single_s, SecondsSince(t0));
    auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      benchmark::DoNotOptimize(Ed25519BatchVerify(fixture.items));
    }
    batch_s = std::min(batch_s, SecondsSince(t1));
  }
  double total_items = static_cast<double>(n) * reps;
  if (single_per_s != nullptr) {
    *single_per_s = total_items / single_s;
  }
  if (batch_per_s != nullptr) {
    *batch_per_s = total_items / batch_s;
  }
  return single_s / batch_s;
}

// Batch and single verification must agree on every item of a large mixed
// valid/corrupted population. Returns the number of disagreements.
size_t CheckBatchAgreement(size_t n) {
  BatchFixture fixture(n, /*salt=*/42);
  uint64_t rng = 0x2545f4914f6cdd1dull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (auto& item : fixture.items) {
    if (next() % 2 == 0) {
      item.sig[next() % 64] ^= static_cast<uint8_t>(1 + next() % 255);
    }
  }
  std::vector<bool> batch = Ed25519BatchVerify(fixture.items);
  size_t mismatches = 0;
  for (size_t i = 0; i < fixture.items.size(); ++i) {
    const Ed25519BatchItem& item = fixture.items[i];
    if (batch[i] != Ed25519Verify(item.pk, item.msg, item.len, item.sig)) {
      ++mismatches;
    }
  }
  return mismatches;
}

// Hit rate of the verified-certificate cache when each certificate is
// presented `deliveries` times — the re-delivery pattern certificates see in
// the protocol (own broadcast, parent references, consensus proposals).
double MeasureCertCacheHitRate(size_t num_certs, int deliveries) {
  constexpr uint32_t kN = 4;
  std::vector<std::unique_ptr<Signer>> signers;
  std::vector<ValidatorInfo> infos;
  for (uint32_t v = 0; v < kN; ++v) {
    signers.push_back(MakeSigner(SignerKind::kFast, DeriveSeed(7777, v)));
    infos.push_back(ValidatorInfo{signers.back()->public_key(), 0});
  }
  Committee committee(std::move(infos));

  std::vector<Certificate> certs;
  for (size_t i = 0; i < num_certs; ++i) {
    Certificate cert;
    cert.header_digest = Sha256::Hash("bench-cert-" + std::to_string(i));
    cert.round = 1;
    cert.author = static_cast<ValidatorId>(i % kN);
    Bytes preimage = Certificate::VotePreimage(cert.header_digest, cert.round, cert.author);
    for (uint32_t v = 0; v < committee.quorum_threshold(); ++v) {
      cert.votes.emplace_back(v, signers[v]->Sign(preimage));
    }
    certs.push_back(std::move(cert));
  }

  VerifiedCertCache::Narwhal().Clear();
  for (int d = 0; d < deliveries; ++d) {
    for (const Certificate& cert : certs) {
      cert.Verify(committee, *signers[0]);
    }
  }
  VerifiedCertCache::Stats stats = VerifiedCertCache::Narwhal().stats();
  VerifiedCertCache::Narwhal().Clear();
  uint64_t total = stats.hits + stats.misses;
  return total == 0 ? 0.0 : static_cast<double>(stats.hits) / static_cast<double>(total);
}

void RunBatchReport() {
  BenchJson json("micro_crypto");
  PrintBanner("Ed25519 single vs batch verification");
  std::printf("%8s %12s %12s %9s\n", "batch", "single/s", "batch/s", "speedup");
  for (size_t n : {4u, 16u, 64u, 256u}) {
    BatchFixture fixture(n);
    int reps = n >= 64 ? 2 : 8;
    double single_per_s = 0;
    double batch_per_s = 0;
    double speedup = MeasureBatchSpeedup(fixture, reps, &single_per_s, &batch_per_s);
    std::printf("%8zu %12.0f %12.0f %8.2fx\n", n, single_per_s, batch_per_s, speedup);
    std::fflush(stdout);
    json.Set("batch" + std::to_string(n) + "_speedup", speedup);
    if (n == 64) {
      json.Set("single_verifies_per_s", single_per_s);
      json.Set("batch64_verifies_per_s", batch_per_s);
    }
  }

  PrintBanner("Batch/single agreement (10k mixed valid+corrupted)");
  size_t mismatches = CheckBatchAgreement(10000);
  std::printf("mismatches: %zu / 10000\n", mismatches);
  json.Set("agreement_items", 10000);
  json.Set("agreement_mismatches", static_cast<double>(mismatches));

  PrintBanner("Verified-certificate cache");
  double hit_rate = MeasureCertCacheHitRate(/*num_certs=*/256, /*deliveries=*/4);
  std::printf("hit rate over 4 deliveries per certificate: %.3f\n", hit_rate);
  json.Set("cert_cache_hit_rate", hit_rate);

  std::string path = json.Write();
  std::printf("\nwrote %s\n", path.empty() ? "(failed to write JSON)" : path.c_str());
}

}  // namespace
}  // namespace nt

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  nt::RunBatchReport();
  return 0;
}
