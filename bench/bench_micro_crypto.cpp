// Micro-benchmarks for the crypto substrate (google-benchmark): SHA-2,
// Ed25519, the FastSigner used in protocol simulations, and the coin.
// These are the §6 "implementation" costs — the data-path rates that inform
// the simulator's processing model.
#include <benchmark/benchmark.h>

#include "src/crypto/coin.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/hash.h"
#include "src/crypto/signer.h"

namespace nt {
namespace {

void BM_Sha256(benchmark::State& state) {
  Bytes data(state.range(0), 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(64 * 1024)->Arg(512 * 1024);

void BM_Sha512(benchmark::State& state) {
  Bytes data(state.range(0), 0xcd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(64 * 1024);

void BM_Ed25519Sign(benchmark::State& state) {
  Ed25519Seed seed{};
  seed[0] = 1;
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(seed, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Ed25519Seed seed{};
  seed[0] = 2;
  Ed25519PublicKey pk = Ed25519Public(seed);
  Bytes msg(64, 7);
  Ed25519Signature sig = Ed25519Sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(pk, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_FastSignerSign(benchmark::State& state) {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  Bytes msg(64, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->Sign(msg));
  }
}
BENCHMARK(BM_FastSignerSign);

void BM_FastSignerVerify(benchmark::State& state) {
  auto signer = MakeSigner(SignerKind::kFast, DeriveSeed(1, 0));
  Bytes msg(64, 7);
  Signature sig = signer->Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer->Verify(signer->public_key(), msg, sig));
  }
}
BENCHMARK(BM_FastSignerVerify);

void BM_CommonCoin(benchmark::State& state) {
  CommonCoin coin(7);
  uint64_t wave = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coin.LeaderOf(++wave, 50));
  }
}
BENCHMARK(BM_CommonCoin);

}  // namespace
}  // namespace nt

BENCHMARK_MAIN();
