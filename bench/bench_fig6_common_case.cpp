// Reproduces Figure 6: comparative throughput-latency for baseline-HotStuff,
// Batched-HotStuff, Narwhal-HotStuff, and Tusk on the simulated WAN with
// committees of 10, 20, and 50 validators, one collocated worker, no faults,
// 512B transactions, 500KB batches — the paper's E1 "common case".
//
// Expected shape (paper §7.1): baseline-HS <= ~2k tx/s at ~1s latency;
// Batched-HS tens of thousands at 1-2s; Narwhal-HS ~140k below ~2.5s;
// Tusk ~150-170k at ~3s. Absolute numbers are simulator-calibrated; the
// ordering and saturation structure are the reproduction target.
#include "bench/bench_util.h"

using namespace nt;

namespace {

struct SystemSweep {
  SystemKind system;
  std::vector<double> rates;
};

}  // namespace

int main() {
  PrintBanner("Figure 6: throughput-latency, committees of 10/20/50, no faults");

  // Rates sweep up to each configuration's saturation point (beyond it the
  // simulator's queues grow without bound and nothing commits in-window,
  // which matches the paper's practice of plotting up to saturation). The
  // paper's Fig. 6 likewise shows baseline/batched only for 10-20 nodes.
  const std::vector<SystemSweep> sweeps = {
      {SystemKind::kBaselineHs, {1000, 2000, 3000, 4000}},
      {SystemKind::kBatchedHs, {20000, 50000, 80000, 110000}},
      {SystemKind::kNarwhalHs, {20000, 60000, 100000, 140000}},
      {SystemKind::kTusk, {20000, 60000, 100000, 140000, 160000}},
  };
  const std::vector<uint32_t> committees = {10, 20, 50};
  const int kRuns = 2;  // The paper averages 2 runs.

  PrintSweepHeader();
  for (uint32_t nodes : committees) {
    for (const SystemSweep& sweep : sweeps) {
      if (nodes == 50 && (sweep.system == SystemKind::kBaselineHs ||
                          sweep.system == SystemKind::kBatchedHs)) {
        continue;  // As in the paper's figure.
      }
      for (double rate : sweep.rates) {
        if (nodes >= 20 && rate > 140000) {
          continue;  // Larger committees saturate earlier on our substrate.
        }
        if (nodes == 50 && rate > 120000) {
          continue;
        }
        ExperimentParams params;
        params.system = sweep.system;
        params.nodes = nodes;
        params.workers = 1;
        params.collocate = true;
        params.rate_tps = rate;
        params.tx_size = 512;
        params.duration = Seconds(20);
        params.warmup = Seconds(6);
        params.seed = 100;
        PrintSweepRow(RunAveraged(params, kRuns));
      }
    }
    std::printf("\n");
  }
  return 0;
}
