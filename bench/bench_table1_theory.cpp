// Reproduces Table 1: the theoretical comparison of HotStuff, Narwhal-HS,
// and Tusk, validated by measurement.
//
//   | metric                      | HS    | Narwhal-HS | Tusk |
//   | average-case latency (RTT)  | 3     | 4          | 4.5  |
//   | worst-case f crashes (lat.) | O(n)  | O(n)       | 4.5  |
//   | asynchronous latency        | n/a   | n/a        | 7    |
//   | unstable-network throughput | no    | yes        | yes  |
//   | asynchronous throughput     | no    | no         | yes  |
//
// Latency rows run on a fixed 50ms one-way network (RTT = 100ms) at light
// load with small batch delays, reporting end-to-end latency divided by RTT.
// Throughput rows alternate or sustain asynchrony windows and compare
// committed/input ratios.
#include "bench/bench_util.h"

using namespace nt;

namespace {

constexpr TimeDelta kOneWay = Millis(50);
constexpr double kRttSeconds = 0.1;

ExperimentParams LightLoadParams(SystemKind system, uint32_t nodes) {
  ExperimentParams params;
  params.system = system;
  params.nodes = nodes;
  params.rate_tps = 2000;
  params.duration = Seconds(30);
  params.warmup = Seconds(8);
  params.seed = 3;
  params.cluster.latency_kind = ClusterConfig::LatencyKind::kFixed;
  params.cluster.fixed_latency = kOneWay;
  // Keep batching out of the measurement: seal and propose eagerly.
  params.cluster.narwhal.max_batch_delay = Millis(5);
  params.cluster.narwhal.max_header_delay = Millis(5);
  return params;
}

double LatencyInRtts(const ExperimentParams& params) {
  ExperimentResult r = RunExperiment(params);
  return r.avg_latency_s / kRttSeconds;
}

double ThroughputRatio(ExperimentParams params) {
  ExperimentResult r = RunExperiment(params);
  // Committed relative to input over the measurement window.
  return params.rate_tps > 0 ? r.tps / params.rate_tps : 0.0;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  PrintBanner("Table 1: theory vs measured");

  // --- Row 1: average-case latency, no faults --------------------------------
  double hs = LatencyInRtts(LightLoadParams(SystemKind::kBaselineHs, 4));
  double nhs = LatencyInRtts(LightLoadParams(SystemKind::kNarwhalHs, 4));
  double tusk = LatencyInRtts(LightLoadParams(SystemKind::kTusk, 4));
  std::printf("%-34s %10s %12s %10s\n", "", "HS", "Narwhal-HS", "Tusk");
  std::printf("%-34s %10s %12s %10s\n", "avg-case latency (RTTs), paper:", "3", "4", "4.5");
  std::printf("%-34s %10.1f %12.1f %10.1f\n", "  measured:", hs, nhs, tusk);

  // --- Row 2: worst-case crashes ----------------------------------------------
  auto crash_params = [](SystemKind system) {
    ExperimentParams params = LightLoadParams(system, 10);
    params.faults = 3;
    params.duration = Seconds(60);
    params.warmup = Seconds(15);
    return params;
  };
  double hs_crash = LatencyInRtts(crash_params(SystemKind::kBaselineHs));
  double nhs_crash = LatencyInRtts(crash_params(SystemKind::kNarwhalHs));
  double tusk_crash = LatencyInRtts(crash_params(SystemKind::kTusk));
  std::printf("%-34s %10s %12s %10s\n", "f-crash latency (RTTs), paper:", "O(n)", "O(n)", "4.5");
  std::printf("%-34s %10.1f %12.1f %10.1f\n", "  measured (n=10, f=3):", hs_crash, nhs_crash,
              tusk_crash);

  // --- Row 3: latency under sustained (benign) asynchrony --------------------
  auto slow_params = [](SystemKind system) {
    ExperimentParams params = LightLoadParams(system, 4);
    params.async_start = 0;
    params.async_end = kNever;
    params.async_factor = 8.0;  // RTT inflated to 0.8s >> view timers.
    params.duration = Seconds(120);
    params.warmup = Seconds(30);
    return params;
  };
  // Measure Tusk's latency in *inflated* RTTs (the asynchronous round unit).
  ExperimentResult tusk_async = RunExperiment(slow_params(SystemKind::kTusk));
  double tusk_async_rtts = tusk_async.avg_latency_s / (kRttSeconds * 8.0);
  std::printf("%-34s %10s %12s %10s\n", "async latency (rounds), paper:", "n/a", "n/a", "7");
  std::printf("%-34s %10s %12s %10.1f\n", "  measured (x8 delays):", "-", "-", tusk_async_rtts);

  // --- Row 4: throughput under an unstable network ----------------------------
  // The paper's definition: a network that allows roughly one commit between
  // periods of asynchrony. Schedule: 8s of x30 delays, 2s calm, repeating.
  // A monolithic mempool can only push one bounded block through each calm
  // gap; Narwhal-based systems commit the whole backlog with one certificate
  // (2/3-Causality).
  auto unstable_params = [](SystemKind system) {
    ExperimentParams params = LightLoadParams(system, 4);
    params.rate_tps = 4000;
    params.duration = Seconds(80);
    params.warmup = Seconds(5);
    for (TimePoint t = Seconds(6); t < Seconds(80); t += Seconds(10)) {
      params.async_windows.push_back({t, t + Seconds(8), 30.0});
    }
    return params;
  };
  double hs_unstable = ThroughputRatio(unstable_params(SystemKind::kBaselineHs));
  double nhs_unstable = ThroughputRatio(unstable_params(SystemKind::kNarwhalHs));
  double tusk_unstable = ThroughputRatio(unstable_params(SystemKind::kTusk));
  std::printf("%-34s %10s %12s %10s\n", "unstable-net throughput, paper:", "no", "yes", "yes");
  std::printf("%-34s %9.0f%% %11.0f%% %9.0f%%\n", "  measured committed/input:", hs_unstable * 100,
              nhs_unstable * 100, tusk_unstable * 100);

  // --- Row 5: throughput under full asynchrony --------------------------------
  // Heavy-tailed delays (uniform 1s..90s per message) emulate an
  // asynchronous scheduler: quorum-driven steps (DAG rounds) advance at the
  // speed of the fastest 2f+1 messages, while HotStuff's sequential
  // leader-propose/vote/QC chain loses every race against the view timer —
  // views churn and almost nothing commits. Tusk needs no timer and keeps
  // committing (wait-freedom).
  auto full_async_params = [](SystemKind system) {
    ExperimentParams params = LightLoadParams(system, 4);
    params.rate_tps = 400;
    params.cluster.latency_kind = ClusterConfig::LatencyKind::kUniform;
    params.cluster.uniform_lo = Millis(250);
    params.cluster.uniform_hi = Seconds(25);
    params.cluster.narwhal.max_batch_delay = Seconds(1);
    params.cluster.narwhal.max_header_delay = Seconds(1);
    params.duration = Seconds(1500);
    params.warmup = Seconds(500);
    return params;
  };
  double hs_async = ThroughputRatio(full_async_params(SystemKind::kBaselineHs));
  double nhs_async = ThroughputRatio(full_async_params(SystemKind::kNarwhalHs));
  double tusk_async_tput = ThroughputRatio(full_async_params(SystemKind::kTusk));
  std::printf("%-34s %10s %12s %10s\n", "async throughput, paper:", "no", "no", "yes");
  std::printf("%-34s %9.0f%% %11.0f%% %9.0f%%\n", "  measured committed/input:", hs_async * 100,
              nhs_async * 100, tusk_async_tput * 100);

  // Commit regularity under the same network: Tusk anchors a commit every
  // wave; Narwhal-HS only when a leader chain luckily outruns the timers
  // (under an *adaptive* adversary, never — the paper's "no"). The maximum
  // gap between consecutive commits is the observable.
  auto max_commit_gap = [&](SystemKind system) {
    ExperimentParams base = full_async_params(system);
    ClusterConfig config = base.cluster;
    config.system = system;
    config.num_validators = base.nodes;
    config.seed = base.seed;
    Cluster cluster(config);
    TimePoint last_commit = 0;
    TimeDelta max_gap = 0;
    auto observe = [&](TimePoint now) {
      max_gap = std::max<TimeDelta>(max_gap, now - last_commit);
      last_commit = now;
    };
    if (system == SystemKind::kTusk) {
      cluster.tusk(0)->add_on_commit(
          [&](const Tusk::Committed&) { observe(cluster.scheduler().now()); });
    } else {
      cluster.hotstuff(0)->set_on_commit(
          [&](const HsBlock&, View) { observe(cluster.scheduler().now()); });
    }
    cluster.Start();
    cluster.scheduler().RunUntil(base.duration);
    observe(base.duration);  // Account for a silent tail.
    return ToSeconds(max_gap);
  };
  double tusk_gap = max_commit_gap(SystemKind::kTusk);
  double nhs_gap = max_commit_gap(SystemKind::kNarwhalHs);
  std::printf("%-34s %10s %12.0fs %9.0fs\n", "  max commit gap under async:", "-", nhs_gap,
              tusk_gap);

  std::printf(
      "\nNotes: measured latencies are end-to-end (client submission to commit) and so\n"
      "include batching and dissemination on top of the theoretical consensus steps;\n"
      "the cross-system ratios are the comparison target. Crash latency for the HS\n"
      "variants is pacemaker-timeout bound — the O(n) row.\n");
  return 0;
}
