// Sharded-execution benchmark: isolates the execution stage (ShardedExecutor
// over a pre-committed header stream) from consensus, and tracks the lane
// scale-out trajectory in BENCH_exec.json the way BENCH_sim_engine.json
// tracks the event core.
//
// Scenarios (all over the TransferWorkload accounts/transfer stream):
//   lanes1            the pre-sharding baseline: one lane, every transfer is
//                     single-shard by construction.
//   lanes4_cross0     4 lanes, 0% cross-shard — the pure fast path; lanes
//                     advance independently inside each header.
//   lanes4_cross20    4 lanes, 20% of transfers cross lanes and sequence at
//                     commit boundaries via the two-phase lock/credit apply.
//   lanes8_cross0     8 lanes, fast path.
//   lanes8_cross20    8 lanes, 20% cross.
//   hot_contention    4 lanes, 20% cross, zipf 0.9 + 50% hot-key pinning —
//                     pathological skew, the worst case for per-lane books.
//
// The committed stream (mints + transfer batches + headers) is generated
// once per scenario outside the timed region; the timed region is purely
// OnCommittedHeader over a fresh executor, so the number is execution
// throughput, not workload-generation throughput. Best of 3 reps.
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/shard/sharded_executor.h"
#include "src/shard/workload.h"
#include "src/types/types.h"

namespace nt {
namespace {

struct Stream {
  std::map<Digest, std::shared_ptr<const Batch>> store;
  std::vector<std::shared_ptr<const BlockHeader>> headers;
  uint64_t total_txs = 0;

  Executor::BatchSource Source() const {
    return [this](const BatchRef& ref) {
      auto it = store.find(ref.digest);
      return it == store.end() ? nullptr : it->second;
    };
  }
};

constexpr uint32_t kTxsPerBatch = 512;

// Mint header first, then `total_txs` transfers packed into one batch (and
// one header) per kTxsPerBatch — the shape a worker/primary pipeline commits.
Stream BuildStream(const TransferWorkloadConfig& config, uint64_t total_txs) {
  TransferWorkload workload(config);
  Rng rng(42);
  Stream s;
  s.total_txs = total_txs;
  Round round = 1;
  auto push_header = [&s, &round](std::vector<Bytes> txs) {
    auto batch = std::make_shared<Batch>();
    batch->txs = std::move(txs);
    batch->num_txs = batch->txs.size();
    Digest d = batch->ComputeDigest();
    s.store[d] = batch;
    BatchRef ref;
    ref.digest = d;
    ref.num_txs = batch->num_txs;
    auto header = std::make_shared<BlockHeader>();
    header->round = round++;
    header->batches = {ref};
    s.headers.push_back(header);
  };
  push_header(workload.InitialMints());
  std::vector<Bytes> txs;
  txs.reserve(kTxsPerBatch);
  for (uint64_t nonce = 0; nonce < total_txs; ++nonce) {
    txs.push_back(workload.NextTransfer(rng, nonce));
    if (txs.size() == kTxsPerBatch) {
      push_header(std::move(txs));
      txs.clear();
      txs.reserve(kTxsPerBatch);
    }
  }
  if (!txs.empty()) {
    push_header(std::move(txs));
  }
  return s;
}

struct ExecResult {
  double txs_per_sec = 0;
  double cross_fraction = 0;
  uint64_t rejected = 0;
  double RatePerSec() const { return txs_per_sec; }
};

ExecResult RunOnce(const Stream& stream, uint32_t lanes) {
  ShardedExecutor exec(lanes, stream.Source());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& header : stream.headers) {
    exec.OnCommittedHeader(header);
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  ExecResult r;
  const uint64_t executed = exec.applied_txs() + exec.rejected_txs();
  r.txs_per_sec = static_cast<double>(executed) / seconds;
  r.cross_fraction =
      executed == 0 ? 0 : static_cast<double>(exec.cross_shard_txs()) / static_cast<double>(executed);
  r.rejected = exec.rejected_txs();
  return r;
}

constexpr int kReps = 3;

ExecResult BestOf(const Stream& stream, uint32_t lanes) {
  ExecResult best = RunOnce(stream, lanes);
  for (int i = 1; i < kReps; ++i) {
    ExecResult r = RunOnce(stream, lanes);
    if (r.RatePerSec() > best.RatePerSec()) {
      best = r;
    }
  }
  return best;
}

struct Scenario {
  const char* name;
  uint32_t lanes;
  double cross_ratio;
  double zipf_theta;
  double hot_ratio;
};

constexpr Scenario kScenarios[] = {
    {"lanes1", 1, 0.0, 0.0, 0.0},
    {"lanes4_cross0", 4, 0.0, 0.0, 0.0},
    {"lanes4_cross20", 4, 0.2, 0.0, 0.0},
    {"lanes8_cross0", 8, 0.0, 0.0, 0.0},
    {"lanes8_cross20", 8, 0.2, 0.0, 0.0},
    {"hot_contention", 4, 0.2, 0.9, 0.5},
};

ExecResult RunScenario(const Scenario& sc, uint64_t total_txs) {
  TransferWorkloadConfig config;
  config.num_shards = sc.lanes;
  config.cross_ratio = sc.cross_ratio;
  config.zipf_theta = sc.zipf_theta;
  config.hot_ratio = sc.hot_ratio;
  Stream stream = BuildStream(config, total_txs);
  return BestOf(stream, sc.lanes);
}

}  // namespace
}  // namespace nt

int main(int argc, char** argv) {
  using namespace nt;
  // --quick shrinks the transfer budget 8x (smoke runs / CI sanity).
  // --only NAME runs a single scenario (no JSON) — for profiling.
  uint64_t total_txs = 800'000;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      total_txs /= 8;
    } else if (std::string(argv[i]) == "--only" && i + 1 < argc) {
      only = argv[++i];
    }
  }

  if (!only.empty()) {
    for (const Scenario& sc : kScenarios) {
      if (only == sc.name) {
        ExecResult r = RunScenario(sc, total_txs);
        std::printf("%s %.0f\n", sc.name, r.txs_per_sec);
        return 0;
      }
    }
    std::fprintf(stderr, "unknown scenario: %s\n", only.c_str());
    return 1;
  }

  PrintBanner("sharded-execution benchmark");
  BenchJson json("exec");
  for (const Scenario& sc : kScenarios) {
    ExecResult r = RunScenario(sc, total_txs);
    std::printf("%-16s %12.0f txs/s   %5.1f%% cross   %8llu rejected\n", sc.name, r.txs_per_sec,
                100.0 * r.cross_fraction, static_cast<unsigned long long>(r.rejected));
    json.Set(std::string(sc.name) + "_txs_per_sec", r.txs_per_sec);
    json.Set(std::string(sc.name) + "_cross_fraction", r.cross_fraction);
  }
  std::string path = json.Write();
  std::printf("%s\n", path.empty() ? "FAILED to write BENCH_exec.json" : path.c_str());
  return path.empty() ? 1 : 0;
}
