// Reproduces Figure 1: the WAN summary scatter — one representative
// (throughput, latency) point per system/configuration:
//   - baseline HotStuff (traditional mempool), 10 validators;
//   - Narwhal-HotStuff and Tusk at 10 and 50 validators, 1 collocated worker;
//   - Tusk with 4 validators x 10 dedicated workers (the "W" cross marks).
#include "bench/bench_util.h"

using namespace nt;

namespace {

struct Point {
  SystemKind system;
  uint32_t nodes;
  uint32_t workers;
  bool collocate;
  double rate;
};

}  // namespace

int main() {
  PrintBanner("Figure 1: summary of WAN performance (512B transactions)");

  // One near-saturation point per configuration (50-validator committees
  // saturate earlier on our substrate than the paper's testbed; see
  // EXPERIMENTS.md).
  const std::vector<Point> points = {
      {SystemKind::kBaselineHs, 10, 1, true, 3000},
      {SystemKind::kBatchedHs, 10, 1, true, 80000},
      {SystemKind::kNarwhalHs, 10, 1, true, 140000},
      {SystemKind::kNarwhalHs, 50, 1, true, 100000},
      {SystemKind::kTusk, 10, 1, true, 150000},
      {SystemKind::kTusk, 50, 1, true, 100000},
      {SystemKind::kTusk, 4, 4, false, 500000},
      {SystemKind::kTusk, 4, 10, false, 1200000},
  };

  PrintSweepHeader();
  for (const Point& point : points) {
    ExperimentParams params;
    params.system = point.system;
    params.nodes = point.nodes;
    params.workers = point.workers;
    params.collocate = point.collocate;
    params.rate_tps = point.rate;
    params.duration = Seconds(20);
    params.warmup = Seconds(6);
    params.seed = 21;
    PrintSweepRow(RunAveraged(params, 2));
  }
  return 0;
}
