// The paper's §4.2 "Future Bottlenecks" analysis, measured: how primary
// block volume scales with the number of worker batch references, explicit
// 40-byte references vs a 32-byte Merkle root — and the paper's illustrative
// 1:12 worker-to-primary volume reduction ratio.
#include <cstdio>

#include "src/crypto/merkle.h"
#include "src/types/types.h"

using namespace nt;

namespace {

Digest FakeDigest(uint64_t i) {
  Writer w;
  w.PutU64(i);
  return Sha256::Hash(w.bytes());
}

}  // namespace

int main() {
  std::printf("=== Primary block volume: explicit batch refs vs Merkle accumulator ===\n\n");
  std::printf("Assumptions from the paper: 1,000-tx batches of 512B each (512KB), batch\n"
              "reference = 32B digest + 8B metadata.\n\n");
  std::printf("%10s %16s %16s %16s %14s\n", "batches", "payload(MB)", "refs_bytes",
              "merkle_bytes", "volume_ratio");

  for (uint64_t batches : {10ull, 100ull, 1000ull, 12000ull, 100000ull}) {
    std::vector<Digest> leaves;
    leaves.reserve(batches);
    BlockHeader header;
    header.author = 0;
    header.round = 1;
    for (uint64_t i = 0; i < batches; ++i) {
      BatchRef ref;
      ref.digest = FakeDigest(i);
      ref.worker = static_cast<WorkerId>(i % 10);
      ref.num_txs = 1000;
      ref.payload_bytes = 512 * 1000;
      header.batches.push_back(ref);
      leaves.push_back(ref.digest);
    }
    MerkleTree tree(leaves);
    size_t refs_bytes = header.WireSize();
    size_t merkle_bytes = 4 + 8 + 32 + 64 + 32 + 8;  // Header skeleton + root + count.
    double payload_mb = static_cast<double>(batches) * 512 * 1000 / 1e6;
    double ratio = payload_mb * 1e6 / static_cast<double>(refs_bytes);
    std::printf("%10llu %16.1f %16zu %16zu %13.0f:1\n",
                static_cast<unsigned long long>(batches), payload_mb, refs_bytes, merkle_bytes,
                ratio);
  }

  std::printf("\nThe paper: one 40B reference per 512KB batch is a 1:12,800 reduction, so\n"
              "'we would need about 12,000 workers before the primary handles data volumes\n"
              "similar to a worker'. With the Merkle root the primary block is constant\n"
              "size, and a membership proof is log2(batches) x 33 bytes:\n\n");
  for (uint64_t batches : {1000ull, 12000ull, 100000ull}) {
    std::vector<Digest> leaves;
    for (uint64_t i = 0; i < batches; ++i) {
      leaves.push_back(FakeDigest(i));
    }
    MerkleTree tree(leaves);
    MerkleTree::Proof proof = tree.Prove(batches / 2);
    bool ok = MerkleTree::Verify(tree.root(), leaves[batches / 2], proof);
    std::printf("  %6llu batches: proof depth %2zu (%4zu bytes), verifies=%d\n",
                static_cast<unsigned long long>(batches), proof.size(), proof.size() * 33, ok);
  }
  return 0;
}
