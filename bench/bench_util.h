// Shared helpers for the figure/table reproduction binaries: multi-run
// averaging with error bars (the paper averages 2 runs and reports one
// standard deviation) and banner printing.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"
#include "src/runtime/experiment.h"

namespace nt {

struct AveragedResult {
  ExperimentResult first;  // Representative run (for metadata fields).
  double tps_mean = 0;
  double tps_stddev = 0;
  double latency_mean = 0;
  double latency_stddev = 0;
  double p99_mean = 0;
};

// Runs the experiment `runs` times with distinct seeds and averages.
inline AveragedResult RunAveraged(ExperimentParams params, int runs) {
  AveragedResult out;
  SampleStats tps, latency, p99;
  for (int i = 0; i < runs; ++i) {
    params.seed = params.seed + i;
    ExperimentResult r = RunExperiment(params);
    if (i == 0) {
      out.first = r;
    }
    tps.Add(r.tps);
    latency.Add(r.avg_latency_s);
    p99.Add(r.p99_latency_s);
  }
  out.tps_mean = tps.Mean();
  out.tps_stddev = tps.StdDev();
  out.latency_mean = latency.Mean();
  out.latency_stddev = latency.StdDev();
  out.p99_mean = p99.Mean();
  return out;
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Minimal machine-readable output for benchmark binaries: a flat JSON object
// of numeric fields, written as BENCH_<name>.json in the working directory so
// sweeps can be diffed across commits without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void Set(const std::string& key, double value) { fields_.emplace_back(key, value); }

  // Returns the path written, or an empty string on failure.
  std::string Write() const {
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return "";
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.6g%s\n", fields_[i].first.c_str(), fields_[i].second,
                   i + 1 < fields_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> fields_;
};

inline void PrintSweepHeader() {
  std::printf("%-12s %6s %8s %7s %10s | %10s %8s | %9s %8s %9s | %10s %10s %9s | %10s %8s %10s\n",
              "system", "nodes", "workers", "faults", "input_tps", "tps", "tps_sd", "avg_lat_s",
              "lat_sd", "p99_lat_s", "cert_hits", "cert_miss", "abandoned", "exec_appl",
              "exec_rej", "exec_cross");
}

inline void PrintSweepRow(const AveragedResult& r) {
  std::printf(
      "%-12s %6u %8u %7u %10.0f | %10.0f %8.0f | %9.2f %8.2f %9.2f | %10llu %10llu %9llu | "
      "%10llu %8llu %10llu\n",
      r.first.system.c_str(), r.first.nodes, r.first.workers, r.first.faults, r.first.input_tps,
      r.tps_mean, r.tps_stddev, r.latency_mean, r.latency_stddev, r.p99_mean,
      static_cast<unsigned long long>(r.first.cert_cache_hits),
      static_cast<unsigned long long>(r.first.cert_cache_misses),
      static_cast<unsigned long long>(r.first.abandoned_txs),
      static_cast<unsigned long long>(r.first.exec_applied),
      static_cast<unsigned long long>(r.first.exec_rejected),
      static_cast<unsigned long long>(r.first.exec_cross));
  std::fflush(stdout);
}

}  // namespace nt

#endif  // BENCH_BENCH_UTIL_H_
