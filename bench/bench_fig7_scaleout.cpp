// Reproduces Figure 7: Narwhal scale-out. 4 validators, each with 1/4/7/10
// dedicated (non-collocated) worker machines, for both Tusk and Narwhal-HS.
// Top: latency-throughput curves per worker count. Bottom: maximum
// throughput under a latency SLO — expected close to
// (#workers) x (one-worker throughput), at flat latency (paper §7.2).
#include <algorithm>
#include <map>

#include "bench/bench_util.h"

using namespace nt;

int main() {
  PrintBanner("Figure 7 (top): latency-throughput for 1/4/7/10 workers, 4 validators");

  const std::vector<uint32_t> worker_counts = {1, 4, 7, 10};
  const std::vector<double> per_worker_rates = {60000, 110000, 160000, 190000};
  const std::vector<SystemKind> systems = {SystemKind::kTusk, SystemKind::kNarwhalHs};

  // (system, workers) -> list of (tps, avg latency) for the SLO table.
  std::map<std::pair<int, uint32_t>, std::vector<std::pair<double, double>>> curves;

  PrintSweepHeader();
  for (SystemKind system : systems) {
    for (uint32_t workers : worker_counts) {
      for (double per_worker : per_worker_rates) {
        ExperimentParams params;
        params.system = system;
        params.nodes = 4;
        params.workers = workers;
        params.collocate = false;  // Dedicated machine per worker (paper E2).
        params.rate_tps = per_worker * workers;
        params.tx_size = 512;
        params.duration = Seconds(20);
        params.warmup = Seconds(6);
        params.seed = 42;
        AveragedResult r = RunAveraged(params, 1);
        PrintSweepRow(r);
        curves[{static_cast<int>(system), workers}].push_back({r.tps_mean, r.latency_mean});
      }
      std::printf("\n");
    }
  }

  PrintBanner("Figure 7 (bottom): max throughput under latency SLO");
  std::printf("%-12s %8s | %14s %14s\n", "system", "workers", "max_tps@3.5s", "max_tps@4.5s");
  for (SystemKind system : systems) {
    for (uint32_t workers : worker_counts) {
      const auto& points = curves[{static_cast<int>(system), workers}];
      double best_35 = 0, best_45 = 0;
      for (const auto& [tps, lat] : points) {
        if (lat > 0 && lat <= 3.5) {
          best_35 = std::max(best_35, tps);
        }
        if (lat > 0 && lat <= 4.5) {
          best_45 = std::max(best_45, tps);
        }
      }
      std::printf("%-12s %8u | %14.0f %14.0f\n",
                  SystemName(system), workers, best_35, best_45);
    }
  }
  std::printf("\nLinear-scaling check: max_tps(W) / max_tps(1) should be close to W.\n");
  return 0;
}
