// Ablations for the design choices DESIGN.md calls out:
//   A. Tusk's 3-round piggybacked waves vs DAG-Rider's 4-round waves
//      (paper §5: expected commit latency 4.5 vs 5.5 rounds).
//   B. Collocated vs dedicated worker machines (the scale-out premise §4.2:
//      extra workers only help when they bring their own machine).
//   C. Batch size (the §4.2 "Streaming" trade-off: small batches cap
//      latency; large batches amortize better near saturation).
#include "bench/bench_util.h"

using namespace nt;

int main() {
  PrintBanner("Ablation A: Tusk (3-round waves) vs DAG-Rider (4-round waves)");
  PrintSweepHeader();
  for (SystemKind system : {SystemKind::kTusk, SystemKind::kDagRider}) {
    ExperimentParams params;
    params.system = system;
    params.nodes = 4;
    params.rate_tps = 20000;
    params.duration = Seconds(25);
    params.warmup = Seconds(8);
    params.seed = 17;
    PrintSweepRow(RunAveraged(params, 2));
  }
  std::printf("Expected: same throughput, DAG-Rider ~20-30%% higher latency "
              "(5.5 vs 4.5 round commits).\n");

  PrintBanner("Ablation B: 4 workers collocated (one machine) vs dedicated machines");
  PrintSweepHeader();
  for (bool collocate : {true, false}) {
    ExperimentParams params;
    params.system = SystemKind::kTusk;
    params.nodes = 4;
    params.workers = 4;
    params.collocate = collocate;
    params.rate_tps = 400000;
    params.duration = Seconds(15);
    params.warmup = Seconds(5);
    params.seed = 19;
    ExperimentResult r = RunExperiment(params);
    std::printf("%-12s %6u %8u %7u %10.0f | %10.0f %8s | %9.2f %8s %9.2f   (%s)\n",
                r.system.c_str(), r.nodes, r.workers, r.faults, r.input_tps, r.tps, "-",
                r.avg_latency_s, "-", r.p99_latency_s,
                collocate ? "collocated" : "dedicated");
  }
  std::printf("Expected: collocated workers share one machine's data path and saturate;\n"
              "dedicated workers scale out (paper §4.2).\n");

  PrintBanner("Ablation C: batch size sweep (Tusk, 10 validators, 100k tx/s)");
  std::printf("Note: at 10k tx/s per validator and a 100ms max batch delay, batches cap at\n"
              "~512KB regardless of larger size settings (timer-bound sealing, §4.2).\n");
  PrintSweepHeader();
  for (uint64_t batch_kb : {64u, 128u, 500u, 1000u}) {
    ExperimentParams params;
    params.system = SystemKind::kTusk;
    params.nodes = 10;
    params.rate_tps = 100000;
    params.duration = Seconds(20);
    params.warmup = Seconds(6);
    params.seed = 23;
    params.cluster.narwhal.batch_size_bytes = batch_kb * 1000;
    ExperimentResult r = RunExperiment(params);
    std::printf("%-12s %6u %8u %7u %10.0f | %10.0f %8s | %9.2f %8s %9.2f   (batch=%lluKB)\n",
                r.system.c_str(), r.nodes, r.workers, r.faults, r.input_tps, r.tps, "-",
                r.avg_latency_s, "-", r.p99_latency_s,
                static_cast<unsigned long long>(batch_kb));
  }

  PrintBanner("Ablation D: garbage-collection depth (memory vs sync slack)");
  std::printf("%-10s %14s %14s %12s\n", "gc_depth", "dag_certs", "dag_span", "tps");
  for (Round depth : {10u, 50u, 200u}) {
    ExperimentParams params;
    params.system = SystemKind::kTusk;
    params.nodes = 4;
    params.rate_tps = 20000;
    params.duration = Seconds(20);
    params.warmup = Seconds(5);
    params.seed = 29;
    params.cluster.narwhal.gc_depth = depth;

    ClusterConfig config = params.cluster;
    config.system = params.system;
    config.num_validators = params.nodes;
    config.seed = params.seed;
    Cluster cluster(config);
    cluster.metrics().set_observer(0);
    cluster.metrics().SetWindow(params.warmup, params.duration);
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    LoadGenerator::Options options;
    options.rate_tps = params.rate_tps / params.nodes;
    options.stop_at = params.duration;
    for (uint32_t v = 0; v < params.nodes; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();
    cluster.scheduler().RunUntil(params.duration);
    const Dag& dag = cluster.primary(0)->dag();
    std::printf("%-10llu %14zu %14llu %12.0f\n", static_cast<unsigned long long>(depth),
                dag.TotalCertificates(),
                static_cast<unsigned long long>(dag.HighestRound() - dag.gc_round()),
                cluster.metrics().ThroughputTps());
  }
  std::printf("Expected: certificates held ~ gc_depth * n; throughput unaffected (§3.3).\n");

  return 0;
}
