// Micro-benchmarks for the storage substrate and codec: the roles RocksDB
// and bincode play in the paper's artifact.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/codec.h"
#include "src/store/store.h"
#include "src/types/types.h"

namespace nt {
namespace {

Digest KeyOf(uint64_t i) {
  Writer w;
  w.PutU64(i);
  return Sha256::Hash(w.bytes());
}

void BM_MemStorePut(benchmark::State& state) {
  MemStore store;
  Bytes value(state.range(0), 0x55);
  uint64_t i = 0;
  for (auto _ : state) {
    store.Put(KeyOf(i++), value);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemStorePut)->Arg(512)->Arg(512 * 1024);

void BM_MemStoreGet(benchmark::State& state) {
  MemStore store;
  const int kKeys = 1024;
  for (int i = 0; i < kKeys; ++i) {
    store.Put(KeyOf(i), Bytes(512, 1));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get(KeyOf(i++ % kKeys)));
  }
}
BENCHMARK(BM_MemStoreGet);

void BM_WalStorePut(benchmark::State& state) {
  std::string path = std::string("/tmp/nt_bench_wal_") + std::to_string(state.range(0)) + ".wal";
  std::remove(path.c_str());
  auto store = WalStore::Open(path);
  Bytes value(state.range(0), 0x66);
  uint64_t i = 0;
  for (auto _ : state) {
    store->Put(KeyOf(i++), value);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  store.reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalStorePut)->Arg(512)->Arg(64 * 1024);

void BM_Crc32(benchmark::State& state) {
  Bytes data(state.range(0), 0x77);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(512)->Arg(512 * 1024);

void BM_HeaderEncode(benchmark::State& state) {
  // A realistic header: 10 batch refs, 7 parent certificates with 7 votes.
  BlockHeader header;
  header.author = 1;
  header.round = 42;
  for (int i = 0; i < 10; ++i) {
    BatchRef ref;
    ref.digest = KeyOf(i);
    ref.num_txs = 1000;
    ref.payload_bytes = 512000;
    header.batches.push_back(ref);
  }
  for (int i = 0; i < 7; ++i) {
    Certificate cert;
    cert.header_digest = KeyOf(100 + i);
    cert.round = 41;
    cert.author = i;
    for (int v = 0; v < 7; ++v) {
      cert.votes.emplace_back(v, Signature{});
    }
    header.parents.push_back(cert);
  }
  for (auto _ : state) {
    Writer w;
    header.Encode(w);
    benchmark::DoNotOptimize(w.bytes());
  }
}
BENCHMARK(BM_HeaderEncode);

void BM_HeaderDigest(benchmark::State& state) {
  BlockHeader header;
  header.author = 3;
  header.round = 9;
  for (int i = 0; i < 10; ++i) {
    BatchRef ref;
    ref.digest = KeyOf(i);
    header.batches.push_back(ref);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(header.ComputeDigest());
  }
}
BENCHMARK(BM_HeaderDigest);

}  // namespace
}  // namespace nt

BENCHMARK_MAIN();
