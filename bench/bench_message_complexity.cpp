// The paper's §1 premise, measured: "Message complexity counts the number of
// metadata messages (votes, signatures, hashes) which take minimal bandwidth
// compared to the dissemination of bulk transaction data. Since blocks are
// orders of magnitude larger than a typical consensus message, the
// asymptotic message complexity is practically amortized for fixed mid-size
// committees."
//
// Runs Tusk and Narwhal-HS at load and breaks the traffic down by message
// type: bulk data (batches) vs DAG metadata (headers/votes/certificates) vs
// consensus messages — the metadata share should be a few percent.
#include <cstdio>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  std::printf("=== Message complexity vs bandwidth (paper §1) ===\n");
  for (SystemKind system : {SystemKind::kTusk, SystemKind::kNarwhalHs}) {
    ClusterConfig config;
    config.system = system;
    config.num_validators = 10;
    config.seed = 3;
    Cluster cluster(config);
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    LoadGenerator::Options options;
    options.rate_tps = 10000;  // Per validator: 100k tx/s aggregate.
    options.stop_at = Seconds(15);
    for (ValidatorId v = 0; v < 10; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(15));

    const auto& stats = cluster.network().type_stats();
    uint64_t total_bytes = cluster.network().bytes_sent();
    uint64_t total_msgs = cluster.network().messages_sent();
    std::printf("\n--- %s, 10 validators, 100k tx/s, 15s ---\n", SystemName(system));
    std::printf("%-14s %12s %8s %14s %8s\n", "type", "messages", "msg%", "bytes", "byte%");
    uint64_t bulk_bytes = 0;
    for (const auto& [type, s] : stats) {
      std::printf("%-14s %12llu %7.1f%% %14llu %7.2f%%\n", type.c_str(),
                  static_cast<unsigned long long>(s.messages),
                  100.0 * static_cast<double>(s.messages) / static_cast<double>(total_msgs),
                  static_cast<unsigned long long>(s.bytes),
                  100.0 * static_cast<double>(s.bytes) / static_cast<double>(total_bytes));
      if (type == "Batch" || type == "BatchResponse") {
        bulk_bytes += s.bytes;
      }
    }
    std::printf("bulk (batches) = %.1f%% of all bytes; everything else — the entire\n"
                "'message complexity' of the DAG and consensus — is the remaining %.1f%%.\n",
                100.0 * static_cast<double>(bulk_bytes) / static_cast<double>(total_bytes),
                100.0 - 100.0 * static_cast<double>(bulk_bytes) / static_cast<double>(total_bytes));
  }
  std::printf("\nConclusion (paper §1): optimizing consensus message complexity targets a\n"
              "few percent of the traffic; reliable bulk dissemination is the real cost.\n");
  return 0;
}
