// Engine microbenchmark: isolates the discrete-event core (scheduler +
// network fabric) that every experiment in this reproduction runs on, and
// tracks its trajectory in BENCH_sim_engine.json the way
// BENCH_micro_crypto.json tracks the crypto hot path.
//
// Scenarios:
//   timer_ring    K self-rescheduling timers (the heartbeat pattern of
//                 workers/primaries/clients) — pure scheduler throughput.
//   cancel_churn  schedule-3 / cancel-2 per firing (the retry-timer pattern)
//                 — exercises Cancel() liveness bookkeeping.
//   midsize       THE headline scenario: 50 machines x 4 nodes forwarding
//                 small messages over the full fabric (egress/ingress
//                 queues, FIFO clamp, per-type accounting) plus timer
//                 churn — engine events/sec on a paper-shaped topology.
//   send_enqueue  tight Network::Send loop — cost of one send before any
//                 delivery work.
//   fullstack     RunSchedule over a fixed DST schedule — end-to-end
//                 events/sec with protocol + crypto + invariant work (the
//                 honest, diluted number).
//
// Every scenario reports events- (or sends-) per-second and heap
// allocations per event via a counting global operator new. The *_before
// numbers baked in below were measured at the PR base commit (pre fast
// path: std::function events, unordered_set liveness, std::map machine /
// FIFO / per-type-string lookups) on the same container class CI uses;
// tools/run_bench_engine.sh regenerates the JSON.
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/check/checker.h"
#include "src/check/schedule.h"
#include "src/net/latency.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"

namespace {
uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (n + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace nt {
namespace {

struct Measure {
  double seconds = 0;
  uint64_t allocs = 0;
};

template <typename F>
Measure Timed(F&& body) {
  const uint64_t allocs0 = g_allocs;
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  Measure m;
  m.seconds = std::chrono::duration<double>(t1 - t0).count();
  m.allocs = g_allocs - allocs0;
  return m;
}

// Repetitions per scenario; the fastest is reported. CI containers share
// cores, so a single shot can be 2x slow purely from neighbors — the max
// over a few runs approximates the uncontended rate. Allocation counts are
// deterministic, so they ride along with whichever rep was fastest.
constexpr int kReps = 3;

template <typename Result, typename F>
Result BestOf(F&& run) {
  Result best = run();
  for (int i = 1; i < kReps; ++i) {
    Result r = run();
    if (r.RatePerSec() > best.RatePerSec()) {
      best = r;
    }
  }
  return best;
}

// --------------------------------------------------------------- timer_ring

struct Chain {
  Scheduler* sched;
  uint64_t* fired;
  uint64_t total;

  void Fire() {
    if (++*fired < total) {
      sched->ScheduleAfter(1, [this] { Fire(); });
    }
  }
};

struct RingResult {
  double events_per_sec;
  double allocs_per_event;
  double RatePerSec() const { return events_per_sec; }
};

RingResult TimerRing(uint64_t total_events) {
  Scheduler sched;
  uint64_t fired = 0;
  constexpr int kChains = 512;
  std::vector<Chain> chains(kChains, Chain{&sched, &fired, 0});
  for (Chain& c : chains) {
    c.total = total_events;
  }
  for (int i = 0; i < kChains; ++i) {
    sched.ScheduleAfter(1 + i, [c = &chains[i]] { c->Fire(); });
  }
  Measure m = Timed([&] { sched.RunUntilIdle(); });
  RingResult r;
  r.events_per_sec = static_cast<double>(sched.events_fired()) / m.seconds;
  r.allocs_per_event = static_cast<double>(m.allocs) / static_cast<double>(sched.events_fired());
  return r;
}

// ------------------------------------------------------------- cancel_churn

// Every firing schedules three future events and immediately cancels two —
// the shape of retry timers that are armed per attempt and disarmed on ack.
struct Churner {
  Scheduler* sched;
  uint64_t* fired;
  uint64_t total;

  void Fire() {
    if (++*fired >= total) {
      return;
    }
    Scheduler::TimerId a = sched->ScheduleAfter(5, [this] { Fire(); });
    Scheduler::TimerId b = sched->ScheduleAfter(9, [this] { Fire(); });
    sched->ScheduleAfter(2, [this] { Fire(); });
    sched->Cancel(a);
    sched->Cancel(b);
  }
};

struct ChurnResult {
  double events_per_sec;
  double RatePerSec() const { return events_per_sec; }
};

ChurnResult CancelChurn(uint64_t total_events) {
  Scheduler sched;
  uint64_t fired = 0;
  Churner churner{&sched, &fired, total_events};
  sched.ScheduleAfter(1, [&churner] { churner.Fire(); });
  Measure m = Timed([&] { sched.RunUntilIdle(); });
  // Rate over fired + cancelled: cancels are the point of this scenario.
  return ChurnResult{static_cast<double>(sched.events_fired() + 2 * total_events) / m.seconds};
}

// ------------------------------------------------------- midsize + enqueue

struct PingMsg : Message {
  size_t WireSize() const override { return 128; }
  MessageTypeId TypeId() const override { return MessageTypeId::kTest; }
};

// A node that forwards every delivery to a fixed next hop and, every eighth
// message, arms a fresh timer while cancelling the previous one.
struct MeshNode : NetNode {
  Network* net = nullptr;
  uint32_t id = 0;
  uint32_t next = 0;
  uint64_t received = 0;
  Scheduler::TimerId pending = Scheduler::kInvalidTimer;
  MessagePtr ping;

  void OnMessage(uint32_t, const MessagePtr&) override {
    ++received;
    net->Send(id, next, ping);
    if (received % 8 == 0) {
      net->scheduler()->Cancel(pending);
      pending = net->scheduler()->ScheduleAfter(Millis(50), [] {});
    }
  }
};

struct MeshResult {
  double events_per_sec;
  double sends_per_sec;
  double allocs_per_event;
  double RatePerSec() const { return events_per_sec; }
};

// The mid-size scenario: 50 machines x 4 nodes (the paper's n=50 committee
// with collocated workers), 512 messages in flight, fixed 10ms propagation.
MeshResult MidsizeMesh(uint64_t target_events) {
  Scheduler sched;
  FixedLatencyModel latency(Millis(10));
  NetworkConfig config;
  Network net(&sched, &latency, /*faults=*/nullptr, config, /*seed=*/1);

  constexpr uint32_t kMachines = 50;
  constexpr uint32_t kNodesPerMachine = 4;
  constexpr uint32_t kNodes = kMachines * kNodesPerMachine;
  std::vector<MeshNode> mesh(kNodes);
  MessagePtr ping = std::make_shared<PingMsg>();
  for (uint32_t m = 0; m < kMachines; ++m) {
    uint32_t machine = net.NewMachine();
    for (uint32_t i = 0; i < kNodesPerMachine; ++i) {
      uint32_t id = m * kNodesPerMachine + i;
      net.AddNode(&mesh[id], /*region=*/m % kWanRegionCount, machine);
      mesh[id].net = &net;
      mesh[id].id = id;
      // Co-prime stride: the traffic pattern touches every (src, dst) pair
      // class and never degenerates into a self-loop.
      mesh[id].next = (id * 13 + 7) % kNodes;
      mesh[id].ping = ping;
    }
  }
  for (uint32_t i = 0; i < 512; ++i) {
    net.Send(i % kNodes, mesh[i % kNodes].next, ping);
  }
  Measure m = Timed([&] {
    while (sched.events_fired() < target_events && sched.RunOne()) {
    }
  });
  MeshResult r;
  r.events_per_sec = static_cast<double>(sched.events_fired()) / m.seconds;
  r.sends_per_sec = static_cast<double>(net.messages_sent()) / m.seconds;
  r.allocs_per_event = static_cast<double>(m.allocs) / static_cast<double>(sched.events_fired());
  return r;
}

struct EnqueueResult {
  double sends_per_sec;
  double allocs_per_send;
  double RatePerSec() const { return sends_per_sec; }
};

// Tight Send loop between two machines: the enqueue-side cost of one send
// (queues, FIFO clamp, per-type accounting, delivery scheduling).
EnqueueResult SendEnqueue(uint64_t sends) {
  Scheduler sched;
  FixedLatencyModel latency(Millis(10));
  NetworkConfig config;
  Network net(&sched, &latency, /*faults=*/nullptr, config, /*seed=*/1);
  struct Sink : NetNode {
    void OnMessage(uint32_t, const MessagePtr&) override {}
  };
  Sink a, b;
  uint32_t a_id = net.AddNode(&a, 0, net.NewMachine());
  uint32_t b_id = net.AddNode(&b, 0, net.NewMachine());
  MessagePtr ping = std::make_shared<PingMsg>();
  Measure m = Timed([&] {
    for (uint64_t i = 0; i < sends; ++i) {
      net.Send(a_id, b_id, ping);
    }
  });
  sched.RunUntilIdle();  // Drain outside the timed region.
  EnqueueResult r;
  r.sends_per_sec = static_cast<double>(sends) / m.seconds;
  r.allocs_per_send = static_cast<double>(m.allocs) / static_cast<double>(sends);
  return r;
}

// ---------------------------------------------------------------- fullstack

struct FullResult {
  double events_per_sec;
  double RatePerSec() const { return events_per_sec; }
};

FullResult FullStack() {
  FaultSchedule schedule = GenerateSchedule(7);
  uint64_t events = 0;
  Measure m = Timed([&] {
    CheckResult result = RunSchedule(schedule);
    events = result.events_fired;
  });
  return FullResult{static_cast<double>(events) / m.seconds};
}

}  // namespace
}  // namespace nt

int main(int argc, char** argv) {
  using namespace nt;
  // --quick shrinks the event budgets ~8x (for smoke runs / CI sanity).
  // --only NAME runs a single scenario (no JSON) — for profiling.
  uint64_t scale = 1;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      scale = 8;
    } else if (std::string(argv[i]) == "--only" && i + 1 < argc) {
      only = argv[++i];
    }
  }
  if (!only.empty()) {
    double rate = 0;
    if (only == "timer_ring") {
      rate = TimerRing(4'000'000 / scale).events_per_sec;
    } else if (only == "cancel_churn") {
      rate = CancelChurn(1'000'000 / scale).events_per_sec;
    } else if (only == "midsize") {
      rate = MidsizeMesh(2'000'000 / scale).events_per_sec;
    } else if (only == "send_enqueue") {
      rate = SendEnqueue(1'000'000 / scale).sends_per_sec;
    } else if (only == "fullstack") {
      rate = FullStack().events_per_sec;
    } else {
      std::fprintf(stderr, "unknown scenario: %s\n", only.c_str());
      return 1;
    }
    std::printf("%s %.0f\n", only.c_str(), rate);
    return 0;
  }

  // Pre-PR engine baseline (see file header): best-of-3 per scenario, taken
  // as the best observation across several runs interleaved with the
  // post-PR binary on the same box (conservative — the highest baseline
  // reading is the one recorded). Regenerate a post-PR run with
  // tools/run_bench_engine.sh; these constants only move when the baseline
  // itself is re-measured.
  constexpr double kBeforeTimerRingEps = 9242022;
  constexpr double kBeforeTimerRingAllocsPerEvent = 1.00;
  constexpr double kBeforeCancelChurnEps = 13557423;
  constexpr double kBeforeMidsizeEps = 3234351;
  constexpr double kBeforeMidsizeSendsPerSec = 3235179;
  constexpr double kBeforeMidsizeAllocsPerEvent = 2.12;
  constexpr double kBeforeSendEnqueuePerSec = 5676064;
  constexpr double kBeforeSendEnqueueAllocsPerSend = 2.00;
  constexpr double kBeforeFullstackEps = 118060;

  PrintBanner("simulator-engine microbenchmark");

  RingResult ring = BestOf<RingResult>([&] { return TimerRing(4'000'000 / scale); });
  std::printf("timer_ring    %12.0f events/s   %6.2f allocs/event\n", ring.events_per_sec,
              ring.allocs_per_event);

  ChurnResult churn = BestOf<ChurnResult>([&] { return CancelChurn(1'000'000 / scale); });
  std::printf("cancel_churn  %12.0f events/s (incl. cancels)\n", churn.events_per_sec);

  MeshResult mesh = BestOf<MeshResult>([&] { return MidsizeMesh(2'000'000 / scale); });
  std::printf("midsize       %12.0f events/s   %12.0f sends/s   %6.2f allocs/event\n",
              mesh.events_per_sec, mesh.sends_per_sec, mesh.allocs_per_event);

  EnqueueResult enq = BestOf<EnqueueResult>([&] { return SendEnqueue(1'000'000 / scale); });
  std::printf("send_enqueue  %12.0f sends/s    %6.2f allocs/send\n", enq.sends_per_sec,
              enq.allocs_per_send);

  FullResult full = BestOf<FullResult>([&] { return FullStack(); });
  std::printf("fullstack     %12.0f events/s\n", full.events_per_sec);

  BenchJson json("sim_engine");
  json.Set("timer_ring_events_per_sec", ring.events_per_sec);
  json.Set("timer_ring_allocs_per_event", ring.allocs_per_event);
  json.Set("cancel_churn_events_per_sec", churn.events_per_sec);
  json.Set("midsize_events_per_sec", mesh.events_per_sec);
  json.Set("midsize_sends_per_sec", mesh.sends_per_sec);
  json.Set("midsize_allocs_per_event", mesh.allocs_per_event);
  json.Set("send_enqueue_per_sec", enq.sends_per_sec);
  json.Set("send_enqueue_allocs_per_send", enq.allocs_per_send);
  json.Set("fullstack_events_per_sec", full.events_per_sec);
  json.Set("before_timer_ring_events_per_sec", kBeforeTimerRingEps);
  json.Set("before_timer_ring_allocs_per_event", kBeforeTimerRingAllocsPerEvent);
  json.Set("before_cancel_churn_events_per_sec", kBeforeCancelChurnEps);
  json.Set("before_midsize_events_per_sec", kBeforeMidsizeEps);
  json.Set("before_midsize_sends_per_sec", kBeforeMidsizeSendsPerSec);
  json.Set("before_midsize_allocs_per_event", kBeforeMidsizeAllocsPerEvent);
  json.Set("before_send_enqueue_per_sec", kBeforeSendEnqueuePerSec);
  json.Set("before_send_enqueue_allocs_per_send", kBeforeSendEnqueueAllocsPerSend);
  json.Set("before_fullstack_events_per_sec", kBeforeFullstackEps);
  std::string path = json.Write();
  std::printf("%s\n", path.empty() ? "FAILED to write BENCH_sim_engine.json" : path.c_str());
  return 0;
}
