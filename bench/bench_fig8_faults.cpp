// Reproduces Figure 8: performance under crash faults. 10 validators, one
// collocated worker, with 0, 1, and 3 crashed validators (3 = the maximum
// tolerated), for all four systems.
//
// Expected shape (paper §7.3): baseline- and Batched-HotStuff suffer massive
// throughput loss and an order-of-magnitude latency increase; Narwhal-HS and
// Tusk keep throughput near (alive fraction) x input with bounded latency
// growth — Tusk's latency the least affected.
#include "bench/bench_util.h"

using namespace nt;

int main() {
  PrintBanner("Figure 8: 10 validators with 0 / 1 / 3 crash faults");

  PrintSweepHeader();
  for (uint32_t faults : {0u, 1u, 3u}) {
    for (SystemKind system : {SystemKind::kBaselineHs, SystemKind::kBatchedHs,
                              SystemKind::kNarwhalHs, SystemKind::kTusk}) {
      std::vector<double> rates = system == SystemKind::kBaselineHs
                                      ? std::vector<double>{1000, 2000}
                                      : std::vector<double>{30000, 70000};
      for (double rate : rates) {
        ExperimentParams params;
        params.system = system;
        params.nodes = 10;
        params.workers = 1;
        params.collocate = true;
        params.rate_tps = rate;
        params.tx_size = 512;
        params.faults = faults;
        params.duration = Seconds(40);
        params.warmup = Seconds(10);
        params.seed = 7;
        // Paper §8.4: clients re-submit unsequenced transactions, failing
        // over past crashed entry validators; exhausted samples surface in
        // the `abandoned` column instead of vanishing from loss accounting.
        params.resubmit_timeout = Seconds(4);
        PrintSweepRow(RunAveraged(params, 2));
      }
    }
    std::printf("\n");
  }
  std::printf("Note: with f crashed validators, their clients' transactions are lost with\n"
              "them, so ~(n-f)/n of input is the throughput ceiling (paper: 'the reduction\n"
              "in throughput is in great part due to losing the capacity of faulty\n"
              "validators').\n");
  return 0;
}
