// ntbench — command-line experiment runner, the counterpart of the paper
// artifact's `fab local/remote` scripts: deploy one configuration of one of
// the five systems on the simulated WAN and report throughput/latency.
//
//   ntbench --system tusk --nodes 10 --rate 100000 --duration 20
//   ntbench --system narwhal-hs --nodes 4 --workers 7 --dedicated --rate 700000
//   ntbench --system batched-hs --nodes 10 --faults 3 --rate 70000 --csv
//
// Flags:
//   --system {baseline-hs,batched-hs,narwhal-hs,tusk,dag-rider}   (default tusk)
//   --nodes N         validators (default 4)
//   --workers W       workers per validator (default 1)
//   --dedicated       one machine per worker (default: collocated)
//   --rate TPS        aggregate input rate (default 10000)
//   --tx-size BYTES   transaction size (default 512)
//   --faults F        validators crashed at t=0 (default 0)
//   --duration SECS   simulated run length (default 20)
//   --warmup SECS     measurement warm-up (default 5)
//   --seed S          root seed (default 1)
//   --runs R          averaged runs with distinct seeds (default 1)
//   --batch-kb KB     worker batch size (default 500)
//   --real-crypto     RFC 8032 Ed25519 signatures (default: FastSigner)
//   --async-from S --async-to S --async-factor X   asynchrony window
//   --trace PATH      enable lifecycle tracing; write Chrome trace JSON to
//                     PATH (open in chrome://tracing or ui.perfetto.dev) and
//                     print the per-stage latency breakdown
//   --csv             machine-readable one-line output
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"

using namespace nt;

namespace {

[[noreturn]] void Usage(const char* msg) {
  std::fprintf(stderr, "ntbench: %s\n(see the header of tools/ntbench.cpp for flags)\n", msg);
  std::exit(2);
}

SystemKind ParseSystem(const std::string& name) {
  if (name == "baseline-hs") {
    return SystemKind::kBaselineHs;
  }
  if (name == "batched-hs") {
    return SystemKind::kBatchedHs;
  }
  if (name == "narwhal-hs") {
    return SystemKind::kNarwhalHs;
  }
  if (name == "tusk") {
    return SystemKind::kTusk;
  }
  if (name == "dag-rider") {
    return SystemKind::kDagRider;
  }
  Usage("unknown --system");
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentParams params;
  params.system = SystemKind::kTusk;
  params.duration = Seconds(20);
  params.warmup = Seconds(5);
  int runs = 1;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(("missing value for " + flag).c_str());
      }
      return argv[++i];
    };
    if (flag == "--system") {
      params.system = ParseSystem(next());
    } else if (flag == "--nodes") {
      params.nodes = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--workers") {
      params.workers = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--dedicated") {
      params.collocate = false;
    } else if (flag == "--rate") {
      params.rate_tps = std::stod(next());
    } else if (flag == "--tx-size") {
      params.tx_size = std::stoull(next());
    } else if (flag == "--faults") {
      params.faults = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--duration") {
      params.duration = Seconds(std::stoll(next()));
    } else if (flag == "--warmup") {
      params.warmup = Seconds(std::stoll(next()));
    } else if (flag == "--seed") {
      params.seed = std::stoull(next());
    } else if (flag == "--runs") {
      runs = std::stoi(next());
    } else if (flag == "--batch-kb") {
      params.cluster.narwhal.batch_size_bytes = std::stoull(next()) * 1000;
    } else if (flag == "--real-crypto") {
      params.cluster.signer_kind = SignerKind::kEd25519;
    } else if (flag == "--async-from") {
      params.async_start = Seconds(std::stoll(next()));
    } else if (flag == "--async-to") {
      params.async_end = Seconds(std::stoll(next()));
    } else if (flag == "--async-factor") {
      params.async_factor = std::stod(next());
    } else if (flag == "--trace") {
      params.trace = true;
      params.trace_path = next();
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--help" || flag == "-h") {
      Usage("usage");
    } else {
      Usage(("unknown flag " + flag).c_str());
    }
  }
  if (params.nodes < 1 || params.faults >= params.nodes) {
    Usage("need nodes >= 1 and faults < nodes");
  }
  if (params.warmup >= params.duration) {
    Usage("warmup must be below duration");
  }

  AveragedResult result = RunAveraged(params, runs);
  if (csv) {
    std::printf("system,nodes,workers,faults,input_tps,tps,tps_stddev,avg_latency_s,"
                "latency_stddev_s,p99_latency_s,abandoned\n");
    std::printf("%s,%u,%u,%u,%.0f,%.0f,%.0f,%.3f,%.3f,%.3f,%llu\n", result.first.system.c_str(),
                result.first.nodes, result.first.workers, result.first.faults,
                result.first.input_tps, result.tps_mean, result.tps_stddev, result.latency_mean,
                result.latency_stddev, result.p99_mean,
                static_cast<unsigned long long>(result.first.abandoned_txs));
  } else {
    PrintSweepHeader();
    PrintSweepRow(result);
  }
  if (result.first.traced) {
    PrintLatencyBreakdown(result.first);
    if (!params.trace_path.empty()) {
      std::fprintf(stderr, "%s trace to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                   result.first.trace_written ? "wrote" : "FAILED to write",
                   params.trace_path.c_str());
    }
  }
  return 0;
}
