// ntbench — command-line experiment runner, the counterpart of the paper
// artifact's `fab local/remote` scripts: deploy one configuration of one of
// the six systems on the simulated WAN and report throughput/latency.
//
//   ntbench --system tusk --nodes 10 --rate 100000 --duration 20
//   ntbench --system narwhal-hs --nodes 4 --workers 7 --dedicated --rate 700000
//   ntbench --system batched-hs --nodes 10 --faults 3 --rate 70000 --csv
//
// Flags:
//   --system {baseline-hs,batched-hs,narwhal-hs,tusk,dag-rider,bullshark}   (default tusk)
//   --nodes N         validators (default 4)
//   --workers W       workers per validator (default 1)
//   --dedicated       one machine per worker (default: collocated)
//   --rate TPS        aggregate input rate (default 10000)
//   --tx-size BYTES   transaction size (default 512)
//   --faults F        validators crashed at t=0 (default 0)
//   --duration SECS   simulated run length (default 20)
//   --warmup SECS     measurement warm-up (default 5)
//   --seed S          root seed (default 1)
//   --runs R          averaged runs with distinct seeds (default 1)
//   --jobs N          fork up to N workers for the --runs sweep (default 1)
//   --batch-kb KB     worker batch size (default 500)
//   --shards S        sharded execution lanes per validator (default 0 = off;
//                     Narwhal-based systems only — switches clients to the
//                     accounts/transfer workload and reports exec counters)
//   --cross-ratio R   fraction of transfers that cross lanes (default 0)
//   --zipf THETA      zipf skew for account selection (default 0 = uniform)
//   --hot-ratio R     chance a transfer debits the lane's hottest account
//   --real-crypto     RFC 8032 Ed25519 signatures (default: FastSigner)
//   --async-from S --async-to S --async-factor X   asynchrony window
//   --trace PATH      enable lifecycle tracing; write Chrome trace JSON to
//                     PATH (open in chrome://tracing or ui.perfetto.dev) and
//                     print the per-stage latency breakdown
//   --csv             machine-readable one-line output
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "tools/job_runner.h"

using namespace nt;

namespace {

[[noreturn]] void Usage(const char* msg) {
  std::fprintf(stderr, "ntbench: %s\n(see the header of tools/ntbench.cpp for flags)\n", msg);
  std::exit(2);
}

SystemKind ParseSystem(const std::string& name) {
  if (name == "baseline-hs") {
    return SystemKind::kBaselineHs;
  }
  if (name == "batched-hs") {
    return SystemKind::kBatchedHs;
  }
  if (name == "narwhal-hs") {
    return SystemKind::kNarwhalHs;
  }
  if (name == "tusk") {
    return SystemKind::kTusk;
  }
  if (name == "dag-rider") {
    return SystemKind::kDagRider;
  }
  if (name == "bullshark") {
    return SystemKind::kBullshark;
  }
  Usage("unknown --system");
}

// Parallel counterpart of RunAveraged. Run 0 executes in-process so its full
// ExperimentResult can supply the metadata fields (and any --trace output);
// the remaining runs fork via RunJobsForked and ship their three samples back
// over the pipe as a text line. Seeds follow RunAveraged's cumulative walk
// (run i uses seed + i*(i+1)/2) and samples feed the stats in run order, so
// the reported means and stddevs are bit-identical to a sequential sweep.
AveragedResult RunAveragedForked(const ExperimentParams& base, int runs, int jobs) {
  ExperimentResult first = RunExperiment(base);
  std::vector<std::array<double, 3>> samples(static_cast<size_t>(runs));
  samples[0] = {first.tps, first.avg_latency_s, first.p99_latency_s};
  RunJobsForked(
      static_cast<uint64_t>(runs) - 1, jobs,
      [&](uint64_t j) {
        const uint64_t i = j + 1;
        ExperimentParams p = base;
        p.seed = base.seed + i * (i + 1) / 2;
        p.trace = false;  // Tracing belongs to run 0 in the parent.
        ExperimentResult r = RunExperiment(p);
        // %.17g round-trips doubles exactly, so the parent's stats see the
        // same bits a sequential run would.
        std::printf("SAMPLE %.17g %.17g %.17g\n", r.tps, r.avg_latency_s, r.p99_latency_s);
        return 0;
      },
      [&](uint64_t j, const JobOutput& out) {
        const char* line = std::strstr(out.text.c_str(), "SAMPLE ");
        std::array<double, 3>& s = samples[static_cast<size_t>(j) + 1];
        if (out.exit_code != 0 || line == nullptr ||
            std::sscanf(line, "SAMPLE %lg %lg %lg", &s[0], &s[1], &s[2]) != 3) {
          std::fprintf(stderr, "ntbench: worker for run %llu failed (exit %d)\n",
                       static_cast<unsigned long long>(j + 1), out.exit_code);
          std::exit(2);
        }
      });
  AveragedResult out;
  out.first = first;
  SampleStats tps, latency, p99;
  for (const std::array<double, 3>& s : samples) {
    tps.Add(s[0]);
    latency.Add(s[1]);
    p99.Add(s[2]);
  }
  out.tps_mean = tps.Mean();
  out.tps_stddev = tps.StdDev();
  out.latency_mean = latency.Mean();
  out.latency_stddev = latency.StdDev();
  out.p99_mean = p99.Mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentParams params;
  params.system = SystemKind::kTusk;
  params.duration = Seconds(20);
  params.warmup = Seconds(5);
  int runs = 1;
  int jobs = 1;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage(("missing value for " + flag).c_str());
      }
      return argv[++i];
    };
    if (flag == "--system") {
      params.system = ParseSystem(next());
    } else if (flag == "--nodes") {
      params.nodes = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--workers") {
      params.workers = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--dedicated") {
      params.collocate = false;
    } else if (flag == "--rate") {
      params.rate_tps = std::stod(next());
    } else if (flag == "--tx-size") {
      params.tx_size = std::stoull(next());
    } else if (flag == "--faults") {
      params.faults = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--duration") {
      params.duration = Seconds(std::stoll(next()));
    } else if (flag == "--warmup") {
      params.warmup = Seconds(std::stoll(next()));
    } else if (flag == "--seed") {
      params.seed = std::stoull(next());
    } else if (flag == "--runs") {
      runs = std::stoi(next());
    } else if (flag == "--jobs") {
      jobs = std::stoi(next());
      if (jobs < 1) {
        Usage("--jobs needs a positive worker count");
      }
    } else if (flag == "--batch-kb") {
      params.cluster.narwhal.batch_size_bytes = std::stoull(next()) * 1000;
    } else if (flag == "--shards") {
      params.shards = static_cast<uint32_t>(std::stoul(next()));
    } else if (flag == "--cross-ratio") {
      params.cross_ratio = std::stod(next());
    } else if (flag == "--zipf") {
      params.zipf_theta = std::stod(next());
    } else if (flag == "--hot-ratio") {
      params.hot_ratio = std::stod(next());
    } else if (flag == "--real-crypto") {
      params.cluster.signer_kind = SignerKind::kEd25519;
    } else if (flag == "--async-from") {
      params.async_start = Seconds(std::stoll(next()));
    } else if (flag == "--async-to") {
      params.async_end = Seconds(std::stoll(next()));
    } else if (flag == "--async-factor") {
      params.async_factor = std::stod(next());
    } else if (flag == "--trace") {
      params.trace = true;
      params.trace_path = next();
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--help" || flag == "-h") {
      Usage("usage");
    } else {
      Usage(("unknown flag " + flag).c_str());
    }
  }
  if (params.nodes < 1 || params.faults >= params.nodes) {
    Usage("need nodes >= 1 and faults < nodes");
  }
  if (params.warmup >= params.duration) {
    Usage("warmup must be below duration");
  }
  if (params.shards > 0 &&
      (params.system == SystemKind::kBaselineHs || params.system == SystemKind::kBatchedHs)) {
    Usage("--shards needs a Narwhal-based system (its clients submit executable payloads)");
  }
  if (params.cross_ratio < 0 || params.cross_ratio > 1 || params.hot_ratio < 0 ||
      params.hot_ratio > 1) {
    Usage("--cross-ratio and --hot-ratio must be within [0, 1]");
  }

  AveragedResult result = (jobs > 1 && runs > 1) ? RunAveragedForked(params, runs, jobs)
                                                 : RunAveraged(params, runs);
  if (csv) {
    std::printf("system,nodes,workers,faults,input_tps,tps,tps_stddev,avg_latency_s,"
                "latency_stddev_s,p99_latency_s,abandoned,exec_applied,exec_rejected,"
                "exec_cross\n");
    std::printf("%s,%u,%u,%u,%.0f,%.0f,%.0f,%.3f,%.3f,%.3f,%llu,%llu,%llu,%llu\n",
                result.first.system.c_str(), result.first.nodes, result.first.workers,
                result.first.faults, result.first.input_tps, result.tps_mean, result.tps_stddev,
                result.latency_mean, result.latency_stddev, result.p99_mean,
                static_cast<unsigned long long>(result.first.abandoned_txs),
                static_cast<unsigned long long>(result.first.exec_applied),
                static_cast<unsigned long long>(result.first.exec_rejected),
                static_cast<unsigned long long>(result.first.exec_cross));
  } else {
    PrintSweepHeader();
    PrintSweepRow(result);
  }
  if (result.first.traced) {
    PrintLatencyBreakdown(result.first);
    if (!params.trace_path.empty()) {
      std::fprintf(stderr, "%s trace to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                   result.first.trace_written ? "wrote" : "FAILED to write",
                   params.trace_path.c_str());
    }
  }
  return 0;
}
