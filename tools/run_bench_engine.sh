#!/usr/bin/env sh
# Build and run the simulator-engine microbenchmark, refreshing the committed
# BENCH_sim_engine.json at the repo root. Any extra arguments are passed to
# the bench binary, e.g.:
#   tools/run_bench_engine.sh             # full run (~30s), updates the JSON
#   tools/run_bench_engine.sh --quick     # 8x smaller workloads, smoke only
#   tools/run_bench_engine.sh --only midsize   # one scenario, rate to stdout
#
# The bench reports current numbers next to the baked-in pre-fast-path
# baseline (the before_* fields), so the JSON is a self-contained
# before/after record. Each scenario takes the best of 3 in-process
# repetitions to damp scheduler noise; treat single runs on a loaded machine
# as a lower bound.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake --preset default -S "$repo" > /dev/null
fi
cmake --build "$build" --target bench_micro_sched -j "$(nproc)" > /dev/null

# The bench writes BENCH_sim_engine.json into its working directory; run at
# the repo root so the committed copy is the one refreshed.
cd "$repo"
exec "$build/bench/bench_micro_sched" "$@"
