// Fork-based parallel job map for the CLI tools (ntcheck --jobs, ntbench
// --jobs).
//
// Each job runs in its own forked process with stdout redirected to a pipe;
// the parent streams the output back and re-emits it in job order, so the
// merged stream is byte-identical to a sequential run regardless of
// completion order. No simulator state ever crosses a process boundary —
// every job builds its own Scheduler/Network from its seed — so per-seed
// determinism is preserved by construction, and a crashing job takes down
// only its own process (surfaced via the exit code), not the whole sweep.
#ifndef TOOLS_JOB_RUNNER_H_
#define TOOLS_JOB_RUNNER_H_

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace nt {

struct JobOutput {
  std::string text;   // Everything the job wrote to stdout.
  int exit_code = 0;  // The value `run` returned (or 128+signal on a crash).
};

// Runs jobs 0..count-1 with up to `jobs` concurrent forked workers. `run(i)`
// executes in the child; its return value becomes the job's exit code and
// everything it prints to stdout is captured. `emit(i, out)` is called in
// the parent exactly once per job, in increasing job order.
inline void RunJobsForked(uint64_t count, int jobs, const std::function<int(uint64_t)>& run,
                          const std::function<void(uint64_t, const JobOutput&)>& emit) {
  struct Child {
    pid_t pid;
    int fd;
    uint64_t job;
    std::string buf;
  };
  std::vector<Child> active;
  std::map<uint64_t, JobOutput> done;  // Finished jobs waiting their turn.
  uint64_t next_spawn = 0;
  uint64_t next_emit = 0;

  auto spawn_up_to_limit = [&] {
    while (active.size() < static_cast<size_t>(jobs) && next_spawn < count) {
      int pipe_fds[2];
      if (pipe(pipe_fds) != 0) {
        std::perror("job_runner: pipe");
        std::exit(2);
      }
      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = fork();
      if (pid < 0) {
        std::perror("job_runner: fork");
        std::exit(2);
      }
      if (pid == 0) {
        close(pipe_fds[0]);
        dup2(pipe_fds[1], STDOUT_FILENO);
        close(pipe_fds[1]);
        const int code = run(next_spawn);
        std::fflush(stdout);
        _exit(code);
      }
      close(pipe_fds[1]);
      active.push_back(Child{pid, pipe_fds[0], next_spawn, {}});
      ++next_spawn;
    }
  };

  auto flush_in_order = [&] {
    for (auto it = done.find(next_emit); it != done.end(); it = done.find(next_emit)) {
      emit(it->first, it->second);
      done.erase(it);
      ++next_emit;
    }
  };

  spawn_up_to_limit();
  while (next_emit < count) {
    std::vector<pollfd> fds;
    fds.reserve(active.size());
    for (const Child& c : active) {
      fds.push_back(pollfd{c.fd, POLLIN, 0});
    }
    if (poll(fds.data(), fds.size(), -1) < 0) {
      continue;  // EINTR: retry.
    }
    for (size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP)) == 0) {
        continue;
      }
      char chunk[4096];
      const ssize_t n = read(fds[i].fd, chunk, sizeof(chunk));
      if (n > 0) {
        active[i].buf.append(chunk, static_cast<size_t>(n));
        continue;
      }
      // EOF: the child has exited (or closed stdout); reap it.
      close(active[i].fd);
      int status = 0;
      waitpid(active[i].pid, &status, 0);
      JobOutput out;
      out.text = std::move(active[i].buf);
      out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                        : 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
      done.emplace(active[i].job, std::move(out));
      active.erase(active.begin() + static_cast<long>(i));
      break;  // fds indices are stale now; rebuild on the next pass.
    }
    flush_in_order();
    spawn_up_to_limit();
  }
}

}  // namespace nt

#endif  // TOOLS_JOB_RUNNER_H_
