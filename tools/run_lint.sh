#!/usr/bin/env sh
# Build ntlint (if needed) and lint the tree. Any extra arguments are passed
# straight to the tool, e.g.:
#   tools/run_lint.sh                  # lint src/, summary only
#   tools/run_lint.sh --verbose        # also echo suppressed findings
#   tools/run_lint.sh --strict-allows  # stale allow annotations fail (CI mode)
#   tools/run_lint.sh --jobs 4         # forked pass 1, byte-identical output
#   tools/run_lint.sh src/narwhal      # lint one subtree
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake --preset default -S "$repo" > /dev/null
fi
cmake --build "$build" --target ntlint -j "$(nproc)" > /dev/null

paths=""
flags=""
for arg in "$@"; do
  case "$arg" in
    -*) flags="$flags $arg" ;;
    *) paths="$paths $repo/$arg" ;;
  esac
done
if [ -z "$paths" ]; then
  paths="$repo/src"
fi

# shellcheck disable=SC2086  # word splitting is intended for the arg lists
exec "$build/tools/ntlint" $flags $paths
