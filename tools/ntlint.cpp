// ntlint CLI — determinism & protocol-safety lint for this repo.
//
//   ntlint [options] <path>...      paths are files or directories
//
// Options:
//   --verbose            also print suppressed/baselined findings inline
//   --rules              list the rule set and exit
//   --format=sarif       emit a SARIF 2.1.0 log instead of the text summary
//   --jobs N             fork N workers for pass 1 (byte-identical output)
//   --strict-allows      stale ntlint:allow annotations fail the run (CI mode)
//   --baseline FILE      grandfather findings listed in FILE (they don't gate)
//   --write-baseline F   write the current unsuppressed findings to F and exit
//   --fuzz-corpus FILE   override the fuzz_decode_test.cpp location for R9
//
// Exit status: 0 when every finding is suppressed by an explicit
// `// ntlint:allow(<rule>): <reason>` annotation or grandfathered by the
// baseline (and, under --strict-allows, no annotation is stale), 1 otherwise.
// CI treats a nonzero exit as a red build.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/lint/model.h"
#include "tools/job_runner.h"

namespace {

void PrintRules() {
  std::printf(
      "ntlint rules (per-file):\n"
      "  nondet               R1: wall-clock/entropy/thread identifiers (std::chrono, rand,\n"
      "                       random_device, getenv, std::thread, mutex declarations, ...)\n"
      "                       outside src/sim/ and bench/\n"
      "  unordered-iter       R2: iteration over std::unordered_{map,set} whose body sends,\n"
      "                       hashes, serializes, streams, or appends (order escapes)\n"
      "  quorum-arith         R3: literal threshold arithmetic (2*f, f+1, n/3) outside the\n"
      "                       Committee helpers in src/types/committee.h\n"
      "  codec-mismatch       R4: Encode/Decode pair whose codec op sequences drift\n"
      "  pointer-key          R5: std::map/set (or unordered) keyed by raw pointer value\n"
      "  deferred-capture     R8: Scheduler lambda captures by reference, or a retry\n"
      "                       reschedules itself with a stale literal constant\n"
      "\n"
      "ntlint rules (whole-repo semantic model):\n"
      "  wal-before-send      R6: signed message sent with no Store::Sync() earlier on the\n"
      "                       path (checked through two levels of call inlining)\n"
      "  recover-parity       R7: WAL-record Persist field ops drift from the Recover arm,\n"
      "                       or a record tag has no Recover arm at all\n"
      "  registry-exhaustive  R9: MessageTypeId without codec/handler/fuzz-corpus legs\n"
      "\n"
      "suppress with:  // ntlint:allow(<rule>[,<rule>]): <reason>\n"
      "(same line as the finding, or the line directly above)\n");
}

constexpr const char* kUsage =
    "usage: ntlint [--verbose] [--rules] [--format=sarif] [--jobs N] [--strict-allows]\n"
    "              [--baseline FILE] [--write-baseline FILE] [--fuzz-corpus FILE] <path>...\n";

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Pass 1 over `files`, forked across `jobs` workers. Every worker serializes
// its shard's FileFacts to stdout; the parent re-parses them in file order,
// so pass 2 sees exactly the merged model a sequential run builds and the
// output is byte-identical by construction.
bool ExtractFactsParallel(const std::vector<std::string>& files, int jobs,
                          std::vector<nt::lint::FileFacts>* facts) {
  if (jobs > static_cast<int>(files.size())) {
    jobs = static_cast<int>(files.size());
  }
  // Interleaved assignment (file i -> worker i mod N) balances big and small
  // files across workers; the parent restores file order by sorting the
  // merged facts on path, which is all pass 2 depends on.
  const size_t shards = static_cast<size_t>(jobs);
  bool ok = true;
  nt::RunJobsForked(
      shards, jobs,
      [&](uint64_t shard) {
        for (size_t i = shard; i < files.size(); i += shards) {
          std::fputs(nt::lint::SerializeFacts(nt::lint::ExtractFactsFromDisk(files[i])).c_str(),
                     stdout);
        }
        return 0;
      },
      [&](uint64_t, const nt::JobOutput& out) {
        if (out.exit_code != 0 || !nt::lint::ParseFacts(out.text, facts)) {
          ok = false;
        }
      });
  if (!ok) {
    return false;
  }
  std::sort(facts->begin(), facts->end(),
            [](const nt::lint::FileFacts& a, const nt::lint::FileFacts& b) {
              return a.path < b.path;
            });
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  bool strict_allows = false;
  bool sarif = false;
  int jobs = 1;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string corpus_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ntlint: %s needs a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--rules") {
      PrintRules();
      return 0;
    } else if (arg == "--strict-allows") {
      strict_allows = true;
    } else if (arg == "--format=sarif") {
      sarif = true;
    } else if (arg == "--format=text") {
      sarif = false;
    } else if (arg == "--jobs") {
      jobs = std::atoi(value("--jobs"));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(arg.c_str() + 7);
    } else if (arg == "--baseline") {
      baseline_path = value("--baseline");
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--write-baseline") {
      write_baseline_path = value("--write-baseline");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg == "--fuzz-corpus") {
      corpus_path = value("--fuzz-corpus");
    } else if (arg.rfind("--fuzz-corpus=", 0) == 0) {
      corpus_path = arg.substr(14);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ntlint: unknown flag '%s'\n%s", arg.c_str(), kUsage);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  nt::lint::Summary summary;
  if (jobs > 1) {
    std::vector<std::string> files;
    for (const std::string& p : paths) {
      std::vector<std::string> collected = nt::lint::CollectSourceFiles(p);
      files.insert(files.end(), collected.begin(), collected.end());
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    std::string corpus = corpus_path.empty() ? nt::lint::LocateFuzzCorpus(paths) : corpus_path;
    std::string corpus_content;
    const bool have_corpus = !corpus.empty() && ReadFile(corpus, &corpus_content);
    std::vector<nt::lint::FileFacts> facts;
    if (!ExtractFactsParallel(files, jobs, &facts)) {
      std::fprintf(stderr, "ntlint: a forked lint worker failed\n");
      return 2;
    }
    summary = nt::lint::AssembleSummary(std::move(facts),
                                        have_corpus ? &corpus_content : nullptr);
  } else {
    summary = nt::lint::LintPathsWithCorpus(paths, corpus_path);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ntlint: cannot write baseline '%s'\n", write_baseline_path.c_str());
      return 2;
    }
    out << nt::lint::WriteBaseline(summary);
    std::printf("ntlint: baseline with %d finding(s) written to %s\n", summary.unsuppressed(),
                write_baseline_path.c_str());
    return 0;
  }
  if (!baseline_path.empty()) {
    std::string text;
    if (!ReadFile(baseline_path, &text)) {
      std::fprintf(stderr, "ntlint: cannot read baseline '%s'\n", baseline_path.c_str());
      return 2;
    }
    nt::lint::MarkBaseline(&summary, nt::lint::ParseBaseline(text));
  }

  if (sarif) {
    std::fputs(nt::lint::FormatSarif(summary).c_str(), stdout);
  } else {
    std::fputs(nt::lint::FormatSummary(summary, verbose).c_str(), stdout);
  }
  if (summary.actionable() != 0) {
    return 1;
  }
  if (strict_allows && summary.stale_allows() != 0) {
    if (!sarif) {
      std::fprintf(stderr,
                   "ntlint: --strict-allows: %d stale allow annotation(s) must be removed\n",
                   summary.stale_allows());
    }
    return 1;
  }
  return 0;
}
