// ntlint CLI — determinism & protocol-safety lint for this repo.
//
//   ntlint [options] <path>...      paths are files or directories
//
// Options:
//   --verbose   also print suppressed findings inline
//   --rules     list the rule set and exit
//
// Exit status: 0 when every finding is suppressed by an explicit
// `// ntlint:allow(<rule>): <reason>` annotation, 1 otherwise. CI treats a
// nonzero exit as a red build.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

void PrintRules() {
  std::printf(
      "ntlint rules:\n"
      "  nondet          R1: wall-clock/entropy/thread identifiers (std::chrono, rand,\n"
      "                  random_device, getenv, std::thread, mutex declarations, ...)\n"
      "                  outside src/sim/ and bench/\n"
      "  unordered-iter  R2: iteration over std::unordered_{map,set} whose body sends,\n"
      "                  hashes, serializes, streams, or appends (order escapes)\n"
      "  quorum-arith    R3: literal threshold arithmetic (2*f, f+1, n/3) outside the\n"
      "                  Committee helpers in src/types/committee.h\n"
      "  codec-mismatch  R4: Encode/Decode pair whose codec op sequences drift\n"
      "  pointer-key     R5: std::map/set (or unordered) keyed by raw pointer value\n"
      "\n"
      "suppress with:  // ntlint:allow(<rule>[,<rule>]): <reason>\n"
      "(same line as the finding, or the line directly above)\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      PrintRules();
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: ntlint [--verbose] [--rules] <path>...\n");
      return 0;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: ntlint [--verbose] [--rules] <path>...\n");
    return 2;
  }

  nt::lint::Summary summary = nt::lint::LintPaths(paths);
  std::string report = nt::lint::FormatSummary(summary, verbose);
  std::fputs(report.c_str(), stdout);
  return summary.unsuppressed() == 0 ? 0 : 1;
}
