// ntcheck: deterministic simulation-testing CLI (see src/check/).
//
//   ntcheck --seeds 64                 fuzz 64 seeded fault schedules
//   ntcheck --seeds 64 --start 1000    ... starting from seed 1000
//   ntcheck --system tusk              pin the system (default: seed picks)
//   ntcheck --shards 4                 pin execution lanes per validator
//   ntcheck --bug accept_2f_certs      mutation mode: enable a seeded bug
//   ntcheck --replay FILE              replay one repro file
//   ntcheck --corpus FILE              replay every repro block in FILE
//   ntcheck --no-shrink                report failures without minimizing
//   ntcheck --out FILE                 write the shrunk repro here
//   ntcheck --jobs N                   fuzz seeds across N forked workers
//
// --jobs forks one process per seed (N at a time) and merges the captured
// output in seed order, so verdicts are byte-identical to a sequential
// sweep. It applies to the seed-sweep mode only: --replay and --corpus stay
// sequential, --bug ignores it (the sweep stops at the first violation, an
// inherently sequential contract), and --out is refused under --jobs
// (concurrent failing seeds would race on the file; shrunk repros still
// print inline).
//
// Exit code 0 = all schedules clean, 1 = invariant violation, 2 = usage.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "tools/job_runner.h"

#include "src/check/checker.h"
#include "src/check/shrinker.h"

namespace {

using nt::CheckResult;
using nt::FaultSchedule;
using nt::SystemKind;

void PrintVerdict(const FaultSchedule& schedule, const CheckResult& result) {
  const char* system_name = schedule.system == SystemKind::kTusk ? "tusk"
                            : schedule.system == SystemKind::kBullshark ? "bullshark"
                                                                        : "narwhal-hs";
  std::printf("seed %-8llu %-10s n=%-3u faults=%-2zu commits=%-5llu %s\n",
              static_cast<unsigned long long>(schedule.seed), system_name,
              schedule.validators, schedule.FaultCount(),
              static_cast<unsigned long long>(result.commits), result.Summary().c_str());
  for (const nt::Violation& v : result.violations) {
    std::printf("    [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
  }
}

// Runs one failing schedule through the shrinker and reports/writes the
// minimized repro. Returns the shrunk schedule's encoding.
void ShrinkAndReport(const FaultSchedule& schedule, bool shrink, const std::string& out_path) {
  if (!shrink) {
    return;
  }
  std::printf("shrinking...\n");
  nt::ShrinkResult shrunk = nt::Shrink(schedule);
  std::printf("shrunk to n=%u faults=%zu after %u runs: %s\n", shrunk.schedule.validators,
              shrunk.schedule.FaultCount(), shrunk.runs, shrunk.verdict.Summary().c_str());
  std::string encoded = shrunk.schedule.Encode();
  std::printf("---- repro ----\n%s---------------\n", encoded.c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << encoded;
    std::printf("repro written to %s\n", out_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 16;
  uint64_t start = 1;
  std::optional<SystemKind> system;
  bool both_systems = false;
  bool shrink = true;
  bool bug_accept_2f = false;
  bool bug_skip_support = false;
  bool bug_skip_bullshark = false;
  bool bug_skip_cross_lock = false;
  std::optional<uint32_t> shards;
  std::string replay_path;
  std::string corpus_path;
  std::string out_path;
  int jobs = 1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--system") {
      std::string v = next();
      if (v == "tusk") {
        system = SystemKind::kTusk;
      } else if (v == "narwhal-hs") {
        system = SystemKind::kNarwhalHs;
      } else if (v == "bullshark") {
        system = SystemKind::kBullshark;
      } else if (v == "both") {
        both_systems = true;
      } else {
        std::fprintf(stderr, "unknown system '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--shards") {
      uint64_t v = std::strtoull(next(), nullptr, 10);
      if (v < 1) {
        std::fprintf(stderr, "--shards needs a positive lane count\n");
        return 2;
      }
      shards = static_cast<uint32_t>(v);
    } else if (arg == "--bug") {
      std::string v = next();
      if (v == "accept_2f_certs") {
        bug_accept_2f = true;
      } else if (v == "skip_tusk_support") {
        bug_skip_support = true;
      } else if (v == "skip_bullshark_support_votes") {
        bug_skip_bullshark = true;
      } else if (v == "skip_cross_shard_lock") {
        bug_skip_cross_lock = true;
      } else {
        std::fprintf(stderr, "unknown bug '%s'\n", v.c_str());
        return 2;
      }
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--corpus") {
      corpus_path = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--no-shrink") {
      shrink = false;
    } else if (arg == "--jobs") {
      jobs = std::atoi(next());
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs needs a positive worker count\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ntcheck [--seeds N] [--start S] [--system tusk|narwhal-hs|bullshark|both]\n"
          "               [--shards S]\n"
          "               [--bug accept_2f_certs|skip_tusk_support|skip_bullshark_support_votes"
          "|skip_cross_shard_lock]\n"
          "               [--replay FILE] [--corpus FILE] [--no-shrink] [--out FILE]\n"
          "               [--jobs N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  int failures = 0;

  auto run_one = [&](const FaultSchedule& schedule, bool self_check) {
    CheckResult result = self_check ? nt::RunScheduleWithDeterminismCheck(schedule)
                                    : nt::RunSchedule(schedule);
    PrintVerdict(schedule, result);
    if (!result.ok()) {
      ++failures;
      ShrinkAndReport(schedule, shrink, out_path);
    }
  };

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::optional<FaultSchedule> schedule = FaultSchedule::Decode(buffer.str());
    if (!schedule.has_value()) {
      std::fprintf(stderr, "cannot parse repro %s\n", replay_path.c_str());
      return 2;
    }
    run_one(*schedule, /*self_check=*/true);
    return failures > 0 ? 1 : 0;
  }

  if (!corpus_path.empty()) {
    std::ifstream in(corpus_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", corpus_path.c_str());
      return 2;
    }
    // Repro blocks separated by `---` lines; '#' comments allowed.
    std::string line;
    std::string block;
    uint32_t blocks = 0;
    auto flush = [&] {
      if (block.find('=') == std::string::npos) {
        block.clear();
        return;  // Blank/comment-only block.
      }
      std::optional<FaultSchedule> schedule = FaultSchedule::Decode(block);
      if (!schedule.has_value()) {
        std::fprintf(stderr, "cannot parse corpus block ending at line %u\n", blocks);
        std::exit(2);
      }
      ++blocks;
      run_one(*schedule, /*self_check=*/false);
      block.clear();
    };
    while (std::getline(in, line)) {
      if (line.rfind("---", 0) == 0) {
        flush();
      } else {
        block += line;
        block += '\n';
      }
    }
    flush();
    std::printf("corpus: %u repro(s), %d failure(s)\n", blocks, failures);
    return failures > 0 ? 1 : 0;
  }

  // The seed draw never picks Bullshark (frozen at the historical two-way
  // choice for corpus stability), so its mutation can only surface on pinned
  // schedules: default the pin when the bug asks for it.
  if (bug_skip_bullshark && !system.has_value() && !both_systems) {
    system = SystemKind::kBullshark;
  }
  // Likewise the seed draw never enables execution lanes; the cross-shard
  // mutation needs them, so default the pin to the CI shard band's width.
  if (bug_skip_cross_lock && !shards.has_value()) {
    shards = 4;
  }

  auto run_seed = [&](uint64_t i) {
    uint64_t seed = start + i;
    std::optional<SystemKind> pin = system;
    if (both_systems) {
      pin = (i % 2 == 0) ? SystemKind::kTusk : SystemKind::kNarwhalHs;
    }
    FaultSchedule schedule = nt::GenerateSchedule(seed, pin);
    if (shards.has_value()) {
      schedule.shards = *shards;
    }
    schedule.bug_accept_2f_certs = bug_accept_2f;
    schedule.bug_skip_tusk_support = bug_skip_support;
    schedule.bug_skip_bullshark_support = bug_skip_bullshark;
    schedule.bug_skip_cross_shard_lock = bug_skip_cross_lock;
    // Determinism self-check piggybacks on the first schedule of each batch.
    run_one(schedule, /*self_check=*/i == 0);
  };

  if (jobs > 1 && (bug_accept_2f || bug_skip_support || bug_skip_bullshark ||
                   bug_skip_cross_lock)) {
    std::fprintf(stderr, "note: --bug stops at the first violation; ignoring --jobs\n");
    jobs = 1;
  }
  if (jobs > 1 && !out_path.empty()) {
    std::fprintf(stderr, "--out cannot be combined with --jobs (workers would race on the "
                         "file); drop one of them\n");
    return 2;
  }

  if (jobs > 1) {
    // Each worker runs one seed in a forked copy of this process and the
    // captured output is re-emitted in seed order, so the merged stream and
    // the exit code match a sequential sweep exactly.
    nt::RunJobsForked(
        seeds, jobs,
        [&](uint64_t i) {
          failures = 0;  // This fork reports only its own seed's verdict.
          run_seed(i);
          return failures > 0 ? 1 : 0;
        },
        [&](uint64_t, const nt::JobOutput& out) {
          std::fputs(out.text.c_str(), stdout);
          // One failure per failing seed, matching the sequential count (a
          // crashed worker reports 128+signal; it still counts once).
          failures += out.exit_code != 0 ? 1 : 0;
        });
  } else {
    for (uint64_t i = 0; i < seeds; ++i) {
      run_seed(i);
      if (failures > 0 &&
          (bug_accept_2f || bug_skip_support || bug_skip_bullshark || bug_skip_cross_lock)) {
        break;  // Mutation mode: first caught violation proves the point.
      }
    }
  }
  std::printf("%llu seed(s), %d failure(s)\n", static_cast<unsigned long long>(seeds), failures);
  return failures > 0 ? 1 : 0;
}
