#!/usr/bin/env sh
# Build and run the sharded-execution benchmark, refreshing the committed
# BENCH_exec.json at the repo root. Any extra arguments are passed to the
# bench binary, e.g.:
#   tools/run_bench_exec.sh                 # full run, updates the JSON
#   tools/run_bench_exec.sh --quick         # 8x smaller stream, smoke only
#   tools/run_bench_exec.sh --only lanes4_cross20   # one scenario, no JSON
#
# The bench times ShardedExecutor over a pre-generated committed-header
# stream (TransferWorkload transfers; mints first), so the number is pure
# execution throughput: single lane vs 4/8 lanes, 0% vs 20% cross-shard, and
# a hot-key contention scenario. Each scenario takes the best of 3 in-process
# repetitions; treat single runs on a loaded machine as a lower bound.
set -eu

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"

if [ ! -f "$build/CMakeCache.txt" ]; then
  cmake --preset default -S "$repo" > /dev/null
fi
cmake --build "$build" --target bench_exec -j "$(nproc)" > /dev/null

# The bench writes BENCH_exec.json into its working directory; run at the
# repo root so the committed copy is the one refreshed.
cd "$repo"
exec "$build/bench/bench_exec" "$@"
