// A replicated key-value + token-ledger service on Narwhal + Tusk — the full
// Figure 3 pipeline: clients -> workers (dissemination) -> primaries (DAG) ->
// Tusk (total order) -> execution engine (state machine). Every replica ends
// with byte-identical state.
//
//   $ ./examples/replicated_kv
#include <cstdio>

#include "src/exec/executor.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 1234;
  Cluster cluster(config);

  // One state machine + executor per validator, fed by its Tusk output and
  // reading batch data from its own worker (the §8.4 data-location path).
  std::vector<KvStateMachine> replicas(4);
  std::vector<std::unique_ptr<Executor>> executors;
  for (ValidatorId v = 0; v < 4; ++v) {
    Worker* worker = cluster.worker(v, 0);
    executors.push_back(std::make_unique<Executor>(
        &replicas[v], [worker](const BatchRef& ref) { return worker->GetBatch(ref.digest); }));
    Executor* executor = executors.back().get();
    cluster.tusk(v)->add_on_commit([executor](const Tusk::Committed& committed) {
      executor->OnCommittedHeader(committed.header);
      executor->RetryPending();
    });
  }
  cluster.Start();

  std::printf("Minting: alice <- 1000, bob <- 250 (submitted at different validators)\n");
  cluster.worker(0, 0)->SubmitBlock({ExecTx::Mint("alice", 1000).Encode()});
  cluster.worker(2, 0)->SubmitBlock({ExecTx::Mint("bob", 250).Encode()});
  cluster.scheduler().RunUntil(Seconds(4));

  std::printf("Submitting 20 cross-validator transfers and a few KV writes...\n");
  for (int i = 0; i < 20; ++i) {
    ValidatorId entry = i % 4;
    cluster.worker(entry, 0)->SubmitBlock({
        ExecTx::Transfer("alice", "bob", 25).Encode(),
        ExecTx::Put("last-writer", {static_cast<uint8_t>(entry)}).Encode(),
    });
    cluster.scheduler().RunUntil(Seconds(5) + Millis(400) * i);
  }
  cluster.scheduler().RunUntil(Seconds(20));

  std::printf("\nPer-replica view after convergence:\n");
  std::printf("  %-9s %10s %10s %8s %10s  %s\n", "replica", "alice", "bob", "applied",
              "rejected", "state digest");
  for (ValidatorId v = 0; v < 4; ++v) {
    std::printf("  validator%u %9llu %10llu %8llu %10llu  %s\n", v,
                static_cast<unsigned long long>(replicas[v].BalanceOf("alice")),
                static_cast<unsigned long long>(replicas[v].BalanceOf("bob")),
                static_cast<unsigned long long>(replicas[v].applied()),
                static_cast<unsigned long long>(replicas[v].rejected()),
                DigestHex(replicas[v].state_digest()).substr(0, 16).c_str());
  }
  bool agree = true;
  for (ValidatorId v = 1; v < 4; ++v) {
    agree = agree && replicas[v].state_digest() == replicas[0].state_digest();
  }
  std::printf("\nState digests %s. Total supply: %llu (minted 1250).\n",
              agree ? "AGREE across all replicas" : "DISAGREE (bug!)",
              static_cast<unsigned long long>(replicas[0].BalanceOf("alice") +
                                              replicas[0].BalanceOf("bob")));
  return agree ? 0 : 1;
}
