// Quickstart: spin up a 4-validator Narwhal+Tusk cluster on the simulated
// WAN, submit transactions, and watch them come out committed in a total
// order that every validator agrees on.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  // 1. Configure a 4-validator committee (f = 1), one worker per validator,
  //    spread over five AWS regions on the simulated WAN.
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.workers_per_validator = 1;
  config.seed = 2024;
  Cluster cluster(config);

  // 2. Subscribe to validator 0's committed-output stream.
  int printed = 0;
  cluster.tusk(0)->add_on_commit([&](const Tusk::Committed& committed) {
    if (committed.header->TotalTxs() > 0 && printed < 10) {
      std::printf("  committed block %u/round-%llu: %llu txs (%llu bytes), anchored by wave %llu\n",
                  committed.header->author,
                  static_cast<unsigned long long>(committed.header->round),
                  static_cast<unsigned long long>(committed.header->TotalTxs()),
                  static_cast<unsigned long long>(committed.header->TotalPayloadBytes()),
                  static_cast<unsigned long long>(committed.wave));
      ++printed;
    }
  });

  // 3. Attach a rate-controlled client to every validator's worker.
  std::printf("Submitting 512B transactions at 5,000 tx/s for 10 simulated seconds...\n");
  LoadGenerator::Options options;
  options.rate_tps = 5000.0 / config.num_validators;
  options.tx_size = 512;
  options.stop_at = Seconds(10);
  std::vector<std::unique_ptr<LoadGenerator>> clients;
  for (ValidatorId v = 0; v < config.num_validators; ++v) {
    clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
    clients.back()->Start();
  }

  // 4. Run the simulation.
  cluster.metrics().set_observer(0);
  cluster.metrics().SetWindow(Seconds(2), Seconds(10));
  cluster.Start();
  cluster.scheduler().RunUntil(Seconds(10));

  // 5. Report.
  std::printf("\nResults over the 8s measurement window:\n");
  std::printf("  committed: %llu txs (%.0f tx/s)\n",
              static_cast<unsigned long long>(cluster.metrics().committed_txs()),
              cluster.metrics().ThroughputTps());
  std::printf("  avg latency: %.2fs (p99 %.2fs)\n",
              cluster.metrics().latency_seconds().Mean(),
              cluster.metrics().latency_seconds().Percentile(99));
  std::printf("  DAG reached round %llu; validator 0 committed %llu headers over %llu waves\n",
              static_cast<unsigned long long>(cluster.primary(0)->dag().HighestRound()),
              static_cast<unsigned long long>(cluster.tusk(0)->committed_headers()),
              static_cast<unsigned long long>(cluster.tusk(0)->last_committed_wave()));

  // 6. Agreement sanity check: all validators committed the same number of
  //    headers up to stragglers still syncing.
  for (ValidatorId v = 1; v < config.num_validators; ++v) {
    std::printf("  validator %u committed %llu headers\n", v,
                static_cast<unsigned long long>(cluster.tusk(v)->committed_headers()));
  }
  return 0;
}
