// Narwhal as a standalone certified key-value mempool — the paper's §2.1
// abstraction: write(d,b), valid(d,c(d)), read(d), read_causal(d), live on a
// running 4-validator cluster.
//
//   $ ./examples/mempool_kv_api
#include <cstdio>

#include "src/narwhal/mempool.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  ClusterConfig config;
  config.system = SystemKind::kTusk;
  config.num_validators = 4;
  config.seed = 7;
  Cluster cluster(config);
  cluster.Start();

  Mempool pool = cluster.MempoolOf(0);

  // --- write(d, b) -----------------------------------------------------------
  std::printf("write(d, b): submitting a block of 3 transactions to validator 0...\n");
  std::vector<Bytes> block = {{0xca, 0xfe}, {0xba, 0xbe}, {0xf0, 0x0d}};
  Digest d = pool.Write(block);
  std::printf("  d = %s\n", DigestHex(d).substr(0, 16).c_str());

  std::printf("  before dissemination: certified=%d\n", pool.IsWriteCertified(d));
  cluster.scheduler().RunUntil(Seconds(5));
  std::printf("  after 5s:             certified=%d  <- write(d,b) succeeded\n",
              pool.IsWriteCertified(d));

  // --- valid(d, c(d)) --------------------------------------------------------
  auto cert = pool.CertificateFor(d);
  auto verifier = MakeSigner(SignerKind::kFast, DeriveSeed(config.seed, 0));
  std::printf("\nvalid(d, c(d)): certificate has %zu signatures (2f+1 = %u needed)\n",
              cert->votes.size(), cluster.committee().quorum_threshold());
  std::printf("  genuine certificate:  valid=%d\n",
              Mempool::Valid(cluster.committee(), *verifier, *cert));
  Certificate forged = *cert;
  forged.votes[0].second[0] ^= 0xff;
  std::printf("  forged signature:     valid=%d\n",
              Mempool::Valid(cluster.committee(), *verifier, forged));

  // --- read(d) ----------------------------------------------------------------
  std::printf("\nread(d): every validator can retrieve the block (Block-Availability):\n");
  for (ValidatorId v = 0; v < 4; ++v) {
    auto batch = cluster.MempoolOf(v).Read(d);
    std::printf("  validator %u: %s (%zu txs)\n", v,
                batch != nullptr ? "found, digest matches" : "MISSING",
                batch != nullptr ? batch->txs.size() : 0);
  }

  // --- read_causal(d) ---------------------------------------------------------
  std::printf("\nread_causal(d): writing 4 more blocks, then reading the causal history\n");
  std::vector<Digest> writes;
  for (uint8_t i = 0; i < 4; ++i) {
    writes.push_back(cluster.MempoolOf(i % 4).Write({{i, i, i}}));
    cluster.scheduler().RunUntil(Seconds(7 + 2 * i));
  }
  cluster.scheduler().RunUntil(Seconds(16));
  auto last_cert = pool.CertificateFor(writes.back());
  if (last_cert.has_value()) {
    std::vector<Digest> history = pool.ReadCausal(last_cert->header_digest);
    std::printf("  history of the block carrying the last write: %zu blocks\n", history.size());
    // Containment: the history of any member is a subset.
    std::set<Digest> outer(history.begin(), history.end());
    size_t checked = 0, contained = 0;
    for (const Digest& member : history) {
      for (const Digest& inner : pool.ReadCausal(member)) {
        ++checked;
        contained += outer.count(inner);
      }
    }
    std::printf("  containment check: %zu/%zu inner blocks inside the outer history\n",
                contained, checked);
  }
  std::printf("\nDone. These five calls are the entire §2.1 mempool API.\n");
  return 0;
}
