// DAG-Rider over Narwhal (paper §8.2): the same certified DAG interpreted by
// a different committer — 4-round waves with 2f+1 path-votes instead of
// Tusk's piggybacked 3-round waves. Same ordering machinery, same
// throughput, measurably higher latency; and, unlike Tusk, no garbage
// collection (DAG-Rider's weak links make it impossible).
//
//   $ ./examples/dagrider_demo
#include <cstdio>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  std::printf("%-10s %10s %12s %12s %12s %14s\n", "committer", "tps", "avg_lat_s", "p99_lat_s",
              "dag_rounds", "anchors");
  for (SystemKind system : {SystemKind::kTusk, SystemKind::kDagRider}) {
    ClusterConfig config;
    config.system = system;
    config.num_validators = 4;
    config.seed = 77;
    Cluster cluster(config);
    cluster.metrics().set_observer(0);
    cluster.metrics().SetWindow(Seconds(5), Seconds(25));

    LoadGenerator::Options options;
    options.rate_tps = 5000;
    options.stop_at = Seconds(25);
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    for (ValidatorId v = 0; v < 4; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(25));

    uint64_t anchors = system == SystemKind::kTusk ? cluster.tusk(0)->last_committed_wave()
                                                   : cluster.dag_rider(0)->last_committed_wave();
    std::printf("%-10s %10.0f %12.2f %12.2f %12llu %14llu\n", SystemName(system),
                cluster.metrics().ThroughputTps(), cluster.metrics().latency_seconds().Mean(),
                cluster.metrics().latency_seconds().Percentile(99),
                static_cast<unsigned long long>(cluster.primary(0)->dag().HighestRound()),
                static_cast<unsigned long long>(anchors));
  }
  std::printf("\nBoth interpret the *same* Narwhal DAG; the committer is ~200 lines of\n"
              "logic either way (the paper's §8.2 point). Tusk anchors a leader every 2\n"
              "DAG rounds, DAG-Rider every 4 — hence the latency gap (4.5 vs 5.5 round\n"
              "expected commit depth).\n");
  return 0;
}
