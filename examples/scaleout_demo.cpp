// Scale-out (paper §4.2, Figure 7): one validator identity, many worker
// machines. Throughput grows with the number of dedicated workers while
// latency stays flat, because bulk dissemination is embarrassingly parallel
// and the primary only handles hashes.
//
//   $ ./examples/scaleout_demo
#include <cstdio>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  std::printf("Tusk, 4 validators, dedicated worker machines, input scaled with workers:\n\n");
  std::printf("%8s %12s %12s %12s %14s\n", "workers", "input_tps", "tps", "avg_lat_s",
              "tps_per_worker");

  double one_worker_tps = 0;
  for (uint32_t workers : {1u, 2u, 4u, 8u}) {
    ClusterConfig config;
    config.system = SystemKind::kTusk;
    config.num_validators = 4;
    config.workers_per_validator = workers;
    config.collocate = false;  // Each worker brings its own machine + NIC.
    config.seed = 55;
    Cluster cluster(config);
    cluster.metrics().set_observer(0);
    cluster.metrics().SetWindow(Seconds(5), Seconds(20));

    // Load near one worker machine's saturation point, times the workers.
    double rate = 160000.0 * workers;
    LoadGenerator::Options options;
    options.rate_tps = rate / (4 * workers);
    options.stop_at = Seconds(20);
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    for (ValidatorId v = 0; v < 4; ++v) {
      for (WorkerId w = 0; w < workers; ++w) {
        clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, w, options));
        clients.back()->Start();
      }
    }
    cluster.Start();
    cluster.scheduler().RunUntil(Seconds(20));

    double tps = cluster.metrics().ThroughputTps();
    if (workers == 1) {
      one_worker_tps = tps;
    }
    std::printf("%8u %12.0f %12.0f %12.2f %14.0f\n", workers, rate, tps,
                cluster.metrics().latency_seconds().Mean(), tps / workers);
  }
  std::printf("\nLinear scaling: tps(W) should track W x %.0f with flat latency\n"
              "(the paper: 'throughput is close to (#workers) x (throughput for one\n"
              "worker)'). The primary never bottlenecks: it only sequences 32-byte\n"
              "batch digests.\n",
              one_worker_tps);
  return 0;
}
