// The paper's §3.2 robustness story, live: during a period of asynchrony
// (all WAN delays x25), the Narwhal mempool keeps certifying blocks at full
// speed. Tusk keeps committing (it is asynchronous); Narwhal-HotStuff stalls
// for the duration, then one commit after the network heals covers the whole
// backlog — throughput is preserved, only latency suffers.
//
//   $ ./examples/asynchrony_demo
#include <cstdio>

#include "src/runtime/client.h"
#include "src/runtime/cluster.h"

using namespace nt;

int main() {
  const TimePoint kAsyncStart = Seconds(8);
  const TimePoint kAsyncEnd = Seconds(20);
  const TimePoint kRunEnd = Seconds(30);

  for (SystemKind system : {SystemKind::kTusk, SystemKind::kNarwhalHs}) {
    std::printf("=== %s: asynchrony window [%llds, %llds), delays x25 ===\n", SystemName(system),
                static_cast<long long>(kAsyncStart / 1000000),
                static_cast<long long>(kAsyncEnd / 1000000));

    ClusterConfig config;
    config.system = system;
    config.num_validators = 4;
    config.seed = 33;
    Cluster cluster(config);
    cluster.faults().AddAsynchronyWindow(kAsyncStart, kAsyncEnd, 25.0);
    cluster.metrics().set_observer(0);
    cluster.metrics().SetWindow(Seconds(2), kRunEnd);

    LoadGenerator::Options options;
    options.rate_tps = 2500;
    options.stop_at = kRunEnd;
    std::vector<std::unique_ptr<LoadGenerator>> clients;
    for (ValidatorId v = 0; v < 4; ++v) {
      clients.push_back(std::make_unique<LoadGenerator>(&cluster, v, 0, options));
      clients.back()->Start();
    }
    cluster.Start();

    uint64_t last_txs = 0;
    Round last_round = 0;
    for (TimePoint t = Seconds(2); t <= kRunEnd; t += Seconds(2)) {
      cluster.scheduler().RunUntil(t);
      uint64_t txs = cluster.metrics().committed_txs();
      Round round = cluster.primary(0)->dag().HighestRound();
      const char* phase = (t > kAsyncStart && t <= kAsyncEnd) ? "ASYNC " : "normal";
      std::printf("  t=%2llds [%s] dag_round=%-4llu (+%llu)  committed_txs=%-8llu (+%llu)\n",
                  static_cast<long long>(t / 1000000), phase,
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(round - last_round),
                  static_cast<unsigned long long>(txs),
                  static_cast<unsigned long long>(txs - last_txs));
      last_txs = txs;
      last_round = round;
    }
    std::printf("  total committed: %llu of ~%.0f submitted (%.0f%%), avg latency %.1fs\n\n",
                static_cast<unsigned long long>(cluster.metrics().committed_txs()),
                10000.0 * ToSeconds(kRunEnd - Seconds(2)),
                100.0 * cluster.metrics().committed_txs() /
                    (10000.0 * ToSeconds(kRunEnd - Seconds(2))),
                cluster.metrics().latency_seconds().Mean());
  }
  std::printf("Takeaway: the DAG keeps advancing during asynchrony for both systems\n"
              "(Narwhal needs no timing assumption). Tusk also keeps committing; HotStuff\n"
              "pauses and then recovers the entire backlog through one certificate.\n");
  return 0;
}
