// Bridges the consensus output to the state machine: for each committed
// header (in total order), locates the referenced batches' transaction data
// — which Narwhal distributes across worker machines (§8.4) — and applies
// every explicit transaction to the replica's KvStateMachine. Headers whose
// batch data has not arrived yet are queued so execution order never
// deviates from commit order.
#ifndef SRC_EXEC_EXECUTOR_H_
#define SRC_EXEC_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>

#include "src/common/trace.h"
#include "src/exec/state_machine.h"
#include "src/sim/scheduler.h"
#include "src/types/types.h"

namespace nt {

class Executor {
 public:
  // Resolves a batch reference to its content (e.g. the local worker's
  // store); returns nullptr while unavailable.
  using BatchSource = std::function<std::shared_ptr<const Batch>(const BatchRef&)>;

  Executor(KvStateMachine* state_machine, BatchSource source)
      : state_machine_(state_machine), source_(std::move(source)) {}

  // Feed committed headers in commit order.
  void OnCommittedHeader(std::shared_ptr<const BlockHeader> header) {
    queue_.push_back(std::move(header));
    Drain();
  }

  // Re-attempt execution after new batch data arrived.
  void RetryPending() { Drain(); }

  // Attaches the cluster's tracer; the Executor has no network handle, so it
  // also needs the clock and the hosting validator's id for apply stamps.
  void set_tracer(Tracer* tracer, ValidatorId validator, Scheduler* scheduler) {
    tracer_ = tracer;
    validator_ = validator;
    scheduler_ = scheduler;
  }

  // Fired after each header finishes executing, with the header digest and
  // the state machine's chained digest at that point — the DST harness
  // compares these sequences across validators (state-machine agreement).
  void set_on_executed(std::function<void(const Digest& header_digest, const Digest& state_digest)> hook) {
    on_executed_ = std::move(hook);
  }

  uint64_t executed_headers() const { return executed_headers_; }
  // Separate outcome counters (not one conflated "executed" sum): applied
  // transactions mutated state, rejected ones only advanced the digest chain.
  uint64_t applied_txs() const { return state_machine_->applied(); }
  uint64_t rejected_txs() const { return state_machine_->rejected(); }
  size_t pending_headers() const { return queue_.size(); }

 private:
  void Drain();

  KvStateMachine* state_machine_;
  BatchSource source_;
  std::deque<std::shared_ptr<const BlockHeader>> queue_;
  uint64_t executed_headers_ = 0;
  std::function<void(const Digest&, const Digest&)> on_executed_;
  Tracer* tracer_ = nullptr;
  ValidatorId validator_ = 0;
  Scheduler* scheduler_ = nullptr;
};

}  // namespace nt

#endif  // SRC_EXEC_EXECUTOR_H_
