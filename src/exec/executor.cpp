#include "src/exec/executor.h"

namespace nt {

void Executor::Drain() {
  while (!queue_.empty()) {
    const std::shared_ptr<const BlockHeader>& header = queue_.front();
    // All batches must be available before this header executes — partial
    // execution would fork replicas that receive data in different orders.
    std::vector<std::shared_ptr<const Batch>> batches;
    batches.reserve(header->batches.size());
    bool complete = true;
    for (const BatchRef& ref : header->batches) {
      std::shared_ptr<const Batch> batch = source_(ref);
      if (batch == nullptr) {
        complete = false;
        break;
      }
      batches.push_back(std::move(batch));
    }
    if (!complete) {
      return;  // Strict order: wait for data, retry later.
    }
    for (const auto& batch : batches) {
      for (const Bytes& tx : batch->txs) {
        state_machine_->Apply(tx);
      }
    }
    ++executed_headers_;
    if (tracer_ != nullptr && scheduler_ != nullptr) {
      tracer_->OnExecuted(validator_, header->ComputeDigest(), scheduler_->now());
    }
    if (on_executed_) {
      on_executed_(header->ComputeDigest(), state_machine_->state_digest());
    }
    queue_.pop_front();
  }
}

}  // namespace nt
