#include "src/exec/state_machine.h"

namespace nt {

// --------------------------------------------------------------------- ExecTx

Bytes ExecTx::Encode() const {
  Writer w;
  w.PutString("exec-tx");
  w.PutU8(static_cast<uint8_t>(op));
  w.PutString(key);
  w.PutString(key2);
  w.PutVar(value);
  w.PutU64(amount);
  return w.Take();
}

std::optional<ExecTx> ExecTx::Decode(const Bytes& wire) {
  Reader r(wire);
  if (r.GetString() != "exec-tx") {
    return std::nullopt;
  }
  ExecTx tx;
  uint8_t op = r.GetU8();
  if (op > static_cast<uint8_t>(Op::kNoop)) {
    return std::nullopt;
  }
  tx.op = static_cast<Op>(op);
  tx.key = r.GetString();
  tx.key2 = r.GetString();
  tx.value = r.GetVar();
  tx.amount = r.GetU64();
  if (!r.AtEnd()) {
    return std::nullopt;
  }
  return tx;
}

ExecTx ExecTx::Put(std::string key, Bytes value) {
  ExecTx tx;
  tx.op = Op::kPut;
  tx.key = std::move(key);
  tx.value = std::move(value);
  return tx;
}

ExecTx ExecTx::Delete(std::string key) {
  ExecTx tx;
  tx.op = Op::kDelete;
  tx.key = std::move(key);
  return tx;
}

ExecTx ExecTx::Mint(std::string account, uint64_t amount) {
  ExecTx tx;
  tx.op = Op::kMint;
  tx.key = std::move(account);
  tx.amount = amount;
  return tx;
}

ExecTx ExecTx::Transfer(std::string from, std::string to, uint64_t amount) {
  ExecTx tx;
  tx.op = Op::kTransfer;
  tx.key = std::move(from);
  tx.key2 = std::move(to);
  tx.amount = amount;
  return tx;
}

ExecTx ExecTx::Noop(size_t padding) {
  ExecTx tx;
  tx.op = Op::kNoop;
  tx.value.assign(padding, 0);
  return tx;
}

// ------------------------------------------------------------- KvStateMachine

ExecStatus KvStateMachine::Apply(const Bytes& wire_tx) {
  std::optional<ExecTx> tx = ExecTx::Decode(wire_tx);
  ExecStatus status = ExecStatus::kApplied;
  if (!tx.has_value()) {
    status = ExecStatus::kRejectedMalformed;
  } else {
    switch (tx->op) {
      case ExecTx::Op::kPut:
        kv_[tx->key] = tx->value;
        break;
      case ExecTx::Op::kDelete:
        kv_.erase(tx->key);
        break;
      case ExecTx::Op::kMint:
        balances_[tx->key] += tx->amount;
        minted_ += tx->amount;
        break;
      case ExecTx::Op::kTransfer: {
        auto from = balances_.find(tx->key);
        if (from == balances_.end() || from->second < tx->amount) {
          status = ExecStatus::kRejectedInsufficient;
        } else {
          from->second -= tx->amount;
          balances_[tx->key2] += tx->amount;
        }
        break;
      }
      case ExecTx::Op::kNoop:
        break;
    }
  }
  Advance(wire_tx, status, ExecPhase::kWhole);
  return status;
}

ExecStatus KvStateMachine::LockDebit(const Bytes& wire_tx, const ExecTx& tx) {
  ExecStatus status = ExecStatus::kApplied;
  auto from = balances_.find(tx.key);
  if (from == balances_.end() || from->second < tx.amount) {
    status = ExecStatus::kRejectedInsufficient;
  } else {
    from->second -= tx.amount;
  }
  Advance(wire_tx, status, ExecPhase::kLock);
  return status;
}

void KvStateMachine::ApplyCredit(const Bytes& wire_tx, const ExecTx& tx) {
  balances_[tx.key2] += tx.amount;
  Sha256 h;
  h.Update(state_digest_.data(), state_digest_.size());
  h.Update(wire_tx);
  uint8_t status_byte = static_cast<uint8_t>(ExecStatus::kApplied);
  h.Update(&status_byte, 1);
  uint8_t phase_byte = static_cast<uint8_t>(ExecPhase::kCredit);
  h.Update(&phase_byte, 1);
  state_digest_ = h.Finalize();
}

void KvStateMachine::Advance(const Bytes& wire_tx, ExecStatus status, ExecPhase phase) {
  if (status == ExecStatus::kApplied) {
    ++applied_;
  } else {
    ++rejected_;
  }
  Sha256 h;
  h.Update(state_digest_.data(), state_digest_.size());
  h.Update(wire_tx);
  uint8_t status_byte = static_cast<uint8_t>(status);
  h.Update(&status_byte, 1);
  if (phase != ExecPhase::kWhole) {
    // The phase byte is appended only for split applies, so single-lane
    // digests stay byte-compatible with the pre-sharding chain.
    uint8_t phase_byte = static_cast<uint8_t>(phase);
    h.Update(&phase_byte, 1);
  }
  state_digest_ = h.Finalize();
}

std::optional<Bytes> KvStateMachine::Get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) {
    return std::nullopt;
  }
  return it->second;
}

uint64_t KvStateMachine::total_balance() const {
  uint64_t total = 0;
  for (const auto& [account, balance] : balances_) {
    total += balance;
  }
  return total;
}

uint64_t KvStateMachine::BalanceOf(const std::string& account) const {
  auto it = balances_.find(account);
  return it == balances_.end() ? 0 : it->second;
}

Digest KvStateMachine::ComputeSnapshotDigest() const {
  Writer w;
  w.PutString("exec-snapshot");
  w.PutU64(kv_.size());
  for (const auto& [key, value] : kv_) {
    w.PutString(key);
    w.PutVar(value);
  }
  w.PutU64(balances_.size());
  for (const auto& [account, balance] : balances_) {
    w.PutString(account);
    w.PutU64(balance);
  }
  return Sha256::Hash(w.bytes());
}

}  // namespace nt
