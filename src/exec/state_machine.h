// Deterministic execution engine over the committed transaction stream —
// the "SMR execution" stage of the paper's Figure 3. The paper defers an
// efficient execution engine to future work (§8.4); this module provides a
// correct one: a replicated key-value + token-ledger state machine whose
// state digest must agree across validators, demonstrating that the totally
// ordered, available output of Narwhal+consensus is executable.
#ifndef SRC_EXEC_STATE_MACHINE_H_
#define SRC_EXEC_STATE_MACHINE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/codec.h"
#include "src/crypto/hash.h"

namespace nt {

// Wire format of an executable transaction.
struct ExecTx {
  enum class Op : uint8_t {
    kPut = 0,       // key := value
    kDelete = 1,    // erase key
    kMint = 2,      // account += amount (faucet)
    kTransfer = 3,  // from -> to, amount
    kNoop = 4,      // padding / load-generation filler
  };

  Op op = Op::kNoop;
  std::string key;     // kPut/kDelete key, kMint/kTransfer `from` account.
  std::string key2;    // kTransfer `to` account.
  Bytes value;         // kPut payload.
  uint64_t amount = 0; // kMint/kTransfer.

  Bytes Encode() const;
  static std::optional<ExecTx> Decode(const Bytes& wire);

  static ExecTx Put(std::string key, Bytes value);
  static ExecTx Delete(std::string key);
  static ExecTx Mint(std::string account, uint64_t amount);
  static ExecTx Transfer(std::string from, std::string to, uint64_t amount);
  static ExecTx Noop(size_t padding);
};

// Outcome of applying one transaction.
enum class ExecStatus : uint8_t {
  kApplied,
  kRejectedMalformed,     // Undecodable wire bytes.
  kRejectedInsufficient,  // Transfer without funds.
};

// How a transaction touched this state machine. Single-lane execution always
// applies whole transactions; the sharded executor (src/shard/) splits a
// cross-shard transfer into a lock (debit at the source lane) and a credit
// (at the destination lane), and the phase is folded into the digest chain so
// a lane that saw a lock can never agree with one that saw a whole apply.
enum class ExecPhase : uint8_t {
  kWhole = 0,
  kLock = 1,    // Cross-shard phase 1: funds check + debit of `key`.
  kCredit = 2,  // Cross-shard phase 2: credit of `key2`.
};

// The replicated state machine. Deterministic: identical transaction
// sequences yield identical state digests on every replica.
class KvStateMachine {
 public:
  ExecStatus Apply(const Bytes& wire_tx);

  // Two-phase cross-shard transfer, driven by the sharded executor with this
  // machine acting as one lane. `tx` must be the decoded form of `wire_tx`.
  //
  // Phase 1 at the source lane: checks funds and debits `tx.key`. Counts the
  // whole transaction (applied or rejected) at this lane.
  ExecStatus LockDebit(const Bytes& wire_tx, const ExecTx& tx);
  // Phase 2 at the destination lane: credits `tx.key2`. Only called after a
  // successful lock, so it cannot fail; counts nothing (the source lane
  // already accounted for the transaction).
  void ApplyCredit(const Bytes& wire_tx, const ExecTx& tx);

  // Chained digest over every applied transaction *and* its effect — two
  // replicas agree on it iff they executed the same sequence with the same
  // outcomes.
  const Digest& state_digest() const { return state_digest_; }

  std::optional<Bytes> Get(const std::string& key) const;
  uint64_t BalanceOf(const std::string& account) const;

  uint64_t applied() const { return applied_; }
  uint64_t rejected() const { return rejected_; }
  size_t keys() const { return kv_.size(); }
  size_t accounts() const { return balances_.size(); }

  // Conservation accounting: token supply created by kMint on this machine,
  // and the sum of all account balances. On a single machine the two are
  // always equal (transfers conserve, rejects move nothing); across sharded
  // lanes their sums must agree — the DST conservation invariant.
  uint64_t minted() const { return minted_; }
  uint64_t total_balance() const;

  // Full-state digest (order-independent recomputation over the maps);
  // used by audits and snapshot tests.
  Digest ComputeSnapshotDigest() const;

 private:
  void Advance(const Bytes& wire_tx, ExecStatus status, ExecPhase phase);

  std::map<std::string, Bytes> kv_;
  std::map<std::string, uint64_t> balances_;
  Digest state_digest_{};
  uint64_t applied_ = 0;
  uint64_t rejected_ = 0;
  uint64_t minted_ = 0;
};

}  // namespace nt

#endif  // SRC_EXEC_STATE_MACHINE_H_
