#include "src/crypto/ed25519.h"

#include <cstring>

#include "src/crypto/hash.h"

namespace nt {
namespace {

// ===========================================================================
// Field arithmetic over GF(p), p = 2^255 - 19. Elements are 5 limbs of 51
// bits each (little-endian limb order). Invariant maintained by all public
// helpers below: limbs < 2^52 on input and output.
// ===========================================================================

constexpr uint64_t kMask51 = (1ull << 51) - 1;

struct Fe {
  uint64_t l[5] = {0, 0, 0, 0, 0};
};

Fe FeFromInt(uint64_t v) {
  Fe r;
  r.l[0] = v & kMask51;
  r.l[1] = v >> 51;
  return r;
}

// Propagates carries so every limb drops below 2^52 (two passes settle any
// input with limbs < 2^63).
void FeCarry(Fe& a) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      uint64_t c = a.l[i] >> 51;
      a.l[i] &= kMask51;
      a.l[i + 1] += c;
    }
    uint64_t c = a.l[4] >> 51;
    a.l[4] &= kMask51;
    a.l[0] += 19 * c;
  }
}

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.l[i] = a.l[i] + b.l[i];
  }
  FeCarry(r);
  return r;
}

// a - b, computed as a + 2p - b so limbs never underflow.
Fe FeSub(const Fe& a, const Fe& b) {
  // 2p in 51-bit limbs: limb0 = 2*(2^51 - 19), limbs 1..4 = 2*(2^51 - 1).
  static constexpr uint64_t kTwoP0 = 2 * ((1ull << 51) - 19);
  static constexpr uint64_t kTwoPi = 2 * ((1ull << 51) - 1);
  Fe r;
  r.l[0] = a.l[0] + kTwoP0 - b.l[0];
  for (int i = 1; i < 5; ++i) {
    r.l[i] = a.l[i] + kTwoPi - b.l[i];
  }
  FeCarry(r);
  return r;
}

Fe FeNeg(const Fe& a) {
  Fe zero;
  return FeSub(zero, a);
}

Fe FeMul(const Fe& a, const Fe& b) {
  using U128 = unsigned __int128;
  const uint64_t a0 = a.l[0], a1 = a.l[1], a2 = a.l[2], a3 = a.l[3], a4 = a.l[4];
  const uint64_t b0 = b.l[0], b1 = b.l[1], b2 = b.l[2], b3 = b.l[3], b4 = b.l[4];

  U128 r0 = (U128)a0 * b0 + (U128)19 * ((U128)a1 * b4 + (U128)a2 * b3 + (U128)a3 * b2 + (U128)a4 * b1);
  U128 r1 = (U128)a0 * b1 + (U128)a1 * b0 +
            (U128)19 * ((U128)a2 * b4 + (U128)a3 * b3 + (U128)a4 * b2);
  U128 r2 = (U128)a0 * b2 + (U128)a1 * b1 + (U128)a2 * b0 + (U128)19 * ((U128)a3 * b4 + (U128)a4 * b3);
  U128 r3 = (U128)a0 * b3 + (U128)a1 * b2 + (U128)a2 * b1 + (U128)a3 * b0 + (U128)19 * ((U128)a4 * b4);
  U128 r4 = (U128)a0 * b4 + (U128)a1 * b3 + (U128)a2 * b2 + (U128)a3 * b1 + (U128)a4 * b0;

  Fe out;
  U128 c;
  c = r0 >> 51;
  out.l[0] = (uint64_t)r0 & kMask51;
  r1 += c;
  c = r1 >> 51;
  out.l[1] = (uint64_t)r1 & kMask51;
  r2 += c;
  c = r2 >> 51;
  out.l[2] = (uint64_t)r2 & kMask51;
  r3 += c;
  c = r3 >> 51;
  out.l[3] = (uint64_t)r3 & kMask51;
  r4 += c;
  c = r4 >> 51;
  out.l[4] = (uint64_t)r4 & kMask51;
  out.l[0] += 19 * (uint64_t)c;
  FeCarry(out);
  return out;
}

Fe FeSquare(const Fe& a) { return FeMul(a, a); }

// Canonical 32-byte little-endian encoding (value fully reduced mod p).
void FeToBytes(uint8_t out[32], const Fe& in) {
  Fe t = in;
  FeCarry(t);
  // Compute q = floor(value / p) in {0,1} via the standard +19 ripple.
  uint64_t q = (t.l[0] + 19) >> 51;
  q = (t.l[1] + q) >> 51;
  q = (t.l[2] + q) >> 51;
  q = (t.l[3] + q) >> 51;
  q = (t.l[4] + q) >> 51;
  t.l[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    uint64_t c = t.l[i] >> 51;
    t.l[i] &= kMask51;
    t.l[i + 1] += c;
  }
  t.l[4] &= kMask51;  // Drop bit 255 (the subtraction of p happened via +19*q).

  uint64_t word0 = t.l[0] | (t.l[1] << 51);
  uint64_t word1 = (t.l[1] >> 13) | (t.l[2] << 38);
  uint64_t word2 = (t.l[2] >> 26) | (t.l[3] << 25);
  uint64_t word3 = (t.l[3] >> 39) | (t.l[4] << 12);
  uint64_t words[4] = {word0, word1, word2, word3};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
}

// Loads 255 bits little-endian (ignores the top bit of byte 31).
Fe FeFromBytes(const uint8_t in[32]) {
  uint64_t words[4];
  for (int w = 0; w < 4; ++w) {
    words[w] = 0;
    for (int i = 0; i < 8; ++i) {
      words[w] |= static_cast<uint64_t>(in[8 * w + i]) << (8 * i);
    }
  }
  Fe r;
  r.l[0] = words[0] & kMask51;
  r.l[1] = ((words[0] >> 51) | (words[1] << 13)) & kMask51;
  r.l[2] = ((words[1] >> 38) | (words[2] << 26)) & kMask51;
  r.l[3] = ((words[2] >> 25) | (words[3] << 39)) & kMask51;
  r.l[4] = (words[3] >> 12) & kMask51;
  return r;
}

bool FeIsZero(const Fe& a) {
  uint8_t bytes[32];
  FeToBytes(bytes, a);
  uint8_t acc = 0;
  for (uint8_t b : bytes) {
    acc |= b;
  }
  return acc == 0;
}

bool FeEqual(const Fe& a, const Fe& b) { return FeIsZero(FeSub(a, b)); }

// Low bit of the canonical encoding — the "sign" used by point compression.
int FeIsNegative(const Fe& a) {
  uint8_t bytes[32];
  FeToBytes(bytes, a);
  return bytes[0] & 1;
}

// base^e where e is a 256-bit little-endian exponent. Plain square-and-
// multiply; this reproduction does not need constant-time exponentiation.
Fe FePow(const Fe& base, const uint8_t e[32]) {
  Fe result = FeFromInt(1);
  for (int i = 255; i >= 0; --i) {
    result = FeSquare(result);
    if ((e[i / 8] >> (i % 8)) & 1) {
      result = FeMul(result, base);
    }
  }
  return result;
}

// Little-endian bytes of p = 2^255 - 19.
void PBytes(uint8_t out[32]) {
  out[0] = 0xed;
  for (int i = 1; i < 31; ++i) {
    out[i] = 0xff;
  }
  out[31] = 0x7f;
}

// Subtracts a small value from a little-endian byte integer in place.
void BytesSubSmall(uint8_t b[32], uint32_t v) {
  uint32_t borrow = v;
  for (int i = 0; i < 32 && borrow != 0; ++i) {
    uint32_t cur = b[i];
    uint32_t sub = borrow & 0xff;
    if (cur >= sub) {
      b[i] = static_cast<uint8_t>(cur - sub);
      borrow >>= 8;
    } else {
      b[i] = static_cast<uint8_t>(cur + 256 - sub);
      borrow = (borrow >> 8) + 1;
    }
  }
}

// Shifts a little-endian byte integer right by `n` bits (n < 8).
void BytesShiftRight(uint8_t b[32], int n) {
  for (int i = 0; i < 32; ++i) {
    uint8_t next = (i + 1 < 32) ? b[i + 1] : 0;
    b[i] = static_cast<uint8_t>((b[i] >> n) | (next << (8 - n)));
  }
}

Fe FeInvert(const Fe& a) {
  uint8_t e[32];
  PBytes(e);
  BytesSubSmall(e, 2);  // p - 2
  return FePow(a, e);
}

Fe FePowP58(const Fe& a) {
  uint8_t e[32];
  PBytes(e);
  BytesSubSmall(e, 5);   // p - 5
  BytesShiftRight(e, 3);  // (p - 5) / 8
  return FePow(a, e);
}

// ===========================================================================
// Group operations: twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 in
// extended coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
// ===========================================================================

struct Ge {
  Fe x, y, z, t;
};

struct CurveConstants {
  Fe d;
  Fe d2;       // 2d
  Fe sqrt_m1;  // sqrt(-1)
  Ge base;     // the RFC 8032 base point (x, 4/5) with even x
  Ge identity;

  CurveConstants();
};

// Decompression against explicit constants: also used while constructing the
// constants themselves (the base point), where calling Curve() would
// re-enter the magic-static initialization.
bool GeDecompressWith(const CurveConstants& c, Ge& out, const uint8_t in[32]);

const CurveConstants& Curve() {
  static const CurveConstants c;
  return c;
}

Ge GeIdentity() {
  Ge r;
  r.x = Fe();           // 0
  r.y = FeFromInt(1);   // 1
  r.z = FeFromInt(1);   // 1
  r.t = Fe();           // 0
  return r;
}

// Complete unified addition (add-2008-hwcd-3 for a = -1); also valid when
// p == q, so doubling reuses it.
Ge GeAdd(const Ge& p, const Ge& q) {
  const CurveConstants& c = Curve();
  Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe cc = FeMul(FeMul(p.t, c.d2), q.t);
  Fe d = FeMul(FeAdd(p.z, p.z), q.z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, cc);
  Fe g = FeAdd(d, cc);
  Fe h = FeAdd(b, a);
  Ge r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

Ge GeDouble(const Ge& p) { return GeAdd(p, p); }

// [s]P for a 256-bit little-endian scalar, MSB-first double-and-add.
Ge GeScalarMult(const uint8_t s[32], const Ge& p) {
  Ge r = GeIdentity();
  for (int i = 255; i >= 0; --i) {
    r = GeDouble(r);
    if ((s[i / 8] >> (i % 8)) & 1) {
      r = GeAdd(r, p);
    }
  }
  return r;
}

void GeCompress(uint8_t out[32], const Ge& p) {
  Fe zinv = FeInvert(p.z);
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  FeToBytes(out, y);
  out[31] = static_cast<uint8_t>(out[31] | (FeIsNegative(x) << 7));
}

// Decompresses an encoded point. Returns false for off-curve or non-canonical
// encodings (y >= p), per strict validation.
bool GeDecompress(Ge& out, const uint8_t in[32]) {
  return GeDecompressWith(Curve(), out, in);
}

bool GeDecompressWith(const CurveConstants& c, Ge& out, const uint8_t in[32]) {
  // Reject y >= p (non-canonical field encoding).
  uint8_t p_bytes[32];
  PBytes(p_bytes);
  uint8_t y_bytes[32];
  std::memcpy(y_bytes, in, 32);
  y_bytes[31] &= 0x7f;
  bool y_lt_p = false;
  for (int i = 31; i >= 0; --i) {
    if (y_bytes[i] != p_bytes[i]) {
      y_lt_p = y_bytes[i] < p_bytes[i];
      break;
    }
  }
  if (!y_lt_p) {
    return false;
  }

  int sign = in[31] >> 7;
  Fe y = FeFromBytes(in);
  Fe y2 = FeSquare(y);
  Fe u = FeSub(y2, FeFromInt(1));            // y^2 - 1
  Fe v = FeAdd(FeMul(y2, c.d), FeFromInt(1));  // d y^2 + 1

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe v3 = FeMul(FeSquare(v), v);
  Fe v7 = FeMul(FeSquare(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePowP58(FeMul(u, v7)));

  Fe vx2 = FeMul(v, FeSquare(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, c.sqrt_m1);
    } else {
      return false;
    }
  }
  if (FeIsZero(x) && sign == 1) {
    return false;  // -0 is not a valid encoding.
  }
  if (FeIsNegative(x) != sign) {
    x = FeNeg(x);
  }
  out.x = x;
  out.y = y;
  out.z = FeFromInt(1);
  out.t = FeMul(x, y);
  return true;
}

CurveConstants::CurveConstants() {
  // d = -121665 / 121666 mod p.
  d = FeNeg(FeMul(FeFromInt(121665), FeInvert(FeFromInt(121666))));
  d2 = FeAdd(d, d);
  // sqrt(-1) = 2^((p-1)/4) mod p.
  uint8_t e[32];
  PBytes(e);
  BytesSubSmall(e, 1);
  BytesShiftRight(e, 2);
  sqrt_m1 = FePow(FeFromInt(2), e);
  identity = GeIdentity();
  // Base point: y = 4/5, even x (sign bit 0).
  Fe by = FeMul(FeFromInt(4), FeInvert(FeFromInt(5)));
  uint8_t enc[32];
  FeToBytes(enc, by);
  bool ok = GeDecompressWith(*this, base, enc);
  (void)ok;  // The base point always decodes; pinned by tests.
}

// ===========================================================================
// Scalar arithmetic modulo L = 2^252 + 27742317777372353535851937790883648493.
// Scalars are 4 little-endian 64-bit words. Reduction is an exact 512-bit
// MSB-first binary reduction (shift-and-conditional-subtract).
// ===========================================================================

struct Sc {
  uint64_t w[4] = {0, 0, 0, 0};
};

const Sc& GroupOrder() {
  // Little-endian bytes of L (standard constant, pinned by [L]B == identity
  // in tests).
  static const Sc l = [] {
    const uint8_t bytes[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
                               0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    Sc s;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 8; ++j) {
        s.w[i] |= static_cast<uint64_t>(bytes[8 * i + j]) << (8 * j);
      }
    }
    return s;
  }();
  return l;
}

int ScCompare(const Sc& a, const Sc& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? -1 : 1;
    }
  }
  return 0;
}

void ScSubInPlace(Sc& a, const Sc& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t bi = b.w[i] + borrow;
    uint64_t next_borrow = (bi < borrow) || (a.w[i] < bi) ? 1 : 0;
    a.w[i] -= bi;
    borrow = next_borrow;
  }
}

// Reduces a 512-bit little-endian integer (as 8 words) modulo L.
Sc ScReduceWide(const uint64_t wide[8]) {
  const Sc& l = GroupOrder();
  Sc r;
  for (int bit = 511; bit >= 0; --bit) {
    // r = 2r + bit, then conditionally subtract L. r stays < L < 2^253, so
    // doubling never overflows 256 bits.
    uint64_t carry = (wide[bit / 64] >> (bit % 64)) & 1;
    for (int i = 0; i < 4; ++i) {
      uint64_t next_carry = r.w[i] >> 63;
      r.w[i] = (r.w[i] << 1) | carry;
      carry = next_carry;
    }
    if (ScCompare(r, l) >= 0) {
      ScSubInPlace(r, l);
    }
  }
  return r;
}

Sc ScFromBytesWide(const uint8_t in[64]) {
  uint64_t wide[8] = {0};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      wide[i] |= static_cast<uint64_t>(in[8 * i + j]) << (8 * j);
    }
  }
  return ScReduceWide(wide);
}

Sc ScFromBytes(const uint8_t in[32]) {
  uint8_t wide[64] = {0};
  std::memcpy(wide, in, 32);
  return ScFromBytesWide(wide);
}

void ScToBytes(uint8_t out[32], const Sc& s) {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(s.w[i] >> (8 * j));
    }
  }
}

// (a * b + c) mod L. a and b may be any 256-bit values (e.g. the clamped
// secret scalar); the 512-bit product plus c is reduced exactly.
Sc ScMulAdd(const Sc& a, const Sc& b, const Sc& c) {
  using U128 = unsigned __int128;
  uint64_t wide[8] = {0};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      U128 cur = (U128)a.w[i] * b.w[j] + wide[i + j] + carry;
      wide[i + j] = (uint64_t)cur;
      carry = (uint64_t)(cur >> 64);
    }
    wide[i + 4] += carry;
  }
  // Add c.
  uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    U128 cur = (U128)wide[i] + (i < 4 ? c.w[i] : 0) + carry;
    wide[i] = (uint64_t)cur;
    carry = (uint64_t)(cur >> 64);
  }
  return ScReduceWide(wide);
}

// ===========================================================================
// RFC 8032 signing / verification.
// ===========================================================================

struct ExpandedKey {
  uint8_t scalar[32];  // Clamped secret scalar a.
  uint8_t prefix[32];  // Nonce-derivation prefix.
  Ed25519PublicKey pk;
};

ExpandedKey Expand(const Ed25519Seed& seed) {
  ExpandedKey key;
  Sha512::Output h = Sha512::Hash(seed.data(), seed.size());
  std::memcpy(key.scalar, h.data(), 32);
  std::memcpy(key.prefix, h.data() + 32, 32);
  key.scalar[0] &= 248;
  key.scalar[31] &= 127;
  key.scalar[31] |= 64;
  Ge a = GeScalarMult(key.scalar, Curve().base);
  GeCompress(key.pk.data(), a);
  return key;
}

}  // namespace

Ed25519PublicKey Ed25519Public(const Ed25519Seed& seed) { return Expand(seed).pk; }

Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const uint8_t* msg, size_t len) {
  ExpandedKey key = Expand(seed);

  Sha512 h1;
  h1.Update(key.prefix, 32);
  h1.Update(msg, len);
  Sha512::Output r_hash = h1.Finalize();
  Sc r = ScFromBytesWide(r_hash.data());

  uint8_t r_bytes[32];
  ScToBytes(r_bytes, r);
  Ge r_point = GeScalarMult(r_bytes, Curve().base);
  uint8_t r_enc[32];
  GeCompress(r_enc, r_point);

  Sha512 h2;
  h2.Update(r_enc, 32);
  h2.Update(key.pk.data(), 32);
  h2.Update(msg, len);
  Sha512::Output k_hash = h2.Finalize();
  Sc k = ScFromBytesWide(k_hash.data());

  Sc a = ScFromBytes(key.scalar);  // a mod L; same point since B has order L.
  Sc s = ScMulAdd(k, a, r);

  Ed25519Signature sig;
  std::memcpy(sig.data(), r_enc, 32);
  ScToBytes(sig.data() + 32, s);
  return sig;
}

bool Ed25519Verify(const Ed25519PublicKey& pk, const uint8_t* msg, size_t len,
                   const Ed25519Signature& sig) {
  // Reject S >= L (signature malleability).
  Sc s;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s.w[i] |= static_cast<uint64_t>(sig[32 + 8 * i + j]) << (8 * j);
    }
  }
  if (ScCompare(s, GroupOrder()) >= 0) {
    return false;
  }

  Ge a_point;
  if (!GeDecompress(a_point, pk.data())) {
    return false;
  }
  Ge r_point;
  if (!GeDecompress(r_point, sig.data())) {
    return false;
  }

  Sha512 h;
  h.Update(sig.data(), 32);
  h.Update(pk.data(), 32);
  h.Update(msg, len);
  Sha512::Output k_hash = h.Finalize();
  Sc k = ScFromBytesWide(k_hash.data());
  uint8_t k_bytes[32];
  ScToBytes(k_bytes, k);

  // Check [S]B == R + [k]A.
  Ge lhs = GeScalarMult(sig.data() + 32, Curve().base);
  Ge rhs = GeAdd(r_point, GeScalarMult(k_bytes, a_point));
  uint8_t lhs_enc[32];
  uint8_t rhs_enc[32];
  GeCompress(lhs_enc, lhs);
  GeCompress(rhs_enc, rhs);
  return std::memcmp(lhs_enc, rhs_enc, 32) == 0;
}

Ed25519PublicKey Ed25519ScalarMultBase(const std::array<uint8_t, 32>& scalar) {
  Ge p = GeScalarMult(scalar.data(), Curve().base);
  Ed25519PublicKey out;
  GeCompress(out.data(), p);
  return out;
}

bool Ed25519PointOnCurve(const std::array<uint8_t, 32>& encoded) {
  Ge p;
  return GeDecompress(p, encoded.data());
}

std::array<uint8_t, 32> Ed25519GroupOrder() {
  std::array<uint8_t, 32> out{};
  ScToBytes(out.data(), GroupOrder());
  return out;
}

}  // namespace nt
