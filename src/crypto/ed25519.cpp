#include "src/crypto/ed25519.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "src/crypto/hash.h"

namespace nt {
namespace {

// ===========================================================================
// Field arithmetic over GF(p), p = 2^255 - 19. Elements are 5 limbs of 51
// bits each (little-endian limb order). Invariant maintained by all public
// helpers below: limbs < 2^52 on input and output.
// ===========================================================================

constexpr uint64_t kMask51 = (1ull << 51) - 1;

struct Fe {
  uint64_t l[5] = {0, 0, 0, 0, 0};
};

Fe FeFromInt(uint64_t v) {
  Fe r;
  r.l[0] = v & kMask51;
  r.l[1] = v >> 51;
  return r;
}

// Propagates carries so every limb drops below 2^52 (two passes settle any
// input with limbs < 2^63).
void FeCarry(Fe& a) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 4; ++i) {
      uint64_t c = a.l[i] >> 51;
      a.l[i] &= kMask51;
      a.l[i + 1] += c;
    }
    uint64_t c = a.l[4] >> 51;
    a.l[4] &= kMask51;
    a.l[0] += 19 * c;
  }
}

// Single carry pass: restores the < 2^52 invariant for inputs with limbs
// < 2^57 (the worst case produced by add/sub on reduced operands and by the
// tail of the multiplication routines). Group arithmetic runs millions of
// these, so the second pass of FeCarry is worth skipping when the bound
// allows it.
void FeCarryOnce(Fe& a) {
  for (int i = 0; i < 4; ++i) {
    uint64_t c = a.l[i] >> 51;
    a.l[i] &= kMask51;
    a.l[i + 1] += c;
  }
  uint64_t c = a.l[4] >> 51;
  a.l[4] &= kMask51;
  a.l[0] += 19 * c;  // < 2^51 + 19 * 2^6: comfortably within the invariant.
}

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) {
    r.l[i] = a.l[i] + b.l[i];
  }
  FeCarryOnce(r);  // Limbs < 2^53.
  return r;
}

// a - b, computed as a + 2p - b so limbs never underflow.
Fe FeSub(const Fe& a, const Fe& b) {
  // 2p in 51-bit limbs: limb0 = 2*(2^51 - 19), limbs 1..4 = 2*(2^51 - 1).
  static constexpr uint64_t kTwoP0 = 2 * ((1ull << 51) - 19);
  static constexpr uint64_t kTwoPi = 2 * ((1ull << 51) - 1);
  Fe r;
  r.l[0] = a.l[0] + kTwoP0 - b.l[0];
  for (int i = 1; i < 5; ++i) {
    r.l[i] = a.l[i] + kTwoPi - b.l[i];
  }
  FeCarryOnce(r);  // Limbs < 2^54.
  return r;
}

Fe FeNeg(const Fe& a) {
  Fe zero;
  return FeSub(zero, a);
}

Fe FeMul(const Fe& a, const Fe& b) {
  using U128 = unsigned __int128;
  const uint64_t a0 = a.l[0], a1 = a.l[1], a2 = a.l[2], a3 = a.l[3], a4 = a.l[4];
  const uint64_t b0 = b.l[0], b1 = b.l[1], b2 = b.l[2], b3 = b.l[3], b4 = b.l[4];

  U128 r0 = (U128)a0 * b0 + (U128)19 * ((U128)a1 * b4 + (U128)a2 * b3 + (U128)a3 * b2 + (U128)a4 * b1);
  U128 r1 = (U128)a0 * b1 + (U128)a1 * b0 +
            (U128)19 * ((U128)a2 * b4 + (U128)a3 * b3 + (U128)a4 * b2);
  U128 r2 = (U128)a0 * b2 + (U128)a1 * b1 + (U128)a2 * b0 + (U128)19 * ((U128)a3 * b4 + (U128)a4 * b3);
  U128 r3 = (U128)a0 * b3 + (U128)a1 * b2 + (U128)a2 * b1 + (U128)a3 * b0 + (U128)19 * ((U128)a4 * b4);
  U128 r4 = (U128)a0 * b4 + (U128)a1 * b3 + (U128)a2 * b2 + (U128)a3 * b1 + (U128)a4 * b0;

  Fe out;
  U128 c;
  c = r0 >> 51;
  out.l[0] = (uint64_t)r0 & kMask51;
  r1 += c;
  c = r1 >> 51;
  out.l[1] = (uint64_t)r1 & kMask51;
  r2 += c;
  c = r2 >> 51;
  out.l[2] = (uint64_t)r2 & kMask51;
  r3 += c;
  c = r3 >> 51;
  out.l[3] = (uint64_t)r3 & kMask51;
  r4 += c;
  c = r4 >> 51;
  out.l[4] = (uint64_t)r4 & kMask51;
  out.l[0] += 19 * (uint64_t)c;
  FeCarryOnce(out);
  return out;
}

// Dedicated squaring: exploits product symmetry (a_i*a_j counted twice) to
// halve the partial products relative to FeMul. Exponentiation chains spend
// almost all their time here.
Fe FeSquare(const Fe& a) {
  using U128 = unsigned __int128;
  const uint64_t a0 = a.l[0], a1 = a.l[1], a2 = a.l[2], a3 = a.l[3], a4 = a.l[4];
  const uint64_t d0 = 2 * a0, d1 = 2 * a1, d2 = 2 * a2, d3 = 2 * a3;

  U128 r0 = (U128)a0 * a0 + (U128)19 * ((U128)d1 * a4 + (U128)d2 * a3);
  U128 r1 = (U128)d0 * a1 + (U128)19 * ((U128)d2 * a4 + (U128)a3 * a3);
  U128 r2 = (U128)d0 * a2 + (U128)a1 * a1 + (U128)19 * ((U128)d3 * a4);
  U128 r3 = (U128)d0 * a3 + (U128)d1 * a2 + (U128)19 * ((U128)a4 * a4);
  U128 r4 = (U128)d0 * a4 + (U128)d1 * a3 + (U128)a2 * a2;

  Fe out;
  U128 c;
  c = r0 >> 51;
  out.l[0] = (uint64_t)r0 & kMask51;
  r1 += c;
  c = r1 >> 51;
  out.l[1] = (uint64_t)r1 & kMask51;
  r2 += c;
  c = r2 >> 51;
  out.l[2] = (uint64_t)r2 & kMask51;
  r3 += c;
  c = r3 >> 51;
  out.l[3] = (uint64_t)r3 & kMask51;
  r4 += c;
  c = r4 >> 51;
  out.l[4] = (uint64_t)r4 & kMask51;
  out.l[0] += 19 * (uint64_t)c;
  FeCarryOnce(out);
  return out;
}

// a^(2^n): n successive squarings.
Fe FeSquareTimes(Fe a, int n) {
  for (int i = 0; i < n; ++i) {
    a = FeSquare(a);
  }
  return a;
}

// Canonical 32-byte little-endian encoding (value fully reduced mod p).
void FeToBytes(uint8_t out[32], const Fe& in) {
  Fe t = in;
  FeCarry(t);
  // Compute q = floor(value / p) in {0,1} via the standard +19 ripple.
  uint64_t q = (t.l[0] + 19) >> 51;
  q = (t.l[1] + q) >> 51;
  q = (t.l[2] + q) >> 51;
  q = (t.l[3] + q) >> 51;
  q = (t.l[4] + q) >> 51;
  t.l[0] += 19 * q;
  for (int i = 0; i < 4; ++i) {
    uint64_t c = t.l[i] >> 51;
    t.l[i] &= kMask51;
    t.l[i + 1] += c;
  }
  t.l[4] &= kMask51;  // Drop bit 255 (the subtraction of p happened via +19*q).

  uint64_t word0 = t.l[0] | (t.l[1] << 51);
  uint64_t word1 = (t.l[1] >> 13) | (t.l[2] << 38);
  uint64_t word2 = (t.l[2] >> 26) | (t.l[3] << 25);
  uint64_t word3 = (t.l[3] >> 39) | (t.l[4] << 12);
  uint64_t words[4] = {word0, word1, word2, word3};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
}

// Loads 255 bits little-endian (ignores the top bit of byte 31).
Fe FeFromBytes(const uint8_t in[32]) {
  uint64_t words[4];
  for (int w = 0; w < 4; ++w) {
    words[w] = 0;
    for (int i = 0; i < 8; ++i) {
      words[w] |= static_cast<uint64_t>(in[8 * w + i]) << (8 * i);
    }
  }
  Fe r;
  r.l[0] = words[0] & kMask51;
  r.l[1] = ((words[0] >> 51) | (words[1] << 13)) & kMask51;
  r.l[2] = ((words[1] >> 38) | (words[2] << 26)) & kMask51;
  r.l[3] = ((words[2] >> 25) | (words[3] << 39)) & kMask51;
  r.l[4] = (words[3] >> 12) & kMask51;
  return r;
}

bool FeIsZero(const Fe& a) {
  uint8_t bytes[32];
  FeToBytes(bytes, a);
  uint8_t acc = 0;
  for (uint8_t b : bytes) {
    acc |= b;
  }
  return acc == 0;
}

bool FeEqual(const Fe& a, const Fe& b) { return FeIsZero(FeSub(a, b)); }

// Low bit of the canonical encoding — the "sign" used by point compression.
int FeIsNegative(const Fe& a) {
  uint8_t bytes[32];
  FeToBytes(bytes, a);
  return bytes[0] & 1;
}

// base^e where e is a 256-bit little-endian exponent. Plain square-and-
// multiply; this reproduction does not need constant-time exponentiation.
Fe FePow(const Fe& base, const uint8_t e[32]) {
  Fe result = FeFromInt(1);
  for (int i = 255; i >= 0; --i) {
    result = FeSquare(result);
    if ((e[i / 8] >> (i % 8)) & 1) {
      result = FeMul(result, base);
    }
  }
  return result;
}

// Little-endian bytes of p = 2^255 - 19.
void PBytes(uint8_t out[32]) {
  out[0] = 0xed;
  for (int i = 1; i < 31; ++i) {
    out[i] = 0xff;
  }
  out[31] = 0x7f;
}

// Subtracts a small value from a little-endian byte integer in place.
void BytesSubSmall(uint8_t b[32], uint32_t v) {
  uint32_t borrow = v;
  for (int i = 0; i < 32 && borrow != 0; ++i) {
    uint32_t cur = b[i];
    uint32_t sub = borrow & 0xff;
    if (cur >= sub) {
      b[i] = static_cast<uint8_t>(cur - sub);
      borrow >>= 8;
    } else {
      b[i] = static_cast<uint8_t>(cur + 256 - sub);
      borrow = (borrow >> 8) + 1;
    }
  }
}

// Shifts a little-endian byte integer right by `n` bits (n < 8).
void BytesShiftRight(uint8_t b[32], int n) {
  for (int i = 0; i < 32; ++i) {
    uint8_t next = (i + 1 < 32) ? b[i + 1] : 0;
    b[i] = static_cast<uint8_t>((b[i] >> n) | (next << (8 - n)));
  }
}

// Shared prefix of the inversion and square-root chains: z^(2^250 - 1) and
// z^11, via the classic curve25519 addition chain (~250 squarings + 11
// multiplications, versus ~500 multiplications for generic square-and-
// multiply over these all-ones exponents). Point decompression runs one of
// these per point, so batch verification is fixed-cost-bound without it.
void FePow250Chain(const Fe& z, Fe* pow_250_1, Fe* z11) {
  Fe z2 = FeSquare(z);                     // z^2
  Fe z9 = FeMul(FeSquareTimes(z2, 2), z);  // z^9
  *z11 = FeMul(z9, z2);                    // z^11
  Fe z_5_0 = FeMul(FeSquare(*z11), z9);    // z^(2^5 - 1)
  Fe z_10_0 = FeMul(FeSquareTimes(z_5_0, 5), z_5_0);      // z^(2^10 - 1)
  Fe z_20_0 = FeMul(FeSquareTimes(z_10_0, 10), z_10_0);   // z^(2^20 - 1)
  Fe z_40_0 = FeMul(FeSquareTimes(z_20_0, 20), z_20_0);   // z^(2^40 - 1)
  Fe z_50_0 = FeMul(FeSquareTimes(z_40_0, 10), z_10_0);   // z^(2^50 - 1)
  Fe z_100_0 = FeMul(FeSquareTimes(z_50_0, 50), z_50_0);  // z^(2^100 - 1)
  Fe z_200_0 = FeMul(FeSquareTimes(z_100_0, 100), z_100_0);  // z^(2^200 - 1)
  *pow_250_1 = FeMul(FeSquareTimes(z_200_0, 50), z_50_0);    // z^(2^250 - 1)
}

// z^(p - 2) = z^(2^255 - 21) = (z^(2^250 - 1))^(2^5) * z^11.
Fe FeInvert(const Fe& a) {
  Fe pow_250_1, z11;
  FePow250Chain(a, &pow_250_1, &z11);
  return FeMul(FeSquareTimes(pow_250_1, 5), z11);
}

// z^((p - 5) / 8) = z^(2^252 - 3) = (z^(2^250 - 1))^(2^2) * z.
Fe FePowP58(const Fe& a) {
  Fe pow_250_1, z11;
  FePow250Chain(a, &pow_250_1, &z11);
  return FeMul(FeSquareTimes(pow_250_1, 2), a);
}

// ===========================================================================
// Group operations: twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 in
// extended coordinates (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
// ===========================================================================

struct Ge {
  Fe x, y, z, t;
};

struct CurveConstants {
  Fe d;
  Fe d2;       // 2d
  Fe sqrt_m1;  // sqrt(-1)
  Ge base;     // the RFC 8032 base point (x, 4/5) with even x
  Ge identity;

  CurveConstants();
};

// Decompression against explicit constants: also used while constructing the
// constants themselves (the base point), where calling Curve() would
// re-enter the magic-static initialization.
bool GeDecompressWith(const CurveConstants& c, Ge& out, const uint8_t in[32]);

const CurveConstants& Curve() {
  static const CurveConstants c;
  return c;
}

Ge GeIdentity() {
  Ge r;
  r.x = Fe();           // 0
  r.y = FeFromInt(1);   // 1
  r.z = FeFromInt(1);   // 1
  r.t = Fe();           // 0
  return r;
}

// Complete unified addition (add-2008-hwcd-3 for a = -1); also valid when
// p == q, so doubling reuses it.
Ge GeAdd(const Ge& p, const Ge& q) {
  const CurveConstants& c = Curve();
  Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe cc = FeMul(FeMul(p.t, c.d2), q.t);
  Fe d = FeMul(FeAdd(p.z, p.z), q.z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, cc);
  Fe g = FeAdd(d, cc);
  Fe h = FeAdd(b, a);
  Ge r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// Dedicated doubling (dbl-2008-hwcd for a = -1): 4 squarings + 4
// multiplications, versus 9 multiplications through the unified addition.
// Scalar-multiplication ladders are doubling-dominated, so this matters.
Ge GeDouble(const Ge& p) {
  Fe a = FeSquare(p.x);
  Fe b = FeSquare(p.y);
  Fe zz = FeSquare(p.z);
  Fe c = FeAdd(zz, zz);
  Fe e = FeSub(FeSquare(FeAdd(p.x, p.y)), FeAdd(a, b));  // 2xy
  Fe g = FeSub(b, a);                                    // a*x^2 + y^2, a = -1
  Fe f = FeSub(g, c);
  Fe h = FeSub(Fe(), FeAdd(a, b));  // a*x^2 - y^2
  Ge r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

Ge GeNeg(const Ge& p) {
  Ge r;
  r.x = FeNeg(p.x);
  r.y = p.y;
  r.z = p.z;
  r.t = FeNeg(p.t);
  return r;
}

// [8]P: clears the small-order (torsion) component of a point. Verification
// equations are checked after multiplying the residual by the cofactor, so a
// residual consisting only of an order-1/2/4/8 component counts as zero —
// the "cofactored" verification of RFC 8032, which is what makes batch and
// single verification accept exactly the same signature sets.
Ge GeMulCofactor(const Ge& p) { return GeDouble(GeDouble(GeDouble(p))); }

// Precomputed addend (ref10's "cached" form): storing (Y+X, Y-X, Z, 2dT)
// makes each addition one multiplication cheaper than the general formula
// (the 2dT product is amortized into the table build) and skips the
// operand-side add/sub pair. Negation is free: swap the first two fields and
// flip the sign of the T term, which GeSubCached does implicitly.
struct GeCached {
  Fe yplusx, yminusx, z, t2d;
};

GeCached GeToCached(const Ge& p) {
  GeCached c;
  c.yplusx = FeAdd(p.y, p.x);
  c.yminusx = FeSub(p.y, p.x);
  c.z = p.z;
  c.t2d = FeMul(p.t, Curve().d2);
  return c;
}

Ge GeAddCached(const Ge& p, const GeCached& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.yminusx);
  Fe b = FeMul(FeAdd(p.y, p.x), q.yplusx);
  Fe cc = FeMul(p.t, q.t2d);
  Fe d = FeMul(FeAdd(p.z, p.z), q.z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(d, cc);
  Fe g = FeAdd(d, cc);
  Fe h = FeAdd(b, a);
  Ge r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// p + (-q) without materializing -q: -q has yplusx/yminusx swapped and t2d
// negated, which only flips the sign of cc below.
Ge GeSubCached(const Ge& p, const GeCached& q) {
  Fe a = FeMul(FeSub(p.y, p.x), q.yplusx);
  Fe b = FeMul(FeAdd(p.y, p.x), q.yminusx);
  Fe cc = FeMul(p.t, q.t2d);
  Fe d = FeMul(FeAdd(p.z, p.z), q.z);
  Fe e = FeSub(b, a);
  Fe f = FeAdd(d, cc);
  Fe g = FeSub(d, cc);
  Fe h = FeAdd(b, a);
  Ge r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// Identity in extended coordinates: X = 0 and Y = Z (then T = XY/Z = 0).
bool GeIsIdentity(const Ge& p) { return FeIsZero(p.x) && FeEqual(p.y, p.z); }

// [s]P for a 256-bit little-endian scalar, MSB-first double-and-add.
Ge GeScalarMult(const uint8_t s[32], const Ge& p) {
  Ge r = GeIdentity();
  for (int i = 255; i >= 0; --i) {
    r = GeDouble(r);
    if ((s[i / 8] >> (i % 8)) & 1) {
      r = GeAdd(r, p);
    }
  }
  return r;
}

// Precomputed radix-16 table for the base point: window i, entry j-1 holds
// [j * 16^i]B for j in 1..15, in cached form. 64 windows cover a 256-bit
// scalar, so a fixed-base multiplication is at most 64 cached additions and
// no doublings.
using BaseWindowTable = std::array<std::array<GeCached, 15>, 64>;

const BaseWindowTable& BaseTable() {
  static const BaseWindowTable table = [] {
    BaseWindowTable t;
    Ge power = Curve().base;  // [16^i]B for the current window.
    for (int i = 0; i < 64; ++i) {
      Ge multiple = power;
      for (int j = 0; j < 15; ++j) {
        t[i][j] = GeToCached(multiple);
        multiple = GeAdd(multiple, power);
      }
      power = multiple;  // After 15 additions: [16 * 16^i]B.
    }
    return t;
  }();
  return table;
}

// [s]B via the precomputed window table.
Ge GeScalarMultBase(const uint8_t s[32]) {
  const BaseWindowTable& table = BaseTable();
  Ge r = GeIdentity();
  for (int i = 0; i < 64; ++i) {
    uint8_t nibble = (s[i / 2] >> (4 * (i & 1))) & 0x0f;
    if (nibble != 0) {
      r = GeAddCached(r, table[i][nibble - 1]);
    }
  }
  return r;
}

void GeCompress(uint8_t out[32], const Ge& p) {
  Fe zinv = FeInvert(p.z);
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  FeToBytes(out, y);
  out[31] = static_cast<uint8_t>(out[31] | (FeIsNegative(x) << 7));
}

// Decompresses an encoded point. Returns false for off-curve or non-canonical
// encodings (y >= p), per strict validation.
bool GeDecompress(Ge& out, const uint8_t in[32]) {
  return GeDecompressWith(Curve(), out, in);
}

// Decompression memoized for public keys: a protocol verifier sees the same
// small committee key set on virtually every signature, and the square root
// in decompression (~252 squarings) is a large fraction of a verify. Only
// successful strict decodings are cached (keyed by the exact 32-byte
// encoding), so rejection behaviour is identical to GeDecompress. The map is
// bounded and simply reset when full — any real working set is a committee,
// orders of magnitude below the cap.
bool GeDecompressKey(Ge& out, const uint8_t in[32]) {
  struct KeyHash {
    size_t operator()(const std::array<uint8_t, 32>& k) const {
      uint64_t v;  // Encodings of valid points are uniform enough to slice.
      std::memcpy(&v, k.data(), sizeof(v));
      return static_cast<size_t>(v);
    }
  };
  // ntlint:allow(nondet): guards a process-wide memo of pure decompression results — contents never affect protocol output, only speed
  static std::mutex mu;
  static std::unordered_map<std::array<uint8_t, 32>, Ge, KeyHash> cache;
  constexpr size_t kMaxEntries = 4096;

  std::array<uint8_t, 32> key;
  std::memcpy(key.data(), in, 32);
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(key);
    if (it != cache.end()) {
      out = it->second;
      return true;
    }
  }
  if (!GeDecompress(out, in)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu);
  if (cache.size() >= kMaxEntries) {
    cache.clear();
  }
  cache.emplace(key, out);
  return true;
}

bool GeDecompressWith(const CurveConstants& c, Ge& out, const uint8_t in[32]) {
  // Reject y >= p (non-canonical field encoding).
  uint8_t p_bytes[32];
  PBytes(p_bytes);
  uint8_t y_bytes[32];
  std::memcpy(y_bytes, in, 32);
  y_bytes[31] &= 0x7f;
  bool y_lt_p = false;
  for (int i = 31; i >= 0; --i) {
    if (y_bytes[i] != p_bytes[i]) {
      y_lt_p = y_bytes[i] < p_bytes[i];
      break;
    }
  }
  if (!y_lt_p) {
    return false;
  }

  int sign = in[31] >> 7;
  Fe y = FeFromBytes(in);
  Fe y2 = FeSquare(y);
  Fe u = FeSub(y2, FeFromInt(1));            // y^2 - 1
  Fe v = FeAdd(FeMul(y2, c.d), FeFromInt(1));  // d y^2 + 1

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe v3 = FeMul(FeSquare(v), v);
  Fe v7 = FeMul(FeSquare(v3), v);
  Fe x = FeMul(FeMul(u, v3), FePowP58(FeMul(u, v7)));

  Fe vx2 = FeMul(v, FeSquare(x));
  if (!FeEqual(vx2, u)) {
    if (FeEqual(vx2, FeNeg(u))) {
      x = FeMul(x, c.sqrt_m1);
    } else {
      return false;
    }
  }
  if (FeIsZero(x) && sign == 1) {
    return false;  // -0 is not a valid encoding.
  }
  if (FeIsNegative(x) != sign) {
    x = FeNeg(x);
  }
  out.x = x;
  out.y = y;
  out.z = FeFromInt(1);
  out.t = FeMul(x, y);
  return true;
}

CurveConstants::CurveConstants() {
  // d = -121665 / 121666 mod p.
  d = FeNeg(FeMul(FeFromInt(121665), FeInvert(FeFromInt(121666))));
  d2 = FeAdd(d, d);
  // sqrt(-1) = 2^((p-1)/4) mod p.
  uint8_t e[32];
  PBytes(e);
  BytesSubSmall(e, 1);
  BytesShiftRight(e, 2);
  sqrt_m1 = FePow(FeFromInt(2), e);
  identity = GeIdentity();
  // Base point: y = 4/5, even x (sign bit 0).
  Fe by = FeMul(FeFromInt(4), FeInvert(FeFromInt(5)));
  uint8_t enc[32];
  FeToBytes(enc, by);
  bool ok = GeDecompressWith(*this, base, enc);
  (void)ok;  // The base point always decodes; pinned by tests.
}

// ===========================================================================
// Scalar arithmetic modulo L = 2^252 + 27742317777372353535851937790883648493.
// Scalars are 4 little-endian 64-bit words. Reduction is an exact 512-bit
// MSB-first binary reduction (shift-and-conditional-subtract).
// ===========================================================================

struct Sc {
  uint64_t w[4] = {0, 0, 0, 0};
};

const Sc& GroupOrder() {
  // Little-endian bytes of L (standard constant, pinned by [L]B == identity
  // in tests).
  static const Sc l = [] {
    const uint8_t bytes[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
                               0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                               0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    Sc s;
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 8; ++j) {
        s.w[i] |= static_cast<uint64_t>(bytes[8 * i + j]) << (8 * j);
      }
    }
    return s;
  }();
  return l;
}

int ScCompare(const Sc& a, const Sc& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? -1 : 1;
    }
  }
  return 0;
}

void ScSubInPlace(Sc& a, const Sc& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t bi = b.w[i] + borrow;
    uint64_t next_borrow = (bi < borrow) || (a.w[i] < bi) ? 1 : 0;
    a.w[i] -= bi;
    borrow = next_borrow;
  }
}

// Reduces a 512-bit little-endian integer (as 8 words) modulo L by folding
// at bit 252: writing v = hi * 2^252 + lo and using 2^252 == -delta (mod L)
// with delta = L - 2^252 (125 bits), v == lo - hi * delta. Each fold shaves
// ~127 bits (512 -> 385 -> 258 -> 131), so three folds and one final
// correction replace the former 512-step shift-and-subtract loop. The
// intermediate value is kept as (magnitude, sign) because a fold can go
// negative.
Sc ScReduceWide(const uint64_t wide[8]) {
  // delta = L - 2^252, two words.
  static constexpr uint64_t kDelta[2] = {0x5812631a5cf5d3edull, 0x14def9dea2f79cd6ull};

  uint64_t v[8];
  std::memcpy(v, wide, sizeof(v));
  bool negative = false;

  // Loop while v >= 2^252 (bit 252 lives at word 3, bit 60).
  while (v[7] | v[6] | v[5] | v[4] | (v[3] >> 60)) {
    // hi = v >> 252 (up to 5 words), lo = v mod 2^252.
    uint64_t hi[5];
    for (int i = 0; i < 5; ++i) {
      uint64_t lo_part = v[i + 3] >> 60;
      uint64_t hi_part = (i + 4 < 8) ? (v[i + 4] << 4) : 0;
      hi[i] = lo_part | hi_part;
    }
    uint64_t lo[8] = {v[0], v[1], v[2], v[3] & ((1ull << 60) - 1), 0, 0, 0, 0};

    // prod = hi * delta, at most 7 words.
    uint64_t prod[8] = {0};
    using U128 = unsigned __int128;
    for (int i = 0; i < 5; ++i) {
      uint64_t carry = 0;
      for (int j = 0; j < 2; ++j) {
        U128 cur = (U128)hi[i] * kDelta[j] + prod[i + j] + carry;
        prod[i + j] = (uint64_t)cur;
        carry = (uint64_t)(cur >> 64);
      }
      prod[i + 2] += carry;
    }

    // v = |lo - prod|, tracking the sign flip when prod > lo.
    int cmp = 0;
    for (int i = 7; i >= 0; --i) {
      if (lo[i] != prod[i]) {
        cmp = lo[i] < prod[i] ? -1 : 1;
        break;
      }
    }
    const uint64_t* big = cmp < 0 ? prod : lo;
    const uint64_t* small = cmp < 0 ? lo : prod;
    uint64_t borrow = 0;
    for (int i = 0; i < 8; ++i) {
      uint64_t si = small[i] + borrow;
      uint64_t next_borrow = (si < borrow) || (big[i] < si) ? 1 : 0;
      v[i] = big[i] - si;
      borrow = next_borrow;
    }
    if (cmp < 0) {
      negative = !negative;
    }
  }

  Sc r;
  for (int i = 0; i < 4; ++i) {
    r.w[i] = v[i];
  }
  if (negative && !(r.w[0] == 0 && r.w[1] == 0 && r.w[2] == 0 && r.w[3] == 0)) {
    Sc l = GroupOrder();
    ScSubInPlace(l, r);  // r < 2^252 < L, so L - r is in (0, L).
    r = l;
  }
  return r;
}

Sc ScFromBytesWide(const uint8_t in[64]) {
  uint64_t wide[8] = {0};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      wide[i] |= static_cast<uint64_t>(in[8 * i + j]) << (8 * j);
    }
  }
  return ScReduceWide(wide);
}

Sc ScFromBytes(const uint8_t in[32]) {
  uint8_t wide[64] = {0};
  std::memcpy(wide, in, 32);
  return ScFromBytesWide(wide);
}

void ScToBytes(uint8_t out[32], const Sc& s) {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(s.w[i] >> (8 * j));
    }
  }
}

// (a * b + c) mod L. a and b may be any 256-bit values (e.g. the clamped
// secret scalar); the 512-bit product plus c is reduced exactly.
Sc ScMulAdd(const Sc& a, const Sc& b, const Sc& c) {
  using U128 = unsigned __int128;
  uint64_t wide[8] = {0};
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      U128 cur = (U128)a.w[i] * b.w[j] + wide[i + j] + carry;
      wide[i + j] = (uint64_t)cur;
      carry = (uint64_t)(cur >> 64);
    }
    wide[i + 4] += carry;
  }
  // Add c.
  uint64_t carry = 0;
  for (int i = 0; i < 8; ++i) {
    U128 cur = (U128)wide[i] + (i < 4 ? c.w[i] : 0) + carry;
    wide[i] = (uint64_t)cur;
    carry = (uint64_t)(cur >> 64);
  }
  return ScReduceWide(wide);
}

// ===========================================================================
// Interleaved Straus multi-scalar multiplication: evaluates sum_i [s_i]P_i
// with one doubling chain shared by every term (253 doublings total, however
// many points) and per-point tables of small odd multiples. Scalars are
// recoded into signed sliding windows (odd digits in {+-1, +-3, ..., +-15},
// nonzero-digit density ~1/6), so each point costs ~8 table additions plus
// ~|s|/6 window additions — versus 256 doublings *per point* for repeated
// double-and-add. Negating an Edwards point is free (negate x, t), which is
// what makes the signed recoding profitable.
// ===========================================================================

// Signed sliding-window recoding (the classic ed25519 "slide"): rewrites the
// scalar bits as digits r[i] in {0, +-1, +-3, ..., +-15} with r[i] != 0 only
// at window starts, such that sum r[i] 2^i equals the scalar.
void SlideRecode(int8_t r[256], const uint8_t s[32]) {
  for (int i = 0; i < 256; ++i) {
    r[i] = static_cast<int8_t>((s[i >> 3] >> (i & 7)) & 1);
  }
  for (int i = 0; i < 256; ++i) {
    if (r[i] == 0) {
      continue;
    }
    for (int b = 1; b <= 6 && i + b < 256; ++b) {
      if (r[i + b] == 0) {
        continue;
      }
      if (r[i] + (r[i + b] << b) <= 15) {
        r[i] = static_cast<int8_t>(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -15) {
        r[i] = static_cast<int8_t>(r[i] - (r[i + b] << b));
        for (int k = i + b; k < 256; ++k) {
          if (r[k] == 0) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

struct MsmTerm {
  std::array<GeCached, 8> table;  // [1]P, [3]P, [5]P, ..., [15]P.
  int8_t naf[256];
  int top;  // Highest index with a nonzero digit; -1 if the scalar is 0.
};

MsmTerm MakeMsmTerm(const Ge& p, const Sc& s) {
  MsmTerm t;
  uint8_t scalar[32];
  ScToBytes(scalar, s);
  SlideRecode(t.naf, scalar);
  GeCached p2 = GeToCached(GeDouble(p));
  Ge cur = p;
  t.table[0] = GeToCached(cur);
  for (int j = 1; j < 8; ++j) {
    cur = GeAddCached(cur, p2);
    t.table[j] = GeToCached(cur);
  }
  t.top = -1;
  for (int i = 255; i >= 0; --i) {
    if (t.naf[i] != 0) {
      t.top = i;
      break;
    }
  }
  return t;
}

Ge MsmEvaluate(const std::vector<MsmTerm>& terms) {
  int top = -1;
  for (const MsmTerm& t : terms) {
    top = std::max(top, t.top);
  }
  Ge acc = GeIdentity();
  for (int i = top; i >= 0; --i) {
    if (i != top) {
      acc = GeDouble(acc);
    }
    for (const MsmTerm& t : terms) {
      int8_t digit = t.naf[i];
      if (digit > 0) {
        acc = GeAddCached(acc, t.table[digit >> 1]);
      } else if (digit < 0) {
        acc = GeSubCached(acc, t.table[(-digit) >> 1]);
      }
    }
  }
  return acc;
}

// ===========================================================================
// Batch verification (RFC 8032 §8.2 style). Per-item prework decodes the
// points, rejects S >= L, and computes k = H(R || A || M) mod L; the
// cofactored batch equation with 128-bit random coefficients z_i then checks
// all items at once. Bisection localizes failures.
// ===========================================================================

// Precomputed per-item state that survives across bisection rounds.
struct BatchPre {
  Ge a;       // Decoded public key A.
  Ge r;       // Decoded commitment R.
  Sc s;       // Signature scalar S (< L, checked).
  Sc k;       // Challenge H(R || A || M) mod L.
  uint8_t pk[32];
  uint8_t sig[64];
};

bool ScIsZero(const Sc& a) { return (a.w[0] | a.w[1] | a.w[2] | a.w[3]) == 0; }

// Checks [8]([sum z_i s_i]B - sum [z_i k_i]A_i - sum [z_i]R_i) == identity
// for the given items. The z_i are derived from a transcript of the subset
// (Fiat-Shamir style), so results are deterministic; the challenge k_i binds
// the message, so hashing (pk, sig, k) suffices.
//
// The cofactor multiplication is load-bearing for consistency with single
// verification: without it, an adversarial signature whose residual is a
// small-order point T (e.g. R' = R + T) would make the batch verdict depend
// on z_i mod 8 — i.e. on the exact flush composition, which differs across
// delivery paths and would let honest validators reach different verdicts
// for the same certificate. Multiplying by 8 clears every torsion component
// on both the batch and single paths, so the two accept the same signatures
// (up to the 2^-128 z-collision, which bisection resolves to the single
// equation anyway).
bool BatchEquationHolds(const std::vector<const BatchPre*>& items) {
  Sha512 transcript;
  transcript.Update("nt-ed25519-batch");
  for (const BatchPre* item : items) {
    uint8_t k_bytes[32];
    ScToBytes(k_bytes, item->k);
    transcript.Update(item->pk, 32);
    transcript.Update(item->sig, 64);
    transcript.Update(k_bytes, 32);
  }
  Sha512::Output seed = transcript.Finalize();

  Sc c;  // sum z_i s_i mod L.
  std::vector<MsmTerm> terms;
  terms.reserve(2 * items.size() + 1);
  Sha512::Output z_block{};  // One 64-byte hash yields four 128-bit z_i.
  for (size_t i = 0; i < items.size(); ++i) {
    if (i % 4 == 0) {
      Sha512 h;
      h.Update(seed.data(), seed.size());
      uint8_t index[8];
      for (int b = 0; b < 8; ++b) {
        index[b] = static_cast<uint8_t>((i / 4) >> (8 * b));
      }
      h.Update(index, 8);
      z_block = h.Finalize();
    }
    const uint8_t* z_bytes = z_block.data() + 16 * (i % 4);
    Sc z;
    for (int wi = 0; wi < 2; ++wi) {
      for (int b = 0; b < 8; ++b) {
        z.w[wi] |= static_cast<uint64_t>(z_bytes[8 * wi + b]) << (8 * b);
      }
    }
    if (ScIsZero(z)) {
      z.w[0] = 1;  // z must be invertible mod L (probability 2^-128).
    }
    c = ScMulAdd(z, items[i]->s, c);
    Sc zk = ScMulAdd(z, items[i]->k, Sc{});
    terms.push_back(MakeMsmTerm(GeNeg(items[i]->a), zk));
    terms.push_back(MakeMsmTerm(GeNeg(items[i]->r), z));
  }
  // The [c]B term goes through the fixed-base window table (64 additions,
  // no table build) rather than the generic MSM.
  uint8_t c_bytes[32];
  ScToBytes(c_bytes, c);
  Ge residual = GeAdd(MsmEvaluate(terms), GeScalarMultBase(c_bytes));
  return GeIsIdentity(GeMulCofactor(residual));
}

// The cofactored single-signature equation [8]([S]B - R - [k]A) == identity
// on precomputed state. Must match Ed25519Verify exactly: bisection leaves
// land here, and their verdicts are the contract between batch and single
// verification.
bool SingleEquationHolds(const BatchPre& item) {
  uint8_t s_bytes[32];
  ScToBytes(s_bytes, item.s);
  uint8_t k_bytes[32];
  ScToBytes(k_bytes, item.k);
  Ge lhs = GeScalarMultBase(s_bytes);
  Ge rhs = GeAdd(item.r, GeScalarMult(k_bytes, item.a));
  return GeIsIdentity(GeMulCofactor(GeAdd(lhs, GeNeg(rhs))));
}

// Batch check over `items`, writing per-item verdicts through `out` (indexed
// by each item's original position). On batch failure, bisects; leaves fall
// back to the exact single-signature equation so verdicts agree with
// Ed25519Verify even in the astronomically unlikely event of a z collision.
void BatchVerifyRange(const std::vector<const BatchPre*>& items,
                      const std::vector<size_t>& positions, std::vector<bool>& out) {
  if (items.empty()) {
    return;
  }
  if (items.size() == 1) {
    out[positions[0]] = SingleEquationHolds(*items[0]);
    return;
  }
  if (BatchEquationHolds(items)) {
    for (size_t pos : positions) {
      out[pos] = true;
    }
    return;
  }
  size_t mid = items.size() / 2;
  std::vector<const BatchPre*> left(items.begin(), items.begin() + mid);
  std::vector<size_t> left_pos(positions.begin(), positions.begin() + mid);
  std::vector<const BatchPre*> right(items.begin() + mid, items.end());
  std::vector<size_t> right_pos(positions.begin() + mid, positions.end());
  BatchVerifyRange(left, left_pos, out);
  BatchVerifyRange(right, right_pos, out);
}

// ===========================================================================
// RFC 8032 signing / verification.
// ===========================================================================

struct ExpandedKey {
  uint8_t scalar[32];  // Clamped secret scalar a.
  uint8_t prefix[32];  // Nonce-derivation prefix.
  Ed25519PublicKey pk;
};

ExpandedKey Expand(const Ed25519Seed& seed) {
  ExpandedKey key;
  Sha512::Output h = Sha512::Hash(seed.data(), seed.size());
  std::memcpy(key.scalar, h.data(), 32);
  std::memcpy(key.prefix, h.data() + 32, 32);
  key.scalar[0] &= 248;
  key.scalar[31] &= 127;
  key.scalar[31] |= 64;
  Ge a = GeScalarMultBase(key.scalar);
  GeCompress(key.pk.data(), a);
  return key;
}

}  // namespace

Ed25519PublicKey Ed25519Public(const Ed25519Seed& seed) { return Expand(seed).pk; }

Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const uint8_t* msg, size_t len) {
  ExpandedKey key = Expand(seed);

  Sha512 h1;
  h1.Update(key.prefix, 32);
  h1.Update(msg, len);
  Sha512::Output r_hash = h1.Finalize();
  Sc r = ScFromBytesWide(r_hash.data());

  uint8_t r_bytes[32];
  ScToBytes(r_bytes, r);
  Ge r_point = GeScalarMultBase(r_bytes);
  uint8_t r_enc[32];
  GeCompress(r_enc, r_point);

  Sha512 h2;
  h2.Update(r_enc, 32);
  h2.Update(key.pk.data(), 32);
  h2.Update(msg, len);
  Sha512::Output k_hash = h2.Finalize();
  Sc k = ScFromBytesWide(k_hash.data());

  Sc a = ScFromBytes(key.scalar);  // a mod L; same point since B has order L.
  Sc s = ScMulAdd(k, a, r);

  Ed25519Signature sig;
  std::memcpy(sig.data(), r_enc, 32);
  ScToBytes(sig.data() + 32, s);
  return sig;
}

bool Ed25519Verify(const Ed25519PublicKey& pk, const uint8_t* msg, size_t len,
                   const Ed25519Signature& sig) {
  // Reject S >= L (signature malleability).
  Sc s;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s.w[i] |= static_cast<uint64_t>(sig[32 + 8 * i + j]) << (8 * j);
    }
  }
  if (ScCompare(s, GroupOrder()) >= 0) {
    return false;
  }

  Ge a_point;
  if (!GeDecompressKey(a_point, pk.data())) {
    return false;
  }
  Ge r_point;
  if (!GeDecompress(r_point, sig.data())) {
    return false;
  }

  Sha512 h;
  h.Update(sig.data(), 32);
  h.Update(pk.data(), 32);
  h.Update(msg, len);
  Sha512::Output k_hash = h.Finalize();
  Sc k = ScFromBytesWide(k_hash.data());
  uint8_t k_bytes[32];
  ScToBytes(k_bytes, k);

  // Cofactored check: [8]([S]B - R - [k]A) == identity (the "[8][S]B ==
  // [8]R + [8][k]A" form RFC 8032 permits). Multiplying by the cofactor
  // clears small-order components, so this accepts exactly the same
  // signature sets as the cofactored batch equation — adversarial torsion
  // offsets in R or A cannot make the two paths disagree.
  Ge lhs = GeScalarMultBase(sig.data() + 32);
  Ge rhs = GeAdd(r_point, GeScalarMult(k_bytes, a_point));
  return GeIsIdentity(GeMulCofactor(GeAdd(lhs, GeNeg(rhs))));
}

std::vector<bool> Ed25519BatchVerify(const Ed25519BatchItem* items, size_t n) {
  std::vector<bool> out(n, false);
  if (n == 0) {
    return out;
  }
  // Per-item prework: strict decoding and the challenge hash. Items that
  // fail here are invalid regardless of the batch equation and are excluded
  // from it, so one garbage signature cannot force a full bisection.
  std::vector<BatchPre> pre(n);
  std::vector<const BatchPre*> candidates;
  std::vector<size_t> positions;
  candidates.reserve(n);
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Ed25519BatchItem& item = items[i];
    Sc s;
    for (int wi = 0; wi < 4; ++wi) {
      for (int b = 0; b < 8; ++b) {
        s.w[wi] |= static_cast<uint64_t>(item.sig[32 + 8 * wi + b]) << (8 * b);
      }
    }
    if (ScCompare(s, GroupOrder()) >= 0) {
      continue;  // Malleable S >= L: rejected, same as Ed25519Verify.
    }
    BatchPre& p = pre[i];
    if (!GeDecompressKey(p.a, item.pk.data()) || !GeDecompress(p.r, item.sig.data())) {
      continue;
    }
    p.s = s;
    Sha512 h;
    h.Update(item.sig.data(), 32);
    h.Update(item.pk.data(), 32);
    h.Update(item.msg, item.len);
    Sha512::Output k_hash = h.Finalize();
    p.k = ScFromBytesWide(k_hash.data());
    std::memcpy(p.pk, item.pk.data(), 32);
    std::memcpy(p.sig, item.sig.data(), 64);
    candidates.push_back(&p);
    positions.push_back(i);
  }
  BatchVerifyRange(candidates, positions, out);
  return out;
}

Ed25519PublicKey Ed25519ScalarMultBase(const std::array<uint8_t, 32>& scalar) {
  // Cross-check the precomputed-table path against the generic ladder: the
  // table is load-bearing for Sign/Verify, so the test hook validates both.
  Ge p = GeScalarMultBase(scalar.data());
  Ge q = GeScalarMult(scalar.data(), Curve().base);
  Ed25519PublicKey out;
  GeCompress(out.data(), p);
  Ed25519PublicKey check;
  GeCompress(check.data(), q);
  if (out != check) {
    return Ed25519PublicKey{};  // Impossible unless the table is corrupt.
  }
  return out;
}

bool Ed25519PointOnCurve(const std::array<uint8_t, 32>& encoded) {
  Ge p;
  return GeDecompress(p, encoded.data());
}

std::array<uint8_t, 32> Ed25519GroupOrder() {
  std::array<uint8_t, 32> out{};
  ScToBytes(out.data(), GroupOrder());
  return out;
}

}  // namespace nt
