// The shared random coin Tusk uses to elect wave leaders (paper §5).
//
// The paper instantiates it with an adaptively secure threshold signature
// [14] whose key setup can run under asynchrony [31], piggybacked on DAG
// blocks at zero message cost. This reproduction keeps the interface and the
// property the proofs rely on — the wave-w draw is uniform and unobservable
// to the protocol before round 2w+1 is interpreted — and provides:
//
//  - CommonCoin: H(setup-seed || wave) mod n. Zero messages, uniform,
//    deterministic across validators (they share the setup seed, exactly as
//    they would share the threshold public key).
//  - ShareCoin: a share-combining mock (f+1 keyed-hash shares XOR-folded)
//    exercising the aggregation code path in tests.
#ifndef SRC_CRYPTO_COIN_H_
#define SRC_CRYPTO_COIN_H_

#include <cstdint>
#include <vector>

#include "src/crypto/hash.h"

namespace nt {

// Elects the leader validator index for a wave.
class ThresholdCoin {
 public:
  virtual ~ThresholdCoin() = default;

  // Uniform draw in [0, committee_size) for `wave`. Every honest validator
  // obtains the same value.
  virtual uint32_t LeaderOf(uint64_t wave, uint32_t committee_size) const = 0;
};

// Seed-derived coin; the default in all simulations.
class CommonCoin : public ThresholdCoin {
 public:
  explicit CommonCoin(uint64_t setup_seed) : setup_seed_(setup_seed) {}

  uint32_t LeaderOf(uint64_t wave, uint32_t committee_size) const override;

 private:
  uint64_t setup_seed_;
};

// Mock threshold scheme: validator i's share for a wave is a keyed hash; any
// f+1 distinct shares combine to the same coin value. Used by tests to check
// that the combination is share-set independent.
class ShareCoin : public ThresholdCoin {
 public:
  // One secret per validator, all derived from the setup seed (stand-in for
  // DKG output).
  ShareCoin(uint64_t setup_seed, uint32_t committee_size);

  // Validator `index`'s share for `wave`.
  Digest Share(uint32_t index, uint64_t wave) const;

  // Combines >= threshold distinct shares into the coin value. The result
  // must not depend on which subset was supplied; asserts shares are valid.
  static uint32_t Combine(const std::vector<Digest>& shares, uint32_t committee_size);

  uint32_t LeaderOf(uint64_t wave, uint32_t committee_size) const override;

 private:
  uint64_t setup_seed_;
  uint32_t committee_size_;
};

}  // namespace nt

#endif  // SRC_CRYPTO_COIN_H_
