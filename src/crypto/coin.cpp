#include "src/crypto/coin.h"

#include <cstring>

#include "src/common/codec.h"
#include "src/types/committee.h"

namespace nt {
namespace {

Digest WaveValue(uint64_t setup_seed, uint64_t wave) {
  Writer w;
  w.PutString("tusk-coin");
  w.PutU64(setup_seed);
  w.PutU64(wave);
  return Sha256::Hash(w.bytes());
}

uint32_t DigestToIndex(const Digest& d, uint32_t committee_size) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(d[i]) << (8 * i);
  }
  return static_cast<uint32_t>(v % committee_size);
}

}  // namespace

uint32_t CommonCoin::LeaderOf(uint64_t wave, uint32_t committee_size) const {
  return DigestToIndex(WaveValue(setup_seed_, wave), committee_size);
}

ShareCoin::ShareCoin(uint64_t setup_seed, uint32_t committee_size)
    : setup_seed_(setup_seed), committee_size_(committee_size) {}

Digest ShareCoin::Share(uint32_t index, uint64_t wave) const {
  // A share carries the wave value (the "signature share" payload all honest
  // shares agree on) tagged with the contributor's index in the trailing four
  // bytes, mimicking distinct per-party shares of one aggregate.
  Digest share = WaveValue(setup_seed_, wave);
  share[28] = static_cast<uint8_t>(index);
  share[29] = static_cast<uint8_t>(index >> 8);
  share[30] = static_cast<uint8_t>(index >> 16);
  share[31] = static_cast<uint8_t>(index >> 24);
  return share;
}

uint32_t ShareCoin::Combine(const std::vector<Digest>& shares, uint32_t committee_size) {
  // All honest shares agree on the first 28 bytes; the combined value is a
  // function of that payload only, so any qualifying subset yields the same
  // coin — the subset-independence a real threshold scheme provides via
  // interpolation.
  Digest payload = shares.front();
  payload[28] = payload[29] = payload[30] = payload[31] = 0;
  return DigestToIndex(payload, committee_size);
}

uint32_t ShareCoin::LeaderOf(uint64_t wave, uint32_t committee_size) const {
  std::vector<Digest> shares;
  uint32_t threshold = Committee::ValidityThresholdFor(committee_size);  // f + 1
  for (uint32_t i = 0; i < threshold; ++i) {
    shares.push_back(Share(i, wave));
  }
  return Combine(shares, committee_size);
}

}  // namespace nt
