#include "src/crypto/hash.h"

#include <cstring>

namespace nt {
namespace {

// ---------------------------------------------------------------------------
// Constant derivation.
//
// FIPS 180-4 defines the SHA-2 constants as the first 64 bits of the
// fractional parts of the cube roots of the first 80 primes (round constants)
// and of the square roots of the first 16 primes (initial hash values).
// We compute floor(frac(root(p)) * 2^64) exactly: binary-search the 64
// fractional bits of the root, comparing candidate^k against p << (64*k)
// using multi-word integer arithmetic.
// ---------------------------------------------------------------------------

// 320-bit accumulator as 5 little-endian 64-bit words.
struct U320 {
  uint64_t w[5] = {0, 0, 0, 0, 0};

  // Three-way compare.
  int Compare(const U320& other) const {
    for (int i = 4; i >= 0; --i) {
      if (w[i] != other.w[i]) {
        return w[i] < other.w[i] ? -1 : 1;
      }
    }
    return 0;
  }
};

U320 AddShift64(const U320& a, const U320& b_shifted_by_64) {
  // Adds b << 64 to a.
  U320 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 5; ++i) {
    unsigned __int128 sum = carry + a.w[i];
    if (i >= 1) {
      sum += b_shifted_by_64.w[i - 1];
    }
    out.w[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return out;
}

// candidate is < 2^69 (integer part up to 8 for cube roots of primes < 512,
// plus 64 fractional bits). Returns candidate^2 as U320.
U320 Square(uint64_t lo, uint64_t hi) {
  // (hi*2^64 + lo)^2 = lo^2 + 2*hi*lo*2^64 + hi^2*2^128
  U320 out;
  unsigned __int128 lo2 = static_cast<unsigned __int128>(lo) * lo;
  unsigned __int128 cross2 = (static_cast<unsigned __int128>(hi) * lo) << 1;  // hi < 2^6.
  unsigned __int128 hi2 = static_cast<unsigned __int128>(hi) * hi;

  unsigned __int128 acc = static_cast<uint64_t>(lo2);
  out.w[0] = static_cast<uint64_t>(acc);
  acc = (acc >> 64) + static_cast<uint64_t>(lo2 >> 64) + static_cast<uint64_t>(cross2);
  out.w[1] = static_cast<uint64_t>(acc);
  acc = (acc >> 64) + static_cast<uint64_t>(cross2 >> 64) + static_cast<uint64_t>(hi2);
  out.w[2] = static_cast<uint64_t>(acc);
  acc = (acc >> 64) + static_cast<uint64_t>(hi2 >> 64);
  out.w[3] = static_cast<uint64_t>(acc);
  return out;
}

// candidate^3 for candidate = hi:lo (< 2^69).
U320 Cube(uint64_t lo, uint64_t hi) {
  U320 sq = Square(lo, hi);
  // sq fits in ~138 bits -> words 0..2. Multiply by candidate.
  // sq * lo:
  U320 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 5; ++i) {
    unsigned __int128 prod = carry + static_cast<unsigned __int128>(sq.w[i]) * lo;
    out.w[i] = static_cast<uint64_t>(prod);
    carry = prod >> 64;
  }
  // + (sq * hi) << 64:
  U320 sq_hi;
  carry = 0;
  for (int i = 0; i < 5; ++i) {
    unsigned __int128 prod = carry + static_cast<unsigned __int128>(sq.w[i]) * hi;
    sq_hi.w[i] = static_cast<uint64_t>(prod);
    carry = prod >> 64;
  }
  return AddShift64(out, sq_hi);
}

// Exact floor(frac(p^(1/k)) * 2^64) for k in {2, 3}.
uint64_t FracRootBits(uint32_t p, int k) {
  // Integer part of the root.
  uint64_t int_part = 0;
  while ((k == 2 ? (int_part + 1) * (int_part + 1) : (int_part + 1) * (int_part + 1) * (int_part + 1)) <=
         p) {
    ++int_part;
  }
  // Target: candidate^k <= p << (64*k) for candidate = (int_part << 64) | frac.
  U320 target;
  target.w[k] = p;  // p << (64*k)

  uint64_t frac = 0;
  for (int bit = 63; bit >= 0; --bit) {
    uint64_t trial = frac | (1ull << bit);
    U320 val = (k == 2) ? Square(trial, int_part) : Cube(trial, int_part);
    if (val.Compare(target) <= 0) {
      frac = trial;
    }
  }
  return frac;
}

constexpr uint32_t kPrimes[80] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131,
    137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311,
    313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409};

struct ShaConstants {
  uint32_t k256[64];
  uint32_t h256[8];
  uint64_t k512[80];
  uint64_t h512[8];

  ShaConstants() {
    for (int i = 0; i < 80; ++i) {
      k512[i] = FracRootBits(kPrimes[i], 3);
      if (i < 64) {
        k256[i] = static_cast<uint32_t>(k512[i] >> 32);
      }
    }
    for (int i = 0; i < 8; ++i) {
      uint64_t s = FracRootBits(kPrimes[i], 2);
      h256[i] = static_cast<uint32_t>(s >> 32);
      // SHA-512 initial values are the 64-bit fractional parts of the square
      // roots of the first 8 primes.
      h512[i] = s;
    }
  }
};

const ShaConstants& Constants() {
  static const ShaConstants c;
  return c;
}

inline uint32_t Rotr32(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline uint64_t Rotr64(uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

inline uint64_t LoadBe64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

inline void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

inline void StoreBe64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
  }
}

constexpr char kHexDigitsLower[] = "0123456789abcdef";

}  // namespace

std::string DigestHex(const Digest& d) { return ToHex(d.data(), d.size()); }

std::string DigestShort(const Digest& d) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out.push_back(kHexDigitsLower[d[i] >> 4]);
    out.push_back(kHexDigitsLower[d[i] & 0x0f]);
  }
  return out;
}

// ----------------------------------------------------------------- SHA-256

Sha256::Sha256() {
  const ShaConstants& c = Constants();
  for (int i = 0; i < 8; ++i) {
    state_[i] = c.h256[i];
  }
}

void Sha256::ProcessBlock(const uint8_t* block) {
  const ShaConstants& c = Constants();
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBe32(block + 4 * i);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], cc = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t t1 = h + s1 + ch + c.k256[i] + w[i];
    uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
    uint32_t maj = (a & b) ^ (a & cc) ^ (b & cc);
    uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = cc;
    cc = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += cc;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 64) {
      ProcessBlock(data);
      data += 64;
      len -= 64;
      continue;
    }
    size_t take = std::min(len, 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

Digest Sha256::Finalize() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_be[8];
  StoreBe64(len_be, bit_len);
  // Bypass Update's length accounting for the final length field.
  std::memcpy(buffer_.data() + 56, len_be, 8);
  ProcessBlock(buffer_.data());
  buffer_len_ = 0;

  Digest out;
  for (int i = 0; i < 8; ++i) {
    StoreBe32(out.data() + 4 * i, state_[i]);
  }
  return out;
}

Digest Sha256::Hash(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finalize();
}

// ----------------------------------------------------------------- SHA-512

Sha512::Sha512() {
  const ShaConstants& c = Constants();
  for (int i = 0; i < 8; ++i) {
    state_[i] = c.h512[i];
  }
}

void Sha512::ProcessBlock(const uint8_t* block) {
  const ShaConstants& c = Constants();
  uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadBe64(block + 8 * i);
  }
  for (int i = 16; i < 80; ++i) {
    uint64_t s0 = Rotr64(w[i - 15], 1) ^ Rotr64(w[i - 15], 8) ^ (w[i - 15] >> 7);
    uint64_t s1 = Rotr64(w[i - 2], 19) ^ Rotr64(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint64_t a = state_[0], b = state_[1], cc = state_[2], d = state_[3];
  uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 80; ++i) {
    uint64_t s1 = Rotr64(e, 14) ^ Rotr64(e, 18) ^ Rotr64(e, 41);
    uint64_t ch = (e & f) ^ (~e & g);
    uint64_t t1 = h + s1 + ch + c.k512[i] + w[i];
    uint64_t s0 = Rotr64(a, 28) ^ Rotr64(a, 34) ^ Rotr64(a, 39);
    uint64_t maj = (a & b) ^ (a & cc) ^ (b & cc);
    uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = cc;
    cc = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += cc;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::Update(const uint8_t* data, size_t len) {
  total_len_ += len;
  while (len > 0) {
    if (buffer_len_ == 0 && len >= 128) {
      ProcessBlock(data);
      data += 128;
      len -= 128;
      continue;
    }
    size_t take = std::min(len, 128 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 128) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

Sha512::Output Sha512::Finalize() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 112) {
    Update(&zero, 1);
  }
  // 128-bit length field: high 64 bits are zero for all inputs we hash.
  std::memset(buffer_.data() + 112, 0, 8);
  StoreBe64(buffer_.data() + 120, bit_len);
  ProcessBlock(buffer_.data());
  buffer_len_ = 0;

  Output out;
  for (int i = 0; i < 8; ++i) {
    StoreBe64(out.data() + 8 * i, state_[i]);
  }
  return out;
}

Sha512::Output Sha512::Hash(const uint8_t* data, size_t len) {
  Sha512 h;
  h.Update(data, len);
  return h.Finalize();
}

}  // namespace nt
