// SHA-256 and SHA-512 (FIPS 180-4), implemented from scratch.
//
// The round constants and initial hash values are *derived* at first use from
// their definition — the fractional parts of the cube/square roots of the
// first primes — using exact multi-word integer arithmetic, rather than being
// transcribed as literal tables. Known-answer tests pin the results to the
// NIST vectors.
#ifndef SRC_CRYPTO_HASH_H_
#define SRC_CRYPTO_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace nt {

// A 32-byte content digest (SHA-256 output). Used as the identifier of
// batches, headers, and certificates throughout the protocol stack.
using Digest = std::array<uint8_t, 32>;

std::string DigestHex(const Digest& d);
// First 8 hex chars — for logs.
std::string DigestShort(const Digest& d);

// Streaming SHA-256.
class Sha256 {
 public:
  Sha256();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) { Update(reinterpret_cast<const uint8_t*>(s.data()), s.size()); }
  Digest Finalize();

  static Digest Hash(const uint8_t* data, size_t len);
  static Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }
  static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t total_len_ = 0;
  size_t buffer_len_ = 0;
};

// Streaming SHA-512.
class Sha512 {
 public:
  using Output = std::array<uint8_t, 64>;

  Sha512();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) { Update(reinterpret_cast<const uint8_t*>(s.data()), s.size()); }
  Output Finalize();

  static Output Hash(const uint8_t* data, size_t len);
  static Output Hash(const Bytes& data) { return Hash(data.data(), data.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint64_t, 8> state_;
  std::array<uint8_t, 128> buffer_;
  // 128-bit message length; low word is enough for any input we hash.
  uint64_t total_len_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace nt

#endif  // SRC_CRYPTO_HASH_H_
