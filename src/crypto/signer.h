// Signature scheme abstraction used by the protocol stack.
//
// Two implementations:
//  - Ed25519Signer: real RFC 8032 signatures (what the paper's artifact uses
//    via ed25519-dalek). Used by crypto tests and --real-crypto runs.
//  - FastSigner: a keyed-hash authenticator (sig = SHA-256(sk || msg) padded
//    to 64 bytes). Verification resolves the signer's secret through a
//    process-local registry — sound in a single-process simulation, where it
//    models authenticated channels. Default for protocol benchmarks so that
//    signature CPU cost on a laptop does not mask the network behaviour the
//    paper measures (its testbed had 16 physical cores per validator).
//
// Wire sizes match Ed25519 (32-byte keys, 64-byte signatures) in both modes
// so bandwidth accounting is identical.
#ifndef SRC_CRYPTO_SIGNER_H_
#define SRC_CRYPTO_SIGNER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/bytes.h"
#include "src/crypto/hash.h"

namespace nt {

using PublicKey = std::array<uint8_t, 32>;
using Signature = std::array<uint8_t, 64>;

// One queued (public key, message, signature) triple awaiting batch
// verification. Owns its message bytes so callers need not keep buffers
// alive until the flush.
struct BatchItem {
  PublicKey pk{};
  Bytes msg;
  Signature sig{};
};

// A private signing key bound to one identity.
class Signer {
 public:
  virtual ~Signer() = default;

  virtual const PublicKey& public_key() const = 0;
  virtual Signature Sign(const uint8_t* msg, size_t len) const = 0;
  Signature Sign(const Bytes& msg) const { return Sign(msg.data(), msg.size()); }
  Signature Sign(const Digest& d) const { return Sign(d.data(), d.size()); }

  // Verifies under an arbitrary public key of the same scheme.
  virtual bool Verify(const PublicKey& pk, const uint8_t* msg, size_t len,
                      const Signature& sig) const = 0;
  bool Verify(const PublicKey& pk, const Bytes& msg, const Signature& sig) const {
    return Verify(pk, msg.data(), msg.size(), sig);
  }
  bool Verify(const PublicKey& pk, const Digest& d, const Signature& sig) const {
    return Verify(pk, d.data(), d.size(), sig);
  }

  // Verifies a batch of signatures, one verdict per item. The default
  // implementation loops over Verify (what FastSigner wants: its keyed-hash
  // MACs have no batchable structure); Ed25519Signer overrides it with true
  // multi-scalar batch verification. Must agree with per-item Verify in both
  // schemes so protocol code can stay scheme-agnostic — Ed25519 guarantees
  // this by checking the *cofactored* equation on both paths (small-order
  // adversarial components clear identically), leaving only the 2^-128
  // Fiat-Shamir collision as a theoretical divergence.
  virtual std::vector<bool> VerifyBatch(const std::vector<BatchItem>& items) const;
};

// Accumulates signatures and verifies them in one flush through the signer's
// batch kernel — the API the certificate paths use:
//
//   BatchVerifier batch(*signer);
//   for (vote : cert.votes) batch.Queue(key_of(vote), preimage, vote.sig);
//   std::vector<bool> ok = batch.Flush();
class BatchVerifier {
 public:
  explicit BatchVerifier(const Signer& signer) : signer_(&signer) {}

  void Queue(const PublicKey& pk, const uint8_t* msg, size_t len, const Signature& sig) {
    BatchItem item;
    item.pk = pk;
    item.msg.assign(msg, msg + len);
    item.sig = sig;
    items_.push_back(std::move(item));
  }
  void Queue(const PublicKey& pk, const Bytes& msg, const Signature& sig) {
    Queue(pk, msg.data(), msg.size(), sig);
  }
  void Queue(const PublicKey& pk, const Digest& d, const Signature& sig) {
    Queue(pk, d.data(), d.size(), sig);
  }

  size_t pending() const { return items_.size(); }

  // Verifies everything queued since the last flush and clears the queue.
  // Result i corresponds to the i-th Queue call.
  std::vector<bool> Flush() {
    std::vector<bool> out = signer_->VerifyBatch(items_);
    items_.clear();
    return out;
  }

  // Convenience: flush and require every queued signature to be valid.
  bool FlushAllValid() {
    std::vector<bool> out = Flush();
    for (bool ok : out) {
      if (!ok) {
        return false;
      }
    }
    return true;
  }

 private:
  const Signer* signer_;
  std::vector<BatchItem> items_;
};

enum class SignerKind { kEd25519, kFast };

// Creates a signer deterministically from a 32-byte seed.
std::unique_ptr<Signer> MakeSigner(SignerKind kind, const std::array<uint8_t, 32>& seed);

// Convenience: derives the seed for validator `index` from a root seed.
std::array<uint8_t, 32> DeriveSeed(uint64_t root_seed, uint64_t index);

}  // namespace nt

#endif  // SRC_CRYPTO_SIGNER_H_
