#include "src/crypto/signer.h"

#include <cstring>
#include <map>
#include <mutex>

#include "src/common/codec.h"
#include "src/crypto/ed25519.h"

namespace nt {

std::vector<bool> Signer::VerifyBatch(const std::vector<BatchItem>& items) const {
  std::vector<bool> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = Verify(items[i].pk, items[i].msg.data(), items[i].msg.size(), items[i].sig);
  }
  return out;
}

namespace {

class Ed25519Signer : public Signer {
 public:
  explicit Ed25519Signer(const std::array<uint8_t, 32>& seed)
      : seed_(seed), pk_(Ed25519Public(seed)) {}

  const PublicKey& public_key() const override { return pk_; }

  Signature Sign(const uint8_t* msg, size_t len) const override {
    return Ed25519Sign(seed_, msg, len);
  }

  bool Verify(const PublicKey& pk, const uint8_t* msg, size_t len,
              const Signature& sig) const override {
    return Ed25519Verify(pk, msg, len, sig);
  }

  std::vector<bool> VerifyBatch(const std::vector<BatchItem>& items) const override {
    std::vector<Ed25519BatchItem> batch(items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      batch[i].pk = items[i].pk;
      batch[i].msg = items[i].msg.data();
      batch[i].len = items[i].msg.size();
      batch[i].sig = items[i].sig;
    }
    return Ed25519BatchVerify(batch.data(), batch.size());
  }

 private:
  Ed25519Seed seed_;
  PublicKey pk_;
};

// Registry mapping FastSigner public keys to their secrets, so any FastSigner
// can verify any other's signatures within the process (authenticated-channel
// model; see header).
class FastKeyRegistry {
 public:
  static FastKeyRegistry& Instance() {
    static FastKeyRegistry registry;
    return registry;
  }

  void Register(const PublicKey& pk, const std::array<uint8_t, 32>& secret) {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[pk] = secret;
  }

  bool Lookup(const PublicKey& pk, std::array<uint8_t, 32>* secret) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = keys_.find(pk);
    if (it == keys_.end()) {
      return false;
    }
    *secret = it->second;
    return true;
  }

 private:
  // ntlint:allow(nondet): guards a write-once key registry; lookups are pure reads of deterministic content
  mutable std::mutex mu_;
  std::map<PublicKey, std::array<uint8_t, 32>> keys_;
};

Signature FastMac(const std::array<uint8_t, 32>& secret, const uint8_t* msg, size_t len) {
  Sha256 h;
  h.Update(secret.data(), secret.size());
  h.Update(msg, len);
  Digest mac = h.Finalize();
  // Second half binds the first (cheap domain separation); total 64 bytes to
  // match Ed25519's wire size.
  Sha256 h2;
  h2.Update(mac.data(), mac.size());
  Digest mac2 = h2.Finalize();
  Signature sig;
  std::memcpy(sig.data(), mac.data(), 32);
  std::memcpy(sig.data() + 32, mac2.data(), 32);
  return sig;
}

class FastSigner : public Signer {
 public:
  explicit FastSigner(const std::array<uint8_t, 32>& seed) : secret_(seed) {
    // Public key = H("fast-pk" || seed): unlinkable to the secret without the
    // registry, distinct per seed.
    Sha256 h;
    h.Update("fast-pk");
    h.Update(seed.data(), seed.size());
    pk_ = h.Finalize();
    FastKeyRegistry::Instance().Register(pk_, secret_);
  }

  const PublicKey& public_key() const override { return pk_; }

  Signature Sign(const uint8_t* msg, size_t len) const override {
    return FastMac(secret_, msg, len);
  }

  bool Verify(const PublicKey& pk, const uint8_t* msg, size_t len,
              const Signature& sig) const override {
    std::array<uint8_t, 32> secret;
    if (!FastKeyRegistry::Instance().Lookup(pk, &secret)) {
      return false;
    }
    Signature expected = FastMac(secret, msg, len);
    return ConstantTimeEqual(expected.data(), sig.data(), expected.size());
  }

 private:
  std::array<uint8_t, 32> secret_;
  PublicKey pk_;
};

}  // namespace

std::unique_ptr<Signer> MakeSigner(SignerKind kind, const std::array<uint8_t, 32>& seed) {
  switch (kind) {
    case SignerKind::kEd25519:
      return std::make_unique<Ed25519Signer>(seed);
    case SignerKind::kFast:
      return std::make_unique<FastSigner>(seed);
  }
  return nullptr;
}

std::array<uint8_t, 32> DeriveSeed(uint64_t root_seed, uint64_t index) {
  Writer w;
  w.PutString("validator-seed");
  w.PutU64(root_seed);
  w.PutU64(index);
  return Sha256::Hash(w.bytes());
}

}  // namespace nt
