// Ed25519 signatures (RFC 8032), implemented from scratch:
//  - field arithmetic over GF(2^255 - 19) with 5x51-bit limbs,
//  - twisted-Edwards group operations in extended coordinates: the complete
//    unified addition law plus dedicated doubling (4S+4M) and cached-operand
//    addition/subtraction formulas for table-driven scalar multiplication,
//  - scalar arithmetic modulo the group order L (word-folding reduction via
//    2^252 == -delta mod L),
//  - key generation, signing, and strict *cofactored* verification: rejects
//    S >= L and checks [8]([S]B - R - [k]A) == identity (the RFC 8032
//    "[8][S]B == [8]R + [8][k]A" variant),
//  - a precomputed radix-16 window table for the base point (fixed-base
//    scalar multiplication in ~64 additions, no doublings),
//  - batch verification of the cofactored RFC 8032 batch equation
//        [8]([sum z_i s_i] B - sum [z_i k_i] A_i - sum [z_i] R_i) == identity
//    with 128-bit random coefficients z_i, evaluated by an interleaved
//    Straus multi-scalar multiplication that shares one doubling chain
//    across every point in the batch; failures bisect to identify culprits.
//
// Both verification paths are cofactored so they accept exactly the same
// signature sets: multiplying the residual by 8 clears small-order (torsion)
// components on both sides, which is what prevents an adversarial torsion
// offset (e.g. R' = R + T for an order-8 T) from making batch and single
// verdicts diverge with the flush composition.
//
// Curve constants (d = -121665/121666, sqrt(-1), the base point from
// y = 4/5) are derived at startup with field operations instead of being
// transcribed, and pinned by known-answer tests.
#ifndef SRC_CRYPTO_ED25519_H_
#define SRC_CRYPTO_ED25519_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"

namespace nt {

using Ed25519Seed = std::array<uint8_t, 32>;
using Ed25519PublicKey = std::array<uint8_t, 32>;
using Ed25519Signature = std::array<uint8_t, 64>;

// Derives the public key for a 32-byte seed (the RFC 8032 private key).
Ed25519PublicKey Ed25519Public(const Ed25519Seed& seed);

// Signs `msg` with the expanded key of `seed`. Deterministic (RFC 8032).
Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const uint8_t* msg, size_t len);
inline Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const Bytes& msg) {
  return Ed25519Sign(seed, msg.data(), msg.size());
}

// Verifies a signature. Strict about encodings — rejects non-canonical S
// (S >= L) and non-decodable points — and cofactored about the group
// equation, so the verdict matches Ed25519BatchVerify for every input,
// including signatures with small-order components.
bool Ed25519Verify(const Ed25519PublicKey& pk, const uint8_t* msg, size_t len,
                   const Ed25519Signature& sig);
inline bool Ed25519Verify(const Ed25519PublicKey& pk, const Bytes& msg,
                          const Ed25519Signature& sig) {
  return Ed25519Verify(pk, msg.data(), msg.size(), sig);
}

// --- Batch verification ----------------------------------------------------

// One signature to check in a batch. `msg` is borrowed: it must stay alive
// until the Ed25519BatchVerify call returns.
struct Ed25519BatchItem {
  Ed25519PublicKey pk{};
  const uint8_t* msg = nullptr;
  size_t len = 0;
  Ed25519Signature sig{};
};

// Verifies `n` signatures together and returns one validity bit per item
// (empty input -> empty output). Verdicts match Ed25519Verify: S >= L and
// non-decodable A/R are rejected per item before the batch equation runs,
// and both paths check the cofactored group equation, so no input — honest
// or adversarial — verifies differently here than it does one at a time
// (a 2^-128 Fiat-Shamir z-collision could make a failing subset pass, but
// torsion components cannot, and bisection leaves fall back to the single
// equation). A batch whose combined equation fails is bisected, so the
// result identifies precisely which items are bad while still paying the
// batched cost for the valid majority.
std::vector<bool> Ed25519BatchVerify(const Ed25519BatchItem* items, size_t n);
inline std::vector<bool> Ed25519BatchVerify(const std::vector<Ed25519BatchItem>& items) {
  return Ed25519BatchVerify(items.data(), items.size());
}

// --- Introspection hooks used by tests -------------------------------------

// Multiplies the base point by a little-endian 256-bit scalar and returns the
// compressed encoding. Exposed so tests can check [L]B == identity and the
// distributive law of scalar multiplication.
Ed25519PublicKey Ed25519ScalarMultBase(const std::array<uint8_t, 32>& scalar);

// Returns true iff `encoded` decodes to a point on the curve.
bool Ed25519PointOnCurve(const std::array<uint8_t, 32>& encoded);

// The group order L as 32 little-endian bytes.
std::array<uint8_t, 32> Ed25519GroupOrder();

}  // namespace nt

#endif  // SRC_CRYPTO_ED25519_H_
