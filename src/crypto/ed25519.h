// Ed25519 signatures (RFC 8032), implemented from scratch:
//  - field arithmetic over GF(2^255 - 19) with 5x51-bit limbs,
//  - twisted-Edwards group operations in extended coordinates: the complete
//    unified addition law plus dedicated doubling (4S+4M) and cached-operand
//    addition/subtraction formulas for table-driven scalar multiplication,
//  - scalar arithmetic modulo the group order L (word-folding reduction via
//    2^252 == -delta mod L),
//  - key generation, signing, and strict verification (rejects S >= L),
//  - a precomputed radix-16 window table for the base point (fixed-base
//    scalar multiplication in ~64 additions, no doublings),
//  - batch verification of the RFC 8032 batch equation
//        [sum z_i s_i] B - sum [z_i k_i] A_i - sum [z_i] R_i == identity
//    with 128-bit random coefficients z_i, evaluated by an interleaved
//    Straus multi-scalar multiplication that shares one doubling chain
//    across every point in the batch; failures bisect to identify culprits.
//
// Curve constants (d = -121665/121666, sqrt(-1), the base point from
// y = 4/5) are derived at startup with field operations instead of being
// transcribed, and pinned by known-answer tests.
#ifndef SRC_CRYPTO_ED25519_H_
#define SRC_CRYPTO_ED25519_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/bytes.h"

namespace nt {

using Ed25519Seed = std::array<uint8_t, 32>;
using Ed25519PublicKey = std::array<uint8_t, 32>;
using Ed25519Signature = std::array<uint8_t, 64>;

// Derives the public key for a 32-byte seed (the RFC 8032 private key).
Ed25519PublicKey Ed25519Public(const Ed25519Seed& seed);

// Signs `msg` with the expanded key of `seed`. Deterministic (RFC 8032).
Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const uint8_t* msg, size_t len);
inline Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const Bytes& msg) {
  return Ed25519Sign(seed, msg.data(), msg.size());
}

// Verifies a signature. Strict: rejects non-canonical S (S >= L) and
// non-decodable points.
bool Ed25519Verify(const Ed25519PublicKey& pk, const uint8_t* msg, size_t len,
                   const Ed25519Signature& sig);
inline bool Ed25519Verify(const Ed25519PublicKey& pk, const Bytes& msg,
                          const Ed25519Signature& sig) {
  return Ed25519Verify(pk, msg.data(), msg.size(), sig);
}

// --- Batch verification ----------------------------------------------------

// One signature to check in a batch. `msg` is borrowed: it must stay alive
// until the Ed25519BatchVerify call returns.
struct Ed25519BatchItem {
  Ed25519PublicKey pk{};
  const uint8_t* msg = nullptr;
  size_t len = 0;
  Ed25519Signature sig{};
};

// Verifies `n` signatures together and returns one validity bit per item
// (empty input -> empty output). Strictness matches Ed25519Verify exactly:
// S >= L and non-decodable A/R are rejected per item before the batch
// equation runs. A batch whose combined equation fails is bisected, so the
// result identifies precisely which items are bad while still paying the
// batched cost for the valid majority.
std::vector<bool> Ed25519BatchVerify(const Ed25519BatchItem* items, size_t n);
inline std::vector<bool> Ed25519BatchVerify(const std::vector<Ed25519BatchItem>& items) {
  return Ed25519BatchVerify(items.data(), items.size());
}

// --- Introspection hooks used by tests -------------------------------------

// Multiplies the base point by a little-endian 256-bit scalar and returns the
// compressed encoding. Exposed so tests can check [L]B == identity and the
// distributive law of scalar multiplication.
Ed25519PublicKey Ed25519ScalarMultBase(const std::array<uint8_t, 32>& scalar);

// Returns true iff `encoded` decodes to a point on the curve.
bool Ed25519PointOnCurve(const std::array<uint8_t, 32>& encoded);

// The group order L as 32 little-endian bytes.
std::array<uint8_t, 32> Ed25519GroupOrder();

}  // namespace nt

#endif  // SRC_CRYPTO_ED25519_H_
