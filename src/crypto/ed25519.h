// Ed25519 signatures (RFC 8032), implemented from scratch:
//  - field arithmetic over GF(2^255 - 19) with 5x51-bit limbs,
//  - twisted-Edwards group operations in extended coordinates using the
//    complete unified addition law (valid for doubling too),
//  - scalar arithmetic modulo the group order L via exact binary reduction,
//  - key generation, signing, and strict verification (rejects S >= L).
//
// Curve constants (d = -121665/121666, sqrt(-1), the base point from
// y = 4/5) are derived at startup with field operations instead of being
// transcribed, and pinned by known-answer tests.
#ifndef SRC_CRYPTO_ED25519_H_
#define SRC_CRYPTO_ED25519_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/bytes.h"

namespace nt {

using Ed25519Seed = std::array<uint8_t, 32>;
using Ed25519PublicKey = std::array<uint8_t, 32>;
using Ed25519Signature = std::array<uint8_t, 64>;

// Derives the public key for a 32-byte seed (the RFC 8032 private key).
Ed25519PublicKey Ed25519Public(const Ed25519Seed& seed);

// Signs `msg` with the expanded key of `seed`. Deterministic (RFC 8032).
Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const uint8_t* msg, size_t len);
inline Ed25519Signature Ed25519Sign(const Ed25519Seed& seed, const Bytes& msg) {
  return Ed25519Sign(seed, msg.data(), msg.size());
}

// Verifies a signature. Strict: rejects non-canonical S (S >= L) and
// non-decodable points.
bool Ed25519Verify(const Ed25519PublicKey& pk, const uint8_t* msg, size_t len,
                   const Ed25519Signature& sig);
inline bool Ed25519Verify(const Ed25519PublicKey& pk, const Bytes& msg,
                          const Ed25519Signature& sig) {
  return Ed25519Verify(pk, msg.data(), msg.size(), sig);
}

// --- Introspection hooks used by tests -------------------------------------

// Multiplies the base point by a little-endian 256-bit scalar and returns the
// compressed encoding. Exposed so tests can check [L]B == identity and the
// distributive law of scalar multiplication.
Ed25519PublicKey Ed25519ScalarMultBase(const std::array<uint8_t, 32>& scalar);

// Returns true iff `encoded` decodes to a point on the curve.
bool Ed25519PointOnCurve(const std::array<uint8_t, 32>& encoded);

// The group order L as 32 little-endian bytes.
std::array<uint8_t, 32> Ed25519GroupOrder();

}  // namespace nt

#endif  // SRC_CRYPTO_ED25519_H_
