// Merkle tree accumulator over batch digests — the paper's §4.2 "Future
// Bottlenecks" remedy: when a primary block would otherwise carry thousands
// of 40-byte batch references, a single 32-byte root (plus on-demand
// membership proofs) removes the primary's last scaling limit.
//
// Construction: domain-separated SHA-256 (leaf = H(0x00 || digest),
// node = H(0x01 || left || right)); an unpaired node is promoted unchanged,
// so no leaf is ever implicitly duplicated.
#ifndef SRC_CRYPTO_MERKLE_H_
#define SRC_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/hash.h"

namespace nt {

class MerkleTree {
 public:
  struct ProofStep {
    Digest sibling{};
    bool sibling_on_left = false;
  };
  using Proof = std::vector<ProofStep>;

  // Builds the tree over `leaves` (batch digests). An empty tree has the
  // all-zero root.
  explicit MerkleTree(std::vector<Digest> leaves);

  const Digest& root() const { return root_; }
  size_t leaf_count() const { return leaf_count_; }

  // Membership proof for the leaf at `index` (must be < leaf_count()).
  Proof Prove(size_t index) const;

  // Verifies that `leaf` is a member under `root` with the given proof.
  static bool Verify(const Digest& root, const Digest& leaf, const Proof& proof);

  static Digest HashLeaf(const Digest& leaf);
  static Digest HashNode(const Digest& left, const Digest& right);

 private:
  size_t leaf_count_ = 0;
  // levels_[0] = hashed leaves; levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
  Digest root_{};
};

}  // namespace nt

#endif  // SRC_CRYPTO_MERKLE_H_
