#include "src/crypto/merkle.h"

namespace nt {

Digest MerkleTree::HashLeaf(const Digest& leaf) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(leaf.data(), leaf.size());
  return h.Finalize();
}

Digest MerkleTree::HashNode(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finalize();
}

MerkleTree::MerkleTree(std::vector<Digest> leaves) : leaf_count_(leaves.size()) {
  if (leaves.empty()) {
    return;  // Zero root.
  }
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Digest& leaf : leaves) {
    level.push_back(HashLeaf(leaf));
  }
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& below = levels_.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i + 1 < below.size(); i += 2) {
      above.push_back(HashNode(below[i], below[i + 1]));
    }
    if (below.size() % 2 != 0) {
      above.push_back(below.back());  // Promote the unpaired node unchanged.
    }
    levels_.push_back(std::move(above));
  }
  root_ = levels_.back().front();
}

MerkleTree::Proof MerkleTree::Prove(size_t index) const {
  Proof proof;
  size_t position = index;
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const std::vector<Digest>& level = levels_[depth];
    size_t sibling = position ^ 1;
    if (sibling < level.size()) {
      proof.push_back(ProofStep{level[sibling], /*sibling_on_left=*/(position % 2) == 1});
    }
    // With promotion, an unpaired node keeps its value and just moves up.
    position /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Digest& root, const Digest& leaf, const Proof& proof) {
  Digest current = HashLeaf(leaf);
  for (const ProofStep& step : proof) {
    current = step.sibling_on_left ? HashNode(step.sibling, current)
                                   : HashNode(current, step.sibling);
  }
  return current == root;
}

}  // namespace nt
