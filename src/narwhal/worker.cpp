#include "src/narwhal/worker.h"

#include <algorithm>

#include "src/common/logging.h"

namespace nt {

Worker::Worker(ValidatorId validator, WorkerId worker_id, const Committee& committee,
               const NarwhalConfig& config, Network* network, const Topology* topology,
               Store* store, BatchDirectory* directory)
    : validator_(validator),
      worker_id_(worker_id),
      committee_(committee),
      config_(config),
      network_(network),
      topology_(topology),
      store_(store),
      directory_(directory) {
  pending_.author = validator_;
  pending_.worker = worker_id_;
}

Worker::~Worker() { *alive_ = false; }

void Worker::OnStart() {}

void Worker::Recover() {
  store_->ForEach([this](const Digest& digest, const Bytes& value) {
    Reader r(value);
    std::optional<Batch> batch = Batch::Decode(r);
    if (!batch.has_value()) {
      return;
    }
    if (batch->author == validator_ && batch->worker == worker_id_) {
      // Never reuse a pre-crash sequence number: a fresh batch with a
      // recycled seq could collide digests with a batch peers already hold.
      next_seq_ = std::max(next_seq_, batch->seq + 1);
    }
    batches_[digest] = std::make_shared<const Batch>(std::move(*batch));
  });
}

void Worker::SubmitTransaction(uint64_t size_bytes, std::optional<TxSample> sample) {
  pending_.num_txs += 1;
  pending_.payload_bytes += size_bytes;
  if (sample.has_value()) {
    pending_.samples.push_back(*sample);
  }
  if (batch_timer_ == Scheduler::kInvalidTimer) {
    batch_timer_ = network_->scheduler()->ScheduleAfter(
        config_.max_batch_delay, [this, alive = alive_] {
          if (*alive) {
            MaybeSealBatch(true);
          }
        });
  }
  MaybeSealBatch(false);
}

void Worker::SubmitTransaction(Bytes payload, std::optional<TxSample> sample) {
  if (config_.dedup_window > 0) {
    // Mir-BFT-style hash de-duplication (paper §8.4): resubmitted payloads
    // within the window are dropped before they cost any bandwidth.
    Digest tx_digest = Sha256::Hash(payload);
    if (!seen_txs_.insert(tx_digest).second) {
      ++duplicate_txs_dropped_;
      return;
    }
    seen_order_.push_back(tx_digest);
    if (seen_order_.size() > config_.dedup_window) {
      seen_txs_.erase(seen_order_.front());
      seen_order_.pop_front();
    }
  }
  uint64_t size = payload.size();
  pending_.txs.push_back(std::move(payload));
  SubmitTransaction(size, sample);
}

Digest Worker::SubmitBlock(std::vector<Bytes> txs) {
  // Flush any unrelated pending payload first so the returned digest covers
  // exactly this block.
  MaybeSealBatch(/*force=*/true);
  for (Bytes& tx : txs) {
    uint64_t size = tx.size();
    pending_.txs.push_back(std::move(tx));
    pending_.num_txs += 1;
    pending_.payload_bytes += size;
  }
  Batch preview = pending_;
  preview.seq = next_seq_;
  Digest digest = preview.ComputeDigest();
  SealBatch();
  return digest;
}

void Worker::MaybeSealBatch(bool force) {
  if (force) {
    batch_timer_ = Scheduler::kInvalidTimer;
  }
  if (pending_.num_txs == 0) {
    return;
  }
  if (!force && pending_.payload_bytes < config_.batch_size_bytes) {
    return;
  }
  SealBatch();
}

void Worker::SealBatch() {
  if (batch_timer_ != Scheduler::kInvalidTimer) {
    network_->scheduler()->Cancel(batch_timer_);
    batch_timer_ = Scheduler::kInvalidTimer;
  }
  pending_.seq = next_seq_++;
  auto batch = std::make_shared<const Batch>(std::move(pending_));
  pending_ = Batch{};
  pending_.author = validator_;
  pending_.worker = worker_id_;

  Digest digest = batch->ComputeDigest();
  ++batches_sealed_;

  BatchDirectory::Info info;
  info.author = validator_;
  info.worker = worker_id_;
  info.num_txs = batch->num_txs;
  info.payload_bytes = batch->payload_bytes;
  info.sealed_at = network_->scheduler()->now();
  info.samples = batch->samples;
  directory_->Register(digest, std::move(info));

  NT_TRACE(tracer_, OnBatchSealed(validator_, worker_id_, digest, batch->samples,
                                  network_->scheduler()->now()));

  StoreBatch(batch, digest);
  DisseminateBatch(batch, digest);
}

void Worker::StoreBatch(const std::shared_ptr<const Batch>& batch, const Digest& digest) {
  if (store_->Contains(digest)) {
    return;
  }
  Writer w;
  batch->Encode(w);
  store_->Put(digest, w.Take());
  if (config_.sync_on_batch_store) {
    // Sync-on-seal: every storage ack derived from this batch (and the
    // availability certificate built from 2f+1 such acks) must mean "on
    // disk", or a crash-recovery could lose a batch the DAG references.
    store_->Sync();
  }
  batches_[digest] = batch;
}

std::shared_ptr<const Batch> Worker::GetBatch(const Digest& digest) const {
  auto it = batches_.find(digest);
  return it == batches_.end() ? nullptr : it->second;
}

void Worker::DisseminateBatch(const std::shared_ptr<const Batch>& batch, const Digest& digest) {
  InFlight& flight = in_flight_[digest];
  flight.batch = batch;
  flight.ackers.insert(validator_);  // Self-storage counts.

  auto msg = std::make_shared<MsgBatch>(batch, digest);
  for (ValidatorId v = 0; v < committee_.size(); ++v) {
    if (v == validator_) {
      continue;
    }
    network_->Send(net_id_, topology_->worker_of[v][worker_id_], msg);
  }
  flight.retry_timer = network_->scheduler()->ScheduleAfter(
      config_.batch_retry_delay, [this, alive = alive_, digest] {
        if (*alive) {
          RetryBatch(digest);
        }
      });
}

void Worker::RetryBatch(const Digest& digest) {
  auto it = in_flight_.find(digest);
  if (it == in_flight_.end()) {
    return;
  }
  InFlight& flight = it->second;
  auto msg = std::make_shared<MsgBatch>(flight.batch, digest);
  uint64_t resent = 0;
  for (ValidatorId v = 0; v < committee_.size(); ++v) {
    if (flight.ackers.count(v) != 0) {
      continue;
    }
    network_->Send(net_id_, topology_->worker_of[v][worker_id_], msg);
    ++resent;
  }
  NT_TRACE(tracer_, IncrRetryRound("batch_retry", digest, resent));
  // Exponential backoff: under asynchrony or crashes, re-transmission adapts
  // instead of flooding (TCP-like behaviour, paper §4.1).
  flight.attempts = std::min(flight.attempts + 1, 6u);
  TimeDelta delay = config_.batch_retry_delay << flight.attempts;
  flight.retry_timer =
      network_->scheduler()->ScheduleAfter(delay, [this, alive = alive_, digest] {
        if (*alive) {
          RetryBatch(digest);
        }
      });
}

bool Worker::IsOwnPrimary(uint32_t from) const {
  return from == topology_->primary_of[validator_];
}

void Worker::OnMessage(uint32_t from, const MessagePtr& msg) {
  if (auto batch_msg = std::dynamic_pointer_cast<const MsgBatch>(msg)) {
    // A peer worker streams a batch: store it, acknowledge, report to our
    // primary so it can validate headers referencing it.
    bool known = store_->Contains(batch_msg->digest);
    if (!known) {
      StoreBatch(batch_msg->batch, batch_msg->digest);
      fetching_.erase(batch_msg->digest);
      network_->Send(net_id_, topology_->primary_of[validator_],
                     std::make_shared<MsgBatchStored>(batch_msg->digest));
    }
    network_->Send(net_id_, from, std::make_shared<MsgBatchAck>(batch_msg->digest, worker_id_));
    return;
  }

  if (auto ack = std::dynamic_pointer_cast<const MsgBatchAck>(msg)) {
    auto it = in_flight_.find(ack->digest);
    if (it == in_flight_.end()) {
      return;  // Already reached quorum (late ack).
    }
    auto role = topology_->role_of.find(from);
    if (role == topology_->role_of.end()) {
      return;
    }
    InFlight& flight = it->second;
    flight.ackers.insert(role->second.validator);
    if (flight.ackers.size() >= committee_.quorum_threshold()) {
      network_->scheduler()->Cancel(flight.retry_timer);
      BatchRef ref;
      ref.digest = ack->digest;
      ref.worker = worker_id_;
      ref.num_txs = flight.batch->num_txs;
      ref.payload_bytes = flight.batch->payload_bytes;
      in_flight_.erase(it);
      ++batches_acked_;
      NT_TRACE(tracer_, OnBatchQuorum(validator_, ack->digest, network_->scheduler()->now()));
      network_->Send(net_id_, topology_->primary_of[validator_],
                     std::make_shared<MsgBatchReady>(ref));
    }
    return;
  }

  if (auto fetch = std::dynamic_pointer_cast<const MsgFetchBatch>(msg)) {
    if (IsOwnPrimary(from)) {
      HandleFetch(*fetch);
    }
    return;
  }

  if (auto request = std::dynamic_pointer_cast<const MsgBatchRequest>(msg)) {
    auto it = batches_.find(request->digest);
    if (it != batches_.end()) {
      network_->Send(net_id_, from,
                     std::make_shared<MsgBatchResponse>(it->second, request->digest));
    }
    return;
  }

  if (auto response = std::dynamic_pointer_cast<const MsgBatchResponse>(msg)) {
    if (fetching_.count(response->digest) == 0) {
      return;  // Unsolicited or duplicate response.
    }
    if (response->batch->ComputeDigest() != response->digest) {
      LOG_WARN() << "batch response digest mismatch";
      return;
    }
    fetching_.erase(response->digest);
    StoreBatch(response->batch, response->digest);
    network_->Send(net_id_, topology_->primary_of[validator_],
                   std::make_shared<MsgBatchStored>(response->digest));
    return;
  }
}

void Worker::HandleFetch(const MsgFetchBatch& fetch) {
  if (store_->Contains(fetch.digest)) {
    network_->Send(net_id_, topology_->primary_of[validator_],
                   std::make_shared<MsgBatchStored>(fetch.digest));
    return;
  }
  if (!fetching_.insert(fetch.digest).second) {
    return;  // Already being fetched.
  }
  // Pull from the batch author's matching worker first (paper §4.2); rotate
  // through other validators on timeout.
  network_->Send(net_id_, topology_->worker_of[fetch.batch_author][worker_id_],
                 std::make_shared<MsgBatchRequest>(fetch.digest));
  network_->scheduler()->ScheduleAfter(config_.sync_retry_delay,
                                       [this, alive = alive_, d = fetch.digest,
                                        a = fetch.batch_author] {
                                         if (*alive) {
                                           RetryFetch(d, a, 1);
                                         }
                                       });
}

void Worker::RetryFetch(const Digest& digest, ValidatorId author, uint32_t attempt) {
  if (fetching_.count(digest) == 0) {
    return;  // Arrived meanwhile.
  }
  // At least f+1 honest workers store a quorum-acked batch; the expected
  // number of probes to hit one is O(1) (paper §4.1).
  ValidatorId target = (author + attempt) % committee_.size();
  if (target == validator_) {
    target = (target + 1) % committee_.size();
  }
  network_->Send(net_id_, topology_->worker_of[target][worker_id_],
                 std::make_shared<MsgBatchRequest>(digest));
  TimeDelta delay = config_.sync_retry_delay << std::min(attempt, 6u);
  network_->scheduler()->ScheduleAfter(
      delay, [this, alive = alive_, digest, author, attempt] {
        if (*alive) {
          RetryFetch(digest, author, attempt + 1);
        }
      });
}

}  // namespace nt
