// The abstract Mempool interface of paper §2.1, as a facade over one
// validator's primary + worker:
//
//   write(d, b)      -> Mempool::Write       (submit a block of transactions;
//                                             succeeds when a certificate of
//                                             availability covers it)
//   valid(d, c(d))   -> Mempool::Valid       (certificate verification)
//   read(d)          -> Mempool::Read        (block content by digest)
//   read_causal(d)   -> Mempool::ReadCausal  (causal history of a block)
//
// The facade is synchronous over the simulator: callers drive the Scheduler
// between Write and the certificate appearing.
#ifndef SRC_NARWHAL_MEMPOOL_H_
#define SRC_NARWHAL_MEMPOOL_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/narwhal/primary.h"
#include "src/narwhal/worker.h"

namespace nt {

class Mempool {
 public:
  Mempool(Primary* primary, Worker* worker) : primary_(primary), worker_(worker) {}

  // Submits a block of transactions as one batch and returns its digest (the
  // key `d`). The write *succeeds* once IsWriteCertified(d) holds.
  Digest Write(std::vector<Bytes> txs);

  // True once some certified header includes the batch — i.e. a certificate
  // of availability c(d) exists.
  bool IsWriteCertified(const Digest& batch_digest) const;

  // The certificate covering the batch (via the including header), if any.
  std::optional<Certificate> CertificateFor(const Digest& batch_digest) const;

  // valid(d, c(d)): structural and cryptographic certificate check. Runs
  // through the batched verification kernel and the process-wide default
  // verified-certificate cache (VerifiedCertCache::Narwhal() — this facade
  // is a tool-facing API, not a simulated validator), so repeated validity
  // queries for the same certificate cost one cache probe after the first.
  static bool Valid(const Committee& committee, const Signer& verifier, const Certificate& cert) {
    return cert.Verify(committee, verifier);
  }

  // Bulk form: validates many certificates with one batched signature flush
  // (readers syncing a causal history validate whole parent sets at once).
  static bool ValidAll(const Committee& committee, const Signer& verifier,
                       const std::vector<Certificate>& certs) {
    return Certificate::VerifyAll(certs, committee, verifier);
  }

  // read(d): the batch content, if stored locally.
  std::shared_ptr<const Batch> Read(const Digest& batch_digest) const {
    return worker_->GetBatch(batch_digest);
  }

  // read_causal over header digests: every header with a transitive
  // happened-before path to `header_digest` (inclusive), above the GC round.
  // Empty if the header is unknown or its history is incomplete locally.
  std::vector<Digest> ReadCausal(const Digest& header_digest) const;

 private:
  Primary* primary_;
  Worker* worker_;
};

}  // namespace nt

#endif  // SRC_NARWHAL_MEMPOOL_H_
