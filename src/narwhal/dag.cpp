#include "src/narwhal/dag.h"

#include <algorithm>
#include <deque>

#include "src/common/logging.h"

namespace nt {

bool Dag::AddCertificate(const Certificate& cert) {
  if (cert.round < gc_round_) {
    return true;  // Below the GC horizon; ignore silently (paper §3.3).
  }
  auto& round_map = by_round_[cert.round];
  auto it = round_map.find(cert.author);
  if (it != round_map.end()) {
    if (it->second.header_digest != cert.header_digest) {
      // Two certificates for the same (round, author) require honest voters
      // to have double-signed — impossible under f < n/3.
      LOG_ERROR() << "conflicting certificates for round " << cert.round << " author "
                  << cert.author;
      return false;
    }
    return true;  // Duplicate.
  }
  round_map.emplace(cert.author, cert);
  by_digest_[cert.header_digest] = {cert.round, cert.author};
  return true;
}

void Dag::AddHeader(std::shared_ptr<const BlockHeader> header, const Digest& digest) {
  if (header->round < gc_round_) {
    return;
  }
  headers_.emplace(digest, std::move(header));
}

const Certificate* Dag::GetCert(Round round, ValidatorId author) const {
  auto rit = by_round_.find(round);
  if (rit == by_round_.end()) {
    return nullptr;
  }
  auto ait = rit->second.find(author);
  return ait == rit->second.end() ? nullptr : &ait->second;
}

const Certificate* Dag::GetCertByDigest(const Digest& header_digest) const {
  auto it = by_digest_.find(header_digest);
  if (it == by_digest_.end()) {
    return nullptr;
  }
  return GetCert(it->second.first, it->second.second);
}

std::shared_ptr<const BlockHeader> Dag::GetHeader(const Digest& header_digest) const {
  auto it = headers_.find(header_digest);
  return it == headers_.end() ? nullptr : it->second;
}

const std::map<ValidatorId, Certificate>& Dag::CertsAt(Round round) const {
  static const std::map<ValidatorId, Certificate> kEmpty;
  auto it = by_round_.find(round);
  return it == by_round_.end() ? kEmpty : it->second;
}

std::vector<Dag::Collected> Dag::GarbageCollect(Round new_gc_round) {
  std::vector<Collected> collected;
  if (new_gc_round <= gc_round_) {
    return collected;
  }
  gc_round_ = new_gc_round;
  for (auto it = by_round_.begin(); it != by_round_.end() && it->first < gc_round_;) {
    for (const auto& [author, cert] : it->second) {
      Collected record;
      record.digest = cert.header_digest;
      record.cert = cert;
      auto header_it = headers_.find(cert.header_digest);
      if (header_it != headers_.end()) {
        record.header = std::move(header_it->second);
        headers_.erase(header_it);
      }
      by_digest_.erase(cert.header_digest);
      collected.push_back(std::move(record));
    }
    it = by_round_.erase(it);
  }
  return collected;
}

bool Dag::HasPath(const Digest& from, const Digest& to) const {
  if (from == to) {
    return true;
  }
  auto target = by_digest_.find(to);
  if (target == by_digest_.end()) {
    return false;
  }
  const Round target_round = target->second.first;

  std::deque<Digest> frontier{from};
  std::set<Digest> visited{from};
  while (!frontier.empty()) {
    Digest current = frontier.front();
    frontier.pop_front();
    auto header = GetHeader(current);
    if (header == nullptr) {
      continue;  // Edge unknown without the header.
    }
    for (const Certificate& parent : header->parents) {
      if (parent.header_digest == to) {
        return true;
      }
      if (parent.round <= target_round || parent.round < gc_round_) {
        continue;  // Can't reach `to` from at-or-below its round.
      }
      if (visited.insert(parent.header_digest).second) {
        frontier.push_back(parent.header_digest);
      }
    }
  }
  return false;
}

Dag::History Dag::CollectCausalHistory(const Digest& anchor,
                                       const std::set<Digest>& committed) const {
  History result;
  if (committed.count(anchor) != 0) {
    return result;
  }
  // BFS over parent edges; gather every uncommitted vertex above the GC
  // horizon, then sort deterministically.
  struct Entry {
    Round round;
    ValidatorId author;
    Digest digest;
  };
  std::vector<Entry> gathered;
  std::deque<Digest> frontier{anchor};
  std::set<Digest> visited{anchor};
  while (!frontier.empty()) {
    Digest current = frontier.front();
    frontier.pop_front();
    auto meta = by_digest_.find(current);
    if (meta == by_digest_.end()) {
      // Certificate itself unknown (can happen transiently for parents); the
      // header sync will bring it in.
      result.missing.push_back(current);
      continue;
    }
    auto header = GetHeader(current);
    if (header == nullptr) {
      result.missing.push_back(current);
      continue;
    }
    gathered.push_back({meta->second.first, meta->second.second, current});
    for (const Certificate& parent : header->parents) {
      if (parent.round < gc_round_ || committed.count(parent.header_digest) != 0) {
        continue;
      }
      if (visited.insert(parent.header_digest).second) {
        frontier.push_back(parent.header_digest);
      }
    }
  }
  if (!result.missing.empty()) {
    return result;
  }
  // Deterministic order: by (round, author); the anchor has the highest
  // round in its own history, and ties on (round, author) cannot occur for
  // distinct certified blocks.
  std::sort(gathered.begin(), gathered.end(), [](const Entry& a, const Entry& b) {
    if (a.round != b.round) {
      return a.round < b.round;
    }
    return a.author < b.author;
  });
  // Move the anchor to the very end if it shares its round with others.
  result.ordered.reserve(gathered.size());
  for (const Entry& e : gathered) {
    if (e.digest != anchor) {
      result.ordered.push_back(e.digest);
    }
  }
  result.ordered.push_back(anchor);
  return result;
}

}  // namespace nt
