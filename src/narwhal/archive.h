// Passive cold storage for garbage-collected rounds — the paper's §3.3
// offload: "storing and servicing requests for blocks from previous rounds
// can be offloaded to a passive and scalable distributed store or an
// external provider operating a CDN such as Cloudflare or S3", from which
// execution engines and light clients read after sequencing.
//
// The archive is append-only, keyed by header digest, and optionally backed
// by a persistent Store (WAL) so it survives restarts.
#ifndef SRC_NARWHAL_ARCHIVE_H_
#define SRC_NARWHAL_ARCHIVE_H_

#include <map>
#include <memory>

#include "src/narwhal/dag.h"
#include "src/store/store.h"

namespace nt {

class Archive {
 public:
  // In-memory archive; pass a Store for durability.
  explicit Archive(std::unique_ptr<Store> cold_store = nullptr)
      : cold_store_(std::move(cold_store)) {}

  // Ingests a record evicted by DAG garbage collection. Records without a
  // locally-synced header are kept as certificate-only entries.
  void Put(const Dag::Collected& record);

  std::shared_ptr<const BlockHeader> GetHeader(const Digest& digest) const;
  const Certificate* GetCertificate(const Digest& digest) const;
  bool Contains(const Digest& digest) const { return records_.count(digest) != 0; }

  size_t size() const { return records_.size(); }
  size_t headers_archived() const { return headers_archived_; }

  // Recovers the in-memory index from the persistent store (after restart).
  // Returns the number of records loaded. No-op without a backing store.
  size_t LoadFromColdStore();

 private:
  struct Record {
    Certificate cert;
    std::shared_ptr<const BlockHeader> header;
  };

  std::unique_ptr<Store> cold_store_;
  std::map<Digest, Record> records_;
  size_t headers_archived_ = 0;
};

}  // namespace nt

#endif  // SRC_NARWHAL_ARCHIVE_H_
