#include "src/narwhal/mempool.h"

namespace nt {

Digest Mempool::Write(std::vector<Bytes> txs) { return worker_->SubmitBlock(std::move(txs)); }

std::optional<Certificate> Mempool::CertificateFor(const Digest& batch_digest) const {
  const Dag& dag = primary_->dag();
  for (const auto& [header_digest, header] : dag.headers()) {
    for (const BatchRef& ref : header->batches) {
      if (ref.digest == batch_digest) {
        const Certificate* cert = dag.GetCertByDigest(header_digest);
        if (cert != nullptr) {
          return *cert;
        }
      }
    }
  }
  return std::nullopt;
}

bool Mempool::IsWriteCertified(const Digest& batch_digest) const {
  return CertificateFor(batch_digest).has_value();
}

std::vector<Digest> Mempool::ReadCausal(const Digest& header_digest) const {
  Dag::History history = primary_->dag().CollectCausalHistory(header_digest, {});
  if (!history.missing.empty()) {
    return {};
  }
  return history.ordered;
}

}  // namespace nt
