// Tunables for the Narwhal mempool, defaulting to the paper's baseline
// experiment parameters (§7: 500KB batches, 512B transactions).
#ifndef SRC_NARWHAL_CONFIG_H_
#define SRC_NARWHAL_CONFIG_H_

#include <cstdint>

#include "src/common/time.h"
#include "src/types/committee.h"

namespace nt {

struct NarwhalConfig {
  // Seal a worker batch once its payload reaches this size.
  uint64_t batch_size_bytes = 500 * 1000;
  // ...or when the oldest pending transaction has waited this long.
  TimeDelta max_batch_delay = Millis(100);
  // Propose a header without payload if none arrived within this delay of
  // entering a round (keeps the DAG advancing under low load).
  TimeDelta max_header_delay = Millis(100);
  // Resend an unacknowledged batch to laggards after this delay.
  TimeDelta batch_retry_delay = Millis(500);
  // Resend an uncertified header (to validators that have not voted) and the
  // latest certificate while the round has not advanced — the paper's §6
  // "attempt again to send stored messages" until "no more needed to make
  // progress". Exponential backoff on top.
  TimeDelta header_retry_delay = Millis(1000);
  // Retry a pull-synchronizer request against the next candidate after this.
  TimeDelta sync_retry_delay = Millis(300);
  // Rounds of history kept before garbage collection (relative to the last
  // committed leader round).
  Round gc_depth = 50;
  // One of every `tx_sample_rate` transactions carries a latency sample.
  uint64_t tx_sample_rate = 100;
  // Sync-on-seal durability policy: when set, a worker issues a Store::Sync
  // (a real fsync for WalStore) after persisting any batch, so the storage
  // ack it sends — and the quorum formed from such acks — implies the batch
  // is on disk, not just in the page cache. The paper's availability
  // argument (§4.2) needs exactly this: a certificate of availability is
  // only as strong as the weakest acked copy.
  bool sync_on_batch_store = true;
  // Hash-based duplicate suppression for explicit-payload transactions
  // (paper §8.4: "Mir-BFT uses an interesting transaction de-duplication
  // technique based on hashing which we believe is directly applicable to
  // Narwhal"). A worker remembers the digests of the last `dedup_window`
  // transactions and drops resubmissions. 0 disables.
  uint64_t dedup_window = 100000;
};

}  // namespace nt

#endif  // SRC_NARWHAL_CONFIG_H_
