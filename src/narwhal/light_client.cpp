#include "src/narwhal/light_client.h"

namespace nt {

void InclusionProof::Encode(Writer& w) const {
  certificate.Encode(w);
  header->Encode(w);
  batch->Encode(w);
  w.PutU32(tx_index);
}

std::optional<InclusionProof> InclusionProof::Decode(Reader& r) {
  InclusionProof proof;
  auto cert = Certificate::Decode(r);
  if (!cert.has_value()) {
    return std::nullopt;
  }
  proof.certificate = std::move(*cert);
  auto header = BlockHeader::Decode(r);
  if (!header.has_value()) {
    return std::nullopt;
  }
  proof.header = std::make_shared<BlockHeader>(std::move(*header));
  auto batch = Batch::Decode(r);
  if (!batch.has_value()) {
    return std::nullopt;
  }
  proof.batch = std::make_shared<Batch>(std::move(*batch));
  proof.tx_index = r.GetU32();
  if (!r.ok()) {
    return std::nullopt;
  }
  return proof;
}

size_t InclusionProof::WireSize() const {
  // Exact encoded size (Batch::WireSize is a bandwidth-accounting figure
  // that counts represented payload bytes, not the canonical encoding).
  Writer w;
  Encode(w);
  return w.size();
}

std::optional<Bytes> LightClient::VerifyInclusion(const InclusionProof& proof) const {
  auto reject = [this]() -> std::optional<Bytes> {
    ++rejected_;
    return std::nullopt;
  };
  if (proof.header == nullptr || proof.batch == nullptr) {
    return reject();
  }
  // 1+2a. Structural binding of header to certificate (content hash +
  //       consistent round/author metadata) before any signature work.
  Digest header_digest = proof.header->ComputeDigest();
  if (header_digest != proof.certificate.header_digest ||
      proof.header->round != proof.certificate.round ||
      proof.header->author != proof.certificate.author ||
      !committee_.Contains(proof.header->author)) {
    return reject();
  }
  // 2b. Certificate of availability: 2f+1 distinct valid committee votes,
  //     verified as one batch (single multi-scalar multiplication for
  //     Ed25519) and memoized in the verified-certificate cache — then the
  //     header author's signature.
  if (!proof.certificate.Verify(committee_, *verifier_, &cert_cache_) ||
      !verifier_->Verify(committee_.key_of(proof.header->author), header_digest,
                         proof.header->author_sig)) {
    return reject();
  }
  // 3. Batch binds to the header.
  Digest batch_digest = proof.batch->ComputeDigest();
  bool referenced = false;
  for (const BatchRef& ref : proof.header->batches) {
    if (ref.digest == batch_digest) {
      referenced = true;
      break;
    }
  }
  if (!referenced) {
    return reject();
  }
  // 4. The transaction is inside the batch.
  if (proof.tx_index >= proof.batch->txs.size()) {
    return reject();
  }
  ++verified_;
  return proof.batch->txs[proof.tx_index];
}

std::optional<InclusionProof> BuildInclusionProof(const Primary& primary, const Worker& worker,
                                                  const Bytes& tx) {
  const Dag& dag = primary.dag();
  for (const auto& [header_digest, header] : dag.headers()) {
    const Certificate* cert = dag.GetCertByDigest(header_digest);
    if (cert == nullptr) {
      continue;  // Not (yet) certified.
    }
    for (const BatchRef& ref : header->batches) {
      std::shared_ptr<const Batch> batch = worker.GetBatch(ref.digest);
      if (batch == nullptr) {
        continue;  // Data lives on another worker (§8.4).
      }
      for (size_t i = 0; i < batch->txs.size(); ++i) {
        if (batch->txs[i] == tx) {
          InclusionProof proof;
          proof.certificate = *cert;
          proof.header = header;
          proof.batch = batch;
          proof.tx_index = static_cast<uint32_t>(i);
          return proof;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace nt
