// The local certificate DAG (paper Fig. 2): per-round certificates of
// availability plus the headers that carry the causal edges, with round-
// based garbage collection (§3.3) and the deterministic causal-history
// linearization both Tusk and Narwhal-HotStuff use after agreeing on an
// anchor certificate (§3.2, §5).
#ifndef SRC_NARWHAL_DAG_H_
#define SRC_NARWHAL_DAG_H_

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/types/types.h"

namespace nt {

class Dag {
 public:
  // Adds a certificate. Returns false (and keeps the first) if a conflicting
  // certificate for the same (round, author) already exists — impossible
  // with an honest quorum, checked defensively. Idempotent for duplicates.
  bool AddCertificate(const Certificate& cert);

  // Stores the header for a certificate (carries the causal edges and batch
  // references).
  void AddHeader(std::shared_ptr<const BlockHeader> header, const Digest& digest);

  const Certificate* GetCert(Round round, ValidatorId author) const;
  const Certificate* GetCertByDigest(const Digest& header_digest) const;
  std::shared_ptr<const BlockHeader> GetHeader(const Digest& header_digest) const;
  bool HasHeader(const Digest& header_digest) const { return headers_.count(header_digest) != 0; }

  // Certificates stored for a round (empty map if none).
  const std::map<ValidatorId, Certificate>& CertsAt(Round round) const;
  size_t CertCountAt(Round round) const { return CertsAt(round).size(); }

  // Highest round with at least one certificate (0 if empty).
  Round HighestRound() const { return by_round_.empty() ? 0 : by_round_.rbegin()->first; }

  // --- garbage collection ----------------------------------------------------

  Round gc_round() const { return gc_round_; }

  // A record evicted by garbage collection: everything a cold store (the
  // paper's §3.3 CDN offload) needs to keep serving the block.
  struct Collected {
    Digest digest{};
    Certificate cert;
    std::shared_ptr<const BlockHeader> header;  // May be null if never synced.
  };

  // Drops all certificates and headers with round < `new_gc_round`,
  // returning the evicted records (re-injection + archival).
  std::vector<Collected> GarbageCollect(Round new_gc_round);

  // --- traversal ---------------------------------------------------------------

  // True iff a path of parent edges exists from `from` down to `to`
  // (both are header digests; edges require stored headers).
  bool HasPath(const Digest& from, const Digest& to) const;

  struct History {
    // Headers in deterministic commit order: (round asc, author asc);
    // the anchor is always last.
    std::vector<Digest> ordered;
    // Headers referenced by the history but not yet stored locally — the
    // caller must sync them before committing.
    std::vector<Digest> missing;
  };

  // Collects the anchor's causal history down to the GC round, excluding
  // digests in `committed`. If any header on the way is missing, `missing`
  // is non-empty and `ordered` must not be committed yet.
  History CollectCausalHistory(const Digest& anchor, const std::set<Digest>& committed) const;

  size_t TotalCertificates() const { return by_digest_.size(); }
  size_t TotalHeaders() const { return headers_.size(); }

  // Read-only view of all stored headers (mempool facade, metrics).
  const std::map<Digest, std::shared_ptr<const BlockHeader>>& headers() const { return headers_; }

 private:
  Round gc_round_ = 0;
  // round -> author -> certificate.
  std::map<Round, std::map<ValidatorId, Certificate>> by_round_;
  // header digest -> (round, author), for digest lookups.
  std::map<Digest, std::pair<Round, ValidatorId>> by_digest_;
  std::map<Digest, std::shared_ptr<const BlockHeader>> headers_;
};

}  // namespace nt

#endif  // SRC_NARWHAL_DAG_H_
