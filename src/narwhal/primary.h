// The Narwhal primary (paper §3.1, §4): builds the certificate DAG.
//
// Responsibilities:
//  - advance the local round once 2f+1 certificates of the previous round
//    are known (BFT threshold clock);
//  - propose one header per round referencing quorum-acked worker batches
//    and >= 2f+1 parent certificates;
//  - validate and vote on other validators' headers (first-per-author-per-
//    round, valid parents, referenced batches stored by our workers);
//  - assemble 2f+1 votes into certificates of availability and broadcast
//    them;
//  - pull-sync missing headers from certificate signers (§4.1) and missing
//    batches through its workers (§4.2);
//  - garbage-collect rounds below the consensus-agreed horizon and re-inject
//    own batches whose headers were collected uncommitted (§3.3).
//
// The consensus layer (Tusk or HotStuff) observes the DAG through hooks and
// feeds back commit/GC information; the primary never sends consensus
// messages itself.
#ifndef SRC_NARWHAL_PRIMARY_H_
#define SRC_NARWHAL_PRIMARY_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/narwhal/config.h"
#include "src/narwhal/dag.h"
#include "src/narwhal/worker.h"
#include "src/net/network.h"
#include "src/store/store.h"
#include "src/types/cert_cache.h"
#include "src/types/committee.h"
#include "src/types/messages.h"

namespace nt {

class Primary : public NetNode {
 public:
  Primary(ValidatorId id, const Committee& committee, const NarwhalConfig& config,
          Network* network, const Topology* topology, Signer* signer);
  ~Primary() override;

  void set_net_id(uint32_t id) { net_id_ = id; }

  // Attaches the durable store (non-owning; may be null = no persistence).
  // Headers, certificates, the vote ledger, and the own-proposal marker are
  // write-ahead persisted to it, making Recover() possible after a crash.
  void set_store(Store* store) { store_ = store; }

  // Rebuilds round, DAG frontier, vote ledger, and the last own proposal
  // from the attached store. Call once, after construction and before any
  // hooks are registered or OnStart runs (recovery never fires hooks). The
  // vote ledger restore is the double-vote guard: a recovered validator
  // will not sign a second header or vote for a round it signed pre-crash.
  void Recover();

  // Attaches the cluster's tracer (nullptr = tracing off, the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // --- consensus-layer interface ----------------------------------------------

  // Fired whenever a new certificate enters the local DAG (own or remote).
  // Multiple listeners are supported (consensus plus the DST checker's
  // invariant monitors); they run in registration order.
  void add_on_certificate(std::function<void(const Certificate&)> hook) {
    on_certificate_hooks_.push_back(std::move(hook));
  }
  // Fired whenever a header becomes locally available (vote path or sync).
  void add_on_header_stored(std::function<void(const Digest&)> hook) {
    on_header_stored_hooks_.push_back(std::move(hook));
  }

  const Dag& dag() const { return dag_; }
  Round round() const { return round_; }
  ValidatorId id() const { return id_; }

  // Consensus agreed on a GC horizon: drop rounds below it and re-inject own
  // uncommitted batches (paper §3.3).
  void SetGcRound(Round gc_round);

  // Consensus committed this header; its batches need no re-injection.
  void NotifyCommitted(const BlockHeader& header);

  // Consensus is missing a header for a known certificate: pull it from the
  // certificate's signers (no-op if already stored or already being pulled).
  void SyncHeader(const Digest& header_digest) { RequestHeader(header_digest); }

  // Attaches a cold archive that receives rounds evicted by garbage
  // collection (paper §3.3 offload). Optional; owned by the caller.
  void set_archive(class Archive* archive) { archive_ = archive; }

  // Validates and stores a certificate learned out-of-band (e.g. from a
  // HotStuff proposal), pulling its header if missing. Returns false only
  // for invalid certificates.
  bool IngestCertificate(const Certificate& cert) {
    return AcceptCertificate(cert, /*request_header_if_missing=*/true);
  }

  // --- NetNode ------------------------------------------------------------------
  void OnStart() override;
  void OnMessage(uint32_t from, const MessagePtr& msg) override;

  // --- introspection (tests, metrics) ---------------------------------------------
  uint64_t headers_proposed() const { return headers_proposed_; }
  // Recovery metrics: records replayed from the store by Recover() and
  // pull-sync requests issued (cumulative; the delta after a restart is the
  // rejoin cost reported in EXPERIMENTS.md).
  uint64_t recovered_store_records() const { return recovered_store_records_; }
  uint64_t header_sync_requests() const { return header_sync_requests_; }
  // Test-only: lets protocol tests stage DAG states directly.
  Dag& mutable_dag() { return dag_; }
  uint64_t certs_formed() const { return certs_formed_; }
  uint64_t votes_cast() const { return votes_cast_; }
  uint64_t reinjected_batches() const { return reinjected_batches_; }
  size_t pending_payload() const { return pending_batches_.size(); }
  // This validator's verified-certificate cache. Per-instance so every
  // simulated validator does its own verification work (no cross-validator
  // sharing through a process-wide singleton); Cluster aggregates the
  // per-validator stats into Metrics.
  VerifiedCertCache& cert_cache() { return cert_cache_; }

 private:
  struct Proposal {
    std::shared_ptr<const BlockHeader> header;
    Digest digest{};
    std::map<ValidatorId, Signature> votes;
    uint32_t retries = 0;
  };
  struct PendingHeader {
    std::shared_ptr<const BlockHeader> header;
    Digest digest{};
    uint32_t from = 0;
    std::set<Digest> missing_batches;
  };
  struct HeaderSync {
    uint32_t attempts = 0;
    Certificate cert;
  };

  // Round/proposal machinery.
  void TryAdvanceRound();
  void SchedulePropose();
  void ProposeNow();
  // `attempt` counts previous invocations for this proposal; it is carried
  // through the rescheduled lambda so the certified (cert re-share) path —
  // whose Proposal entry has been erased — still backs off exponentially.
  void RetryBroadcast(Digest digest, Round round, uint32_t attempt);

  // Header validation & voting.
  void HandleHeader(uint32_t from, const MsgHeader& msg);
  void FinishVote(const PendingHeader& pending);

  // Votes -> certificates.
  void HandleVote(const Vote& vote);
  void FormCertificate(Proposal& proposal);

  // Certificate intake (returns true if the certificate is new and valid).
  bool AcceptCertificate(const Certificate& cert, bool request_header_if_missing);

  // Pull synchronizer for missing headers.
  void RequestHeader(const Digest& digest);
  void RetryHeaderSync(const Digest& digest);

  void StoreHeader(std::shared_ptr<const BlockHeader> header, const Digest& digest);

  // Persistence helpers (no-ops when store_ is null).
  void PersistHeader(const BlockHeader& header, const Digest& digest);
  void PersistCertificate(const Certificate& cert);
  void PersistVote(Round round, ValidatorId author, const Digest& digest);
  void PersistProposalMarker(Round round, const Digest& digest);

  ValidatorId id_;
  const Committee& committee_;
  NarwhalConfig config_;
  Network* network_;
  const Topology* topology_;
  Signer* signer_;
  uint32_t net_id_ = 0;
  Tracer* tracer_ = nullptr;

  Dag dag_;
  VerifiedCertCache cert_cache_;
  Round round_ = 0;
  bool proposed_current_round_ = false;
  Scheduler::TimerId propose_timer_ = Scheduler::kInvalidTimer;

  // Quorum-acked own batches awaiting inclusion.
  std::deque<BatchRef> pending_batches_;
  // Digests already assigned to a header (avoid double inclusion).
  std::set<Digest> included_batches_;
  // Batches our own workers report stored (any author).
  std::set<Digest> stored_batches_;

  // Outstanding own proposals: header digest -> votes.
  std::map<Digest, Proposal> proposals_;
  // (round -> author -> header digest voted for): at most one vote per
  // author per round; the digest lets us re-send the same vote when the
  // proposer retransmits (vote messages may be lost).
  std::map<Round, std::map<ValidatorId, Digest>> voted_;

  // Headers deferred on missing batches.
  std::map<Digest, PendingHeader> waiting_batches_;
  std::map<Digest, std::set<Digest>> batch_waiters_;  // batch -> headers.

  // Headers being pulled from certificate signers.
  std::map<Digest, HeaderSync> header_sync_;

  // Own headers' batch refs, for re-injection: header digest -> refs.
  std::map<Digest, std::vector<BatchRef>> own_headers_;
  std::set<Digest> committed_batches_;

  std::vector<std::function<void(const Certificate&)>> on_certificate_hooks_;
  std::vector<std::function<void(const Digest&)>> on_header_stored_hooks_;
  class Archive* archive_ = nullptr;

  uint64_t headers_proposed_ = 0;
  uint64_t certs_formed_ = 0;
  uint64_t votes_cast_ = 0;
  uint64_t reinjected_batches_ = 0;

  // Durable store (null = ephemeral). Owned by the runtime, which keeps it
  // alive across simulated restarts of this object.
  Store* store_ = nullptr;
  Round store_gc_round_ = 0;  // Horizon below which store records are erased.
  bool recovered_ = false;
  Digest recovered_proposal_{};
  std::vector<Digest> recovered_missing_headers_;
  uint64_t recovered_store_records_ = 0;
  uint64_t header_sync_requests_ = 0;

  // Liveness flag captured by every scheduled lambda: a rebuilt validator
  // destroys its predecessor while that predecessor's timers may still be
  // queued, and a fired timer must not touch the dead object.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nt

#endif  // SRC_NARWHAL_PRIMARY_H_
