#include "src/narwhal/primary.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/common/seeded_bugs.h"
#include "src/narwhal/archive.h"
#include "src/types/cert_cache.h"

namespace nt {

namespace {
// Votes needed before a proposal certifies. The honest value is 2f+1; the
// seeded accept_2f_certs mutation drops it to 2f, breaking quorum
// intersection (mutation-tests the DST harness, see src/common/seeded_bugs.h).
uint32_t CertVoteThreshold(const Committee& committee) {
  // ntlint:allow(quorum-arith): deliberate seeded mutation — 2f (not 2f+1) breaks quorum intersection to mutation-test the DST harness
  return seeded_bugs::accept_2f_certs ? std::max(1u, 2 * committee.f())
                                      : committee.quorum_threshold();
}

// Store record keys. Values carry a one-byte tag ('H' header, 'C' cert,
// 'V' vote-ledger entry, 'P' own-proposal marker, 'M' meta) so Recover()
// can dispatch without keeping a key directory.
Digest HeaderKey(const Digest& digest) {
  uint8_t buf[33];
  buf[0] = 'H';
  std::memcpy(buf + 1, digest.data(), digest.size());
  return Sha256::Hash(buf, sizeof(buf));
}
Digest CertKey(const Digest& header_digest) {
  uint8_t buf[33];
  buf[0] = 'C';
  std::memcpy(buf + 1, header_digest.data(), header_digest.size());
  return Sha256::Hash(buf, sizeof(buf));
}
Digest VoteKey(Round round, ValidatorId author) {
  Writer w;
  w.PutU8('V');
  w.PutU64(round);
  w.PutU32(author);
  return Sha256::Hash(w.bytes().data(), w.size());
}
Digest ProposalKey(Round round) {
  Writer w;
  w.PutU8('P');
  w.PutU64(round);
  return Sha256::Hash(w.bytes().data(), w.size());
}
Digest MetaKey() { return Sha256::Hash(std::string_view("primary/meta")); }
}  // namespace

Primary::Primary(ValidatorId id, const Committee& committee, const NarwhalConfig& config,
                 Network* network, const Topology* topology, Signer* signer)
    : id_(id),
      committee_(committee),
      config_(config),
      network_(network),
      topology_(topology),
      signer_(signer) {}

Primary::~Primary() { *alive_ = false; }

void Primary::OnStart() {
  if (recovered_) {
    // Rejoin after a crash: pull headers the recovered certificates still
    // miss, re-broadcast the in-flight proposal if one was signed pre-crash
    // (never sign a second header for that round), and only propose fresh
    // when the recovered round has no proposal marker.
    for (const Digest& digest : recovered_missing_headers_) {
      RequestHeader(digest);
    }
    recovered_missing_headers_.clear();
    if (proposed_current_round_) {
      RetryBroadcast(recovered_proposal_, round_, 0);
    } else {
      SchedulePropose();
    }
    return;
  }
  // Genesis (paper §3.1): every validator creates and certifies an empty
  // block for round 0; round-1 blocks reference 2f+1 of their certificates.
  ProposeNow();
}

// ---------------------------------------------------------------- persistence

void Primary::PersistHeader(const BlockHeader& header, const Digest& digest) {
  if (store_ == nullptr) {
    return;
  }
  Digest key = HeaderKey(digest);
  if (store_->Contains(key)) {
    return;
  }
  Writer w;
  w.PutU8('H');
  header.Encode(w);
  store_->Put(key, w.Take());
}

void Primary::PersistCertificate(const Certificate& cert) {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('C');
  cert.Encode(w);
  store_->Put(CertKey(cert.header_digest), w.Take());
}

void Primary::PersistVote(Round round, ValidatorId author, const Digest& digest) {
  if (store_ == nullptr) {
    return;
  }
  Digest key = VoteKey(round, author);
  if (store_->Contains(key)) {
    return;  // Re-sent vote: the ledger entry is already durable.
  }
  Writer w;
  w.PutU8('V');
  w.PutU64(round);
  w.PutU32(author);
  w.PutRaw(digest);
  store_->Put(key, w.Take());
  // Durability barrier at the signing boundary: once the vote is on the
  // wire, the ledger entry it came from must survive a crash, or a
  // recovered validator could sign a conflicting header for this round.
  store_->Sync();
}

void Primary::PersistProposalMarker(Round round, const Digest& digest) {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('P');
  w.PutU64(round);
  w.PutRaw(digest);
  store_->Put(ProposalKey(round), w.Take());
  store_->Sync();  // Same signing-boundary barrier as PersistVote.
}

void Primary::Recover() {
  if (store_ == nullptr) {
    return;
  }
  recovered_ = true;

  Round gc_round = 0;
  std::vector<std::pair<Digest, std::shared_ptr<const BlockHeader>>> headers;
  std::vector<Certificate> certs;
  struct VoteRec {
    Round round = 0;
    ValidatorId author = 0;
    Digest digest{};
  };
  std::vector<VoteRec> votes;
  std::map<Round, Digest> markers;

  store_->ForEach([&](const Digest&, const Bytes& value) {
    if (value.empty()) {
      return;
    }
    ++recovered_store_records_;
    Reader r(value.data() + 1, value.size() - 1);
    switch (value[0]) {
      case 'M':
        gc_round = static_cast<Round>(r.GetU64());
        break;
      case 'H': {
        std::optional<BlockHeader> h = BlockHeader::Decode(r);
        if (h.has_value()) {
          auto ptr = std::make_shared<const BlockHeader>(std::move(*h));
          headers.emplace_back(ptr->ComputeDigest(), std::move(ptr));
        }
        break;
      }
      case 'C': {
        std::optional<Certificate> c = Certificate::Decode(r);
        if (c.has_value()) {
          certs.push_back(std::move(*c));
        }
        break;
      }
      case 'V': {
        VoteRec v;
        v.round = static_cast<Round>(r.GetU64());
        v.author = r.GetU32();
        v.digest = r.GetArray<32>();
        if (r.ok()) {
          votes.push_back(v);
        }
        break;
      }
      case 'P': {
        Round round = static_cast<Round>(r.GetU64());
        Digest digest = r.GetArray<32>();
        if (r.ok()) {
          markers[round] = digest;
        }
        break;
      }
      default:
        break;
    }
  });

  // Set the GC horizon first so records from rounds that were already
  // collected pre-crash (written before the last meta update) are filtered
  // the same way live traffic would be.
  dag_.GarbageCollect(gc_round);
  store_gc_round_ = gc_round;
  for (auto& [digest, header] : headers) {
    if (header->round >= gc_round && !dag_.HasHeader(digest)) {
      dag_.AddHeader(header, digest);  // Direct insert: recovery fires no hooks.
    }
  }
  std::sort(certs.begin(), certs.end(), [](const Certificate& a, const Certificate& b) {
    return a.round != b.round ? a.round < b.round : a.author < b.author;
  });
  for (const Certificate& cert : certs) {
    if (cert.round >= gc_round) {
      dag_.AddCertificate(cert);
    }
  }
  for (const VoteRec& v : votes) {
    if (v.round >= gc_round) {
      voted_[v.round][v.author] = v.digest;
    }
  }

  // Re-derive the round exactly as the threshold clock advanced it: every
  // round it passed through had a certificate quorum, and those
  // certificates were persisted before the advance.
  round_ = gc_round;
  while (dag_.CertCountAt(round_) >= committee_.quorum_threshold()) {
    ++round_;
  }

  // Re-inject bookkeeping for own headers (fairness across the crash).
  for (const auto& [digest, header] : dag_.headers()) {
    if (header->author != id_) {
      continue;
    }
    own_headers_[digest] = header->batches;
    for (const BatchRef& ref : header->batches) {
      included_batches_.insert(ref.digest);
    }
  }

  // Double-propose guard: a marker for the current round means a header was
  // signed for it pre-crash; re-adopt it instead of ever signing another.
  auto marker = markers.find(round_);
  if (marker != markers.end()) {
    proposed_current_round_ = true;
    recovered_proposal_ = marker->second;
    if (dag_.GetCertByDigest(marker->second) == nullptr) {
      std::shared_ptr<const BlockHeader> header = dag_.GetHeader(marker->second);
      if (header != nullptr) {
        Proposal& proposal = proposals_[marker->second];
        proposal.header = header;
        proposal.digest = marker->second;
        // Deterministic signatures: the recomputed self-vote equals the
        // pre-crash one bit for bit.
        proposal.votes[id_] = signer_->Sign(
            Certificate::VotePreimage(marker->second, header->round, header->author));
      }
    }
  }

  // Certificates whose headers were never synced (cert-first intake at the
  // moment of the crash): queue them for the pull synchronizer; OnStart
  // issues the requests once the node is live.
  for (Round r = gc_round; r <= dag_.HighestRound(); ++r) {
    for (const auto& [author, cert] : dag_.CertsAt(r)) {
      if (!dag_.HasHeader(cert.header_digest)) {
        recovered_missing_headers_.push_back(cert.header_digest);
      }
    }
  }
}

// ---------------------------------------------------------------- proposing

void Primary::TryAdvanceRound() {
  bool advanced = false;
  while (dag_.CertCountAt(round_) >= committee_.quorum_threshold()) {
    ++round_;
    advanced = true;
  }
  if (!advanced) {
    return;
  }
  proposed_current_round_ = false;
  if (propose_timer_ != Scheduler::kInvalidTimer) {
    network_->scheduler()->Cancel(propose_timer_);
    propose_timer_ = Scheduler::kInvalidTimer;
  }
  SchedulePropose();
}

void Primary::SchedulePropose() {
  if (proposed_current_round_) {
    return;
  }
  if (!pending_batches_.empty()) {
    ProposeNow();
    return;
  }
  // No payload yet: wait up to max_header_delay for worker batches, then
  // propose an empty header to keep the DAG advancing.
  if (propose_timer_ == Scheduler::kInvalidTimer) {
    propose_timer_ = network_->scheduler()->ScheduleAfter(
        config_.max_header_delay, [this, alive = alive_] {
          if (!*alive) {
            return;
          }
          propose_timer_ = Scheduler::kInvalidTimer;
          ProposeNow();
        });
  }
}

void Primary::ProposeNow() {
  if (proposed_current_round_) {
    return;
  }
  if (propose_timer_ != Scheduler::kInvalidTimer) {
    network_->scheduler()->Cancel(propose_timer_);
    propose_timer_ = Scheduler::kInvalidTimer;
  }

  auto header = std::make_shared<BlockHeader>();
  header->author = id_;
  header->round = round_;
  if (round_ > 0) {
    for (const auto& [author, cert] : dag_.CertsAt(round_ - 1)) {
      header->parents.push_back(cert);
    }
    if (header->parents.size() < committee_.quorum_threshold()) {
      return;  // Cannot propose yet (caller guarantees this normally).
    }
  }
  while (!pending_batches_.empty()) {
    header->batches.push_back(pending_batches_.front());
    pending_batches_.pop_front();
  }

  Digest digest = header->ComputeDigest();
  header->author_sig = signer_->Sign(digest);
  proposed_current_round_ = true;
  ++headers_proposed_;
  NT_TRACE(tracer_, OnHeaderProposed(id_, digest, header->round, header->batches,
                                     network_->scheduler()->now()));

  std::vector<BatchRef> refs = header->batches;
  for (const BatchRef& ref : refs) {
    included_batches_.insert(ref.digest);
  }
  own_headers_[digest] = std::move(refs);

  StoreHeader(header, digest);
  // Write-ahead double-propose guard: the marker (and the header above) hit
  // the store before any peer can see the signature.
  PersistProposalMarker(header->round, digest);

  // Self-vote, then reliable-broadcast the header to all other primaries.
  Proposal& proposal = proposals_[digest];
  proposal.header = header;
  proposal.digest = digest;
  proposal.votes[id_] =
      signer_->Sign(Certificate::VotePreimage(digest, header->round, header->author));

  // Byzantine equivocation (DST fault injection): when marked as an
  // equivocator, also build a conflicting header B for the same round —
  // same parents in reversed order (the digest covers parent order, so B's
  // digest differs) and no payload — and split the committee into disjoint
  // halves: the first half receives only A, the second half only B. Both
  // proposals are tracked and self-voted: with an honest 2f+1 quorum the
  // halves cannot both certify, but under the seeded accept_2f_certs
  // weakening the disjoint vote sets intersect in no honest validator and
  // two conflicting certificates for (round, author) form.
  FaultController* faults = network_->faults();
  bool equivocate = round_ > 0 && header->parents.size() >= 2 && faults != nullptr &&
                    faults->IsEquivocator(id_, network_->scheduler()->now());

  std::vector<ValidatorId> others;
  for (ValidatorId v = 0; v < committee_.size(); ++v) {
    if (v != id_) {
      others.push_back(v);
    }
  }
  size_t a_recipients = equivocate ? (others.size() + 1) / 2 : others.size();

  auto msg = std::make_shared<MsgHeader>(header, digest);
  for (size_t i = 0; i < a_recipients; ++i) {
    network_->Send(net_id_, topology_->primary_of[others[i]], msg);
  }
  network_->scheduler()->ScheduleAfter(config_.header_retry_delay,
                                       [this, alive = alive_, digest, r = header->round] {
                                         if (*alive) {
                                           RetryBroadcast(digest, r, 0);
                                         }
                                       });

  if (equivocate) {
    auto twin = std::make_shared<BlockHeader>();
    twin->author = id_;
    twin->round = round_;
    twin->parents.assign(header->parents.rbegin(), header->parents.rend());
    Digest twin_digest = twin->ComputeDigest();
    twin->author_sig = signer_->Sign(twin_digest);

    Proposal& twin_proposal = proposals_[twin_digest];
    twin_proposal.header = twin;
    twin_proposal.digest = twin_digest;
    twin_proposal.votes[id_] =
        signer_->Sign(Certificate::VotePreimage(twin_digest, twin->round, twin->author));

    auto twin_msg = std::make_shared<MsgHeader>(twin, twin_digest);
    for (size_t i = a_recipients; i < others.size(); ++i) {
      network_->Send(net_id_, topology_->primary_of[others[i]], twin_msg);
    }
    network_->scheduler()->ScheduleAfter(config_.header_retry_delay,
                                         [this, alive = alive_, twin_digest, r = twin->round] {
                                           if (*alive) {
                                             RetryBroadcast(twin_digest, r, 0);
                                           }
                                         });
  }

  // n = 1 degenerate committees certify immediately.
  if (proposal.votes.size() >= CertVoteThreshold(committee_)) {
    FormCertificate(proposal);
  }
}

void Primary::RetryBroadcast(Digest digest, Round round, uint32_t attempt) {
  // The paper's §6 re-transmission: stored messages are re-sent until "no
  // more needed to make progress" — here, until the round advances past the
  // proposal's round, at which point the DAG no longer needs it.
  if (round_ > round) {
    return;
  }
  // `attempt` is the authoritative backoff counter: unlike Proposal::retries,
  // it survives FormCertificate erasing the proposal, so the certificate
  // re-share branch backs off exponentially instead of re-flooding all peers
  // every header_retry_delay for the whole stall.
  uint32_t retries = attempt + 1;
  auto it = proposals_.find(digest);
  if (it != proposals_.end()) {
    // Still uncertified: resend the header to validators that have not voted.
    Proposal& proposal = it->second;
    proposal.retries = retries;
    auto msg = std::make_shared<MsgHeader>(proposal.header, digest);
    uint64_t resent = 0;
    for (ValidatorId v = 0; v < committee_.size(); ++v) {
      if (v != id_ && proposal.votes.count(v) == 0) {
        network_->Send(net_id_, topology_->primary_of[v], msg);
        ++resent;
      }
    }
    NT_TRACE(tracer_, IncrRetryRound("header_retry", digest, resent));
  } else if (const Certificate* cert = dag_.GetCertByDigest(digest)) {
    // Certified but the round is stuck: some peers may have missed the
    // certificate; re-share it so the threshold clock can tick.
    auto msg = std::make_shared<MsgCertificate>(*cert);
    for (ValidatorId v = 0; v < committee_.size(); ++v) {
      if (v != id_) {
        network_->Send(net_id_, topology_->primary_of[v], msg);
      }
    }
    NT_TRACE(tracer_, IncrRetryRound("cert_reshare", digest, committee_.size() - 1));
  } else {
    return;  // GC'd: no longer needed.
  }
  // Cap the backoff at 8× the base delay: retransmission is what carries
  // liveness through loss when only 2f+1 validators survive, so the retry
  // interval must stay well under any post-GST liveness bound (a 32 s gap
  // reads as a dead cluster to everything downstream).
  TimeDelta delay = config_.header_retry_delay << std::min(retries, 3u);
  network_->scheduler()->ScheduleAfter(delay, [this, alive = alive_, digest, round, retries] {
    if (*alive) {
      RetryBroadcast(digest, round, retries);
    }
  });
}

// ------------------------------------------------------------------- voting

void Primary::HandleHeader(uint32_t from, const MsgHeader& msg) {
  const BlockHeader& header = *msg.header;
  if (header.round < dag_.gc_round()) {
    return;  // Below GC horizon (paper §3.3).
  }
  if (!committee_.Contains(header.author)) {
    return;
  }
  if (msg.digest != header.ComputeDigest() ||
      !signer_->Verify(committee_.key_of(header.author), msg.digest, header.author_sig)) {
    LOG_WARN() << "header with bad digest/signature from validator " << header.author;
    return;
  }

  // Validate and ingest parents: >= 2f+1 distinct certificates of round-1.
  if (header.round > 0) {
    std::set<ValidatorId> parent_authors;
    for (const Certificate& parent : header.parents) {
      if (parent.round + 1 != header.round) {
        return;  // Malformed: parents must be exactly one round back.
      }
      parent_authors.insert(parent.author);
    }
    if (parent_authors.size() < committee_.quorum_threshold()) {
      return;
    }
    // Verify the whole parent set with one batched flush (every uncached
    // parent's votes share a single multi-scalar multiplication); the
    // per-parent AcceptCertificate calls below then hit the verified-
    // certificate cache.
    if (!Certificate::VerifyAll(header.parents, committee_, *signer_, &cert_cache_)) {
      LOG_WARN() << "header with invalid parent certificate from validator " << header.author;
      return;
    }
    for (const Certificate& parent : header.parents) {
      if (!AcceptCertificate(parent, /*request_header_if_missing=*/true)) {
        return;  // Invalid parent certificate: reject the header.
      }
    }
  }

  // One vote per (author, round). A duplicate of the header we already voted
  // for means our vote may have been lost: re-send the identical vote
  // (deterministic signatures make this safe). A *different* header is
  // equivocation and gets nothing.
  auto& voted_round = voted_[header.round];
  auto voted_it = voted_round.find(header.author);
  if (voted_it != voted_round.end()) {
    if (voted_it->second == msg.digest && dag_.HasHeader(msg.digest)) {
      PendingHeader again;
      again.header = msg.header;
      again.digest = msg.digest;
      again.from = from;
      FinishVote(again);
    }
    return;
  }
  voted_round.emplace(header.author, msg.digest);

  PendingHeader pending;
  pending.header = msg.header;
  pending.digest = msg.digest;
  pending.from = from;
  // Availability condition (paper §4.2): only sign if our own workers store
  // every referenced batch; otherwise instruct them to fetch and defer.
  for (const BatchRef& ref : header.batches) {
    if (stored_batches_.count(ref.digest) == 0) {
      pending.missing_batches.insert(ref.digest);
    }
  }
  if (pending.missing_batches.empty()) {
    FinishVote(pending);
    return;
  }
  for (const Digest& missing : pending.missing_batches) {
    batch_waiters_[missing].insert(pending.digest);
    WorkerId worker = 0;
    for (const BatchRef& ref : header.batches) {
      if (ref.digest == missing) {
        worker = ref.worker;
        break;
      }
    }
    uint32_t worker_index = worker % topology_->workers_per_validator();
    network_->Send(net_id_, topology_->worker_of[id_][worker_index],
                   std::make_shared<MsgFetchBatch>(missing, header.author, worker));
  }
  waiting_batches_[pending.digest] = std::move(pending);
}

void Primary::FinishVote(const PendingHeader& pending) {
  const BlockHeader& header = *pending.header;
  StoreHeader(pending.header, pending.digest);
  // Write-ahead double-vote guard: the (round, author) -> digest ledger
  // entry is durable (and synced) before the signed vote leaves the node.
  PersistVote(header.round, header.author, pending.digest);

  Vote vote;
  vote.header_digest = pending.digest;
  vote.round = header.round;
  vote.author = header.author;
  vote.voter = id_;
  vote.sig = signer_->Sign(Certificate::VotePreimage(pending.digest, header.round, header.author));
  ++votes_cast_;
  network_->Send(net_id_, topology_->primary_of[header.author], std::make_shared<MsgVote>(vote));
}

// ------------------------------------------------------- votes -> certificates

void Primary::HandleVote(const Vote& vote) {
  auto it = proposals_.find(vote.header_digest);
  if (it == proposals_.end()) {
    return;  // Not an outstanding proposal (already certified or foreign).
  }
  Proposal& proposal = it->second;
  if (vote.round != proposal.header->round || vote.author != id_) {
    return;  // Vote fields inconsistent with the proposal (Byzantine voter).
  }
  if (proposal.votes.count(vote.voter) != 0) {
    return;
  }
  if (!vote.Verify(committee_, *signer_)) {
    LOG_WARN() << "invalid vote from " << vote.voter;
    return;
  }
  proposal.votes[vote.voter] = vote.sig;
  if (proposal.votes.size() >= CertVoteThreshold(committee_)) {
    FormCertificate(proposal);
  }
}

void Primary::FormCertificate(Proposal& proposal) {
  Certificate cert;
  cert.header_digest = proposal.digest;
  cert.round = proposal.header->round;
  cert.author = id_;
  for (const auto& [voter, sig] : proposal.votes) {
    if (cert.votes.size() >= CertVoteThreshold(committee_)) {
      break;
    }
    cert.votes.emplace_back(voter, sig);
  }
  ++certs_formed_;
  Digest digest = proposal.digest;  // Copy: erasing invalidates `proposal`.
  NT_TRACE(tracer_, OnCertFormed(id_, digest, cert.round, network_->scheduler()->now()));
  proposals_.erase(digest);

  AcceptCertificate(cert, /*request_header_if_missing=*/false);

  auto msg = std::make_shared<MsgCertificate>(cert);
  for (ValidatorId v = 0; v < committee_.size(); ++v) {
    if (v != id_) {
      network_->Send(net_id_, topology_->primary_of[v], msg);
    }
  }
}

// ----------------------------------------------------------- certificate intake

bool Primary::AcceptCertificate(const Certificate& cert, bool request_header_if_missing) {
  if (cert.round < dag_.gc_round()) {
    return true;  // Stale but not invalid.
  }
  if (const Certificate* known = dag_.GetCertByDigest(cert.header_digest)) {
    (void)known;
    return true;  // Already verified and stored.
  }
  if (!cert.Verify(committee_, *signer_, &cert_cache_)) {
    LOG_WARN() << "invalid certificate for round " << cert.round;
    return false;
  }
  if (!dag_.AddCertificate(cert)) {
    return false;  // Equivocation (cannot happen with honest quorum).
  }
  // Persist before the hooks run: anything consensus derives from this
  // certificate (commits, GC) must be re-derivable after a crash.
  PersistCertificate(cert);
  if (request_header_if_missing && !dag_.HasHeader(cert.header_digest)) {
    RequestHeader(cert.header_digest);
  }
  for (const auto& hook : on_certificate_hooks_) {
    hook(cert);
  }
  TryAdvanceRound();
  return true;
}

// ------------------------------------------------------------ header synchronizer

void Primary::RequestHeader(const Digest& digest) {
  if (header_sync_.count(digest) != 0 || dag_.HasHeader(digest)) {
    return;
  }
  const Certificate* cert = dag_.GetCertByDigest(digest);
  if (cert == nullptr) {
    return;
  }
  HeaderSync sync;
  sync.cert = *cert;
  header_sync_[digest] = std::move(sync);
  RetryHeaderSync(digest);
}

void Primary::RetryHeaderSync(const Digest& digest) {
  auto it = header_sync_.find(digest);
  if (it == header_sync_.end()) {
    return;
  }
  HeaderSync& sync = it->second;
  // Ask the certificate's signers in turn: at least f+1 of them are honest
  // and store the header (paper §4.1), so O(1) probes suffice on average.
  const auto& voters = sync.cert.votes;
  ValidatorId target = voters[sync.attempts % voters.size()].first;
  if (target == id_) {
    target = voters[(sync.attempts + 1) % voters.size()].first;
  }
  ++sync.attempts;
  ++header_sync_requests_;
  network_->Send(net_id_, topology_->primary_of[target], std::make_shared<MsgCertRequest>(digest));
  TimeDelta delay = config_.sync_retry_delay << std::min(sync.attempts, 6u);
  network_->scheduler()->ScheduleAfter(delay, [this, alive = alive_, digest] {
    if (*alive) {
      RetryHeaderSync(digest);
    }
  });
}

void Primary::StoreHeader(std::shared_ptr<const BlockHeader> header, const Digest& digest) {
  if (dag_.HasHeader(digest)) {
    return;
  }
  PersistHeader(*header, digest);
  dag_.AddHeader(std::move(header), digest);
  header_sync_.erase(digest);
  for (const auto& hook : on_header_stored_hooks_) {
    hook(digest);
  }
}

// ----------------------------------------------------------------- GC & commit

void Primary::SetGcRound(Round gc_round) {
  // Certificates below the horizon can no longer be presented for
  // verification; release their verified-cache entries.
  cert_cache_.OnGcRound(gc_round);
  // Re-inject own batches whose headers fell below the horizon uncommitted
  // (paper §3.3: transaction-level fairness), and offload evicted rounds to
  // the cold archive if one is attached (§3.3: CDN offload).
  std::vector<Dag::Collected> collected = dag_.GarbageCollect(gc_round);
  std::set<Digest> collected_set;
  for (const Dag::Collected& record : collected) {
    collected_set.insert(record.digest);
    if (archive_ != nullptr) {
      archive_->Put(record);
    }
  }
  // Advance the durable GC horizon and drop store records below it, keeping
  // the WAL bounded by the live DAG window. The meta record goes first:
  // recovery filters stale records against it even if the erases below
  // never land.
  if (store_ != nullptr && gc_round > store_gc_round_) {
    Writer w;
    w.PutU8('M');
    w.PutU64(gc_round);
    store_->Put(MetaKey(), w.Take());
    for (const Dag::Collected& record : collected) {
      store_->Erase(HeaderKey(record.digest));
      store_->Erase(CertKey(record.digest));
    }
    for (auto it = voted_.begin(); it != voted_.end() && it->first < gc_round; ++it) {
      for (const auto& [author, digest] : it->second) {
        store_->Erase(VoteKey(it->first, author));
      }
    }
    for (Round r = store_gc_round_; r < gc_round; ++r) {
      store_->Erase(ProposalKey(r));
    }
    store_gc_round_ = gc_round;
  }
  for (auto it = own_headers_.begin(); it != own_headers_.end();) {
    if (collected_set.count(it->first) != 0) {
      for (const BatchRef& ref : it->second) {
        if (committed_batches_.count(ref.digest) == 0) {
          pending_batches_.push_back(ref);
          ++reinjected_batches_;
        }
      }
      it = own_headers_.erase(it);
    } else {
      ++it;
    }
  }
  voted_.erase(voted_.begin(), voted_.lower_bound(gc_round));
  for (auto it = waiting_batches_.begin(); it != waiting_batches_.end();) {
    if (it->second.header->round < gc_round) {
      it = waiting_batches_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = proposals_.begin(); it != proposals_.end();) {
    if (it->second.header->round < gc_round) {
      it = proposals_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = header_sync_.begin(); it != header_sync_.end();) {
    if (it->second.cert.round < gc_round) {
      it = header_sync_.erase(it);
    } else {
      ++it;
    }
  }
}

void Primary::NotifyCommitted(const BlockHeader& header) {
  NT_TRACE(tracer_, OnHeaderCommitted(id_, header.ComputeDigest(), network_->scheduler()->now()));
  for (const BatchRef& ref : header.batches) {
    committed_batches_.insert(ref.digest);
  }
  if (header.author == id_) {
    own_headers_.erase(header.ComputeDigest());
  }
}

// ------------------------------------------------------------------ dispatch

void Primary::OnMessage(uint32_t from, const MessagePtr& msg) {
  if (auto header = std::dynamic_pointer_cast<const MsgHeader>(msg)) {
    HandleHeader(from, *header);
    return;
  }
  if (auto vote = std::dynamic_pointer_cast<const MsgVote>(msg)) {
    HandleVote(vote->vote);
    return;
  }
  if (auto cert = std::dynamic_pointer_cast<const MsgCertificate>(msg)) {
    AcceptCertificate(cert->cert, /*request_header_if_missing=*/true);
    return;
  }
  if (auto ready = std::dynamic_pointer_cast<const MsgBatchReady>(msg)) {
    // Own worker: batch reached an availability quorum.
    stored_batches_.insert(ready->ref.digest);
    if (included_batches_.count(ready->ref.digest) == 0) {
      pending_batches_.push_back(ready->ref);
    }
    if (!proposed_current_round_) {
      SchedulePropose();
    }
    return;
  }
  if (auto stored = std::dynamic_pointer_cast<const MsgBatchStored>(msg)) {
    stored_batches_.insert(stored->digest);
    // Release headers that were waiting on this batch.
    auto waiters = batch_waiters_.find(stored->digest);
    if (waiters == batch_waiters_.end()) {
      return;
    }
    std::set<Digest> headers = std::move(waiters->second);
    batch_waiters_.erase(waiters);
    for (const Digest& header_digest : headers) {
      auto it = waiting_batches_.find(header_digest);
      if (it == waiting_batches_.end()) {
        continue;
      }
      it->second.missing_batches.erase(stored->digest);
      if (it->second.missing_batches.empty()) {
        PendingHeader pending = std::move(it->second);
        waiting_batches_.erase(it);
        FinishVote(pending);
      }
    }
    return;
  }
  if (auto request = std::dynamic_pointer_cast<const MsgCertRequest>(msg)) {
    const Certificate* cert = dag_.GetCertByDigest(request->digest);
    auto header = dag_.GetHeader(request->digest);
    if (cert != nullptr && header != nullptr) {
      network_->Send(net_id_, from, std::make_shared<MsgCertResponse>(*cert, header));
    }
    return;
  }
  if (auto response = std::dynamic_pointer_cast<const MsgCertResponse>(msg)) {
    if (response->header == nullptr) {
      return;
    }
    Digest digest = response->header->ComputeDigest();
    if (digest != response->cert.header_digest) {
      LOG_WARN() << "cert response header/cert mismatch";
      return;
    }
    if (AcceptCertificate(response->cert, /*request_header_if_missing=*/false)) {
      // Ingest the parent certificates too: unlike the voting path, a synced
      // header skips HandleHeader, and without its parents in the DAG a
      // causal-history walk can reach a header whose certificate nobody ever
      // fetches (the header itself being present suppresses the sync) —
      // wedging commit delivery. Requesting missing parent headers here also
      // makes deep gaps heal recursively.
      for (const Certificate& parent : response->header->parents) {
        AcceptCertificate(parent, /*request_header_if_missing=*/true);
      }
      StoreHeader(response->header, digest);
    }
    return;
  }
}

}  // namespace nt
