// Light-client verification (paper §8.4: "Light clients face a similar
// issue, their design needs to adapt to locate and track transaction data
// across workers").
//
// A light client holds only the committee's public keys. A full node hands
// it a self-contained InclusionProof showing that a transaction was
// sequenced: the certificate of availability (2f+1 signatures), the header
// it certifies, the referenced batch carrying the transaction, and the
// transaction's position. Verification needs no state beyond the committee:
//
//   certificate sigs -> header digest -> batch digest -> transaction bytes.
#ifndef SRC_NARWHAL_LIGHT_CLIENT_H_
#define SRC_NARWHAL_LIGHT_CLIENT_H_

#include <memory>
#include <optional>

#include "src/narwhal/primary.h"
#include "src/narwhal/worker.h"

namespace nt {

struct InclusionProof {
  Certificate certificate;
  std::shared_ptr<const BlockHeader> header;
  std::shared_ptr<const Batch> batch;
  uint32_t tx_index = 0;

  void Encode(Writer& w) const;
  static std::optional<InclusionProof> Decode(Reader& r);
  size_t WireSize() const;
};

class LightClient {
 public:
  // `verifier` supplies the signature scheme (any committee member's signer
  // works as a verifier; light clients can construct one from a throwaway
  // seed).
  LightClient(const Committee& committee, const Signer* verifier)
      : committee_(committee), verifier_(verifier) {}

  // Verifies the whole chain of custody and returns the proven transaction
  // bytes, or nullopt if any link fails:
  //  1. the certificate carries 2f+1 valid committee signatures;
  //  2. the header hashes to the certified digest (and is signed by its
  //     author);
  //  3. the batch hashes to a digest referenced by the header;
  //  4. tx_index addresses an explicit transaction within the batch.
  std::optional<Bytes> VerifyInclusion(const InclusionProof& proof) const;

  uint64_t verified() const { return verified_; }
  uint64_t rejected() const { return rejected_; }

 private:
  const Committee& committee_;
  const Signer* verifier_;
  // Client-local verified-certificate cache: a light client trusts only its
  // own past verifications, never another process-resident instance's.
  mutable VerifiedCertCache cert_cache_;
  mutable uint64_t verified_ = 0;
  mutable uint64_t rejected_ = 0;
};

// Full-node side: assembles a proof for an explicit transaction payload.
// Scans the validator's DAG for a certified header referencing a batch that
// contains `tx` (the §8.4 "locate transaction data across workers" step).
std::optional<InclusionProof> BuildInclusionProof(const Primary& primary, const Worker& worker,
                                                  const Bytes& tx);

}  // namespace nt

#endif  // SRC_NARWHAL_LIGHT_CLIENT_H_
