#include "src/narwhal/archive.h"

namespace nt {
namespace {

// Cold-store record: certificate, then optionally the header.
Bytes EncodeRecord(const Certificate& cert, const std::shared_ptr<const BlockHeader>& header) {
  Writer w;
  cert.Encode(w);
  w.PutBool(header != nullptr);
  if (header != nullptr) {
    header->Encode(w);
  }
  return w.Take();
}

}  // namespace

void Archive::Put(const Dag::Collected& record) {
  auto [it, inserted] = records_.emplace(record.digest, Record{record.cert, record.header});
  if (!inserted) {
    // Upgrade a certificate-only record if the header arrived meanwhile.
    if (it->second.header == nullptr && record.header != nullptr) {
      it->second.header = record.header;
      ++headers_archived_;
    } else {
      return;
    }
  } else if (record.header != nullptr) {
    ++headers_archived_;
  }
  if (cold_store_ != nullptr) {
    cold_store_->Put(record.digest, EncodeRecord(it->second.cert, it->second.header));
  }
}

std::shared_ptr<const BlockHeader> Archive::GetHeader(const Digest& digest) const {
  auto it = records_.find(digest);
  return it == records_.end() ? nullptr : it->second.header;
}

const Certificate* Archive::GetCertificate(const Digest& digest) const {
  auto it = records_.find(digest);
  return it == records_.end() ? nullptr : &it->second.cert;
}

size_t Archive::LoadFromColdStore() {
  if (cold_store_ == nullptr) {
    return 0;
  }
  // The Store interface has no iteration; recovery is driven by re-reading
  // known digests. A WalStore-backed archive recovers its own map on Open,
  // so load-by-digest suffices for the access paths (execution, audits)
  // which always know the digest they want.
  return records_.size();
}

}  // namespace nt
