// A Narwhal worker (paper §4.2): receives client transactions, seals them
// into batches, streams batches to the matching worker of every other
// validator, collects storage acknowledgments, and hands quorum-acknowledged
// batch digests to its primary for inclusion in the next header. Also serves
// and issues batch pull requests for the synchronizer.
#ifndef SRC_NARWHAL_WORKER_H_
#define SRC_NARWHAL_WORKER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/trace.h"
#include "src/narwhal/config.h"
#include "src/net/network.h"
#include "src/store/store.h"
#include "src/types/committee.h"
#include "src/types/messages.h"

namespace nt {

// Maps protocol roles to network node ids. Built by the runtime when it
// assembles a cluster.
struct Topology {
  struct NodeRole {
    enum class Kind { kPrimary, kWorker, kConsensus };
    Kind kind = Kind::kPrimary;
    ValidatorId validator = 0;
    WorkerId worker = 0;
  };

  // primary_of[v] = net id of validator v's primary.
  std::vector<uint32_t> primary_of;
  // worker_of[v][w] = net id of validator v's w-th worker.
  std::vector<std::vector<uint32_t>> worker_of;
  // Reverse map: net id -> role.
  std::map<uint32_t, NodeRole> role_of;

  uint32_t workers_per_validator() const {
    return worker_of.empty() ? 0 : static_cast<uint32_t>(worker_of[0].size());
  }
};

// Metadata every sealed batch registers with the runtime so commit-time
// accounting (throughput, sampled latency) does not need to ship payloads
// through consensus. Keyed by batch digest.
class BatchDirectory {
 public:
  struct Info {
    ValidatorId author = 0;
    WorkerId worker = 0;
    uint64_t num_txs = 0;
    uint64_t payload_bytes = 0;
    TimePoint sealed_at = 0;
    std::vector<TxSample> samples;
  };

  void Register(const Digest& digest, Info info) { map_[digest] = std::move(info); }
  const Info* Find(const Digest& digest) const {
    auto it = map_.find(digest);
    return it == map_.end() ? nullptr : &it->second;
  }
  size_t size() const { return map_.size(); }

 private:
  std::map<Digest, Info> map_;
};

class Worker : public NetNode {
 public:
  // `store` is non-owning: the runtime owns it and keeps it alive across
  // simulated restarts of this worker (it is the durable disk).
  Worker(ValidatorId validator, WorkerId worker_id, const Committee& committee,
         const NarwhalConfig& config, Network* network, const Topology* topology,
         Store* store, BatchDirectory* directory);
  ~Worker() override;

  // Registers this worker's own net id once known.
  void set_net_id(uint32_t id) { net_id_ = id; }

  // Reloads sealed batches from the durable store after a crash: the
  // serving map is repopulated and the batch sequence counter resumes past
  // the highest persisted own batch (fresh batches must never reuse a
  // pre-crash digest). Call before OnStart.
  void Recover();

  // Attaches the cluster's tracer (nullptr = tracing off, the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // --- client interface -------------------------------------------------------
  // Submits a transaction of `size_bytes`. If `sample` is set, its commit
  // latency will be measured. (Clients are collocated load generators; the
  // submission itself is a local call, as in the paper's benchmark setup.)
  void SubmitTransaction(uint64_t size_bytes, std::optional<TxSample> sample);

  // Explicit-payload submission used by examples and integration tests.
  void SubmitTransaction(Bytes payload, std::optional<TxSample> sample);

  // Submits a whole block of explicit transactions and seals it immediately
  // as one batch, returning the batch digest (the mempool facade's write).
  Digest SubmitBlock(std::vector<Bytes> txs);

  // --- NetNode ----------------------------------------------------------------
  void OnStart() override;
  void OnMessage(uint32_t from, const MessagePtr& msg) override;

  // --- introspection ----------------------------------------------------------
  const Store& store() const { return *store_; }
  uint64_t batches_sealed() const { return batches_sealed_; }
  uint64_t batches_acked() const { return batches_acked_; }
  uint64_t duplicate_txs_dropped() const { return duplicate_txs_dropped_; }
  std::shared_ptr<const Batch> GetBatch(const Digest& digest) const;

 private:
  void MaybeSealBatch(bool force);
  void SealBatch();
  void DisseminateBatch(const std::shared_ptr<const Batch>& batch, const Digest& digest);
  void RetryBatch(const Digest& digest);
  void StoreBatch(const std::shared_ptr<const Batch>& batch, const Digest& digest);
  void HandleFetch(const MsgFetchBatch& fetch);
  void RetryFetch(const Digest& digest, ValidatorId author, uint32_t attempt);

  bool IsOwnPrimary(uint32_t from) const;

  ValidatorId validator_;
  WorkerId worker_id_;
  const Committee& committee_;
  NarwhalConfig config_;
  Network* network_;
  const Topology* topology_;
  Store* store_;
  BatchDirectory* directory_;
  uint32_t net_id_ = 0;
  Tracer* tracer_ = nullptr;

  // Pending (unsealed) payload.
  Batch pending_;
  uint64_t next_seq_ = 0;
  Scheduler::TimerId batch_timer_ = Scheduler::kInvalidTimer;

  // Batches awaiting a quorum of acks: digest -> (batch, ackers).
  struct InFlight {
    std::shared_ptr<const Batch> batch;
    std::set<ValidatorId> ackers;
    Scheduler::TimerId retry_timer = Scheduler::kInvalidTimer;
    uint32_t attempts = 0;  // Re-transmissions back off exponentially.
  };
  std::map<Digest, InFlight> in_flight_;

  // Batch contents kept in memory for serving pull requests.
  std::map<Digest, std::shared_ptr<const Batch>> batches_;

  // Outstanding pull requests issued on behalf of the primary.
  std::set<Digest> fetching_;

  // Sliding-window duplicate filter over explicit transaction payloads.
  std::set<Digest> seen_txs_;
  std::deque<Digest> seen_order_;

  uint64_t batches_sealed_ = 0;
  uint64_t batches_acked_ = 0;
  uint64_t duplicate_txs_dropped_ = 0;

  // Liveness flag captured by scheduled lambdas; see Primary::alive_.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nt

#endif  // SRC_NARWHAL_WORKER_H_
