// DAG-Rider [28] implemented over the same Narwhal DAG API, substantiating
// the paper's §8.2 remark that "it would take less than 200 LOC to implement
// DAG-Rider over Narwhal".
//
// Differences from Tusk (paper §5): waves span 4 rounds with no
// piggybacking; the wave leader lives in the wave's first round; the commit
// rule requires 2f+1 fourth-round blocks with a *path* to the leader
// (instead of f+1 second-round blocks with a direct reference). Expected
// common-case commit latency is therefore 5.5 rounds vs Tusk's 4.5 — the
// gap the ablation benchmark measures.
#ifndef SRC_TUSK_DAG_RIDER_H_
#define SRC_TUSK_DAG_RIDER_H_

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "src/crypto/coin.h"
#include "src/narwhal/primary.h"

namespace nt {

class DagRider {
 public:
  struct Committed {
    Digest digest{};
    std::shared_ptr<const BlockHeader> header;
    uint64_t wave = 0;
  };

  DagRider(Primary* primary, const Committee& committee, const ThresholdCoin* coin);

  // Registers a delivery callback; multiple listeners may register.
  void add_on_commit(std::function<void(const Committed&)> hook) {
    on_commit_hooks_.push_back(std::move(hook));
  }

  uint64_t last_committed_wave() const { return last_committed_wave_; }
  uint64_t committed_headers() const { return committed_count_; }

  // Wave w (w >= 1) occupies rounds 4w-3 .. 4w.
  static Round WaveFirstRound(uint64_t wave) { return 4 * wave - 3; }
  static Round WaveLastRound(uint64_t wave) { return 4 * wave; }

 private:
  const Certificate* LeaderCert(uint64_t wave) const;
  bool CommitRuleSatisfied(uint64_t wave, const Certificate& leader) const;
  bool CommitChain(uint64_t wave, const Certificate& leader);
  void TryCommit();

  Primary* primary_;
  const Committee& committee_;
  const ThresholdCoin* coin_;

  uint64_t last_committed_wave_ = 0;
  std::set<Digest> committed_;
  uint64_t committed_count_ = 0;
  std::vector<std::function<void(const Committed&)>> on_commit_hooks_;
};

}  // namespace nt

#endif  // SRC_TUSK_DAG_RIDER_H_
