#include "src/tusk/dag_rider.h"

#include <algorithm>

namespace nt {

DagRider::DagRider(Primary* primary, const Committee& committee, const ThresholdCoin* coin)
    : primary_(primary), committee_(committee), coin_(coin) {
  primary_->add_on_certificate([this](const Certificate&) { TryCommit(); });
  primary_->add_on_header_stored([this](const Digest&) { TryCommit(); });
}

const Certificate* DagRider::LeaderCert(uint64_t wave) const {
  ValidatorId leader = coin_->LeaderOf(wave, committee_.size());
  return primary_->dag().GetCert(WaveFirstRound(wave), leader);
}

bool DagRider::CommitRuleSatisfied(uint64_t wave, const Certificate& leader) const {
  const Dag& dag = primary_->dag();
  uint32_t votes = 0;
  for (const auto& [author, cert] : dag.CertsAt(WaveLastRound(wave))) {
    if (dag.HasPath(cert.header_digest, leader.header_digest)) {
      ++votes;
    }
  }
  return votes >= committee_.quorum_threshold();
}

void DagRider::TryCommit() {
  const Dag& dag = primary_->dag();
  Round top = dag.HighestRound();
  uint64_t max_wave = top / 4;
  for (uint64_t wave = last_committed_wave_ + 1; wave <= max_wave; ++wave) {
    if (dag.CertCountAt(WaveLastRound(wave)) < committee_.quorum_threshold()) {
      break;
    }
    const Certificate* leader = LeaderCert(wave);
    if (leader == nullptr || committed_.count(leader->header_digest) != 0) {
      continue;
    }
    if (!CommitRuleSatisfied(wave, *leader)) {
      continue;
    }
    if (!CommitChain(wave, *leader)) {
      break;
    }
  }
}

bool DagRider::CommitChain(uint64_t wave, const Certificate& leader) {
  const Dag& dag = primary_->dag();
  Dag::History full = dag.CollectCausalHistory(leader.header_digest, committed_);
  if (!full.missing.empty()) {
    for (const Digest& missing : full.missing) {
      primary_->SyncHeader(missing);
    }
    return false;
  }

  std::vector<const Certificate*> chain{&leader};
  const Certificate* candidate = &leader;
  for (uint64_t i = wave - 1; i > last_committed_wave_ && i > 0; --i) {
    const Certificate* li = LeaderCert(i);
    if (li == nullptr || committed_.count(li->header_digest) != 0) {
      continue;
    }
    if (dag.HasPath(candidate->header_digest, li->header_digest)) {
      chain.push_back(li);
      candidate = li;
    }
  }
  std::reverse(chain.begin(), chain.end());

  for (const Certificate* lead : chain) {
    Dag::History history = dag.CollectCausalHistory(lead->header_digest, committed_);
    for (const Digest& digest : history.ordered) {
      auto header = dag.GetHeader(digest);
      committed_.insert(digest);
      ++committed_count_;
      primary_->NotifyCommitted(*header);
      for (const auto& hook : on_commit_hooks_) {
        hook(Committed{digest, header, wave});
      }
    }
  }
  last_committed_wave_ = wave;
  // Note: faithful DAG-Rider retains all history (weak links make GC
  // impossible — paper §8.2); we deliberately do not advance the GC round.
  return true;
}

}  // namespace nt
