#include "src/tusk/tusk.h"

#include <algorithm>
#include <string_view>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/common/seeded_bugs.h"

namespace nt {

Tusk::Tusk(Primary* primary, const Committee& committee, const ThresholdCoin* coin,
           Round gc_depth)
    : primary_(primary), committee_(committee), coin_(coin), gc_depth_(gc_depth) {
  primary_->add_on_certificate([this](const Certificate& cert) { OnCertificate(cert); });
  primary_->add_on_header_stored([this](const Digest& digest) { OnHeaderStored(digest); });
}

void Tusk::OnCertificate(const Certificate&) { TryCommit(); }

void Tusk::OnHeaderStored(const Digest&) { TryCommit(); }

// ---------------------------------------------------------------- persistence

namespace {
// Consensus-store records: 'T' commit entries (one per delivered header),
// 'U' meta (wave cursor). The store is shared with other consensus
// interpreters, so tags stay globally unique.
Digest TuskCommitKey(const Digest& digest) {
  Writer w;
  w.PutU8('T');
  w.PutRaw(digest);
  return Sha256::Hash(w.bytes().data(), w.size());
}
Digest TuskMetaKey() { return Sha256::Hash(std::string_view("tusk/meta")); }
}  // namespace

void Tusk::PersistCommit(const Digest& digest, Round round) {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('T');
  w.PutU64(round);
  w.PutRaw(digest);
  store_->Put(TuskCommitKey(digest), w.Take());
}

void Tusk::PersistMeta() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('U');
  w.PutU64(last_committed_wave_);
  store_->Put(TuskMetaKey(), w.Take());
  store_->Sync();
}

void Tusk::Recover() {
  if (store_ == nullptr) {
    return;
  }
  const Round gc_round = primary_->dag().gc_round();
  store_->ForEach([&](const Digest&, const Bytes& value) {
    if (value.empty()) {
      return;
    }
    Reader r(value.data() + 1, value.size() - 1);
    switch (value[0]) {
      case 'T': {
        Round round = static_cast<Round>(r.GetU64());
        Digest digest = r.GetArray<32>();
        if (!r.ok() || round < gc_round) {
          break;
        }
        if (committed_.insert(digest).second) {
          committed_by_round_[round].push_back(digest);
          ++committed_count_;
        }
        break;
      }
      case 'U':
        last_committed_wave_ = r.GetU64();
        break;
      default:
        break;
    }
  });
  last_skip_counted_ = last_committed_wave_;
  // Refresh the primary's commit bookkeeping (committed batches, own-header
  // re-injection) for committed headers the recovered DAG still holds; the
  // crash-restart must not cause committed payload to be re-injected.
  for (const Digest& digest : committed_) {
    auto header = primary_->dag().GetHeader(digest);
    if (header != nullptr) {
      primary_->NotifyCommitted(*header);
    }
  }
}

bool Tusk::WaveComplete(uint64_t wave) const {
  // The coin for wave w is revealed once the third round is populated by a
  // quorum in the local view.
  return primary_->dag().CertCountAt(WaveThirdRound(wave)) >= committee_.quorum_threshold();
}

const Certificate* Tusk::LeaderCert(uint64_t wave) const {
  ValidatorId leader = coin_->LeaderOf(wave, committee_.size());
  return primary_->dag().GetCert(WaveFirstRound(wave), leader);
}

bool Tusk::CommitRuleSatisfied(uint64_t wave, const Certificate& leader) const {
  // Seeded mutation: skip the paper's §5 f+1 second-round support check and
  // commit every elected leader present in the local view — validators with
  // different views then commit different leader chains (detected by the DST
  // harness's prefix-consistency and oracle invariants).
  if (seeded_bugs::skip_tusk_support) {
    return true;
  }
  const Dag& dag = primary_->dag();
  uint32_t votes = 0;
  for (const auto& [author, cert] : dag.CertsAt(WaveSecondRound(wave))) {
    auto header = dag.GetHeader(cert.header_digest);
    if (header == nullptr) {
      continue;  // Unknown edges can only undercount; sync will re-trigger.
    }
    for (const Certificate& parent : header->parents) {
      if (parent.header_digest == leader.header_digest) {
        ++votes;
        break;
      }
    }
  }
  return votes >= committee_.validity_threshold();
}

void Tusk::TryCommit() {
  const Dag& dag = primary_->dag();
  // Highest wave whose third round could exist in the DAG.
  Round top = dag.HighestRound();
  if (top < 3) {
    return;
  }
  uint64_t max_wave = (top - 1) / 2;
  for (uint64_t wave = last_committed_wave_ + 1; wave <= max_wave; ++wave) {
    if (!WaveComplete(wave)) {
      // Stop at the first incomplete wave: waves must be interpreted in
      // order, and headers of later rounds embed the certificates that fill
      // earlier rounds, so this wave completes before long.
      break;
    }
    const Certificate* leader = LeaderCert(wave);
    if (leader == nullptr || committed_.count(leader->header_digest) != 0) {
      continue;  // No leader block in our view: wave yields nothing directly.
    }
    if (!CommitRuleSatisfied(wave, *leader)) {
      if (wave > last_skip_counted_) {  // Count each wave's skip once.
        ++skipped_leaders_;
        last_skip_counted_ = wave;
        NT_TRACE(tracer_, IncrCounter("tusk/skipped_leaders"));
      }
      continue;  // Insufficient support; a later wave may order it by path.
    }
    if (!CommitChain(wave, *leader)) {
      break;  // Deferred on missing headers; retried via OnHeaderStored.
    }
  }
}

bool Tusk::CommitChain(uint64_t wave, const Certificate& leader) {
  const Dag& dag = primary_->dag();

  // Ensure the anchor's entire causal history is locally complete before
  // deciding anything: HasPath below must not mistake a missing header for a
  // missing path, or we could skip a leader another validator committed
  // (the paper's "conservative synchronization").
  {
    Dag::History full = dag.CollectCausalHistory(leader.header_digest, committed_);
    if (!full.missing.empty()) {
      for (const Digest& missing : full.missing) {
        primary_->SyncHeader(missing);
      }
      return false;
    }
  }

  // Walk back through skipped waves: order any earlier leader that the
  // current candidate can reach (it may have been committed by others).
  std::vector<const Certificate*> chain{&leader};
  const Certificate* candidate = &leader;
  for (uint64_t i = wave - 1; i > last_committed_wave_ && i > 0; --i) {
    const Certificate* li = LeaderCert(i);
    if (li == nullptr || committed_.count(li->header_digest) != 0) {
      continue;
    }
    if (dag.HasPath(candidate->header_digest, li->header_digest)) {
      chain.push_back(li);
      candidate = li;
    }
  }
  std::reverse(chain.begin(), chain.end());

  // First pass: ensure every history is locally complete; request any gaps
  // and defer (the paper's "conservative synchronization").
  std::set<Digest> virtual_committed = committed_;
  std::vector<std::pair<const Certificate*, Dag::History>> histories;
  for (const Certificate* lead : chain) {
    Dag::History history = dag.CollectCausalHistory(lead->header_digest, virtual_committed);
    if (!history.missing.empty()) {
      for (const Digest& missing : history.missing) {
        primary_->SyncHeader(missing);
      }
      return false;
    }
    for (const Digest& d : history.ordered) {
      virtual_committed.insert(d);
    }
    histories.emplace_back(lead, std::move(history));
  }

  // Second pass: deliver.
  for (auto& [lead, history] : histories) {
    for (const Digest& digest : history.ordered) {
      auto header = dag.GetHeader(digest);
      // Write-ahead: the commit record is durable before any hook (metrics,
      // executor, checker) observes the delivery.
      PersistCommit(digest, header->round);
      committed_.insert(digest);
      committed_by_round_[header->round].push_back(digest);
      ++committed_count_;
      primary_->NotifyCommitted(*header);
      if (!on_commit_hooks_.empty()) {
        Committed out;
        out.digest = digest;
        out.header = header;
        out.wave = wave;
        out.leader_round = lead->round;
        for (const auto& hook : on_commit_hooks_) {
          hook(out);
        }
      }
    }
  }
  last_committed_wave_ = wave;
  PersistMeta();
  NT_TRACE(tracer_, IncrCounter("tusk/committed_waves"));

  // Advance the garbage-collection horizon relative to the last committed
  // leader round (paper §3.3).
  Round leader_round = WaveFirstRound(wave);
  if (leader_round > gc_depth_) {
    Round gc_round = leader_round - gc_depth_;
    primary_->SetGcRound(gc_round);
    PruneCommitted(gc_round);
  }
  return true;
}

void Tusk::PruneCommitted(Round gc_round) {
  for (auto it = committed_by_round_.begin();
       it != committed_by_round_.end() && it->first < gc_round;) {
    for (const Digest& d : it->second) {
      committed_.erase(d);
      if (store_ != nullptr) {
        store_->Erase(TuskCommitKey(d));
      }
    }
    it = committed_by_round_.erase(it);
  }
}

}  // namespace nt
