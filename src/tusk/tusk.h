// Tusk (paper §5): zero-message-overhead asynchronous consensus over the
// local Narwhal DAG.
//
// The DAG is divided into waves of 3 rounds, with the third round of wave w
// piggybacked as the first round of wave w+1 — so wave w occupies rounds
// (2w-1, 2w, 2w+1). When the third round completes locally, the shared coin
// reveals the wave's leader L; the leader block is L's certificate at round
// 2w-1. It commits if at least f+1 certified round-2w blocks reference it.
// Committed leaders are chained backwards through skipped waves by DAG-path
// reachability (Lemma 1 guarantees agreement), and each leader's causal
// history is linearized by the deterministic rule shared with Narwhal-HS.
#ifndef SRC_TUSK_TUSK_H_
#define SRC_TUSK_TUSK_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/crypto/coin.h"
#include "src/narwhal/primary.h"

namespace nt {

class Tusk {
 public:
  struct Committed {
    Digest digest{};
    std::shared_ptr<const BlockHeader> header;
    // The wave and leader round that anchored this commit.
    uint64_t wave = 0;
    Round leader_round = 0;
  };

  Tusk(Primary* primary, const Committee& committee, const ThresholdCoin* coin, Round gc_depth);

  // Registers a delivery callback: fired once per committed header, in total
  // order. Multiple listeners may register (metrics, applications, tests).
  void add_on_commit(std::function<void(const Committed&)> hook) {
    on_commit_hooks_.push_back(std::move(hook));
  }

  // Attaches the durable consensus store (non-owning; null = ephemeral).
  // Commit records are write-ahead persisted so a recovered validator never
  // re-delivers a header it committed pre-crash.
  void set_store(Store* store) { store_ = store; }

  // Restores the committed set and wave cursor from the store. Call after
  // the primary's own Recover() (GC filtering reads its horizon) and before
  // hooks fire; recovery itself delivers nothing. Re-notifies the primary
  // of committed headers still in the DAG so batch re-injection bookkeeping
  // survives the crash too.
  void Recover();

  // Re-evaluates the commit rule over the recovered DAG (post-rejoin
  // counterpart of the certificate hooks, which only fire on new arrivals).
  void Resume() { TryCommit(); }

  // Wire these to the primary's hooks (done by Tusk's constructor).
  void OnCertificate(const Certificate& cert);
  void OnHeaderStored(const Digest& digest);

  // Attaches the cluster's tracer (counters only; per-header commit stamps
  // come from Primary::NotifyCommitted).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  uint64_t last_committed_wave() const { return last_committed_wave_; }
  uint64_t committed_headers() const { return committed_count_; }
  uint64_t skipped_leaders() const { return skipped_leaders_; }

  // First round of wave w (w >= 1), with third-round piggybacking.
  static Round WaveFirstRound(uint64_t wave) { return 2 * wave - 1; }
  static Round WaveSecondRound(uint64_t wave) { return 2 * wave; }
  static Round WaveThirdRound(uint64_t wave) { return 2 * wave + 1; }

 private:
  bool WaveComplete(uint64_t wave) const;
  const Certificate* LeaderCert(uint64_t wave) const;
  bool CommitRuleSatisfied(uint64_t wave, const Certificate& leader) const;
  // Commits the leader chain ending at wave `wave`. Returns false if the
  // commit had to be deferred on missing headers (sync requested).
  bool CommitChain(uint64_t wave, const Certificate& leader);
  void TryCommit();
  void PruneCommitted(Round gc_round);
  void PersistCommit(const Digest& digest, Round round);
  void PersistMeta();

  Primary* primary_;
  const Committee& committee_;
  const ThresholdCoin* coin_;
  Round gc_depth_;
  Tracer* tracer_ = nullptr;

  Store* store_ = nullptr;
  uint64_t last_committed_wave_ = 0;
  std::set<Digest> committed_;
  std::map<Round, std::vector<Digest>> committed_by_round_;
  uint64_t committed_count_ = 0;
  uint64_t skipped_leaders_ = 0;
  uint64_t last_skip_counted_ = 0;

  std::vector<std::function<void(const Committed&)>> on_commit_hooks_;
};

}  // namespace nt

#endif  // SRC_TUSK_TUSK_H_
