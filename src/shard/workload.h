// Accounts/transfer workload for the sharded execution lanes: a fixed
// population of accounts mined onto specific lanes (ShardRouter::MineAccount)
// so the cross-shard ratio is exact, with zipf key skew and a hot-key
// contention knob. Pure and deterministic given the caller's Rng — the load
// generator draws from it, the DST checker and benchmarks replay it.
#ifndef SRC_SHARD_WORKLOAD_H_
#define SRC_SHARD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/exec/state_machine.h"
#include "src/shard/router.h"

namespace nt {

struct TransferWorkloadConfig {
  uint32_t num_shards = 1;
  uint32_t accounts_per_shard = 64;
  // Probability a transfer crosses lanes (exact in expectation; 0 with a
  // single lane regardless).
  double cross_ratio = 0.0;
  // Zipf exponent for account selection within a lane: 0 = uniform, higher
  // values concentrate traffic on low-index accounts.
  double zipf_theta = 0.0;
  // Probability the source account is the lane's hottest (index 0) account,
  // on top of the zipf draw — models pathological contention.
  double hot_ratio = 0.0;
  // Funded per account up front, so rejects stay rare under sustained load.
  uint64_t initial_balance = 1000000000;
  uint64_t amount = 1;
};

class TransferWorkload {
 public:
  explicit TransferWorkload(TransferWorkloadConfig config);

  const TransferWorkloadConfig& config() const { return config_; }

  // One kMint per account, in lane-major order. Submit these before the
  // transfer stream starts.
  std::vector<Bytes> InitialMints() const;

  // Draws one encoded transfer. `nonce` is folded into the wire bytes (the
  // ExecTx value field) so repeated draws of a hot pair stay distinct through
  // worker-level dedup.
  Bytes NextTransfer(Rng& rng, uint64_t nonce) const;

  const std::string& account(ShardId shard, uint32_t index) const {
    return accounts_[shard][index];
  }

 private:
  uint32_t PickIndex(Rng& rng) const;

  TransferWorkloadConfig config_;
  std::vector<std::vector<std::string>> accounts_;  // [shard][index], mined.
  std::vector<double> cdf_;  // Zipf CDF over account indices within a lane.
};

}  // namespace nt

#endif  // SRC_SHARD_WORKLOAD_H_
