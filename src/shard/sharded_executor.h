// Sharded execution over the committed header sequence — the scale-out
// execution stage the paper defers (§8.4). The key space is partitioned into
// S lanes per validator (ShardRouter), each backed by its own KvStateMachine.
// Single-shard transactions apply to their lane in encounter order (the fast
// path: lanes never synchronize for them). Cross-shard transfers are deferred
// to the commit boundary of their header and sequenced there by a
// deterministic two-phase apply — lock (funds check + debit) at the source
// lane, then credit at the destination lane — with both epochs derived purely
// from commit order, so every validator computes identical per-lane digest
// chains without any extra consensus.
//
// A cross-shard transfer spends only balances established before its commit
// boundary: locks within one boundary see the lane state left by that
// header's single-shard transactions, never the credits of sibling
// cross-shard transfers that lock later in the same boundary.
#ifndef SRC_SHARD_SHARDED_EXECUTOR_H_
#define SRC_SHARD_SHARDED_EXECUTOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/trace.h"
#include "src/exec/executor.h"
#include "src/exec/state_machine.h"
#include "src/shard/router.h"
#include "src/sim/scheduler.h"
#include "src/types/types.h"

namespace nt {

class ShardedExecutor {
 public:
  // Same contract as Executor::BatchSource: nullptr while the batch data has
  // not arrived at this validator yet.
  using BatchSource = Executor::BatchSource;

  ShardedExecutor(uint32_t num_lanes, BatchSource source);

  // Feed committed headers in commit order. Headers whose batch data is
  // missing queue until RetryPending(), exactly like the single-lane
  // Executor: execution order never deviates from commit order.
  void OnCommittedHeader(std::shared_ptr<const BlockHeader> header);
  void RetryPending() { Drain(); }

  void set_tracer(Tracer* tracer, ValidatorId validator, Scheduler* scheduler) {
    tracer_ = tracer;
    validator_ = validator;
    scheduler_ = scheduler;
  }

  // Fired after each header finishes executing (all lanes advanced, cross-
  // shard boundary processed) with the header digest and every lane's chained
  // state digest — the DST harness compares these vectors across validators.
  void set_on_executed(
      std::function<void(const Digest& header_digest, const std::vector<Digest>& lane_digests)>
          hook) {
    on_executed_ = std::move(hook);
  }

  uint32_t num_lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  const KvStateMachine& lane(ShardId s) const { return lanes_[s]; }
  const ShardRouter& router() const { return router_; }
  std::vector<Digest> LaneDigests() const;

  uint64_t executed_headers() const { return executed_headers_; }
  size_t pending_headers() const { return queue_.size(); }
  // Outcome counters summed over lanes. A cross-shard transfer counts once,
  // at its source lane (the lock decides the outcome).
  uint64_t applied_txs() const;
  uint64_t rejected_txs() const;
  // Cross-shard transfers sequenced at commit boundaries so far.
  uint64_t cross_shard_txs() const { return cross_shard_txs_; }
  // Conservation-of-balance accounting across all lanes: with honest
  // execution Σ lane balances == Σ minted supply at every commit boundary.
  uint64_t minted_total() const;
  uint64_t total_balance() const;

 private:
  void Drain();
  void ExecuteHeader(const std::vector<std::shared_ptr<const Batch>>& batches);

  ShardRouter router_;
  std::vector<KvStateMachine> lanes_;
  BatchSource source_;
  std::deque<std::shared_ptr<const BlockHeader>> queue_;
  uint64_t executed_headers_ = 0;
  uint64_t cross_shard_txs_ = 0;
  std::function<void(const Digest&, const std::vector<Digest>&)> on_executed_;
  Tracer* tracer_ = nullptr;
  ValidatorId validator_ = 0;
  Scheduler* scheduler_ = nullptr;
};

}  // namespace nt

#endif  // SRC_SHARD_SHARDED_EXECUTOR_H_
