#include "src/shard/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/codec.h"

namespace nt {

TransferWorkload::TransferWorkload(TransferWorkloadConfig config) : config_(config) {
  if (config_.num_shards == 0) {
    config_.num_shards = 1;
  }
  if (config_.accounts_per_shard < 2) {
    config_.accounts_per_shard = 2;  // A transfer needs two distinct accounts.
  }
  accounts_.resize(config_.num_shards);
  for (ShardId s = 0; s < config_.num_shards; ++s) {
    accounts_[s].reserve(config_.accounts_per_shard);
    for (uint32_t i = 0; i < config_.accounts_per_shard; ++i) {
      accounts_[s].push_back(ShardRouter::MineAccount(
          "acct-s" + std::to_string(s) + "-" + std::to_string(i), s, config_.num_shards));
    }
  }
  cdf_.reserve(config_.accounts_per_shard);
  double total = 0;
  for (uint32_t i = 0; i < config_.accounts_per_shard; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_theta);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) {
    c /= total;
  }
}

std::vector<Bytes> TransferWorkload::InitialMints() const {
  std::vector<Bytes> mints;
  mints.reserve(static_cast<size_t>(config_.num_shards) * config_.accounts_per_shard);
  for (const std::vector<std::string>& lane : accounts_) {
    for (const std::string& name : lane) {
      mints.push_back(ExecTx::Mint(name, config_.initial_balance).Encode());
    }
  }
  return mints;
}

uint32_t TransferWorkload::PickIndex(Rng& rng) const {
  if (config_.hot_ratio > 0 && rng.NextDouble() < config_.hot_ratio) {
    return 0;  // The lane's hottest account.
  }
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return config_.accounts_per_shard - 1;
  }
  return static_cast<uint32_t>(it - cdf_.begin());
}

Bytes TransferWorkload::NextTransfer(Rng& rng, uint64_t nonce) const {
  bool cross = config_.num_shards > 1 && config_.cross_ratio > 0 &&
               rng.NextDouble() < config_.cross_ratio;
  ShardId src = static_cast<ShardId>(rng.NextBelow(config_.num_shards));
  ShardId dst = src;
  if (cross) {
    dst = static_cast<ShardId>((src + 1 + rng.NextBelow(config_.num_shards - 1)) %
                               config_.num_shards);
  }
  uint32_t from = PickIndex(rng);
  uint32_t to = PickIndex(rng);
  if (dst == src && to == from) {
    // Self-transfers are semantically valid but tell the invariants nothing;
    // shift to the next account in the lane.
    to = (to + 1) % config_.accounts_per_shard;
  }
  ExecTx tx = ExecTx::Transfer(accounts_[src][from], accounts_[dst][to], config_.amount);
  Writer w;
  w.PutU64(nonce);
  tx.value = w.Take();
  return tx.Encode();
}

}  // namespace nt
