#include "src/shard/sharded_executor.h"

#include "src/common/seeded_bugs.h"

namespace nt {

ShardedExecutor::ShardedExecutor(uint32_t num_lanes, BatchSource source)
    : router_(num_lanes), lanes_(router_.num_shards()), source_(std::move(source)) {}

void ShardedExecutor::OnCommittedHeader(std::shared_ptr<const BlockHeader> header) {
  queue_.push_back(std::move(header));
  Drain();
}

std::vector<Digest> ShardedExecutor::LaneDigests() const {
  std::vector<Digest> out;
  out.reserve(lanes_.size());
  for (const KvStateMachine& lane : lanes_) {
    out.push_back(lane.state_digest());
  }
  return out;
}

uint64_t ShardedExecutor::applied_txs() const {
  uint64_t total = 0;
  for (const KvStateMachine& lane : lanes_) {
    total += lane.applied();
  }
  return total;
}

uint64_t ShardedExecutor::rejected_txs() const {
  uint64_t total = 0;
  for (const KvStateMachine& lane : lanes_) {
    total += lane.rejected();
  }
  return total;
}

uint64_t ShardedExecutor::minted_total() const {
  uint64_t total = 0;
  for (const KvStateMachine& lane : lanes_) {
    total += lane.minted();
  }
  return total;
}

uint64_t ShardedExecutor::total_balance() const {
  uint64_t total = 0;
  for (const KvStateMachine& lane : lanes_) {
    total += lane.total_balance();
  }
  return total;
}

void ShardedExecutor::Drain() {
  while (!queue_.empty()) {
    const std::shared_ptr<const BlockHeader>& header = queue_.front();
    // All batches must be available before any lane advances — partial
    // execution would fork replicas that receive data in different orders.
    std::vector<std::shared_ptr<const Batch>> batches;
    batches.reserve(header->batches.size());
    bool complete = true;
    for (const BatchRef& ref : header->batches) {
      std::shared_ptr<const Batch> batch = source_(ref);
      if (batch == nullptr) {
        complete = false;
        break;
      }
      batches.push_back(std::move(batch));
    }
    if (!complete) {
      return;  // Strict order: wait for data, retry later.
    }
    ExecuteHeader(batches);
    ++executed_headers_;
    if (tracer_ != nullptr && scheduler_ != nullptr) {
      tracer_->OnExecuted(validator_, header->ComputeDigest(), scheduler_->now());
    }
    if (on_executed_) {
      on_executed_(header->ComputeDigest(), LaneDigests());
    }
    queue_.pop_front();
  }
}

void ShardedExecutor::ExecuteHeader(const std::vector<std::shared_ptr<const Batch>>& batches) {
  // Pass 1 — lane-local fast path, in encounter order. Cross-shard transfers
  // are deferred (still in encounter order) to the commit boundary below.
  std::vector<std::pair<const Bytes*, ExecTx>> cross;
  for (const auto& batch : batches) {
    for (const Bytes& wire : batch->txs) {
      std::optional<ExecTx> tx = ExecTx::Decode(wire);
      if (!tx.has_value()) {
        // Malformed bytes have no key to route by; lane 0 records the reject
        // so the outcome still lands in exactly one digest chain.
        lanes_[0].Apply(wire);
        continue;
      }
      if (tx->op == ExecTx::Op::kTransfer) {
        ShardId src = router_.Of(tx->key);
        ShardId dst = router_.Of(tx->key2);
        if (src != dst) {
          cross.emplace_back(&wire, std::move(*tx));
          continue;
        }
        lanes_[src].Apply(wire);
        continue;
      }
      // kPut/kDelete/kMint route by their key; kNoop has an empty key and
      // deterministically lands wherever "" routes.
      lanes_[router_.Of(tx->key)].Apply(wire);
    }
  }
  // Pass 2 — commit boundary: deterministic two-phase apply of the deferred
  // cross-shard transfers, sequenced in encounter order. The lock epoch runs
  // per transfer (debit at the source lane decides the outcome) and only a
  // successful lock credits the destination lane, so a transfer can spend
  // single-shard state from its own header but never a sibling cross-shard
  // credit from the same boundary.
  for (const auto& [wire, tx] : cross) {
    ++cross_shard_txs_;
    ShardId src = router_.Of(tx.key);
    ShardId dst = router_.Of(tx.key2);
    bool locked;
    if (seeded_bugs::skip_cross_shard_lock) {
      // Seeded bug: the lock epoch (funds check + source debit) is skipped
      // outright and the credit applies unconditionally — supply inflates.
      locked = true;
    } else {
      locked = lanes_[src].LockDebit(*wire, tx) == ExecStatus::kApplied;
    }
    if (locked) {
      lanes_[dst].ApplyCredit(*wire, tx);
    }
  }
}

}  // namespace nt
