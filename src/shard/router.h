// Deterministic key-space partitioning for the sharded execution lanes: a
// key's lane is a pure function of its bytes and the lane count, so every
// validator routes every transaction identically without any coordination.
#ifndef SRC_SHARD_ROUTER_H_
#define SRC_SHARD_ROUTER_H_

#include <string>
#include <string_view>

#include "src/types/committee.h"

namespace nt {

class ShardRouter {
 public:
  explicit ShardRouter(uint32_t num_shards) : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  uint32_t num_shards() const { return num_shards_; }

  ShardId Of(std::string_view key) const { return Route(key, num_shards_); }

  // Stable across platforms and runs: FNV-1a over the key bytes, reduced
  // modulo the lane count.
  static ShardId Route(std::string_view key, uint32_t num_shards);

  // Smallest-nonce account name "<prefix>.<nonce>" that routes to `shard` —
  // workload generators use this to hit an exact cross-shard ratio instead of
  // whatever ratio hashing random names happens to produce. Expected
  // `num_shards` probes.
  static std::string MineAccount(const std::string& prefix, ShardId shard, uint32_t num_shards);

 private:
  uint32_t num_shards_;
};

}  // namespace nt

#endif  // SRC_SHARD_ROUTER_H_
