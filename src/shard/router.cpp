#include "src/shard/router.h"

namespace nt {

ShardId ShardRouter::Route(std::string_view key, uint32_t num_shards) {
  if (num_shards <= 1) {
    return 0;
  }
  uint64_t h = 14695981039346656037ull;
  for (char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<ShardId>(h % num_shards);
}

std::string ShardRouter::MineAccount(const std::string& prefix, ShardId shard,
                                     uint32_t num_shards) {
  for (uint64_t nonce = 0;; ++nonce) {
    std::string name = prefix + "." + std::to_string(nonce);
    if (Route(name, num_shards) == shard) {
      return name;
    }
  }
}

}  // namespace nt
