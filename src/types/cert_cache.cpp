#include "src/types/cert_cache.h"

namespace nt {

VerifiedCertCache::VerifiedCertCache(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

bool VerifiedCertCache::Lookup(const Digest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return true;
}

void VerifiedCertCache::Insert(const Digest& key, uint64_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  if (round < gc_round_) {
    return;  // Below the horizon: would be evicted immediately.
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->round = round;
    return;
  }
  lru_.push_front(Entry{key, round});
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.lru_evictions;
  }
}

void VerifiedCertCache::OnGcRound(uint64_t gc_round) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gc_round <= gc_round_) {
    return;
  }
  gc_round_ = gc_round;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->round < gc_round_) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.gc_evictions;
    } else {
      ++it;
    }
  }
}

size_t VerifiedCertCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

VerifiedCertCache::Stats VerifiedCertCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void VerifiedCertCache::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void VerifiedCertCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_ = Stats{};
  gc_round_ = 0;
}

VerifiedCertCache& VerifiedCertCache::Narwhal() {
  static VerifiedCertCache cache;
  return cache;
}

VerifiedCertCache& VerifiedCertCache::HotStuff() {
  static VerifiedCertCache cache;
  return cache;
}

VerifiedCertCache::Stats VerifiedCertCache::Combined() {
  Stats a = Narwhal().stats();
  Stats b = HotStuff().stats();
  Stats out;
  out.hits = a.hits + b.hits;
  out.misses = a.misses + b.misses;
  out.insertions = a.insertions + b.insertions;
  out.lru_evictions = a.lru_evictions + b.lru_evictions;
  out.gc_evictions = a.gc_evictions + b.gc_evictions;
  return out;
}

}  // namespace nt
