// Network message wrappers for the Narwhal protocol (primary-to-primary,
// worker-to-worker, and the local primary<->worker channel), plus the pull
// synchronizer's request/response pairs (paper §4.1).
#ifndef SRC_TYPES_MESSAGES_H_
#define SRC_TYPES_MESSAGES_H_

#include <memory>
#include <utility>

#include "src/net/message.h"
#include "src/types/types.h"

namespace nt {

// Worker -> worker: bulk batch dissemination.
struct MsgBatch : Message {
  std::shared_ptr<const Batch> batch;
  Digest digest{};  // Precomputed Batch::ComputeDigest().

  MsgBatch(std::shared_ptr<const Batch> b, const Digest& d) : batch(std::move(b)), digest(d) {}
  size_t WireSize() const override { return batch->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatch; }
};

// Worker -> worker: storage acknowledgment for a batch.
struct MsgBatchAck : Message {
  Digest digest{};
  WorkerId worker = 0;

  MsgBatchAck(const Digest& d, WorkerId w) : digest(d), worker(w) {}
  size_t WireSize() const override { return 32 + 4; }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatchAck; }
};

// Worker -> its own primary: a batch reached a quorum of workers and may be
// included in the next header.
struct MsgBatchReady : Message {
  BatchRef ref{};

  explicit MsgBatchReady(const BatchRef& r) : ref(r) {}
  size_t WireSize() const override { return 32 + 4 + 8 + 8; }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatchReady; }
};

// Primary -> its own worker: another validator's header references a batch
// this worker should hold; fetch it if missing.
struct MsgFetchBatch : Message {
  Digest digest{};
  ValidatorId batch_author = 0;
  WorkerId worker = 0;

  MsgFetchBatch(const Digest& d, ValidatorId a, WorkerId w)
      : digest(d), batch_author(a), worker(w) {}
  size_t WireSize() const override { return 32 + 4 + 4; }
  MessageTypeId TypeId() const override { return MessageTypeId::kFetchBatch; }
};

// Worker -> its own primary: confirmation that a batch is stored locally.
struct MsgBatchStored : Message {
  Digest digest{};

  explicit MsgBatchStored(const Digest& d) : digest(d) {}
  size_t WireSize() const override { return 32; }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatchStored; }
};

// Primary -> primary: a proposed header (reliable-broadcast "send" phase).
struct MsgHeader : Message {
  std::shared_ptr<const BlockHeader> header;
  Digest digest{};  // Precomputed ComputeDigest().

  MsgHeader(std::shared_ptr<const BlockHeader> h, const Digest& d)
      : header(std::move(h)), digest(d) {}
  size_t WireSize() const override { return header->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kHeader; }
};

// Primary -> primary: a vote (signed acknowledgment) on a header.
struct MsgVote : Message {
  Vote vote{};

  explicit MsgVote(const Vote& v) : vote(v) {}
  size_t WireSize() const override { return vote.WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kVote; }
};

// Primary -> primary: a freshly assembled certificate of availability.
struct MsgCertificate : Message {
  Certificate cert{};

  explicit MsgCertificate(Certificate c) : cert(std::move(c)) {}
  size_t WireSize() const override { return cert.WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kCertificate; }
};

// Primary -> primary: pull request for a missing certified block (the DoS-
// resistant pull strategy of §4.1). The responder returns the certificate
// and its header.
struct MsgCertRequest : Message {
  Digest digest{};

  explicit MsgCertRequest(const Digest& d) : digest(d) {}
  size_t WireSize() const override { return 32; }
  MessageTypeId TypeId() const override { return MessageTypeId::kCertRequest; }
};

struct MsgCertResponse : Message {
  Certificate cert{};
  std::shared_ptr<const BlockHeader> header;

  MsgCertResponse(Certificate c, std::shared_ptr<const BlockHeader> h)
      : cert(std::move(c)), header(std::move(h)) {}
  size_t WireSize() const override { return cert.WireSize() + header->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kCertResponse; }
};

// Worker -> worker: pull request for a missing batch.
struct MsgBatchRequest : Message {
  Digest digest{};

  explicit MsgBatchRequest(const Digest& d) : digest(d) {}
  size_t WireSize() const override { return 32; }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatchRequest; }
};

struct MsgBatchResponse : Message {
  std::shared_ptr<const Batch> batch;
  Digest digest{};

  MsgBatchResponse(std::shared_ptr<const Batch> b, const Digest& d)
      : batch(std::move(b)), digest(d) {}
  size_t WireSize() const override { return batch->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kBatchResponse; }
};

}  // namespace nt

#endif  // SRC_TYPES_MESSAGES_H_
