// Committee configuration: the identities, public keys, and quorum
// thresholds of the n validators (f < n/3 may be faulty).
#ifndef SRC_TYPES_COMMITTEE_H_
#define SRC_TYPES_COMMITTEE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/crypto/signer.h"

namespace nt {

using ValidatorId = uint32_t;
using WorkerId = uint32_t;
// Execution lane within a validator (src/shard/): the key space is
// partitioned into `num_shards` lanes, each backed by its own state machine.
using ShardId = uint32_t;
using Round = uint64_t;

struct ValidatorInfo {
  PublicKey key{};
  // Region index used by the latency model (WanRegion for WAN runs).
  uint32_t region = 0;
};

class Committee {
 public:
  Committee() { ComputeFingerprint(); }
  explicit Committee(std::vector<ValidatorInfo> validators)
      : validators_(std::move(validators)) {
    ComputeFingerprint();
  }

  uint32_t size() const { return static_cast<uint32_t>(validators_.size()); }

  // The blessed home of all quorum arithmetic. Every threshold in the tree
  // routes through these helpers (or the instance methods below, which
  // delegate) — enforced by ntlint rule R3 (quorum-arith), so a typo'd
  // literal like `2*f` elsewhere is a build failure, not a latent safety bug.

  // Maximum number of Byzantine validators tolerated: f = floor((n-1)/3).
  static constexpr uint32_t MaxFaultyFor(uint32_t n) { return (n - 1) / 3; }

  // 2f+1 — certificates of availability, round advancement.
  static constexpr uint32_t QuorumThresholdFor(uint32_t n) {
    return 2 * MaxFaultyFor(n) + 1;
  }

  // f+1 — guaranteed to include one honest validator (Tusk commit rule).
  static constexpr uint32_t ValidityThresholdFor(uint32_t n) {
    return MaxFaultyFor(n) + 1;
  }

  uint32_t f() const { return MaxFaultyFor(size()); }
  uint32_t quorum_threshold() const { return QuorumThresholdFor(size()); }
  uint32_t validity_threshold() const { return ValidityThresholdFor(size()); }

  const ValidatorInfo& validator(ValidatorId id) const { return validators_[id]; }
  const PublicKey& key_of(ValidatorId id) const { return validators_[id].key; }

  std::optional<ValidatorId> IndexOf(const PublicKey& key) const {
    for (uint32_t i = 0; i < size(); ++i) {
      if (validators_[i].key == key) {
        return i;
      }
    }
    return std::nullopt;
  }

  bool Contains(ValidatorId id) const { return id < size(); }

  // Stable digest of the membership (all public keys, in id order). Part of
  // the verified-certificate cache key, so a cached verification can never
  // leak between committees that happen to share certificate bytes.
  // Computed eagerly at construction: fingerprint() must stay a pure read so
  // concurrent readers (the cache is mutex-guarded, the committee is not)
  // never see a torn digest.
  const Digest& fingerprint() const { return fingerprint_; }

 private:
  void ComputeFingerprint() {
    Sha256 h;
    h.Update("nt-committee");
    for (const ValidatorInfo& v : validators_) {
      h.Update(v.key.data(), v.key.size());
    }
    fingerprint_ = h.Finalize();
  }

  std::vector<ValidatorInfo> validators_;
  Digest fingerprint_{};
};

}  // namespace nt

#endif  // SRC_TYPES_COMMITTEE_H_
