#include "src/types/types.h"

#include <algorithm>
#include <set>

#include "src/common/seeded_bugs.h"
#include "src/types/cert_cache.h"

namespace nt {
namespace {

// Fixed wire-size contributions (bytes). Signatures are 64, digests 32.
constexpr size_t kSigSize = 64;
constexpr size_t kDigestSize = 32;

// Cache key: committee fingerprint + the full certificate encoding (vote set
// included), so distinct vote assemblies for the same header are distinct
// entries.
Digest CertCacheKey(const Committee& committee, const Certificate& cert) {
  Writer w;
  w.PutString("nt-cert-cache");
  w.PutRaw(committee.fingerprint());
  cert.Encode(w);
  return Sha256::Hash(w.bytes());
}

// Quorum size, distinct known voters — everything except signatures.
bool CertStructureOk(const Committee& committee, const Certificate& cert) {
  // Honest threshold is 2f+1; the seeded accept_2f_certs mutation accepts 2f
  // (breaks quorum intersection — see src/common/seeded_bugs.h).
  // ntlint:allow(quorum-arith): deliberate seeded mutation — 2f (not 2f+1) breaks quorum intersection to mutation-test the DST harness
  uint32_t threshold = seeded_bugs::accept_2f_certs ? std::max(1u, 2 * committee.f())
                                                    : committee.quorum_threshold();
  if (cert.votes.size() < threshold) {
    return false;
  }
  std::set<ValidatorId> seen;
  for (const auto& [voter, sig] : cert.votes) {
    (void)sig;
    if (!committee.Contains(voter) || !seen.insert(voter).second) {
      return false;  // Unknown or duplicate voter.
    }
  }
  return true;
}

}  // namespace

// -------------------------------------------------------------------- Batch

void Batch::Encode(Writer& w) const {
  w.PutU32(author);
  w.PutU32(worker);
  w.PutU64(seq);
  w.PutU64(num_txs);
  w.PutU64(payload_bytes);
  w.PutU32(static_cast<uint32_t>(samples.size()));
  for (const TxSample& s : samples) {
    w.PutU64(s.tx_id);
    w.PutI64(s.submit_time);
  }
  w.PutU32(static_cast<uint32_t>(txs.size()));
  for (const Bytes& tx : txs) {
    w.PutVar(tx);
  }
}

std::optional<Batch> Batch::Decode(Reader& r) {
  Batch b;
  b.author = r.GetU32();
  b.worker = r.GetU32();
  b.seq = r.GetU64();
  b.num_txs = r.GetU64();
  b.payload_bytes = r.GetU64();
  uint32_t n_samples = r.GetU32();
  for (uint32_t i = 0; i < n_samples && r.ok(); ++i) {
    TxSample s;
    s.tx_id = r.GetU64();
    s.submit_time = r.GetI64();
    b.samples.push_back(s);
  }
  uint32_t n_txs = r.GetU32();
  for (uint32_t i = 0; i < n_txs && r.ok(); ++i) {
    b.txs.push_back(r.GetVar());
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return b;
}

Digest Batch::ComputeDigest() const {
  Writer w;
  w.PutString("narwhal-batch");
  Encode(w);
  return Sha256::Hash(w.bytes());
}

size_t Batch::WireSize() const {
  // Aggregate payload bytes already include explicit tx bytes when callers
  // keep the invariant; avoid double counting by taking the max.
  size_t explicit_bytes = 0;
  for (const Bytes& tx : txs) {
    explicit_bytes += tx.size() + 4;
  }
  return 32 + samples.size() * 16 + std::max<size_t>(payload_bytes, explicit_bytes);
}

// ----------------------------------------------------------------- BatchRef

void BatchRef::Encode(Writer& w) const {
  w.PutRaw(digest);
  w.PutU32(worker);
  w.PutU64(num_txs);
  w.PutU64(payload_bytes);
}

BatchRef BatchRef::Decode(Reader& r) {
  BatchRef b;
  b.digest = r.GetArray<32>();
  b.worker = r.GetU32();
  b.num_txs = r.GetU64();
  b.payload_bytes = r.GetU64();
  return b;
}

// -------------------------------------------------------------- Certificate

Bytes Certificate::VotePreimage(const Digest& header_digest, Round round, ValidatorId author) {
  Writer w;
  w.PutString("narwhal-vote");
  w.PutRaw(header_digest);
  w.PutU64(round);
  w.PutU32(author);
  return w.Take();
}

void Certificate::Encode(Writer& w) const {
  w.PutRaw(header_digest);
  w.PutU64(round);
  w.PutU32(author);
  w.PutU32(static_cast<uint32_t>(votes.size()));
  for (const auto& [voter, sig] : votes) {
    w.PutU32(voter);
    w.PutRaw(sig);
  }
}

std::optional<Certificate> Certificate::Decode(Reader& r) {
  Certificate c;
  c.header_digest = r.GetArray<32>();
  c.round = r.GetU64();
  c.author = r.GetU32();
  uint32_t n = r.GetU32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ValidatorId voter = r.GetU32();
    Signature sig = r.GetArray<64>();
    c.votes.emplace_back(voter, sig);
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return c;
}

bool Certificate::Verify(const Committee& committee, const Signer& verifier,
                         VerifiedCertCache* cache_override) const {
  if (!CertStructureOk(committee, *this)) {
    return false;
  }
  VerifiedCertCache& cache =
      cache_override != nullptr ? *cache_override : VerifiedCertCache::Narwhal();
  Digest key = CertCacheKey(committee, *this);
  if (cache.Lookup(key)) {
    return true;
  }
  BatchVerifier batch(verifier);
  Bytes preimage = VotePreimage(header_digest, round, author);
  for (const auto& [voter, sig] : votes) {
    batch.Queue(committee.key_of(voter), preimage, sig);
  }
  if (!batch.FlushAllValid()) {
    return false;
  }
  cache.Insert(key, round);
  return true;
}

bool Certificate::VerifyAll(const std::vector<Certificate>& certs, const Committee& committee,
                            const Signer& verifier, VerifiedCertCache* cache_override) {
  VerifiedCertCache& cache =
      cache_override != nullptr ? *cache_override : VerifiedCertCache::Narwhal();
  bool all_valid = true;
  // One flush covers the uncached certificates' votes; vote counts per
  // certificate let the results map back so each certificate gets an
  // independent verdict (and cache entry).
  BatchVerifier batch(verifier);
  struct PendingCert {
    const Certificate* cert;
    Digest key;
    size_t first_vote;
    size_t num_votes;
  };
  std::vector<PendingCert> pending;
  for (const Certificate& cert : certs) {
    if (!CertStructureOk(committee, cert)) {
      all_valid = false;
      continue;
    }
    Digest key = CertCacheKey(committee, cert);
    if (cache.Lookup(key)) {
      continue;
    }
    PendingCert p{&cert, key, batch.pending(), cert.votes.size()};
    Bytes preimage = VotePreimage(cert.header_digest, cert.round, cert.author);
    for (const auto& [voter, sig] : cert.votes) {
      batch.Queue(committee.key_of(voter), preimage, sig);
    }
    pending.push_back(p);
  }
  std::vector<bool> ok = batch.Flush();
  for (const PendingCert& p : pending) {
    bool cert_ok = true;
    for (size_t i = 0; i < p.num_votes; ++i) {
      if (!ok[p.first_vote + i]) {
        cert_ok = false;
        break;
      }
    }
    if (cert_ok) {
      cache.Insert(p.key, p.cert->round);
    } else {
      all_valid = false;
    }
  }
  return all_valid;
}

size_t Certificate::WireSize() const {
  return kDigestSize + 8 + 4 + 4 + votes.size() * (4 + kSigSize);
}

// -------------------------------------------------------------- BlockHeader

Digest BlockHeader::ComputeDigest() const {
  Writer w;
  w.PutString("narwhal-header");
  w.PutU32(author);
  w.PutU64(round);
  w.PutU32(static_cast<uint32_t>(batches.size()));
  for (const BatchRef& b : batches) {
    b.Encode(w);
  }
  w.PutU32(static_cast<uint32_t>(parents.size()));
  for (const Certificate& c : parents) {
    // Identify parents by (digest, round, author) — not by their vote sets.
    w.PutRaw(c.header_digest);
    w.PutU64(c.round);
    w.PutU32(c.author);
  }
  return Sha256::Hash(w.bytes());
}

void BlockHeader::Encode(Writer& w) const {
  w.PutU32(author);
  w.PutU64(round);
  w.PutU32(static_cast<uint32_t>(batches.size()));
  for (const BatchRef& b : batches) {
    b.Encode(w);
  }
  w.PutU32(static_cast<uint32_t>(parents.size()));
  for (const Certificate& c : parents) {
    c.Encode(w);
  }
  w.PutRaw(author_sig);
}

std::optional<BlockHeader> BlockHeader::Decode(Reader& r) {
  BlockHeader h;
  h.author = r.GetU32();
  h.round = r.GetU64();
  uint32_t n_batches = r.GetU32();
  for (uint32_t i = 0; i < n_batches && r.ok(); ++i) {
    h.batches.push_back(BatchRef::Decode(r));
  }
  uint32_t n_parents = r.GetU32();
  for (uint32_t i = 0; i < n_parents && r.ok(); ++i) {
    auto c = Certificate::Decode(r);
    if (!c.has_value()) {
      return std::nullopt;
    }
    h.parents.push_back(std::move(*c));
  }
  h.author_sig = r.GetArray<64>();
  if (!r.ok()) {
    return std::nullopt;
  }
  return h;
}

size_t BlockHeader::WireSize() const {
  size_t size = 4 + 8 + 4 + 4 + kSigSize;
  size += batches.size() * (kDigestSize + 4 + 8 + 8);
  for (const Certificate& c : parents) {
    size += c.WireSize();
  }
  return size;
}

// --------------------------------------------------------------------- Vote

void Vote::Encode(Writer& w) const {
  w.PutRaw(header_digest);
  w.PutU64(round);
  w.PutU32(author);
  w.PutU32(voter);
  w.PutRaw(sig);
}

std::optional<Vote> Vote::Decode(Reader& r) {
  Vote v;
  v.header_digest = r.GetArray<32>();
  v.round = r.GetU64();
  v.author = r.GetU32();
  v.voter = r.GetU32();
  v.sig = r.GetArray<64>();
  if (!r.ok()) {
    return std::nullopt;
  }
  return v;
}

bool Vote::Verify(const Committee& committee, const Signer& verifier) const {
  if (!committee.Contains(voter) || !committee.Contains(author)) {
    return false;
  }
  Bytes preimage = Certificate::VotePreimage(header_digest, round, author);
  return verifier.Verify(committee.key_of(voter), preimage, sig);
}

size_t Vote::WireSize() const { return kDigestSize + 8 + 4 + 4 + kSigSize; }

}  // namespace nt
