// Per-validator cache of certificates whose signature sets have already been
// verified. Quorum certificates are re-delivered constantly — the same
// Narwhal certificate arrives via its own broadcast, as a parent inside the
// next round's headers, and again inside HotStuff proposals — and each
// delivery used to re-verify 2f+1 signatures. Caching by content digest
// makes every route after the first free.
//
// Each protocol node (Primary, HotStuff, LightClient) owns its own instance:
// the simulator runs every validator in one process, and a shared cache
// would let validator i skip verification because validator j already did it
// — work no real deployment could share. The static Narwhal()/HotStuff()
// instances are process-wide *defaults* for tools and tests that verify
// certificates outside any node.
//
// Only *positive* results are cached (a certificate that failed to verify is
// simply re-checked), and the key covers the committee fingerprint plus the
// full certificate encoding including its vote set, so an entry can never
// vouch for different signatures or a different committee.
//
// The cache is bounded (LRU) and garbage-collection aware: once the DAG's GC
// horizon passes a round, certificates below it can no longer be presented
// for verification, so their entries are dropped eagerly.
#ifndef SRC_TYPES_CERT_CACHE_H_
#define SRC_TYPES_CERT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>

#include "src/crypto/hash.h"

namespace nt {

class VerifiedCertCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t lru_evictions = 0;
    uint64_t gc_evictions = 0;
  };

  static constexpr size_t kDefaultCapacity = 8192;

  explicit VerifiedCertCache(size_t capacity = kDefaultCapacity);

  // True iff `key` was inserted earlier and has not been evicted. Counts a
  // hit or a miss and refreshes the entry's LRU position on hit.
  bool Lookup(const Digest& key);

  // Records a verified certificate. `round` is the GC dimension (Narwhal
  // round or HotStuff view); entries below the observed GC horizon are not
  // admitted.
  void Insert(const Digest& key, uint64_t round);

  // Advances the GC horizon (monotone) and evicts entries below it.
  void OnGcRound(uint64_t gc_round);

  size_t size() const;
  Stats stats() const;
  void ResetStats();
  void Clear();  // Drops entries, stats, and the GC horizon (tests).

  // Process-wide default instances for callers not tied to a simulated
  // validator (tools, tests, the Mempool facade): one keyed by Narwhal
  // rounds, one by HotStuff views (their GC horizons advance independently).
  // Protocol nodes use their own per-instance caches instead.
  static VerifiedCertCache& Narwhal();
  static VerifiedCertCache& HotStuff();
  // Aggregate stats across both default instances (metrics surfacing).
  static Stats Combined();

 private:
  struct Entry {
    Digest key{};
    uint64_t round = 0;
  };
  // ntlint:allow(nondet): guards tool/test access to the static default instances; protocol nodes own per-instance caches and never contend
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t gc_round_ = 0;
  std::list<Entry> lru_;  // Front = most recently used.
  // Ordered so GC sweeps (which iterate) visit entries in digest order, a
  // deterministic order regardless of insertion history or hash seeding.
  std::map<Digest, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace nt

#endif  // SRC_TYPES_CERT_CACHE_H_
