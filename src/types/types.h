// Core Narwhal data types (paper §3.1): worker batches, primary block
// headers, votes, and certificates of availability — plus canonical
// encodings used for digests and signatures.
#ifndef SRC_TYPES_TYPES_H_
#define SRC_TYPES_TYPES_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/codec.h"
#include "src/common/time.h"
#include "src/crypto/hash.h"
#include "src/crypto/signer.h"
#include "src/net/message.h"
#include "src/types/committee.h"

namespace nt {

class VerifiedCertCache;

// A sampled transaction used for end-to-end latency measurement: the paper
// measures latency "by tracking sample transactions throughout the system".
struct TxSample {
  uint64_t tx_id = 0;
  TimePoint submit_time = 0;
};

// A worker batch: the unit of bulk transaction dissemination (paper §4.2).
//
// Transactions are carried in two forms that may be mixed:
//  - `txs`: explicit transaction payloads (examples, integration tests);
//  - `num_txs`/`payload_bytes` aggregates: the benchmark workload counts
//    transactions without materializing 512 bytes each, exactly like the
//    paper's load generator accounts for submitted load. `num_txs` and
//    `payload_bytes` always cover the explicit transactions too.
struct Batch {
  ValidatorId author = 0;
  WorkerId worker = 0;
  uint64_t seq = 0;  // Per-(author, worker) sequence number.
  uint64_t num_txs = 0;
  uint64_t payload_bytes = 0;
  std::vector<TxSample> samples;
  std::vector<Bytes> txs;

  // Canonical encoding; the digest is SHA-256 over it.
  void Encode(Writer& w) const;
  static std::optional<Batch> Decode(Reader& r);
  Digest ComputeDigest() const;

  // Bytes on the wire: the payload plus framing; sample metadata rides in
  // the batch (16 bytes each).
  size_t WireSize() const;
};

// Reference to a batch inside a primary block header.
struct BatchRef {
  Digest digest{};
  WorkerId worker = 0;
  uint64_t num_txs = 0;
  uint64_t payload_bytes = 0;

  void Encode(Writer& w) const;
  static BatchRef Decode(Reader& r);

  bool operator==(const BatchRef& other) const = default;
};

// A certificate of availability: 2f+1 signed acknowledgments that a header
// (and the batches it references) is stored by a quorum (paper §3.1, §4.1).
struct Certificate {
  Digest header_digest{};
  Round round = 0;
  ValidatorId author = 0;
  // (voter, signature over the vote pre-image), sorted by voter id.
  std::vector<std::pair<ValidatorId, Signature>> votes;

  // The certificate certifies the header; its identity is the header digest.
  const Digest& digest() const { return header_digest; }

  // Pre-image each voter signs: (header_digest, round, author).
  static Bytes VotePreimage(const Digest& header_digest, Round round, ValidatorId author);

  void Encode(Writer& w) const;
  static std::optional<Certificate> Decode(Reader& r);

  // Structural + cryptographic validity: >= 2f+1 distinct known voters whose
  // signatures verify. `verifier` supplies the scheme. Signatures are checked
  // through the signer's batch kernel, and a positive result is memoized in
  // `cache`, so re-deliveries of the same certificate (broadcast, header
  // parent, consensus payload) verify once. Protocol nodes pass their own
  // per-validator cache — every simulated validator must do its own crypto
  // work, as a real deployment would; nullptr falls back to the process-wide
  // default instance (VerifiedCertCache::Narwhal()) for tools and tests.
  bool Verify(const Committee& committee, const Signer& verifier,
              VerifiedCertCache* cache = nullptr) const;

  // Verifies many certificates with a single batched flush across all their
  // uncached vote signatures — the bulk entry point for header-parent sets
  // and certificate payloads. Returns true iff every certificate is valid;
  // each valid certificate lands in the cache (so per-certificate Verify
  // calls that follow are hits) even when some other certificate fails.
  // `cache` as in Verify.
  static bool VerifyAll(const std::vector<Certificate>& certs, const Committee& committee,
                        const Signer& verifier, VerifiedCertCache* cache = nullptr);

  size_t WireSize() const;
};

// A primary block header (paper Fig. 2): the DAG vertex. References this
// validator's fresh worker batches and >= 2f+1 certificates from the
// previous round (none at round 0).
struct BlockHeader {
  ValidatorId author = 0;
  Round round = 0;
  std::vector<BatchRef> batches;
  std::vector<Certificate> parents;
  Signature author_sig{};  // Over ComputeDigest().

  // Digest covers author, round, batch refs, and parent identities (not the
  // parents' vote sets — two headers differing only in how a parent
  // certificate was assembled are the same block).
  Digest ComputeDigest() const;

  void Encode(Writer& w) const;
  static std::optional<BlockHeader> Decode(Reader& r);

  size_t WireSize() const;

  uint64_t TotalTxs() const {
    uint64_t total = 0;
    for (const BatchRef& b : batches) {
      total += b.num_txs;
    }
    return total;
  }
  uint64_t TotalPayloadBytes() const {
    uint64_t total = 0;
    for (const BatchRef& b : batches) {
      total += b.payload_bytes;
    }
    return total;
  }
};

// A vote on a header: the acknowledgment of storage that counts toward a
// certificate of availability.
struct Vote {
  Digest header_digest{};
  Round round = 0;
  ValidatorId author = 0;  // Header author.
  ValidatorId voter = 0;
  Signature sig{};

  void Encode(Writer& w) const;
  static std::optional<Vote> Decode(Reader& r);

  bool Verify(const Committee& committee, const Signer& verifier) const;

  size_t WireSize() const;
};

}  // namespace nt

#endif  // SRC_TYPES_TYPES_H_
