#include "src/net/faults.h"

#include <algorithm>

namespace nt {

TimePoint FaultController::EarliestReachable(uint32_t a, uint32_t b, TimePoint when) const {
  TimePoint t = when;
  // Iterate until neither endpoint is isolated at t. Windows are few, so the
  // simple fixed-point loop is fine.
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t node : {a, b}) {
      auto it = isolations_.find(node);
      if (it == isolations_.end()) {
        continue;
      }
      for (const Window& w : it->second) {
        if (t >= w.start && t < w.end) {
          t = w.end;
          changed = true;
        }
      }
    }
  }
  return t;
}

}  // namespace nt
