// Fault injection for the simulated network: crash faults, node isolation
// (partitions), random message loss, and asynchrony windows that inflate
// latencies. The controller is queried by the Network on every send.
#ifndef SRC_NET_FAULTS_H_
#define SRC_NET_FAULTS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "src/common/time.h"

namespace nt {

class FaultController {
 public:
  // --- crash faults ---------------------------------------------------------

  // Node stops sending and receiving from `when` on. Permanent unless a
  // later RecoverAt bounds the outage.
  void CrashAt(uint32_t node, TimePoint when) { crash_times_[node] = when; }

  // Bounds a previously scheduled crash: the node is down during
  // [crash, recover) and participates again from `recover` on. The runtime
  // pairs this with tearing down and rebuilding the node's protocol objects
  // from their stores at the recovery instant (Cluster::RestartValidator) —
  // the FaultController only gates message flow. One crash window per node:
  // a second CrashAt/RecoverAt pair overwrites the first.
  void RecoverAt(uint32_t node, TimePoint when) { recover_times_[node] = when; }

  bool IsCrashed(uint32_t node, TimePoint now) const {
    auto it = crash_times_.find(node);
    if (it == crash_times_.end() || now < it->second) {
      return false;
    }
    auto rec = recover_times_.find(node);
    return rec == recover_times_.end() || now < rec->second;
  }

  // --- partitions -----------------------------------------------------------

  // Node is cut off from everyone during [start, end). Messages in flight to
  // or from it during the window are deferred to the heal time (modeling TCP
  // retransmission after reconnect).
  void Isolate(uint32_t node, TimePoint start, TimePoint end) {
    isolations_[node].push_back({start, end});
  }

  // If either endpoint is isolated at `when`, returns the earliest time at
  // which both are reachable again (kNever if a window never closes).
  // Returns `when` itself when no partition applies.
  TimePoint EarliestReachable(uint32_t a, uint32_t b, TimePoint when) const;

  // --- asynchrony windows ----------------------------------------------------

  // During [start, end), all propagation delays are multiplied by `factor`.
  // Models the periods of asynchrony the paper's robustness claims address.
  void AddAsynchronyWindow(TimePoint start, TimePoint end, double factor) {
    async_windows_.push_back({start, end, factor});
  }

  // Overlapping windows take the worst single factor rather than the
  // product: each window models one degraded condition, and compounding
  // them produces unboundedly long in-flight tails that no finite
  // post-window recovery period could absorb.
  double LatencyFactor(TimePoint when) const {
    double factor = 1.0;
    for (const auto& w : async_windows_) {
      if (when >= w.start && when < w.end) {
        factor = std::max(factor, w.factor);
      }
    }
    return factor;
  }

  // --- Byzantine equivocation -------------------------------------------------

  // From `when` on, the validator behaves Byzantine when proposing: each
  // header it would propose is instead sent as two conflicting versions to
  // disjoint halves of the committee. Unlike the other hooks this is keyed
  // by *validator* id, not network node id — it is consulted by the
  // validator's own Primary at propose time (the FaultController itself
  // never touches message contents).
  void MarkEquivocator(uint32_t validator, TimePoint when) { equivocators_[validator] = when; }

  bool IsEquivocator(uint32_t validator, TimePoint now) const {
    auto it = equivocators_.find(validator);
    return it != equivocators_.end() && now >= it->second;
  }

  // --- random loss -----------------------------------------------------------

  // Probability that any given message is silently dropped.
  void SetLossRate(double p) { loss_rate_ = p; }
  double loss_rate() const { return loss_rate_; }

  bool AnyFaultsConfigured() const {
    return !crash_times_.empty() || !isolations_.empty() || !async_windows_.empty() ||
           !equivocators_.empty() || loss_rate_ > 0;
  }

 private:
  struct Window {
    TimePoint start;
    TimePoint end;
  };
  struct AsyncWindow {
    TimePoint start;
    TimePoint end;
    double factor;
  };

  // Ordered: fault state is part of the deterministic-replay surface, and an
  // ordered map keeps any iteration over it independent of hash seeding.
  std::map<uint32_t, TimePoint> crash_times_;
  std::map<uint32_t, TimePoint> recover_times_;
  std::map<uint32_t, TimePoint> equivocators_;
  std::map<uint32_t, std::vector<Window>> isolations_;
  std::vector<AsyncWindow> async_windows_;
  double loss_rate_ = 0.0;
};

}  // namespace nt

#endif  // SRC_NET_FAULTS_H_
