#include "src/net/latency.h"

#include <algorithm>

namespace nt {
namespace {

// One-way mean delays in milliseconds between the paper's five AWS regions,
// derived from public inter-region RTT measurements (RTT / 2).
constexpr double kOneWayMs[kWanRegionCount][kWanRegionCount] = {
    //            us-east  us-west  sydney  stockholm  tokyo
    /* us-east */ {0.25,    31.0,    100.0,  56.0,      73.0},
    /* us-west */ {31.0,    0.25,    70.0,   85.0,      55.0},
    /* sydney  */ {100.0,   70.0,    0.25,   150.0,     52.0},
    /* sthlm   */ {56.0,    85.0,    150.0,  0.25,      125.0},
    /* tokyo   */ {73.0,    55.0,    52.0,   125.0,     0.25},
};

}  // namespace

WanLatencyModel::WanLatencyModel() {
  for (uint32_t i = 0; i < kWanRegionCount; ++i) {
    for (uint32_t j = 0; j < kWanRegionCount; ++j) {
      base_[i][j] = static_cast<TimeDelta>(kOneWayMs[i][j] * 1000.0);
    }
  }
}

TimeDelta WanLatencyModel::Mean(uint32_t src_region, uint32_t dst_region) const {
  return base_[src_region % kWanRegionCount][dst_region % kWanRegionCount];
}

TimeDelta WanLatencyModel::Sample(uint32_t src_region, uint32_t dst_region, Rng& rng) const {
  double base = static_cast<double>(Mean(src_region, dst_region));
  // Multiplicative jitter in [0.95, 1.10) plus a light exponential tail.
  double jittered = base * rng.NextDouble(0.95, 1.10) + rng.NextExponential(base * 0.02);
  return std::max<TimeDelta>(Micros(10), static_cast<TimeDelta>(jittered));
}

}  // namespace nt
