// The simulated network fabric.
//
// Models the two resources the paper's analysis identifies as decisive:
//   1. per-machine access bandwidth — every machine has full-duplex FIFO
//      egress/ingress queues draining at a configurable rate (10 Gbps by
//      default, the paper's m5.8xlarge NIC), so a leader broadcasting a
//      large block serializes behind its own NIC, and
//   2. propagation latency — a pluggable LatencyModel (WAN matrix by
//      default).
//
// Delivery per (src machine, dst machine) pair is FIFO, modeling TCP
// streams. The FaultController injects crashes, partitions (in-flight
// messages are deferred to the heal time, modeling TCP retransmission),
// asynchrony windows, and random loss.
//
// Hot-path state is flat and index-addressed: machine queues live in a
// dense vector by machine id, the per-(src,dst) FIFO clamp is a dense
// node×node matrix, and per-type accounting indexes a fixed array by
// MessageTypeId — no hashing, no tree walks, no string construction per
// send. All of it is deterministic by construction: iteration surfaces are
// plain arrays in index order.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/net/faults.h"
#include "src/net/latency.h"
#include "src/net/message.h"
#include "src/sim/scheduler.h"

namespace nt {

struct NetworkConfig {
  // Full-duplex NIC rate per machine, bits per second.
  double bandwidth_bps = 10e9;
  // Data-path service rate per machine, bytes/second: deserialization,
  // hashing, and persistence of received payloads. This — not the NIC — is
  // what saturates first on the paper's testbed (one worker peaks around
  // 140k tx/s of 512 B ≈ 72 MB/s), and what makes extra worker machines
  // scale throughput linearly.
  double processing_Bps = 75e6;
  // Messages smaller than this skip the processing queue (metadata traffic:
  // votes, acks, certificates — cheap relative to bulk payload).
  size_t processing_min_bytes = 4096;
  // Delivery delay between nodes on the same machine (primary <-> collocated
  // worker IPC).
  TimeDelta local_delivery = Micros(100);
  // Fixed framing overhead added to every message's wire size.
  size_t per_message_overhead = 64;
};

class Network {
 public:
  Network(Scheduler* scheduler, const LatencyModel* latency, FaultController* faults,
          NetworkConfig config, uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Allocates a fresh machine id (its own NIC).
  uint32_t NewMachine() {
    machines_.resize(next_machine_ + 1);
    return next_machine_++;
  }

  // Registers a node. Returns its global node id.
  uint32_t AddNode(NetNode* node, uint32_t region, uint32_t machine);

  // Swaps the object behind an existing node id (validator restart: the old
  // protocol object is destroyed and a recovered one takes its place).
  // In-flight deliveries resolve the node pointer at fire time, so they
  // reach the replacement; region/machine/queues/FIFO clamps are unchanged
  // — the machine, not the process, owns the NIC.
  void ReplaceNode(uint32_t id, NetNode* node) { nodes_[id].node = node; }

  // Invokes OnStart on every node (at the current simulated time).
  void Start();

  // Sends `msg` from `src` to `dst`. Never blocks; delivery is scheduled.
  void Send(uint32_t src, uint32_t dst, MessagePtr msg);

  size_t node_count() const { return nodes_.size(); }
  uint32_t region_of(uint32_t node) const { return nodes_[node].region; }
  uint32_t machine_of(uint32_t node) const { return nodes_[node].machine; }

  bool IsCrashed(uint32_t node) const {
    return faults_ != nullptr && faults_->IsCrashed(node, scheduler_->now());
  }

  Scheduler* scheduler() const { return scheduler_; }
  FaultController* faults() const { return faults_; }

  // --- statistics -----------------------------------------------------------
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  // Per-message-type traffic: quantifies the paper's §1 observation that
  // bulk transaction data dwarfs consensus metadata. Accounted by
  // MessageTypeId on the send path; names are resolved here, at report
  // time, and the result is name-ordered (deterministic iteration).
  struct TypeStats {
    uint64_t messages = 0;
    uint64_t bytes = 0;
  };
  std::map<std::string, TypeStats> type_stats() const;

  // --- tracing gauges -------------------------------------------------------
  // Outstanding egress-queue backlog of `machine` in microseconds of NIC time
  // (0 when the NIC is idle at `now`).
  TimeDelta EgressBacklog(uint32_t machine, TimePoint now) const {
    if (machine >= machines_.size() || machines_[machine].egress_free_at <= now) {
      return 0;
    }
    return machines_[machine].egress_free_at - now;
  }
  // Cumulative microseconds machine's NIC egress has spent transmitting.
  TimeDelta EgressBusyUs(uint32_t machine) const {
    return machine < machines_.size() ? machines_[machine].egress_busy_us : 0;
  }
  uint32_t machine_count() const { return next_machine_; }

 private:
  struct NodeSlot {
    NetNode* node;
    uint32_t region;
    uint32_t machine;
  };
  struct MachineState {
    TimePoint egress_free_at = 0;
    TimePoint ingress_free_at = 0;
    TimePoint processing_free_at = 0;
    TimeDelta egress_busy_us = 0;  // Total NIC transmit time accumulated.
  };

  TimeDelta TransmitTime(size_t bytes) const {
    // Memoized on the last wire size: traffic is dominated by a handful of
    // fixed message sizes, so this skips the FP division on nearly every
    // send while producing bit-identical values.
    if (bytes != tx_memo_bytes_) {
      tx_memo_bytes_ = bytes;
      tx_memo_time_ =
          static_cast<TimeDelta>(static_cast<double>(bytes) * 8.0 / config_.bandwidth_bps * 1e6);
    }
    return tx_memo_time_;
  }

  Scheduler* scheduler_;
  const LatencyModel* latency_;
  FaultController* faults_;  // May be null (fault-free run).
  NetworkConfig config_;
  mutable Rng rng_;
  mutable size_t tx_memo_bytes_ = ~size_t{0};
  mutable TimeDelta tx_memo_time_ = 0;

  std::vector<NodeSlot> nodes_;
  // Dense by machine id; NewMachine/AddNode keep it sized to next_machine_.
  std::vector<MachineState> machines_;
  // FIFO clamp per (src node, dst node) — one TCP stream per pair — as a
  // dense row-major matrix indexed src * node_count + dst. Grown (and
  // re-laid-out) by AddNode; topologies are a few hundred nodes, so the
  // matrix is a couple of MB at paper scale (n=50 × 11 machines).
  std::vector<TimePoint> last_delivery_;
  uint32_t next_machine_ = 0;

  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  std::array<TypeStats, kMessageTypeCount> type_stats_{};
};

}  // namespace nt

#endif  // SRC_NET_NETWORK_H_
