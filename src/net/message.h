// Typed message envelope for the simulated network. Protocol messages derive
// from Message and report their wire size so bandwidth queues can account
// for them without materializing byte buffers on every hop.
#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace nt {

// Stable identity for every concrete message type in the tree. Per-type
// traffic accounting indexes a flat array by this id on the send hot path;
// human-readable names are resolved only at report time (MessageTypeName).
// Order is append-only: ids are part of the benchmark/trace surface.
enum class MessageTypeId : uint8_t {
  kBatch = 0,
  kBatchAck,
  kBatchReady,
  kFetchBatch,
  kBatchStored,
  kHeader,
  kVote,
  kCertificate,
  kCertRequest,
  kCertResponse,
  kBatchRequest,
  kBatchResponse,
  kHsProposal,
  kHsVote,
  kHsTimeout,
  kHsBlockRequest,
  kHsBlockResponse,
  kGossipTxs,
  // Ad-hoc traffic from tests and benchmarks.
  kTest,
  kCount,
};

inline constexpr size_t kMessageTypeCount = static_cast<size_t>(MessageTypeId::kCount);

// Short stable display name for a type id ("Batch", "Vote", ...).
const char* MessageTypeName(MessageTypeId id);

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes, used for transmission-delay accounting. Must
  // match what the canonical codec would produce (checked in tests for the
  // protocol types).
  virtual size_t WireSize() const = 0;

  // Stable type id for per-type statistics; cheaper than a name on the send
  // hot path.
  virtual MessageTypeId TypeId() const = 0;

  // Short stable name for logs, resolved from the id registry.
  const char* TypeName() const { return MessageTypeName(TypeId()); }
};

// Messages are immutable once sent; a broadcast shares one allocation.
using MessagePtr = std::shared_ptr<const Message>;

// A network endpoint. Nodes never block; they react to deliveries and
// timers scheduled on the shared Scheduler.
class NetNode {
 public:
  virtual ~NetNode() = default;

  // Called when a message is delivered to this node.
  virtual void OnMessage(uint32_t from, const MessagePtr& msg) = 0;

  // Called once when the simulation starts.
  virtual void OnStart() {}
};

}  // namespace nt

#endif  // SRC_NET_MESSAGE_H_
