// Typed message envelope for the simulated network. Protocol messages derive
// from Message and report their wire size so bandwidth queues can account
// for them without materializing byte buffers on every hop.
#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <memory>

namespace nt {

class Message {
 public:
  virtual ~Message() = default;

  // Serialized size in bytes, used for transmission-delay accounting. Must
  // match what the canonical codec would produce (checked in tests for the
  // protocol types).
  virtual size_t WireSize() const = 0;

  // Short stable name for logs and per-type statistics.
  virtual const char* TypeName() const = 0;
};

// Messages are immutable once sent; a broadcast shares one allocation.
using MessagePtr = std::shared_ptr<const Message>;

// A network endpoint. Nodes never block; they react to deliveries and
// timers scheduled on the shared Scheduler.
class NetNode {
 public:
  virtual ~NetNode() = default;

  // Called when a message is delivered to this node.
  virtual void OnMessage(uint32_t from, const MessagePtr& msg) = 0;

  // Called once when the simulation starts.
  virtual void OnStart() {}
};

}  // namespace nt

#endif  // SRC_NET_MESSAGE_H_
