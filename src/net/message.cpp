#include "src/net/message.h"

namespace nt {

const char* MessageTypeName(MessageTypeId id) {
  switch (id) {
    case MessageTypeId::kBatch:
      return "Batch";
    case MessageTypeId::kBatchAck:
      return "BatchAck";
    case MessageTypeId::kBatchReady:
      return "BatchReady";
    case MessageTypeId::kFetchBatch:
      return "FetchBatch";
    case MessageTypeId::kBatchStored:
      return "BatchStored";
    case MessageTypeId::kHeader:
      return "Header";
    case MessageTypeId::kVote:
      return "Vote";
    case MessageTypeId::kCertificate:
      return "Certificate";
    case MessageTypeId::kCertRequest:
      return "CertRequest";
    case MessageTypeId::kCertResponse:
      return "CertResponse";
    case MessageTypeId::kBatchRequest:
      return "BatchRequest";
    case MessageTypeId::kBatchResponse:
      return "BatchResponse";
    case MessageTypeId::kHsProposal:
      return "HsProposal";
    case MessageTypeId::kHsVote:
      return "HsVote";
    case MessageTypeId::kHsTimeout:
      return "HsTimeout";
    case MessageTypeId::kHsBlockRequest:
      return "HsBlockRequest";
    case MessageTypeId::kHsBlockResponse:
      return "HsBlockResponse";
    case MessageTypeId::kGossipTxs:
      return "GossipTxs";
    case MessageTypeId::kTest:
      return "Test";
    case MessageTypeId::kCount:
      break;
  }
  return "Unknown";
}

}  // namespace nt
