// Propagation-latency models for the simulated network.
//
// The paper's testbed spans five AWS regions; WanLatencyModel reproduces that
// geography with a one-way delay matrix close to public inter-region
// measurements plus per-message jitter. Uniform and fixed models support
// protocol tests that need controlled randomness or exact determinism.
#ifndef SRC_NET_LATENCY_H_
#define SRC_NET_LATENCY_H_

#include <array>
#include <cstdint>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace nt {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // One-way propagation delay for a message from `src_region` to
  // `dst_region`. May consult `rng` for jitter.
  virtual TimeDelta Sample(uint32_t src_region, uint32_t dst_region, Rng& rng) const = 0;
};

// The paper's five regions.
enum WanRegion : uint32_t {
  kUsEast1 = 0,      // N. Virginia
  kUsWest1 = 1,      // N. California
  kApSoutheast2 = 2, // Sydney
  kEuNorth1 = 3,     // Stockholm
  kApNortheast1 = 4, // Tokyo
  kWanRegionCount = 5,
};

// Inter-region one-way delays with multiplicative jitter and an exponential
// tail, mimicking measured WAN behaviour.
class WanLatencyModel : public LatencyModel {
 public:
  WanLatencyModel();

  TimeDelta Sample(uint32_t src_region, uint32_t dst_region, Rng& rng) const override;

  // Mean one-way delay between two regions (no jitter), for analysis.
  TimeDelta Mean(uint32_t src_region, uint32_t dst_region) const;

 private:
  std::array<std::array<TimeDelta, kWanRegionCount>, kWanRegionCount> base_;
};

// Uniformly random delay in [lo, hi] regardless of regions — the "random
// message delays" network of the paper's Lemma 5 analysis.
class UniformLatencyModel : public LatencyModel {
 public:
  UniformLatencyModel(TimeDelta lo, TimeDelta hi) : lo_(lo), hi_(hi) {}

  TimeDelta Sample(uint32_t, uint32_t, Rng& rng) const override {
    return lo_ + static_cast<TimeDelta>(rng.NextDouble() * static_cast<double>(hi_ - lo_));
  }

 private:
  TimeDelta lo_;
  TimeDelta hi_;
};

// Exact constant delay — for tests that assert precise event timing.
class FixedLatencyModel : public LatencyModel {
 public:
  explicit FixedLatencyModel(TimeDelta d) : delay_(d) {}

  TimeDelta Sample(uint32_t, uint32_t, Rng&) const override { return delay_; }

 private:
  TimeDelta delay_;
};

}  // namespace nt

#endif  // SRC_NET_LATENCY_H_
