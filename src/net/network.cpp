#include "src/net/network.h"

#include <algorithm>

#include "src/common/logging.h"

namespace nt {

Network::Network(Scheduler* scheduler, const LatencyModel* latency, FaultController* faults,
                 NetworkConfig config, uint64_t seed)
    : scheduler_(scheduler),
      latency_(latency),
      faults_(faults),
      config_(config),
      rng_(Rng::Derive(seed, "network")) {}

uint32_t Network::AddNode(NetNode* node, uint32_t region, uint32_t machine) {
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(NodeSlot{node, region, machine});
  next_machine_ = std::max(next_machine_, machine + 1);
  machines_.resize(next_machine_);
  // Re-lay-out the FIFO matrix for the new dimension, preserving the clamp
  // already accumulated for existing pairs (nodes are normally all added
  // before traffic starts, so this is setup-time work).
  const size_t old_n = id;
  const size_t new_n = old_n + 1;
  std::vector<TimePoint> grown(new_n * new_n, 0);
  for (size_t s = 0; s < old_n; ++s) {
    for (size_t d = 0; d < old_n; ++d) {
      grown[s * new_n + d] = last_delivery_[s * old_n + d];
    }
  }
  last_delivery_ = std::move(grown);
  return id;
}

void Network::Start() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!IsCrashed(static_cast<uint32_t>(i))) {
      nodes_[i].node->OnStart();
    }
  }
}

std::map<std::string, Network::TypeStats> Network::type_stats() const {
  std::map<std::string, TypeStats> named;
  for (size_t i = 0; i < kMessageTypeCount; ++i) {
    const TypeStats& s = type_stats_[i];
    if (s.messages != 0) {
      named[MessageTypeName(static_cast<MessageTypeId>(i))] = s;
    }
  }
  return named;
}

void Network::Send(uint32_t src, uint32_t dst, MessagePtr msg) {
  const TimePoint now = scheduler_->now();
  if (faults_ != nullptr && faults_->IsCrashed(src, now)) {
    ++messages_dropped_;
    return;
  }
  const bool local = nodes_[src].machine == nodes_[dst].machine;
  if (!local && faults_ != nullptr && faults_->loss_rate() > 0 &&
      rng_.NextBool(faults_->loss_rate())) {
    ++messages_dropped_;
    return;
  }

  const size_t wire = msg->WireSize() + config_.per_message_overhead;
  ++messages_sent_;
  bytes_sent_ += wire;
  TypeStats& per_type = type_stats_[static_cast<size_t>(msg->TypeId())];
  ++per_type.messages;
  per_type.bytes += wire;

  TimePoint deliver_at;
  if (local) {
    deliver_at = now + config_.local_delivery;
  } else {
    // Egress queue of the source machine: serialize onto the NIC.
    MachineState& src_machine = machines_[nodes_[src].machine];
    TimePoint tx_start = std::max(now, src_machine.egress_free_at);
    TimePoint tx_end = tx_start + TransmitTime(wire);
    src_machine.egress_free_at = tx_end;
    src_machine.egress_busy_us += tx_end - tx_start;

    // Propagation, scaled by any asynchrony window active at transmit time.
    double factor = faults_ != nullptr ? faults_->LatencyFactor(tx_start) : 1.0;
    TimeDelta prop = static_cast<TimeDelta>(
        static_cast<double>(latency_->Sample(nodes_[src].region, nodes_[dst].region, rng_)) *
        factor);
    TimePoint arrival = tx_end + prop;

    // Partitions: a message caught in a partition is retransmitted when the
    // partition heals (TCP semantics), with a fresh propagation delay.
    if (faults_ != nullptr) {
      TimePoint reachable = faults_->EarliestReachable(src, dst, arrival);
      if (reachable != arrival) {
        arrival = reachable + latency_->Sample(nodes_[src].region, nodes_[dst].region, rng_);
      }
    }

    // Ingress queue of the destination machine.
    MachineState& dst_machine = machines_[nodes_[dst].machine];
    TimePoint rx_start = std::max(arrival, dst_machine.ingress_free_at);
    deliver_at = rx_start + TransmitTime(wire);
    dst_machine.ingress_free_at = deliver_at;

    // Data-path processing (deserialize + hash + persist) for bulk payloads:
    // a serial per-machine resource that saturates before the NIC.
    if (wire >= config_.processing_min_bytes && config_.processing_Bps > 0) {
      TimePoint proc_start = std::max(deliver_at, dst_machine.processing_free_at);
      deliver_at = proc_start + static_cast<TimeDelta>(static_cast<double>(wire) /
                                                       config_.processing_Bps * 1e6);
      dst_machine.processing_free_at = deliver_at;
    }
  }

  // Each node pair is its own TCP stream: in-order delivery per pair, but no
  // head-of-line blocking between, say, a worker's batch stream and its
  // collocated primary's header stream.
  TimePoint& last = last_delivery_[static_cast<size_t>(src) * nodes_.size() + dst];
  deliver_at = std::max(deliver_at, last + 1);
  last = deliver_at;

  scheduler_->ScheduleAt(deliver_at, [this, src, dst, msg = std::move(msg)] {
    if (faults_ != nullptr && faults_->IsCrashed(dst, scheduler_->now())) {
      ++messages_dropped_;
      return;
    }
    ++messages_delivered_;
    nodes_[dst].node->OnMessage(src, msg);
  });
}

}  // namespace nt
