// Greedy schedule minimizer: given a failing FaultSchedule, repeatedly tries
// simplifying transformations (drop a fault, zero the loss rate, narrow a
// window, shrink the committee) and keeps any simplification that still
// fails the checker, until a fixed point or the run budget is exhausted.
// The result is what gets written to a repro file and checked into
// tests/seeds/regressions.txt.
#ifndef SRC_CHECK_SHRINKER_H_
#define SRC_CHECK_SHRINKER_H_

#include "src/check/checker.h"
#include "src/check/schedule.h"

namespace nt {

struct ShrinkResult {
  FaultSchedule schedule;   // The minimized still-failing schedule.
  CheckResult verdict;      // Checker output for `schedule`.
  uint32_t runs = 0;        // Checker invocations spent shrinking.
};

// `schedule` must fail RunSchedule (the caller already observed a failure;
// Shrink re-verifies before doing anything and returns it unchanged if the
// failure does not reproduce). `max_runs` bounds the total checker runs.
ShrinkResult Shrink(const FaultSchedule& schedule, uint32_t max_runs = 200);

}  // namespace nt

#endif  // SRC_CHECK_SHRINKER_H_
