// Fault schedules for the deterministic simulation-testing (DST) harness.
//
// A FaultSchedule is a complete, self-contained description of one fuzzed
// experiment: committee size, run length, workload rate, the full fault
// script (crashes, partition windows, asynchrony windows, message loss,
// Byzantine equivocators), and any seeded-bug flags (mutation testing). The
// ScheduleGenerator draws one deterministically from a seed; Encode/Decode
// round-trip a schedule through the text repro format `ntcheck --replay`
// consumes, so a shrunk failure replays bit-for-bit from a checked-in file.
#ifndef SRC_CHECK_SCHEDULE_H_
#define SRC_CHECK_SCHEDULE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/runtime/cluster.h"
#include "src/types/types.h"

namespace nt {

struct FaultSchedule {
  uint64_t seed = 1;
  SystemKind system = SystemKind::kTusk;  // kTusk, kNarwhalHs, or kBullshark.
  uint32_t validators = 4;
  TimeDelta duration = Seconds(12);

  // A crash is permanent when recover_at == 0; otherwise the validator is
  // down for [at, recover_at) and then rebuilt from its durable stores
  // (Cluster::RestartValidator). Restarts are only generated for systems
  // where the cluster supports rebuilds (kTusk, kNarwhalHs, kBullshark —
  // which is all the DST harness fuzzes).
  struct Crash {
    ValidatorId validator = 0;
    TimePoint at = 0;
    TimePoint recover_at = 0;
    bool recovers() const { return recover_at > at; }
  };
  struct Partition {
    ValidatorId validator = 0;
    TimePoint start = 0;
    TimePoint end = 0;
  };
  struct Async {
    TimePoint start = 0;
    TimePoint end = 0;
    double factor = 10.0;
  };
  struct Equivocate {
    ValidatorId validator = 0;
    TimePoint at = 0;
  };

  std::vector<Crash> crashes;
  std::vector<Partition> partitions;
  std::vector<Async> asyncs;
  std::vector<Equivocate> equivocators;
  double loss_rate = 0.0;

  // Workload: one ExecTx submitted every `tx_interval` (round-robin over
  // validators), plus per-validator mints at start.
  TimeDelta tx_interval = Millis(400);

  // Execution lanes per validator (src/shard/). 1 = the historical
  // single-lane executor; > 1 enables the sharded workload (per-lane
  // accounts, a deterministic mix of single- and cross-shard transfers) and
  // the shard invariants. Never drawn by GenerateSchedule — the seed stream
  // is frozen — so coverage comes from pinned `ntcheck --shards` bands, like
  // Bullshark's `--system` pin.
  uint32_t shards = 1;

  // Seeded protocol weakenings active during the run (mutation testing; see
  // src/common/seeded_bugs.h). Serialized so repro files are self-contained.
  bool bug_accept_2f_certs = false;
  bool bug_skip_tusk_support = false;
  bool bug_skip_bullshark_support = false;
  bool bug_skip_cross_shard_lock = false;

  // Global stabilization time: the end of the last partition/asynchrony
  // window (0 when none), extended by the in-flight tail of delayed
  // messages. Permanent crashes and equivocators never delay GST, but a
  // *restarting* crash does: the system is only fully stable once the
  // recovered validator has pulled the DAG suffix it missed, so GST covers
  // recover_at plus a resync allowance.
  TimePoint Gst() const;

  // True when permanent validator faults combine with message loss: the
  // surviving committee can be exactly 2f+1, where every lost message costs
  // a full retry delay and rounds crawl. Liveness needs a wider window.
  bool Stressed() const {
    return (!crashes.empty() || !equivocators.empty()) && loss_rate > 0;
  }

  // How long a run must extend past GST for the liveness invariant to be
  // meaningful under this schedule's stress level.
  TimeDelta PostGstWindow() const { return Stressed() ? Seconds(30) : Seconds(10); }

  // Total injected faults (crashes + partitions + asyncs + equivocators +
  // one for nonzero loss). The shrinker minimizes this.
  size_t FaultCount() const;

  // True if `v` is neither permanently crashed nor an equivocator — the
  // validators whose commit progress the liveness invariant covers. A
  // cleanly-restarting validator counts as correct: GST extends past its
  // recovery, so it is expected to commit in the post-GST window like
  // everyone else.
  bool IsCorrect(ValidatorId v) const;

  // Text repro format: `key=value` lines, one per field/fault.
  std::string Encode() const;
  static std::optional<FaultSchedule> Decode(const std::string& text);
};

// Draws the schedule for `seed` deterministically (same seed, same schedule,
// on every platform). `system_override`, when set, pins the system instead
// of letting the seed pick Tusk vs Narwhal-HS. (The seed draw is frozen at
// the historical two-way choice so existing corpora and golden event hashes
// stay byte-identical; Bullshark coverage comes from pinned `--system
// bullshark` bands.)
FaultSchedule GenerateSchedule(uint64_t seed,
                               std::optional<SystemKind> system_override = std::nullopt);

}  // namespace nt

#endif  // SRC_CHECK_SCHEDULE_H_
