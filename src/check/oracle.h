// Pure reference re-run of the Tusk commit rule (paper §5) over a complete
// DAG — the oracle the DST harness compares every live validator's commit
// sequence against (invariant: live output is a prefix of the reference
// output). Unlike the live `Tusk` class it has no network, no deferral, no
// sync: it assumes its input DAG already holds the union of everything any
// validator observed, and interprets waves strictly in order, mirroring the
// live garbage-collection horizon as it goes.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <vector>

#include "src/crypto/coin.h"
#include "src/narwhal/dag.h"
#include "src/types/committee.h"

namespace nt {

struct TuskReplay {
  // Committed header digests in delivery order.
  std::vector<Digest> ordered;
  // True if every committed anchor's causal history was fully present in the
  // input DAG (always the case for a correctly accumulated union DAG; false
  // indicates the harness itself under-observed, not a protocol bug).
  bool complete = true;
};

// Replays the Tusk commit rule over `dag` (taken by value: replay garbage-
// collects as it commits, mirroring the live protocol's horizon). The coin
// and gc_depth must match the live run's.
TuskReplay ReplayTusk(Dag dag, const Committee& committee, const ThresholdCoin& coin,
                      Round gc_depth);

}  // namespace nt

#endif  // SRC_CHECK_ORACLE_H_
