// Pure reference re-runs of the DAG commit rules (Tusk, paper §5; Bullshark,
// arXiv:2201.05677) over a complete DAG — the oracles the DST harness
// compares every live validator's commit sequence against (invariant: live
// output is a prefix of the reference output). Unlike the live committers
// they have no network, no deferral, no sync: they assume their input DAG
// already holds the union of everything any validator observed, and
// interpret waves strictly in order, mirroring the live garbage-collection
// horizon as they go.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/bullshark/bullshark.h"
#include "src/crypto/coin.h"
#include "src/narwhal/dag.h"
#include "src/types/committee.h"
#include "src/types/types.h"

namespace nt {

struct TuskReplay {
  // Committed header digests in delivery order.
  std::vector<Digest> ordered;
  // True if every committed anchor's causal history was fully present in the
  // input DAG (always the case for a correctly accumulated union DAG; false
  // indicates the harness itself under-observed, not a protocol bug).
  bool complete = true;
};

// Replays the Tusk commit rule over `dag` (taken by value: replay garbage-
// collects as it commits, mirroring the live protocol's horizon). The coin
// and gc_depth must match the live run's.
TuskReplay ReplayTusk(Dag dag, const Committee& committee, const ThresholdCoin& coin,
                      Round gc_depth);

struct BullsharkReplay {
  // Committed header digests in delivery order.
  std::vector<Digest> ordered;
  // See TuskReplay::complete.
  bool complete = true;
};

// Replays the Bullshark commit rule over `dag` (taken by value — the replay
// garbage-collects as it commits). No coin: anchors follow the deterministic
// AnchorSchedule, which `config` parameterizes exactly as for the live
// committer (reputation must match the live run's flag). The oracle stays
// honest regardless of seeded_bugs weakenings of the live path.
BullsharkReplay ReplayBullshark(Dag dag, const Committee& committee, Round gc_depth,
                                BullsharkConfig config = {});

struct ShardReplay {
  // Per executed header, every lane's chained state digest after the header's
  // commit boundary — the reference the live ShardedExecutor sequences are
  // compared against (prefix relation, like the commit oracles above).
  std::vector<std::vector<Digest>> lanes_after;
  // Conservation accounting at the end of the replay.
  uint64_t minted = 0;
  uint64_t total_balance = 0;
  // False if some referenced batch could not be resolved anywhere — the
  // replay stops at that header (the harness under-observed; not a bug).
  bool complete = true;
};

// Pure replay of the sharded execution semantics (src/shard/) over the
// globally committed header sequence: lane routing, the single-shard fast
// path, and the honest two-phase cross-shard apply at each commit boundary.
// Independent re-implementation — it never consults seeded_bugs, so a
// weakened live executor diverges from it. `resolve` maps a batch reference
// to its content (typically a union over every validator's worker store).
ShardReplay ReplayShards(
    const std::vector<std::shared_ptr<const BlockHeader>>& ordered, uint32_t num_lanes,
    const std::function<std::shared_ptr<const Batch>(const BatchRef&)>& resolve);

}  // namespace nt

#endif  // SRC_CHECK_ORACLE_H_
