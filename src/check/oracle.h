// Pure reference re-runs of the DAG commit rules (Tusk, paper §5; Bullshark,
// arXiv:2201.05677) over a complete DAG — the oracles the DST harness
// compares every live validator's commit sequence against (invariant: live
// output is a prefix of the reference output). Unlike the live committers
// they have no network, no deferral, no sync: they assume their input DAG
// already holds the union of everything any validator observed, and
// interpret waves strictly in order, mirroring the live garbage-collection
// horizon as they go.
#ifndef SRC_CHECK_ORACLE_H_
#define SRC_CHECK_ORACLE_H_

#include <vector>

#include "src/bullshark/bullshark.h"
#include "src/crypto/coin.h"
#include "src/narwhal/dag.h"
#include "src/types/committee.h"

namespace nt {

struct TuskReplay {
  // Committed header digests in delivery order.
  std::vector<Digest> ordered;
  // True if every committed anchor's causal history was fully present in the
  // input DAG (always the case for a correctly accumulated union DAG; false
  // indicates the harness itself under-observed, not a protocol bug).
  bool complete = true;
};

// Replays the Tusk commit rule over `dag` (taken by value: replay garbage-
// collects as it commits, mirroring the live protocol's horizon). The coin
// and gc_depth must match the live run's.
TuskReplay ReplayTusk(Dag dag, const Committee& committee, const ThresholdCoin& coin,
                      Round gc_depth);

struct BullsharkReplay {
  // Committed header digests in delivery order.
  std::vector<Digest> ordered;
  // See TuskReplay::complete.
  bool complete = true;
};

// Replays the Bullshark commit rule over `dag` (taken by value — the replay
// garbage-collects as it commits). No coin: anchors follow the deterministic
// AnchorSchedule, which `config` parameterizes exactly as for the live
// committer (reputation must match the live run's flag). The oracle stays
// honest regardless of seeded_bugs weakenings of the live path.
BullsharkReplay ReplayBullshark(Dag dag, const Committee& committee, Round gc_depth,
                                BullsharkConfig config = {});

}  // namespace nt

#endif  // SRC_CHECK_ORACLE_H_
