#include "src/check/oracle.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/exec/state_machine.h"
#include "src/shard/router.h"
#include "src/tusk/tusk.h"

namespace nt {

namespace {

// The paper's §5 commit rule: leader's round-2w support count, evaluated on
// the reference DAG. Identical to Tusk::CommitRuleSatisfied but independent
// of the live implementation (and of the seeded_bugs weakenings — the whole
// point of the oracle is that it stays honest when the live path is broken).
bool SupportSatisfied(const Dag& dag, uint64_t wave, const Certificate& leader,
                      const Committee& committee) {
  uint32_t votes = 0;
  for (const auto& [author, cert] : dag.CertsAt(Tusk::WaveSecondRound(wave))) {
    auto header = dag.GetHeader(cert.header_digest);
    if (header == nullptr) {
      continue;
    }
    for (const Certificate& parent : header->parents) {
      if (parent.header_digest == leader.header_digest) {
        ++votes;
        break;
      }
    }
  }
  return votes >= committee.validity_threshold();
}

}  // namespace

TuskReplay ReplayTusk(Dag dag, const Committee& committee, const ThresholdCoin& coin,
                      Round gc_depth) {
  TuskReplay out;
  std::set<Digest> committed;
  std::map<Round, std::vector<Digest>> committed_by_round;
  uint64_t last_committed_wave = 0;

  Round top = dag.HighestRound();
  if (top < 3) {
    return out;
  }
  uint64_t max_wave = (top - 1) / 2;
  for (uint64_t wave = last_committed_wave + 1; wave <= max_wave; ++wave) {
    if (dag.CertCountAt(Tusk::WaveThirdRound(wave)) < committee.quorum_threshold()) {
      break;  // The coin for this wave never revealed anywhere.
    }
    ValidatorId leader_id = coin.LeaderOf(wave, committee.size());
    const Certificate* leader = dag.GetCert(Tusk::WaveFirstRound(wave), leader_id);
    if (leader == nullptr || committed.count(leader->header_digest) != 0) {
      continue;
    }
    if (!SupportSatisfied(dag, wave, *leader, committee)) {
      continue;
    }

    // Chain back through skipped waves by DAG reachability, exactly as the
    // live committer does.
    std::vector<const Certificate*> chain{leader};
    const Certificate* candidate = leader;
    for (uint64_t i = wave - 1; i > last_committed_wave && i > 0; --i) {
      const Certificate* li = dag.GetCert(Tusk::WaveFirstRound(i),
                                          coin.LeaderOf(i, committee.size()));
      if (li == nullptr || committed.count(li->header_digest) != 0) {
        continue;
      }
      if (dag.HasPath(candidate->header_digest, li->header_digest)) {
        chain.push_back(li);
        candidate = li;
      }
    }
    std::reverse(chain.begin(), chain.end());

    for (const Certificate* lead : chain) {
      Dag::History history = dag.CollectCausalHistory(lead->header_digest, committed);
      if (!history.missing.empty()) {
        out.complete = false;
        return out;  // Under-observed union DAG; nothing sound to say beyond here.
      }
      for (const Digest& digest : history.ordered) {
        committed.insert(digest);
        committed_by_round[dag.GetHeader(digest)->round].push_back(digest);
        out.ordered.push_back(digest);
      }
    }
    last_committed_wave = wave;

    // Mirror the live GC horizon so linearization never reaches below what
    // live validators keep (CollectCausalHistory stops at dag.gc_round()).
    Round leader_round = Tusk::WaveFirstRound(wave);
    if (leader_round > gc_depth) {
      Round gc_round = leader_round - gc_depth;
      dag.GarbageCollect(gc_round);
      for (auto it = committed_by_round.begin();
           it != committed_by_round.end() && it->first < gc_round;) {
        for (const Digest& d : it->second) {
          committed.erase(d);
        }
        it = committed_by_round.erase(it);
      }
    }
  }
  return out;
}

namespace {

// Bullshark's commit rule: anchor's round-2w support count on the reference
// DAG. Identical to Bullshark::CommitRuleSatisfied, minus the seeded-bug
// weakening (the oracle stays honest when the live path is broken).
bool AnchorSupportSatisfied(const Dag& dag, uint64_t wave, const Certificate& anchor,
                            const Committee& committee) {
  uint32_t votes = 0;
  for (const auto& [author, cert] : dag.CertsAt(Bullshark::WaveSupportRound(wave))) {
    auto header = dag.GetHeader(cert.header_digest);
    if (header == nullptr) {
      continue;
    }
    for (const Certificate& parent : header->parents) {
      if (parent.header_digest == anchor.header_digest) {
        ++votes;
        break;
      }
    }
  }
  return votes >= committee.validity_threshold();
}

}  // namespace

BullsharkReplay ReplayBullshark(Dag dag, const Committee& committee, Round gc_depth,
                                BullsharkConfig config) {
  BullsharkReplay out;
  std::set<Digest> committed;
  std::map<Round, std::vector<Digest>> committed_by_round;
  AnchorSchedule schedule(committee.size(), config);
  uint64_t last_committed_wave = 0;

  Round top = dag.HighestRound();
  if (top < 2) {
    return out;
  }
  uint64_t max_wave = top / 2;
  for (uint64_t wave = last_committed_wave + 1; wave <= max_wave; ++wave) {
    const Certificate* anchor =
        dag.GetCert(Bullshark::WaveAnchorRound(wave), schedule.AuthorOf(wave));
    if (anchor == nullptr || committed.count(anchor->header_digest) != 0) {
      continue;
    }
    if (!AnchorSupportSatisfied(dag, wave, *anchor, committee)) {
      continue;  // No third-round gate: a later anchor orders this by path.
    }

    // Chain back through skipped waves by DAG reachability, exactly as the
    // live committer does — with the same pre-event schedule state for every
    // author lookup belonging to this commit event.
    std::vector<const Certificate*> chain{anchor};
    const Certificate* candidate = anchor;
    for (uint64_t i = wave - 1; i > last_committed_wave && i > 0; --i) {
      const Certificate* ai =
          dag.GetCert(Bullshark::WaveAnchorRound(i), schedule.AuthorOf(i));
      if (ai == nullptr || committed.count(ai->header_digest) != 0) {
        continue;
      }
      if (dag.HasPath(candidate->header_digest, ai->header_digest)) {
        chain.push_back(ai);
        candidate = ai;
      }
    }
    std::reverse(chain.begin(), chain.end());

    for (const Certificate* lead : chain) {
      Dag::History history = dag.CollectCausalHistory(lead->header_digest, committed);
      if (!history.missing.empty()) {
        out.complete = false;
        return out;  // Under-observed union DAG; nothing sound to say beyond here.
      }
      for (const Digest& digest : history.ordered) {
        committed.insert(digest);
        committed_by_round[dag.GetHeader(digest)->round].push_back(digest);
        out.ordered.push_back(digest);
      }
    }

    // Settle wave outcomes into the reputation fold — authors resolved with
    // the pre-event state first, mirroring Bullshark::SettleOutcomes.
    {
      std::vector<ValidatorId> authors;
      for (uint64_t i = last_committed_wave + 1; i <= wave; ++i) {
        authors.push_back(schedule.AuthorOf(i));
      }
      for (uint64_t i = last_committed_wave + 1; i <= wave; ++i) {
        ValidatorId author = authors[static_cast<size_t>(i - last_committed_wave - 1)];
        const Certificate* cert = dag.GetCert(Bullshark::WaveAnchorRound(i), author);
        bool ordered = cert != nullptr && committed.count(cert->header_digest) != 0;
        schedule.RecordOutcome(i, author, ordered);
      }
    }
    last_committed_wave = wave;

    // Mirror the live GC horizon so linearization never reaches below what
    // live validators keep (CollectCausalHistory stops at dag.gc_round()).
    Round anchor_round = Bullshark::WaveAnchorRound(wave);
    if (anchor_round > gc_depth) {
      Round gc_round = anchor_round - gc_depth;
      dag.GarbageCollect(gc_round);
      for (auto it = committed_by_round.begin();
           it != committed_by_round.end() && it->first < gc_round;) {
        for (const Digest& d : it->second) {
          committed.erase(d);
        }
        it = committed_by_round.erase(it);
      }
    }
  }
  return out;
}

ShardReplay ReplayShards(
    const std::vector<std::shared_ptr<const BlockHeader>>& ordered, uint32_t num_lanes,
    const std::function<std::shared_ptr<const Batch>(const BatchRef&)>& resolve) {
  ShardReplay out;
  ShardRouter router(num_lanes);
  std::vector<KvStateMachine> lanes(router.num_shards());
  for (const std::shared_ptr<const BlockHeader>& header : ordered) {
    // Resolve every batch before touching any lane, mirroring the live
    // executor's all-or-nothing rule.
    std::vector<std::shared_ptr<const Batch>> batches;
    batches.reserve(header->batches.size());
    for (const BatchRef& ref : header->batches) {
      std::shared_ptr<const Batch> batch = resolve(ref);
      if (batch == nullptr) {
        out.complete = false;
        break;
      }
      batches.push_back(std::move(batch));
    }
    if (!out.complete) {
      break;
    }
    // Single-shard fast path in encounter order, cross-shard transfers
    // deferred to the commit boundary — the honest semantics, re-stated
    // independently of ShardedExecutor (and of seeded_bugs).
    std::vector<std::pair<const Bytes*, ExecTx>> cross;
    for (const auto& batch : batches) {
      for (const Bytes& wire : batch->txs) {
        std::optional<ExecTx> tx = ExecTx::Decode(wire);
        if (!tx.has_value()) {
          lanes[0].Apply(wire);
          continue;
        }
        if (tx->op == ExecTx::Op::kTransfer) {
          ShardId src = router.Of(tx->key);
          ShardId dst = router.Of(tx->key2);
          if (src != dst) {
            cross.emplace_back(&wire, std::move(*tx));
            continue;
          }
          lanes[src].Apply(wire);
          continue;
        }
        lanes[router.Of(tx->key)].Apply(wire);
      }
    }
    for (const auto& [wire, tx] : cross) {
      ShardId src = router.Of(tx.key);
      ShardId dst = router.Of(tx.key2);
      if (lanes[src].LockDebit(*wire, tx) == ExecStatus::kApplied) {
        lanes[dst].ApplyCredit(*wire, tx);
      }
    }
    std::vector<Digest> after;
    after.reserve(lanes.size());
    for (const KvStateMachine& lane : lanes) {
      after.push_back(lane.state_digest());
    }
    out.lanes_after.push_back(std::move(after));
  }
  for (const KvStateMachine& lane : lanes) {
    out.minted += lane.minted();
    out.total_balance += lane.total_balance();
  }
  return out;
}

}  // namespace nt
