#include "src/check/shrinker.h"

#include <algorithm>
#include <vector>

#include "src/types/committee.h"

namespace nt {

namespace {

// Re-derives the run length after windows moved: liveness checking needs a
// bounded stretch of synchrony after GST, and shorter runs shrink faster.
void FitDuration(FaultSchedule& s) { s.duration = s.Gst() + s.PostGstWindow(); }

// All one-step simplifications of `s`, most aggressive first (committee
// shrink removes the most state per accepted step).
std::vector<FaultSchedule> Candidates(const FaultSchedule& s) {
  std::vector<FaultSchedule> out;

  // Shrink the committee (3f+1 sizes), dropping faults that reference
  // removed validators. Every smaller size is offered, not just n-3: a bug
  // can fail to reproduce at an intermediate size yet still fire at a
  // smaller one (timing differs per committee size), and a single-step
  // shrink would get stuck at the first passing size.
  for (uint32_t target = s.validators >= 3 ? s.validators - 3 : 0; target >= 4; target -= 3) {
    FaultSchedule t = s;
    t.validators = target;
    auto in_range = [&t](ValidatorId v) { return v < t.validators; };
    t.crashes.erase(std::remove_if(t.crashes.begin(), t.crashes.end(),
                                   [&](const FaultSchedule::Crash& c) {
                                     return !in_range(c.validator);
                                   }),
                    t.crashes.end());
    t.partitions.erase(std::remove_if(t.partitions.begin(), t.partitions.end(),
                                      [&](const FaultSchedule::Partition& p) {
                                        return !in_range(p.validator);
                                      }),
                       t.partitions.end());
    t.equivocators.erase(std::remove_if(t.equivocators.begin(), t.equivocators.end(),
                                        [&](const FaultSchedule::Equivocate& e) {
                                          return !in_range(e.validator);
                                        }),
                         t.equivocators.end());
    // The shrunk committee tolerates fewer Byzantine validators; trim the
    // surplus rather than produce an over-budget (> f) schedule.
    uint32_t fault_budget = Committee::MaxFaultyFor(t.validators);
    while (t.crashes.size() + t.equivocators.size() > fault_budget) {
      if (!t.crashes.empty()) {
        t.crashes.pop_back();
      } else {
        t.equivocators.pop_back();
      }
    }
    FitDuration(t);
    out.push_back(std::move(t));
  }

  for (size_t i = 0; i < s.crashes.size(); ++i) {
    FaultSchedule t = s;
    t.crashes.erase(t.crashes.begin() + i);
    FitDuration(t);
    out.push_back(std::move(t));
  }
  // Simplify restarts without dropping them: a permanent crash removes the
  // whole recovery path from the repro, and a narrower down-window trims the
  // DAG suffix the rebuilt validator has to re-fetch.
  for (size_t i = 0; i < s.crashes.size(); ++i) {
    if (!s.crashes[i].recovers()) {
      continue;
    }
    {
      FaultSchedule t = s;
      t.crashes[i].recover_at = 0;
      FitDuration(t);
      out.push_back(std::move(t));
    }
    if (s.crashes[i].recover_at - s.crashes[i].at >= Millis(400)) {
      FaultSchedule t = s;
      t.crashes[i].recover_at =
          t.crashes[i].at + (t.crashes[i].recover_at - t.crashes[i].at) / 2;
      FitDuration(t);
      out.push_back(std::move(t));
    }
  }
  for (size_t i = 0; i < s.partitions.size(); ++i) {
    FaultSchedule t = s;
    t.partitions.erase(t.partitions.begin() + i);
    FitDuration(t);
    out.push_back(std::move(t));
  }
  for (size_t i = 0; i < s.asyncs.size(); ++i) {
    FaultSchedule t = s;
    t.asyncs.erase(t.asyncs.begin() + i);
    FitDuration(t);
    out.push_back(std::move(t));
  }
  for (size_t i = 0; i < s.equivocators.size(); ++i) {
    FaultSchedule t = s;
    t.equivocators.erase(t.equivocators.begin() + i);
    out.push_back(std::move(t));
  }
  if (s.loss_rate > 0) {
    FaultSchedule t = s;
    t.loss_rate = 0;
    out.push_back(t);
    if (s.loss_rate > 0.02) {
      t.loss_rate = s.loss_rate / 2;
      out.push_back(std::move(t));
    }
  }
  // Fewer execution lanes first (1 kills the cross-shard path entirely; 2 is
  // the smallest lane count that can still cross) — a shard repro that also
  // fires single-lane shrinks to the simpler schedule.
  if (s.shards > 1) {
    FaultSchedule t = s;
    t.shards = 1;
    out.push_back(t);
    if (s.shards > 2) {
      t.shards = 2;
      out.push_back(std::move(t));
    }
  }
  // Narrow windows without dropping them (keeps a needed fault but trims the
  // repro's interesting region).
  for (size_t i = 0; i < s.partitions.size(); ++i) {
    if (s.partitions[i].end - s.partitions[i].start < Millis(200)) {
      continue;
    }
    FaultSchedule t = s;
    t.partitions[i].end = t.partitions[i].start + (t.partitions[i].end - t.partitions[i].start) / 2;
    FitDuration(t);
    out.push_back(std::move(t));
  }
  for (size_t i = 0; i < s.asyncs.size(); ++i) {
    if (s.asyncs[i].end - s.asyncs[i].start < Millis(200)) {
      continue;
    }
    FaultSchedule t = s;
    t.asyncs[i].end = t.asyncs[i].start + (t.asyncs[i].end - t.asyncs[i].start) / 2;
    FitDuration(t);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

ShrinkResult Shrink(const FaultSchedule& schedule, uint32_t max_runs) {
  ShrinkResult result;
  result.schedule = schedule;
  result.verdict = RunSchedule(schedule);
  ++result.runs;
  if (result.verdict.ok()) {
    return result;  // Does not reproduce; nothing to shrink.
  }

  bool progress = true;
  while (progress && result.runs < max_runs) {
    progress = false;
    for (FaultSchedule& candidate : Candidates(result.schedule)) {
      if (result.runs >= max_runs) {
        break;
      }
      CheckResult verdict = RunSchedule(candidate);
      ++result.runs;
      if (!verdict.ok()) {
        result.schedule = std::move(candidate);
        result.verdict = std::move(verdict);
        progress = true;
        break;  // Restart from the simplified schedule.
      }
    }
  }
  return result;
}

}  // namespace nt
