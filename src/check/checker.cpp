#include "src/check/checker.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "src/check/oracle.h"
#include "src/common/seeded_bugs.h"
#include "src/hotstuff/payload.h"
#include "src/shard/sharded_executor.h"

namespace nt {

namespace {

// Liveness slack: every correct validator must have committed within this
// long of the end of the run (the run extends ≥ 10 s past GST, and a healthy
// WAN committee commits a wave roughly every second).
constexpr TimeDelta kLivenessSlack = Seconds(6);

// Keep failure reports small; one violation is enough to fail and shrink.
constexpr size_t kMaxViolations = 16;

std::string DigestPrefix(const Digest& d) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < 4; ++i) {
    out.push_back(hex[d[i] >> 4]);
    out.push_back(hex[d[i] & 0xf]);
  }
  return out;
}

std::string Account(ValidatorId v) { return "acct-" + std::to_string(v); }

// FNV-1a fold of the per-header lane-digest sequence — the per-shard state
// fingerprint the determinism audit compares across runs.
uint64_t FoldShardState(const std::vector<std::pair<Digest, std::vector<Digest>>>& exec_global) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const Digest& d) {
    for (uint8_t byte : d) {
      h ^= byte;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [header, lanes] : exec_global) {
    mix(header);
    for (const Digest& lane : lanes) {
      mix(lane);
    }
  }
  return h;
}

}  // namespace

std::string CheckResult::Summary() const {
  if (violations.empty()) {
    return "ok";
  }
  std::ostringstream out;
  std::set<std::string> seen;
  for (const Violation& v : violations) {
    if (seen.insert(v.invariant).second) {
      if (seen.size() > 1) {
        out << ",";
      }
      out << v.invariant;
    }
  }
  return out.str();
}

CheckResult RunSchedule(const FaultSchedule& schedule) {
  // Mutation-testing flags travel inside the schedule so repro files are
  // self-contained; restore on every exit path.
  seeded_bugs::Scoped bug1(&seeded_bugs::accept_2f_certs, schedule.bug_accept_2f_certs);
  seeded_bugs::Scoped bug2(&seeded_bugs::skip_tusk_support, schedule.bug_skip_tusk_support);
  seeded_bugs::Scoped bug3(&seeded_bugs::skip_bullshark_support,
                           schedule.bug_skip_bullshark_support);
  seeded_bugs::Scoped bug4(&seeded_bugs::skip_cross_shard_lock,
                           schedule.bug_skip_cross_shard_lock);

  ClusterConfig config;
  config.system = schedule.system;
  config.num_validators = schedule.validators;
  config.seed = schedule.seed;
  Cluster cluster(config);
  const uint32_t n = schedule.validators;
  Scheduler& scheduler = cluster.scheduler();

  CheckResult result;
  auto violation = [&result](const char* invariant, std::string detail) {
    if (result.violations.size() < kMaxViolations) {
      result.violations.push_back({invariant, std::move(detail)});
    }
  };

  // --- invariant monitors ---------------------------------------------------

  // (2) certificate uniqueness: every accepted certificate anywhere, keyed
  // by (round, author). Two distinct header digests = double-cert.
  std::map<std::pair<Round, ValidatorId>, std::set<Digest>> accepted;
  // (4) oracle input: the union of every validator's observed DAG. Headers
  // and certificates are content-addressed, so accumulation is conflict-free
  // (AddCertificate keeps the first per (round, author) — the monitor above
  // reports when that ever matters).
  Dag union_dag;
  // (1) prefix consistency: longest committed sequence seen so far. The
  // header objects ride along as the shard-oracle replay input.
  std::vector<Digest> global_seq;
  std::vector<std::shared_ptr<const BlockHeader>> global_headers;
  std::vector<std::vector<Digest>> commit_seq(n);
  std::vector<TimePoint> last_commit(n, -1);
  // (5) execution agreement and (8) shard state: every validator runs a
  // ShardedExecutor with `num_lanes` lanes (1 = the historical single-lane
  // behavior) whose per-lane digest vectors must agree at equal sequence
  // numbers, conserve balance, and match the pure ReplayShards oracle.
  const uint32_t num_lanes = std::max<uint32_t>(1, schedule.shards);
  std::vector<std::unique_ptr<ShardedExecutor>> executors(n);
  std::vector<std::pair<Digest, std::vector<Digest>>> exec_global;  // (header, lane digests).
  std::vector<size_t> exec_len(n, 0);
  // (7) restart consistency: validators with a scheduled recovery, the
  // headers each validator has authored (any observer's view), and each
  // validator's own committed set. A recovered validator must neither author
  // a second header for a round it signed pre-crash (equivocation through
  // amnesia) nor re-deliver a commit its pre-crash incarnation already
  // delivered.
  std::set<ValidatorId> restarting;
  std::set<ValidatorId> byzantine;
  for (const FaultSchedule::Crash& c : schedule.crashes) {
    if (c.recovers()) {
      restarting.insert(c.validator);
    }
  }
  for (const FaultSchedule::Equivocate& e : schedule.equivocators) {
    byzantine.insert(e.validator);
  }
  std::map<std::pair<Round, ValidatorId>, std::set<Digest>> authored;
  std::vector<std::set<Digest>> committed_set(n);

  // All per-validator hook wiring lives in one re-callable closure: a
  // restarted validator's Primary/consensus objects are new allocations, so
  // the cluster re-invokes this (via set_on_validator_rebuilt) after every
  // rebuild, before the recovered node starts.
  auto wire_validator = [&](ValidatorId v) {
    Primary* primary = cluster.primary(v);
    primary->add_on_certificate([&, primary](const Certificate& cert) {
      auto& digests = accepted[{cert.round, cert.author}];
      digests.insert(cert.header_digest);
      if (digests.size() > 1) {
        violation("cert-uniqueness",
                  "round " + std::to_string(cert.round) + " author " +
                      std::to_string(cert.author) + ": " + std::to_string(digests.size()) +
                      " distinct certificates accepted");
      }
      union_dag.AddCertificate(cert);
      if (auto header = primary->dag().GetHeader(cert.header_digest)) {
        union_dag.AddHeader(header, cert.header_digest);
      }
    });
    primary->add_on_header_stored([&, primary](const Digest& digest) {
      if (auto header = primary->dag().GetHeader(digest)) {
        union_dag.AddHeader(header, digest);
        // (7) equivocation-through-amnesia: two distinct header digests for
        // one (round, author) where the author restarted cleanly means its
        // recovered vote/proposal ledger failed to stop a double-sign.
        if (restarting.count(header->author) != 0 && byzantine.count(header->author) == 0) {
          auto& mine = authored[{header->round, header->author}];
          mine.insert(digest);
          if (mine.size() > 1) {
            violation("restart-consistency",
                      "recovered validator " + std::to_string(header->author) +
                          " authored " + std::to_string(mine.size()) +
                          " distinct headers for round " + std::to_string(header->round));
          }
        }
      }
    });

    // Resolve the worker at fetch time: a restarted validator's Worker is a
    // new object, and a raw pointer captured here would dangle after the
    // rebuild.
    if (executors[v] == nullptr) {
      executors[v] =
          std::make_unique<ShardedExecutor>(num_lanes, [&cluster, v](const BatchRef& ref) {
            return cluster.worker(v, 0)->GetBatch(ref.digest);
          });
    }
    ShardedExecutor* executor = executors[v].get();
    executor->set_on_executed([&, v, executor](const Digest& header_digest,
                                               const std::vector<Digest>& lanes) {
      size_t i = exec_len[v]++;
      if (i < exec_global.size()) {
        if (exec_global[i].first != header_digest || exec_global[i].second != lanes) {
          violation("exec-agreement",
                    "validator " + std::to_string(v) + " diverges at executed header #" +
                        std::to_string(i) + " (header " + DigestPrefix(header_digest) +
                        ", lane 0 state " + DigestPrefix(lanes[0]) + ")");
        }
      } else {
        exec_global.emplace_back(header_digest, lanes);
      }
      // (8) conservation-of-balance across lanes, at every commit boundary:
      // honest execution can move supply between lanes but never create it.
      if (executor->total_balance() != executor->minted_total()) {
        violation("shard-conservation",
                  "validator " + std::to_string(v) + " holds " +
                      std::to_string(executor->total_balance()) + " tokens across " +
                      std::to_string(num_lanes) + " lane(s) with only " +
                      std::to_string(executor->minted_total()) + " minted, at executed header #" +
                      std::to_string(i));
      }
    });

    // Per-commit evaluation shared by both systems.
    auto on_committed = [&, v](const Digest& digest,
                               const std::shared_ptr<const BlockHeader>& header) {
      // (7) re-delivery: the committed sets recovered from the store must
      // make delivery exactly-once across the crash. (Checker-side state
      // survives the rebuild, so a pre-crash delivery is still recorded
      // here.)
      if (!committed_set[v].insert(digest).second) {
        violation("restart-consistency",
                  "validator " + std::to_string(v) + " re-delivered commit " +
                      DigestPrefix(digest) + " after restart");
        return;
      }
      size_t i = commit_seq[v].size();
      commit_seq[v].push_back(digest);
      last_commit[v] = scheduler.now();
      if (i < global_seq.size()) {
        if (global_seq[i] != digest) {
          violation("prefix-consistency",
                    "validator " + std::to_string(v) + " commit #" + std::to_string(i) +
                        " is " + DigestPrefix(digest) + ", another validator committed " +
                        DigestPrefix(global_seq[i]));
        }
      } else {
        global_seq.push_back(digest);
        global_headers.push_back(header);
      }
      // (3) causal completeness at commit time, in the committing
      // validator's own view.
      const Dag& local = cluster.primary(v)->dag();
      if (!local.HasHeader(digest)) {
        violation("causal-completeness", "validator " + std::to_string(v) +
                                             " committed header " + DigestPrefix(digest) +
                                             " without storing it");
      }
      for (const Certificate& parent : header->parents) {
        if (parent.round >= local.gc_round() && !local.HasHeader(parent.header_digest)) {
          violation("causal-completeness",
                    "validator " + std::to_string(v) + " committed " + DigestPrefix(digest) +
                        " with missing parent " + DigestPrefix(parent.header_digest));
        }
      }
      executors[v]->OnCommittedHeader(header);
      executors[v]->RetryPending();
    };
    if (schedule.system == SystemKind::kTusk) {
      cluster.tusk(v)->add_on_commit([on_committed](const Tusk::Committed& c) {
        on_committed(c.digest, c.header);
      });
    } else if (schedule.system == SystemKind::kBullshark) {
      cluster.bullshark(v)->add_on_commit([on_committed](const Bullshark::Committed& c) {
        on_committed(c.digest, c.header);
      });
    } else {
      auto* provider = dynamic_cast<NarwhalProvider*>(cluster.provider(v));
      provider->add_on_header_commit(on_committed);
    }
  };
  for (ValidatorId v = 0; v < n; ++v) {
    wire_validator(v);
  }
  cluster.set_on_validator_rebuilt(wire_validator);

  // --- fault script ---------------------------------------------------------
  for (const FaultSchedule::Crash& c : schedule.crashes) {
    if (c.recovers() && cluster.SupportsRestart()) {
      cluster.RestartValidator(c.validator, c.at, c.recover_at);
    } else {
      cluster.CrashValidator(c.validator, c.at);
    }
  }
  for (const FaultSchedule::Partition& p : schedule.partitions) {
    cluster.IsolateValidator(p.validator, p.start, p.end);
  }
  for (const FaultSchedule::Async& a : schedule.asyncs) {
    cluster.faults().AddAsynchronyWindow(a.start, a.end, a.factor);
  }
  for (const FaultSchedule::Equivocate& e : schedule.equivocators) {
    cluster.faults().MarkEquivocator(e.validator, e.at);
  }
  if (schedule.loss_rate > 0) {
    cluster.faults().SetLossRate(schedule.loss_rate);
  }

  // --- workload -------------------------------------------------------------
  // Explicit ExecTx payloads so execution agreement checks real state: one
  // mint per (validator, lane) account up front, then round-robin unit
  // transfers. With one lane the account book collapses to the historical
  // Account(v) names and the stream is byte-identical to the pre-sharding
  // workload — golden event hashes stay frozen. With more lanes, per-lane
  // accounts are mined onto their lane and every third transfer crosses to
  // the next lane (a deterministic ~33% cross-shard mix).
  std::vector<std::vector<std::string>> lane_accounts(n);
  for (ValidatorId v = 0; v < n; ++v) {
    if (num_lanes == 1) {
      lane_accounts[v].push_back(Account(v));
    } else {
      for (ShardId s = 0; s < num_lanes; ++s) {
        lane_accounts[v].push_back(ShardRouter::MineAccount(Account(v), s, num_lanes));
      }
    }
  }
  for (ValidatorId v = 0; v < n; ++v) {
    std::vector<Bytes> mints;
    for (const std::string& account : lane_accounts[v]) {
      mints.push_back(ExecTx::Mint(account, 1000000).Encode());
    }
    // ntlint:allow(deferred-capture): cluster outlives the callbacks — RunUntil below drains the scheduler inside this stack frame
    scheduler.ScheduleAt(Millis(10), [&cluster, v, mints] {
      cluster.worker(v, 0)->SubmitBlock(mints);
    });
  }
  uint64_t k = 0;
  for (TimePoint t = Millis(100); t < schedule.duration; t += schedule.tx_interval, ++k) {
    ValidatorId src = static_cast<ValidatorId>(k % n);
    ValidatorId dst = static_cast<ValidatorId>((k + 1) % n);
    ShardId lane_a = static_cast<ShardId>(k % num_lanes);
    ShardId lane_b = (k % 3 == 2) ? static_cast<ShardId>((lane_a + 1) % num_lanes) : lane_a;
    Bytes payload =
        ExecTx::Transfer(lane_accounts[src][lane_a], lane_accounts[dst][lane_b], 1).Encode();
    // ntlint:allow(deferred-capture): cluster outlives the callbacks — RunUntil below drains the scheduler inside this stack frame
    scheduler.ScheduleAt(t, [&cluster, src, payload] {
      cluster.worker(src, 0)->SubmitBlock({payload});
    });
  }
  // Committed headers can execute before their batch data syncs; retry the
  // executors periodically so deferred headers drain within the run.
  for (TimePoint t = Millis(500); t < schedule.duration; t += Millis(500)) {
    // ntlint:allow(deferred-capture): executors outlives the callbacks — RunUntil below drains the scheduler inside this stack frame
    scheduler.ScheduleAt(t, [&executors, n] {
      for (ValidatorId v = 0; v < n; ++v) {
        executors[v]->RetryPending();
      }
    });
  }

  cluster.Start();
  scheduler.RunUntil(schedule.duration);

  // --- end-of-run invariants ------------------------------------------------

  // (4) oracle agreement (Tusk and Bullshark): pure replay of the commit
  // rule over the union DAG; every correct validator's live sequence must be
  // a prefix of the reference sequence.
  if (schedule.system == SystemKind::kTusk || schedule.system == SystemKind::kBullshark) {
    std::vector<Digest> reference;
    bool reference_complete = true;
    if (schedule.system == SystemKind::kTusk) {
      CommonCoin coin(schedule.seed);
      TuskReplay replay =
          ReplayTusk(union_dag, cluster.committee(), coin, config.narwhal.gc_depth);
      reference = std::move(replay.ordered);
      reference_complete = replay.complete;
    } else {
      BullsharkReplay replay = ReplayBullshark(union_dag, cluster.committee(),
                                               config.narwhal.gc_depth, config.bullshark);
      reference = std::move(replay.ordered);
      reference_complete = replay.complete;
    }
    for (ValidatorId v = 0; v < n; ++v) {
      if (!schedule.IsCorrect(v)) {
        continue;
      }
      size_t common = std::min(commit_seq[v].size(), reference.size());
      for (size_t i = 0; i < common; ++i) {
        if (commit_seq[v][i] != reference[i]) {
          violation("oracle-agreement",
                    "validator " + std::to_string(v) + " commit #" + std::to_string(i) +
                        " is " + DigestPrefix(commit_seq[v][i]) + ", reference replay has " +
                        DigestPrefix(reference[i]));
          break;
        }
      }
      if (reference_complete && commit_seq[v].size() > reference.size()) {
        violation("oracle-agreement",
                  "validator " + std::to_string(v) + " committed " +
                      std::to_string(commit_seq[v].size()) +
                      " headers, reference replay only " + std::to_string(reference.size()));
      }
    }
  }

  // (8) shard oracle: pure replay of the sharded execution semantics over the
  // globally committed header sequence, resolving batch data from any
  // validator's worker store. Every live executor's per-lane digest sequence
  // (already cross-checked for agreement above) must be a prefix of the
  // reference — a live path that skips locks, misroutes keys, or reorders the
  // commit boundary diverges here even when every validator computes the same
  // wrong answer.
  {
    auto resolve = [&cluster, n](const BatchRef& ref) -> std::shared_ptr<const Batch> {
      for (ValidatorId v = 0; v < n; ++v) {
        if (Worker* w = cluster.worker(v, 0)) {
          if (auto batch = w->GetBatch(ref.digest)) {
            return batch;
          }
        }
      }
      return nullptr;
    };
    ShardReplay replay = ReplayShards(global_headers, num_lanes, resolve);
    size_t common = std::min(exec_global.size(), replay.lanes_after.size());
    for (size_t i = 0; i < common; ++i) {
      if (exec_global[i].second != replay.lanes_after[i]) {
        violation("shard-oracle", "live lane digests diverge from ReplayShards at executed "
                                  "header #" +
                                      std::to_string(i) + " (header " +
                                      DigestPrefix(exec_global[i].first) + ")");
        break;
      }
    }
    if (replay.complete && exec_global.size() > replay.lanes_after.size()) {
      violation("shard-oracle",
                "live executors executed " + std::to_string(exec_global.size()) +
                    " headers, ReplayShards only " + std::to_string(replay.lanes_after.size()));
    }
  }

  // (6) liveness: every correct validator commits within the slack window at
  // the end of the run (which extends well past GST by construction). Under
  // degraded-mode schedules (crashes/equivocators down to exactly 2f+1 alive
  // plus loss) each lost message costs a full retry delay and the coin can
  // pick dead leaders for consecutive waves, so the slack scales up.
  TimePoint gst = schedule.Gst();
  const TimeDelta slack = schedule.Stressed() ? Seconds(15) : kLivenessSlack;
  if (schedule.duration >= gst + slack + Seconds(2)) {
    for (ValidatorId v = 0; v < n; ++v) {
      if (!schedule.IsCorrect(v)) {
        continue;
      }
      std::string at_round = " (mempool round " + std::to_string(cluster.primary(v)->round());
      if (cluster.bullshark(v) != nullptr) {
        at_round += ", bullshark wave " +
                    std::to_string(cluster.bullshark(v)->last_committed_wave()) +
                    ", skipped anchors " + std::to_string(cluster.bullshark(v)->skipped_anchors());
      }
      if (cluster.hotstuff(v) != nullptr) {
        at_round += ", hs view " + std::to_string(cluster.hotstuff(v)->current_view()) +
                    ", hs commits " + std::to_string(cluster.hotstuff(v)->committed_blocks());
        if (auto* np = dynamic_cast<NarwhalProvider*>(cluster.provider(v))) {
          at_round += ", anchors pending " + std::to_string(np->pending_anchor_count());
        }
      }
      at_round += ")";
      if (last_commit[v] <= gst) {
        violation("liveness", "validator " + std::to_string(v) +
                                  " never committed after GST (last commit at " +
                                  std::to_string(last_commit[v]) + " us, GST " +
                                  std::to_string(gst) + " us)" + at_round);
      } else if (last_commit[v] < schedule.duration - slack) {
        violation("liveness", "validator " + std::to_string(v) + " stalled: last commit at " +
                                  std::to_string(last_commit[v]) + " us of " +
                                  std::to_string(schedule.duration) + " us" + at_round);
      }
    }
  }

  result.event_hash = scheduler.event_hash();
  result.events_fired = scheduler.events_fired();
  result.shard_state_hash = FoldShardState(exec_global);
  for (ValidatorId v = 0; v < n; ++v) {
    result.commits = std::max<uint64_t>(result.commits, commit_seq[v].size());
  }
  return result;
}

CheckResult RunScheduleWithDeterminismCheck(const FaultSchedule& schedule) {
  CheckResult first = RunSchedule(schedule);
  CheckResult second = RunSchedule(schedule);
  if (first.event_hash != second.event_hash || first.events_fired != second.events_fired) {
    first.violations.push_back(
        {"determinism", "two runs of seed " + std::to_string(schedule.seed) +
                            " diverged: event hash " + std::to_string(first.event_hash) +
                            " (" + std::to_string(first.events_fired) + " events) vs " +
                            std::to_string(second.event_hash) + " (" +
                            std::to_string(second.events_fired) + " events)"});
  } else if (first.shard_state_hash != second.shard_state_hash) {
    first.violations.push_back(
        {"determinism", "two runs of seed " + std::to_string(schedule.seed) +
                            " diverged in per-shard state: " +
                            std::to_string(first.shard_state_hash) + " vs " +
                            std::to_string(second.shard_state_hash)});
  } else if (first.Summary() != second.Summary()) {
    first.violations.push_back({"determinism", "two runs of seed " +
                                                   std::to_string(schedule.seed) +
                                                   " returned different verdicts"});
  }
  return first;
}

}  // namespace nt
