// The DST checker: runs the full stack (Narwhal+Tusk or Narwhal-HotStuff)
// under one FaultSchedule on the deterministic simulator and evaluates the
// global invariants the paper's correctness argument rests on, after every
// commit:
//
//   1. prefix-consistency — all correct validators' committed header
//      sequences are prefixes of one another (§3.2/§5 total order);
//   2. certificate uniqueness — at most one certificate per (round, author)
//      is ever accepted anywhere (§4.3 quorum-intersection);
//   3. causal completeness — every committed certificate's causal history is
//      fully available locally at commit time (§4 availability);
//   4. oracle agreement — each validator's Tusk commit output is a prefix of
//      a pure reference replay over the union DAG (§5 commit rule);
//   5. execution agreement — per-lane executor state digests agree across
//      validators at equal sequence numbers (§8.4);
//   6. liveness — commits resume within a bounded window after GST;
//   7. restart consistency — a recovered validator neither double-signs nor
//      re-delivers commits across the crash;
//   8. shard state — with sharded execution lanes (schedule.shards > 1, and
//      degenerately with one): token supply is conserved across lanes at
//      every commit boundary, and every live executor's lane-digest sequence
//      is a prefix of the pure ReplayShards oracle's.
//
// A run is deterministic: same schedule, same event-stream hash, same
// per-shard state hash, same verdict. Violations carry human-readable detail
// for the shrinker/CLI.
#ifndef SRC_CHECK_CHECKER_H_
#define SRC_CHECK_CHECKER_H_

#include <string>
#include <vector>

#include "src/check/schedule.h"

namespace nt {

struct Violation {
  // Invariant identifier: "prefix-consistency", "cert-uniqueness",
  // "causal-completeness", "oracle-agreement", "exec-agreement", "liveness",
  // "restart-consistency", "shard-conservation", "shard-oracle".
  std::string invariant;
  std::string detail;
};

struct CheckResult {
  std::vector<Violation> violations;
  // Determinism fingerprint of the run (Scheduler::event_hash at the end).
  uint64_t event_hash = 0;
  uint64_t events_fired = 0;
  // Fold of the globally agreed per-header lane-digest sequence; the
  // determinism audit requires it to match across identical runs (identical
  // event hash alone would not notice divergent execution state).
  uint64_t shard_state_hash = 0;
  // Commits observed at validator 0 (progress indicator).
  uint64_t commits = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Runs one schedule to completion and evaluates all invariants.
CheckResult RunSchedule(const FaultSchedule& schedule);

// Runs `schedule` twice and adds a "determinism" violation if the two runs'
// event-stream hashes (or verdicts) differ.
CheckResult RunScheduleWithDeterminismCheck(const FaultSchedule& schedule);

}  // namespace nt

#endif  // SRC_CHECK_CHECKER_H_
