#include "src/check/schedule.h"

#include <algorithm>
#include <sstream>

#include "src/common/rng.h"
#include "src/types/committee.h"

namespace nt {

TimePoint FaultSchedule::Gst() const {
  // A message sent just before an asynchrony window closes is still in
  // flight for up to factor × the worst one-way WAN propagation (~150 ms
  // plus jitter), and per-pair in-order delivery queues everything sent
  // afterwards behind it — so the network is only effectively synchronous
  // once that tail has drained. Partitions retransmit on heal with a fresh
  // (unscaled) delay, so they only carry the plain propagation tail.
  static constexpr TimeDelta kPropagationBound = Millis(250);
  TimePoint gst = 0;
  for (const Partition& p : partitions) {
    gst = std::max(gst, p.end + kPropagationBound);
  }
  for (const Async& a : asyncs) {
    gst = std::max(gst, a.end + static_cast<TimeDelta>(a.factor *
                                                       static_cast<double>(kPropagationBound)));
  }
  // A restarted validator replays its store instantly (simulated disk) but
  // still has to re-fetch the DAG suffix it missed through the header
  // synchronizer — a round-trip per missing round in the worst case. Two
  // seconds covers the deepest suffix a bounded down-window can create.
  static constexpr TimeDelta kResyncBound = Seconds(2);
  for (const Crash& c : crashes) {
    if (c.recovers()) {
      gst = std::max(gst, c.recover_at + kResyncBound);
    }
  }
  return gst;
}

size_t FaultSchedule::FaultCount() const {
  return crashes.size() + partitions.size() + asyncs.size() + equivocators.size() +
         (loss_rate > 0 ? 1 : 0);
}

bool FaultSchedule::IsCorrect(ValidatorId v) const {
  for (const Crash& c : crashes) {
    if (c.validator == v && !c.recovers()) {
      return false;
    }
  }
  for (const Equivocate& e : equivocators) {
    if (e.validator == v) {
      return false;
    }
  }
  return true;
}

FaultSchedule GenerateSchedule(uint64_t seed, std::optional<SystemKind> system_override) {
  Rng rng = Rng::Derive(seed, "dst-schedule");
  FaultSchedule s;
  s.seed = seed;
  s.system = system_override.value_or(rng.NextBool(0.5) ? SystemKind::kTusk
                                                        : SystemKind::kNarwhalHs);
  // Small committees explore interleavings faster and shrink better; larger
  // ones exercise multi-fault schedules.
  static constexpr uint32_t kSizes[] = {4, 4, 7, 10};
  s.validators = kSizes[rng.NextBelow(4)];
  // Fault budget: at most f Byzantine-or-crashed validators total, each
  // validator faulty in at most one way.
  uint32_t fault_budget = Committee::MaxFaultyFor(s.validators);
  std::vector<ValidatorId> pool;
  for (ValidatorId v = 0; v < s.validators; ++v) {
    pool.push_back(v);
  }
  // Deterministic Fisher-Yates over the validator pool.
  for (size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[rng.NextBelow(i)]);
  }
  uint32_t crashes = static_cast<uint32_t>(rng.NextBelow(fault_budget + 1));
  uint32_t equivocators = static_cast<uint32_t>(
      rng.NextBelow(static_cast<uint64_t>(fault_budget - crashes) + 1));
  size_t next = 0;
  for (uint32_t i = 0; i < crashes; ++i) {
    s.crashes.push_back({pool[next++], Seconds(1) + static_cast<TimePoint>(
                                                        rng.NextBelow(Seconds(6)))});
  }
  for (uint32_t i = 0; i < equivocators; ++i) {
    s.equivocators.push_back({pool[next++], static_cast<TimePoint>(rng.NextBelow(Seconds(2)))});
  }

  // Partitions may hit any validator (partitioning is a network fault, not a
  // validator fault, so it does not count against f).
  uint32_t partitions = static_cast<uint32_t>(rng.NextBelow(3));
  for (uint32_t i = 0; i < partitions; ++i) {
    TimePoint start = Seconds(1) + static_cast<TimePoint>(rng.NextBelow(Seconds(5)));
    TimeDelta width = Millis(500) + static_cast<TimeDelta>(rng.NextBelow(Seconds(3)));
    s.partitions.push_back(
        {static_cast<ValidatorId>(rng.NextBelow(s.validators)), start, start + width});
  }

  uint32_t asyncs = static_cast<uint32_t>(rng.NextBelow(3));
  for (uint32_t i = 0; i < asyncs; ++i) {
    TimePoint start = static_cast<TimePoint>(rng.NextBelow(Seconds(6)));
    TimeDelta width = Millis(500) + static_cast<TimeDelta>(rng.NextBelow(Seconds(3)));
    s.asyncs.push_back({start, start + width, rng.NextDouble(4.0, 20.0)});
  }

  if (rng.NextBool(0.5)) {
    s.loss_rate = rng.NextDouble(0.01, 0.10);
  }

  s.tx_interval = Millis(150) + static_cast<TimeDelta>(rng.NextBelow(Millis(500)));

  // Restart decisions are drawn *last* so the base schedule for a seed is
  // byte-identical to the pre-restart corpus (checked-in repros and shrink
  // behavior stay comparable). About half the crashes come back after a
  // 1–8 s down-window: long enough for the DAG to move past the crashed
  // validator, short enough to keep runs bounded. A restarted validator
  // stays inside the fault budget — it was one of the f while down.
  for (FaultSchedule::Crash& c : s.crashes) {
    if (rng.NextBool(0.5)) {
      c.recover_at = c.at + Seconds(1) + static_cast<TimeDelta>(rng.NextBelow(Seconds(7)));
    }
  }

  // Liveness needs a bounded window of synchrony after GST (wider for
  // degraded-mode schedules where rounds are retry-paced).
  s.duration = s.Gst() + s.PostGstWindow();
  return s;
}

// ------------------------------------------------------------- repro format

std::string FaultSchedule::Encode() const {
  std::ostringstream out;
  out << "seed=" << seed << "\n";
  out << "system="
      << (system == SystemKind::kTusk
              ? "tusk"
              : system == SystemKind::kBullshark ? "bullshark" : "narwhal-hs")
      << "\n";
  out << "validators=" << validators << "\n";
  out << "duration_us=" << duration << "\n";
  out << "tx_interval_us=" << tx_interval << "\n";
  if (shards != 1) {
    out << "shards=" << shards << "\n";
  }
  if (loss_rate > 0) {
    out << "loss=" << loss_rate << "\n";
  }
  for (const Crash& c : crashes) {
    if (c.recovers()) {
      out << "restart=" << c.validator << "@" << c.at << "-" << c.recover_at << "\n";
    } else {
      out << "crash=" << c.validator << "@" << c.at << "\n";
    }
  }
  for (const Partition& p : partitions) {
    out << "partition=" << p.validator << "@" << p.start << "-" << p.end << "\n";
  }
  for (const Async& a : asyncs) {
    out << "async=" << a.start << "-" << a.end << "x" << a.factor << "\n";
  }
  for (const Equivocate& e : equivocators) {
    out << "equivocate=" << e.validator << "@" << e.at << "\n";
  }
  if (bug_accept_2f_certs) {
    out << "bug=accept_2f_certs\n";
  }
  if (bug_skip_tusk_support) {
    out << "bug=skip_tusk_support\n";
  }
  if (bug_skip_bullshark_support) {
    out << "bug=skip_bullshark_support\n";
  }
  if (bug_skip_cross_shard_lock) {
    out << "bug=skip_cross_shard_lock\n";
  }
  return out.str();
}

std::optional<FaultSchedule> FaultSchedule::Decode(const std::string& text) {
  FaultSchedule s;
  s.loss_rate = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return std::nullopt;
    }
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    std::istringstream v(value);
    char sep = 0;
    if (key == "seed") {
      v >> s.seed;
    } else if (key == "system") {
      if (value == "tusk") {
        s.system = SystemKind::kTusk;
      } else if (value == "narwhal-hs") {
        s.system = SystemKind::kNarwhalHs;
      } else if (value == "bullshark") {
        s.system = SystemKind::kBullshark;
      } else {
        return std::nullopt;
      }
    } else if (key == "validators") {
      v >> s.validators;
    } else if (key == "duration_us") {
      v >> s.duration;
    } else if (key == "tx_interval_us") {
      v >> s.tx_interval;
    } else if (key == "shards") {
      v >> s.shards;
      if (s.shards < 1) {
        return std::nullopt;
      }
    } else if (key == "loss") {
      v >> s.loss_rate;
    } else if (key == "crash") {
      FaultSchedule::Crash c;
      v >> c.validator >> sep >> c.at;
      if (sep != '@') {
        return std::nullopt;
      }
      s.crashes.push_back(c);
    } else if (key == "restart") {
      FaultSchedule::Crash c;
      char dash = 0;
      v >> c.validator >> sep >> c.at >> dash >> c.recover_at;
      if (sep != '@' || dash != '-' || c.recover_at <= c.at) {
        return std::nullopt;
      }
      s.crashes.push_back(c);
    } else if (key == "partition") {
      FaultSchedule::Partition p;
      char dash = 0;
      v >> p.validator >> sep >> p.start >> dash >> p.end;
      if (sep != '@' || dash != '-') {
        return std::nullopt;
      }
      s.partitions.push_back(p);
    } else if (key == "async") {
      FaultSchedule::Async a;
      char x = 0;
      v >> a.start >> sep >> a.end >> x >> a.factor;
      if (sep != '-' || x != 'x') {
        return std::nullopt;
      }
      s.asyncs.push_back(a);
    } else if (key == "equivocate") {
      FaultSchedule::Equivocate e;
      v >> e.validator >> sep >> e.at;
      if (sep != '@') {
        return std::nullopt;
      }
      s.equivocators.push_back(e);
    } else if (key == "bug") {
      if (value == "accept_2f_certs") {
        s.bug_accept_2f_certs = true;
      } else if (value == "skip_tusk_support") {
        s.bug_skip_tusk_support = true;
      } else if (value == "skip_bullshark_support") {
        s.bug_skip_bullshark_support = true;
      } else if (value == "skip_cross_shard_lock") {
        s.bug_skip_cross_shard_lock = true;
      } else {
        return std::nullopt;
      }
    } else {
      return std::nullopt;  // Unknown key: refuse to half-replay a repro.
    }
    if (v.fail()) {
      return std::nullopt;
    }
  }
  if (s.validators < 1 || s.duration <= 0) {
    return std::nullopt;
  }
  return s;
}

}  // namespace nt
