#include "src/hotstuff/hotstuff.h"

#include <algorithm>
#include <string_view>

#include "src/common/codec.h"
#include "src/common/logging.h"
#include "src/types/cert_cache.h"

namespace nt {
namespace {

const Digest kGenesisDigest{};  // All zeros.

// Consensus-store keys. Tags are globally unique within the store shared by
// consensus interpreters ('T'/'U' belong to Tusk, 'N' to NarwhalProvider).
Digest HsCommitKey(const Digest& digest) {
  Writer w;
  w.PutU8('K');
  w.PutRaw(digest);
  return Sha256::Hash(w.bytes().data(), w.size());
}
Digest HsVoteKey() { return Sha256::Hash(std::string_view("hs/vote")); }
Digest HsLockKey() { return Sha256::Hash(std::string_view("hs/lock")); }
Digest HsViewKey() { return Sha256::Hash(std::string_view("hs/view")); }
Digest HsProposedKey() { return Sha256::Hash(std::string_view("hs/proposed")); }
Digest HsHighQcKey() { return Sha256::Hash(std::string_view("hs/highqc")); }

void EncodeQc(Writer& w, const QuorumCert& qc) {
  w.PutRaw(qc.block_digest);
  w.PutU64(qc.view);
  w.PutU32(static_cast<uint32_t>(qc.votes.size()));
  for (const auto& [voter, sig] : qc.votes) {
    w.PutU32(voter);
    w.PutRaw(sig);
  }
}

QuorumCert DecodeQc(Reader& r) {
  QuorumCert qc;
  qc.block_digest = r.GetArray<32>();
  qc.view = r.GetU64();
  uint32_t count = r.GetU32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ValidatorId voter = r.GetU32();
    Signature sig = r.GetArray<64>();
    qc.votes.emplace_back(voter, sig);
  }
  return qc;
}

}  // namespace

HotStuff::HotStuff(ValidatorId id, const Committee& committee, const HotStuffConfig& config,
                   Network* network, Signer* signer, PayloadProvider* provider)
    : id_(id),
      committee_(committee),
      config_(config),
      network_(network),
      signer_(signer),
      provider_(provider) {
  committed_.insert(kGenesisDigest);
  last_committed_ = kGenesisDigest;
  high_qc_ = QuorumCert{};  // Genesis QC: zero digest, view 0.
}

HotStuff::~HotStuff() { *alive_ = false; }

void HotStuff::OnStart() {
  provider_->OnStart();
  StartTimer();
  MaybePropose();
}

// ---------------------------------------------------------------- persistence

void HotStuff::PersistVote() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('W');
  w.PutU64(last_voted_view_);
  w.PutRaw(last_voted_digest_);
  store_->Put(HsVoteKey(), w.Take());
  // Durability barrier: the vote record must hit disk before the signature
  // leaves this node, or a crash-restart could sign a conflicting vote.
  store_->Sync();
}

void HotStuff::PersistLock() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('L');
  w.PutU64(locked_view_);
  w.PutRaw(locked_block_);
  store_->Put(HsLockKey(), w.Take());
  // The lock is part of the safety rule; losing it across a restart could
  // let the node vote for a branch conflicting with a commit in flight.
  store_->Sync();
}

void HotStuff::PersistView() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('E');
  w.PutU64(view_);
  store_->Put(HsViewKey(), w.Take());
}

void HotStuff::PersistProposedMarker() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('F');
  w.PutU64(view_);
  store_->Put(HsProposedKey(), w.Take());
  // Leader-equivocation guard: restart must not re-propose a different
  // block in a view this node already proposed in.
  store_->Sync();
}

void HotStuff::PersistHighQc() {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('Q');
  EncodeQc(w, high_qc_);
  store_->Put(HsHighQcKey(), w.Take());
}

void HotStuff::PersistCommit(const Digest& digest) {
  if (store_ == nullptr) {
    return;
  }
  Writer w;
  w.PutU8('K');
  w.PutRaw(digest);
  store_->Put(HsCommitKey(digest), w.Take());
}

void HotStuff::Recover() {
  if (store_ == nullptr) {
    return;
  }
  View proposed_marker = 0;
  bool have_marker = false;
  std::vector<Digest> commits;
  store_->ForEach([&](const Digest&, const Bytes& value) {
    if (value.empty()) {
      return;
    }
    Reader r(value.data() + 1, value.size() - 1);
    switch (value[0]) {
      case 'W': {
        View view = r.GetU64();
        Digest digest = r.GetArray<32>();
        if (r.ok()) {
          last_voted_view_ = view;
          last_voted_digest_ = digest;
        }
        break;
      }
      case 'L': {
        View view = r.GetU64();
        Digest digest = r.GetArray<32>();
        if (r.ok()) {
          locked_view_ = view;
          locked_block_ = digest;
        }
        break;
      }
      case 'E': {
        View view = r.GetU64();
        if (r.ok()) {
          view_ = std::max(view_, view);
        }
        break;
      }
      case 'F': {
        View view = r.GetU64();
        if (r.ok()) {
          proposed_marker = view;
          have_marker = true;
        }
        break;
      }
      case 'Q': {
        QuorumCert qc = DecodeQc(r);
        if (r.ok() && qc.view > high_qc_.view) {
          high_qc_ = qc;
        }
        break;
      }
      case 'K': {
        Digest digest = r.GetArray<32>();
        if (r.ok()) {
          commits.push_back(digest);
        }
        break;
      }
      default:
        break;
    }
  });
  // A crash between persisting the vote/QC and the view record must not
  // resurrect the node in an older view than it acted in.
  view_ = std::max(view_, std::max(last_voted_view_, high_qc_.view + 1));
  if (have_marker && proposed_marker >= view_) {
    proposed_in_view_ = true;  // Never a second proposal for this view.
  }
  // Restore the committed set; block bodies are gone but the set terminates
  // ancestor walks, so catch-up stops at the recovered commit frontier and
  // post-recovery commits extend the pre-crash prefix. Delivery bookkeeping
  // (payload re-injection) is the provider's own recovered state.
  for (const Digest& d : commits) {
    committed_.insert(d);
  }
  committed_count_ = commits.size();
}

void HotStuff::Broadcast(const MessagePtr& msg) {
  for (ValidatorId v = 0; v < committee_.size(); ++v) {
    if (v != id_) {
      network_->Send(net_id_, peers_[v], msg);
    }
  }
}

const HsBlock* HotStuff::GetBlock(const Digest& digest) const {
  auto it = blocks_.find(digest);
  return it == blocks_.end() ? nullptr : it->second.get();
}

// -------------------------------------------------------------- view machinery

void HotStuff::EnterView(View view) {
  if (view <= view_) {
    return;
  }
  view_ = view;
  proposed_in_view_ = false;
  consecutive_timeouts_ = 0;  // Progress: restart backoff from the base.
  PersistView();
  StartTimer();
  MaybePropose();
}

void HotStuff::StartTimer() {
  if (view_timer_ != Scheduler::kInvalidTimer) {
    network_->scheduler()->Cancel(view_timer_);
  }
  uint32_t doublings = std::min(consecutive_timeouts_, config_.max_backoff_doublings);
  TimeDelta timeout = config_.base_timeout << doublings;
  View armed_view = view_;
  view_timer_ = network_->scheduler()->ScheduleAfter(
      timeout, [this, alive = alive_, armed_view] {
        if (*alive) {
          OnTimeout(armed_view);
        }
      });
}

void HotStuff::OnTimeout(View view) {
  if (view != view_) {
    return;  // Stale timer.
  }
  ++timeouts_fired_;
  ++consecutive_timeouts_;
  NT_TRACE(tracer_, IncrCounter("hotstuff/timeouts"));
  Signature sig = signer_->Sign(TimeoutCert::VotePreimage(view));
  auto msg = std::make_shared<MsgHsTimeout>(view, id_, sig, high_qc_);
  // ntlint:allow(wal-before-send): timeout signature is a pure function of the view — a restarted node re-signs the identical preimage, so there is no equivocation to persist against
  Broadcast(msg);
  HandleTimeout(*msg);
  StartTimer();  // Same view, doubled timeout.
}

void HotStuff::MaybePropose() {
  if (proposed_in_view_ || LeaderOf(view_) != id_) {
    return;
  }
  auto block = std::make_shared<HsBlock>();
  block->author = id_;
  block->view = view_;
  block->parent = high_qc_.block_digest;
  block->justify = high_qc_;
  if (high_qc_.view + 1 != view_) {
    // Entered this view through timeouts: justify the gap with the TC.
    if (!last_tc_.has_value() || last_tc_->view + 1 != view_) {
      return;  // Cannot justify this view yet; wait for QC or TC.
    }
    block->tc = last_tc_;
  }
  block->payload = provider_->GetPayload(view_);
  Digest digest = block->ComputeDigest();
  block->author_sig = signer_->Sign(digest);
  proposed_in_view_ = true;
  PersistProposedMarker();

  blocks_[digest] = block;
  Broadcast(std::make_shared<MsgHsProposal>(block, digest));
  network_->scheduler()->ScheduleAfter(config_.proposal_retry_delay,
                                       [this, alive = alive_, digest, v = block->view] {
                                         if (*alive) {
                                           RetryProposal(digest, v, 0);
                                         }
                                       });
  UpdateChain(*block);
  TryVote(digest);
}

void HotStuff::RetryProposal(const Digest& digest, View view, uint32_t attempt) {
  if (view_ != view) {
    return;  // The view resolved (QC or TC); the proposal is moot.
  }
  auto it = blocks_.find(digest);
  if (it == blocks_.end()) {
    return;
  }
  Broadcast(std::make_shared<MsgHsProposal>(it->second, digest));
  uint32_t next = attempt + 1;
  TimeDelta delay = config_.proposal_retry_delay << std::min(next, 3u);
  network_->scheduler()->ScheduleAfter(delay, [this, alive = alive_, digest, view, next] {
    if (*alive) {
      RetryProposal(digest, view, next);
    }
  });
}

// ---------------------------------------------------------------- proposals

void HotStuff::HandleProposal(uint32_t from, const MsgHsProposal& msg) {
  (void)from;  // Fetch hints use the block author's net id, not the relayer.
  const HsBlock& block = *msg.block;
  if (!committee_.Contains(block.author) || block.author != LeaderOf(block.view)) {
    return;
  }
  if (blocks_.count(msg.digest) != 0) {
    // A duplicate means the leader is retransmitting because it is still
    // short of a QC — our earlier vote may have been the lost message.
    // Re-sending it is safe (same view, same digest; the leader's vote set
    // dedupes by voter) and completes the retransmission loop.
    if (last_voted_view_ == block.view && last_voted_digest_ == msg.digest) {
      CastVote(block, msg.digest);
    }
    return;
  }
  if (msg.digest != block.ComputeDigest() ||
      !signer_->Verify(committee_.key_of(block.author), msg.digest, block.author_sig)) {
    LOG_WARN() << "invalid proposal signature from " << block.author;
    return;
  }
  if (block.parent != block.justify.block_digest) {
    return;  // Malformed: proposals must extend their justification.
  }
  View justified = block.justify.view;
  if (block.tc.has_value()) {
    justified = std::max(justified, block.tc->view);
  }
  if (block.view != justified + 1) {
    return;  // View not justified by QC/TC.
  }
  if (!block.justify.Verify(committee_, *signer_, &cert_cache_)) {
    return;
  }
  if (block.tc.has_value() && !block.tc->Verify(committee_, *signer_, &cert_cache_)) {
    return;
  }

  blocks_[msg.digest] = msg.block;
  AdoptQc(block.justify);
  UpdateChain(block);
  TryVote(msg.digest);

  // A new block may complete deferred ancestor chains.
  std::vector<Digest> retry;
  for (const auto& [digest, deferred_block] : deferred_) {
    retry.push_back(digest);
  }
  for (const Digest& digest : retry) {
    auto it = deferred_.find(digest);
    if (it != deferred_.end()) {
      deferred_.erase(it);
      TryVote(digest);
    }
  }
}

bool HotStuff::HaveAncestors(const HsBlock& block) const {
  Digest cursor = block.parent;
  while (cursor != kGenesisDigest && committed_.count(cursor) == 0) {
    const HsBlock* b = GetBlock(cursor);
    if (b == nullptr) {
      return false;
    }
    cursor = b->parent;
  }
  return true;
}

bool HotStuff::Extends(const Digest& descendant, const Digest& ancestor) const {
  Digest cursor = descendant;
  while (cursor != kGenesisDigest) {
    if (cursor == ancestor) {
      return true;
    }
    const HsBlock* b = GetBlock(cursor);
    if (b == nullptr) {
      return false;
    }
    cursor = b->parent;
  }
  return ancestor == kGenesisDigest;
}

void HotStuff::TryVote(const Digest& digest) {
  const HsBlock* block = GetBlock(digest);
  if (block == nullptr) {
    return;
  }
  if (block->view != view_ || last_voted_view_ >= block->view) {
    return;
  }
  if (!HaveAncestors(*block)) {
    deferred_[digest] = blocks_[digest];
    RequestBlock(block->parent, peers_[block->author]);
    return;
  }
  // Safety rule: extend the lock, or see a newer justification than the lock.
  if (!(block->justify.view > locked_view_ || Extends(digest, locked_block_))) {
    return;
  }
  if (payload_pending_.count(digest) != 0) {
    return;  // Availability fetch in flight.
  }
  uint32_t proposer_net = peers_[block->author];
  if (!provider_->CheckPayload(block->payload, proposer_net, [this, digest] {
        payload_pending_.erase(digest);
        TryVote(digest);
      })) {
    payload_pending_.insert(digest);
    return;
  }
  CastVote(*block, digest);
}

void HotStuff::CastVote(const HsBlock& block, const Digest& digest) {
  last_voted_view_ = block.view;
  last_voted_digest_ = digest;
  // Write-ahead: the vote ledger is durable before the signature leaves.
  PersistVote();
  Signature sig = signer_->Sign(QuorumCert::VotePreimage(digest, block.view));
  auto vote = std::make_shared<MsgHsVote>(digest, block.view, id_, sig);
  ValidatorId next_leader = LeaderOf(block.view + 1);
  if (next_leader == id_) {
    HandleVote(*vote);
  } else {
    network_->Send(net_id_, peers_[next_leader], vote);
  }
}

// ------------------------------------------------------------------ votes/QCs

void HotStuff::HandleVote(const MsgHsVote& msg) {
  if (!committee_.Contains(msg.voter)) {
    return;
  }
  auto key = std::make_pair(msg.view, msg.block_digest);
  VoteSet& set = vote_sets_[key];
  if (set.votes.count(msg.voter) != 0) {
    return;
  }
  if (!signer_->Verify(committee_.key_of(msg.voter),
                       QuorumCert::VotePreimage(msg.block_digest, msg.view), msg.sig)) {
    return;
  }
  set.votes[msg.voter] = msg.sig;
  if (set.votes.size() < committee_.quorum_threshold()) {
    return;
  }
  QuorumCert qc;
  qc.block_digest = msg.block_digest;
  qc.view = msg.view;
  for (const auto& [voter, sig] : set.votes) {
    if (qc.votes.size() >= committee_.quorum_threshold()) {
      break;
    }
    qc.votes.emplace_back(voter, sig);
  }
  vote_sets_.erase(key);
  AdoptQc(qc);
}

void HotStuff::AdoptQc(const QuorumCert& qc) {
  if (qc.view > high_qc_.view) {
    high_qc_ = qc;
    PersistHighQc();
  }
  if (qc.view + 1 > view_) {
    EnterView(qc.view + 1);
  }
}

void HotStuff::UpdateChain(const HsBlock& block) {
  // Chained-HotStuff UPDATE (event-driven HotStuff, Algorithm 5):
  //   b'' = justify(b*), b' = justify(b''), b = justify(b').
  //   lock b' on a 2-chain; decide b on a 3-chain with direct parent links.
  const Digest& x_digest = block.justify.block_digest;
  const HsBlock* x = GetBlock(x_digest);
  if (x == nullptr) {
    return;
  }
  const Digest& y_digest = x->justify.block_digest;
  const HsBlock* y = GetBlock(y_digest);
  if (y == nullptr) {
    return;
  }
  if (y->view > locked_view_) {
    locked_view_ = y->view;
    locked_block_ = y_digest;
    PersistLock();
  }
  const Digest& z_digest = y->justify.block_digest;
  const HsBlock* z = GetBlock(z_digest);
  if (z == nullptr) {
    return;
  }
  if (x->parent == y_digest && y->parent == z_digest) {
    CommitUpTo(z_digest);
  }
}

void HotStuff::CommitUpTo(const Digest& digest) {
  if (committed_.count(digest) != 0) {
    return;
  }
  // Gather the uncommitted ancestor chain, oldest first.
  std::vector<Digest> chain;
  Digest cursor = digest;
  while (cursor != kGenesisDigest && committed_.count(cursor) == 0) {
    const HsBlock* b = GetBlock(cursor);
    if (b == nullptr) {
      // Missing ancestor: fetch it; the commit recurs when the chain heals.
      RequestBlock(cursor, peers_[LeaderOf(view_)]);
      return;
    }
    chain.push_back(cursor);
    cursor = b->parent;
  }
  std::reverse(chain.begin(), chain.end());
  for (const Digest& d : chain) {
    const HsBlock* b = GetBlock(d);
    // Write-ahead: the commit record is durable before any hook observes it.
    PersistCommit(d);
    committed_.insert(d);
    last_committed_ = d;
    ++committed_count_;
    NT_TRACE(tracer_, IncrCounter("hotstuff/committed_blocks"));
    provider_->OnCommit(b->payload, b->author);
    if (on_commit_) {
      on_commit_(*b, b->view);
    }
  }
  // Commits are final: QCs/TCs for views below the oldest block just
  // committed will not be presented for verification again (catch-up blocks
  // are digest-bound, not re-verified), so release their cache entries.
  if (!chain.empty()) {
    const HsBlock* oldest = GetBlock(chain.front());
    if (oldest != nullptr && oldest->view > 0) {
      cert_cache_.OnGcRound(oldest->view);
    }
  }
}

// ------------------------------------------------------------------- timeouts

void HotStuff::HandleTimeout(const MsgHsTimeout& msg) {
  if (!committee_.Contains(msg.voter)) {
    return;
  }
  if (msg.view + 1 < view_) {
    return;  // Stale: a TC for this view would not advance us.
  }
  if (!signer_->Verify(committee_.key_of(msg.voter), TimeoutCert::VotePreimage(msg.view),
                       msg.sig)) {
    return;
  }
  // The attached high QC helps laggards catch up — but only if it is real; a
  // Byzantine voter must not be able to fast-forward views with a forgery.
  if (msg.high_qc.Verify(committee_, *signer_, &cert_cache_)) {
    AdoptQc(msg.high_qc);
  }
  auto& set = timeout_sets_[msg.view];
  bool fresh = set.emplace(msg.voter, msg.sig).second;
  // Direct reconciliation: a peer timing out our current view may have
  // missed our own timeout broadcast (it is only re-sent on this node's
  // exponentially backed-off view timer, which can be tens of seconds deep
  // in a stuck view). Answer the first timeout we see from each peer with
  // our signature so the exchange converges pairwise in one round trip.
  // Replying only to fresh signatures makes the echo terminate.
  if (fresh && msg.view == view_ && msg.voter != id_ && set.count(id_) != 0) {
    Signature sig = signer_->Sign(TimeoutCert::VotePreimage(msg.view));
    // ntlint:allow(wal-before-send): timeout signature is a pure function of the view — a restarted node re-signs the identical preimage, so there is no equivocation to persist against
    network_->Send(net_id_, peers_[msg.voter],
                   std::make_shared<MsgHsTimeout>(msg.view, id_, sig, high_qc_));
  }
  if (set.size() < committee_.quorum_threshold()) {
    // Timeout amplification (the f+1 rule of LibraBFT-style pacemakers):
    // if a validity quorum is timing out a view at or above ours and we have
    // not joined yet, join immediately. Without this, validators split
    // across adjacent views can deadlock — each view one signature short of
    // a timeout certificate.
    if (set.size() >= committee_.validity_threshold() && msg.view >= view_ &&
        set.count(id_) == 0) {
      if (msg.view > view_) {
        view_ = msg.view;  // Jump without proposing; safety is unaffected.
        proposed_in_view_ = false;
        consecutive_timeouts_ = 0;
        PersistView();
      }
      OnTimeout(view_);  // Sign + broadcast + rearm the backoff timer.
    }
    return;
  }
  TimeoutCert tc;
  tc.view = msg.view;
  for (const auto& [voter, sig] : set) {
    if (tc.votes.size() >= committee_.quorum_threshold()) {
      break;
    }
    tc.votes.emplace_back(voter, sig);
  }
  if (!last_tc_.has_value() || tc.view > last_tc_->view) {
    last_tc_ = tc;
  }
  timeout_sets_.erase(msg.view);
  EnterView(tc.view + 1);
}

// -------------------------------------------------------------------- catch-up

void HotStuff::RequestBlock(const Digest& digest, uint32_t hint) {
  if (digest == kGenesisDigest || blocks_.count(digest) != 0) {
    return;
  }
  if (!fetching_blocks_.insert(digest).second) {
    return;
  }
  network_->Send(net_id_, hint, std::make_shared<MsgHsBlockRequest>(digest));
  network_->scheduler()->ScheduleAfter(config_.sync_retry_delay, [this, alive = alive_, digest] {
    if (!*alive || blocks_.count(digest) != 0) {
      return;
    }
    fetching_blocks_.erase(digest);
    // Rotate: ask a different validator next time.
    RequestBlock(digest, peers_[(id_ + 1 + fetch_rotation_++ % committee_.size()) %
                                committee_.size()]);
  });
}

// -------------------------------------------------------------------- dispatch

void HotStuff::OnMessage(uint32_t from, const MessagePtr& msg) {
  if (auto proposal = std::dynamic_pointer_cast<const MsgHsProposal>(msg)) {
    HandleProposal(from, *proposal);
    return;
  }
  if (auto vote = std::dynamic_pointer_cast<const MsgHsVote>(msg)) {
    HandleVote(*vote);
    return;
  }
  if (auto timeout = std::dynamic_pointer_cast<const MsgHsTimeout>(msg)) {
    HandleTimeout(*timeout);
    return;
  }
  if (auto request = std::dynamic_pointer_cast<const MsgHsBlockRequest>(msg)) {
    auto it = blocks_.find(request->digest);
    if (it != blocks_.end()) {
      network_->Send(net_id_, from, std::make_shared<MsgHsBlockResponse>(it->second, it->first));
    }
    return;
  }
  if (auto response = std::dynamic_pointer_cast<const MsgHsBlockResponse>(msg)) {
    if (response->block->ComputeDigest() != response->digest) {
      return;
    }
    fetching_blocks_.erase(response->digest);
    if (blocks_.emplace(response->digest, response->block).second) {
      UpdateChain(*response->block);
      // Recursively heal the chain if needed, then retry deferred votes.
      if (response->block->parent != kGenesisDigest &&
          blocks_.count(response->block->parent) == 0 &&
          committed_.count(response->block->parent) == 0) {
        RequestBlock(response->block->parent, from);
      }
      std::vector<Digest> retry;
      for (const auto& [digest, block] : deferred_) {
        retry.push_back(digest);
      }
      for (const Digest& digest : retry) {
        deferred_.erase(digest);
        TryVote(digest);
      }
    }
    return;
  }
  // Mempool-mode traffic (gossip, batches) belongs to the provider.
  provider_->OnMessage(from, msg);
}

}  // namespace nt
