// Chained HotStuff [38] with a LibraBFT-style pacemaker (paper §6: "we
// implement the pacemaker module that is abstracted away following the
// LibraBFT specification").
//
//  - Round-robin leaders; one proposal per view extending the highest QC.
//  - Votes go to the next view's leader, who aggregates 2f+1 into a QC.
//  - Safety: vote for a proposal iff it extends the locked block or its
//    justify QC is newer than the lock; lock advances on 2-chains; commit on
//    3-chains with direct parent links.
//  - Liveness: per-view timers with exponential backoff; 2f+1 timeout
//    messages form a timeout certificate that justifies the next view.
//
// The payload is pluggable (PayloadProvider), yielding baseline-HS,
// Batched-HS, and Narwhal-HS from one consensus core.
#ifndef SRC_HOTSTUFF_HOTSTUFF_H_
#define SRC_HOTSTUFF_HOTSTUFF_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/common/trace.h"
#include "src/hotstuff/messages.h"
#include "src/hotstuff/payload.h"
#include "src/net/network.h"
#include "src/store/store.h"
#include "src/types/cert_cache.h"
#include "src/types/committee.h"

namespace nt {

struct HotStuffConfig {
  // Initial per-view timeout; doubles per repeated timeout within the same
  // view (capped) and resets when the view advances — LibraBFT-style
  // progress-based backoff.
  TimeDelta base_timeout = Seconds(1);
  uint32_t max_backoff_doublings = 3;
  // Retry delay for ancestor catch-up requests.
  TimeDelta sync_retry_delay = Millis(300);
  // In-view proposal retransmission (paper §6: stored messages are re-sent
  // until no longer needed for progress). A proposal and its votes are sent
  // once per view; without retransmission a single lost message wastes the
  // entire view, and at exactly 2f+1 alive validators under loss the
  // three consecutive clean views a commit needs almost never line up.
  TimeDelta proposal_retry_delay = Millis(300);
};

class HotStuff : public NetNode {
 public:
  HotStuff(ValidatorId id, const Committee& committee, const HotStuffConfig& config,
           Network* network, Signer* signer, PayloadProvider* provider);
  ~HotStuff() override;

  void set_net_id(uint32_t id) { net_id_ = id; }

  // Attaches the durable consensus store (non-owning; null = ephemeral).
  // The vote-safety ledger (last vote, lock, view, proposal marker, high QC,
  // committed digests) is write-ahead persisted; blocks themselves are not —
  // a recovered node re-fetches chain bodies through the existing ancestor
  // catch-up path.
  void set_store(Store* store) { store_ = store; }

  // Restores the vote-safety ledger from the store. Call after construction
  // and before OnStart. The restored last-voted/lock/proposed-view state is
  // the double-vote (equivocation) guard: a recovered validator never signs
  // a second vote or proposal for a view it signed pre-crash.
  void Recover();
  void set_peers(std::vector<uint32_t> consensus_net_ids) { peers_ = std::move(consensus_net_ids); }

  // Attaches the cluster's tracer (nullptr = tracing off, the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Fired per committed block, in total order.
  using CommitHook = std::function<void(const HsBlock& block, View view)>;
  void set_on_commit(CommitHook hook) { on_commit_ = std::move(hook); }

  // --- NetNode -----------------------------------------------------------------
  void OnStart() override;
  void OnMessage(uint32_t from, const MessagePtr& msg) override;

  // --- introspection -------------------------------------------------------------
  View current_view() const { return view_; }
  uint64_t committed_blocks() const { return committed_count_; }
  uint64_t timeouts_fired() const { return timeouts_fired_; }
  ValidatorId LeaderOf(View view) const { return static_cast<ValidatorId>(view % committee_.size()); }
  // This node's verified-QC/TC cache — per-instance so every simulated
  // validator re-verifies certificates independently (see Primary::cert_cache).
  VerifiedCertCache& cert_cache() { return cert_cache_; }

 private:
  struct VoteSet {
    std::map<ValidatorId, Signature> votes;
  };

  // View lifecycle.
  void EnterView(View view);
  void MaybePropose();
  void StartTimer();
  void OnTimeout(View view);

  // Proposal path.
  void HandleProposal(uint32_t from, const MsgHsProposal& msg);
  void RetryProposal(const Digest& digest, View view, uint32_t attempt);
  void TryVote(const Digest& digest);
  void CastVote(const HsBlock& block, const Digest& digest);

  // Vote/QC path.
  void HandleVote(const MsgHsVote& msg);
  void AdoptQc(const QuorumCert& qc);
  void UpdateChain(const HsBlock& block);
  void CommitUpTo(const Digest& digest);

  // Timeout path.
  void HandleTimeout(const MsgHsTimeout& msg);

  // Ancestor catch-up.
  void RequestBlock(const Digest& digest, uint32_t hint);
  bool HaveAncestors(const HsBlock& block) const;
  bool Extends(const Digest& descendant, const Digest& ancestor) const;

  const HsBlock* GetBlock(const Digest& digest) const;
  void Broadcast(const MessagePtr& msg);

  // Persistence (no-ops without a store). Tags are globally unique within
  // the shared consensus store: 'W' last vote, 'L' lock, 'E' view, 'F'
  // proposed-view marker, 'Q' high QC, 'K' committed digest.
  void PersistVote();
  void PersistLock();
  void PersistView();
  void PersistProposedMarker();
  void PersistHighQc();
  void PersistCommit(const Digest& digest);

  ValidatorId id_;
  const Committee& committee_;
  HotStuffConfig config_;
  Network* network_;
  Signer* signer_;
  PayloadProvider* provider_;
  uint32_t net_id_ = 0;
  Tracer* tracer_ = nullptr;
  std::vector<uint32_t> peers_;  // Indexed by validator id (own id included).

  View view_ = 1;
  bool proposed_in_view_ = false;
  View last_voted_view_ = 0;
  Digest last_voted_digest_{};
  uint32_t consecutive_timeouts_ = 0;
  uint32_t fetch_rotation_ = 0;
  Scheduler::TimerId view_timer_ = Scheduler::kInvalidTimer;

  VerifiedCertCache cert_cache_;
  QuorumCert high_qc_;          // Genesis QC initially.
  std::optional<TimeoutCert> last_tc_;
  Digest locked_block_{};       // Genesis digest (zero).
  View locked_view_ = 0;

  std::map<Digest, std::shared_ptr<const HsBlock>> blocks_;
  std::set<Digest> committed_;
  Digest last_committed_{};  // Genesis.

  // Votes collected by this node as leader: (view, digest) -> votes.
  std::map<std::pair<View, Digest>, VoteSet> vote_sets_;
  // Timeout messages per view.
  std::map<View, std::map<ValidatorId, Signature>> timeout_sets_;

  // Proposals deferred on payload availability or missing ancestors.
  std::map<Digest, std::shared_ptr<const HsBlock>> deferred_;
  std::set<Digest> payload_pending_;
  std::set<Digest> fetching_blocks_;

  CommitHook on_commit_;
  uint64_t committed_count_ = 0;
  uint64_t timeouts_fired_ = 0;

  Store* store_ = nullptr;

  // Liveness flag captured by scheduled lambdas; see Primary::alive_.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace nt

#endif  // SRC_HOTSTUFF_HOTSTUFF_H_
