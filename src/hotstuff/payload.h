// Payload providers: the three mempool modes of the paper's evaluation.
//
//  - BaselineProvider  (baseline-HS): a gossiped transaction mempool; the
//    leader puts raw transactions in proposals — bulk data rides the
//    consensus critical path (§2.2's double transmission).
//  - BatchedProvider   (Batched-HS): validators broadcast transaction
//    batches best-effort (no availability certificates, Prism-style [9]);
//    leaders propose batch digests; validators must hold (or fetch) the
//    batches before voting — fragile under faults (§6).
//  - NarwhalProvider   (Narwhal-HS): leaders propose Narwhal certificates of
//    availability; committing one orders its entire uncommitted causal
//    history (§3.2).
//
// A provider plugs into the HotStuff core: it supplies payloads for
// proposals, checks availability before votes, and turns committed blocks
// into delivered transactions for metrics.
#ifndef SRC_HOTSTUFF_PAYLOAD_H_
#define SRC_HOTSTUFF_PAYLOAD_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/hotstuff/messages.h"
#include "src/narwhal/primary.h"
#include "src/narwhal/worker.h"
#include "src/net/network.h"

namespace nt {

// Reports transactions delivered by a committed block.
//   latency_owner: the validator whose local commit of these transactions
//   defines their end-to-end latency (the block proposer for baseline, the
//   batch author for batch-based modes — where the client submitted).
using CommitSink =
    std::function<void(ValidatorId latency_owner, uint64_t num_txs, uint64_t payload_bytes,
                       const std::vector<TxSample>& samples)>;

class PayloadProvider {
 public:
  virtual ~PayloadProvider() = default;

  // Builds the payload for a proposal in `view`.
  virtual HsPayload GetPayload(View view) = 0;

  // Availability check before voting. Returns true if everything referenced
  // is locally available; otherwise arranges fetching and calls `ready`
  // exactly once when it becomes available.
  virtual bool CheckPayload(const HsPayload& payload, uint32_t proposer_net_id,
                            std::function<void()> ready) = 0;

  // Delivers a committed block's payload (called once per commit, in order).
  virtual void OnCommit(const HsPayload& payload, ValidatorId block_author) = 0;

  // Mempool-mode network traffic is forwarded here by the consensus node.
  virtual void OnMessage(uint32_t from, const MessagePtr& msg) {
    (void)from;
    (void)msg;
  }
  virtual void OnStart() {}

  void BindNetwork(Network* network, uint32_t own_net_id, std::vector<uint32_t> peer_net_ids) {
    network_ = network;
    net_id_ = own_net_id;
    peers_ = std::move(peer_net_ids);
  }
  void set_commit_sink(CommitSink sink) { sink_ = std::move(sink); }

 protected:
  Network* network_ = nullptr;
  uint32_t net_id_ = 0;
  std::vector<uint32_t> peers_;  // Consensus net ids of the other validators.
  CommitSink sink_;
};

// ---------------------------------------------------------------------------
// Baseline-HS
// ---------------------------------------------------------------------------

// The gossiped mempool, modeled as one logical pool shared by all in-process
// validators (gossip keeps honest pools converged); the gossip *bandwidth*
// is still charged on the wire via MsgGossipTxs. Transactions become
// proposable after a sampled gossip delay.
class SharedTxPool {
 public:
  struct Chunk {
    uint64_t num_txs = 0;
    uint64_t payload_bytes = 0;
    std::vector<TxSample> samples;
    TimePoint available_at = 0;
  };

  void Submit(Chunk chunk);
  // Pops whole chunks available at `now`, up to `max_bytes`, into `payload`.
  void Drain(TimePoint now, uint64_t max_bytes, HsPayload& payload);
  uint64_t pending_bytes() const { return pending_bytes_; }

 private:
  std::deque<Chunk> fifo_;
  uint64_t pending_bytes_ = 0;
};

class BaselineProvider : public PayloadProvider {
 public:
  BaselineProvider(ValidatorId id, SharedTxPool* pool, uint64_t max_block_bytes,
                   TimeDelta gossip_interval, TimeDelta gossip_delay);

  // Client transaction intake (collocated load generator).
  void Submit(uint64_t num_txs, uint64_t payload_bytes, std::vector<TxSample> samples);

  HsPayload GetPayload(View view) override;
  bool CheckPayload(const HsPayload& payload, uint32_t proposer_net_id,
                    std::function<void()> ready) override;
  void OnCommit(const HsPayload& payload, ValidatorId block_author) override;
  void OnStart() override;

 private:
  void FlushGossip();

  ValidatorId id_;
  SharedTxPool* pool_;
  uint64_t max_block_bytes_;
  TimeDelta gossip_interval_;
  TimeDelta gossip_delay_;
  uint64_t gossip_pending_txs_ = 0;
  uint64_t gossip_pending_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Batched-HS
// ---------------------------------------------------------------------------

class BatchedProvider : public PayloadProvider {
 public:
  BatchedProvider(ValidatorId id, const Committee& committee, uint64_t batch_size_bytes,
                  TimeDelta max_batch_delay, uint64_t max_digests_per_block,
                  BatchDirectory* directory);

  void Submit(uint64_t num_txs, uint64_t payload_bytes, std::vector<TxSample> samples);

  HsPayload GetPayload(View view) override;
  bool CheckPayload(const HsPayload& payload, uint32_t proposer_net_id,
                    std::function<void()> ready) override;
  void OnCommit(const HsPayload& payload, ValidatorId block_author) override;
  void OnMessage(uint32_t from, const MessagePtr& msg) override;

  size_t available_batches() const { return stored_.size(); }

 private:
  void MaybeSeal(bool force);

  ValidatorId id_;
  const Committee& committee_;
  uint64_t batch_size_bytes_;
  TimeDelta max_batch_delay_;
  uint64_t max_digests_per_block_;
  BatchDirectory* directory_;

  Batch pending_;
  uint64_t next_seq_ = 0;
  Scheduler::TimerId batch_timer_ = Scheduler::kInvalidTimer;

  std::map<Digest, std::shared_ptr<const Batch>> stored_;
  // Known, stored, not-yet-committed digests in arrival order (proposal queue).
  std::deque<Digest> proposable_;
  std::set<Digest> proposable_set_;
  std::set<Digest> committed_;

  // Outstanding availability waits: proposal payload -> missing set + ready cb.
  struct Waiting {
    std::set<Digest> missing;
    std::function<void()> ready;
  };
  std::vector<Waiting> waiting_;
};

// ---------------------------------------------------------------------------
// Narwhal-HS
// ---------------------------------------------------------------------------

class NarwhalProvider : public PayloadProvider {
 public:
  NarwhalProvider(ValidatorId id, const Committee& committee, Primary* primary,
                  BatchDirectory* directory, Round gc_depth);

  HsPayload GetPayload(View view) override;
  bool CheckPayload(const HsPayload& payload, uint32_t proposer_net_id,
                    std::function<void()> ready) override;
  void OnCommit(const HsPayload& payload, ValidatorId block_author) override;

  // Attaches the durable consensus store (non-owning, shared with the
  // HotStuff core; null = ephemeral). Delivered-header records ('N' tag) are
  // write-ahead persisted so a recovered validator never re-delivers — and
  // never re-injects the batches of — a header it delivered pre-crash.
  void set_store(Store* store) { store_ = store; }

  // Restores the delivered-header set from the store. Call after the
  // primary's Recover() and before OnStart; delivers nothing itself but
  // re-notifies the primary of delivered headers still in the DAG.
  void Recover();

  uint64_t committed_headers() const { return committed_count_; }
  // Anchors committed by consensus whose causal history is still syncing.
  size_t pending_anchor_count() const { return pending_anchors_.size(); }

  // Fired once per committed Narwhal header, in delivery order — the same
  // total order every correct replica produces. Lets observers (DST checker,
  // executors) consume the committed header stream without re-deriving the
  // linearization. Multiple listeners run in registration order.
  using HeaderCommitHook =
      std::function<void(const Digest& digest, const std::shared_ptr<const BlockHeader>& header)>;
  void add_on_header_commit(HeaderCommitHook hook) {
    on_header_commit_hooks_.push_back(std::move(hook));
  }

 private:
  // Processes queued anchors whose causal histories are now complete.
  void DrainPending();
  void DeliverHistory(const Dag::History& history);

  ValidatorId id_;
  const Committee& committee_;
  Primary* primary_;
  BatchDirectory* directory_;
  Round gc_depth_;
  Store* store_ = nullptr;

  std::set<Digest> committed_;
  std::deque<Digest> pending_anchors_;  // Committed by consensus, awaiting sync.
  uint64_t committed_count_ = 0;
  std::vector<HeaderCommitHook> on_header_commit_hooks_;
};

}  // namespace nt

#endif  // SRC_HOTSTUFF_PAYLOAD_H_
