// Chained-HotStuff data types: blocks, quorum certificates, timeout
// certificates, and the three payload kinds that distinguish baseline-HS,
// Batched-HS, and Narwhal-HS (paper §6).
#ifndef SRC_HOTSTUFF_TYPES_H_
#define SRC_HOTSTUFF_TYPES_H_

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/types/types.h"

namespace nt {

using View = uint64_t;

// What a proposal carries:
//  - kTransactions: raw transactions inline (baseline-HS) — bulk bytes in
//    the consensus critical path;
//  - kBatchDigests: references to best-effort-disseminated batches
//    (Batched-HS / Prism-style) — no availability certificates;
//  - kCertificates: Narwhal certificates of availability (Narwhal-HS) —
//    committing one orders its whole causal history.
struct HsPayload {
  enum class Kind : uint8_t { kTransactions = 0, kBatchDigests = 1, kCertificates = 2 };

  Kind kind = Kind::kTransactions;
  // kTransactions: aggregate accounting + latency samples.
  uint64_t num_txs = 0;
  uint64_t payload_bytes = 0;
  std::vector<TxSample> samples;
  // kBatchDigests.
  std::vector<Digest> batch_digests;
  // kCertificates.
  std::vector<Certificate> certs;

  void Encode(Writer& w) const;
  size_t WireSize() const;
};

// 2f+1 votes over (block digest, view).
//
// Verify memoizes positive results: each HotStuff node passes its own
// per-validator cache (every node re-verifies independently, like a real
// deployment); nullptr falls back to the process-wide default instance
// (VerifiedCertCache::HotStuff()) for tools and tests.
struct QuorumCert {
  Digest block_digest{};
  View view = 0;
  std::vector<std::pair<ValidatorId, Signature>> votes;

  static Bytes VotePreimage(const Digest& block_digest, View view);
  bool Verify(const Committee& committee, const Signer& verifier,
              VerifiedCertCache* cache = nullptr) const;
  // The genesis QC: zero digest, view 0, no votes. Exempt from Verify.
  bool IsGenesis() const { return view == 0 && votes.empty(); }
  size_t WireSize() const { return 32 + 8 + votes.size() * (4 + 64); }
};

// 2f+1 signed timeouts for a view; justifies entering view+1 without a QC.
// `cache` as in QuorumCert::Verify.
struct TimeoutCert {
  View view = 0;
  std::vector<std::pair<ValidatorId, Signature>> votes;

  static Bytes VotePreimage(View view);
  bool Verify(const Committee& committee, const Signer& verifier,
              VerifiedCertCache* cache = nullptr) const;
  size_t WireSize() const { return 8 + votes.size() * (4 + 64); }
};

struct HsBlock {
  ValidatorId author = 0;
  View view = 0;
  Digest parent{};       // Digest of the parent block (== justify.block_digest).
  QuorumCert justify;    // QC for the parent.
  std::optional<TimeoutCert> tc;  // Present when the previous view timed out.
  HsPayload payload;
  Signature author_sig{};

  Digest ComputeDigest() const;
  size_t WireSize() const;
};

}  // namespace nt

#endif  // SRC_HOTSTUFF_TYPES_H_
