// Network messages for the HotStuff family: proposals, votes, timeouts,
// block catch-up, plus the mempool-mode traffic (gossip aggregates for
// baseline-HS; batch dissemination for Batched-HS reuses MsgBatch et al.).
#ifndef SRC_HOTSTUFF_MESSAGES_H_
#define SRC_HOTSTUFF_MESSAGES_H_

#include <memory>

#include "src/hotstuff/types.h"
#include "src/net/message.h"

namespace nt {

struct MsgHsProposal : Message {
  std::shared_ptr<const HsBlock> block;
  Digest digest{};

  MsgHsProposal(std::shared_ptr<const HsBlock> b, const Digest& d)
      : block(std::move(b)), digest(d) {}
  size_t WireSize() const override { return block->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kHsProposal; }
};

struct MsgHsVote : Message {
  Digest block_digest{};
  View view = 0;
  ValidatorId voter = 0;
  Signature sig{};

  MsgHsVote(const Digest& d, View v, ValidatorId voter_id, const Signature& s)
      : block_digest(d), view(v), voter(voter_id), sig(s) {}
  size_t WireSize() const override { return 32 + 8 + 4 + 64; }
  MessageTypeId TypeId() const override { return MessageTypeId::kHsVote; }
};

struct MsgHsTimeout : Message {
  View view = 0;
  ValidatorId voter = 0;
  Signature sig{};
  QuorumCert high_qc;

  MsgHsTimeout(View v, ValidatorId voter_id, const Signature& s, QuorumCert qc)
      : view(v), voter(voter_id), sig(s), high_qc(std::move(qc)) {}
  size_t WireSize() const override { return 8 + 4 + 64 + high_qc.WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kHsTimeout; }
};

// Catch-up: fetch a missing ancestor block by digest.
struct MsgHsBlockRequest : Message {
  Digest digest{};

  explicit MsgHsBlockRequest(const Digest& d) : digest(d) {}
  size_t WireSize() const override { return 32; }
  MessageTypeId TypeId() const override { return MessageTypeId::kHsBlockRequest; }
};

struct MsgHsBlockResponse : Message {
  std::shared_ptr<const HsBlock> block;
  Digest digest{};

  MsgHsBlockResponse(std::shared_ptr<const HsBlock> b, const Digest& d)
      : block(std::move(b)), digest(d) {}
  size_t WireSize() const override { return block->WireSize(); }
  MessageTypeId TypeId() const override { return MessageTypeId::kHsBlockResponse; }
};

// Baseline-HS gossip mempool: periodic aggregate of freshly received
// transactions, re-shared with every peer (the double transmission the
// paper's §2.2 identifies). Content is accounting-only.
struct MsgGossipTxs : Message {
  uint64_t num_txs = 0;
  uint64_t payload_bytes = 0;

  MsgGossipTxs(uint64_t n, uint64_t bytes) : num_txs(n), payload_bytes(bytes) {}
  size_t WireSize() const override { return 16 + payload_bytes; }
  // ntlint:allow(registry-exhaustive): wire-accounting only — sized for bandwidth simulation, never dispatched by a handler
  MessageTypeId TypeId() const override { return MessageTypeId::kGossipTxs; }
};

}  // namespace nt

#endif  // SRC_HOTSTUFF_MESSAGES_H_
