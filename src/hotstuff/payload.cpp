#include "src/hotstuff/payload.h"

#include <algorithm>

#include "src/common/codec.h"
#include "src/common/logging.h"

namespace nt {

// ------------------------------------------------------------- SharedTxPool

void SharedTxPool::Submit(Chunk chunk) {
  pending_bytes_ += chunk.payload_bytes;
  fifo_.push_back(std::move(chunk));
}

void SharedTxPool::Drain(TimePoint now, uint64_t max_bytes, HsPayload& payload) {
  uint64_t taken = 0;
  while (!fifo_.empty() && taken + fifo_.front().payload_bytes <= max_bytes &&
         fifo_.front().available_at <= now) {
    Chunk& chunk = fifo_.front();
    taken += chunk.payload_bytes;
    payload.num_txs += chunk.num_txs;
    payload.payload_bytes += chunk.payload_bytes;
    payload.samples.insert(payload.samples.end(), chunk.samples.begin(), chunk.samples.end());
    pending_bytes_ -= chunk.payload_bytes;
    fifo_.pop_front();
  }
}

// --------------------------------------------------------- BaselineProvider

BaselineProvider::BaselineProvider(ValidatorId id, SharedTxPool* pool, uint64_t max_block_bytes,
                                   TimeDelta gossip_interval, TimeDelta gossip_delay)
    : id_(id),
      pool_(pool),
      max_block_bytes_(max_block_bytes),
      gossip_interval_(gossip_interval),
      gossip_delay_(gossip_delay) {}

void BaselineProvider::OnStart() { FlushGossip(); }

void BaselineProvider::Submit(uint64_t num_txs, uint64_t payload_bytes,
                              std::vector<TxSample> samples) {
  SharedTxPool::Chunk chunk;
  chunk.num_txs = num_txs;
  chunk.payload_bytes = payload_bytes;
  chunk.samples = std::move(samples);
  // The transaction is proposable once gossip has spread it.
  chunk.available_at = network_->scheduler()->now() + gossip_delay_;
  pool_->Submit(std::move(chunk));
  gossip_pending_txs_ += num_txs;
  gossip_pending_bytes_ += payload_bytes;
}

void BaselineProvider::FlushGossip() {
  if (gossip_pending_bytes_ > 0) {
    auto msg = std::make_shared<MsgGossipTxs>(gossip_pending_txs_, gossip_pending_bytes_);
    for (uint32_t peer : peers_) {
      network_->Send(net_id_, peer, msg);
    }
    gossip_pending_txs_ = 0;
    gossip_pending_bytes_ = 0;
  }
  network_->scheduler()->ScheduleAfter(gossip_interval_, [this] { FlushGossip(); });
}

HsPayload BaselineProvider::GetPayload(View) {
  HsPayload payload;
  payload.kind = HsPayload::Kind::kTransactions;
  pool_->Drain(network_->scheduler()->now(), max_block_bytes_, payload);
  return payload;
}

bool BaselineProvider::CheckPayload(const HsPayload&, uint32_t, std::function<void()>) {
  return true;  // Transactions ride inside the proposal itself.
}

void BaselineProvider::OnCommit(const HsPayload& payload, ValidatorId block_author) {
  if (sink_ && payload.num_txs > 0) {
    sink_(block_author, payload.num_txs, payload.payload_bytes, payload.samples);
  }
}

// ---------------------------------------------------------- BatchedProvider

BatchedProvider::BatchedProvider(ValidatorId id, const Committee& committee,
                                 uint64_t batch_size_bytes, TimeDelta max_batch_delay,
                                 uint64_t max_digests_per_block, BatchDirectory* directory)
    : id_(id),
      committee_(committee),
      batch_size_bytes_(batch_size_bytes),
      max_batch_delay_(max_batch_delay),
      max_digests_per_block_(max_digests_per_block),
      directory_(directory) {
  pending_.author = id_;
  pending_.worker = 0;
}

void BatchedProvider::Submit(uint64_t num_txs, uint64_t payload_bytes,
                             std::vector<TxSample> samples) {
  pending_.num_txs += num_txs;
  pending_.payload_bytes += payload_bytes;
  for (TxSample& s : samples) {
    pending_.samples.push_back(s);
  }
  if (batch_timer_ == Scheduler::kInvalidTimer) {
    batch_timer_ =
        network_->scheduler()->ScheduleAfter(max_batch_delay_, [this] { MaybeSeal(true); });
  }
  MaybeSeal(false);
}

void BatchedProvider::MaybeSeal(bool force) {
  if (force) {
    batch_timer_ = Scheduler::kInvalidTimer;
  }
  if (pending_.num_txs == 0 || (!force && pending_.payload_bytes < batch_size_bytes_)) {
    return;
  }
  if (batch_timer_ != Scheduler::kInvalidTimer) {
    network_->scheduler()->Cancel(batch_timer_);
    batch_timer_ = Scheduler::kInvalidTimer;
  }
  pending_.seq = next_seq_++;
  auto batch = std::make_shared<const Batch>(std::move(pending_));
  pending_ = Batch{};
  pending_.author = id_;

  Digest digest = batch->ComputeDigest();
  BatchDirectory::Info info;
  info.author = id_;
  info.num_txs = batch->num_txs;
  info.payload_bytes = batch->payload_bytes;
  info.sealed_at = network_->scheduler()->now();
  info.samples = batch->samples;
  directory_->Register(digest, std::move(info));

  stored_[digest] = batch;
  if (proposable_set_.insert(digest).second) {
    proposable_.push_back(digest);
  }
  // Best-effort dissemination: one shot, no acknowledgments, no retry — the
  // state-of-the-art scheme the paper shows is fragile (§6).
  auto msg = std::make_shared<MsgBatch>(batch, digest);
  for (uint32_t peer : peers_) {
    network_->Send(net_id_, peer, msg);
  }
}

HsPayload BatchedProvider::GetPayload(View) {
  HsPayload payload;
  payload.kind = HsPayload::Kind::kBatchDigests;
  // Drop committed digests from the head, then propose the oldest
  // uncommitted ones *without* removing them: a proposal whose view times
  // out must leave its digests proposable by later leaders.
  while (!proposable_.empty() && committed_.count(proposable_.front()) != 0) {
    proposable_set_.erase(proposable_.front());
    proposable_.pop_front();
  }
  for (size_t i = 0; i < proposable_.size() && payload.batch_digests.size() <
                                                   max_digests_per_block_; ++i) {
    if (committed_.count(proposable_[i]) == 0) {
      payload.batch_digests.push_back(proposable_[i]);
    }
  }
  return payload;
}

bool BatchedProvider::CheckPayload(const HsPayload& payload, uint32_t proposer_net_id,
                                   std::function<void()> ready) {
  std::set<Digest> missing;
  for (const Digest& d : payload.batch_digests) {
    if (stored_.count(d) == 0) {
      missing.insert(d);
    }
  }
  if (missing.empty()) {
    return true;
  }
  // Fetch from the proposer — the only validator known to hold everything.
  for (const Digest& d : missing) {
    network_->Send(net_id_, proposer_net_id, std::make_shared<MsgBatchRequest>(d));
  }
  waiting_.push_back(Waiting{std::move(missing), std::move(ready)});
  return false;
}

void BatchedProvider::OnMessage(uint32_t from, const MessagePtr& msg) {
  if (auto batch = std::dynamic_pointer_cast<const MsgBatch>(msg)) {
    if (stored_.emplace(batch->digest, batch->batch).second) {
      if (committed_.count(batch->digest) == 0 && proposable_set_.insert(batch->digest).second) {
        proposable_.push_back(batch->digest);
      }
      // Release any availability waits.
      for (auto it = waiting_.begin(); it != waiting_.end();) {
        it->missing.erase(batch->digest);
        if (it->missing.empty()) {
          auto ready = std::move(it->ready);
          it = waiting_.erase(it);
          ready();
        } else {
          ++it;
        }
      }
    }
    return;
  }
  if (auto request = std::dynamic_pointer_cast<const MsgBatchRequest>(msg)) {
    auto it = stored_.find(request->digest);
    if (it != stored_.end()) {
      network_->Send(net_id_, from, std::make_shared<MsgBatch>(it->second, it->first));
    }
    return;
  }
}

void BatchedProvider::OnCommit(const HsPayload& payload, ValidatorId) {
  for (const Digest& d : payload.batch_digests) {
    if (!committed_.insert(d).second) {
      continue;  // Referenced twice across proposals; deliver once.
    }
    const BatchDirectory::Info* info = directory_->Find(d);
    if (info == nullptr) {
      continue;
    }
    if (sink_) {
      sink_(info->author, info->num_txs, info->payload_bytes, info->samples);
    }
  }
}

// ---------------------------------------------------------- NarwhalProvider

namespace {
// Consensus-store key for a delivered-header record. The 'N' tag is globally
// unique within the store shared with the HotStuff core ('W'/'L'/'E'/'F'/
// 'Q'/'K') and Tusk ('T'/'U').
Digest ProviderCommitKey(const Digest& digest) {
  Writer w;
  w.PutU8('N');
  w.PutRaw(digest);
  return Sha256::Hash(w.bytes().data(), w.size());
}
}  // namespace

NarwhalProvider::NarwhalProvider(ValidatorId id, const Committee& committee, Primary* primary,
                                 BatchDirectory* directory, Round gc_depth)
    : id_(id), committee_(committee), primary_(primary), directory_(directory),
      gc_depth_(gc_depth) {
  primary_->add_on_header_stored([this](const Digest&) { DrainPending(); });
}

void NarwhalProvider::Recover() {
  if (store_ == nullptr) {
    return;
  }
  store_->ForEach([this](const Digest&, const Bytes& value) {
    if (value.empty() || value[0] != 'N') {
      return;
    }
    Reader r(value.data() + 1, value.size() - 1);
    Digest digest = r.GetArray<32>();
    if (!r.ok()) {
      return;
    }
    if (committed_.insert(digest).second) {
      ++committed_count_;
    }
  });
  // Refresh the primary's commit bookkeeping for delivered headers the
  // recovered DAG still holds, so committed batches are not re-injected.
  for (const Digest& digest : committed_) {
    auto header = primary_->dag().GetHeader(digest);
    if (header != nullptr) {
      primary_->NotifyCommitted(*header);
    }
  }
}

HsPayload NarwhalProvider::GetPayload(View) {
  HsPayload payload;
  payload.kind = HsPayload::Kind::kCertificates;
  // Propose the newest certificate we know: committing it orders its whole
  // uncommitted causal history (paper §3.2), so one fixed-size certificate
  // per proposal suffices regardless of load.
  const Dag& dag = primary_->dag();
  for (Round r = dag.HighestRound();; --r) {
    for (const auto& [author, cert] : dag.CertsAt(r)) {
      if (committed_.count(cert.header_digest) == 0) {
        payload.certs.push_back(cert);
        return payload;
      }
    }
    if (r == 0) {
      break;
    }
  }
  return payload;
}

bool NarwhalProvider::CheckPayload(const HsPayload& payload, uint32_t, std::function<void()>) {
  // A certificate carries its own proof of availability: 2f+1 signatures.
  // Nothing needs downloading before voting — the decisive difference from
  // Batched-HS.
  for (const Certificate& cert : payload.certs) {
    if (!primary_->IngestCertificate(cert)) {
      return true;  // Invalid cert: treated as an empty payload.
    }
  }
  return true;
}

void NarwhalProvider::OnCommit(const HsPayload& payload, ValidatorId) {
  for (const Certificate& cert : payload.certs) {
    pending_anchors_.push_back(cert.header_digest);
    primary_->IngestCertificate(cert);
  }
  DrainPending();
}

void NarwhalProvider::DrainPending() {
  const Dag& dag = primary_->dag();
  while (!pending_anchors_.empty()) {
    Digest anchor = pending_anchors_.front();
    if (committed_.count(anchor) != 0) {
      pending_anchors_.pop_front();
      continue;
    }
    Dag::History history = dag.CollectCausalHistory(anchor, committed_);
    if (!history.missing.empty()) {
      for (const Digest& missing : history.missing) {
        primary_->SyncHeader(missing);
      }
      return;  // Strictly in-order delivery: wait for sync.
    }
    pending_anchors_.pop_front();
    DeliverHistory(history);
  }
}

void NarwhalProvider::DeliverHistory(const Dag::History& history) {
  const Dag& dag = primary_->dag();
  Round max_round = 0;
  for (const Digest& digest : history.ordered) {
    auto header = dag.GetHeader(digest);
    if (store_ != nullptr) {
      // Write-ahead: durable before any hook or sink observes the delivery.
      Writer w;
      w.PutU8('N');
      w.PutRaw(digest);
      store_->Put(ProviderCommitKey(digest), w.Take());
    }
    committed_.insert(digest);
    ++committed_count_;
    max_round = std::max(max_round, header->round);
    primary_->NotifyCommitted(*header);
    for (const auto& hook : on_header_commit_hooks_) {
      hook(digest, header);
    }
    if (sink_ != nullptr) {
      for (const BatchRef& ref : header->batches) {
        const BatchDirectory::Info* info = directory_->Find(ref.digest);
        ValidatorId author = info != nullptr ? info->author : header->author;
        const std::vector<TxSample>* samples = info != nullptr ? &info->samples : nullptr;
        static const std::vector<TxSample> kNoSamples;
        sink_(author, ref.num_txs, ref.payload_bytes, samples ? *samples : kNoSamples);
      }
    }
  }
  if (max_round > gc_depth_) {
    primary_->SetGcRound(max_round - gc_depth_);
  }
}

}  // namespace nt
