#include "src/hotstuff/types.h"

#include <set>

#include "src/types/cert_cache.h"

namespace nt {
namespace {

// Shared verification core for the two HotStuff certificate kinds: quorum +
// distinct-voter structure, then a cache probe, then one batched flush of
// the vote signatures over a common preimage. `domain` separates QC and TC
// cache keys; `view` is the GC dimension. `cache_override` selects the
// per-node cache; nullptr falls back to the process-wide default.
bool VerifyVoteSet(std::string_view domain, const Bytes& preimage, View view,
                   const std::vector<std::pair<ValidatorId, Signature>>& votes,
                   const Committee& committee, const Signer& verifier,
                   VerifiedCertCache* cache_override) {
  if (votes.size() < committee.quorum_threshold()) {
    return false;
  }
  std::set<ValidatorId> seen;
  for (const auto& [voter, sig] : votes) {
    (void)sig;
    if (!committee.Contains(voter) || !seen.insert(voter).second) {
      return false;
    }
  }
  Sha256 key_hash;
  key_hash.Update(domain);
  key_hash.Update(committee.fingerprint().data(), committee.fingerprint().size());
  key_hash.Update(preimage);
  for (const auto& [voter, sig] : votes) {
    uint8_t voter_bytes[4];
    for (int b = 0; b < 4; ++b) {
      voter_bytes[b] = static_cast<uint8_t>(voter >> (8 * b));
    }
    key_hash.Update(voter_bytes, 4);
    key_hash.Update(sig.data(), sig.size());
  }
  Digest key = key_hash.Finalize();
  VerifiedCertCache& cache =
      cache_override != nullptr ? *cache_override : VerifiedCertCache::HotStuff();
  if (cache.Lookup(key)) {
    return true;
  }
  BatchVerifier batch(verifier);
  for (const auto& [voter, sig] : votes) {
    batch.Queue(committee.key_of(voter), preimage, sig);
  }
  if (!batch.FlushAllValid()) {
    return false;
  }
  cache.Insert(key, view);
  return true;
}

}  // namespace

// ----------------------------------------------------------------- HsPayload

void HsPayload::Encode(Writer& w) const {
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU64(num_txs);
  w.PutU64(payload_bytes);
  w.PutU32(static_cast<uint32_t>(samples.size()));
  for (const TxSample& s : samples) {
    w.PutU64(s.tx_id);
    w.PutI64(s.submit_time);
  }
  w.PutU32(static_cast<uint32_t>(batch_digests.size()));
  for (const Digest& d : batch_digests) {
    w.PutRaw(d);
  }
  w.PutU32(static_cast<uint32_t>(certs.size()));
  for (const Certificate& c : certs) {
    c.Encode(w);
  }
}

size_t HsPayload::WireSize() const {
  size_t size = 1 + 8 + 8 + 12;
  switch (kind) {
    case Kind::kTransactions:
      // Raw transactions ride in the proposal.
      size += payload_bytes + samples.size() * 16;
      break;
    case Kind::kBatchDigests:
      size += batch_digests.size() * 32;
      break;
    case Kind::kCertificates:
      for (const Certificate& c : certs) {
        size += c.WireSize();
      }
      break;
  }
  return size;
}

// ---------------------------------------------------------------- QuorumCert

Bytes QuorumCert::VotePreimage(const Digest& block_digest, View view) {
  Writer w;
  w.PutString("hotstuff-vote");
  w.PutRaw(block_digest);
  w.PutU64(view);
  return w.Take();
}

bool QuorumCert::Verify(const Committee& committee, const Signer& verifier,
                        VerifiedCertCache* cache) const {
  if (IsGenesis()) {
    return true;
  }
  return VerifyVoteSet("nt-qc-cache", VotePreimage(block_digest, view), view, votes, committee,
                       verifier, cache);
}

// --------------------------------------------------------------- TimeoutCert

Bytes TimeoutCert::VotePreimage(View view) {
  Writer w;
  w.PutString("hotstuff-timeout");
  w.PutU64(view);
  return w.Take();
}

bool TimeoutCert::Verify(const Committee& committee, const Signer& verifier,
                         VerifiedCertCache* cache) const {
  return VerifyVoteSet("nt-tc-cache", VotePreimage(view), view, votes, committee, verifier,
                       cache);
}

// ------------------------------------------------------------------- HsBlock

Digest HsBlock::ComputeDigest() const {
  Writer w;
  w.PutString("hotstuff-block");
  w.PutU32(author);
  w.PutU64(view);
  w.PutRaw(parent);
  w.PutRaw(justify.block_digest);
  w.PutU64(justify.view);
  payload.Encode(w);
  return Sha256::Hash(w.bytes());
}

size_t HsBlock::WireSize() const {
  size_t size = 4 + 8 + 32 + 64 + justify.WireSize() + payload.WireSize();
  if (tc.has_value()) {
    size += tc->WireSize();
  }
  return size;
}

}  // namespace nt
