#include "src/store/store.h"

#include <cstring>

// WalStore is the real-disk durability surface; the fsync/truncate syscalls
// below are what the simulated Store contract is modeling. Protocol code
// never touches file IO directly — it goes through the Store interface.
// ntlint:allow(nondet): raw file IO is the WAL durability layer itself
#include <unistd.h>

#include "src/common/codec.h"

namespace nt {
namespace {

// WAL record layout:
//   u32 magic | u8 op | 32B key | u32 value_len | value | u32 crc
// crc covers everything before it (magic..value).
constexpr uint32_t kRecordMagic = 0x4e54574c;  // "NTWL"
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpErase = 2;

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const Crc32Table table;
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table.t[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

// ------------------------------------------------------------------ MemStore

void MemStore::Put(const Digest& key, Bytes value) { map_[key] = std::move(value); }

std::optional<Bytes> MemStore::Get(const Digest& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) {
    return std::nullopt;
  }
  return it->second;
}

bool MemStore::Contains(const Digest& key) const { return map_.count(key) != 0; }

bool MemStore::Erase(const Digest& key) { return map_.erase(key) != 0; }

void MemStore::ForEach(const std::function<void(const Digest&, const Bytes&)>& fn) const {
  for (const auto& [key, value] : map_) {
    fn(key, value);
  }
}

// ------------------------------------------------------------------ WalStore

std::unique_ptr<WalStore> WalStore::Open(const std::string& path) {
  // Make sure the file exists before the replay pass (first open of a fresh
  // log), without holding an append handle yet — the tail may need to be
  // truncated first.
  {
    std::FILE* create = std::fopen(path.c_str(), "ab");
    if (create == nullptr) {
      return nullptr;
    }
    std::fclose(create);
  }

  // Replay phase: read records up to the first torn or corrupt one,
  // remembering the byte offset of the last good record boundary.
  MemStore mem;
  size_t recovered = 0;
  long good_end = 0;
  long file_end = 0;
  {
    std::FILE* rf = std::fopen(path.c_str(), "rb");
    if (rf == nullptr) {
      return nullptr;
    }
    std::fseek(rf, 0, SEEK_END);
    file_end = std::ftell(rf);
    std::fseek(rf, 0, SEEK_SET);
    for (;;) {
      uint8_t head[4 + 1 + 32 + 4];
      if (std::fread(head, 1, sizeof(head), rf) != sizeof(head)) {
        break;  // Clean EOF or torn header: stop replay.
      }
      Reader hr(head, sizeof(head));
      uint32_t magic = hr.GetU32();
      uint8_t op = hr.GetU8();
      Digest key = hr.GetArray<32>();
      uint32_t value_len = hr.GetU32();
      if (magic != kRecordMagic || value_len > (64u << 20)) {
        break;  // Corrupt record; stop at last good prefix.
      }
      Bytes value(value_len);
      if (value_len > 0 && std::fread(value.data(), 1, value_len, rf) != value_len) {
        break;  // Torn value.
      }
      uint8_t crc_bytes[4];
      if (std::fread(crc_bytes, 1, 4, rf) != 4) {
        break;  // Torn crc.
      }
      Reader cr(crc_bytes, 4);
      uint32_t stored_crc = cr.GetU32();

      Writer crc_input;
      crc_input.PutRaw(head, sizeof(head));
      crc_input.PutRaw(value);
      if (Crc32(crc_input.bytes().data(), crc_input.size()) != stored_crc) {
        break;  // Corrupt record.
      }

      if (op == kOpPut) {
        mem.Put(key, std::move(value));
      } else if (op == kOpErase) {
        mem.Erase(key);
      } else {
        break;
      }
      ++recovered;
      good_end = std::ftell(rf);
    }
    std::fclose(rf);
  }

  // Truncate a torn/corrupt tail back to the last good record boundary
  // BEFORE reopening for append. Appending after the garbage would make
  // every subsequent record unreachable on the next recovery (replay stops
  // at the garbage), silently losing acknowledged data.
  size_t truncated = 0;
  if (good_end < file_end) {
    // ntlint:allow(nondet): truncate(2) is the WAL torn-tail repair
    if (::truncate(path.c_str(), good_end) != 0) {
      return nullptr;
    }
    truncated = static_cast<size_t>(file_end - good_end);
  }

  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return nullptr;
  }
  auto store = std::unique_ptr<WalStore>(new WalStore(f, path));
  store->mem_ = std::move(mem);
  store->recovered_records_ = recovered;
  store->truncated_bytes_ = truncated;
  return store;
}

WalStore::~WalStore() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void WalStore::AppendRecord(uint8_t op, const Digest& key, const Bytes& value) {
  Writer w(4 + 1 + 32 + 4 + value.size() + 4);
  w.PutU32(kRecordMagic);
  w.PutU8(op);
  w.PutRaw(key);
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(value);
  uint32_t crc = Crc32(w.bytes().data(), w.size());
  w.PutU32(crc);
  std::fwrite(w.bytes().data(), 1, w.size(), file_);
}

void WalStore::Put(const Digest& key, Bytes value) {
  AppendRecord(kOpPut, key, value);
  mem_.Put(key, std::move(value));
}

std::optional<Bytes> WalStore::Get(const Digest& key) const { return mem_.Get(key); }

bool WalStore::Contains(const Digest& key) const { return mem_.Contains(key); }

bool WalStore::Erase(const Digest& key) {
  if (!mem_.Contains(key)) {
    return false;
  }
  AppendRecord(kOpErase, key, {});
  return mem_.Erase(key);
}

void WalStore::ForEach(const std::function<void(const Digest&, const Bytes&)>& fn) const {
  mem_.ForEach(fn);
}

void WalStore::Sync() {
  std::fflush(file_);
  // A real durability barrier: fflush only moves data into the OS page
  // cache, which a process crash still loses from the application's point
  // of view once the ack is out. The paper's artifact relies on RocksDB's
  // WAL fsync for the same reason.
  // ntlint:allow(nondet): fsync/fileno are the WAL durability barrier
  ::fsync(::fileno(file_));
  ++sync_count_;
}

}  // namespace nt
