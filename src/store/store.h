// Persistent key-value storage — the role RocksDB plays in the paper's
// artifact (§6: "Data-structures are persisted using RocksDB").
//
// Two implementations:
//  - MemStore: plain in-memory map (used by most simulations).
//  - WalStore: in-memory index backed by an append-only write-ahead log on
//    disk with CRC-protected records and recovery, for durability tests and
//    the storage micro-benchmarks.
//
// Both model the durable disk a validator recovers from after a crash:
// the runtime keeps Store objects alive across a simulated process restart
// and the protocol objects rebuild their state from them (Recover paths in
// Primary/Tusk/HotStuff). Sync() is the durability barrier — for WalStore
// it is a real fsync, for MemStore a counted no-op — and sync_count()
// lets tests assert the sync-on-seal policy (a worker's batch ack implies
// the batch is on disk).
#ifndef SRC_STORE_STORE_H_
#define SRC_STORE_STORE_H_

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/hash.h"

namespace nt {

// Digest-keyed blob store.
class Store {
 public:
  virtual ~Store() = default;

  // Inserts or overwrites.
  virtual void Put(const Digest& key, Bytes value) = 0;

  // Returns the stored value, or nullopt.
  virtual std::optional<Bytes> Get(const Digest& key) const = 0;

  virtual bool Contains(const Digest& key) const = 0;

  // Removes the key if present. Returns true if it was present.
  virtual bool Erase(const Digest& key) = 0;

  virtual size_t size() const = 0;

  // Visits every live record in key order (deterministic: both stores index
  // with an ordered map). Recovery scans are built on this.
  virtual void ForEach(const std::function<void(const Digest&, const Bytes&)>& fn) const = 0;

  // Durability barrier: after Sync() returns, every preceding Put/Erase
  // survives a process crash. MemStore only counts the call (simulated disk
  // is process memory); WalStore does a real fsync.
  virtual void Sync() { ++sync_count_; }

  uint64_t sync_count() const { return sync_count_; }

 protected:
  uint64_t sync_count_ = 0;
};

class MemStore : public Store {
 public:
  void Put(const Digest& key, Bytes value) override;
  std::optional<Bytes> Get(const Digest& key) const override;
  bool Contains(const Digest& key) const override;
  bool Erase(const Digest& key) override;
  size_t size() const override { return map_.size(); }
  void ForEach(const std::function<void(const Digest&, const Bytes&)>& fn) const override;

 private:
  // Ordered so that any future iteration (dumps, state sync, WAL compaction)
  // is deterministic by construction rather than hash-seed dependent.
  std::map<Digest, Bytes> map_;
};

// Append-only WAL-backed store. Every mutation is written as a
// length-prefixed, CRC32-protected record before being applied to the
// in-memory index. Open() replays the log, truncating a torn or corrupt
// tail back to the last good record boundary before reopening for append
// (appending after garbage would silently orphan every later record on the
// *next* recovery).
class WalStore : public Store {
 public:
  // Opens (creating if needed) the log at `path` and replays it.
  // Returns nullptr if the file cannot be opened for appending or a
  // corrupt tail cannot be truncated away.
  static std::unique_ptr<WalStore> Open(const std::string& path);

  ~WalStore() override;

  void Put(const Digest& key, Bytes value) override;
  std::optional<Bytes> Get(const Digest& key) const override;
  bool Contains(const Digest& key) const override;
  bool Erase(const Digest& key) override;
  size_t size() const override { return mem_.size(); }
  void ForEach(const std::function<void(const Digest&, const Bytes&)>& fn) const override;

  // Flushes buffered records and fsyncs the file: a real durability
  // barrier, not just a libc-buffer flush.
  void Sync() override;

  // Number of records replayed by Open() (for recovery tests).
  size_t recovered_records() const { return recovered_records_; }

  // Bytes of torn/corrupt tail Open() truncated away (0 for a clean log).
  size_t truncated_bytes() const { return truncated_bytes_; }

 private:
  WalStore(std::FILE* file, const std::string& path) : file_(file), path_(path) {}

  void AppendRecord(uint8_t op, const Digest& key, const Bytes& value);

  std::FILE* file_;
  std::string path_;
  MemStore mem_;
  size_t recovered_records_ = 0;
  size_t truncated_bytes_ = 0;
};

// CRC32 (IEEE 802.3 polynomial, bit-reflected) over a byte buffer; used by
// the WAL record format and exposed for tests.
uint32_t Crc32(const uint8_t* data, size_t len);

}  // namespace nt

#endif  // SRC_STORE_STORE_H_
