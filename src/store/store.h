// Persistent key-value storage — the role RocksDB plays in the paper's
// artifact (§6: "Data-structures are persisted using RocksDB").
//
// Two implementations:
//  - MemStore: plain in-memory map (used by most simulations).
//  - WalStore: in-memory index backed by an append-only write-ahead log on
//    disk with CRC-protected records and recovery, for durability tests and
//    the storage micro-benchmarks.
#ifndef SRC_STORE_STORE_H_
#define SRC_STORE_STORE_H_

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/crypto/hash.h"

namespace nt {

// Digest-keyed blob store.
class Store {
 public:
  virtual ~Store() = default;

  // Inserts or overwrites.
  virtual void Put(const Digest& key, Bytes value) = 0;

  // Returns the stored value, or nullopt.
  virtual std::optional<Bytes> Get(const Digest& key) const = 0;

  virtual bool Contains(const Digest& key) const = 0;

  // Removes the key if present. Returns true if it was present.
  virtual bool Erase(const Digest& key) = 0;

  virtual size_t size() const = 0;
};

class MemStore : public Store {
 public:
  void Put(const Digest& key, Bytes value) override;
  std::optional<Bytes> Get(const Digest& key) const override;
  bool Contains(const Digest& key) const override;
  bool Erase(const Digest& key) override;
  size_t size() const override { return map_.size(); }

 private:
  // Ordered so that any future iteration (dumps, state sync, WAL compaction)
  // is deterministic by construction rather than hash-seed dependent.
  std::map<Digest, Bytes> map_;
};

// Append-only WAL-backed store. Every mutation is written as a
// length-prefixed, CRC32-protected record before being applied to the
// in-memory index. Open() replays the log, ignoring a torn tail.
class WalStore : public Store {
 public:
  // Opens (creating if needed) the log at `path` and replays it.
  // Returns nullptr if the file cannot be opened for appending.
  static std::unique_ptr<WalStore> Open(const std::string& path);

  ~WalStore() override;

  void Put(const Digest& key, Bytes value) override;
  std::optional<Bytes> Get(const Digest& key) const override;
  bool Contains(const Digest& key) const override;
  bool Erase(const Digest& key) override;
  size_t size() const override { return mem_.size(); }

  // Flushes buffered records to the OS.
  void Sync();

  // Number of records replayed by Open() (for recovery tests).
  size_t recovered_records() const { return recovered_records_; }

 private:
  WalStore(std::FILE* file, const std::string& path) : file_(file), path_(path) {}

  void AppendRecord(uint8_t op, const Digest& key, const Bytes& value);

  std::FILE* file_;
  std::string path_;
  MemStore mem_;
  size_t recovered_records_ = 0;
};

// CRC32 (IEEE 802.3 polynomial, bit-reflected) over a byte buffer; used by
// the WAL record format and exposed for tests.
uint32_t Crc32(const uint8_t* data, size_t len);

}  // namespace nt

#endif  // SRC_STORE_STORE_H_
