// Minimal C++ lexer for ntlint. Produces a flat token stream (identifiers,
// numbers, string/char literals, punctuation) plus the comment text per line,
// which is where `ntlint:allow(...)` suppression annotations live. This is a
// *file-level* lexer: no preprocessing, no macro expansion — exactly enough
// syntax to drive the token-pattern rules in rules.cpp.
#ifndef SRC_LINT_LEXER_H_
#define SRC_LINT_LEXER_H_

#include <string>
#include <vector>

namespace nt {
namespace lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,  // Single characters, except "::" which is merged into one token.
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based.
};

struct Comment {
  int line;  // Line the comment starts on.
  std::string text;  // Without the // or /* */ markers.
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes `content`. Never fails: unrecognized bytes become single-char
// punctuation tokens, and an unterminated literal is closed at end of file.
LexedFile Lex(const std::string& content);

}  // namespace lint
}  // namespace nt

#endif  // SRC_LINT_LEXER_H_
