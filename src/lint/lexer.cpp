#include "src/lint/lexer.h"

#include <cctype>

namespace nt {
namespace lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

LexedFile Lex(const std::string& content) {
  LexedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t start = i + 2;
      size_t end = start;
      while (end < n && content[end] != '\n') {
        ++end;
      }
      out.comments.push_back(Comment{line, content.substr(start, end - start)});
      i = end;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      int start_line = line;
      size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(content[end] == '*' && content[end + 1] == '/')) {
        if (content[end] == '\n') {
          ++line;
        }
        ++end;
      }
      out.comments.push_back(Comment{start_line, content.substr(start, end - start)});
      i = (end + 1 < n) ? end + 2 : n;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      size_t delim_start = i + 2;
      size_t paren = delim_start;
      while (paren < n && content[paren] != '(') {
        ++paren;
      }
      std::string closer = ")" + content.substr(delim_start, paren - delim_start) + "\"";
      size_t end = content.find(closer, paren);
      if (end == std::string::npos) {
        end = n;
      } else {
        end += closer.size();
      }
      for (size_t k = i; k < end; ++k) {
        if (content[k] == '\n') {
          ++line;
        }
      }
      push(TokKind::kString, content.substr(i, end - i));
      i = end;
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      size_t end = i + 1;
      while (end < n && content[end] != c) {
        if (content[end] == '\\' && end + 1 < n) {
          ++end;
        }
        if (content[end] == '\n') {
          ++line;
        }
        ++end;
      }
      if (end < n) {
        ++end;  // Consume the closing quote.
      }
      push(c == '"' ? TokKind::kString : TokKind::kChar, content.substr(i, end - i));
      i = end;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(content[end])) {
        ++end;
      }
      push(TokKind::kIdent, content.substr(i, end - i));
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      // Accept digits, hex letters, separators, exponents and suffixes as one
      // blob — the rules only ever compare small decimal literals exactly.
      while (end < n && (IsIdentChar(content[end]) || content[end] == '\'' ||
                         content[end] == '.')) {
        ++end;
      }
      push(TokKind::kNumber, content.substr(i, end - i));
      i = end;
      continue;
    }
    // "::" is the one multi-char punctuator the rules care about.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace lint
}  // namespace nt
