#include "src/lint/lexer.h"

#include <cctype>

namespace nt {
namespace lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

LexedFile Lex(const std::string& content) {
  LexedFile out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;

  auto push = [&](TokKind kind, std::string text) {
    out.tokens.push_back(Token{kind, std::move(text), line});
  };

  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment. A backslash immediately before the newline (optionally
    // followed by \r on CRLF files) splices the comment onto the next source
    // line, exactly like the preprocessor would.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      int start_line = line;
      size_t start = i + 2;
      size_t end = start;
      std::string text;
      while (end < n) {
        if (content[end] == '\n') {
          size_t back = end;
          if (back > start && content[back - 1] == '\r') {
            --back;
          }
          if (back > start && content[back - 1] == '\\') {
            text.append(content, start, (back - 1) - start);
            ++line;
            start = end + 1;
            end = start;
            continue;
          }
          break;
        }
        ++end;
      }
      text.append(content, start, end - start);
      out.comments.push_back(Comment{start_line, std::move(text)});
      i = end;
      continue;
    }
    // Block comment (may span lines).
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      int start_line = line;
      size_t start = i + 2;
      size_t end = start;
      while (end + 1 < n && !(content[end] == '*' && content[end + 1] == '/')) {
        if (content[end] == '\n') {
          ++line;
        }
        ++end;
      }
      out.comments.push_back(Comment{start_line, content.substr(start, end - start)});
      i = (end + 1 < n) ? end + 2 : n;
      continue;
    }
    // Raw string literal: [u8|u|U|L]R"delim( ... )delim". The encoding
    // prefixes only matter so the delimiter scan starts after the quote.
    size_t raw_prefix = 0;  // Chars before the opening quote; 0 = not raw.
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      raw_prefix = 1;
    } else if (c == 'u' && i + 3 < n && content[i + 1] == '8' &&
               content[i + 2] == 'R' && content[i + 3] == '"') {
      raw_prefix = 3;
    } else if ((c == 'u' || c == 'U' || c == 'L') && i + 2 < n &&
               content[i + 1] == 'R' && content[i + 2] == '"') {
      raw_prefix = 2;
    }
    if (raw_prefix > 0) {
      size_t delim_start = i + raw_prefix + 1;
      size_t paren = delim_start;
      while (paren < n && content[paren] != '(') {
        ++paren;
      }
      std::string closer(")");
      closer.append(content, delim_start, paren - delim_start);
      closer += '"';
      size_t end = content.find(closer, paren);
      if (end == std::string::npos) {
        end = n;
      } else {
        end += closer.size();
      }
      for (size_t k = i; k < end; ++k) {
        if (content[k] == '\n') {
          ++line;
        }
      }
      push(TokKind::kString, content.substr(i, end - i));
      i = end;
      continue;
    }
    // String / char literal with escapes.
    if (c == '"' || c == '\'') {
      size_t end = i + 1;
      while (end < n && content[end] != c) {
        if (content[end] == '\\' && end + 1 < n) {
          ++end;
        }
        if (content[end] == '\n') {
          ++line;
        }
        ++end;
      }
      if (end < n) {
        ++end;  // Consume the closing quote.
      }
      push(c == '"' ? TokKind::kString : TokKind::kChar, content.substr(i, end - i));
      i = end;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t end = i;
      while (end < n && IsIdentChar(content[end])) {
        ++end;
      }
      push(TokKind::kIdent, content.substr(i, end - i));
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      // Accept digits, hex letters, separators, exponents and suffixes as one
      // blob — the rules only ever compare small decimal literals exactly.
      while (end < n && (IsIdentChar(content[end]) || content[end] == '\'' ||
                         content[end] == '.')) {
        ++end;
      }
      push(TokKind::kNumber, content.substr(i, end - i));
      i = end;
      continue;
    }
    // "::" is the one multi-char punctuator the rules care about.
    if (c == ':' && i + 1 < n && content[i + 1] == ':') {
      push(TokKind::kPunct, "::");
      i += 2;
      continue;
    }
    push(TokKind::kPunct, std::string(1, c));
    ++i;
  }
  return out;
}

}  // namespace lint
}  // namespace nt
