// Whole-repo semantic model for ntlint v2 (rules R6–R9).
//
// The per-file rules in rules.cpp see one translation unit at a time, which
// makes the three bug classes our own history shows are most expensive
// invisible: WAL-sync-before-send ordering (the PR 6 double-vote guard),
// Persist/Recover field drift (the crash–restart amnesia class), and the
// message registry drifting out of sync with its codecs, handlers and fuzz
// corpus. Those are *cross-file* properties, so linting them needs a model
// of the repo, not a token stream of a file.
//
// Two-pass driver:
//
//   pass 1 (per file, parallelizable): lex, run the per-file rules, parse
//     allow annotations, and extract a FileFacts record — function/method
//     definitions with a token-level effect sequence (Sign / Store::Sync /
//     Network::Send / bare intra-class calls), WAL record tags with their
//     Persist-side and Recover-side field-op sequences, the MessageTypeId
//     enum, TypeId() registrations, handler dispatch casts, Encode/Decode
//     definitions per codec owner, payload type references, and scheduler
//     callback findings (R8, which only needs one function's tokens).
//
//   pass 2 (whole repo): merge the facts in sorted-file order into a Model,
//     run R6/R7/R9 over it, distribute the model findings back onto their
//     files, apply allow annotations, and aggregate the Summary.
//
// FileFacts serializes to a line-oriented text form, so `ntlint --jobs N`
// can fork pass 1 across workers (tools/job_runner.h) and re-assemble
// byte-identical output in the parent: the merge consumes facts in file
// order no matter which worker produced them.
#ifndef SRC_LINT_MODEL_H_
#define SRC_LINT_MODEL_H_

#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace nt {
namespace lint {

// ---- pass-1 facts ----------------------------------------------------------

// One ordered entry in a function's effect sequence.
//   'g' Sign(...)            signature created
//   'y' Sync()               durability barrier (Store::Sync)
//   's' Send(...)/Broadcast  message leaves the node
//   'c' BareCall(...)        candidate for call-graph inlining; arg = callee
struct FactEffect {
  char kind = 0;
  int line = 0;
  std::string arg;
};

struct FactFunction {
  std::string owner;  // Class for methods ("" for free functions).
  std::string name;
  int line = 0;
  std::vector<FactEffect> effects;
};

// One codec field op inside a Persist or Recover site (kind as in R4:
// u8/u16/u32/u64/i64/bool/var/str/raw/sub).
struct FactOp {
  std::string kind;
  int line = 0;
};

// A WAL record: Persist side = a function that writes a leading tag byte
// (`w.PutU8('X')`) and hands the buffer to the store (`Put(..., w.Take())`);
// Recover side = a `case 'X':` arm (or `value[0] == 'X'` guard) inside a
// Recover function.
struct FactRecord {
  std::string owner;
  char tag = 0;
  int line = 0;
  std::vector<FactOp> ops;
};

struct FactEnumerator {
  std::string name;  // e.g. "kVote"
  int line = 0;
};

// `return MessageTypeId::kX;` inside a message struct's TypeId().
struct FactRegistration {
  std::string enumerator;   // "kX"
  std::string struct_name;  // "MsgX"
  int line = 0;
};

// An Encode or Decode *definition* attributed to its owner type.
struct FactCodecSide {
  std::string owner;
  bool encode = false;
  int line = 0;
};

// A capitalized type mentioned inside a registered message struct's body —
// candidate payload codec (filtered against codec owners at model time).
struct FactPayloadRef {
  std::string struct_name;
  std::string type_name;
};

struct FileFacts {
  std::string path;  // As given to the driver (what findings report).
  std::string rel;   // Repo-relative (rule scoping).
  std::vector<Finding> findings;  // Per-file rules (R1–R5) + R8, unsuppressed.
  std::vector<AllowAnnotation> allows;
  std::vector<FactFunction> functions;
  std::vector<FactRecord> persists;
  std::vector<FactRecord> recovers;
  std::vector<FactEnumerator> enumerators;  // MessageTypeId only.
  std::vector<FactRegistration> registrations;
  std::vector<std::string> handler_casts;  // Struct names dispatched on.
  std::vector<FactCodecSide> codec_sides;
  std::vector<FactPayloadRef> payload_refs;
};

// An in-memory translation unit (tests lint synthetic multi-file repos this
// way; a unit whose path ends in .cpp picks up a same-stem .h unit as its R2
// companion, mirroring the on-disk driver).
struct SourceUnit {
  std::string path;
  std::string content;
};

// Pass 1 for one unit. `companion_content` may be null.
FileFacts ExtractFacts(const std::string& path, const std::string& content,
                       const std::string* companion_content);

// Rule R8 (deferred-capture). Lives with the model because it reuses the
// structural scanner (function spans), but it only needs one file's tokens,
// so it runs in pass 1 alongside R1–R5.
std::vector<Finding> RunDeferredCapture(const std::string& rel_path, const LexedFile& lex);

// Pass 1 for one on-disk file (reads the sibling .h companion itself). An
// unreadable file yields a FileFacts whose findings carry the io-error.
FileFacts ExtractFactsFromDisk(const std::string& path);

// Text round-trip for the forked --jobs pipeline. Serialize emits a
// line-oriented record block per file; Parse appends every block found in
// `text` to `out` and returns false on malformed input.
std::string SerializeFacts(const FileFacts& facts);
bool ParseFacts(const std::string& text, std::vector<FileFacts>* out);

// Pass 2: runs R6/R7/R9 over the merged facts. `fuzz_corpus` is the content
// of tests/fuzz_decode_test.cpp (null = corpus unknown, the corpus leg of R9
// is skipped). Findings carry the path of the file they belong to.
std::vector<Finding> RunModelRules(const std::vector<FileFacts>& files,
                                   const std::string* fuzz_corpus);

// Merges model findings into the per-file reports, applies allows, and
// aggregates. This is the single assembly point both the sequential and the
// forked drivers share — byte-identical output by construction.
Summary AssembleSummary(std::vector<FileFacts> files, const std::string* fuzz_corpus);

// Whole pipeline over in-memory units (fixture tests).
Summary LintRepoUnits(const std::vector<SourceUnit>& units, const std::string* fuzz_corpus);

// Locates tests/fuzz_decode_test.cpp relative to the lint roots (the repo
// convention: roots like "src" or "<repo>/src" have a sibling tests/ dir).
// Returns "" when not found.
std::string LocateFuzzCorpus(const std::vector<std::string>& paths);

// Whole pipeline over paths with an explicit corpus file ("" = auto-locate,
// and if that fails the corpus leg of R9 is skipped).
Summary LintPathsWithCorpus(const std::vector<std::string>& paths,
                            const std::string& corpus_path);

}  // namespace lint
}  // namespace nt

#endif  // SRC_LINT_MODEL_H_
