#include "src/lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/lint/lexer.h"
#include "src/lint/rules.h"

namespace nt {
namespace lint {
namespace {

struct Allow {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Extracts `ntlint:allow(rule[,rule...]): reason` annotations from comments.
std::vector<Allow> ParseAllows(const std::vector<Comment>& comments) {
  std::vector<Allow> allows;
  for (const Comment& c : comments) {
    size_t pos = c.text.find("ntlint:allow(");
    if (pos == std::string::npos) {
      continue;
    }
    size_t open = pos + std::string("ntlint:allow").size();
    size_t close = c.text.find(')', open);
    if (close == std::string::npos) {
      continue;
    }
    Allow a;
    a.line = c.line;
    // Only known rule names count: documentation that merely quotes the
    // annotation syntax (e.g. "ntlint:allow(<rule>)") must not parse as a
    // live suppression, and a typo'd rule leaves the finding unsuppressed —
    // which surfaces the typo.
    static const char* kKnownRules[] = {kRuleNondet, kRuleUnorderedIter, kRuleQuorumArith,
                                        kRuleCodecMismatch, kRulePointerKey};
    std::stringstream rules(c.text.substr(open + 1, close - open - 1));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule = Trim(rule);
      for (const char* known : kKnownRules) {
        if (rule == known) {
          a.rules.push_back(rule);
          break;
        }
      }
    }
    size_t colon = c.text.find(':', close);
    if (colon != std::string::npos) {
      a.reason = Trim(c.text.substr(colon + 1));
    }
    if (!a.rules.empty()) {
      allows.push_back(std::move(a));
    }
  }
  return allows;
}

// Repo-relative path ("src/..." or "bench/...") so rule scoping works no
// matter where the tool is invoked from.
std::string RelPath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  for (const char* anchor : {"/src/", "/bench/"}) {
    size_t pos = path.rfind(anchor);
    if (pos != std::string::npos) {
      return path.substr(pos + 1);
    }
  }
  return path;
}

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

}  // namespace

FileReport LintSource(const std::string& path, const std::string& content) {
  return LintSourceWithCompanion(path, content, nullptr);
}

FileReport LintSourceWithCompanion(const std::string& path, const std::string& content,
                                   const std::string* companion_content) {
  FileReport report;
  report.path = path;
  const std::string rel = RelPath(path);
  LexedFile lex = Lex(content);
  LexedFile companion;
  if (companion_content != nullptr) {
    companion = Lex(*companion_content);
  }
  std::vector<Finding> findings =
      RunRules(rel, lex, companion_content != nullptr ? &companion : nullptr);
  std::vector<Allow> allows = ParseAllows(lex.comments);

  for (Finding& f : findings) {
    f.path = path;
    for (Allow& a : allows) {
      // An annotation covers its own line (trailing comment) and the line
      // directly below it (annotation-above style).
      if (a.line != f.line && a.line + 1 != f.line) {
        continue;
      }
      if (std::find(a.rules.begin(), a.rules.end(), f.rule) == a.rules.end()) {
        continue;
      }
      f.suppressed = true;
      f.allow_reason = a.reason;
      a.used = true;
      break;
    }
  }
  for (const Allow& a : allows) {
    if (!a.used) {
      std::string rules;
      for (const std::string& r : a.rules) {
        rules += (rules.empty() ? "" : ",") + r;
      }
      report.unused_allows.emplace_back(a.line, rules);
    }
  }
  report.findings = std::move(findings);
  return report;
}

FileReport LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    FileReport report;
    report.path = path;
    Finding f;
    f.rule = "io-error";
    f.path = path;
    f.line = 0;
    f.message = "cannot read file";
    report.findings.push_back(std::move(f));
    return report;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  // For a .cpp, feed the sibling header's declarations to rule R2.
  std::string companion_content;
  bool have_companion = false;
  std::filesystem::path p(path);
  if (p.extension() == ".cpp" || p.extension() == ".cc") {
    std::filesystem::path header = p;
    header.replace_extension(".h");
    std::ifstream hin(header, std::ios::binary);
    if (hin) {
      std::stringstream hbuf;
      hbuf << hin.rdbuf();
      companion_content = hbuf.str();
      have_companion = true;
    }
  }
  return LintSourceWithCompanion(path, buf.str(),
                                 have_companion ? &companion_content : nullptr);
}

std::vector<std::string> CollectSourceFiles(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root);
    return files;
  }
  if (!fs::is_directory(root, ec)) {
    return files;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  fs::recursive_directory_iterator end;
  for (; it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory(ec)) {
      if (!name.empty() && (name[0] == '.' || name.rfind("build", 0) == 0)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && IsSourceFile(p)) {
      files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Summary LintPaths(const std::vector<std::string>& paths) {
  Summary summary;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::vector<std::string> collected = CollectSourceFiles(p);
    files.insert(files.end(), collected.begin(), collected.end());
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (const std::string& f : files) {
    FileReport report = LintFile(f);
    for (const Finding& fnd : report.findings) {
      ++summary.total;
      if (fnd.suppressed) {
        ++summary.suppressed;
      }
    }
    if (!report.findings.empty() || !report.unused_allows.empty()) {
      summary.files.push_back(std::move(report));
    }
  }
  return summary;
}

std::string FormatSummary(const Summary& summary, bool verbose) {
  std::ostringstream out;
  for (const FileReport& file : summary.files) {
    for (const Finding& f : file.findings) {
      if (f.suppressed && !verbose) {
        continue;
      }
      out << f.path << ":" << f.line << ": [" << f.rule << "] "
          << (f.suppressed ? "(suppressed) " : "") << f.message << "\n";
    }
  }
  // The suppression budget is always visible: every allow annotation in
  // effect is listed so exceptions cannot accumulate silently.
  if (summary.suppressed > 0) {
    out << "\nsuppressed findings (" << summary.suppressed << "):\n";
    for (const FileReport& file : summary.files) {
      for (const Finding& f : file.findings) {
        if (f.suppressed) {
          out << "  " << f.path << ":" << f.line << " [" << f.rule << "] "
              << (f.allow_reason.empty() ? "(no reason given)" : f.allow_reason) << "\n";
        }
      }
    }
  }
  bool header_printed = false;
  for (const FileReport& file : summary.files) {
    for (const auto& [line, rules] : file.unused_allows) {
      if (!header_printed) {
        out << "\nstale allow annotations (matched no finding):\n";
        header_printed = true;
      }
      out << "  " << file.path << ":" << line << " [" << rules << "]\n";
    }
  }
  out << "\nntlint: " << summary.total << " finding(s), " << summary.suppressed
      << " suppressed, " << summary.unsuppressed() << " unsuppressed\n";
  return out.str();
}

}  // namespace lint
}  // namespace nt
