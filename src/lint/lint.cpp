#include "src/lint/lint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/lint/lexer.h"
#include "src/lint/model.h"
#include "src/lint/rules.h"

namespace nt {
namespace lint {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

// JSON string escaping for the SARIF emitter.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* RuleShortDescription(const std::string& rule) {
  if (rule == kRuleNondet) {
    return "Wall-clock, ambient-entropy or threading source outside the simulator";
  }
  if (rule == kRuleUnorderedIter) {
    return "Unordered-container iteration order escapes into messages or state";
  }
  if (rule == kRuleQuorumArith) {
    return "Literal quorum-threshold arithmetic outside the Committee helpers";
  }
  if (rule == kRuleCodecMismatch) {
    return "Encode/Decode field op sequences drift";
  }
  if (rule == kRulePointerKey) {
    return "Container ordered or keyed by raw pointer value";
  }
  if (rule == kRuleWalBeforeSend) {
    return "Signed message sent without a prior Store::Sync durability barrier";
  }
  if (rule == kRuleRecoverParity) {
    return "WAL Persist site and Recover arm field ops drift";
  }
  if (rule == kRuleDeferredCapture) {
    return "Scheduler lambda captures by reference or reschedules with stale state";
  }
  if (rule == kRuleRegistryExhaustive) {
    return "MessageTypeId missing a codec, handler or fuzz-corpus leg";
  }
  return "ntlint finding";
}

}  // namespace

const std::vector<std::string>& AllRuleNames() {
  static const std::vector<std::string> names = {
      kRuleNondet,        kRuleUnorderedIter, kRuleQuorumArith,
      kRuleCodecMismatch, kRulePointerKey,    kRuleWalBeforeSend,
      kRuleRecoverParity, kRuleDeferredCapture, kRuleRegistryExhaustive};
  return names;
}

std::vector<AllowAnnotation> ParseAllows(const std::vector<Comment>& comments) {
  std::vector<AllowAnnotation> allows;
  for (const Comment& c : comments) {
    size_t pos = c.text.find("ntlint:allow(");
    if (pos == std::string::npos) {
      continue;
    }
    size_t open = pos + std::string("ntlint:allow").size();
    size_t close = c.text.find(')', open);
    if (close == std::string::npos) {
      continue;
    }
    AllowAnnotation a;
    a.line = c.line;
    // Only known rule names count: documentation that merely quotes the
    // annotation syntax (e.g. "ntlint:allow(<rule>)") must not parse as a
    // live suppression, and a typo'd rule leaves the finding unsuppressed —
    // which surfaces the typo.
    std::stringstream rules(c.text.substr(open + 1, close - open - 1));
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule = Trim(rule);
      for (const std::string& known : AllRuleNames()) {
        if (rule == known) {
          a.rules.push_back(rule);
          break;
        }
      }
    }
    size_t colon = c.text.find(':', close);
    if (colon != std::string::npos) {
      a.reason = Trim(c.text.substr(colon + 1));
    }
    if (!a.rules.empty()) {
      allows.push_back(std::move(a));
    }
  }
  return allows;
}

std::string RepoRelPath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  for (const char* anchor : {"/src/", "/bench/"}) {
    size_t pos = path.rfind(anchor);
    if (pos != std::string::npos) {
      return path.substr(pos + 1);
    }
  }
  return path;
}

void ApplyAllows(std::vector<Finding>* findings, std::vector<AllowAnnotation>* allows,
                 FileReport* report) {
  for (Finding& f : *findings) {
    for (AllowAnnotation& a : *allows) {
      // An annotation covers its own line (trailing comment) and the line
      // directly below it (annotation-above style).
      if (a.line != f.line && a.line + 1 != f.line) {
        continue;
      }
      if (std::find(a.rules.begin(), a.rules.end(), f.rule) == a.rules.end()) {
        continue;
      }
      f.suppressed = true;
      f.allow_reason = a.reason;
      a.used = true;
      break;
    }
  }
  for (const AllowAnnotation& a : *allows) {
    if (!a.used) {
      std::string rules;
      for (const std::string& r : a.rules) {
        rules += (rules.empty() ? "" : ",") + r;
      }
      report->unused_allows.emplace_back(a.line, rules);
    }
  }
}

FileReport LintSource(const std::string& path, const std::string& content) {
  return LintSourceWithCompanion(path, content, nullptr);
}

FileReport LintSourceWithCompanion(const std::string& path, const std::string& content,
                                   const std::string* companion_content) {
  // Per-file linting is pass 1 of the model pipeline, so a file linted alone
  // and the same file linted as part of the repo agree by construction.
  FileFacts facts = ExtractFacts(path, content, companion_content);
  FileReport report;
  report.path = path;
  ApplyAllows(&facts.findings, &facts.allows, &report);
  report.findings = std::move(facts.findings);
  return report;
}

FileReport LintFile(const std::string& path) {
  FileFacts facts = ExtractFactsFromDisk(path);
  FileReport report;
  report.path = path;
  ApplyAllows(&facts.findings, &facts.allows, &report);
  report.findings = std::move(facts.findings);
  return report;
}

std::vector<std::string> CollectSourceFiles(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    files.push_back(root);
    return files;
  }
  if (!fs::is_directory(root, ec)) {
    return files;
  }
  fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
  fs::recursive_directory_iterator end;
  for (; it != end; it.increment(ec)) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory(ec)) {
      if (!name.empty() && (name[0] == '.' || name.rfind("build", 0) == 0)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && IsSourceFile(p)) {
      files.push_back(p.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

Summary LintPaths(const std::vector<std::string>& paths) {
  return LintPathsWithCorpus(paths, "");
}

std::string FormatSummary(const Summary& summary, bool verbose) {
  std::ostringstream out;
  for (const FileReport& file : summary.files) {
    for (const Finding& f : file.findings) {
      if ((f.suppressed || f.baselined) && !verbose) {
        continue;
      }
      out << f.path << ":" << f.line << ": [" << f.rule << "] "
          << (f.suppressed ? "(suppressed) " : (f.baselined ? "(baselined) " : ""))
          << f.message << "\n";
    }
  }
  // The suppression budget is always visible: every allow annotation in
  // effect is listed so exceptions cannot accumulate silently.
  if (summary.suppressed > 0) {
    out << "\nsuppressed findings (" << summary.suppressed << "):\n";
    for (const FileReport& file : summary.files) {
      for (const Finding& f : file.findings) {
        if (f.suppressed) {
          out << "  " << f.path << ":" << f.line << " [" << f.rule << "] "
              << (f.allow_reason.empty() ? "(no reason given)" : f.allow_reason) << "\n";
        }
      }
    }
  }
  bool header_printed = false;
  for (const FileReport& file : summary.files) {
    for (const auto& [line, rules] : file.unused_allows) {
      if (!header_printed) {
        out << "\nstale allow annotations (matched no finding):\n";
        header_printed = true;
      }
      out << "  " << file.path << ":" << line << " [" << rules << "]\n";
    }
  }
  if (header_printed) {
    out << "  stale by rule:";
    for (const auto& [rule, count] : summary.stale_by_rule) {
      out << " " << rule << "=" << count;
    }
    out << "\n";
  }
  out << "\nntlint: " << summary.total << " finding(s), " << summary.suppressed
      << " suppressed, ";
  if (summary.baselined > 0) {
    out << summary.baselined << " baselined, ";
  }
  out << summary.unsuppressed() << " unsuppressed\n";
  return out.str();
}

std::string FormatSarif(const Summary& summary) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out << "  \"version\": \"2.1.0\",\n";
  out << "  \"runs\": [\n    {\n";
  out << "      \"tool\": {\n        \"driver\": {\n";
  out << "          \"name\": \"ntlint\",\n";
  out << "          \"informationUri\": \"https://example.invalid/ntlint\",\n";
  out << "          \"rules\": [\n";
  const std::vector<std::string>& rules = AllRuleNames();
  for (size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << JsonEscape(rules[i]) << "\", \"shortDescription\": "
        << "{\"text\": \"" << JsonEscape(RuleShortDescription(rules[i])) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n        }\n      },\n";
  out << "      \"results\": [";
  bool first = true;
  for (const FileReport& file : summary.files) {
    for (const Finding& f : file.findings) {
      out << (first ? "\n" : ",\n");
      first = false;
      out << "        {\n";
      out << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n";
      out << "          \"level\": \"" << (f.suppressed || f.baselined ? "note" : "error")
          << "\",\n";
      out << "          \"message\": {\"text\": \"" << JsonEscape(f.message) << "\"},\n";
      out << "          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": "
          << "{\"uri\": \"" << JsonEscape(RepoRelPath(f.path)) << "\"}, \"region\": "
          << "{\"startLine\": " << std::max(1, f.line) << "}}}]";
      if (f.suppressed) {
        out << ",\n          \"suppressions\": [{\"kind\": \"inSource\", \"justification\": \""
            << JsonEscape(f.allow_reason.empty() ? "(no reason given)" : f.allow_reason)
            << "\"}]";
      } else if (f.baselined) {
        out << ",\n          \"suppressions\": [{\"kind\": \"external\"}]";
      }
      out << "\n        }";
    }
  }
  out << (first ? "]\n" : "\n      ]\n");
  out << "    }\n  ]\n}\n";
  return out.str();
}

std::string WriteBaseline(const Summary& summary) {
  std::vector<std::string> lines;
  for (const FileReport& file : summary.files) {
    for (const Finding& f : file.findings) {
      if (f.suppressed) {
        continue;  // Inline-annotated findings need no grandfathering.
      }
      lines.push_back(f.rule + "\t" + RepoRelPath(f.path) + "\t" + f.message);
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out =
      "# ntlint baseline: one \"rule<TAB>path<TAB>message\" per grandfathered finding.\n"
      "# Lines match on content, not line number, so edits elsewhere do not churn it.\n";
  for (const std::string& l : lines) {
    out += l + "\n";
  }
  return out;
}

std::multiset<std::string> ParseBaseline(const std::string& text) {
  std::multiset<std::string> entries;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    entries.insert(line);
  }
  return entries;
}

void MarkBaseline(Summary* summary, std::multiset<std::string> baseline) {
  for (FileReport& file : summary->files) {
    for (Finding& f : file.findings) {
      if (f.suppressed) {
        continue;
      }
      auto it = baseline.find(f.rule + "\t" + RepoRelPath(f.path) + "\t" + f.message);
      if (it != baseline.end()) {
        f.baselined = true;
        ++summary->baselined;
        baseline.erase(it);  // Each entry grandfathers at most one finding.
      }
    }
  }
}

}  // namespace lint
}  // namespace nt
