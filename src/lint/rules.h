// Rule implementations for ntlint (R1–R5). Split from the driver so the
// fixture tests can run rules on synthetic token streams directly.
#ifndef SRC_LINT_RULES_H_
#define SRC_LINT_RULES_H_

#include <string>
#include <vector>

#include "src/lint/lexer.h"
#include "src/lint/lint.h"

namespace nt {
namespace lint {

// Runs every rule applicable to `rel_path` (a repo-relative path like
// "src/narwhal/primary.cpp") over the lexed file. Findings come back
// unsuppressed and sorted by (line, rule); the driver applies annotations.
// `companion` (may be null) is the lexed sibling header of a .cpp file —
// rule R2 collects unordered-container member declarations from it, since
// members are declared in the .h and iterated in the .cpp.
std::vector<Finding> RunRules(const std::string& rel_path, const LexedFile& lex,
                              const LexedFile* companion = nullptr);

}  // namespace lint
}  // namespace nt

#endif  // SRC_LINT_RULES_H_
