#include "src/lint/rules.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

namespace nt {
namespace lint {
namespace {

using Toks = std::vector<Token>;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool PathContains(const std::string& path, const std::string& frag) {
  return path.find(frag) != std::string::npos;
}

// --------------------------------------------------------------- path scoping

// R1 is about wall-clock/entropy/thread *sources*; the simulator and the
// benchmark harness are the two places allowed to own real time.
bool ExemptFromNondet(const std::string& p) {
  return StartsWith(p, "src/sim/") || PathContains(p, "/sim/") || StartsWith(p, "bench/") ||
         PathContains(p, "/bench/");
}

// R3 runs where threshold arithmetic could plausibly appear. The crypto
// field arithmetic (ed25519 limbs, SHA round state) uses short variable
// names heavily, so the rule is scoped to protocol logic plus the coin.
bool InQuorumScope(const std::string& p) {
  if (p == "src/types/committee.h") {
    return false;  // The one blessed home for threshold arithmetic.
  }
  static const char* kDirs[] = {"src/narwhal/", "src/tusk/",    "src/bullshark/",
                                "src/hotstuff/", "src/types/",  "src/check/",
                                "src/exec/",    "src/runtime/", "src/crypto/coin"};
  for (const char* d : kDirs) {
    if (StartsWith(p, d)) {
      return true;
    }
  }
  return false;
}

// ------------------------------------------------------------- token helpers

bool IsIdent(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Index of the punctuation closing the bracket opened at `open` (which must
// hold `oc`). Returns t.size() when unbalanced.
size_t MatchForward(const Toks& t, size_t open, const char* oc, const char* cc) {
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct) {
      if (t[i].text == oc) {
        ++depth;
      } else if (t[i].text == cc) {
        if (--depth == 0) {
          return i;
        }
      }
    }
  }
  return t.size();
}

// Builds the qualified-name chain starting at ident index `i` ("std :: mutex"
// -> "std::mutex") and sets `*end` to the index of the chain's last token.
std::string ChainAt(const Toks& t, size_t i, size_t* end) {
  std::string chain = t[i].text;
  size_t j = i;
  while (j + 2 < t.size() && t[j + 1].kind == TokKind::kPunct && t[j + 1].text == "::" &&
         t[j + 2].kind == TokKind::kIdent) {
    chain += "::" + t[j + 2].text;
    j += 2;
  }
  *end = j;
  return chain;
}

void Report(std::vector<Finding>* out, const char* rule, int line, std::string msg) {
  Finding fnd;
  fnd.rule = rule;
  fnd.line = line;
  fnd.message = std::move(msg);
  out->push_back(std::move(fnd));
}

// ------------------------------------------------------------------ R1 nondet

void RunNondet(const std::string& path, const Toks& t, std::vector<Finding>* out) {
  if (ExemptFromNondet(path)) {
    return;
  }
  static const std::set<std::string> kBannedIncludes = {"chrono", "thread", "ctime", "unistd"};
  static const std::set<std::string> kBannedExact = {
      // Wall clocks (bare forms cover `using namespace std::chrono`).
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday", "clock_gettime",
      "localtime", "gmtime",
      // Ambient entropy / libc RNG: unseeded or seeded from the environment.
      "rand", "srand", "drand48", "random_device", "std::random_device",
      // Environment reads.
      "getenv", "std::getenv", "secure_getenv",
      // Threading: scheduling order is OS-dependent.
      "std::thread", "std::jthread", "std::async", "std::condition_variable",
      "std::condition_variable_any", "std::future", "std::promise",
      // Sleeps block on real time.
      "usleep", "nanosleep"};
  // Mutexes are flagged at their *declaration* (one finding per lock, not per
  // lock_guard use) so a deliberate exception needs exactly one annotation.
  static const std::set<std::string> kMutexTypes = {"std::mutex", "std::recursive_mutex",
                                                    "std::shared_mutex", "std::timed_mutex"};
  // Raw file IO (the fsync/truncate family): real side effects on the host
  // filesystem, invisible to the simulator and non-replayable. Only the WAL
  // durability layer may touch these, and each call site carries an explicit
  // allow — no blanket path exemption.
  static const std::set<std::string> kBannedFileIo = {"fsync", "fdatasync", "fileno", "ftruncate",
                                                      "truncate"};

  for (size_t i = 0; i < t.size(); ++i) {
    // #include <chrono> etc.
    if (t[i].kind == TokKind::kPunct && t[i].text == "#" && i + 3 < t.size() &&
        IsIdent(t[i + 1], "include") && t[i + 2].text == "<" &&
        t[i + 3].kind == TokKind::kIdent && kBannedIncludes.count(t[i + 3].text) > 0) {
      Report(out, kRuleNondet, t[i].line,
             "banned include <" + t[i + 3].text + ">: wall-clock/threading/file-IO source outside src/sim/ and bench/");
      continue;
    }
    // Skip identifiers that are mid-chain (`a::b`); a leading `::` (global
    // qualification, e.g. `::fsync`) still starts a chain.
    if (t[i].kind != TokKind::kIdent ||
        (i > 0 && t[i - 1].text == "::" && i > 1 && t[i - 2].kind == TokKind::kIdent)) {
      continue;
    }
    size_t end = 0;
    std::string chain = ChainAt(t, i, &end);
    if (StartsWith(chain, "std::chrono") || StartsWith(chain, "std::this_thread")) {
      Report(out, kRuleNondet, t[i].line,
             "banned identifier '" + chain + "': wall-clock/thread source; protocol code must use the simulated clock (src/common/time.h)");
      i = end;
      continue;
    }
    if (kBannedExact.count(chain) > 0) {
      Report(out, kRuleNondet, t[i].line,
             "banned identifier '" + chain + "': nondeterminism source; derive randomness from nt::Rng and time from the Scheduler");
      i = end;
      continue;
    }
    if (kMutexTypes.count(chain) > 0 && end + 1 < t.size() &&
        t[end + 1].kind == TokKind::kIdent) {
      Report(out, kRuleNondet, t[i].line,
             "thread primitive '" + chain + "' declared: lock acquisition order is scheduler-dependent");
      i = end;
      continue;
    }
    // fsync(fd), ::truncate(path, len), ...: flagged only as calls (an
    // identifier merely *named* truncate — e.g. a member — stays silent via
    // the `.` check).
    if (kBannedFileIo.count(chain) > 0 && (i == 0 || t[i - 1].text != ".") &&
        end + 1 < t.size() && t[end + 1].text == "(") {
      Report(out, kRuleNondet, t[i].line,
             "banned call '" + chain + "(...)': raw file IO; durability effects go through the Store interface (per-site allow in the WAL layer only)");
      i = end;
      continue;
    }
    // time(nullptr) / time(NULL) / time(0): wall clock through libc.
    if ((chain == "time" || chain == "std::time") && end + 2 < t.size() &&
        t[end + 1].text == "(" &&
        (t[end + 2].text == "nullptr" || t[end + 2].text == "NULL" || t[end + 2].text == "0")) {
      Report(out, kRuleNondet, t[i].line,
             "banned call '" + chain + "(...)': wall-clock read; use Scheduler::now()");
      i = end;
    }
  }
}

// --------------------------------------------------------- R2 unordered-iter

// Heuristic for "the loop body lets iteration order escape": it sends,
// schedules, hashes, encodes, streams, or appends to an order-preserving
// sink. Pure per-element reads/erases are order-insensitive and stay silent.
bool BodyEscapesOrder(const Toks& t, size_t first, size_t last) {
  static const std::set<std::string> kExact = {
      "Hash",     "Update",       "Finalize", "Encode",  "Serialize", "push_back",
      "emplace_back", "emplace",  "insert",   "append",  "PutU8",     "PutU16",
      "PutU32",   "PutU64",       "PutI64",   "PutBool", "PutVar",    "PutString",
      "PutRaw"};
  static const char* kPrefixes[] = {"Send", "Broadcast", "Schedule", "Publish", "Write"};
  for (size_t i = first; i <= last && i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct && t[i].text == "<" && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "<") {
      return true;  // Stream output.
    }
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    if (kExact.count(t[i].text) > 0) {
      return true;
    }
    for (const char* p : kPrefixes) {
      if (StartsWith(t[i].text, p)) {
        return true;
      }
    }
  }
  return false;
}

// Collects names of variables (and members) declared with an unordered
// container type, plus `using` aliases of such types, into `unordered_vars`.
// Per-lane books — ordered sequences whose *elements* are unordered
// containers (`std::vector<std::unordered_map<...>> lanes_`) — go into
// `elem_unordered_vars`: the sequence itself iterates in index order, but a
// subscripted element (`lanes_[lane]`) is just as order-unstable as a bare
// unordered member.
void CollectUnorderedDecls(const Toks& t, std::set<std::string>* unordered_vars,
                           std::set<std::string>* elem_unordered_vars) {
  static const std::set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  static const std::set<std::string> kSequenceTypes = {"vector", "deque", "array"};
  std::set<std::string>& vars = *unordered_vars;
  // Pass 0: sequences of unordered containers.
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kSequenceTypes.count(t[i].text) == 0 ||
        t[i + 1].text != "<") {
      continue;
    }
    size_t close = MatchForward(t, i + 1, "<", ">");
    if (close >= t.size()) {
      continue;
    }
    bool holds_unordered = false;
    for (size_t k = i + 2; k < close; ++k) {
      if (t[k].kind == TokKind::kIdent && kUnorderedTypes.count(t[k].text) > 0) {
        holds_unordered = true;
        break;
      }
    }
    if (!holds_unordered) {
      continue;
    }
    size_t j = close + 1;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || IsIdent(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        (j + 1 >= t.size() || t[j + 1].text != "(")) {
      elem_unordered_vars->insert(t[j].text);
    }
  }
  std::set<std::string> alias_types;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) {
      continue;
    }
    if (alias_types.count(t[i].text) > 0 && i + 2 < t.size() &&
        t[i + 1].kind == TokKind::kIdent &&
        (t[i + 2].text == ";" || t[i + 2].text == "=" || t[i + 2].text == "{")) {
      vars.insert(t[i + 1].text);
      continue;
    }
    if (kUnorderedTypes.count(t[i].text) == 0 || i + 1 >= t.size() || t[i + 1].text != "<") {
      continue;
    }
    size_t close = MatchForward(t, i + 1, "<", ">");
    if (close >= t.size()) {
      continue;
    }
    // `using Alias = std::unordered_map<...>;`
    size_t back = i;
    while (back >= 2 && (t[back - 1].text == "::" || IsIdent(t[back - 1], "std"))) {
      --back;
    }
    if (back >= 3 && t[back - 1].text == "=" && IsIdent(t[back - 3], "using")) {
      alias_types.insert(t[back - 2].text);
      continue;
    }
    size_t j = close + 1;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || IsIdent(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent &&
        (j + 1 >= t.size() || t[j + 1].text != "(")) {
      vars.insert(t[j].text);
    }
  }
}

void RunUnorderedIter(const std::string& path, const Toks& t, const Toks* companion,
                      std::vector<Finding>* out) {
  (void)path;  // Applies everywhere: even sim-internal order must not escape.
  // Members are declared in the header and iterated in the .cpp, so the
  // driver passes the companion header's tokens for declaration collection.
  std::set<std::string> unordered_vars;
  std::set<std::string> elem_unordered_vars;
  CollectUnorderedDecls(t, &unordered_vars, &elem_unordered_vars);
  if (companion != nullptr) {
    CollectUnorderedDecls(*companion, &unordered_vars, &elem_unordered_vars);
  }
  if (unordered_vars.empty() && elem_unordered_vars.empty()) {
    return;
  }

  // Pass 2: loops whose sequence is an unordered container.
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t[i], "for") || t[i + 1].text != "(") {
      continue;
    }
    size_t close = MatchForward(t, i + 1, "(", ")");
    if (close >= t.size()) {
      continue;
    }
    std::string var;
    // Range-for: the sequence is the trailing identifier after the top-level
    // ':' (handles `m`, `obj.m`, `this->m`).
    int depth = 0;
    size_t colon = 0;
    for (size_t k = i + 2; k < close; ++k) {
      if (t[k].kind == TokKind::kPunct) {
        if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{") {
          ++depth;
        } else if (t[k].text == ")" || t[k].text == "]" || t[k].text == "}") {
          --depth;
        } else if (t[k].text == ":" && depth == 0) {
          colon = k;
          break;
        }
      }
    }
    if (colon != 0 && t[close - 1].kind == TokKind::kIdent &&
        unordered_vars.count(t[close - 1].text) > 0) {
      var = t[close - 1].text;
    }
    // Range-for over a subscripted per-lane book: `: lanes_[lane])`.
    if (var.empty() && colon != 0 && t[close - 1].text == "]") {
      for (size_t k = colon + 1; k + 1 < close; ++k) {
        if (t[k].kind == TokKind::kIdent && elem_unordered_vars.count(t[k].text) > 0 &&
            t[k + 1].text == "[" && MatchForward(t, k + 1, "[", "]") == close - 1) {
          var = t[k].text;
          break;
        }
      }
    }
    // Iterator loop: `it = m.begin()` inside the for-header, with or without
    // a per-lane subscript (`deferred_[lane].begin()`).
    if (var.empty()) {
      for (size_t k = i + 2; k + 2 < close; ++k) {
        if (t[k].kind != TokKind::kIdent) {
          continue;
        }
        if (unordered_vars.count(t[k].text) > 0 && t[k + 1].text == "." &&
            (IsIdent(t[k + 2], "begin") || IsIdent(t[k + 2], "cbegin"))) {
          var = t[k].text;
          break;
        }
        if (elem_unordered_vars.count(t[k].text) > 0 && t[k + 1].text == "[") {
          size_t sub = MatchForward(t, k + 1, "[", "]");
          if (sub + 2 < close && t[sub + 1].text == "." &&
              (IsIdent(t[sub + 2], "begin") || IsIdent(t[sub + 2], "cbegin"))) {
            var = t[k].text;
            break;
          }
        }
      }
    }
    if (var.empty()) {
      continue;
    }
    size_t body_first = close + 1;
    size_t body_last;
    if (body_first < t.size() && t[body_first].text == "{") {
      body_last = MatchForward(t, body_first, "{", "}");
    } else {
      body_last = body_first;
      while (body_last < t.size() && t[body_last].text != ";") {
        ++body_last;
      }
    }
    if (BodyEscapesOrder(t, body_first, body_last)) {
      Report(out, kRuleUnorderedIter, t[i].line,
             "iteration over unordered container '" + var +
                 "' with an order-escaping body (sends/hashes/serializes/appends); iterate a "
                 "sorted snapshot or use an ordered container");
    }
  }
}

// ----------------------------------------------------------- R3 quorum-arith

void RunQuorumArith(const std::string& path, const Toks& t, std::vector<Finding>* out) {
  if (!InQuorumScope(path)) {
    return;
  }
  auto is_number = [&](size_t i, const char* v) {
    return i < t.size() && t[i].kind == TokKind::kNumber && t[i].text == v;
  };
  for (size_t i = 0; i < t.size(); ++i) {
    // `<committee-ish expr> / 3`: computing f (or n/3) from a committee size.
    if (t[i].kind == TokKind::kPunct && t[i].text == "/" && is_number(i + 1, "3")) {
      Report(out, kRuleQuorumArith, t[i].line,
             "literal division by 3: committee-size arithmetic belongs in "
             "Committee::MaxFaultyFor / quorum helpers (src/types/committee.h)");
      continue;
    }
    // Arithmetic on `f` — bare local or `committee.f()`.
    if (!IsIdent(t[i], "f")) {
      continue;
    }
    size_t start = i;
    if (i >= 2 && t[i - 1].text == "." && t[i - 2].kind == TokKind::kIdent) {
      start = i - 2;
    }
    size_t end = i;
    if (i + 2 < t.size() && t[i + 1].text == "(" && t[i + 2].text == ")") {
      end = i + 2;
    } else if (start != i) {
      continue;  // `x.f` without a call — member access named f, not ours.
    }
    bool flagged = false;
    if (start >= 2 && t[start - 1].text == "*" &&
        (is_number(start - 2, "2") || is_number(start - 2, "3"))) {
      flagged = true;  // 2*f, 3*f
    }
    if (end + 2 < t.size() && t[end + 1].text == "*" &&
        (is_number(end + 2, "2") || is_number(end + 2, "3"))) {
      flagged = true;  // f*2, f*3
    }
    if (end + 2 < t.size() && (t[end + 1].text == "+" || t[end + 1].text == "-") &&
        is_number(end + 2, "1")) {
      flagged = true;  // f+1, f-1
    }
    if (flagged) {
      Report(out, kRuleQuorumArith, t[i].line,
             "literal threshold arithmetic on 'f': use Committee::quorum_threshold() / "
             "validity_threshold() (or the *For(n) statics) so thresholds live in one audited "
             "place");
    }
  }
}

// --------------------------------------------------------- R4 codec-mismatch

struct CodecOp {
  std::string kind;  // u8,u16,u32,u64,i64,bool,var,str,raw,sub
  int size = -1;     // For raw: byte count when known (GetArray<N>).
  int line = 0;
};

struct CodecSide {
  std::vector<CodecOp> ops;
  int line = 0;
  bool present = false;
};

const std::map<std::string, std::string>& PutKinds() {
  static const std::map<std::string, std::string> m = {
      {"PutU8", "u8"},   {"PutU16", "u16"},   {"PutU32", "u32"}, {"PutU64", "u64"},
      {"PutI64", "i64"}, {"PutBool", "bool"}, {"PutVar", "var"}, {"PutString", "str"},
      {"PutRaw", "raw"}};
  return m;
}

const std::map<std::string, std::string>& GetKinds() {
  static const std::map<std::string, std::string> m = {
      {"GetU8", "u8"},   {"GetU16", "u16"},   {"GetU32", "u32"}, {"GetU64", "u64"},
      {"GetI64", "i64"}, {"GetBool", "bool"}, {"GetVar", "var"}, {"GetString", "str"},
      {"GetRaw", "raw"}, {"GetArray", "raw"}};
  return m;
}

// True when token i is reached through a member access: `x.F` or `x->F`.
bool IsMemberAccess(const Toks& t, size_t i) {
  if (i == 0) {
    return false;
  }
  if (t[i - 1].text == ".") {
    return true;
  }
  return i >= 2 && t[i - 1].text == ">" && t[i - 2].text == "-";
}

std::vector<CodecOp> ExtractOps(const Toks& t, size_t first, size_t last, bool encode_side) {
  std::vector<CodecOp> ops;
  for (size_t i = first; i <= last && i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || i == 0) {
      continue;
    }
    const std::string& prev = t[i - 1].text;
    const bool called = i + 1 < t.size() &&
                        (t[i + 1].text == "(" || (t[i].text == "GetArray" && t[i + 1].text == "<"));
    if (!called) {
      continue;
    }
    if (IsMemberAccess(t, i)) {
      auto& kinds = encode_side ? PutKinds() : GetKinds();
      auto it = kinds.find(t[i].text);
      if (it != kinds.end()) {
        CodecOp op;
        op.kind = it->second;
        op.line = t[i].line;
        if (t[i].text == "GetArray" && i + 2 < t.size() &&
            t[i + 2].kind == TokKind::kNumber) {
          op.size = std::atoi(t[i + 2].text.c_str());
        }
        ops.push_back(op);
        continue;
      }
      if (encode_side && t[i].text == "Encode") {
        ops.push_back(CodecOp{"sub", -1, t[i].line});
      }
    } else if (prev == "::" && !encode_side && t[i].text == "Decode") {
      ops.push_back(CodecOp{"sub", -1, t[i].line});
    }
  }
  return ops;
}

std::string OpName(const CodecOp& op) {
  if (op.kind == "raw" && op.size > 0) {
    return "raw[" + std::to_string(op.size) + "]";
  }
  if (op.kind == "sub") {
    return "nested codec";
  }
  return op.kind;
}

void RunCodecMismatch(const std::string& path, const Toks& t, std::vector<Finding>* out) {
  (void)path;
  // Scope stack of struct/class names for inline member definitions.
  struct Scope {
    std::string name;
    int depth;
  };
  std::vector<Scope> scopes;
  int depth = 0;
  std::map<std::string, std::pair<CodecSide, CodecSide>> owners;  // name -> (enc, dec)

  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct) {
      if (t[i].text == "{") {
        // Record-open? Look back (bounded by statement punctuation) for
        // `struct X ... {` / `class X ... {`.
        for (size_t k = i; k-- > 0;) {
          const std::string& tx = t[k].text;
          if (tx == ";" || tx == "}" || tx == "{" || tx == ")") {
            break;
          }
          if ((IsIdent(t[k], "struct") || IsIdent(t[k], "class")) && k + 1 < t.size() &&
              t[k + 1].kind == TokKind::kIdent) {
            scopes.push_back(Scope{t[k + 1].text, depth});
            break;
          }
        }
        ++depth;
      } else if (t[i].text == "}") {
        --depth;
        if (!scopes.empty() && scopes.back().depth == depth) {
          scopes.pop_back();
        }
      }
      continue;
    }
    const bool is_codec_fn = IsIdent(t[i], "Encode") || IsIdent(t[i], "Decode");
    if (!is_codec_fn || i + 1 >= t.size() || t[i + 1].text != "(") {
      continue;
    }
    if (IsMemberAccess(t, i)) {
      continue;  // Member call, not a definition.
    }
    std::string owner;
    if (i >= 2 && t[i - 1].text == "::" && t[i - 2].kind == TokKind::kIdent) {
      owner = t[i - 2].text;
    } else if (!scopes.empty()) {
      owner = scopes.back().name;
    }
    if (owner.empty()) {
      continue;
    }
    size_t close = MatchForward(t, i + 1, "(", ")");
    if (close >= t.size()) {
      continue;
    }
    size_t j = close + 1;
    while (j < t.size() && (IsIdent(t[j], "const") || IsIdent(t[j], "noexcept") ||
                            IsIdent(t[j], "override"))) {
      ++j;
    }
    if (j >= t.size() || t[j].text != "{") {
      continue;  // Declaration or call — no body.
    }
    size_t body_end = MatchForward(t, j, "{", "}");
    const bool encode_side = IsIdent(t[i], "Encode");
    CodecSide side;
    side.present = true;
    side.line = t[i].line;
    side.ops = ExtractOps(t, j + 1, body_end - 1, encode_side);
    auto& slot = owners[owner];
    CodecSide& target = encode_side ? slot.first : slot.second;
    if (!target.present) {
      target = std::move(side);
    }
  }

  for (const auto& [owner, sides] : owners) {
    const CodecSide& enc = sides.first;
    const CodecSide& dec = sides.second;
    if (!enc.present || !dec.present) {
      continue;  // One-sided codecs (digest preimages) are legitimate.
    }
    if (enc.ops.size() != dec.ops.size()) {
      Report(out, kRuleCodecMismatch, dec.line,
             owner + ": Encode emits " + std::to_string(enc.ops.size()) +
                 " codec ops but Decode consumes " + std::to_string(dec.ops.size()) +
                 " — a field is missing on one side");
      continue;
    }
    for (size_t k = 0; k < enc.ops.size(); ++k) {
      if (enc.ops[k].kind != dec.ops[k].kind) {
        Report(out, kRuleCodecMismatch, dec.ops[k].line,
               owner + ": codec op #" + std::to_string(k + 1) + " drifts — Encode writes " +
                   OpName(enc.ops[k]) + " (line " + std::to_string(enc.ops[k].line) +
                   ") but Decode reads " + OpName(dec.ops[k]));
        break;
      }
    }
  }
}

// ------------------------------------------------------------ R5 pointer-key

void RunPointerKey(const std::string& path, const Toks& t, std::vector<Finding>* out) {
  (void)path;
  static const std::set<std::string> kContainers = {"map",           "set",
                                                    "multimap",      "multiset",
                                                    "unordered_map", "unordered_set"};
  for (size_t i = 2; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || kContainers.count(t[i].text) == 0) {
      continue;
    }
    if (!(t[i - 1].text == "::" && IsIdent(t[i - 2], "std"))) {
      continue;
    }
    if (t[i + 1].text != "<") {
      continue;
    }
    // Walk the first template argument (up to a top-level ',' or the
    // closing '>').
    int angle = 1;
    int paren = 0;
    size_t last = 0;
    for (size_t k = i + 2; k < t.size(); ++k) {
      const std::string& tx = t[k].text;
      if (t[k].kind == TokKind::kPunct) {
        if (tx == "<") {
          ++angle;
        } else if (tx == ">") {
          if (--angle == 0) {
            break;
          }
        } else if (tx == "(") {
          ++paren;
        } else if (tx == ")") {
          --paren;
        } else if (tx == "," && angle == 1 && paren == 0) {
          break;
        }
      }
      last = k;
    }
    if (last != 0 && t[last].kind == TokKind::kPunct && t[last].text == "*") {
      Report(out, kRulePointerKey, t[i].line,
             "std::" + t[i].text +
                 " keyed by a raw pointer: addresses vary run to run (ASLR/allocator), so any "
                 "order or hash derived from them is nondeterministic — key by id or digest");
    }
  }
}

}  // namespace

std::vector<Finding> RunRules(const std::string& rel_path, const LexedFile& lex,
                              const LexedFile* companion) {
  std::vector<Finding> findings;
  RunNondet(rel_path, lex.tokens, &findings);
  RunUnorderedIter(rel_path, lex.tokens, companion ? &companion->tokens : nullptr, &findings);
  RunQuorumArith(rel_path, lex.tokens, &findings);
  RunCodecMismatch(rel_path, lex.tokens, &findings);
  RunPointerKey(rel_path, lex.tokens, &findings);
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) {
      return a.line < b.line;
    }
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace lint
}  // namespace nt
